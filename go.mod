module ctgdvfs

go 1.22
