package ctgdvfs_test

import (
	"math"
	"testing"

	"ctgdvfs"
)

// TestFacadeEndToEnd drives the whole public API surface the way the doc.go
// example sketches it: build a CTG and platform, plan, inspect, replay, and
// run the adaptive loop.
func TestFacadeEndToEnd(t *testing.T) {
	b := ctgdvfs.NewGraph()
	fork := b.AddTask("decide", ctgdvfs.AndNode)
	fast := b.AddTask("fast", ctgdvfs.AndNode)
	slow := b.AddTask("slow", ctgdvfs.AndNode)
	join := b.AddTask("join", ctgdvfs.OrNode)
	b.AddCondEdge(fork, fast, 1, 0)
	b.AddCondEdge(fork, slow, 1, 1)
	b.AddEdge(fast, join, 1)
	b.AddEdge(slow, join, 1)
	b.SetBranchProbs(fork, []float64{0.8, 0.2})
	g, err := b.Build(120)
	if err != nil {
		t.Fatal(err)
	}

	p, err := ctgdvfs.NewPlatform(4, 2).
		SetUniformTask(0, 5, 5).
		SetUniformTask(1, 10, 10).
		SetUniformTask(2, 20, 20).
		SetUniformTask(3, 5, 5).
		SetAllLinks(4, 0.1).
		Build()
	if err != nil {
		t.Fatal(err)
	}

	a, err := ctgdvfs.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumScenarios() != 2 {
		t.Fatalf("scenarios = %d, want 2", a.NumScenarios())
	}
	if !a.MutuallyExclusive(fast, slow) {
		t.Fatal("fast and slow arms must be mutually exclusive")
	}

	s, err := ctgdvfs.Plan(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.ExpectedEnergy() <= 0 {
		t.Fatal("expected energy must be positive")
	}
	sum, err := ctgdvfs.Exhaustive(s)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Misses != 0 {
		t.Fatalf("%d deadline misses", sum.Misses)
	}

	inst, err := ctgdvfs.ReplayDecisions(s, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Executed != 3 {
		t.Fatalf("executed %d tasks, want 3 (fork, fast, join)", inst.Executed)
	}

	// Separate stretchers on fresh plans.
	a2, err := ctgdvfs.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ctgdvfs.Schedule(a2, p, ctgdvfs.ModifiedDLS())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctgdvfs.StretchNLP(raw, ctgdvfs.ContinuousDVFS(), ctgdvfs.NLPOptions{MaxIters: 200}); err != nil {
		t.Fatal(err)
	}
	raw2, err := ctgdvfs.Schedule(a2, p, ctgdvfs.PlainDLS())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctgdvfs.StretchWorstCase(raw2, ctgdvfs.ContinuousDVFS()); err != nil {
		t.Fatal(err)
	}

	// Adaptive loop over a drifting workload.
	mgr, err := ctgdvfs.NewAdaptive(g, p, ctgdvfs.AdaptiveOptions{Window: 10, Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	vectors := make(ctgdvfs.Vectors, 200)
	for i := range vectors {
		out := 1 // drifted: slow arm dominates, contradicting the 0.8/0.2 profile
		if i%5 == 0 {
			out = 0
		}
		vectors[i] = []int{out}
	}
	st, err := mgr.Run(vectors)
	if err != nil {
		t.Fatal(err)
	}
	if st.Calls == 0 {
		t.Fatal("adaptive runtime never re-scheduled on a drifted stream")
	}
	if st.Misses != 0 {
		t.Fatalf("adaptive run missed %d deadlines", st.Misses)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	g, p, err := ctgdvfs.GenerateRandom(ctgdvfs.RandomConfig{
		Seed: 1, Nodes: 18, PEs: 3, Branches: 2, Category: ctgdvfs.CategoryForkJoin,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err = ctgdvfs.TightenDeadline(g, p, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctgdvfs.Plan(g, p); err != nil {
		t.Fatal(err)
	}

	mg, mp, err := ctgdvfs.BuildMPEG()
	if err != nil {
		t.Fatal(err)
	}
	if mg.NumTasks() != 40 || mp.NumPEs() != 3 {
		t.Fatal("MPEG workload dimensions wrong")
	}
	clips := ctgdvfs.MovieClips()
	if len(clips) != 8 {
		t.Fatal("want 8 movie clips")
	}
	vec := clips[0].Generate(mg, 50)
	if len(vec) != 50 {
		t.Fatal("movie vector count wrong")
	}
	avg := ctgdvfs.AverageProbs(mg, vec)
	if len(avg) != mg.NumForks() {
		t.Fatal("AverageProbs width wrong")
	}
	if err := ctgdvfs.ApplyProfile(mg, avg); err == nil {
		// Profiles containing a zero probability are rejected only if a
		// fork saw a single outcome; either way the call must not panic.
		_ = err
	}

	cg, cp, err := ctgdvfs.BuildCruise()
	if err != nil {
		t.Fatal(err)
	}
	if cg.NumTasks() != 32 || cp.NumPEs() != 5 {
		t.Fatal("cruise workload dimensions wrong")
	}
	road := ctgdvfs.RoadSequence(cg, 7, 100)
	if len(road) != 100 {
		t.Fatal("road vector count wrong")
	}
	fl := ctgdvfs.FluctuatingVectors(g, 3, 100, 0.4)
	if len(fl) != 100 {
		t.Fatal("fluctuating vector count wrong")
	}
}

func TestFacadeHelpers(t *testing.T) {
	if ctgdvfs.Uncond().IsConditional() {
		t.Fatal("Uncond must be unconditional")
	}
	c := ctgdvfs.When(3, 1)
	if !c.IsConditional() || c.Branch() != 3 || c.Outcome() != 1 {
		t.Fatal("When accessor mismatch")
	}
	d := ctgdvfs.DiscreteDVFS(0.5, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.Clamp(0.3); got != 0.5 {
		t.Fatalf("Clamp = %v", got)
	}
	pts := ctgdvfs.FilteredSeries([]int{1, 1, 1, 1}, 0, 2, 0.4)
	if len(pts) != 4 || math.Abs(pts[3].WindowProb-1) > 1e-12 {
		t.Fatal("FilteredSeries behavior wrong")
	}
}
