package ctgdvfs_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"ctgdvfs"
)

func TestFacadeWorkloadIO(t *testing.T) {
	g, p, err := ctgdvfs.GenerateRandom(ctgdvfs.RandomConfig{
		Seed: 21, Nodes: 16, PEs: 3, Branches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.ctg")
	if err := ctgdvfs.SaveWorkload(path, g, p); err != nil {
		t.Fatal(err)
	}
	g2, p2, err := ctgdvfs.LoadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumTasks() != g.NumTasks() || p2.NumPEs() != p.NumPEs() {
		t.Fatal("round-trip changed workload dimensions")
	}
	// The loaded workload schedules identically (same expected energy).
	s1, err := ctgdvfs.Plan(g, p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ctgdvfs.Plan(g2, p2)
	if err != nil {
		t.Fatal(err)
	}
	if s1.ExpectedEnergy() != s2.ExpectedEnergy() {
		t.Fatalf("energies diverge after round trip: %v vs %v",
			s1.ExpectedEnergy(), s2.ExpectedEnergy())
	}

	var buf bytes.Buffer
	if err := ctgdvfs.WriteWorkload(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	g3, p3, err := ctgdvfs.ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != nil || g3.NumTasks() != g.NumTasks() {
		t.Fatal("graph-only stream round trip failed")
	}
}

func TestFacadeSimConfig(t *testing.T) {
	g, p, err := ctgdvfs.BuildMPEG()
	if err != nil {
		t.Fatal(err)
	}
	g, err = ctgdvfs.TightenDeadline(g, p, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ctgdvfs.Plan(g, p)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ctgdvfs.ExhaustiveCfg(s, ctgdvfs.SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := ctgdvfs.ExhaustiveCfg(s, ctgdvfs.SimConfig{StrictOrDeps: true})
	if err != nil {
		t.Fatal(err)
	}
	if strict.ExpectedMakespan < base.ExpectedMakespan-1e-9 {
		t.Fatal("strict or-deps must never finish earlier")
	}
	if strict.Misses != 0 {
		t.Fatalf("strict mode missed %d deadlines", strict.Misses)
	}
	over, err := ctgdvfs.ReplayCfg(s, 0, ctgdvfs.SimConfig{SwitchTime: 1, SwitchEnergy: 1})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ctgdvfs.Replay(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(over.Energy > plain.Energy) || !(over.Makespan >= plain.Makespan) {
		t.Fatal("switch overhead must cost energy and time")
	}
}

// TestThreeWayForkPipeline drives the whole stack with a non-binary fork —
// the model supports k outcomes everywhere even though the paper's
// benchmarks are binary.
func TestThreeWayForkPipeline(t *testing.T) {
	b := ctgdvfs.NewGraph()
	src := b.AddTask("src", ctgdvfs.AndNode)
	fork := b.AddTask("modeselect", ctgdvfs.AndNode)
	low := b.AddTask("low", ctgdvfs.AndNode)
	mid := b.AddTask("mid", ctgdvfs.AndNode)
	high := b.AddTask("high", ctgdvfs.AndNode)
	join := b.AddTask("join", ctgdvfs.OrNode)
	sink := b.AddTask("sink", ctgdvfs.AndNode)
	b.AddEdge(src, fork, 1)
	b.AddCondEdge(fork, low, 1, 0)
	b.AddCondEdge(fork, mid, 1, 1)
	b.AddCondEdge(fork, high, 1, 2)
	b.AddEdge(low, join, 1)
	b.AddEdge(mid, join, 1)
	b.AddEdge(high, join, 1)
	b.AddEdge(join, sink, 1)
	b.SetBranchProbs(fork, []float64{0.5, 0.3, 0.2})
	g, err := b.Build(200)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ctgdvfs.NewPlatform(7, 2).
		SetUniformTask(0, 4, 4).SetUniformTask(1, 2, 2).
		SetUniformTask(2, 5, 5).SetUniformTask(3, 10, 10).
		SetUniformTask(4, 20, 20).SetUniformTask(5, 2, 2).
		SetUniformTask(6, 4, 4).SetAllLinks(4, 0.05).Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctgdvfs.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumScenarios() != 3 {
		t.Fatalf("scenarios = %d, want 3", a.NumScenarios())
	}
	if !a.MutuallyExclusive(low, high) || !a.MutuallyExclusive(low, mid) {
		t.Fatal("three-way arms must be pairwise exclusive")
	}
	s, err := ctgdvfs.Plan(g, p)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := ctgdvfs.Exhaustive(s)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Misses != 0 {
		t.Fatalf("three-way fork: %d misses", sum.Misses)
	}

	// Adaptive loop with three outcomes: drift toward outcome 2.
	mgr, err := ctgdvfs.NewAdaptive(g, p, ctgdvfs.AdaptiveOptions{Window: 12, Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	vec := make(ctgdvfs.Vectors, 150)
	for i := range vec {
		out := 2
		if i%8 == 0 {
			out = 0
		}
		vec[i] = []int{out}
	}
	st, err := mgr.Run(vec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Calls == 0 {
		t.Fatal("no adaptation on a three-way drift")
	}
	if st.Misses != 0 {
		t.Fatalf("three-way adaptive run missed %d deadlines", st.Misses)
	}
	// The estimate must have converged toward outcome 2.
	probs := mgr.Probs(0)
	if probs[2] < 0.5 {
		t.Fatalf("adaptive probs %v did not follow the three-way drift", probs)
	}
}
