# Standard entry points; `make verify` is the gate a change must pass.

.PHONY: build test race cover bench bench-parallel bench-telemetry bench-failover bench-scale bench-consolidation bench-provenance bench-monitor bench-daemon benchgate bench-baseline fuzz-smoke fault-smoke failover-smoke consolidation-smoke scale-smoke telemetry-smoke analyze-smoke explain-smoke watch-smoke chaos-smoke daemon-smoke verify

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Statement-coverage floors for internal/core and internal/faults (the
# degraded-mode re-mapping and failure-timeline code paths).
cover:
	sh scripts/cover.sh

# Full benchmark sweep (regenerates every table/figure as a side effect).
bench:
	go test -run '^$$' -bench . -benchmem .

# Serial-vs-parallel scenario-engine comparison; see BENCH_parallel.json
# for a recorded baseline.
bench-parallel:
	go test -run '^$$' -bench 'PerScenario(Serial|Parallel)|Exhaustive(Serial|Parallel)' -benchmem .

# Short fuzzing session for the workload parser (the seed corpus alone runs
# as part of `make test`; this explores beyond it).
fuzz-smoke:
	go test -run '^$$' -fuzz FuzzRead -fuzztime 5s ./internal/ctgio

# Fault-injection campaign on the MPEG + cruise workloads.
fault-smoke:
	go run ./cmd/experiments -exp faults

# Failover campaign: adaptive re-mapping vs a static schedule under PE
# outages, on the mpeg/wlan/cruise workloads.
failover-smoke:
	go run ./cmd/experiments -exp failover

# Consolidation campaign: multiple applications on one shared fabric under a
# chip power cap — budget governor vs ungoverned baseline (bounded rounds).
consolidation-smoke:
	go run ./cmd/experiments -exp consolidation -consolidation-rounds 80

# Telemetry-disabled vs enabled adaptive-step cost; see BENCH_telemetry.json
# for a recorded baseline (including the pre-telemetry runtime).
bench-telemetry:
	go test -run '^$$' -bench 'AdaptiveStep(MPEG|Telemetry)' -benchmem .

# Timeline-off vs outage-timeline adaptive-step cost; see BENCH_failover.json
# for a recorded baseline.
bench-failover:
	go test -run '^$$' -bench 'AdaptiveStepFailover' -benchmem .

# Large-scale tier: full vs warm-started reschedule on a 10^3-task CTG; see
# BENCH_scale.json for a recorded baseline (the warm entry is alloc-gated).
bench-scale:
	go test -run '^$$' -bench 'BenchmarkScale' -benchmem .

# Ungoverned-metering vs governed consolidated-round cost; see
# BENCH_consolidation.json for a recorded baseline.
bench-consolidation:
	go test -run '^$$' -bench 'FleetStep(Ungoverned|Governed)' -benchmem .

# Flight-recorder steady state / disabled path (both alloc-gated at zero) and
# the adaptive step with the black box on; see BENCH_provenance.json.
bench-provenance:
	go test -run '^$$' -bench 'FlightRecorder(Record|Disabled)|AdaptiveStepFlight' -benchmem .

# Time-series sampler sweep with and without alert rules armed (both
# alloc-gated at zero) and the adaptive step sampling its own registry; see
# BENCH_monitor.json for a recorded baseline.
bench-monitor:
	go test -run '^$$' -bench 'SeriesTick|AdaptiveStepSeries' -benchmem .

# Bounded run of the scaling campaign (one 10^3-task cell, warm vs full).
scale-smoke:
	go run ./cmd/experiments -exp scale -scale-tasks 1000 -scale-pes 16 -scale-instances 24

# Fault campaign with the Chrome trace export, validated by checktrace.
telemetry-smoke:
	go run ./cmd/experiments -exp faults -trace-out /tmp/ctgdvfs_trace.json
	go run ./scripts/checktrace /tmp/ctgdvfs_trace.json

# Daemon request overhead: steady-state serve loop (alloc-gated) and the
# full-reschedule worst case; see BENCH_daemon.json for a recorded baseline.
bench-daemon:
	go test -run '^$$' -bench 'DaemonStep(Serve|Resched)' -benchmem .

# Daemon chaos campaign: panic isolation, request floods and a kill-restart
# cycle against an in-process baseline/chaos daemon pair.
chaos-smoke:
	go run ./cmd/experiments -exp daemon

# End-to-end daemon smoke: build the real ctgschedd binary, submit the mpeg
# tenant over HTTP, SIGKILL it mid-run, restart on the same checkpoint
# directory and verify the resume is bit-for-bit.
daemon-smoke:
	go run ./scripts/daemonsmoke

# Bench-regression gate: re-run the baselined benchmarks and fail on >10%
# ns/op regressions against the committed BENCH_*.json files.
benchgate:
	go run ./scripts/benchgate BENCH_parallel.json BENCH_telemetry.json BENCH_failover.json BENCH_scale.json BENCH_consolidation.json BENCH_provenance.json BENCH_monitor.json BENCH_daemon.json

# Re-bless the benchmark baselines on this host (after a deliberate change).
bench-baseline:
	go run ./scripts/benchgate -update BENCH_parallel.json BENCH_telemetry.json BENCH_failover.json BENCH_scale.json BENCH_consolidation.json BENCH_provenance.json BENCH_monitor.json BENCH_daemon.json

# End-to-end health pipeline: capture a JSONL event stream from the telemetry
# example, then run the offline analyzer over it.
analyze-smoke:
	go run ./examples/telemetry -events-out /tmp/ctgdvfs_events.jsonl -trace-out /tmp/ctgdvfs_example_trace.json >/dev/null
	go run ./cmd/ctgsched analyze /tmp/ctgdvfs_events.jsonl

# End-to-end provenance pipeline: capture the fault campaign's event streams
# and flight-recorder dumps, then reconstruct causal chains from both.
explain-smoke:
	go run ./cmd/experiments -exp faults -events-out /tmp/ctgdvfs_prov -flight-out /tmp/ctgdvfs_flight >/dev/null
	go run ./cmd/ctgsched explain -list /tmp/ctgdvfs_prov-mpeg.jsonl
	go run ./cmd/ctgsched explain -kind reschedule /tmp/ctgdvfs_prov-mpeg.jsonl
	go run ./cmd/ctgsched explain /tmp/ctgdvfs_flight-mpeg-1.jsonl

# End-to-end monitoring pipeline: run the fault campaign with alert rules and
# series capture, walk an alert's cause chain, render the stores in the watch
# view, and lint the Prometheus exposition.
watch-smoke:
	go run ./cmd/experiments -exp faults -rules examples/watch/rules.json -series-out /tmp/ctgdvfs_series -events-out /tmp/ctgdvfs_mon -prom-out /tmp/ctgdvfs_metrics.prom >/dev/null
	go run ./cmd/ctgsched explain -kind alert_firing /tmp/ctgdvfs_mon-mpeg.jsonl
	go run ./cmd/ctgsched watch -dump /tmp/ctgdvfs_series-mpeg.json
	go run ./scripts/promlint /tmp/ctgdvfs_metrics.prom

verify:
	sh scripts/verify.sh
