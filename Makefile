# Standard entry points; `make verify` is the gate a change must pass.

.PHONY: build test race bench bench-parallel verify

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Full benchmark sweep (regenerates every table/figure as a side effect).
bench:
	go test -run '^$$' -bench . -benchmem .

# Serial-vs-parallel scenario-engine comparison; see BENCH_parallel.json
# for a recorded baseline.
bench-parallel:
	go test -run '^$$' -bench 'PerScenario(Serial|Parallel)|Exhaustive(Serial|Parallel)' -benchmem .

verify:
	sh scripts/verify.sh
