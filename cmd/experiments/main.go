// Command experiments regenerates every table and figure of the paper's
// evaluation section. With no flags it runs all of them in order; -exp
// selects one (table1, figure4, figure5, table2, table3, table4, table5,
// figure6). -cpuprofile and -memprofile write pprof profiles of the run
// (the usual way to inspect where the scenario engine spends its time).
//
// The fault campaign (-exp faults) replays both application workloads under
// a deterministic execution-time overrun plan and prints the
// miss-rate-vs-energy tradeoff of guard-band stretching plus worst-case
// fallback recovery. -faults seeds the plan, -overrun sets the per-task
// overrun probability, -guard sets the base guard band.
//
// The failover campaign (-exp failover) sweeps transient PE-outage
// probability × repair time (-fail-rates, -repairs) over the mpeg/wlan/cruise
// workloads and prints miss rate and energy of the adaptive re-mapping
// runtime against a static schedule that deadlocks on dead hardware.
// -faults-spec FILE replays a JSON fault spec instead: its "perturb" section
// replaces the -exp faults plan, its "failures" section replaces the
// failover sweep with one scripted timeline, and its "power" section sets
// the consolidation campaign's chip budget.
//
// The consolidation campaign (-exp consolidation) hosts multiple
// applications on one shared fabric under a chip power cap and contrasts the
// budget governor's criticality-ordered graceful degradation against an
// ungoverned baseline. -consolidation-rounds bounds each fleet run;
// -power-cap/-power-window (or a -faults-spec power section) replace the
// default cap sweep with one absolute budget.
//
// Telemetry: -trace-out FILE exports the fault campaign's guarded runtimes as
// a Chrome trace-event file (open in chrome://tracing or
// https://ui.perfetto.dev — one process per workload, one row per PE/link);
// -events-out PREFIX writes each stream as PREFIX-<name>.jsonl with full
// provenance (seq/cause ids) for `ctgsched analyze` and `ctgsched explain`;
// -flight-out PREFIX replays each stream through the flight recorder and
// writes its trigger-dump windows;
// -metrics-addr HOST:PORT serves the campaign's live metrics registry at
// /metrics (JSON), the standard expvar page at /debug/vars, and the
// per-workload health snapshots at /health for the duration of the run.
// -pprof additionally mounts the net/http/pprof handlers under /debug/pprof/
// on the same server, and -serve keeps the server running after the
// experiments finish (until interrupted) so the final /health snapshots and
// profiles can be scraped. -health attaches the streaming health monitor to
// the fault campaign and prints one diagnosis report per workload after the
// tables.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"ctgdvfs/internal/exp"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/serve"
	"ctgdvfs/internal/telemetry"
)

// tracedExperiments names every experiment that populates campaignTel when
// the telemetry flags are set — the list the -trace-out and -health error
// hints print. Keep it in sync with the runners that call campaignTel.Store.
const tracedExperiments = "-exp faults, -exp consolidation"

// Fault-campaign knobs, shared with the runner table.
var (
	faultSeed    = flag.Int64("faults", exp.DefaultCampaignSpec().Seed, "fault-plan seed for the fault campaign")
	faultOverrun = flag.Float64("overrun", exp.DefaultCampaignSpec().OverrunProb,
		"per-task execution-time overrun probability for the fault campaign")
	faultGuard = flag.Float64("guard", exp.DefaultCampaignGuard,
		"base guard band (fraction of slack reserved) for the fault campaign")
	faultsSpec = flag.String("faults-spec", "",
		"JSON spec file ({\"perturb\": {...}, \"failures\": {...}}) replacing the built-in fault plan and failover sweep")
	failRates = flag.String("fail-rates", "",
		"comma-separated per-PE per-instance outage probabilities for the failover campaign (default sweep when empty)")
	failRepairs = flag.String("repairs", "",
		"comma-separated outage repair times in instances for the failover campaign (default sweep when empty)")

	// Scale-campaign knobs (-exp scale): the quick tier is one 10³-task cell;
	// -scale-full sweeps the committed curve up to 10⁴ tasks on 64 PEs;
	// -scale-tasks/-scale-pes measure one custom cell instead.
	scaleFull      = flag.Bool("scale-full", false, "run the full scaling curve (10³–10⁴ tasks, minutes) instead of the quick tier")
	scaleTasks     = flag.Int("scale-tasks", 0, "custom scale-campaign cell: task count (with -scale-pes)")
	scalePEs       = flag.Int("scale-pes", 0, "custom scale-campaign cell: PE count (with -scale-tasks)")
	scaleInstances = flag.Int("scale-instances", 45, "instances replayed per custom scale-campaign cell")

	// Consolidation-campaign knobs (-exp consolidation): rounds per fleet
	// run, and an absolute chip budget replacing the default P0-relative cap
	// sweep. The flags are merged over a -faults-spec power section
	// (field-by-field, flags win) and validated through power.Budget.
	consolidationRounds = flag.Int("consolidation-rounds", 0,
		"rounds replayed per consolidation fleet run (0 = default)")
	powerCap = flag.Float64("power-cap", 0,
		"absolute chip power cap for the consolidation campaign (0 = sweep fractions of each mix's measured peak)")
	powerWindow = flag.Int("power-window", 0,
		"power-measurement window in rounds for the consolidation campaign (0 = default)")

	traceOut = flag.String("trace-out", "",
		"write a Chrome trace-event file of a traced experiment's event streams (traced: "+tracedExperiments+")")
	eventsOut = flag.String("events-out", "",
		"write each traced stream as PREFIX-<name>.jsonl — the format `ctgsched analyze` and `ctgsched explain` ingest (traced: "+tracedExperiments+")")
	flightOut = flag.String("flight-out", "",
		"replay each traced stream through a flight recorder: trigger dumps land in PREFIX-<name>-<n>.jsonl, the final window in PREFIX-<name>-final.jsonl")
	metricsAddr = flag.String("metrics-addr", "",
		"serve the live metrics registry over HTTP at this address (/metrics JSON, /debug/vars expvar, /health snapshots)")
	pprofFlag = flag.Bool("pprof", false,
		"also mount net/http/pprof under /debug/pprof/ on the -metrics-addr server")
	serveFlag = flag.Bool("serve", false,
		"keep the -metrics-addr server running after the experiments finish (until interrupted)")
	healthFlag = flag.Bool("health", false,
		"attach the streaming health monitor to a traced experiment ("+tracedExperiments+") and print per-stream diagnosis reports")
	seriesOut = flag.String("series-out", "",
		"sample per-stream time series during a traced experiment and write each store as PREFIX-<name>.json — the format `ctgsched watch -dump` renders")
	rulesFile = flag.String("rules", "",
		"JSON alert-rule file (series.RuleSet) evaluated against the sampled series of a traced experiment; firings land in the event streams")
	promOut = flag.String("prom-out", "",
		"write the final metrics registry in Prometheus text format to this file after the experiments finish")

	// metricsReg is the registry served at -metrics-addr and fed by the
	// observed fault campaign; campaignTel keeps the recorded event streams
	// and health analyzers. It is stored atomically because the -metrics-addr
	// server goroutine reads it (/health) while the runner goroutine sets it.
	metricsReg  *telemetry.Registry
	campaignTel atomic.Pointer[exp.CampaignTelemetry]
)

// observedMode reports whether any telemetry flag asks the traced campaigns
// to run in observed mode (recorders + analyzers attached).
func observedMode() bool {
	return *traceOut != "" || *eventsOut != "" || *flightOut != "" ||
		*metricsAddr != "" || *healthFlag || *seriesOut != "" || *rulesFile != ""
}

// serveHealth renders the observed campaign's per-workload health snapshots
// as one JSON object keyed by workload name (503 until a campaign has run).
func serveHealth(w http.ResponseWriter, _ *http.Request) {
	tel := campaignTel.Load()
	if tel == nil || len(tel.Health) == 0 {
		http.Error(w, "no observed fault campaign has run yet", http.StatusServiceUnavailable)
		return
	}
	snaps := make(map[string]any, len(tel.Health))
	for name, h := range tel.Health {
		snaps[name] = h.Health()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snaps); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// campaignStreamNames returns the observed campaign's stream names in order.
func campaignStreamNames(tel *exp.CampaignTelemetry) []string {
	names := make([]string, 0, len(tel.Recorders))
	for name := range tel.Recorders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// streamFileName flattens a stream name into a filename fragment — the
// consolidation campaign keys tenant streams as "cell/tenant".
func streamFileName(name string) string {
	return strings.ReplaceAll(name, "/", "_")
}

// writeCampaignEvents writes each stream as its own JSONL file. The streams
// are kept separate because each carries its own seq-id space — concatenating
// them would corrupt the provenance graph `ctgsched explain` walks. Each file
// is written atomically (temp file + fsync + rename), so a crash mid-dump
// never leaves a torn stream where a previous good one stood.
func writeCampaignEvents(prefix string, tel *exp.CampaignTelemetry) error {
	for _, name := range campaignStreamNames(tel) {
		path := fmt.Sprintf("%s-%s.jsonl", prefix, streamFileName(name))
		events := tel.Recorders[name].Events()
		err := telemetry.WriteFileAtomic(path, func(w io.Writer) error {
			jr := telemetry.NewJSONLRecorder(w)
			for _, e := range events {
				jr.Record(e)
			}
			return jr.Flush()
		})
		if err != nil {
			return err
		}
		fmt.Printf("wrote %d events to %s\n", len(events), path)
	}
	return nil
}

// writeCampaignFlight replays each stream through a flight recorder with a
// file sink, exercising the black-box path offline: every armed trigger in
// the stream (fallback, breaker trip, cap breach, health alert) dumps its
// ring window to PREFIX-<name>-<n>.jsonl, and the final window is always
// written to PREFIX-<name>-final.jsonl. Each dump is a self-contained JSONL
// stream `ctgsched explain` ingests directly.
func writeCampaignFlight(prefix string, tel *exp.CampaignTelemetry) error {
	for _, name := range campaignStreamNames(tel) {
		stream := streamFileName(name)
		// Atomic trigger dumps: each ring window lands complete or not at
		// all (a crash mid-dump leaves no half-written evidence file).
		fr := telemetry.NewFlightRecorder(telemetry.FlightRecorderOptions{
			Sink: telemetry.AtomicSink(func(dump int) string {
				return fmt.Sprintf("%s-%s-%d.jsonl", prefix, stream, dump)
			}),
		})
		for _, e := range tel.Recorders[name].Events() {
			fr.Record(e)
		}
		if err := fr.Err(); err != nil {
			return fmt.Errorf("stream %s: %w", name, err)
		}
		finalPath := fmt.Sprintf("%s-%s-final.jsonl", prefix, stream)
		if err := telemetry.WriteFileAtomic(finalPath, fr.DumpTo); err != nil {
			return err
		}
		fmt.Printf("flight recorder %s: %d trigger dumps, final window %d/%d events -> %s\n",
			name, fr.Dumps(), fr.Len(), fr.Total(), finalPath)
	}
	return nil
}

// writeCampaignSeries writes each sampled series store as its own JSON dump
// (PREFIX-<name>.json), the format `ctgsched watch -dump` renders and
// internal/series reads back.
func writeCampaignSeries(prefix string, tel *exp.CampaignTelemetry) error {
	if len(tel.Series) == 0 {
		return fmt.Errorf("campaign recorded no series stores")
	}
	names := make([]string, 0, len(tel.Series))
	for name := range tel.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := tel.Series[name]
		path := fmt.Sprintf("%s-%s.json", prefix, streamFileName(name))
		if err := telemetry.WriteFileAtomic(path, st.WriteJSON); err != nil {
			return err
		}
		fmt.Printf("wrote %d series (%d ticks) to %s\n", st.Len(), st.Ticks(), path)
	}
	return nil
}

// writePromFile renders the registry's final state in the Prometheus text
// exposition format.
func writePromFile(path string, reg *telemetry.Registry) error {
	return telemetry.WriteFileAtomic(path, reg.WriteProm)
}

// writeCampaignTrace renders the observed campaign's event streams as one
// Chrome trace file, one process per workload in name order.
func writeCampaignTrace(path string, tel *exp.CampaignTelemetry) error {
	names := make([]string, 0, len(tel.Recorders))
	for name := range tel.Recorders {
		names = append(names, name)
	}
	sort.Strings(names)
	ct := telemetry.NewChromeTrace()
	for i, name := range names {
		ct.AddRun(name, i+1, tel.Recorders[name].Events())
	}
	return telemetry.WriteFileAtomic(path, ct.Write)
}

func main() {
	exp := flag.String("exp", "all",
		"experiment to run: all, table1, figure4, figure5, table2, table3, table4, table5, figure6, faults, failover, consolidation, scale, ...")
	workers := flag.Int("workers", 0,
		"parallel worker bound for the scenario engine (0 = GOMAXPROCS, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *workers > 0 {
		par.SetLimit(*workers)
	}
	if *pprofFlag && *metricsAddr == "" {
		fmt.Fprintln(os.Stderr, "-pprof requires -metrics-addr (it mounts on that server)")
		os.Exit(2)
	}
	if *serveFlag && *metricsAddr == "" {
		fmt.Fprintln(os.Stderr, "-serve requires -metrics-addr (there is no server to keep alive)")
		os.Exit(2)
	}
	var srv *http.Server
	if *metricsAddr != "" {
		metricsReg = telemetry.NewRegistry()
		mux := http.NewServeMux()
		mux.Handle("/metrics", metricsReg)
		mux.HandleFunc("/metrics/prom", metricsReg.ServeProm)
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/health", serveHealth)
		if *pprofFlag {
			mux.HandleFunc("/debug/pprof/", httppprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		}
		if err := metricsReg.PublishExpvar("ctgdvfs"); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-addr: %v\n", err)
		}
		// Listen synchronously so a bad address fails before the campaigns
		// start (a late listen error used to race with the campaign output);
		// serve in the background and shut down gracefully at exit.
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics-addr: %v\n", err)
			os.Exit(1)
		}
		// Hardened timeouts: a stalled or malicious scraper must not pin
		// goroutines or memory for the life of the campaign.
		srv = serve.NewHTTPServer(mux)
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "metrics-addr: %v\n", err)
			}
		}()
	}
	// shutdownServer drains in-flight scrapes before the process exits —
	// deferred-style teardown shared by the -serve and fall-through paths.
	shutdownServer := func() {
		if srv == nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-addr: shutdown: %v\n", err)
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	runners := orderedRunners()
	ran := 0
	for _, r := range runners {
		if *exp != "all" && !r.matches(*exp) {
			continue
		}
		start := time.Now()
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("(%s completed in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *traceOut != "" {
		tel := campaignTel.Load()
		if tel == nil {
			fmt.Fprintf(os.Stderr, "-trace-out: no traced experiment ran (traced: %s)\n", tracedExperiments)
			os.Exit(1)
		}
		if err := writeCampaignTrace(*traceOut, tel); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
	}

	if *eventsOut != "" {
		tel := campaignTel.Load()
		if tel == nil {
			fmt.Fprintf(os.Stderr, "-events-out: no traced experiment ran (traced: %s)\n", tracedExperiments)
			os.Exit(1)
		}
		if err := writeCampaignEvents(*eventsOut, tel); err != nil {
			fmt.Fprintf(os.Stderr, "events-out: %v\n", err)
			os.Exit(1)
		}
	}

	if *flightOut != "" {
		tel := campaignTel.Load()
		if tel == nil {
			fmt.Fprintf(os.Stderr, "-flight-out: no traced experiment ran (traced: %s)\n", tracedExperiments)
			os.Exit(1)
		}
		if err := writeCampaignFlight(*flightOut, tel); err != nil {
			fmt.Fprintf(os.Stderr, "flight-out: %v\n", err)
			os.Exit(1)
		}
	}

	if *seriesOut != "" {
		tel := campaignTel.Load()
		if tel == nil {
			fmt.Fprintf(os.Stderr, "-series-out: no traced experiment ran (traced: %s)\n", tracedExperiments)
			os.Exit(1)
		}
		if err := writeCampaignSeries(*seriesOut, tel); err != nil {
			fmt.Fprintf(os.Stderr, "series-out: %v\n", err)
			os.Exit(1)
		}
	}

	if *promOut != "" {
		reg := metricsReg
		if reg == nil {
			if tel := campaignTel.Load(); tel != nil {
				reg = tel.Metrics
			}
		}
		if reg == nil {
			fmt.Fprintf(os.Stderr, "-prom-out: no metrics registry (needs -metrics-addr or a traced experiment: %s)\n", tracedExperiments)
			os.Exit(1)
		}
		if err := writePromFile(*promOut, reg); err != nil {
			fmt.Fprintf(os.Stderr, "prom-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Prometheus exposition to %s\n", *promOut)
	}

	if *healthFlag {
		tel := campaignTel.Load()
		if tel == nil {
			fmt.Fprintf(os.Stderr, "-health: no monitored experiment ran (traced: %s)\n", tracedExperiments)
			os.Exit(1)
		}
		names := make([]string, 0, len(tel.Health))
		for name := range tel.Health {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("=== health: %s ===\n%s\n", name, tel.Health[name].Health().Report())
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle live objects before the heap snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}

	if *serveFlag {
		endpoints := "/metrics, /metrics/prom, /debug/vars, /health"
		if *pprofFlag {
			endpoints += ", /debug/pprof/"
		}
		fmt.Printf("serving on %s (%s) until interrupted\n", *metricsAddr, endpoints)
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt)
		<-stop
		fmt.Println("interrupted; shutting down")
	}
	shutdownServer()
}
