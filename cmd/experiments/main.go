// Command experiments regenerates every table and figure of the paper's
// evaluation section. With no flags it runs all of them in order; -exp
// selects one (table1, figure4, figure5, table2, table3, table4, table5,
// figure6). -cpuprofile and -memprofile write pprof profiles of the run
// (the usual way to inspect where the scenario engine spends its time).
//
// The fault campaign (-exp faults) replays both application workloads under
// a deterministic execution-time overrun plan and prints the
// miss-rate-vs-energy tradeoff of guard-band stretching plus worst-case
// fallback recovery. -faults seeds the plan, -overrun sets the per-task
// overrun probability, -guard sets the base guard band.
//
// Telemetry: -trace-out FILE exports the fault campaign's guarded runtimes as
// a Chrome trace-event file (open in chrome://tracing or
// https://ui.perfetto.dev — one process per workload, one row per PE/link);
// -metrics-addr HOST:PORT serves the campaign's live metrics registry at
// /metrics (JSON) and the standard expvar page at /debug/vars for the
// duration of the run.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"ctgdvfs/internal/exp"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/telemetry"
)

// Fault-campaign knobs, shared with the runner table.
var (
	faultSeed    = flag.Int64("faults", exp.DefaultCampaignSpec().Seed, "fault-plan seed for the fault campaign")
	faultOverrun = flag.Float64("overrun", exp.DefaultCampaignSpec().OverrunProb,
		"per-task execution-time overrun probability for the fault campaign")
	faultGuard = flag.Float64("guard", exp.DefaultCampaignGuard,
		"base guard band (fraction of slack reserved) for the fault campaign")

	traceOut = flag.String("trace-out", "",
		"write a Chrome trace-event file of the fault campaign's guarded runtimes (use with -exp faults)")
	metricsAddr = flag.String("metrics-addr", "",
		"serve the live metrics registry over HTTP at this address (/metrics JSON, /debug/vars expvar)")

	// metricsReg is the registry served at -metrics-addr and fed by the
	// observed fault campaign; campaignTel keeps the recorded event streams
	// for -trace-out.
	metricsReg  *telemetry.Registry
	campaignTel *exp.CampaignTelemetry
)

// writeCampaignTrace renders the observed campaign's event streams as one
// Chrome trace file, one process per workload in name order.
func writeCampaignTrace(path string, tel *exp.CampaignTelemetry) error {
	names := make([]string, 0, len(tel.Recorders))
	for name := range tel.Recorders {
		names = append(names, name)
	}
	sort.Strings(names)
	ct := telemetry.NewChromeTrace()
	for i, name := range names {
		ct.AddRun(name, i+1, tel.Recorders[name].Events())
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ct.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	exp := flag.String("exp", "all",
		"experiment to run: all, table1, figure4, figure5, table2, table3, table4, table5, figure6, faults, ...")
	workers := flag.Int("workers", 0,
		"parallel worker bound for the scenario engine (0 = GOMAXPROCS, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *workers > 0 {
		par.SetLimit(*workers)
	}
	if *metricsAddr != "" {
		metricsReg = telemetry.NewRegistry()
		mux := http.NewServeMux()
		mux.Handle("/metrics", metricsReg)
		mux.Handle("/debug/vars", expvar.Handler())
		if err := metricsReg.PublishExpvar("ctgdvfs"); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-addr: %v\n", err)
		}
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "metrics-addr: %v\n", err)
			}
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	runners := orderedRunners()
	ran := 0
	for _, r := range runners {
		if *exp != "all" && !r.matches(*exp) {
			continue
		}
		start := time.Now()
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("(%s completed in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *traceOut != "" {
		if campaignTel == nil {
			fmt.Fprintln(os.Stderr, "-trace-out: no traced experiment ran (use -exp faults)")
			os.Exit(1)
		}
		if err := writeCampaignTrace(*traceOut, campaignTel); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle live objects before the heap snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}
