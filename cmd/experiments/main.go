// Command experiments regenerates every table and figure of the paper's
// evaluation section. With no flags it runs all of them in order; -exp
// selects one (table1, figure4, figure5, table2, table3, table4, table5,
// figure6).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment to run: all, table1, figure4, figure5, table2, table3, table4, table5, figure6")
	flag.Parse()

	runners := orderedRunners()
	ran := 0
	for _, r := range runners {
		if *exp != "all" && !r.matches(*exp) {
			continue
		}
		start := time.Now()
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("(%s completed in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
