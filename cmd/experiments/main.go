// Command experiments regenerates every table and figure of the paper's
// evaluation section. With no flags it runs all of them in order; -exp
// selects one (table1, figure4, figure5, table2, table3, table4, table5,
// figure6). -cpuprofile and -memprofile write pprof profiles of the run
// (the usual way to inspect where the scenario engine spends its time).
//
// The fault campaign (-exp faults) replays both application workloads under
// a deterministic execution-time overrun plan and prints the
// miss-rate-vs-energy tradeoff of guard-band stretching plus worst-case
// fallback recovery. -faults seeds the plan, -overrun sets the per-task
// overrun probability, -guard sets the base guard band.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ctgdvfs/internal/exp"
	"ctgdvfs/internal/par"
)

// Fault-campaign knobs, shared with the runner table.
var (
	faultSeed    = flag.Int64("faults", exp.DefaultCampaignSpec().Seed, "fault-plan seed for the fault campaign")
	faultOverrun = flag.Float64("overrun", exp.DefaultCampaignSpec().OverrunProb,
		"per-task execution-time overrun probability for the fault campaign")
	faultGuard = flag.Float64("guard", exp.DefaultCampaignGuard,
		"base guard band (fraction of slack reserved) for the fault campaign")
)

func main() {
	exp := flag.String("exp", "all",
		"experiment to run: all, table1, figure4, figure5, table2, table3, table4, table5, figure6, faults, ...")
	workers := flag.Int("workers", 0,
		"parallel worker bound for the scenario engine (0 = GOMAXPROCS, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *workers > 0 {
		par.SetLimit(*workers)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	runners := orderedRunners()
	ran := 0
	for _, r := range runners {
		if *exp != "all" && !r.matches(*exp) {
			continue
		}
		start := time.Now()
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("(%s completed in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle live objects before the heap snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}
