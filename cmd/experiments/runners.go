package main

import (
	"fmt"
	"strconv"
	"strings"

	"ctgdvfs/internal/exp"
	"ctgdvfs/internal/faults"
	"ctgdvfs/internal/power"
	"ctgdvfs/internal/series"
)

// monitorConfig builds the Monitored campaigns' sampling config from the
// -rules flag (empty config when unset — sampling still runs, no alerts).
func monitorConfig() (exp.MonitorConfig, error) {
	if *rulesFile == "" {
		return exp.MonitorConfig{}, nil
	}
	rs, err := series.LoadRules(*rulesFile)
	if err != nil {
		return exp.MonitorConfig{}, fmt.Errorf("-rules: %w", err)
	}
	return exp.MonitorConfig{Rules: rs.Rules}, nil
}

// loadSpecFile loads -faults-spec once per runner that consumes it (nil when
// the flag is unset).
func loadSpecFile() (*faults.SpecFile, error) {
	if *faultsSpec == "" {
		return nil, nil
	}
	sf, err := faults.LoadSpecFile(*faultsSpec)
	if err != nil {
		return nil, fmt.Errorf("-faults-spec: %w", err)
	}
	return sf, nil
}

// parseFloats and parseInts decode the comma-separated sweep flags.
func parseFloats(flagName, s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: %q is not a number", flagName, p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(flagName, s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("-%s: %q is not an integer", flagName, p)
		}
		out = append(out, v)
	}
	return out, nil
}

type runner struct {
	name    string
	aliases []string
	run     func() (string, error)
}

func (r runner) matches(s string) bool {
	if s == r.name {
		return true
	}
	for _, a := range r.aliases {
		if s == a {
			return true
		}
	}
	return false
}

func orderedRunners() []runner {
	return []runner{
		{name: "table1", run: func() (string, error) {
			r, err := exp.Table1()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "figure4", run: func() (string, error) {
			r, err := exp.Figure4()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		// Figure 5 and Table 2 come from the same runs.
		{name: "figure5", aliases: []string{"table2", "mpeg"}, run: func() (string, error) {
			r, err := exp.MPEG()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "table3", aliases: []string{"cruise"}, run: func() (string, error) {
			r, err := exp.Cruise()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "table4", run: func() (string, error) {
			r, err := exp.Table4()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "table5", run: func() (string, error) {
			r, err := exp.Table5()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "figure6", run: func() (string, error) {
			r, err := exp.Figure6()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		// Extensions beyond the paper (DESIGN.md §6).
		{name: "daemon", aliases: []string{"chaos"}, run: func() (string, error) {
			r, err := exp.Daemon()
			if err != nil {
				return "", err
			}
			if err := r.Err(); err != nil {
				return "", fmt.Errorf("%w\n%s", err, r.Render())
			}
			return r.Render(), nil
		}},
		{name: "sweep", run: func() (string, error) {
			r, err := exp.Sweep(nil, nil)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "overhead", run: func() (string, error) {
			r, err := exp.Overhead()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "ablation", run: func() (string, error) {
			r, err := exp.AblationRatio()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "perscenario", run: func() (string, error) {
			r, err := exp.PerScenarioDVFS()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "robustness", run: func() (string, error) {
			r, err := exp.Robustness(5)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "faults", aliases: []string{"faultcampaign"}, run: func() (string, error) {
			spec := exp.DefaultCampaignSpec()
			spec.Seed = *faultSeed
			spec.OverrunProb = *faultOverrun
			// A spec file's perturb section replaces the flag-built plan.
			if sf, err := loadSpecFile(); err != nil {
				return "", err
			} else if sf != nil && sf.Perturb != nil {
				spec = *sf.Perturb
			}
			// Telemetry flags switch the campaign to observed mode: the
			// guarded runtimes record their event streams (-trace-out,
			// -events-out, -flight-out), publish metrics into the served
			// registry (-metrics-addr), and run the streaming health
			// analyzers (-health, /health).
			if observedMode() {
				mc, err := monitorConfig()
				if err != nil {
					return "", err
				}
				r, tel, err := exp.FaultCampaignMonitored(spec, *faultGuard, metricsReg, mc)
				if err != nil {
					return "", err
				}
				campaignTel.Store(tel)
				return r.Render(), nil
			}
			r, err := exp.FaultCampaign(spec, *faultGuard)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "scale", aliases: []string{"scaling"}, run: func() (string, error) {
			if *scaleFull {
				r, err := exp.ScaleCampaignFull()
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			}
			if *scaleTasks != 0 || *scalePEs != 0 {
				cfg := exp.ScaleConfig{Tasks: *scaleTasks, PEs: *scalePEs}
				r, err := exp.ScaleCampaign([]exp.ScaleConfig{cfg}, *scaleInstances)
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			}
			r, err := exp.ScaleCampaignQuick()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "consolidation", aliases: []string{"fleet"}, run: func() (string, error) {
			// The budget spec comes from -faults-spec's power section and/or
			// the -power-cap/-power-window flags (flags win field-by-field);
			// either way it is validated up front so a garbage cap fails with
			// a typed *power.SpecError instead of a mid-campaign surprise.
			var override *power.Budget
			if sf, err := loadSpecFile(); err != nil {
				return "", err
			} else if sf != nil && sf.Power != nil {
				override = sf.Power
			}
			if *powerCap > 0 || *powerWindow > 0 {
				if override == nil {
					override = &power.Budget{}
				}
				if *powerCap > 0 {
					override.Cap = *powerCap
				}
				if *powerWindow > 0 {
					override.Window = *powerWindow
				}
				if err := override.Validate(); err != nil {
					return "", fmt.Errorf("-power-cap/-power-window: %w", err)
				}
			}
			if observedMode() {
				mc, err := monitorConfig()
				if err != nil {
					return "", err
				}
				r, tel, err := exp.ConsolidationCampaignMonitored(*consolidationRounds, override, metricsReg, mc)
				if err != nil {
					return "", err
				}
				campaignTel.Store(tel)
				return r.Render(), nil
			}
			if override != nil {
				r, err := exp.ConsolidationCampaignBudget(*consolidationRounds, *override)
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			}
			r, err := exp.ConsolidationCampaign(*consolidationRounds)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "failover", aliases: []string{"failovercampaign"}, run: func() (string, error) {
			// A spec file's failures section replays that scripted timeline
			// on every workload instead of sweeping rates × repairs.
			if sf, err := loadSpecFile(); err != nil {
				return "", err
			} else if sf != nil && sf.Failures != nil {
				r, err := exp.FailoverCampaignSpec(*sf.Failures)
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			}
			probs, err := parseFloats("fail-rates", *failRates)
			if err != nil {
				return "", err
			}
			repairs, err := parseInts("repairs", *failRepairs)
			if err != nil {
				return "", err
			}
			r, err := exp.FailoverCampaign(*faultSeed, probs, repairs)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
	}
}
