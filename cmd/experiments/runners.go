package main

import "ctgdvfs/internal/exp"

type runner struct {
	name    string
	aliases []string
	run     func() (string, error)
}

func (r runner) matches(s string) bool {
	if s == r.name {
		return true
	}
	for _, a := range r.aliases {
		if s == a {
			return true
		}
	}
	return false
}

func orderedRunners() []runner {
	return []runner{
		{name: "table1", run: func() (string, error) {
			r, err := exp.Table1()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "figure4", run: func() (string, error) {
			r, err := exp.Figure4()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		// Figure 5 and Table 2 come from the same runs.
		{name: "figure5", aliases: []string{"table2", "mpeg"}, run: func() (string, error) {
			r, err := exp.MPEG()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "table3", aliases: []string{"cruise"}, run: func() (string, error) {
			r, err := exp.Cruise()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "table4", run: func() (string, error) {
			r, err := exp.Table4()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "table5", run: func() (string, error) {
			r, err := exp.Table5()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "figure6", run: func() (string, error) {
			r, err := exp.Figure6()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		// Extensions beyond the paper (DESIGN.md §6).
		{name: "sweep", run: func() (string, error) {
			r, err := exp.Sweep(nil, nil)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "overhead", run: func() (string, error) {
			r, err := exp.Overhead()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "ablation", run: func() (string, error) {
			r, err := exp.AblationRatio()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "perscenario", run: func() (string, error) {
			r, err := exp.PerScenarioDVFS()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "robustness", run: func() (string, error) {
			r, err := exp.Robustness(5)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{name: "faults", aliases: []string{"faultcampaign"}, run: func() (string, error) {
			spec := exp.DefaultCampaignSpec()
			spec.Seed = *faultSeed
			spec.OverrunProb = *faultOverrun
			// Telemetry flags switch the campaign to observed mode: the
			// guarded runtimes record their event streams (-trace-out),
			// publish metrics into the served registry (-metrics-addr), and
			// run the streaming health analyzers (-health, /health).
			if *traceOut != "" || *metricsAddr != "" || *healthFlag {
				r, tel, err := exp.FaultCampaignObserved(spec, *faultGuard, metricsReg)
				if err != nil {
					return "", err
				}
				campaignTel.Store(tel)
				return r.Render(), nil
			}
			r, err := exp.FaultCampaign(spec, *faultGuard)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
	}
}
