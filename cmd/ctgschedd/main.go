// Command ctgschedd is the long-running multi-tenant scheduling daemon: it
// hosts one adaptive manager per tenant behind an HTTP/JSON API (submit a
// CTG + platform, stream branch outcomes in, fetch schedules, telemetry and
// health out) with per-tenant admission control, request deadlines, panic
// isolation and periodic atomic checkpoints. A killed daemon restarted with
// the same -checkpoint-dir resumes every tenant deterministically from its
// latest snapshot.
//
// Usage:
//
//	ctgschedd -addr :8080 -checkpoint-dir /var/lib/ctgschedd
//	ctgschedd -addr :8080 -rate 200 -burst 50 -timeout 2s -events-dir ./events
//
// The API (see DESIGN.md §15):
//
//	POST   /v1/tenants                   submit a tenant spec
//	GET    /v1/tenants                   list tenant statuses
//	GET    /v1/tenants/{name}            one tenant's status
//	DELETE /v1/tenants/{name}            remove a tenant (and its snapshots)
//	POST   /v1/tenants/{name}/step       one decision vector -> one reply
//	GET    /v1/tenants/{name}/schedule   the incumbent schedule + digest
//	GET    /v1/tenants/{name}/events     flight-recorder dump (JSONL)
//	POST   /v1/tenants/{name}/checkpoint force a snapshot
//	GET    /v1/healthz                   daemon health report
//	GET    /v1/metrics                   Prometheus-style metrics
//
// SIGINT/SIGTERM shut down gracefully: in-flight steps finish, every tenant
// writes a final checkpoint, event sinks flush. SIGKILL loses at most the
// instances since the last checkpoint (bounded by -checkpoint-every).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ctgdvfs/internal/health"
	"ctgdvfs/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	ckptDir := flag.String("checkpoint-dir", "", "checkpoint directory (empty disables snapshots)")
	ckptEvery := flag.Int("checkpoint-every", 16, "snapshot period in committed instances")
	eventsDir := flag.String("events-dir", "", "stream per-tenant telemetry to <dir>/<tenant>.events.jsonl")
	rate := flag.Float64("rate", 0, "per-tenant admitted requests/second (0 = unlimited)")
	burst := flag.Float64("burst", 0, "per-tenant admission burst (0 = max(1, rate))")
	queueDepth := flag.Int("queue-depth", 0, "per-tenant request queue depth (0 = default)")
	timeout := flag.Duration("timeout", 0, "default per-step deadline when the caller sets none (0 = unbounded)")
	maxTimeout := flag.Duration("max-timeout", 0, "hard cap on caller-supplied deadlines (0 = no cap)")
	maxFailures := flag.Int("max-failures", 0, "consecutive failures before a tenant's breaker opens (0 = default)")
	baseBackoff := flag.Duration("base-backoff", 0, "initial breaker backoff (0 = default)")
	maxBackoff := flag.Duration("max-backoff", 0, "breaker backoff cap (0 = default)")
	flightWindow := flag.Int("flight-window", 0, "per-tenant flight-recorder capacity (0 = default)")
	missBudget := flag.Float64("slo-miss-rate", 0, "deadline-miss-rate SLO budget (0 disables SLO shedding)")
	sloShed := flag.Bool("slo-shed", false, "shed load while a tenant's SLO budget is blown")
	chaos := flag.Bool("chaos", false, "honor fault-injection fields in step requests (testing only)")
	seed := flag.Int64("seed", 1, "seed for per-tenant backoff jitter")
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("ctgschedd: unexpected arguments %q", flag.Args())
	}

	opts := serve.Options{
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		EventsDir:       *eventsDir,
		Rate:            *rate,
		Burst:           *burst,
		QueueDepth:      *queueDepth,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxFailures:     *maxFailures,
		BaseBackoff:     *baseBackoff,
		MaxBackoff:      *maxBackoff,
		FlightWindow:    *flightWindow,
		SLOShed:         *sloShed,
		Chaos:           *chaos,
		Seed:            *seed,
	}
	if *missBudget > 0 {
		opts.SLO = health.SLO{MaxMissRate: *missBudget}
	}
	if *eventsDir != "" {
		if err := os.MkdirAll(*eventsDir, 0o755); err != nil {
			log.Fatalf("ctgschedd: %v", err)
		}
	}

	srv, err := serve.New(opts)
	if err != nil {
		log.Fatalf("ctgschedd: %v", err)
	}
	if n := len(srv.Tenants()); n > 0 {
		log.Printf("ctgschedd: restored %d tenants from %s", n, *ckptDir)
	}

	hs := serve.NewHTTPServer(srv.Handler())
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("ctgschedd: %v", err)
	}
	log.Printf("ctgschedd: serving on http://%s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("ctgschedd: %s: shutting down", sig)
	case err := <-errc:
		log.Fatalf("ctgschedd: serve: %v", err)
	}

	// Stop accepting, finish in-flight requests, then checkpoint and flush
	// every tenant. A second signal aborts the wait.
	done := make(chan struct{})
	go func() {
		defer close(done)
		hs.Close()
		if err := srv.Close(); err != nil {
			log.Printf("ctgschedd: close: %v", err)
		}
	}()
	select {
	case <-done:
		log.Printf("ctgschedd: bye")
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "ctgschedd: %s during shutdown, aborting\n", sig)
		os.Exit(1)
	case <-time.After(30 * time.Second):
		fmt.Fprintln(os.Stderr, "ctgschedd: shutdown timed out")
		os.Exit(1)
	}
}
