// Command ctgsched generates (or loads a built-in) conditional task graph,
// schedules it with the selected algorithm, and prints the schedule, its
// expected energy, and per-scenario replay results.
//
// Usage:
//
//	ctgsched -workload random -nodes 25 -pes 3 -branches 3 -algo online
//	ctgsched -workload mpeg -algo nlp -deadline 1.5
//	ctgsched -workload cruise -dot
//
// The analyze subcommand replays a recorded telemetry capture through the
// health analyzers offline and prints a diagnosis report:
//
//	ctgsched analyze events.jsonl
//	ctgsched analyze -run "mpeg adaptive" trace.json
//
// The explain subcommand reconstructs the causal provenance of one runtime
// decision from the same captures (or a flight-recorder dump):
//
//	ctgsched explain -list events.jsonl
//	ctgsched explain -kind reschedule -instance 412 events.jsonl
//
// The watch subcommand renders live (or replayed) fleet telemetry as
// per-tenant sparkline rows — miss rate, guard level, fleet rung, chip power
// vs cap — either polling a -metrics-addr server or reading a -series-out
// dump:
//
//	ctgsched watch -addr localhost:8080
//	ctgsched watch -dump series-mpeg.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ctgdvfs"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		runAnalyze(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		runExplain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "watch" {
		runWatch(os.Args[2:])
		return
	}
	workload := flag.String("workload", "random", "workload: random, mpeg, cruise, wlan, or file")
	file := flag.String("file", "", "workload file to load (with -workload file)")
	save := flag.String("save", "", "write the (untightened) workload to this file and exit")
	seed := flag.Int64("seed", 1, "random workload seed")
	nodes := flag.Int("nodes", 25, "random workload task count")
	pes := flag.Int("pes", 3, "random workload PE count")
	branches := flag.Int("branches", 3, "random workload branch count")
	flat := flag.Bool("flat", false, "random workload: flat (Category 2) structure")
	deadline := flag.Float64("deadline", 1.6, "deadline as a factor of the nominal makespan")
	algo := flag.String("algo", "online", "algorithm: online, ref1, ref2/nlp, none (no DVFS)")
	dot := flag.Bool("dot", false, "print the CTG in Graphviz dot format and exit")
	gantt := flag.Bool("gantt", false, "also print a per-PE Gantt chart of the nominal schedule")
	traceOut := flag.String("trace-out", "",
		"write a Chrome trace-event file replaying every leaf scenario (open in chrome://tracing or https://ui.perfetto.dev)")
	flag.Parse()

	var g *ctgdvfs.Graph
	var p *ctgdvfs.Platform
	var err error
	switch *workload {
	case "random":
		cat := ctgdvfs.CategoryForkJoin
		if *flat {
			cat = ctgdvfs.CategoryFlat
		}
		g, p, err = ctgdvfs.GenerateRandom(ctgdvfs.RandomConfig{
			Seed: *seed, Nodes: *nodes, PEs: *pes, Branches: *branches, Category: cat,
		})
	case "mpeg":
		g, p, err = ctgdvfs.BuildMPEG()
	case "cruise":
		g, p, err = ctgdvfs.BuildCruise()
	case "wlan":
		g, p, err = ctgdvfs.BuildWLAN()
	case "file":
		if *file == "" {
			fmt.Fprintln(os.Stderr, "-workload file requires -file <path>")
			os.Exit(2)
		}
		g, p, err = ctgdvfs.LoadWorkload(*file)
		if err == nil && p == nil {
			err = fmt.Errorf("%s has no platform section", *file)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *save != "" {
		if err := ctgdvfs.SaveWorkload(*save, g, p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *save)
		return
	}
	if *dot {
		fmt.Print(g.Dot())
		return
	}
	g, err = ctgdvfs.TightenDeadline(g, p, *deadline)
	if err != nil {
		log.Fatal(err)
	}
	a, err := ctgdvfs.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}

	var s *ctgdvfs.PlanResult
	switch *algo {
	case "online":
		s, err = ctgdvfs.Plan(g, p)
	case "ref1":
		s, err = ctgdvfs.Schedule(a, p, ctgdvfs.PlainDLS())
		if err == nil {
			_, err = ctgdvfs.StretchWorstCase(s, ctgdvfs.ContinuousDVFS())
		}
	case "ref2", "nlp":
		s, err = ctgdvfs.Schedule(a, p, ctgdvfs.ModifiedDLS())
		if err == nil {
			_, err = ctgdvfs.StretchNLP(s, ctgdvfs.ContinuousDVFS(), ctgdvfs.NLPOptions{})
		}
	case "none":
		s, err = ctgdvfs.Schedule(a, p, ctgdvfs.ModifiedDLS())
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s workload: %d tasks, %d forks, %d minterms on %d PEs, deadline %.1f\n\n",
		*workload, g.NumTasks(), g.NumForks(), a.NumScenarios(), p.NumPEs(), g.Deadline())
	fmt.Println("task             PE  start   wcet  speed  prob")
	for task := 0; task < g.NumTasks(); task++ {
		id := ctgdvfs.TaskID(task)
		fmt.Printf("%-16s %2d  %6.1f  %5.1f  %5.2f  %.2f\n",
			g.Task(id).Name, s.PE[task], s.Start[task], s.WCET(id), s.Speed[task],
			a.ActivationProb(id))
	}
	sum, err := ctgdvfs.Exhaustive(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexpected energy %.2f, expected makespan %.1f, worst makespan %.1f, deadline misses %d/%d\n",
		sum.ExpectedEnergy, sum.ExpectedMakespan, sum.WorstMakespan, sum.Misses, a.NumScenarios())
	if *traceOut != "" {
		if err := writeScenarioTrace(*traceOut, s, a.NumScenarios()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote Chrome trace of %d scenarios to %s\n", a.NumScenarios(), *traceOut)
	}
	if *gantt {
		fmt.Println()
		fmt.Print(s.Gantt(100))
	}
	fmt.Println()
	fmt.Print(ctgdvfs.AnalyzeBreakdown(s).String())
}

// writeScenarioTrace replays every leaf scenario serially with a recorder
// attached (instance id = scenario index, so the trace lays the scenarios out
// back to back) and writes the Chrome trace-event file.
func writeScenarioTrace(path string, s *ctgdvfs.PlanResult, scenarios int) error {
	rec := ctgdvfs.NewMemoryRecorder()
	for si := 0; si < scenarios; si++ {
		inst, err := ctgdvfs.ReplayCfg(s, si, ctgdvfs.SimConfig{Recorder: rec, InstanceID: si})
		if err != nil {
			return err
		}
		rec.Record(ctgdvfs.TelemetryEvent{
			Kind:     ctgdvfs.KindInstanceFinish,
			Instance: si,
			Scenario: si,
			Energy:   inst.Energy,
			Makespan: inst.Makespan,
			Lateness: inst.Lateness,
			Met:      inst.DeadlineMet,
		})
	}
	ct := ctgdvfs.NewChromeTrace()
	ct.AddRun("scenarios", 1, rec.Events())
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ct.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
