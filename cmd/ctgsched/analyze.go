package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"ctgdvfs"
)

// runAnalyze is the `ctgsched analyze` subcommand: replay a recorded
// telemetry capture (JSONL event stream or Chrome trace-event file) through
// the health analyzers offline and print the diagnosis report — top
// hotspots, estimator drift per fork, SLO verdicts, and the
// reschedule/fallback/guard decision timeline.
//
// Usage:
//
//	ctgsched analyze events.jsonl
//	ctgsched analyze -slo-miss-rate 0.01 -top 10 events.jsonl
//	ctgsched analyze -run "mpeg adaptive" -json trace.json
func runAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	top := fs.Int("top", ctgdvfs.HealthOptions{}.Hotspots, "hotspot rankings: top N entries (0 = default)")
	driftThreshold := fs.Float64("drift-threshold", 0, "drift alert threshold on the per-fork error EWMA (0 = default)")
	missRate := fs.Float64("slo-miss-rate", 0, "SLO: allowed deadline-miss rate (0 = default, negative disables)")
	latenessP95 := fs.Float64("slo-lateness-p95", 0, "SLO: bound on rolling P95 lateness (0 disables)")
	makespanP95 := fs.Float64("slo-makespan-p95", 0, "SLO: bound on rolling P95 makespan (0 disables)")
	avgEnergy := fs.Float64("slo-avg-energy", 0, "SLO: bound on average per-instance energy (0 disables)")
	streak := fs.Int("streak", 0, "alert after this many consecutive deadline misses (0 = default)")
	run := fs.String("run", "", "Chrome traces: process (run name) to analyze; required when the trace holds several runs")
	asJSON := fs.Bool("json", false, "print the snapshot as JSON instead of the text report")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ctgsched analyze [flags] <events.jsonl | trace.json>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}

	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	events, format, err := ctgdvfs.LoadTelemetry(data, *run)
	if err != nil {
		var tail *ctgdvfs.TruncatedTailError
		if !errors.As(err, &tail) {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "warning: %v\n", err)
	}
	snap := ctgdvfs.AnalyzeTelemetry(events, ctgdvfs.HealthOptions{
		DriftThreshold: *driftThreshold,
		MissStreak:     *streak,
		Hotspots:       *top,
		SLO: ctgdvfs.HealthSLO{
			MaxMissRate:    *missRate,
			MaxLatenessP95: *latenessP95,
			MaxMakespanP95: *makespanP95,
			MaxAvgEnergy:   *avgEnergy,
		},
	})
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("%s: %s trace, %d events\n\n", fs.Arg(0), format, len(events))
	fmt.Print(snap.Report())
	if format == "chrome" {
		fmt.Println("\nnote: Chrome traces carry no estimator or instance-summary events;")
		fmt.Println("analyze the JSONL event stream for drift and SLO verdicts.")
	}
}
