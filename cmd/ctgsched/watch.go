package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"ctgdvfs/internal/series"
	"ctgdvfs/internal/telemetry"
)

// runWatch implements `ctgsched watch`: a live terminal view of fleet/manager
// telemetry as sparkline rows. Two modes:
//
//   - `-dump FILE` (or a positional file) renders a series dump written by
//     `experiments -series-out` once and exits — the replayable mode the
//     goldens pin.
//   - `-addr HOST:PORT` polls the JSON /metrics endpoint of a running
//     `experiments -metrics-addr` server every -interval, ingesting each
//     snapshot into a client-side collector and re-rendering until
//     interrupted (or for -frames renders, for scripted smoke runs).
func runWatch(args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	addr := fs.String("addr", "", "poll the live /metrics endpoint at this host:port")
	dump := fs.String("dump", "", "render a series dump file (from `experiments -series-out`) instead of polling")
	interval := fs.Duration("interval", time.Second, "poll interval in live mode")
	frames := fs.Int("frames", 0, "stop after this many live renders (0 = until interrupted)")
	width := fs.Int("width", 48, "sparkline width in columns")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ctgsched watch -addr HOST:PORT | -dump FILE [flags]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *dump == "" && *addr == "" && fs.NArg() == 1 {
		*dump = fs.Arg(0)
	}
	opts := series.WatchOptions{Width: *width}

	switch {
	case *dump != "":
		d, err := series.LoadDump(*dump)
		if err != nil {
			fmt.Fprintf(os.Stderr, "watch: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(series.RenderWatch(d, opts))
	case *addr != "":
		if err := watchLive(*addr, *interval, *frames, opts); err != nil {
			fmt.Fprintf(os.Stderr, "watch: %v\n", err)
			os.Exit(1)
		}
	default:
		fs.Usage()
		os.Exit(2)
	}
}

// watchLive polls the /metrics JSON endpoint, folds each snapshot into a
// collector (tick = poll number), and redraws the terminal after every poll.
func watchLive(addr string, interval time.Duration, frames int, opts series.WatchOptions) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	url := "http://" + addr + "/metrics"
	col := series.NewCollector(0)
	client := &http.Client{Timeout: 10 * time.Second}
	for tick := 0; frames <= 0 || tick < frames; tick++ {
		snap, err := fetchSnapshot(ctx, client, url)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		col.IngestSnapshot(tick, snap)
		// ANSI clear + home redraws in place, like top(1).
		fmt.Print("\033[H\033[2J")
		fmt.Printf("watching %s every %v (interrupt to stop)\n", url, interval)
		fmt.Print(series.RenderWatch(col.Dump(), opts))
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(interval):
		}
	}
	return nil
}

func fetchSnapshot(ctx context.Context, client *http.Client, url string) (telemetry.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return telemetry.Snapshot{}, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return telemetry.Snapshot{}, err
	}
	return snap, nil
}
