package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"ctgdvfs"
)

// runExplain is the `ctgsched explain` subcommand: reconstruct the causal
// provenance of one runtime decision from a recorded telemetry capture — a
// JSONL event stream or a flight-recorder dump (which is the same format).
// It prints why the decision fired (the trigger chain back to its root,
// estimates and thresholds included) and what it caused downstream.
//
// Usage:
//
//	ctgsched explain -list events.jsonl           # menu of decisions
//	ctgsched explain -seq 1845 events.jsonl       # one decision by id
//	ctgsched explain -kind reschedule -instance 412 events.jsonl
//	ctgsched explain -kind tenant_degraded -tenant video flight-dump.jsonl
//
// Without -seq, the kind/instance/tenant filters select the LAST matching
// decision — "why did the most recent fallback fire" is the common question.
func runExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	seq := fs.Uint64("seq", 0, "explain the decision with this exact seq id")
	instance := fs.Int("instance", -1, "filter decisions to this instance / fleet round")
	kind := fs.String("kind", "", "filter decisions to this event kind (e.g. reschedule, fallback, tenant_degraded)")
	tenant := fs.String("tenant", "", "fleet streams: filter decisions to this tenant name")
	list := fs.Bool("list", false, "list the stream's explainable decisions and exit")
	run := fs.String("run", "", "Chrome traces: process (run name) to load; note traces carry no seq ids")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ctgsched explain [flags] <events.jsonl | flight-dump.jsonl>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}

	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	events, format, err := ctgdvfs.LoadTelemetry(data, *run)
	if err != nil {
		var tail *ctgdvfs.TruncatedTailError
		if !errors.As(err, &tail) {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "warning: %v\n", err)
	}
	fmt.Printf("%s: %s stream, %d events\n\n", fs.Arg(0), format, len(events))

	if *list {
		decisions := ctgdvfs.TelemetryDecisions(events)
		if len(decisions) == 0 {
			fmt.Println("no explainable decisions in stream")
			return
		}
		fmt.Printf("%d explainable decisions:\n", len(decisions))
		for _, e := range decisions {
			fmt.Printf("  [seq %4d] inst %-5d %-15s %s\n",
				e.Seq, e.Instance, e.Kind, ctgdvfs.DescribeTelemetryEvent(e))
		}
		return
	}

	x, err := ctgdvfs.ExplainTelemetry(events, ctgdvfs.ExplainQuery{
		Seq: *seq, Instance: *instance, Kind: *kind, Tenant: *tenant,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(x.Render())
}
