package ctgdvfs_test

import (
	"fmt"

	"ctgdvfs"
)

// Example builds a two-arm conditional task graph, plans it (mapping,
// ordering and DVFS speeds), and prints the expected energy and the
// per-scenario deadline check.
func Example() {
	b := ctgdvfs.NewGraph()
	fork := b.AddTask("decide", ctgdvfs.AndNode)
	fast := b.AddTask("fast", ctgdvfs.AndNode)
	slow := b.AddTask("slow", ctgdvfs.AndNode)
	join := b.AddTask("join", ctgdvfs.OrNode)
	b.AddCondEdge(fork, fast, 1, 0)
	b.AddCondEdge(fork, slow, 1, 1)
	b.AddEdge(fast, join, 1)
	b.AddEdge(slow, join, 1)
	b.SetBranchProbs(fork, []float64{0.8, 0.2})
	g, _ := b.Build(120)

	p, _ := ctgdvfs.NewPlatform(4, 2).
		SetUniformTask(0, 5, 5).
		SetUniformTask(1, 10, 10).
		SetUniformTask(2, 20, 20).
		SetUniformTask(3, 5, 5).
		SetAllLinks(4, 0.1).
		Build()

	s, _ := ctgdvfs.Plan(g, p)
	sum, _ := ctgdvfs.Exhaustive(s)
	fmt.Printf("scenarios: %d\n", s.A.NumScenarios())
	fmt.Printf("deadline misses: %d\n", sum.Misses)
	fmt.Printf("energy saved vs full speed: %v\n",
		sum.ExpectedEnergy < 5+0.8*10+0.2*20+5)
	// Output:
	// scenarios: 2
	// deadline misses: 0
	// energy saved vs full speed: true
}

// ExampleAnalyze shows the scenario (minterm) decomposition of a graph with
// nested branches.
func ExampleAnalyze() {
	b := ctgdvfs.NewGraph()
	outer := b.AddTask("outer", ctgdvfs.AndNode)
	left := b.AddTask("left", ctgdvfs.AndNode) // nested fork
	right := b.AddTask("right", ctgdvfs.AndNode)
	ll := b.AddTask("ll", ctgdvfs.AndNode)
	lr := b.AddTask("lr", ctgdvfs.AndNode)
	b.AddCondEdge(outer, left, 0, 0)
	b.AddCondEdge(outer, right, 0, 1)
	b.AddCondEdge(left, ll, 0, 0)
	b.AddCondEdge(left, lr, 0, 1)
	b.SetBranchProbs(outer, []float64{0.6, 0.4})
	b.SetBranchProbs(left, []float64{0.5, 0.5})
	g, _ := b.Build(100)

	a, _ := ctgdvfs.Analyze(g)
	for i := 0; i < a.NumScenarios(); i++ {
		fmt.Printf("%s: %.2f\n", a.ScenarioLabel(i), a.Scenario(i).Prob)
	}
	// Output:
	// b0=0·b1=0: 0.30
	// b0=0·b1=1: 0.30
	// b0=1: 0.40
}

// ExampleNewAdaptive runs the adaptive loop over a drifting decision stream
// and reports how often it re-scheduled.
func ExampleNewAdaptive() {
	b := ctgdvfs.NewGraph()
	fork := b.AddTask("f", ctgdvfs.AndNode)
	x := b.AddTask("x", ctgdvfs.AndNode)
	y := b.AddTask("y", ctgdvfs.AndNode)
	b.AddCondEdge(fork, x, 0, 0)
	b.AddCondEdge(fork, y, 0, 1)
	b.SetBranchProbs(fork, []float64{0.9, 0.1})
	g, _ := b.Build(100)
	p, _ := ctgdvfs.NewPlatform(3, 1).
		SetUniformTask(0, 5, 5).
		SetUniformTask(1, 10, 10).
		SetUniformTask(2, 10, 10).
		SetAllLinks(1, 0).
		Build()

	mgr, _ := ctgdvfs.NewAdaptive(g, p, ctgdvfs.AdaptiveOptions{Window: 10, Threshold: 0.2})
	stream := make(ctgdvfs.Vectors, 100)
	for i := range stream {
		stream[i] = []int{1} // the profile said outcome 0; reality disagrees
	}
	st, _ := mgr.Run(stream)
	fmt.Printf("adapted: %v\n", st.Calls > 0)
	fmt.Printf("misses: %d\n", st.Misses)
	// Output:
	// adapted: true
	// misses: 0
}
