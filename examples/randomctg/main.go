// Random-CTG example: generate a TGFF-style conditional task graph and
// compare the three scheduling/DVFS pipelines of the paper's Table 1 on it —
// reference algorithm 1 (plain list scheduling + probability-blind
// stretching), reference algorithm 2 (modified DLS + NLP), and the online
// algorithm (modified DLS + stretching heuristic).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ctgdvfs"
)

func main() {
	seed := flag.Int64("seed", 7, "generator seed")
	nodes := flag.Int("nodes", 25, "task count")
	pes := flag.Int("pes", 3, "PE count")
	branches := flag.Int("branches", 3, "branch fork count")
	flat := flag.Bool("flat", false, "generate a Category 2 (flat) graph instead of fork-join")
	flag.Parse()

	cat := ctgdvfs.CategoryForkJoin
	if *flat {
		cat = ctgdvfs.CategoryFlat
	}
	g, p, err := ctgdvfs.GenerateRandom(ctgdvfs.RandomConfig{
		Seed: *seed, Nodes: *nodes, PEs: *pes, Branches: *branches, Category: cat,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, err = ctgdvfs.TightenDeadline(g, p, 1.6)
	if err != nil {
		log.Fatal(err)
	}
	a, err := ctgdvfs.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random CTG %d/%d/%d (category %d): %d edges, %d minterms, deadline %.0f\n\n",
		*nodes, *pes, *branches, cat, g.NumEdges(), a.NumScenarios(), g.Deadline())

	run := func(name string, build func() (*ctgdvfs.PlanResult, error)) float64 {
		start := time.Now()
		s, err := build()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		sum, err := ctgdvfs.Exhaustive(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s energy %8.2f   worst makespan %7.1f   misses %d   runtime %v\n",
			name, sum.ExpectedEnergy, sum.WorstMakespan, sum.Misses, elapsed)
		return sum.ExpectedEnergy
	}

	ref1 := run("reference alg 1", func() (*ctgdvfs.PlanResult, error) {
		s, err := ctgdvfs.Schedule(a, p, ctgdvfs.PlainDLS())
		if err != nil {
			return nil, err
		}
		_, err = ctgdvfs.StretchWorstCase(s, ctgdvfs.ContinuousDVFS())
		return s, err
	})
	ref2 := run("reference alg 2 (NLP)", func() (*ctgdvfs.PlanResult, error) {
		s, err := ctgdvfs.Schedule(a, p, ctgdvfs.ModifiedDLS())
		if err != nil {
			return nil, err
		}
		_, err = ctgdvfs.StretchNLP(s, ctgdvfs.ContinuousDVFS(), ctgdvfs.NLPOptions{})
		return s, err
	})
	online := run("online algorithm", func() (*ctgdvfs.PlanResult, error) {
		return ctgdvfs.Plan(g, p)
	})

	fmt.Printf("\nnormalized (online = 100): ref1 %.0f, ref2 %.0f, online 100\n",
		100*ref1/online, 100*ref2/online)
}
