// Cruise-control example: the paper's second application. A 32-task
// automotive CTG with two branch forks runs periodically on 5 ECUs with a
// deadline twice the optimal schedule length; the adaptive runtime follows
// the road conditions (uphill/downhill/straight/bumpy) as they change.
package main

import (
	"flag"
	"fmt"
	"log"

	"ctgdvfs"
)

func main() {
	seed := flag.Int64("seed", 42, "road sequence seed")
	instances := flag.Int("n", 1000, "control periods to simulate")
	flag.Parse()

	g, p, err := ctgdvfs.BuildCruise()
	if err != nil {
		log.Fatal(err)
	}
	// The paper fixes the deadline at double the optimum schedule length.
	g, err = ctgdvfs.TightenDeadline(g, p, 2)
	if err != nil {
		log.Fatal(err)
	}
	a, err := ctgdvfs.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cruise controller: %d tasks on %d PEs, %d minterms, deadline %.0f\n",
		g.NumTasks(), p.NumPEs(), a.NumScenarios(), g.Deadline())
	for i := 0; i < a.NumScenarios(); i++ {
		fmt.Printf("  minterm %-12s prob %.2f (%d tasks)\n",
			a.ScenarioLabel(i), a.Scenario(i).Prob, a.Scenario(i).Active.Count())
	}

	road := ctgdvfs.RoadSequence(g, *seed, *instances)

	static, err := ctgdvfs.Plan(g, p)
	if err != nil {
		log.Fatal(err)
	}
	stStatic, err := ctgdvfs.RunStatic(static, road)
	if err != nil {
		log.Fatal(err)
	}

	for _, threshold := range []float64{0.5, 0.1} {
		mgr, err := ctgdvfs.NewAdaptive(g, p, ctgdvfs.AdaptiveOptions{
			Window: 20, Threshold: threshold,
		})
		if err != nil {
			log.Fatal(err)
		}
		st, err := mgr.Run(road)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nthreshold %.1f over %d periods:\n", threshold, *instances)
		fmt.Printf("  non-adaptive: avg energy %.2f (misses %d)\n", stStatic.AvgEnergy, stStatic.Misses)
		fmt.Printf("  adaptive:     avg energy %.2f (misses %d, %d re-schedules)\n",
			st.AvgEnergy, st.Misses, st.Calls)
		fmt.Printf("  saving: %.1f%%\n", 100*(stStatic.AvgEnergy-st.AvgEnergy)/stStatic.AvgEnergy)
	}
}
