// Faultcampaign: inject deterministic execution-time overruns into the MPEG
// decoder workload and compare three runtimes — the always-full-speed static
// schedule, the adaptive runtime with no overrun awareness, and the guarded
// adaptive runtime with worst-case fallback recovery. Shows the
// miss-rate-vs-energy tradeoff the fault-tolerance layer buys.
package main

import (
	"fmt"
	"log"

	"ctgdvfs"
)

func main() {
	// The MPEG macroblock decoder on 3 PEs, deadline at 1.6× the nominal
	// full-speed makespan.
	g0, p, err := ctgdvfs.BuildMPEG()
	if err != nil {
		log.Fatal(err)
	}
	g, err := ctgdvfs.TightenDeadline(g0, p, 1.6)
	if err != nil {
		log.Fatal(err)
	}

	// Profile the first 1000 macroblocks of a clip, measure the next 1000.
	vec := ctgdvfs.MovieClips()[0].Generate(g, 2000)
	train, test := vec[:1000], vec[1000:]
	if err := ctgdvfs.ApplyProfile(g, ctgdvfs.AverageProbs(g, train)); err != nil {
		log.Fatal(err)
	}

	// A seeded fault plan: every task execution overruns its WCET by 20%
	// with probability 0.2. Same seed, same perturbations — across runs,
	// runtimes and worker bounds.
	plan, err := ctgdvfs.NewFaultPlan(ctgdvfs.FaultSpec{
		Seed: 42, OverrunProb: 0.2, OverrunFactor: 1.2,
	}, g.NumTasks(), p.NumPEs())
	if err != nil {
		log.Fatal(err)
	}

	// Runtime 1: the adaptive runtime exactly as the paper runs it — all
	// slack spent on DVFS, no overrun margin.
	unguarded, err := ctgdvfs.NewAdaptive(g, p, ctgdvfs.AdaptiveOptions{
		Window: 20, Threshold: 0.1, Faults: plan,
	})
	if err != nil {
		log.Fatal(err)
	}
	stU, err := unguarded.Run(test)
	if err != nil {
		log.Fatal(err)
	}

	// Runtime 2: guard band (20% of each task's slack held back) plus a
	// precomputed full-speed fallback schedule; instances that still miss on
	// the guarded schedule are re-run on the fallback, and a miss-rate
	// circuit breaker widens the guard band under sustained overruns.
	guarded, err := ctgdvfs.NewAdaptive(g, p, ctgdvfs.AdaptiveOptions{
		Window: 20, Threshold: 0.1, Faults: plan,
		GuardBand: 0.2, Recovery: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	stG, err := guarded.Run(test)
	if err != nil {
		log.Fatal(err)
	}

	// Runtime 3: the always-full-speed baseline — the guarded runtime's own
	// fallback schedule replayed statically under the same plan.
	stF, err := ctgdvfs.RunStaticCfg(guarded.Fallback(), test, ctgdvfs.SimConfig{Faults: plan})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d instances, %d fault-perturbed task executions\n\n", stG.Instances, stG.Overruns)
	row := func(name string, st ctgdvfs.RunStats) {
		fmt.Printf("  %-18s misses %4d (%5.1f%%)   avg energy %7.1f (%5.1f%% of full speed)\n",
			name, st.Misses, 100*float64(st.Misses)/float64(st.Instances),
			st.AvgEnergy, 100*st.AvgEnergy/stF.AvgEnergy)
	}
	row("full speed", stF)
	row("unguarded adaptive", stU)
	row("guarded+fallback", stG)
	fmt.Printf("\nrecovery: %d fallback activations, %d misses avoided, max guard level %d\n",
		stG.FallbackActivations, stG.MissesAvoided, stG.MaxGuardLevel)
}
