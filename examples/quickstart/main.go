// Quickstart: build the paper's running example CTG (Figure 1), map it onto
// a small heterogeneous MPSoC, assign DVFS speeds with the online stretching
// heuristic, and replay every scenario to verify energy and deadline.
package main

import (
	"fmt"
	"log"

	"ctgdvfs"
)

func main() {
	// The CTG of the paper's Example 1: eight tasks, two nested branch
	// forks (a at τ3, b at τ5), and an or-node join τ8.
	b := ctgdvfs.NewGraph()
	t1 := b.AddTask("tau1", ctgdvfs.AndNode)
	t2 := b.AddTask("tau2", ctgdvfs.AndNode)
	t3 := b.AddTask("tau3", ctgdvfs.AndNode) // fork a
	t4 := b.AddTask("tau4", ctgdvfs.AndNode)
	t5 := b.AddTask("tau5", ctgdvfs.AndNode) // fork b
	t6 := b.AddTask("tau6", ctgdvfs.AndNode)
	t7 := b.AddTask("tau7", ctgdvfs.AndNode)
	t8 := b.AddTask("tau8", ctgdvfs.OrNode)
	b.AddEdge(t1, t2, 4)
	b.AddEdge(t1, t3, 2)
	b.AddCondEdge(t3, t4, 3, 0) // condition a1
	b.AddCondEdge(t3, t5, 3, 1) // condition a2
	b.AddCondEdge(t5, t6, 2, 0) // condition b1
	b.AddCondEdge(t5, t7, 2, 1) // condition b2
	b.AddEdge(t2, t8, 4)
	b.AddEdge(t4, t8, 3)
	b.SetBranchProbs(t3, []float64{0.4, 0.6})
	b.SetBranchProbs(t5, []float64{0.5, 0.5})
	g, err := b.Build(90)
	if err != nil {
		log.Fatal(err)
	}

	// A 2-PE platform: PE0 is fast, PE1 trades speed for energy.
	pb := ctgdvfs.NewPlatform(8, 2)
	wcets := []float64{8, 12, 6, 10, 6, 14, 9, 7}
	for task, w := range wcets {
		pb.SetTask(task, []float64{w, w * 1.3}, []float64{w, w * 0.7})
	}
	pb.SetAllLinks(2, 0.05)
	p, err := pb.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Scenario analysis: leaf minterms, activation probabilities, mutual
	// exclusion.
	a, err := ctgdvfs.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d leaf minterms:\n", a.NumScenarios())
	for i := 0; i < a.NumScenarios(); i++ {
		fmt.Printf("  %-12s prob %.2f, %d active tasks\n",
			a.ScenarioLabel(i), a.Scenario(i).Prob, a.Scenario(i).Active.Count())
	}
	fmt.Printf("tau4/tau5 mutually exclusive: %v\n\n", a.MutuallyExclusive(t4, t5))

	// The online algorithm: modified DLS + stretching heuristic.
	s, err := ctgdvfs.Plan(g, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedule (task → PE @ nominal start, DVFS speed):")
	for task := 0; task < g.NumTasks(); task++ {
		fmt.Printf("  %-5s → PE%d @ %5.1f, speed %.2f\n",
			g.Task(ctgdvfs.TaskID(task)).Name, s.PE[task], s.Start[task], s.Speed[task])
	}
	fmt.Printf("expected energy: %.2f (full speed would be %.2f)\n\n",
		s.ExpectedEnergy(), fullSpeedEnergy(s, a))

	// Ground truth: replay every scenario.
	sum, err := ctgdvfs.Exhaustive(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay: expected energy %.2f, worst makespan %.1f (deadline %.0f), misses %d\n",
		sum.ExpectedEnergy, sum.WorstMakespan, g.Deadline(), sum.Misses)
}

func fullSpeedEnergy(s *ctgdvfs.PlanResult, a *ctgdvfs.Analysis) float64 {
	total := 0.0
	for task := 0; task < s.G.NumTasks(); task++ {
		total += a.ActivationProb(ctgdvfs.TaskID(task)) * s.NominalEnergy(ctgdvfs.TaskID(task))
	}
	return total
}
