// Telemetry: attach the structured event stream and the metrics registry to
// an adaptive run of the MPEG decoder workload, then export the replayed
// instances as a Chrome trace-event file. Open the file in chrome://tracing
// or https://ui.perfetto.dev: one row per PE (plus interconnect links), task
// slices with speed/energy args, flow arrows along communication edges, and
// instant events marking every re-scheduling decision.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ctgdvfs"
)

func main() {
	traceOut := flag.String("trace-out", "telemetry_trace.json", "Chrome trace-event output file")
	jsonlOut := flag.String("events-out", "", "also dump the raw event stream as JSON lines")
	n := flag.Int("n", 50, "measured instances")
	flag.Parse()

	// The MPEG macroblock decoder, profiled on one clip and measured on the
	// next — the same setup as the paper's Figure 5 runs.
	g0, p, err := ctgdvfs.BuildMPEG()
	if err != nil {
		log.Fatal(err)
	}
	g, err := ctgdvfs.TightenDeadline(g0, p, 1.6)
	if err != nil {
		log.Fatal(err)
	}
	vec := ctgdvfs.MovieClips()[0].Generate(g, 1000+*n)
	if err := ctgdvfs.ApplyProfile(g, ctgdvfs.AverageProbs(g, vec[:1000])); err != nil {
		log.Fatal(err)
	}

	// One recorder buffers events for the trace export; the registry
	// mirrors the runtime's counters live; the health analyzer runs the
	// drift/SLO/hotspot monitors over the same stream. All are optional and
	// independent — a nil Recorder keeps the runtime allocation-free and
	// bit-for-bit identical to an uninstrumented run, and the analyzer only
	// observes.
	rec := ctgdvfs.NewMemoryRecorder()
	reg := ctgdvfs.NewMetricsRegistry()
	mon := ctgdvfs.NewHealthAnalyzer(ctgdvfs.HealthOptions{Metrics: reg})
	m, err := ctgdvfs.NewAdaptive(g, p, ctgdvfs.AdaptiveOptions{
		Window: 20, Threshold: 0.1,
		Recorder: ctgdvfs.MultiRecorder{rec, mon},
		Metrics:  reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	st, err := m.Run(vec[1000:])
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replayed %d instances: avg energy %.2f, makespan P50/P95/P99 %.1f/%.1f/%.1f, %d reschedules\n",
		st.Instances, st.AvgEnergy, st.MakespanP50, st.MakespanP95, st.MakespanP99, st.Calls)

	// The event stream, by kind.
	fmt.Println("\nrecorded events:")
	byKind := rec.CountByKind()
	for _, k := range []ctgdvfs.TelemetryKind{
		ctgdvfs.KindInstanceStart, ctgdvfs.KindTaskSlice, ctgdvfs.KindCommSlice,
		ctgdvfs.KindEstimate, ctgdvfs.KindReschedule, ctgdvfs.KindStretch,
		ctgdvfs.KindInstanceFinish,
	} {
		fmt.Printf("  %-16s %6d\n", k, byKind[k])
	}

	// The registry snapshot — the same JSON the -metrics-addr HTTP endpoint
	// of cmd/experiments serves.
	fmt.Println("\nmetrics snapshot:")
	if err := reg.WriteJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The streaming health monitor's diagnosis — the same report `ctgsched
	// analyze` produces offline from the JSONL or trace file written below.
	fmt.Println("\nhealth monitor:")
	fmt.Print(mon.Health().Report())

	// Chrome trace export.
	ct := ctgdvfs.NewChromeTrace()
	ct.AddRun("mpeg adaptive", 1, rec.Events())
	f, err := os.Create(*traceOut)
	if err != nil {
		log.Fatal(err)
	}
	if err := ct.Write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d trace events to %s (open in chrome://tracing or https://ui.perfetto.dev)\n",
		ct.Len(), *traceOut)

	if *jsonlOut != "" {
		f, err := os.Create(*jsonlOut)
		if err != nil {
			log.Fatal(err)
		}
		jr := ctgdvfs.NewJSONLRecorder(f)
		for _, ev := range rec.Events() {
			jr.Record(ev)
		}
		if err := jr.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote raw event stream to %s\n", *jsonlOut)
	}
}
