// WLAN receiver example: the paper's §I motivating case of task-level
// branching — an 802.11b physical layer whose preamble mode and payload
// modulation scheme are selected per frame. Under a fading channel, the
// rate distribution drifts and the adaptive runtime re-schedules to follow
// it.
package main

import (
	"flag"
	"fmt"
	"log"

	"ctgdvfs"
)

func main() {
	seed := flag.Int64("seed", 7, "channel seed")
	frames := flag.Int("n", 1000, "frames to receive")
	flag.Parse()

	g, p, err := ctgdvfs.BuildWLAN()
	if err != nil {
		log.Fatal(err)
	}
	g, err = ctgdvfs.TightenDeadline(g, p, 1.6)
	if err != nil {
		log.Fatal(err)
	}
	a, err := ctgdvfs.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("802.11b receive CTG: %d tasks, %d forks (one 4-way), %d scenarios, deadline %.0f\n",
		g.NumTasks(), g.NumForks(), a.NumScenarios(), g.Deadline())

	vec := ctgdvfs.WLANChannelTrace(g, *seed, *frames)
	static, err := ctgdvfs.Plan(g, p)
	if err != nil {
		log.Fatal(err)
	}
	stStatic, err := ctgdvfs.RunStatic(static, vec)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := ctgdvfs.NewAdaptive(g, p, ctgdvfs.AdaptiveOptions{Window: 20, Threshold: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	stAdaptive, err := mgr.Run(vec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d frames under a fading channel:\n", *frames)
	fmt.Printf("  static online:  avg energy %.2f (misses %d)\n", stStatic.AvgEnergy, stStatic.Misses)
	fmt.Printf("  adaptive:       avg energy %.2f (misses %d, %d re-schedules)\n",
		stAdaptive.AvgEnergy, stAdaptive.Misses, stAdaptive.Calls)
	fmt.Printf("  saving: %.1f%%\n",
		100*(stStatic.AvgEnergy-stAdaptive.AvgEnergy)/stStatic.AvgEnergy)

	fmt.Println("\nper-PE breakdown of the adaptive runtime's current schedule:")
	fmt.Print(ctgdvfs.AnalyzeBreakdown(mgr.Schedule()).String())
}
