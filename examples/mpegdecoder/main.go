// MPEG decoder example: run the paper's first adaptive experiment on one
// movie clip — profile the decoder on a training half, then compare the
// non-adaptive online algorithm against the window-based adaptive runtime on
// the testing half.
package main

import (
	"flag"
	"fmt"
	"log"

	"ctgdvfs"
)

func main() {
	clipName := flag.String("clip", "Airwolf", "movie clip (Airwolf, Bike, Bus, Coaster, Flower, Shuttle, Tennis, Train)")
	instances := flag.Int("n", 2000, "macroblocks to decode (half train, half test)")
	threshold := flag.Float64("threshold", 0.1, "adaptation threshold T")
	window := flag.Int("window", 20, "sliding window length L")
	perScenario := flag.Bool("perscenario", false, "use scenario-conditioned DVFS (extension)")
	flag.Parse()

	g, p, err := ctgdvfs.BuildMPEG()
	if err != nil {
		log.Fatal(err)
	}
	g, err = ctgdvfs.TightenDeadline(g, p, 1.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MPEG macroblock CTG: %d tasks, %d branch forks, %d leaf minterms, deadline %.0f\n",
		g.NumTasks(), g.NumForks(), mustAnalyze(g).NumScenarios(), g.Deadline())

	var clip *ctgdvfs.Movie
	for _, m := range ctgdvfs.MovieClips() {
		if m.Name == *clipName {
			clip = &m
			break
		}
	}
	if clip == nil {
		log.Fatalf("unknown clip %q", *clipName)
	}

	vec := clip.Generate(g, *instances)
	train, test := vec[:len(vec)/2], vec[len(vec)/2:]

	// Non-adaptive: profile the training half, schedule once.
	profile := ctgdvfs.AverageProbs(g, train)
	gProf := g.Clone()
	if err := ctgdvfs.ApplyProfile(gProf, profile); err != nil {
		log.Fatal(err)
	}
	static, err := ctgdvfs.Plan(gProf, p)
	if err != nil {
		log.Fatal(err)
	}
	stStatic, err := ctgdvfs.RunStatic(static, test)
	if err != nil {
		log.Fatal(err)
	}

	// Adaptive: same starting profile, window-based re-scheduling.
	mgr, err := ctgdvfs.NewAdaptive(gProf, p, ctgdvfs.AdaptiveOptions{
		Window: *window, Threshold: *threshold, PerScenario: *perScenario,
	})
	if err != nil {
		log.Fatal(err)
	}
	stAdaptive, err := mgr.Run(test)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nclip %s, %d testing macroblocks:\n", clip.Name, len(test))
	fmt.Printf("  non-adaptive online: avg energy %.2f, avg makespan %.1f, misses %d\n",
		stStatic.AvgEnergy, stStatic.AvgMakespan, stStatic.Misses)
	fmt.Printf("  adaptive (L=%d, T=%.2f): avg energy %.2f, avg makespan %.1f, misses %d, %d re-schedules\n",
		*window, *threshold, stAdaptive.AvgEnergy, stAdaptive.AvgMakespan, stAdaptive.Misses, stAdaptive.Calls)
	fmt.Printf("  energy saving: %.1f%%\n",
		100*(stStatic.AvgEnergy-stAdaptive.AvgEnergy)/stStatic.AvgEnergy)
}

func mustAnalyze(g *ctgdvfs.Graph) *ctgdvfs.Analysis {
	a, err := ctgdvfs.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	return a
}
