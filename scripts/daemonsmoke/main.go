// Command daemonsmoke is the end-to-end kill-restart check `make verify`
// runs against the real ctgschedd binary: build it, start it with a
// checkpoint directory, submit the mpeg tenant over HTTP, stream decision
// vectors in, kill the process with SIGKILL mid-run, restart it on the same
// directory, and require that it resumes from its latest snapshot and
// finishes the run bit-for-bit identical to an uninterrupted in-process
// reference — replies and final schedule digest alike.
//
//	go run ./scripts/daemonsmoke            # uses a temp dir and a free port
//	go run ./scripts/daemonsmoke -steps 30 -kill-at 19
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"ctgdvfs/internal/apps/mpeg"
	"ctgdvfs/internal/serve"
	"ctgdvfs/internal/trace"
)

var (
	steps     = flag.Int("steps", 25, "decision vectors to stream")
	killAt    = flag.Int("kill-at", 17, "SIGKILL the daemon after this many steps")
	ckptEvery = flag.Int("checkpoint-every", 5, "daemon snapshot period")
	seed      = flag.Int64("seed", 9, "decision-vector seed")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "daemonsmoke: %v\n", err)
		os.Exit(1)
	}
}

// freePort reserves an ephemeral port and releases it for the daemon. The
// tiny reuse window is fine for a smoke test on a loopback interface.
func freePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// startDaemon launches the built binary and waits until its API answers.
func startDaemon(bin, addr, ckptDir, eventsDir string) (*exec.Cmd, error) {
	cmd := exec.Command(bin,
		"-addr", addr,
		"-checkpoint-dir", ckptDir,
		"-checkpoint-every", fmt.Sprint(*ckptEvery),
		"-events-dir", eventsDir,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	cl := &serve.Client{BaseURL: "http://" + addr}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err := cl.Health(ctx)
		cancel()
		if err == nil {
			return cmd, nil
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			return nil, fmt.Errorf("daemon on %s never became healthy: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func run() error {
	if *killAt <= 0 || *killAt >= *steps {
		return fmt.Errorf("need 0 < -kill-at < -steps")
	}
	dir, err := os.MkdirTemp("", "daemonsmoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ckptDir := filepath.Join(dir, "ckpt")
	eventsDir := filepath.Join(dir, "events")

	bin := filepath.Join(dir, "ctgschedd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/ctgschedd")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build ctgschedd: %w", err)
	}

	spec := serve.TenantSpec{Name: "mpeg", Workload: "mpeg", DeadlineFactor: 1.6, Threshold: 1e-9}
	g, _, err := mpeg.Build()
	if err != nil {
		return err
	}
	vecs := trace.Fluctuating(g, *seed, *steps, 0.4)

	// Uninterrupted in-process reference: the ground truth every reply and
	// the final digest must match.
	ref, err := serve.New(serve.Options{})
	if err != nil {
		return err
	}
	defer ref.Close()
	if _, err := ref.CreateTenant(spec); err != nil {
		return err
	}
	want := make([]serve.StepReply, *steps)
	for i, v := range vecs {
		if want[i], err = ref.Step(context.Background(), "mpeg", v, serve.ChaosSpec{}); err != nil {
			return fmt.Errorf("reference step %d: %w", i, err)
		}
	}
	wantSched, err := ref.Schedule("mpeg")
	if err != nil {
		return err
	}

	// Generation 1: submit, stream until the kill point, SIGKILL.
	addr, err := freePort()
	if err != nil {
		return err
	}
	cmd, err := startDaemon(bin, addr, ckptDir, eventsDir)
	if err != nil {
		return err
	}
	cl := &serve.Client{BaseURL: "http://" + addr}
	ctx := context.Background()
	if _, err := cl.Submit(ctx, spec); err != nil {
		cmd.Process.Kill()
		return fmt.Errorf("submit: %w", err)
	}
	for i := 0; i < *killAt; i++ {
		got, err := cl.Step(ctx, "mpeg", vecs[i], serve.ChaosSpec{})
		if err != nil {
			cmd.Process.Kill()
			return fmt.Errorf("step %d: %w", i, err)
		}
		if got != want[i] {
			cmd.Process.Kill()
			return fmt.Errorf("step %d diverged from reference:\n got %+v\nwant %+v", i, got, want[i])
		}
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		return err
	}
	cmd.Wait() // reaps the zombie; the error is the kill, not a failure

	// Generation 2: restart on the same checkpoint directory and resume.
	addr2, err := freePort()
	if err != nil {
		return err
	}
	cmd2, err := startDaemon(bin, addr2, ckptDir, eventsDir)
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	cl2 := &serve.Client{BaseURL: "http://" + addr2}
	st, err := cl2.Status(ctx, "mpeg")
	if err != nil {
		return fmt.Errorf("restored status: %w", err)
	}
	if !st.Restored {
		return fmt.Errorf("tenant did not report restored state after restart")
	}
	if st.Instances > *killAt || st.Instances < *killAt-*ckptEvery {
		return fmt.Errorf("resumed at instance %d, outside the (%d, %d] recovery bound",
			st.Instances, *killAt-*ckptEvery, *killAt)
	}
	for i := st.Instances; i < *steps; i++ {
		got, err := cl2.Step(ctx, "mpeg", vecs[i], serve.ChaosSpec{})
		if err != nil {
			return fmt.Errorf("resumed step %d: %w", i, err)
		}
		if got != want[i] {
			return fmt.Errorf("resumed step %d diverged from reference:\n got %+v\nwant %+v", i, got, want[i])
		}
	}
	gotSched, err := cl2.Schedule(ctx, "mpeg")
	if err != nil {
		return err
	}
	if gotSched.Digest != wantSched.Digest {
		return fmt.Errorf("final digest %s != reference %s", gotSched.Digest, wantSched.Digest)
	}
	fmt.Printf("daemonsmoke: OK — killed at step %d, resumed at %d, %d steps replayed bit-for-bit, digest %s\n",
		*killAt, st.Instances, *steps-st.Instances, gotSched.Digest)
	return nil
}
