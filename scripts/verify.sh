#!/bin/sh
# verify.sh — the repo's full verification pipeline:
#   vet, build, tests with the race detector, a one-iteration smoke run of
#   every benchmark (catches bit-rot in the bench harness without paying for
#   real measurement), a short parser fuzzing session, and a fault-campaign
#   run of the fault-tolerance layer.
# Run from anywhere; operates on the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

# The exp suite replays every paper experiment; under the race detector on a
# small machine that legitimately takes ~10 minutes, so raise go test's
# default 10m per-package timeout rather than trimming coverage.
echo "== go test -race =="
go test -race -timeout 30m ./...

echo "== bench smoke (1 iteration each) =="
go test -run '^$' -bench . -benchtime 1x ./... >/dev/null

echo "== fuzz smoke (parser, 5s) =="
go test -run '^$' -fuzz FuzzRead -fuzztime 5s ./internal/ctgio >/dev/null

echo "== fault-campaign + telemetry smoke =="
trace_tmp="$(mktemp)"
go run ./cmd/experiments -exp faults -trace-out "$trace_tmp" >/dev/null
go run ./scripts/checktrace "$trace_tmp"
rm -f "$trace_tmp"

echo "verify: OK"
