#!/bin/sh
# verify.sh — the repo's full verification pipeline:
#   vet, build, tests with the race detector, and a one-iteration smoke run
#   of every benchmark (catches bit-rot in the bench harness without paying
#   for real measurement).
# Run from anywhere; operates on the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (1 iteration each) =="
go test -run '^$' -bench . -benchtime 1x ./... >/dev/null

echo "verify: OK"
