#!/bin/sh
# verify.sh — the repo's full verification pipeline:
#   vet, build, the full test suite, tests again under the race detector in
#   short mode (the heavy exp replays honor -short; the race pass is about
#   concurrency bugs, not numerics), per-package coverage floors for the
#   adaptive manager and the fault layer, a one-iteration smoke run of every
#   benchmark (catches bit-rot in the bench harness without paying for real
#   measurement), the bench-regression gate against the committed BENCH_*.json
#   baselines, a short parser fuzzing session, a fault-campaign and a
#   failover-campaign run of the fault-tolerance layer, a bounded run of the
#   consolidation campaign (power-budget governor vs ungoverned baseline), a
#   bounded run of the large-scale warm-start tier (one 10^3-task cell), an
#   end-to-end health-analyzer pass over a captured event stream, an
#   end-to-end provenance pass (captured campaign streams + flight-recorder
#   dumps replayed through `ctgsched explain`), an end-to-end monitoring
#   pass (alert rules + series capture replayed through `ctgsched explain`
#   and `ctgsched watch`, with the Prometheus exposition linted), the daemon
#   chaos campaign (panic isolation, request floods, kill-restart recovery
#   on an in-process daemon pair), and a daemon smoke run that builds the
#   real ctgschedd binary, SIGKILLs it mid-run, and verifies the restart
#   resumes bit-for-bit from its latest checkpoint. A best-effort
#   govulncheck pass runs early when the tool is installed (advisory only —
#   the container may be offline).
# Run from anywhere; operates on the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

# Best-effort vulnerability scan: advisory only, because the container may be
# offline (govulncheck needs the vuln DB) or the tool may not be installed.
echo "== govulncheck (best-effort) =="
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./... || echo "govulncheck: advisory failure ignored (offline or findings above)"
else
	echo "govulncheck not installed; skipping"
fi

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

# The full exp suite under the race detector takes ~30 minutes on a small
# machine; -short keeps the race pass focused on concurrency coverage while
# the full-fidelity numerics ran un-instrumented above.
echo "== go test -race -short =="
go test -race -short -timeout 30m ./...

echo "== coverage floors (core, faults, power, telemetry, health) =="
sh scripts/cover.sh

echo "== bench smoke (1 iteration each) =="
go test -run '^$' -bench . -benchtime 1x ./... >/dev/null

echo "== bench-regression gate =="
go run ./scripts/benchgate BENCH_parallel.json BENCH_telemetry.json BENCH_failover.json BENCH_scale.json BENCH_consolidation.json BENCH_provenance.json BENCH_monitor.json BENCH_daemon.json

echo "== fuzz smoke (parser, 5s) =="
go test -run '^$' -fuzz FuzzRead -fuzztime 5s ./internal/ctgio >/dev/null

echo "== fault-campaign + telemetry smoke =="
trace_tmp="$(mktemp)"
go run ./cmd/experiments -exp faults -trace-out "$trace_tmp" >/dev/null
go run ./scripts/checktrace "$trace_tmp"
rm -f "$trace_tmp"

echo "== failover-campaign smoke =="
go run ./cmd/experiments -exp failover >/dev/null

echo "== consolidation-campaign smoke (80 rounds, health attached) =="
go run ./cmd/experiments -exp consolidation -consolidation-rounds 80 -health >/dev/null

echo "== scale-tier smoke (10^3-task cell, warm vs full) =="
go run ./cmd/experiments -exp scale -scale-tasks 1000 -scale-pes 16 -scale-instances 24 >/dev/null

echo "== health-analyzer smoke (capture + analyze) =="
events_tmp="$(mktemp)"
example_trace_tmp="$(mktemp)"
go run ./examples/telemetry -events-out "$events_tmp" -trace-out "$example_trace_tmp" >/dev/null
go run ./cmd/ctgsched analyze "$events_tmp" >/dev/null
go run ./cmd/ctgsched analyze -run "mpeg adaptive" "$example_trace_tmp" >/dev/null
rm -f "$events_tmp" "$example_trace_tmp"

echo "== provenance smoke (capture + flight dumps + explain) =="
prov_dir="$(mktemp -d)"
go run ./cmd/experiments -exp faults -events-out "$prov_dir/ev" -flight-out "$prov_dir/fl" >/dev/null
go run ./cmd/ctgsched explain -list "$prov_dir/ev-mpeg.jsonl" >/dev/null
go run ./cmd/ctgsched explain -kind reschedule "$prov_dir/ev-mpeg.jsonl" >/dev/null
go run ./cmd/ctgsched explain -kind fallback "$prov_dir/ev-cruise.jsonl" >/dev/null
# The first trigger dump ends on the event that armed it, so it always holds
# an explainable decision; the final window holds whatever the run ended on.
go run ./cmd/ctgsched explain "$prov_dir/fl-mpeg-1.jsonl" >/dev/null
go run ./cmd/ctgsched explain "$prov_dir/fl-mpeg-final.jsonl" >/dev/null
rm -rf "$prov_dir"

echo "== daemon chaos campaign (panic isolation, floods, kill-restart) =="
go run ./cmd/experiments -exp daemon >/dev/null

echo "== daemon smoke (build ctgschedd, submit over HTTP, SIGKILL, resume) =="
go run ./scripts/daemonsmoke

echo "== monitoring smoke (rules + series + watch + promlint) =="
mon_dir="$(mktemp -d)"
go run ./cmd/experiments -exp faults -rules examples/watch/rules.json \
	-series-out "$mon_dir/se" -events-out "$mon_dir/ev" \
	-prom-out "$mon_dir/metrics.prom" >/dev/null
# The miss-rate rule fires during the campaign; its cause chain must resolve
# back through the triggering instance_finish.
go run ./cmd/ctgsched explain -kind alert_firing "$mon_dir/ev-mpeg.jsonl" >/dev/null
go run ./cmd/ctgsched watch -dump "$mon_dir/se-mpeg.json" >/dev/null
go run ./scripts/promlint "$mon_dir/metrics.prom" >/dev/null
rm -rf "$mon_dir"

echo "verify: OK"
