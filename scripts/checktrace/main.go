// Command checktrace validates a Chrome trace-event JSON file produced by
// the telemetry exporter (cmd/experiments -trace-out, cmd/ctgsched
// -trace-out): the file must parse, declare a display time unit, contain at
// least one duration slice, and every flow arrow must have a matched
// begin/end pair. It is the verification half of the telemetry smoke test in
// scripts/verify.sh — a trace that passes here loads in chrome://tracing and
// Perfetto.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceFile struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		ID   string  `json:"id"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: checktrace FILE")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail(err.Error())
	}
	var file traceFile
	if err := json.Unmarshal(data, &file); err != nil {
		fail("not valid trace JSON: " + err.Error())
	}
	if file.DisplayTimeUnit == "" {
		fail("missing displayTimeUnit")
	}
	if len(file.TraceEvents) == 0 {
		fail("empty traceEvents")
	}
	slices := 0
	flows := make(map[string]int)
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.Ts < 0 || e.Dur < 0 {
				fail(fmt.Sprintf("slice %q has negative timing (ts %v dur %v)", e.Name, e.Ts, e.Dur))
			}
		case "s", "f":
			flows[e.ID]++
		case "M", "i", "C":
		default:
			fail(fmt.Sprintf("unknown event phase %q", e.Ph))
		}
	}
	if slices == 0 {
		fail("no duration slices")
	}
	for id, n := range flows {
		if n != 2 {
			fail(fmt.Sprintf("flow %q has %d endpoints, want 2", id, n))
		}
	}
	fmt.Printf("checktrace: OK (%d events, %d slices, %d flows)\n",
		len(file.TraceEvents), slices, len(flows))
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "checktrace: "+msg)
	os.Exit(1)
}
