#!/bin/sh
# cover.sh — enforce per-package statement-coverage floors (make cover).
# The floors guard the packages the fault-tolerance, consolidation and
# observability work lean on hardest: the adaptive manager's degraded-mode
# re-mapping paths, the fault/failure timeline derivations, the power-budget
# model/governor, the telemetry event/recorder/provenance layer, and the
# health analyzers plus the explain engine. Measured 89.0% / 93.0% / 98.4% /
# 91.7% / 88.6% when recorded; the floors sit a few points under so routine
# refactors don't trip them, while a change that lands a meaningful untested
# branch does.
set -eu

cd "$(dirname "$0")/.."

check() {
    pkg="$1"
    floor="$2"
    out="$(go test -cover "$pkg")"
    echo "$out"
    pct="$(echo "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')"
    if [ -z "$pct" ]; then
        echo "cover: no coverage reported for $pkg" >&2
        exit 1
    fi
    if [ "$(awk -v p="$pct" -v f="$floor" 'BEGIN{print (p < f) ? 1 : 0}')" = 1 ]; then
        echo "cover: $pkg coverage ${pct}% is below the ${floor}% floor" >&2
        exit 1
    fi
}

check ./internal/core 85
check ./internal/faults 90
check ./internal/power 90
check ./internal/telemetry 88
check ./internal/health 85

echo "cover: OK"
