// Command promlint checks a Prometheus text-exposition file (version 0.0.4,
// as written by `experiments -prom-out` / served at /metrics/prom) for the
// format invariants scrapers rely on:
//
//   - every metric name matches [a-zA-Z_:][a-zA-Z0-9_:]*
//   - every family's # TYPE comment precedes its samples, exactly once
//   - the TYPE is one of counter, gauge, summary, histogram, untyped
//   - every sample value parses as a float (NaN/+Inf/-Inf included)
//   - quantile-labeled samples and _sum/_count only appear under summaries
//
// Usage:
//
//	go run ./scripts/promlint metrics.prom
//
// Exits non-zero listing every violation — the verify.sh exposition check.
package main

import (
	"bufio"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	typeRE  = regexp.MustCompile(`^# TYPE ([^ ]+) ([a-z]+)$`)
	validTy = map[string]bool{"counter": true, "gauge": true, "summary": true, "histogram": true, "untyped": true}
)

// family strips the _sum/_count suffixes so summary samples resolve to their
// declared family.
func family(name string, types map[string]string) string {
	for _, suf := range []string{"_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if _, declared := types[base]; declared {
				return base
			}
		}
	}
	return name
}

func lint(path string) []string {
	f, err := os.Open(path)
	if err != nil {
		return []string{err.Error()}
	}
	defer f.Close()

	var errs []string
	types := map[string]string{}
	sampled := map[string]bool{}
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fail := func(format string, args ...any) {
			errs = append(errs, fmt.Sprintf("%s:%d: %s (%q)", path, lineNo, fmt.Sprintf(format, args...), line))
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			m := typeRE.FindStringSubmatch(line)
			if m == nil {
				if strings.HasPrefix(line, "# TYPE") {
					fail("malformed TYPE comment")
				}
				continue // other comments (# HELP etc.) pass through
			}
			name, ty := m[1], m[2]
			if !nameRE.MatchString(name) {
				fail("invalid metric name %q", name)
			}
			if !validTy[ty] {
				fail("invalid type %q", ty)
			}
			if _, dup := types[name]; dup {
				fail("duplicate TYPE for %q", name)
			}
			if sampled[name] {
				fail("TYPE for %q after its samples", name)
			}
			types[name] = ty
			continue
		}
		// Sample line: name[{labels}] value
		rest := line
		labels := ""
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			j := strings.IndexByte(rest, '}')
			if j < i {
				fail("unbalanced label braces")
				continue
			}
			labels = rest[i+1 : j]
			rest = rest[:i] + rest[j+1:]
		}
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			fail("want `name value`, got %d fields", len(parts))
			continue
		}
		name := parts[0]
		if !nameRE.MatchString(name) {
			fail("invalid metric name %q", name)
		}
		if _, err := strconv.ParseFloat(parts[1], 64); err != nil {
			fail("unparseable value %q", parts[1])
		}
		fam := family(name, types)
		ty, declared := types[fam]
		if !declared {
			fail("sample for %q precedes (or lacks) its TYPE", name)
		}
		sampled[fam] = true
		if strings.Contains(labels, "quantile=") && ty != "summary" {
			fail("quantile label on non-summary family %q", fam)
		}
		if fam != name && ty != "summary" && ty != "histogram" {
			fail("%s suffix on non-summary family %q", strings.TrimPrefix(name, fam), fam)
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, err.Error())
	}
	if len(types) == 0 && len(errs) == 0 {
		errs = append(errs, path+": no metric families found")
	}
	return errs
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: promlint FILE...")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		if errs := lint(path); len(errs) > 0 {
			failed = true
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "promlint: "+e)
			}
		} else {
			fmt.Printf("promlint: %s OK\n", path)
		}
	}
	if failed {
		os.Exit(1)
	}
}
