// Command benchgate compares a fresh benchmark run against the committed
// BENCH_*.json baselines and fails when a benchmark's step cost regressed
// beyond the tolerance — the bench-regression gate `make verify` runs.
//
//	go run ./scripts/benchgate BENCH_parallel.json BENCH_telemetry.json
//	go run ./scripts/benchgate -tolerance 0.15 BENCH_parallel.json
//	go run ./scripts/benchgate -update BENCH_parallel.json   # make bench-baseline
//
// Each baseline file names its benchmarks and the -benchtime it was recorded
// at; benchgate re-runs exactly those benchmarks at that benchtime. A
// benchmark regresses when its fresh ns/op exceeds baseline·(1+tolerance); to
// keep single-core container noise from tripping the gate, a failing run is
// retried (up to -retries extra attempts) and the best attempt is compared.
// When the attempts of the *same* binary spread wider than the tolerance band
// itself, the host demonstrably cannot resolve a regression of that size: the
// timing verdict is reported as NOISY and waived rather than failed, while
// allocation gating — which is deterministic — always stays strict. Baseline
// entries whose name is not a plain Go benchmark identifier (e.g. the
// "baseline (7f4e4fb) ..." row recorded from a rebuilt older commit) are
// informational and skipped.
//
// -update reruns the benchmarks and rewrites each file's results in place
// (keeping description, host and commentary fields), which is how
// `make bench-baseline` re-blesses the numbers on a new host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type result struct {
	Name   string  `json:"name"`
	Ns     float64 `json:"ns_per_op"`
	Bytes  int64   `json:"bytes_per_op"`
	Allocs int64   `json:"allocs_per_op"`
	Events float64 `json:"events_per_op,omitempty"`
	// GateAllocs opts this benchmark into allocation gating: a fresh run
	// whose allocs/op exceed the baseline's (beyond -alloc-tolerance, with
	// zero-alloc baselines admitting no allocation at all) fails the gate.
	// Used for the reschedule hot path, whose zero-allocation property is a
	// deliberate design invariant rather than a happenstance measurement.
	GateAllocs bool `json:"gate_allocs,omitempty"`
}

// baselineFile mirrors the BENCH_*.json schema; commentary fields ride along
// untouched so -update preserves them.
type baselineFile struct {
	Description string          `json:"description"`
	Recorded    string          `json:"recorded"`
	Host        json.RawMessage `json:"host"`
	Benchtime   string          `json:"benchtime"`
	Results     []result        `json:"results"`

	DisabledOverhead string `json:"disabled_overhead_vs_baseline,omitempty"`
	EnabledOverhead  string `json:"enabled_overhead_vs_disabled,omitempty"`
}

var benchIdent = regexp.MustCompile(`^Benchmark[A-Za-z0-9_]+$`)

// runBenchmarks executes the named benchmarks once and parses the `go test`
// output into fresh results.
func runBenchmarks(names []string, benchtime string) (map[string]result, error) {
	pattern := "^(" + strings.Join(names, "|") + ")$"
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchtime", benchtime, "-benchmem", ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test -bench failed: %v\n%s", err, out)
	}
	fresh := make(map[string]result)
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Strip the -N GOMAXPROCS suffix go test appends to the name.
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := result{Name: name}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.Ns = v
			case "B/op":
				r.Bytes = int64(v)
			case "allocs/op":
				r.Allocs = int64(v)
			case "events/op":
				r.Events = v
			}
		}
		fresh[name] = r
	}
	return fresh, nil
}

// better keeps the faster attempt per benchmark.
func better(a, b map[string]result) map[string]result {
	out := make(map[string]result, len(a))
	for name, r := range a {
		if r2, ok := b[name]; ok && r2.Ns < r.Ns {
			r = r2
		}
		out[name] = r
	}
	for name, r := range b {
		if _, ok := out[name]; !ok {
			out[name] = r
		}
	}
	return out
}

// spreads reports each benchmark's relative run-to-run spread
// ((max-min)/min ns/op) across the attempts it appeared in.
func spreads(attempts []map[string]result) map[string]float64 {
	lo, hi := map[string]float64{}, map[string]float64{}
	for _, a := range attempts {
		for name, r := range a {
			if r.Ns <= 0 {
				continue
			}
			if v, ok := lo[name]; !ok || r.Ns < v {
				lo[name] = r.Ns
			}
			if r.Ns > hi[name] {
				hi[name] = r.Ns
			}
		}
	}
	out := make(map[string]float64, len(lo))
	for name, min := range lo {
		out[name] = (hi[name] - min) / min
	}
	return out
}

// gateFile checks (or, with update, re-records) one baseline file. Returns
// the number of regressions found.
func gateFile(path string, tolerance, allocTolerance float64, retries int, update bool) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return 0, fmt.Errorf("%s: %v", path, err)
	}
	if base.Benchtime == "" {
		base.Benchtime = "1x"
	}
	var names []string
	for _, r := range base.Results {
		if benchIdent.MatchString(r.Name) {
			names = append(names, r.Name)
		}
	}
	if len(names) == 0 {
		fmt.Printf("%s: no runnable benchmark entries, skipped\n", path)
		return 0, nil
	}

	fresh, err := runBenchmarks(names, base.Benchtime)
	if err != nil {
		return 0, err
	}

	if update {
		for i, r := range base.Results {
			if f, ok := fresh[r.Name]; ok {
				f.Events = pick(f.Events, r.Events)
				f.GateAllocs = r.GateAllocs
				base.Results[i] = f
			}
		}
		base.Recorded = time.Now().Format("2006-01-02")
		if host, err := stampHost(base.Host); err == nil {
			base.Host = host
		}
		out, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			return 0, err
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			return 0, err
		}
		fmt.Printf("%s: re-recorded %d benchmarks at -benchtime %s\n", path, len(names), base.Benchtime)
		return 0, nil
	}

	// Gate pass: while timing regressions remain, re-run and keep the best
	// attempt per benchmark.
	attempts := []map[string]result{fresh}
	regressed := failures(base.Results, fresh, tolerance, allocTolerance)
	for try := 1; try <= retries && hasTiming(regressed); try++ {
		fmt.Printf("%s: %d benchmark(s) over tolerance, retrying (%d/%d) to rule out noise\n",
			path, len(regressed), try, retries)
		again, err := runBenchmarks(names, base.Benchtime)
		if err != nil {
			return 0, err
		}
		attempts = append(attempts, again)
		fresh = better(fresh, again)
		regressed = failures(base.Results, fresh, tolerance, allocTolerance)
	}

	// A timing failure only counts when the host could have measured it: if
	// this benchmark's own attempts spread wider than the tolerance band, the
	// verdict is noise, not signal. Alloc and missing-benchmark failures are
	// never waived.
	spread := spreads(attempts)
	noisy := map[string]bool{}
	kept := regressed[:0]
	for _, f := range regressed {
		if f.timing && len(attempts) > 1 && spread[f.name] > tolerance {
			noisy[f.name] = true
			fmt.Printf("%s: %s: waived as noise (run-to-run spread %.1f%% exceeds tolerance %.0f%%)\n",
				path, f.name, 100*spread[f.name], 100*tolerance)
			continue
		}
		kept = append(kept, f)
	}
	regressed = kept

	for _, r := range base.Results {
		f, ok := fresh[r.Name]
		if !ok {
			continue
		}
		delta := 100 * (f.Ns - r.Ns) / r.Ns
		status := "ok"
		if f.Ns > r.Ns*(1+tolerance) {
			status = "REGRESSED"
			if noisy[r.Name] {
				status = "NOISY"
			}
		}
		gate := ""
		if r.GateAllocs {
			gate = " [gated]"
			if allocsRegressed(r.Allocs, f.Allocs, allocTolerance) {
				status = "ALLOC-REGRESSED"
			}
		}
		fmt.Printf("  %-40s %12.0f -> %12.0f ns/op (%+.1f%%)  %d -> %d allocs/op%s %s\n",
			r.Name, r.Ns, f.Ns, delta, r.Allocs, f.Allocs, gate, status)
	}
	for _, f := range regressed {
		fmt.Fprintf(os.Stderr, "%s: %s\n", path, f.msg)
	}
	return len(regressed), nil
}

// hasTiming reports whether any failure is a (retryable) timing regression.
func hasTiming(fs []failure) bool {
	for _, f := range fs {
		if f.timing {
			return true
		}
	}
	return false
}

// failure is one gate violation; timing failures are retryable and may be
// waived as noise, alloc and missing-benchmark failures are not.
type failure struct {
	name   string
	msg    string
	timing bool
}

// failures lists the benchmarks whose fresh cost exceeds the tolerated
// baseline, whose gated allocation count regressed, or which vanished from
// the run.
func failures(baseline []result, fresh map[string]result, tolerance, allocTolerance float64) []failure {
	var out []failure
	for _, r := range baseline {
		if !benchIdent.MatchString(r.Name) {
			continue
		}
		f, ok := fresh[r.Name]
		if !ok {
			out = append(out, failure{r.Name,
				fmt.Sprintf("%s: baseline benchmark missing from run", r.Name), false})
			continue
		}
		if f.Ns > r.Ns*(1+tolerance) {
			out = append(out, failure{r.Name,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
					r.Name, f.Ns, r.Ns, 100*(f.Ns-r.Ns)/r.Ns, 100*tolerance), true})
		}
		if r.GateAllocs && allocsRegressed(r.Allocs, f.Allocs, allocTolerance) {
			out = append(out, failure{r.Name,
				fmt.Sprintf("%s: %d allocs/op vs baseline %d (alloc-gated, tolerance %.0f%%)",
					r.Name, f.Allocs, r.Allocs, 100*allocTolerance), false})
		}
	}
	return out
}

// allocsRegressed applies the allocation gate: a zero-alloc baseline admits
// no allocation at all; otherwise the fresh count may exceed the baseline by
// the tolerance fraction (rounded up by the integer comparison).
func allocsRegressed(base, fresh int64, tolerance float64) bool {
	if base == 0 {
		return fresh > 0
	}
	return float64(fresh) > float64(base)*(1+tolerance)
}

// stampHost merges the recording machine's identity into the baseline's host
// commentary object, preserving hand-written fields and recording the CPU
// count the numbers were measured at (single-core container timings are not
// comparable to multi-core ones).
func stampHost(raw json.RawMessage) (json.RawMessage, error) {
	host := map[string]any{}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &host); err != nil {
			// Host was a plain string or other shape: keep it under "note".
			host = map[string]any{"note": strings.Trim(string(raw), "\"")}
		}
	}
	host["cores"] = runtime.NumCPU()
	host["go"] = runtime.Version()
	host["goos"] = runtime.GOOS
	host["goarch"] = runtime.GOARCH
	return json.Marshal(host)
}

func pick(fresh, old float64) float64 {
	if fresh != 0 {
		return fresh
	}
	return old
}

func main() {
	tolerance := flag.Float64("tolerance", 0.10, "allowed ns/op regression over baseline (0.10 = 10%)")
	allocTolerance := flag.Float64("alloc-tolerance", 0.10,
		"allowed allocs/op regression for alloc-gated entries (zero-alloc baselines admit none)")
	update := flag.Bool("update", false, "re-record the baselines instead of gating")
	retries := flag.Int("retries", 3, "extra attempts while timing regressions remain (best attempt gates)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-tolerance 0.10] [-retries 3] [-update] BENCH_*.json ...")
		os.Exit(2)
	}
	total := 0
	for _, path := range flag.Args() {
		n, err := gateFile(path, *tolerance, *allocTolerance, *retries, *update)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		total += n
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s)\n", total)
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}
