package ctg

import (
	"fmt"
	"math/bits"
	"strings"
)

// Bitset is a fixed-capacity set of small non-negative integers. It is used
// throughout the scheduler to represent sets of scenarios (leaf minterms) in
// which a task is active, so intersection and subset tests are the hot
// operations.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitset returns an empty bitset able to hold values in [0, n).
func NewBitset(n int) Bitset {
	if n < 0 {
		panic("ctg: negative bitset size")
	}
	return Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the bitset in bits.
func (b Bitset) Len() int { return b.n }

func (b Bitset) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("ctg: bitset index %d out of range [0,%d)", i, b.n))
	}
}

// Set marks bit i.
func (b Bitset) Set(i int) {
	b.check(i)
	b.words[i/64] |= 1 << uint(i%64)
}

// Clear unmarks bit i.
func (b Bitset) Clear(i int) {
	b.check(i)
	b.words[i/64] &^= 1 << uint(i%64)
}

// Get reports whether bit i is set.
func (b Bitset) Get(i int) bool {
	b.check(i)
	return b.words[i/64]&(1<<uint(i%64)) != 0
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (b Bitset) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of b.
func (b Bitset) Clone() Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return Bitset{words: w, n: b.n}
}

// Intersects reports whether b and o share at least one set bit.
func (b Bitset) Intersects(o Bitset) bool {
	n := min(len(b.words), len(o.words))
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// ContainsAll reports whether every bit set in o is also set in b.
func (b Bitset) ContainsAll(o Bitset) bool {
	for i, w := range o.words {
		var bw uint64
		if i < len(b.words) {
			bw = b.words[i]
		}
		if w&^bw != 0 {
			return false
		}
	}
	return true
}

// UnionWith sets in b every bit set in o. The two bitsets must have the same
// capacity.
func (b Bitset) UnionWith(o Bitset) {
	if b.n != o.n {
		panic("ctg: bitset size mismatch")
	}
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// IntersectWith clears in b every bit not set in o. The two bitsets must have
// the same capacity.
func (b Bitset) IntersectWith(o Bitset) {
	if b.n != o.n {
		panic("ctg: bitset size mismatch")
	}
	for i, w := range o.words {
		b.words[i] &= w
	}
}

// Equal reports whether b and o contain exactly the same bits.
func (b Bitset) Equal(o Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in increasing order.
func (b Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*64 + bit)
			w &= w - 1
		}
	}
}

// Slice returns the set bits in increasing order.
func (b Bitset) Slice() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the bitset as "{1, 4, 7}".
func (b Bitset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.ForEach(func(i int) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
	})
	sb.WriteByte('}')
	return sb.String()
}
