package ctg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	if !b.Empty() {
		t.Fatal("new bitset should be empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 6 {
		t.Fatalf("Count = %d, want 6", b.Count())
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 should be cleared")
	}
	if got := b.Slice(); len(got) != 5 || got[0] != 0 || got[4] != 129 {
		t.Fatalf("Slice = %v", got)
	}
	if b.String() != "{0, 1, 63, 65, 129}" {
		t.Fatalf("String = %q", b.String())
	}
}

func TestBitsetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	b := NewBitset(10)
	b.Set(10)
}

func TestBitsetSetOps(t *testing.T) {
	a := NewBitset(100)
	b := NewBitset(100)
	a.Set(3)
	a.Set(70)
	b.Set(70)
	b.Set(99)

	if !a.Intersects(b) {
		t.Fatal("a and b share bit 70")
	}
	c := a.Clone()
	c.UnionWith(b)
	if c.Count() != 3 || !c.Get(3) || !c.Get(70) || !c.Get(99) {
		t.Fatalf("union = %v", c)
	}
	if !c.ContainsAll(a) || !c.ContainsAll(b) {
		t.Fatal("union must contain both operands")
	}
	if a.ContainsAll(c) {
		t.Fatal("a must not contain the union")
	}
	d := a.Clone()
	d.IntersectWith(b)
	if d.Count() != 1 || !d.Get(70) {
		t.Fatalf("intersection = %v", d)
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone must equal original")
	}
	if a.Equal(b) {
		t.Fatal("a != b")
	}
}

func TestBitsetCloneIndependence(t *testing.T) {
	a := NewBitset(64)
	a.Set(5)
	b := a.Clone()
	b.Set(6)
	if a.Get(6) {
		t.Fatal("mutating clone must not affect original")
	}
}

// Property: Count equals the number of distinct indices inserted.
func TestBitsetCountProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n)%200 + 1
		b := NewBitset(size)
		seen := map[int]bool{}
		for i := 0; i < 50; i++ {
			k := rng.Intn(size)
			b.Set(k)
			seen[k] = true
		}
		return b.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ForEach visits exactly the set bits in increasing order.
func TestBitsetForEachOrdered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBitset(300)
		for i := 0; i < 40; i++ {
			b.Set(rng.Intn(300))
		}
		prev := -1
		ok := true
		b.ForEach(func(i int) {
			if i <= prev || !b.Get(i) {
				ok = false
			}
			prev = i
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
