package ctg

import (
	"math"
	"strings"
	"testing"
)

func TestWithDeadline(t *testing.T) {
	g := paperFigure1(t, []float64{0.4, 0.6}, []float64{0.5, 0.5})
	g2, err := g.WithDeadline(55)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Deadline() != 55 || g.Deadline() != 100 {
		t.Fatalf("deadlines %v/%v, want 55/100", g2.Deadline(), g.Deadline())
	}
	// Structure is shared semantics: same tasks/edges.
	if g2.NumTasks() != g.NumTasks() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("WithDeadline changed structure")
	}
	if _, err := g.WithDeadline(0); err == nil {
		t.Fatal("want error for non-positive deadline")
	}
	if _, err := g.WithDeadline(-3); err == nil {
		t.Fatal("want error for negative deadline")
	}
}

func TestProbOfSet(t *testing.T) {
	g := paperFigure1(t, []float64{0.4, 0.6}, []float64{0.5, 0.5})
	a, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	full := NewBitset(a.NumScenarios())
	for i := 0; i < a.NumScenarios(); i++ {
		full.Set(i)
	}
	if got := a.ProbOfSet(full); got != 1 {
		t.Fatalf("ProbOfSet(full) = %v, want exactly 1", got)
	}
	empty := NewBitset(a.NumScenarios())
	if got := a.ProbOfSet(empty); got != 0 {
		t.Fatalf("ProbOfSet(empty) = %v", got)
	}
	// Single scenario set equals the scenario's probability.
	one := NewBitset(a.NumScenarios())
	one.Set(0)
	if got := a.ProbOfSet(one); math.Abs(got-a.Scenario(0).Prob) > 1e-12 {
		t.Fatalf("ProbOfSet(one) = %v, want %v", got, a.Scenario(0).Prob)
	}
}

func TestScenarioWeightHelpers(t *testing.T) {
	g := paperFigure1(t, []float64{0.4, 0.6}, []float64{0.5, 0.5})
	a, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	unit := func(TaskID) float64 { return 1 }
	// ScenarioWeight with unit weights counts active tasks.
	for i := 0; i < a.NumScenarios(); i++ {
		if got := a.ScenarioWeight(i, unit); got != float64(a.Scenario(i).Active.Count()) {
			t.Fatalf("scenario %d weight %v != active count", i, got)
		}
	}
	// ExpectedActiveWeight with unit weights is the expected task count.
	want := 0.0
	for i := 0; i < a.NumScenarios(); i++ {
		want += a.Scenario(i).Prob * float64(a.Scenario(i).Active.Count())
	}
	if got := a.ExpectedActiveWeight(unit); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ExpectedActiveWeight = %v, want %v", got, want)
	}
	// Min/max scenarios with a weight that loads τ7 (task 6): the max
	// must be a scenario where τ7 is active.
	heavy := func(id TaskID) float64 {
		if id == 6 {
			return 100
		}
		return 1
	}
	_, maxIdx := a.MinMaxWeightScenarios(heavy)
	if !a.Scenario(maxIdx).Active.Get(6) {
		t.Fatal("max-weight scenario does not activate the heavy task")
	}
}

func TestAnalyzeScenarioExplosionGuarded(t *testing.T) {
	// 17 independent two-way forks → 2^17 scenarios > MaxScenarios.
	b := NewBuilder()
	src := b.AddTask("", AndNode)
	for i := 0; i < 17; i++ {
		f := b.AddTask("", AndNode)
		x := b.AddTask("", AndNode)
		y := b.AddTask("", AndNode)
		b.AddEdge(src, f, 0)
		b.AddCondEdge(f, x, 0, 0)
		b.AddCondEdge(f, y, 0, 1)
	}
	g, err := b.Build(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(g); err == nil {
		t.Fatal("want scenario-explosion error")
	} else if !strings.Contains(err.Error(), "scenarios") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestScenarioLabelsAndString(t *testing.T) {
	g := paperFigure1(t, []float64{0.4, 0.6}, []float64{0.5, 0.5})
	a, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < a.NumScenarios(); i++ {
		lbl := a.ScenarioLabel(i)
		if lbl == "" || seen[lbl] {
			t.Fatalf("label %q empty or duplicated", lbl)
		}
		seen[lbl] = true
	}
	if s := g.String(); !strings.Contains(s, "8 tasks") || !strings.Contains(s, "2 forks") {
		t.Fatalf("Graph.String = %q", s)
	}
}

func TestSinksAndSources(t *testing.T) {
	g := paperFigure1(t, []float64{0.4, 0.6}, []float64{0.5, 0.5})
	snk := g.Sinks()
	// Sinks: τ6, τ7, τ8 (IDs 5, 6, 7).
	if len(snk) != 3 || snk[0] != 5 || snk[1] != 6 || snk[2] != 7 {
		t.Fatalf("Sinks = %v", snk)
	}
	if got := sortedTaskIDs([]TaskID{3, 1, 2}); got[0] != 1 || got[2] != 3 {
		t.Fatalf("sortedTaskIDs = %v", got)
	}
}

func TestActivationExpr(t *testing.T) {
	g := paperFigure1(t, []float64{0.4, 0.6}, []float64{0.5, 0.5})
	a, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	// τ1 is always active.
	if got := a.ActivationExpr(0); got != "1" {
		t.Fatalf("ActivationExpr(tau1) = %q, want 1", got)
	}
	// τ4 is the a1 leaf only.
	if got := a.ActivationExpr(3); got != "b2=0" {
		t.Fatalf("ActivationExpr(tau4) = %q", got)
	}
	// τ5 covers both a2 leaves.
	if got := a.ActivationExpr(4); got != "b2=1·b4=0 + b2=1·b4=1" {
		t.Fatalf("ActivationExpr(tau5) = %q", got)
	}
}
