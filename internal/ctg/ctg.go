// Package ctg models conditional task graphs (CTGs) — acyclic task graphs in
// which some edges are guarded by the outcome of a branch fork node, so that
// whole subgraphs are activated or deactivated at runtime depending on input
// data. The model follows Malani et al., "Adaptive Scheduling and Voltage
// Scaling for Multiprocessor Real-time Applications with Non-deterministic
// Workload" (DATE 2008), which itself adopts the CTG of Shin & Kim
// (ISLPED 2003).
//
// The package provides:
//
//   - the graph structure itself (tasks, edges, conditions, communication
//     volumes, a common deadline, and per-fork branch probabilities),
//   - scenario analysis: enumeration of the leaf minterms of the graph with
//     their probabilities, per-task activation sets X(τ), activation
//     probabilities prob(τ), and the mutual-exclusion relation, and
//   - path analysis: enumeration of maximal source→sink paths (optionally
//     through schedule-induced pseudo edges) with their edge conditions,
//     which drives the slack-distribution DVFS heuristics.
package ctg

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// TaskID identifies a task (vertex) in a Graph. IDs are dense indices
// assigned by the Builder in insertion order.
type TaskID int

// Kind distinguishes and-nodes from or-nodes.
//
// An and-node is activated when all of its predecessors complete and the
// conditions of the corresponding edges hold. An or-node is activated when
// at least one predecessor completes with its edge condition holding.
type Kind uint8

const (
	// AndNode requires all incoming edges to be satisfied.
	AndNode Kind = iota
	// OrNode requires at least one incoming edge to be satisfied.
	OrNode
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case AndNode:
		return "and"
	case OrNode:
		return "or"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// NoBranch is returned by Cond.Branch for an unconditional edge.
const NoBranch TaskID = -1

// Cond is the guard of an edge. The zero value is the unconditional guard,
// so schedule-induced pseudo edges may be constructed with a zero Cond. A
// conditional edge out of a branch fork node f carries When(f, k), meaning
// "fork f selected outcome k".
type Cond struct {
	branch  TaskID // fork ID + 1; 0 means unconditional
	outcome int
}

// Uncond returns the condition of an unconditional edge (the zero Cond).
func Uncond() Cond { return Cond{} }

// When returns the condition "fork selected the given outcome".
func When(fork TaskID, outcome int) Cond { return Cond{branch: fork + 1, outcome: outcome} }

// IsConditional reports whether the condition actually guards the edge.
func (c Cond) IsConditional() bool { return c.branch != 0 }

// Branch returns the guarding fork node, or NoBranch for an unconditional
// edge.
func (c Cond) Branch() TaskID {
	if c.branch == 0 {
		return NoBranch
	}
	return c.branch - 1
}

// Outcome returns the required outcome index of the guarding fork. It is
// meaningless for unconditional edges.
func (c Cond) Outcome() int { return c.outcome }

// String implements fmt.Stringer.
func (c Cond) String() string {
	if !c.IsConditional() {
		return "1"
	}
	return fmt.Sprintf("b%d=%d", c.Branch(), c.Outcome())
}

// Task is a vertex of the CTG. Execution times and energies are a property
// of the platform mapping (see package platform), not of the task itself.
type Task struct {
	ID   TaskID
	Name string
	Kind Kind
}

// Edge is a (possibly conditional) precedence/data dependency between two
// tasks. CommKB is the communication volume in kilobytes; it costs time and
// energy only when the two endpoint tasks are mapped to different PEs.
type Edge struct {
	From, To TaskID
	CommKB   float64
	Cond     Cond
	// Pseudo marks schedule-induced serialization edges that are injected
	// after task mapping; they never appear in a Builder-built graph.
	Pseudo bool
}

// Graph is an immutable-structure conditional task graph. Branch
// probabilities are the only mutable aspect (they are runtime estimates that
// the adaptive framework updates); use SetBranchProbs / BranchProbs.
type Graph struct {
	tasks []Task
	edges []Edge

	succ [][]int // task -> indices into edges, outgoing
	pred [][]int // task -> indices into edges, incoming

	// forks lists branch fork nodes in TaskID order; forkIndex is the
	// inverse mapping (dense fork index, or -1).
	forks     []TaskID
	forkIndex []int
	outcomes  []int       // per dense fork index: number of outcomes
	probs     [][]float64 // per dense fork index: probability per outcome

	topo []TaskID

	deadline float64
}

// Builder incrementally constructs a Graph. A zero Builder is ready to use.
type Builder struct {
	tasks []Task
	edges []Edge
	probs map[TaskID][]float64
	err   error
}

// NewBuilder returns an empty CTG builder.
func NewBuilder() *Builder { return &Builder{probs: make(map[TaskID][]float64)} }

// AddTask appends a task and returns its ID.
func (b *Builder) AddTask(name string, kind Kind) TaskID {
	id := TaskID(len(b.tasks))
	if name == "" {
		name = fmt.Sprintf("t%d", id)
	}
	b.tasks = append(b.tasks, Task{ID: id, Name: name, Kind: kind})
	return id
}

// AddEdge adds an unconditional edge with the given communication volume.
func (b *Builder) AddEdge(from, to TaskID, commKB float64) {
	b.edges = append(b.edges, Edge{From: from, To: to, CommKB: commKB, Cond: Uncond()})
}

// AddCondEdge adds a conditional edge out of the branch fork node from,
// guarded by the given outcome index of that fork.
func (b *Builder) AddCondEdge(from, to TaskID, commKB float64, outcome int) {
	if outcome < 0 {
		b.fail(fmt.Errorf("ctg: negative outcome %d on edge %d->%d", outcome, from, to))
		return
	}
	b.edges = append(b.edges, Edge{From: from, To: to, CommKB: commKB,
		Cond: When(from, outcome)})
}

// SetBranchProbs sets the branch selection probabilities of a fork node.
// The slice length must match the number of outcomes used on the fork's
// conditional edges; values must be non-negative and sum to 1 (within a
// small tolerance). If not called, Build assigns a uniform distribution.
func (b *Builder) SetBranchProbs(fork TaskID, probs []float64) {
	cp := make([]float64, len(probs))
	copy(cp, probs)
	b.probs[fork] = cp
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build validates the graph and freezes it. The deadline is the common
// deadline of the periodic CTG in the same time unit as the platform WCETs.
func (b *Builder) Build(deadline float64) (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.tasks) == 0 {
		return nil, errors.New("ctg: graph has no tasks")
	}
	if !(deadline > 0) {
		return nil, fmt.Errorf("ctg: deadline must be positive, got %v", deadline)
	}
	g := &Graph{
		tasks:    append([]Task(nil), b.tasks...),
		edges:    append([]Edge(nil), b.edges...),
		deadline: deadline,
	}
	n := len(g.tasks)
	g.succ = make([][]int, n)
	g.pred = make([][]int, n)
	for ei, e := range g.edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return nil, fmt.Errorf("ctg: edge %d->%d references unknown task", e.From, e.To)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("ctg: self edge on task %d", e.From)
		}
		if e.CommKB < 0 {
			return nil, fmt.Errorf("ctg: negative communication volume on edge %d->%d", e.From, e.To)
		}
		if e.Cond.IsConditional() && e.Cond.Branch() != e.From {
			return nil, fmt.Errorf("ctg: edge %d->%d guarded by foreign fork %d", e.From, e.To, e.Cond.Branch())
		}
		g.succ[e.From] = append(g.succ[e.From], ei)
		g.pred[e.To] = append(g.pred[e.To], ei)
	}

	// Identify forks and their outcome counts.
	g.forkIndex = make([]int, n)
	for i := range g.forkIndex {
		g.forkIndex[i] = -1
	}
	for t := 0; t < n; t++ {
		maxOut := -1
		for _, ei := range g.succ[t] {
			if c := g.edges[ei].Cond; c.IsConditional() {
				if c.Outcome() > maxOut {
					maxOut = c.Outcome()
				}
			}
		}
		if maxOut >= 0 {
			g.forkIndex[t] = len(g.forks)
			g.forks = append(g.forks, TaskID(t))
			g.outcomes = append(g.outcomes, maxOut+1)
		}
	}
	// Every outcome index of a fork must be used by at least one edge;
	// otherwise there is a selection that leads nowhere, which is almost
	// certainly a modelling mistake.
	for fi, fork := range g.forks {
		used := make([]bool, g.outcomes[fi])
		for _, ei := range g.succ[fork] {
			if c := g.edges[ei].Cond; c.IsConditional() {
				used[c.Outcome()] = true
			}
		}
		for k, u := range used {
			if !u {
				return nil, fmt.Errorf("ctg: fork %d has no edge for outcome %d", fork, k)
			}
		}
		if g.outcomes[fi] < 2 {
			return nil, fmt.Errorf("ctg: fork %d has a single outcome; use an unconditional edge", fork)
		}
	}

	// Branch probabilities: user-supplied or uniform.
	g.probs = make([][]float64, len(g.forks))
	for fi, fork := range g.forks {
		if p, ok := b.probs[fork]; ok {
			if err := checkProbs(p, g.outcomes[fi]); err != nil {
				return nil, fmt.Errorf("ctg: fork %d: %w", fork, err)
			}
			g.probs[fi] = normalize(p)
		} else {
			u := make([]float64, g.outcomes[fi])
			for k := range u {
				u[k] = 1 / float64(g.outcomes[fi])
			}
			g.probs[fi] = u
		}
	}
	for fork := range b.probs {
		if int(fork) < 0 || int(fork) >= n || g.forkIndex[fork] < 0 {
			return nil, fmt.Errorf("ctg: probabilities set on non-fork task %d", fork)
		}
	}

	// Structural checks: acyclic, or-nodes have predecessors.
	topo, err := topoSort(n, g.edges)
	if err != nil {
		return nil, err
	}
	g.topo = topo
	for t := 0; t < n; t++ {
		if g.tasks[t].Kind == OrNode && len(g.pred[t]) == 0 {
			return nil, fmt.Errorf("ctg: or-node %d has no predecessors", t)
		}
	}
	return g, nil
}

func checkProbs(p []float64, outcomes int) error {
	if len(p) != outcomes {
		return fmt.Errorf("got %d probabilities for %d outcomes", len(p), outcomes)
	}
	sum := 0.0
	for _, v := range p {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("invalid probability %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("probabilities sum to %v, want 1", sum)
	}
	return nil
}

func normalize(p []float64) []float64 {
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	out := make([]float64, len(p))
	for i, v := range p {
		out[i] = v / sum
	}
	return out
}

func topoSort(n int, edges []Edge) ([]TaskID, error) {
	indeg := make([]int, n)
	succ := make([][]TaskID, n)
	for _, e := range edges {
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	queue := make([]TaskID, 0, n)
	for t := 0; t < n; t++ {
		if indeg[t] == 0 {
			queue = append(queue, TaskID(t))
		}
	}
	order := make([]TaskID, 0, n)
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		order = append(order, t)
		for _, s := range succ[t] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("ctg: graph contains a cycle")
	}
	return order, nil
}

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Task returns the task with the given ID.
func (g *Graph) Task(id TaskID) Task { return g.tasks[id] }

// Tasks returns all tasks in ID order. The returned slice must not be
// modified.
func (g *Graph) Tasks() []Task { return g.tasks }

// Edge returns the edge with the given index.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Edges returns all edges. The returned slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Succ returns the indices of the outgoing edges of t.
func (g *Graph) Succ(t TaskID) []int { return g.succ[t] }

// Pred returns the indices of the incoming edges of t.
func (g *Graph) Pred(t TaskID) []int { return g.pred[t] }

// Deadline returns the common deadline of the CTG.
func (g *Graph) Deadline() float64 { return g.deadline }

// Topo returns a topological order of the tasks. The returned slice must not
// be modified.
func (g *Graph) Topo() []TaskID { return g.topo }

// Forks returns the branch fork nodes in ID order. The returned slice must
// not be modified.
func (g *Graph) Forks() []TaskID { return g.forks }

// NumForks returns the number of branch fork nodes.
func (g *Graph) NumForks() int { return len(g.forks) }

// IsFork reports whether t has conditional outgoing edges.
func (g *Graph) IsFork(t TaskID) bool { return g.forkIndex[t] >= 0 }

// ForkIndex returns the dense index of fork t in Forks(), or -1 if t is not
// a fork.
func (g *Graph) ForkIndex(t TaskID) int { return g.forkIndex[t] }

// Outcomes returns the number of outcomes of fork t. It panics if t is not a
// fork.
func (g *Graph) Outcomes(t TaskID) int {
	fi := g.forkIndex[t]
	if fi < 0 {
		panic(fmt.Sprintf("ctg: task %d is not a fork", t))
	}
	return g.outcomes[fi]
}

// BranchProb returns the probability of the given outcome of fork t.
func (g *Graph) BranchProb(t TaskID, outcome int) float64 {
	fi := g.forkIndex[t]
	if fi < 0 {
		panic(fmt.Sprintf("ctg: task %d is not a fork", t))
	}
	return g.probs[fi][outcome]
}

// BranchProbs returns a copy of the probability vector of fork t.
func (g *Graph) BranchProbs(t TaskID) []float64 {
	fi := g.forkIndex[t]
	if fi < 0 {
		panic(fmt.Sprintf("ctg: task %d is not a fork", t))
	}
	return append([]float64(nil), g.probs[fi]...)
}

// SetBranchProbs replaces the probability vector of fork t. This is the only
// runtime-mutable aspect of a Graph; the adaptive framework calls it when
// the sliding-window estimate drifts past the threshold.
func (g *Graph) SetBranchProbs(t TaskID, probs []float64) error {
	fi := g.forkIndex[t]
	if fi < 0 {
		return fmt.Errorf("ctg: task %d is not a fork", t)
	}
	if err := checkProbs(probs, g.outcomes[fi]); err != nil {
		return fmt.Errorf("ctg: fork %d: %w", t, err)
	}
	g.probs[fi] = normalize(probs)
	return nil
}

// CondProb returns the probability that condition c holds: 1 for
// unconditional edges, the fork's outcome probability otherwise.
func (g *Graph) CondProb(c Cond) float64 {
	if !c.IsConditional() {
		return 1
	}
	return g.BranchProb(c.Branch(), c.Outcome())
}

// WithDeadline returns a clone of the graph with a different common
// deadline. Callers typically schedule once to estimate the optimal
// makespan, then rebuild the deadline as a factor of it.
func (g *Graph) WithDeadline(d float64) (*Graph, error) {
	if !(d > 0) {
		return nil, fmt.Errorf("ctg: deadline must be positive, got %v", d)
	}
	cp := g.Clone()
	cp.deadline = d
	return cp, nil
}

// Clone returns a deep copy of the graph (probabilities included), so that a
// scheduler may mutate branch probabilities without affecting the original.
func (g *Graph) Clone() *Graph {
	cp := *g
	cp.probs = make([][]float64, len(g.probs))
	for i, p := range g.probs {
		cp.probs[i] = append([]float64(nil), p...)
	}
	return &cp
}

// Sources returns the tasks with no incoming edges.
func (g *Graph) Sources() []TaskID {
	var out []TaskID
	for t := range g.tasks {
		if len(g.pred[t]) == 0 {
			out = append(out, TaskID(t))
		}
	}
	return out
}

// Sinks returns the tasks with no outgoing edges.
func (g *Graph) Sinks() []TaskID {
	var out []TaskID
	for t := range g.tasks {
		if len(g.succ[t]) == 0 {
			out = append(out, TaskID(t))
		}
	}
	return out
}

// String renders a compact human-readable summary.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CTG{%d tasks, %d edges, %d forks, deadline %g}",
		len(g.tasks), len(g.edges), len(g.forks), g.deadline)
	return sb.String()
}

// Dot renders the graph in Graphviz dot format, with conditional edges
// labelled by their guard. Useful for documentation and debugging.
func (g *Graph) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph ctg {\n  rankdir=TB;\n")
	for _, t := range g.tasks {
		shape := "box"
		if t.Kind == OrNode {
			shape = "diamond"
		}
		style := ""
		if g.IsFork(t.ID) {
			style = ", style=bold"
		}
		fmt.Fprintf(&sb, "  n%d [label=%q, shape=%s%s];\n", t.ID, t.Name, shape, style)
	}
	for _, e := range g.edges {
		label := ""
		if e.Cond.IsConditional() {
			label = fmt.Sprintf(" [label=%q, style=dashed]", e.Cond.String())
		}
		fmt.Fprintf(&sb, "  n%d -> n%d%s;\n", e.From, e.To, label)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// sortedTaskIDs returns ids sorted ascending (helper shared by analyses).
func sortedTaskIDs(ids []TaskID) []TaskID {
	out := append([]TaskID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
