package ctg

import (
	"fmt"
)

// Path is a maximal source→sink chain of tasks through the (possibly
// schedule-augmented) CTG. Edges[i] connects Nodes[i] to Nodes[i+1].
type Path struct {
	Nodes []TaskID
	Edges []Edge
}

// Spans reports whether the path passes through task t, and at which
// position.
func (p *Path) Spans(t TaskID) (int, bool) {
	for i, n := range p.Nodes {
		if n == t {
			return i, true
		}
	}
	return 0, false
}

// CondProduct returns the product of the probabilities of all conditional
// edges on the path, under the graph's current branch probabilities. This is
// the probability that the whole chain of conditions on the path holds.
func (p *Path) CondProduct(g *Graph) float64 {
	prob := 1.0
	for _, e := range p.Edges {
		prob *= g.CondProb(e.Cond)
	}
	return prob
}

// ProbAfter returns prob(p, τ) as defined in the paper: the joint
// probability of the conditional branches lying on the path strictly after
// node position pos (i.e. on edges Edges[pos:]). For the example of the
// paper, prob(τ1-τ3-τ5-τ6, τ5) = prob(b1) and prob(τ1-τ3-τ4-τ8, τ8) = 1.
func (p *Path) ProbAfter(g *Graph, pos int) float64 {
	prob := 1.0
	for i := pos; i < len(p.Edges); i++ {
		prob *= g.CondProb(p.Edges[i].Cond)
	}
	return prob
}

// Unconditional reports whether the path carries no conditional edge, i.e.
// belongs to the minterm "1".
func (p *Path) Unconditional() bool {
	for _, e := range p.Edges {
		if e.Cond.IsConditional() {
			return false
		}
	}
	return true
}

// ConsistentWith reports whether the path's edge conditions are consistent
// with the given scenario assignment (dense fork index -> outcome): every
// conditional edge's fork must be assigned to exactly that outcome. A path
// with no conditions is consistent with every scenario.
func (p *Path) ConsistentWith(g *Graph, assign []int) bool {
	for _, e := range p.Edges {
		if !e.Cond.IsConditional() {
			continue
		}
		if assign[g.forkIndex[e.Cond.Branch()]] != e.Cond.Outcome() {
			return false
		}
	}
	return true
}

// String renders the path as "t0->t3->t7".
func (p *Path) String() string {
	s := ""
	for i, n := range p.Nodes {
		if i > 0 {
			s += "->"
		}
		s += fmt.Sprintf("t%d", n)
	}
	return s
}

// DefaultMaxPaths bounds path enumeration. The CTGs of this domain are small
// (tens of tasks); the bound exists to fail loudly on pathological inputs
// rather than to be reached in practice.
const DefaultMaxPaths = 1 << 17

// EnumeratePaths lists every maximal path of the graph augmented with extra
// (typically schedule-induced pseudo) edges. Paths whose conditional edges
// conflict (two different outcomes of the same fork) are infeasible and are
// pruned. maxPaths caps the output (<=0 means DefaultMaxPaths); exceeding it
// is an error.
//
// The paper computes "all possible paths in the CTG using BFS" after the
// scheduling stage; the pseudo edges encode the serialization the schedule
// imposed, so the path set reflects every chain that constrains the
// deadline.
func EnumeratePaths(g *Graph, extra []Edge, maxPaths int) ([]Path, error) {
	if maxPaths <= 0 {
		maxPaths = DefaultMaxPaths
	}
	n := g.NumTasks()
	succ := make([][]Edge, n)
	indeg := make([]int, n)
	for _, e := range g.edges {
		succ[e.From] = append(succ[e.From], e)
		indeg[e.To]++
	}
	for _, e := range extra {
		if int(e.From) >= n || int(e.To) >= n || e.From < 0 || e.To < 0 {
			return nil, fmt.Errorf("ctg: extra edge %d->%d references unknown task", e.From, e.To)
		}
		succ[e.From] = append(succ[e.From], e)
		indeg[e.To]++
	}

	var paths []Path
	nodes := make([]TaskID, 0, n)
	edges := make([]Edge, 0, n)
	assign := make([]int, len(g.forks))
	for i := range assign {
		assign[i] = OutcomeUnassigned
	}

	var dfs func(t TaskID) error
	dfs = func(t TaskID) error {
		nodes = append(nodes, t)
		defer func() { nodes = nodes[:len(nodes)-1] }()
		if len(succ[t]) == 0 {
			if len(paths) >= maxPaths {
				return fmt.Errorf("ctg: more than %d paths", maxPaths)
			}
			paths = append(paths, Path{
				Nodes: append([]TaskID(nil), nodes...),
				Edges: append([]Edge(nil), edges...),
			})
			return nil
		}
		for _, e := range succ[t] {
			restore := OutcomeUnassigned
			restoreIdx := -1
			if e.Cond.IsConditional() {
				fi := g.forkIndex[e.Cond.Branch()]
				switch assign[fi] {
				case OutcomeUnassigned:
					restoreIdx, restore = fi, assign[fi]
					assign[fi] = e.Cond.Outcome()
				case e.Cond.Outcome():
					// already consistent
				default:
					continue // conflicting conditions: infeasible path
				}
			}
			edges = append(edges, e)
			err := dfs(e.To)
			edges = edges[:len(edges)-1]
			if restoreIdx >= 0 {
				assign[restoreIdx] = restore
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	for t := 0; t < n; t++ {
		if indeg[t] == 0 {
			if err := dfs(TaskID(t)); err != nil {
				return nil, err
			}
		}
	}
	return paths, nil
}
