package ctg

import (
	"math"
	"math/rand"
	"testing"
)

// randomCTG builds a small random conditional task graph: a layered DAG
// where some nodes become forks with two outcomes. It mirrors the structure
// the tgff package generates, kept local so ctg has no test dependencies.
func randomCTG(t *testing.T, rng *rand.Rand, n, forks int) *Graph {
	t.Helper()
	b := NewBuilder()
	ids := make([]TaskID, n)
	for i := range ids {
		ids[i] = b.AddTask("", AndNode)
	}
	forkSet := map[int]bool{}
	for len(forkSet) < forks {
		// Forks need at least two successors, so keep them away from the
		// last two positions.
		c := 1 + rng.Intn(n-3)
		forkSet[c] = true
	}
	for i := 1; i < n; i++ {
		// Ensure connectivity: every node gets at least one predecessor.
		p := rng.Intn(i)
		if forkSet[p] {
			b.AddCondEdge(ids[p], ids[i], rng.Float64(), rng.Intn(2))
		} else {
			b.AddEdge(ids[p], ids[i], rng.Float64())
		}
	}
	// Guarantee every fork uses both outcomes by adding explicit edges.
	for p := range forkSet {
		targets := rng.Perm(n - p - 1)
		if len(targets) < 2 {
			continue
		}
		b.AddCondEdge(ids[p], ids[p+1+targets[0]], rng.Float64(), 0)
		b.AddCondEdge(ids[p], ids[p+1+targets[1]], rng.Float64(), 1)
		pr := 0.1 + 0.8*rng.Float64()
		b.SetBranchProbs(ids[p], []float64{pr, 1 - pr})
	}
	g, err := b.Build(1000)
	if err != nil {
		t.Fatalf("randomCTG: %v", err)
	}
	return g
}

func TestScenarioInvariantsOnRandomCTGs(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(20)
		forks := 1 + rng.Intn(3)
		g := randomCTG(t, rng, n, forks)
		a, err := Analyze(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(a.TotalProb()-1) > 1e-9 {
			t.Fatalf("seed %d: scenario probs sum to %v", seed, a.TotalProb())
		}
		// Mutual exclusion: irreflexive, symmetric, and equivalent to
		// disjoint activation sets.
		for i := 0; i < g.NumTasks(); i++ {
			for j := 0; j < g.NumTasks(); j++ {
				me := a.MutuallyExclusive(TaskID(i), TaskID(j))
				if i == j && me {
					t.Fatalf("seed %d: task %d ME with itself", seed, i)
				}
				if me != a.MutuallyExclusive(TaskID(j), TaskID(i)) {
					t.Fatalf("seed %d: ME not symmetric for %d,%d", seed, i, j)
				}
				if i != j {
					disjoint := !a.ActivationSet(TaskID(i)).Intersects(a.ActivationSet(TaskID(j)))
					if me != disjoint {
						t.Fatalf("seed %d: ME(%d,%d)=%v but disjoint=%v", seed, i, j, me, disjoint)
					}
				}
			}
		}
		// Sources are active everywhere.
		for _, s := range g.Sources() {
			if a.ActivationProb(s) != 1 {
				t.Fatalf("seed %d: source %d has activation prob %v", seed, s, a.ActivationProb(s))
			}
		}
		// Activation probabilities lie in [0,1] and every task active in a
		// scenario has all its activation requirements: spot-check that a
		// task active in scenario s has at least one satisfied incoming
		// edge (and-nodes: all).
		for si := 0; si < a.NumScenarios(); si++ {
			sc := a.Scenario(si)
			sc.Active.ForEach(func(ti int) {
				if len(g.Pred(TaskID(ti))) == 0 {
					return
				}
				sat := 0
				for _, ei := range g.Pred(TaskID(ti)) {
					e := g.Edge(ei)
					if !sc.Active.Get(int(e.From)) {
						continue
					}
					if !e.Cond.IsConditional() {
						sat++
						continue
					}
					if sc.Assign[g.ForkIndex(e.Cond.Branch())] == e.Cond.Outcome() {
						sat++
					}
				}
				if g.Task(TaskID(ti)).Kind == AndNode && sat != len(g.Pred(TaskID(ti))) {
					t.Fatalf("seed %d scenario %d: and-node %d active with %d/%d satisfied edges",
						seed, si, ti, sat, len(g.Pred(TaskID(ti))))
				}
				if sat == 0 {
					t.Fatalf("seed %d scenario %d: node %d active with no satisfied edge", seed, si, ti)
				}
			})
		}
	}
}

func TestDecisionResolutionMatchesActivation(t *testing.T) {
	// For every full decision vector, the resolved scenario's active set
	// must equal the activation computed with the full assignment.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		g := randomCTG(t, rng, 12, 2)
		a, err := Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		nf := g.NumForks()
		total := 1
		for fi := 0; fi < nf; fi++ {
			total *= g.Outcomes(g.Forks()[fi])
		}
		for code := 0; code < total; code++ {
			dec := make([]int, nf)
			c := code
			for fi := 0; fi < nf; fi++ {
				k := g.Outcomes(g.Forks()[fi])
				dec[fi] = c % k
				c /= k
			}
			si, err := a.ScenarioForDecisions(dec)
			if err != nil {
				t.Fatalf("seed %d dec %v: %v", seed, dec, err)
			}
			full := make([]int, nf)
			copy(full, dec)
			active, need := g.activate(full)
			if need != NoBranch {
				t.Fatalf("seed %d: full assignment still needs fork %d", seed, need)
			}
			if !active.Equal(a.Scenario(si).Active) {
				t.Fatalf("seed %d dec %v: active set mismatch\n got %v\nwant %v",
					seed, dec, a.Scenario(si).Active, active)
			}
		}
	}
}

func TestPathsCoverEveryTask(t *testing.T) {
	// Every task lies on at least one maximal path.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		g := randomCTG(t, rng, 15, 2)
		paths, err := EnumeratePaths(g, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		covered := make([]bool, g.NumTasks())
		for i := range paths {
			for _, n := range paths[i].Nodes {
				covered[n] = true
			}
		}
		for ti, c := range covered {
			if !c {
				t.Fatalf("seed %d: task %d on no path", seed, ti)
			}
		}
	}
}

func TestEnumeratePathsRespectsCap(t *testing.T) {
	// A wide diamond ladder has exponentially many paths; the cap must trip.
	b := NewBuilder()
	prev := b.AddTask("", AndNode)
	for i := 0; i < 12; i++ {
		l := b.AddTask("", AndNode)
		r := b.AddTask("", AndNode)
		join := b.AddTask("", AndNode)
		b.AddEdge(prev, l, 0)
		b.AddEdge(prev, r, 0)
		b.AddEdge(l, join, 0)
		b.AddEdge(r, join, 0)
		prev = join
	}
	g, err := b.Build(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnumeratePaths(g, nil, 100); err == nil {
		t.Fatal("want error when path cap exceeded")
	}
	if paths, err := EnumeratePaths(g, nil, 1<<13); err != nil || len(paths) != 4096 {
		t.Fatalf("got %d paths, err %v; want 4096", len(paths), err)
	}
}

func TestEnumeratePathsExtraEdges(t *testing.T) {
	// Pseudo edges extend the path set: serialize two parallel tasks.
	b := NewBuilder()
	src := b.AddTask("", AndNode)
	x := b.AddTask("", AndNode)
	y := b.AddTask("", AndNode)
	b.AddEdge(src, x, 0)
	b.AddEdge(src, y, 0)
	g, err := b.Build(10)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := EnumeratePaths(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths before pseudo edge", len(paths))
	}
	paths, err = EnumeratePaths(g, []Edge{{From: x, To: y, Pseudo: true}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// y is now the only sink; maximal paths are src->x->y and src->y.
	if len(paths) != 2 {
		t.Fatalf("got %d paths after pseudo edge: %v", len(paths), paths)
	}
	found := false
	for i := range paths {
		if paths[i].String() == "t0->t1->t2" {
			found = true
		}
	}
	if !found {
		t.Fatal("pseudo-edge path src->x->y missing")
	}
	if _, err := EnumeratePaths(g, []Edge{{From: x, To: TaskID(9)}}, 0); err == nil {
		t.Fatal("want error for dangling extra edge")
	}
}
