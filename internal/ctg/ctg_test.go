package ctg

import (
	"math/rand"
	"strings"
	"testing"
)

func TestBuilderValidation(t *testing.T) {
	t.Run("empty graph", func(t *testing.T) {
		if _, err := NewBuilder().Build(10); err == nil {
			t.Fatal("want error for empty graph")
		}
	})
	t.Run("bad deadline", func(t *testing.T) {
		b := NewBuilder()
		b.AddTask("a", AndNode)
		if _, err := b.Build(0); err == nil {
			t.Fatal("want error for zero deadline")
		}
	})
	t.Run("unknown endpoint", func(t *testing.T) {
		b := NewBuilder()
		x := b.AddTask("a", AndNode)
		b.AddEdge(x, TaskID(7), 0)
		if _, err := b.Build(10); err == nil {
			t.Fatal("want error for unknown endpoint")
		}
	})
	t.Run("self edge", func(t *testing.T) {
		b := NewBuilder()
		x := b.AddTask("a", AndNode)
		b.AddEdge(x, x, 0)
		if _, err := b.Build(10); err == nil {
			t.Fatal("want error for self edge")
		}
	})
	t.Run("negative comm", func(t *testing.T) {
		b := NewBuilder()
		x := b.AddTask("a", AndNode)
		y := b.AddTask("b", AndNode)
		b.AddEdge(x, y, -1)
		if _, err := b.Build(10); err == nil {
			t.Fatal("want error for negative comm volume")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		b := NewBuilder()
		x := b.AddTask("a", AndNode)
		y := b.AddTask("b", AndNode)
		b.AddEdge(x, y, 0)
		b.AddEdge(y, x, 0)
		if _, err := b.Build(10); err == nil {
			t.Fatal("want error for cycle")
		}
	})
	t.Run("negative outcome", func(t *testing.T) {
		b := NewBuilder()
		x := b.AddTask("a", AndNode)
		y := b.AddTask("b", AndNode)
		b.AddCondEdge(x, y, 0, -1)
		if _, err := b.Build(10); err == nil {
			t.Fatal("want error for negative outcome")
		}
	})
	t.Run("missing outcome edge", func(t *testing.T) {
		b := NewBuilder()
		x := b.AddTask("a", AndNode)
		y := b.AddTask("b", AndNode)
		z := b.AddTask("c", AndNode)
		b.AddCondEdge(x, y, 0, 0)
		b.AddCondEdge(x, z, 0, 2) // outcome 1 unused
		if _, err := b.Build(10); err == nil {
			t.Fatal("want error for unused outcome index")
		}
	})
	t.Run("single-outcome fork", func(t *testing.T) {
		b := NewBuilder()
		x := b.AddTask("a", AndNode)
		y := b.AddTask("b", AndNode)
		b.AddCondEdge(x, y, 0, 0)
		if _, err := b.Build(10); err == nil {
			t.Fatal("want error for single-outcome fork")
		}
	})
	t.Run("probs on non-fork", func(t *testing.T) {
		b := NewBuilder()
		x := b.AddTask("a", AndNode)
		y := b.AddTask("b", AndNode)
		b.AddEdge(x, y, 0)
		b.SetBranchProbs(y, []float64{0.5, 0.5})
		if _, err := b.Build(10); err == nil {
			t.Fatal("want error for probs on non-fork")
		}
	})
	t.Run("bad prob vector", func(t *testing.T) {
		b := NewBuilder()
		x := b.AddTask("a", AndNode)
		y := b.AddTask("b", AndNode)
		z := b.AddTask("c", AndNode)
		b.AddCondEdge(x, y, 0, 0)
		b.AddCondEdge(x, z, 0, 1)
		b.SetBranchProbs(x, []float64{0.5, 0.2})
		if _, err := b.Build(10); err == nil {
			t.Fatal("want error for probs not summing to 1")
		}
	})
	t.Run("orphan or-node", func(t *testing.T) {
		b := NewBuilder()
		b.AddTask("a", OrNode)
		if _, err := b.Build(10); err == nil {
			t.Fatal("want error for or-node without predecessors")
		}
	})
}

func TestUniformDefaultProbs(t *testing.T) {
	b := NewBuilder()
	x := b.AddTask("a", AndNode)
	y := b.AddTask("b", AndNode)
	z := b.AddTask("c", AndNode)
	b.AddCondEdge(x, y, 0, 0)
	b.AddCondEdge(x, z, 0, 1)
	g, err := b.Build(10)
	if err != nil {
		t.Fatal(err)
	}
	if g.BranchProb(x, 0) != 0.5 || g.BranchProb(x, 1) != 0.5 {
		t.Fatalf("default probs = %v", g.BranchProbs(x))
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := buildRandomDAG(t, rand.New(rand.NewSource(7)), 30, 0.15)
	pos := make([]int, g.NumTasks())
	for i, tid := range g.Topo() {
		pos[tid] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("topo violates edge %d->%d", e.From, e.To)
		}
	}
}

func TestCloneIsolatesProbs(t *testing.T) {
	b := NewBuilder()
	x := b.AddTask("a", AndNode)
	y := b.AddTask("b", AndNode)
	z := b.AddTask("c", AndNode)
	b.AddCondEdge(x, y, 0, 0)
	b.AddCondEdge(x, z, 0, 1)
	g, err := b.Build(10)
	if err != nil {
		t.Fatal(err)
	}
	cp := g.Clone()
	if err := cp.SetBranchProbs(x, []float64{0.9, 0.1}); err != nil {
		t.Fatal(err)
	}
	if g.BranchProb(x, 0) != 0.5 {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestSetBranchProbsValidation(t *testing.T) {
	b := NewBuilder()
	x := b.AddTask("a", AndNode)
	y := b.AddTask("b", AndNode)
	z := b.AddTask("c", AndNode)
	b.AddCondEdge(x, y, 0, 0)
	b.AddCondEdge(x, z, 0, 1)
	g, err := b.Build(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetBranchProbs(y, []float64{1}); err == nil {
		t.Fatal("want error: y is not a fork")
	}
	if err := g.SetBranchProbs(x, []float64{0.2, 0.2}); err == nil {
		t.Fatal("want error: probs do not sum to 1")
	}
	if err := g.SetBranchProbs(x, []float64{0.25, 0.75}); err != nil {
		t.Fatal(err)
	}
	if g.BranchProb(x, 1) != 0.75 {
		t.Fatal("SetBranchProbs did not stick")
	}
}

func TestDotOutput(t *testing.T) {
	b := NewBuilder()
	x := b.AddTask("src", AndNode)
	y := b.AddTask("dst", OrNode)
	z := b.AddTask("alt", AndNode)
	b.AddCondEdge(x, y, 1, 0)
	b.AddCondEdge(x, z, 1, 1)
	g, err := b.Build(10)
	if err != nil {
		t.Fatal(err)
	}
	dot := g.Dot()
	for _, want := range []string{"digraph", "shape=diamond", "style=dashed", `"src"`} {
		if !strings.Contains(dot, want) {
			t.Fatalf("Dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestKindAndCondStrings(t *testing.T) {
	if AndNode.String() != "and" || OrNode.String() != "or" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown Kind string wrong")
	}
	if Uncond().String() != "1" {
		t.Fatal("unconditional Cond string wrong")
	}
	if When(3, 1).String() != "b3=1" {
		t.Fatal("conditional Cond string wrong")
	}
}

// buildRandomDAG builds a layered unconditional DAG (no forks) for
// structural tests.
func buildRandomDAG(t *testing.T, rng *rand.Rand, n int, density float64) *Graph {
	t.Helper()
	b := NewBuilder()
	ids := make([]TaskID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddTask("", AndNode)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				b.AddEdge(ids[i], ids[j], rng.Float64()*10)
			}
		}
	}
	g, err := b.Build(1000)
	if err != nil {
		t.Fatalf("random DAG build: %v", err)
	}
	return g
}
