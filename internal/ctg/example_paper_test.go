package ctg

import (
	"math"
	"testing"
)

// paperFigure1 builds the CTG of Example 1 / Figure 1 of the paper:
//
//	τ1 → τ2, τ1 → τ3
//	τ3 is fork a: a1 → τ4, a2 → τ5
//	τ5 is fork b: b1 → τ6, b2 → τ7
//	τ8 is an or-node with predecessors τ2 and τ4
//
// IDs here are zero-based: paper τk = TaskID k-1.
func paperFigure1(t *testing.T, probA, probB []float64) *Graph {
	t.Helper()
	b := NewBuilder()
	t1 := b.AddTask("tau1", AndNode)
	t2 := b.AddTask("tau2", AndNode)
	t3 := b.AddTask("tau3", AndNode)
	t4 := b.AddTask("tau4", AndNode)
	t5 := b.AddTask("tau5", AndNode)
	t6 := b.AddTask("tau6", AndNode)
	t7 := b.AddTask("tau7", AndNode)
	t8 := b.AddTask("tau8", OrNode)
	b.AddEdge(t1, t2, 1)
	b.AddEdge(t1, t3, 1)
	b.AddCondEdge(t3, t4, 1, 0) // a1
	b.AddCondEdge(t3, t5, 1, 1) // a2
	b.AddCondEdge(t5, t6, 1, 0) // b1
	b.AddCondEdge(t5, t7, 1, 1) // b2
	b.AddEdge(t2, t8, 1)
	b.AddEdge(t4, t8, 1)
	b.SetBranchProbs(t3, probA)
	b.SetBranchProbs(t5, probB)
	g, err := b.Build(100)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestPaperExampleStructure(t *testing.T) {
	g := paperFigure1(t, []float64{0.4, 0.6}, []float64{0.5, 0.5})
	if g.NumTasks() != 8 || g.NumEdges() != 8 {
		t.Fatalf("got %d tasks %d edges", g.NumTasks(), g.NumEdges())
	}
	if got := g.Forks(); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("Forks = %v, want [2 4]", got)
	}
	if !g.IsFork(2) || g.IsFork(0) {
		t.Fatal("fork detection wrong")
	}
	if g.Outcomes(2) != 2 || g.Outcomes(4) != 2 {
		t.Fatal("outcome counts wrong")
	}
	if p := g.BranchProb(2, 1); p != 0.6 {
		t.Fatalf("BranchProb(a2) = %v", p)
	}
	if got := g.Sources(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Sources = %v", got)
	}
}

func TestPaperExampleScenarios(t *testing.T) {
	g := paperFigure1(t, []float64{0.4, 0.6}, []float64{0.5, 0.5})
	a, err := Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// Leaf minterms: a1, a2·b1, a2·b2 (the paper's M minus the symbolic "1").
	if a.NumScenarios() != 3 {
		t.Fatalf("NumScenarios = %d, want 3", a.NumScenarios())
	}
	if math.Abs(a.TotalProb()-1) > 1e-12 {
		t.Fatalf("TotalProb = %v", a.TotalProb())
	}
	wantProbs := map[string]float64{
		"b2=0":      0.4,
		"b2=1·b4=0": 0.3,
		"b2=1·b4=1": 0.3,
	}
	for i := 0; i < a.NumScenarios(); i++ {
		label := a.ScenarioLabel(i)
		want, ok := wantProbs[label]
		if !ok {
			t.Fatalf("unexpected scenario %q", label)
		}
		if math.Abs(a.Scenario(i).Prob-want) > 1e-12 {
			t.Fatalf("scenario %q prob = %v, want %v", label, a.Scenario(i).Prob, want)
		}
		delete(wantProbs, label)
	}

	// Activation probabilities from the paper's Γ sets.
	wantAct := []float64{1, 1, 1, 0.4, 0.6, 0.3, 0.3, 1}
	for tid, want := range wantAct {
		if got := a.ActivationProb(TaskID(tid)); math.Abs(got-want) > 1e-12 {
			t.Errorf("ActivationProb(tau%d) = %v, want %v", tid+1, got, want)
		}
	}
}

func TestPaperExampleMutualExclusion(t *testing.T) {
	g := paperFigure1(t, []float64{0.4, 0.6}, []float64{0.5, 0.5})
	a, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	me := func(i, j TaskID) bool { return a.MutuallyExclusive(i, j) }
	// τ4 (a1) excludes τ5, τ6, τ7 (all under a2).
	for _, other := range []TaskID{4, 5, 6} {
		if !me(3, other) {
			t.Errorf("tau4 and tau%d should be mutually exclusive", other+1)
		}
	}
	// τ6 (a2b1) excludes τ7 (a2b2) but not τ5 (a2).
	if !me(5, 6) {
		t.Error("tau6 and tau7 should be mutually exclusive")
	}
	if me(4, 5) {
		t.Error("tau5 and tau6 are not mutually exclusive")
	}
	// Always-active tasks exclude nothing.
	for other := TaskID(1); other < 8; other++ {
		if me(0, other) {
			t.Errorf("tau1 excludes tau%d", other+1)
		}
	}
	if me(3, 3) {
		t.Error("a task is never mutually exclusive with itself")
	}
}

func TestPaperExampleOrNodeActivation(t *testing.T) {
	g := paperFigure1(t, []float64{0.4, 0.6}, []float64{0.5, 0.5})
	a, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	// τ8 is an or-node fed unconditionally by τ2, so it is active in every
	// scenario even when τ4 is not.
	if got := a.ActivationProb(7); got != 1 {
		t.Fatalf("ActivationProb(tau8) = %v, want 1", got)
	}
	for i := 0; i < a.NumScenarios(); i++ {
		if !a.Scenario(i).Active.Get(7) {
			t.Fatalf("tau8 inactive in scenario %s", a.ScenarioLabel(i))
		}
	}
}

func TestPaperExampleDecisions(t *testing.T) {
	g := paperFigure1(t, []float64{0.4, 0.6}, []float64{0.5, 0.5})
	a, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	// Decision vector (a=a1, b=b2): fork b is never activated, so the
	// resolved scenario must be the a1 leaf.
	si, err := a.ScenarioForDecisions([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if lbl := a.ScenarioLabel(si); lbl != "b2=0" {
		t.Fatalf("resolved %q, want a1 leaf", lbl)
	}
	// (a=a2, b=b1) resolves to the a2·b1 leaf.
	si, err = a.ScenarioForDecisions([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if lbl := a.ScenarioLabel(si); lbl != "b2=1·b4=0" {
		t.Fatalf("resolved %q, want a2b1 leaf", lbl)
	}
	if _, err := a.ScenarioForDecisions([]int{0}); err == nil {
		t.Fatal("short decision vector must error")
	}
	if _, err := a.ScenarioForDecisions([]int{0, 5}); err == nil {
		t.Fatal("out-of-range decision must error")
	}
}

func TestPaperExamplePaths(t *testing.T) {
	g := paperFigure1(t, []float64{0.4, 0.6}, []float64{0.5, 0.5})
	paths, err := EnumeratePaths(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Maximal paths: 1-2-8, 1-3-4-8, 1-3-5-6, 1-3-5-7.
	want := map[string]bool{
		"t0->t1->t7":     true,
		"t0->t2->t3->t7": true,
		"t0->t2->t4->t5": true,
		"t0->t2->t4->t6": true,
	}
	if len(paths) != len(want) {
		t.Fatalf("got %d paths: %v", len(paths), paths)
	}
	for _, p := range paths {
		if !want[p.String()] {
			t.Fatalf("unexpected path %s", p.String())
		}
	}
	// prob(τ1-τ3-τ5-τ6, τ5) = prob(b1) = 0.5 (paper's worked example).
	for i := range paths {
		p := &paths[i]
		if p.String() == "t0->t2->t4->t5" {
			pos, ok := p.Spans(4)
			if !ok {
				t.Fatal("path must span tau5")
			}
			if got := p.ProbAfter(g, pos); math.Abs(got-0.5) > 1e-12 {
				t.Fatalf("prob(p, tau5) = %v, want 0.5", got)
			}
			if got := p.CondProduct(g); math.Abs(got-0.6*0.5) > 1e-12 {
				t.Fatalf("CondProduct = %v, want 0.3", got)
			}
			if p.Unconditional() {
				t.Fatal("path is conditional")
			}
		}
		// prob(τ1-τ3-τ4-τ8, τ8) = 1 (paper's second worked example).
		if p.String() == "t0->t2->t3->t7" {
			pos, _ := p.Spans(7)
			if got := p.ProbAfter(g, pos); got != 1 {
				t.Fatalf("prob(p, tau8) = %v, want 1", got)
			}
		}
	}
}

func TestPaperExamplePathMintermMembership(t *testing.T) {
	g := paperFigure1(t, []float64{0.4, 0.6}, []float64{0.5, 0.5})
	a, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := EnumeratePaths(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The unconditional path τ1-τ2-τ8 is consistent with every scenario;
	// the a1 path only with the a1 leaf.
	for i := range paths {
		p := &paths[i]
		n := 0
		for si := 0; si < a.NumScenarios(); si++ {
			if p.ConsistentWith(g, a.Scenario(si).Assign) {
				n++
			}
		}
		switch p.String() {
		case "t0->t1->t7":
			if n != 3 {
				t.Fatalf("unconditional path consistent with %d scenarios, want 3", n)
			}
			if !p.Unconditional() {
				t.Fatal("path τ1-τ2-τ8 should be unconditional")
			}
		case "t0->t2->t3->t7":
			if n != 1 {
				t.Fatalf("a1 path consistent with %d scenarios, want 1", n)
			}
		default:
			if n != 1 {
				t.Fatalf("path %s consistent with %d scenarios, want 1", p, n)
			}
		}
	}
}

func TestReweightTracksProbChanges(t *testing.T) {
	g := paperFigure1(t, []float64{0.4, 0.6}, []float64{0.5, 0.5})
	a, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetBranchProbs(2, []float64{0.9, 0.1}); err != nil {
		t.Fatal(err)
	}
	a.Reweight()
	if got := a.ActivationProb(3); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("after reweight ActivationProb(tau4) = %v, want 0.9", got)
	}
	if math.Abs(a.TotalProb()-1) > 1e-12 {
		t.Fatalf("TotalProb = %v", a.TotalProb())
	}
}
