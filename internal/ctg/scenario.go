package ctg

import (
	"fmt"
	"math"
	"strings"
)

// OutcomeUnassigned marks a fork whose outcome is irrelevant in a scenario
// (the fork is never activated there, or its outcome cannot influence any
// activation).
const OutcomeUnassigned = -1

// Scenario is a leaf minterm of the CTG: a complete, consistent assignment
// of outcomes to the branch fork nodes that are activated (and whose outcome
// matters), together with the induced set of active tasks and its
// probability under the graph's current branch probabilities.
type Scenario struct {
	// Assign maps dense fork index -> outcome, or OutcomeUnassigned.
	Assign []int
	// Prob is the product of the assigned forks' outcome probabilities.
	Prob float64
	// Active is the set of activated tasks (indexed by TaskID).
	Active Bitset
}

// String renders the scenario as a product of conditions, e.g. "b3=0·b5=1",
// or "1" for the unconditional scenario.
func (s Scenario) label(g *Graph) string {
	var parts []string
	for fi, k := range s.Assign {
		if k != OutcomeUnassigned {
			parts = append(parts, fmt.Sprintf("b%d=%d", g.forks[fi], k))
		}
	}
	if len(parts) == 0 {
		return "1"
	}
	return strings.Join(parts, "·")
}

// MaxScenarios bounds scenario enumeration. CTGs in this domain have at most
// a dozen or so simultaneously-activatable forks; anything past this limit
// indicates a modelling error rather than a legitimate workload.
const MaxScenarios = 1 << 16

// Analysis holds the scenario decomposition of a graph: the leaf minterms,
// per-task activation sets X(τ) (as scenario bitsets), activation
// probabilities prob(τ), and the mutual-exclusion relation.
//
// An Analysis snapshot is tied to the branch probabilities at the time
// Analyze was called; scenario *structure* (assignments and active sets)
// depends only on the graph, so Reweight can cheaply refresh probabilities
// after the adaptive layer updates them.
type Analysis struct {
	g         *Graph
	scenarios []Scenario
	gamma     []Bitset  // per task: scenarios where active
	actProb   []float64 // per task: activation probability
}

// Analyze enumerates the scenarios of g and derives activation sets and
// probabilities. It returns an error if the scenario count exceeds
// MaxScenarios.
func Analyze(g *Graph) (*Analysis, error) {
	a := &Analysis{g: g}
	assign := make([]int, len(g.forks))
	for i := range assign {
		assign[i] = OutcomeUnassigned
	}
	if err := a.enumerate(assign); err != nil {
		return nil, err
	}
	n := g.NumTasks()
	a.gamma = make([]Bitset, n)
	for t := 0; t < n; t++ {
		a.gamma[t] = NewBitset(len(a.scenarios))
	}
	for si, sc := range a.scenarios {
		sc.Active.ForEach(func(t int) { a.gamma[t].Set(si) })
	}
	a.reweight()
	return a, nil
}

// enumerate recursively expands undecided-but-relevant forks, depth first,
// so scenarios come out in a deterministic order.
func (a *Analysis) enumerate(assign []int) error {
	active, need := a.g.activate(assign)
	if need < 0 {
		if len(a.scenarios) >= MaxScenarios {
			return fmt.Errorf("ctg: more than %d scenarios; graph is too conditional", MaxScenarios)
		}
		a.scenarios = append(a.scenarios, Scenario{
			Assign: append([]int(nil), assign...),
			Active: active,
		})
		return nil
	}
	fi := a.g.forkIndex[need]
	for k := 0; k < a.g.outcomes[fi]; k++ {
		assign[fi] = k
		if err := a.enumerate(assign); err != nil {
			return err
		}
	}
	assign[fi] = OutcomeUnassigned
	return nil
}

// activate computes the activation set under a partial outcome assignment.
// If the status of some task depends on an activated fork whose outcome is
// unassigned, activate returns that fork in need (and the bitset is
// meaningless); otherwise need is NoBranch.
//
// Semantics per the paper: a source is always active; an and-node is active
// iff every incoming edge is satisfied; an or-node is active iff at least
// one incoming edge is satisfied. An edge is satisfied iff its source is
// active and its condition holds.
func (g *Graph) activate(assign []int) (active Bitset, need TaskID) {
	active = NewBitset(g.NumTasks())
	for _, t := range g.topo {
		if len(g.pred[t]) == 0 {
			active.Set(int(t))
			continue
		}
		// Evaluate incoming edges to three-valued sat: yes / no / unknown.
		anySat, anyUnknown := false, false
		allSat := true
		var unknownFork TaskID = NoBranch
		for _, ei := range g.pred[t] {
			e := g.edges[ei]
			if !active.Get(int(e.From)) {
				allSat = false
				continue // inactive predecessor: edge unsatisfied
			}
			if !e.Cond.IsConditional() {
				anySat = true
				continue
			}
			k := assign[g.forkIndex[e.Cond.Branch()]]
			switch {
			case k == OutcomeUnassigned:
				anyUnknown = true
				allSat = false // unknown, so not definitively satisfied
				if unknownFork == NoBranch {
					unknownFork = e.Cond.Branch()
				}
			case k == e.Cond.Outcome():
				anySat = true
			default:
				allSat = false
			}
		}
		switch g.tasks[t].Kind {
		case AndNode:
			// Definitively inactive if any edge is definitively
			// unsatisfied; we only need the unknown fork when no known
			// edge already rules the node out.
			definitelyOut := false
			for _, ei := range g.pred[t] {
				e := g.edges[ei]
				if !active.Get(int(e.From)) {
					definitelyOut = true
					break
				}
				if e.Cond.IsConditional() {
					k := assign[g.forkIndex[e.Cond.Branch()]]
					if k != OutcomeUnassigned && k != e.Cond.Outcome() {
						definitelyOut = true
						break
					}
				}
			}
			if definitelyOut {
				continue
			}
			if anyUnknown {
				return active, unknownFork
			}
			if allSat {
				active.Set(int(t))
			}
		case OrNode:
			if anySat {
				active.Set(int(t))
				continue
			}
			if anyUnknown {
				return active, unknownFork
			}
		}
	}
	return active, NoBranch
}

// reweight recomputes scenario and activation probabilities from the
// graph's current branch probabilities. Scenario structure is unchanged.
func (a *Analysis) reweight() {
	n := a.g.NumTasks()
	if a.actProb == nil {
		a.actProb = make([]float64, n)
	}
	for t := range a.actProb {
		a.actProb[t] = 0
	}
	for si := range a.scenarios {
		p := 1.0
		for fi, k := range a.scenarios[si].Assign {
			if k != OutcomeUnassigned {
				p *= a.g.probs[fi][k]
			}
		}
		a.scenarios[si].Prob = p
	}
	for t := 0; t < n; t++ {
		if a.gamma[t].Count() == len(a.scenarios) {
			// Active in every scenario: exactly 1, independent of the
			// rounding of the scenario probabilities.
			a.actProb[t] = 1
			continue
		}
		a.gamma[t].ForEach(func(si int) { a.actProb[t] += a.scenarios[si].Prob })
		if a.actProb[t] > 1 {
			a.actProb[t] = 1 // guard against rounding
		}
	}
}

// Reweight refreshes all probabilities after the graph's branch
// probabilities changed (the scenario structure is purely topological).
func (a *Analysis) Reweight() { a.reweight() }

// Graph returns the analyzed graph.
func (a *Analysis) Graph() *Graph { return a.g }

// NumScenarios returns the number of leaf minterms.
func (a *Analysis) NumScenarios() int { return len(a.scenarios) }

// Scenario returns the i-th leaf minterm.
func (a *Analysis) Scenario(i int) Scenario { return a.scenarios[i] }

// Scenarios returns all leaf minterms. The returned slice must not be
// modified.
func (a *Analysis) Scenarios() []Scenario { return a.scenarios }

// ScenarioLabel renders scenario i as a condition product like "b3=0·b5=1".
func (a *Analysis) ScenarioLabel(i int) string { return a.scenarios[i].label(a.g) }

// ActivationExpr renders X(τ) as a sum of the leaf minterms that activate
// the task, e.g. "b2=0 + b2=1·b4=0", or "1" for an always-active task and
// "0" for a dead one. Intended for diagnostics and documentation.
func (a *Analysis) ActivationExpr(t TaskID) string {
	set := a.gamma[t]
	if set.Count() == len(a.scenarios) {
		return "1"
	}
	if set.Empty() {
		return "0"
	}
	out := ""
	set.ForEach(func(si int) {
		if out != "" {
			out += " + "
		}
		out += a.ScenarioLabel(si)
	})
	return out
}

// ActivationSet returns X(τ) as a bitset over scenario indices. The caller
// must not modify it.
func (a *Analysis) ActivationSet(t TaskID) Bitset { return a.gamma[t] }

// ActivationProb returns prob(τ), the probability that task t is activated
// in a random instance of the CTG.
func (a *Analysis) ActivationProb(t TaskID) float64 { return a.actProb[t] }

// MutuallyExclusive reports whether two distinct tasks can never be active
// in the same CTG instance. Such tasks may overlap in time on the same PE.
func (a *Analysis) MutuallyExclusive(i, j TaskID) bool {
	if i == j {
		return false
	}
	return !a.gamma[i].Intersects(a.gamma[j])
}

// ScenarioForDecisions resolves a full branch decision vector (one outcome
// per fork, in Forks() order) to the index of the matching leaf scenario.
// Outcomes of forks that end up unactivated are ignored.
func (a *Analysis) ScenarioForDecisions(decisions []int) (int, error) {
	if len(decisions) != len(a.g.forks) {
		return 0, fmt.Errorf("ctg: got %d decisions for %d forks", len(decisions), len(a.g.forks))
	}
	for fi, k := range decisions {
		if k < 0 || k >= a.g.outcomes[fi] {
			return 0, fmt.Errorf("ctg: decision %d out of range for fork %d", k, a.g.forks[fi])
		}
	}
	for si, sc := range a.scenarios {
		match := true
		for fi, k := range sc.Assign {
			if k != OutcomeUnassigned && decisions[fi] != k {
				match = false
				break
			}
		}
		if match {
			return si, nil
		}
	}
	// Leaf scenarios partition the decision space, so this is unreachable
	// for a valid analysis.
	return 0, fmt.Errorf("ctg: no scenario matches decisions %v", decisions)
}

// ProbOfSet returns the total probability of a set of scenarios (a bitset
// over scenario indices), e.g. the probability that two communicating tasks
// are both active.
func (a *Analysis) ProbOfSet(s Bitset) float64 {
	if s.Count() == len(a.scenarios) {
		return 1
	}
	sum := 0.0
	s.ForEach(func(si int) { sum += a.scenarios[si].Prob })
	if sum > 1 {
		sum = 1
	}
	return sum
}

// TotalProb returns the sum of all scenario probabilities (1 up to floating
// point error); exposed for invariant checking.
func (a *Analysis) TotalProb() float64 {
	sum := 0.0
	for _, s := range a.scenarios {
		sum += s.Prob
	}
	return sum
}

// ExpectedActiveWeight returns Σ_τ prob(τ)·w(τ) for an arbitrary per-task
// weight, a convenience used to rank scenarios by energy and to weight
// objectives.
func (a *Analysis) ExpectedActiveWeight(w func(TaskID) float64) float64 {
	sum := 0.0
	for t := 0; t < a.g.NumTasks(); t++ {
		sum += a.actProb[t] * w(TaskID(t))
	}
	return sum
}

// ScenarioWeight returns Σ_{τ active in scenario i} w(τ).
func (a *Analysis) ScenarioWeight(i int, w func(TaskID) float64) float64 {
	sum := 0.0
	a.scenarios[i].Active.ForEach(func(t int) { sum += w(TaskID(t)) })
	return sum
}

// MinMaxWeightScenarios returns the indices of the scenarios with the
// smallest and largest ScenarioWeight. Used to build the biased profiles of
// Tables 4 and 5 (lowest/highest energy minterm).
func (a *Analysis) MinMaxWeightScenarios(w func(TaskID) float64) (minIdx, maxIdx int) {
	minW, maxW := math.Inf(1), math.Inf(-1)
	for i := range a.scenarios {
		sw := a.ScenarioWeight(i, w)
		if sw < minW {
			minW, minIdx = sw, i
		}
		if sw > maxW {
			maxW, maxIdx = sw, i
		}
	}
	return minIdx, maxIdx
}
