package core

import (
	"math"
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/tgff"
	"ctgdvfs/internal/trace"
)

func testWorkload(t *testing.T, seed int64) (*ctg.Graph, *tgff.Config) {
	t.Helper()
	cfg := tgff.Config{Seed: seed, Nodes: 18, PEs: 3, Branches: 2, Category: tgff.ForkJoin}
	g, _, err := tgff.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, &cfg
}

func TestProfilerSeedingMatchesInitialProbs(t *testing.T) {
	g, _ := testWorkload(t, 1)
	for _, fork := range g.Forks() {
		if err := g.SetBranchProbs(fork, []float64{0.3, 0.7}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewProfiler(g, 20)
	if err != nil {
		t.Fatal(err)
	}
	for fi := range g.Forks() {
		est := p.Estimate(fi)
		if math.Abs(est[0]-0.3) > 0.05 || math.Abs(est[1]-0.7) > 0.05 {
			t.Fatalf("fork %d seeded estimate %v, want ≈[0.3 0.7]", fi, est)
		}
	}
	if d := p.MaxDrift(); d > 0.05 {
		t.Fatalf("fresh profiler drift %v, want ≈0", d)
	}
}

func TestProfilerObserveShiftsWindow(t *testing.T) {
	g, _ := testWorkload(t, 2)
	p, err := NewProfiler(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Push 10 outcome-0 decisions: the estimate must become [1, 0].
	for i := 0; i < 10; i++ {
		if err := p.Observe(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	est := p.Estimate(0)
	if est[0] != 1 || est[1] != 0 {
		t.Fatalf("estimate after flooding = %v, want [1 0]", est)
	}
	if d := p.MaxDrift(); d < 0.4 {
		t.Fatalf("drift %v too small after flooding", d)
	}
	// Window semantics: 10 more outcome-1 decisions fully displace.
	for i := 0; i < 10; i++ {
		if err := p.Observe(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	est = p.Estimate(0)
	if est[0] != 0 || est[1] != 1 {
		t.Fatalf("estimate after displacement = %v, want [0 1]", est)
	}
}

func TestProfilerErrors(t *testing.T) {
	g, _ := testWorkload(t, 3)
	if _, err := NewProfiler(g, 0); err == nil {
		t.Fatal("want error for zero window")
	}
	p, err := NewProfiler(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(99, 0); err == nil {
		t.Fatal("want error for bad fork index")
	}
	if err := p.Observe(0, 99); err == nil {
		t.Fatal("want error for bad outcome")
	}
	if p.Window() != 5 {
		t.Fatal("Window() wrong")
	}
}

func TestFilteredSeriesMechanics(t *testing.T) {
	// All-ones stream, window 4, start prob 0: windowed probability climbs
	// 0.25, 0.5, 0.75, 1 and the filter snaps when the gap exceeds 0.3.
	pts := FilteredSeries([]int{1, 1, 1, 1, 1}, 0, 4, 0.3)
	wantWindow := []float64{0.25, 0.5, 0.75, 1, 1}
	for i, w := range wantWindow {
		if math.Abs(pts[i].WindowProb-w) > 1e-12 {
			t.Fatalf("point %d window prob %v, want %v", i, pts[i].WindowProb, w)
		}
	}
	// 0.25 ≤ 0.3 no update; 0.5 > 0.3 update to 0.5; 0.75−0.5 ≤ 0.3; 1−0.5 > 0.3 update.
	wantFiltered := []float64{0, 0.5, 0.5, 1, 1}
	wantUpdated := []bool{false, true, false, true, false}
	for i := range pts {
		if math.Abs(pts[i].Filtered-wantFiltered[i]) > 1e-12 || pts[i].Updated != wantUpdated[i] {
			t.Fatalf("point %d = %+v, want filtered %v updated %v",
				i, pts[i], wantFiltered[i], wantUpdated[i])
		}
	}
}

func TestFilteredSeriesLowThresholdUpdatesMore(t *testing.T) {
	g, _ := testWorkload(t, 4)
	v := trace.Fluctuating(g, 9, 1500, 0.45)
	sel := make([]int, len(v))
	for i := range v {
		sel[i] = v[i][0]
	}
	count := func(th float64) int {
		n := 0
		for _, pt := range FilteredSeries(sel, 0.5, 20, th) {
			if pt.Updated {
				n++
			}
		}
		return n
	}
	lo, hi := count(0.1), count(0.5)
	if lo <= hi {
		t.Fatalf("threshold 0.1 updated %d times, 0.5 %d times; want more at 0.1", lo, hi)
	}
	if hi == 0 {
		t.Fatal("threshold 0.5 never updated on a 0.45-amplitude stream")
	}
}

func TestManagerAdaptsAndBeatsMisprofiledStatic(t *testing.T) {
	g, cfg := testWorkload(t, 5)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tighten deadline to 1.5× nominal makespan.
	s0, err := BuildOnline(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err = g.WithDeadline(1.5 * s0.Makespan)
	if err != nil {
		t.Fatal(err)
	}

	// Workload strongly favors outcome 0 everywhere; the static profile
	// believes the opposite.
	vec := make(trace.Vectors, 800)
	for i := range vec {
		row := make([]int, g.NumForks())
		if i%10 == 9 {
			for fi := range row {
				row[fi] = 1
			}
		}
		vec[i] = row
	}
	gBad := g.Clone()
	for _, f := range gBad.Forks() {
		if err := gBad.SetBranchProbs(f, []float64{0.1, 0.9}); err != nil {
			t.Fatal(err)
		}
	}
	static, err := BuildOnline(gBad, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stStatic, err := RunStatic(static, vec)
	if err != nil {
		t.Fatal(err)
	}

	m, err := New(gBad, p, Options{Window: 20, Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	stAdaptive, err := m.Run(vec)
	if err != nil {
		t.Fatal(err)
	}
	if stAdaptive.Calls == 0 {
		t.Fatal("adaptive manager never re-scheduled on a drifted workload")
	}
	if stAdaptive.AvgEnergy >= stStatic.AvgEnergy {
		t.Fatalf("adaptive avg energy %v not below misprofiled static %v",
			stAdaptive.AvgEnergy, stStatic.AvgEnergy)
	}
	if stAdaptive.Misses != 0 || stStatic.Misses != 0 {
		t.Fatalf("deadline misses: adaptive %d static %d", stAdaptive.Misses, stStatic.Misses)
	}
	if stAdaptive.Instances != 800 || stStatic.Instances != 800 {
		t.Fatal("instance counts wrong")
	}
}

func TestManagerThresholdControlsCallCount(t *testing.T) {
	g, cfg := testWorkload(t, 6)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	vec := trace.Fluctuating(g, 11, 1000, 0.45)
	calls := map[float64]int{}
	for _, th := range []float64{0.1, 0.5} {
		m, err := New(g, p, Options{Window: 20, Threshold: th})
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run(vec)
		if err != nil {
			t.Fatal(err)
		}
		calls[th] = st.Calls
	}
	if calls[0.1] <= calls[0.5] {
		t.Fatalf("calls at T=0.1 (%d) not above T=0.5 (%d)", calls[0.1], calls[0.5])
	}
	if calls[0.1] == 0 {
		t.Fatal("T=0.1 never adapted on a fluctuating stream")
	}
}

func TestManagerThresholdOneNeverAdapts(t *testing.T) {
	g, cfg := testWorkload(t, 7)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	vec := trace.Fluctuating(g, 12, 300, 0.45)
	m, err := New(g, p, Options{Window: 20, Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(vec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Calls != 0 {
		t.Fatalf("threshold 1 adapted %d times", st.Calls)
	}
	// And its energy equals the static schedule's.
	static, err := BuildOnline(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stStatic, err := RunStatic(static, vec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.AvgEnergy-stStatic.AvgEnergy) > 1e-9 {
		t.Fatalf("non-adapting manager energy %v != static %v", st.AvgEnergy, stStatic.AvgEnergy)
	}
}

func TestManagerValidation(t *testing.T) {
	g, cfg := testWorkload(t, 8)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, p, Options{Threshold: -1}); err == nil {
		t.Fatal("want error for negative threshold")
	}
	if _, err := New(g, p, Options{Threshold: 2}); err == nil {
		t.Fatal("want error for threshold > 1")
	}
	m, err := New(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step([]int{0}); err == nil {
		t.Fatal("want error for short decision vector")
	}
	if m.Schedule() == nil {
		t.Fatal("manager must expose its schedule")
	}
	if len(m.Probs(0)) == 0 {
		t.Fatal("Probs accessor broken")
	}
}

func TestManagerDoesNotMutateCallerGraph(t *testing.T) {
	g, cfg := testWorkload(t, 9)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := g.BranchProbs(g.Forks()[0])
	m, err := New(g, p, Options{Window: 10, Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	vec := trace.Fluctuating(g, 13, 200, 0.45)
	if _, err := m.Run(vec); err != nil {
		t.Fatal(err)
	}
	after := g.BranchProbs(g.Forks()[0])
	for k := range before {
		if before[k] != after[k] {
			t.Fatal("manager mutated the caller's graph probabilities")
		}
	}
}

func TestSmoothedEstimateNeverDegenerate(t *testing.T) {
	g, _ := testWorkload(t, 10)
	p, err := NewProfiler(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := p.Observe(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	raw := p.Estimate(0)
	smooth := p.SmoothedEstimate(0)
	if raw[1] != 0 {
		t.Fatalf("raw estimate %v should be degenerate after flooding", raw)
	}
	if smooth[1] <= 0 || smooth[0] >= 1 {
		t.Fatalf("smoothed estimate %v must stay interior", smooth)
	}
	sum := 0.0
	for _, v := range smooth {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("smoothed estimate sums to %v", sum)
	}
}

func TestManagerStableWithoutDrift(t *testing.T) {
	// A stream that matches the profile exactly (deterministically
	// alternating to keep the window frequency at the profile value)
	// must never trigger re-scheduling at a coarse threshold. A flat
	// graph keeps every fork always-active, so every fork observes every
	// instance (a nested fork would see only one parity of the
	// alternation and drift legitimately).
	cfg := tgff.Config{Seed: 11, Nodes: 18, PEs: 3, Branches: 2, Category: tgff.Flat}
	g, p, err := tgff.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range g.Forks() {
		if err := g.SetBranchProbs(f, []float64{0.5, 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := New(g, p, Options{Window: 20, Threshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	vec := make(trace.Vectors, 300)
	for i := range vec {
		row := make([]int, g.NumForks())
		for fi := range row {
			row[fi] = i % 2 // alternating keeps the window at 0.5
		}
		vec[i] = row
	}
	st, err := m.Run(vec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Calls != 0 {
		t.Fatalf("drift-free stream triggered %d re-schedules", st.Calls)
	}
}

func TestManagerPerScenarioMode(t *testing.T) {
	g, cfg := testWorkload(t, 12)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err = TightenDeadline(g, p, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	vec := trace.Fluctuating(g, 21, 600, 0.45)

	run := func(perScenario bool) RunStats {
		m, err := New(g, p, Options{Window: 20, Threshold: 0.1, PerScenario: perScenario})
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run(vec)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	single := run(false)
	multi := run(true)
	if multi.Misses != 0 {
		t.Fatalf("per-scenario adaptive run missed %d deadlines", multi.Misses)
	}
	// Scenario-conditioned dispatch can only help the energy.
	if multi.AvgEnergy > single.AvgEnergy*1.001 {
		t.Fatalf("per-scenario adaptive energy %v worse than single-speed %v",
			multi.AvgEnergy, single.AvgEnergy)
	}
	if multi.Calls == 0 {
		t.Fatal("per-scenario manager never adapted")
	}
}

func TestStepDriftWithinBounds(t *testing.T) {
	g, cfg := testWorkload(t, 13)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g, p, Options{Window: 10, Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	vec := trace.Fluctuating(g, 31, 120, 0.45)
	for i, row := range vec {
		res, err := m.Step(row)
		if err != nil {
			t.Fatal(err)
		}
		if res.Drift < 0 || res.Drift > 1 {
			t.Fatalf("step %d: drift %v out of [0,1]", i, res.Drift)
		}
		if res.Rescheduled && res.Drift != 0 && res.Drift < 0.0 {
			t.Fatalf("step %d: inconsistent reschedule flag", i)
		}
		if !res.Instance.DeadlineMet {
			t.Fatalf("step %d: deadline miss", i)
		}
	}
}
