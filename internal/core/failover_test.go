package core

import (
	"reflect"
	"testing"

	"ctgdvfs/internal/apps/mpeg"
	"ctgdvfs/internal/faults"
	"ctgdvfs/internal/sim"
	"ctgdvfs/internal/telemetry"
	"ctgdvfs/internal/trace"
)

// TestNilFailureTimelineBitForBit pins the availability layer's passivity: a
// manager driven by a timeline that never fails anything produces the exact
// same RunStats AND the exact same telemetry stream as a manager with no
// timeline at all. (Failures implies Recovery, so the baseline enables
// Recovery explicitly.)
func TestNilFailureTimelineBitForBit(t *testing.T) {
	run := func(tl *faults.Timeline) (RunStats, []telemetry.Event) {
		g, p := telemetryWorkload(t, 12)
		rec := telemetry.NewMemoryRecorder()
		m, err := New(g, p, Options{
			Window: 10, Threshold: 0.1, GuardBand: 0.2,
			Recovery: true, Failures: tl, Recorder: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run(trace.Fluctuating(g, 3, 60, 0.45))
		if err != nil {
			t.Fatal(err)
		}
		return st, rec.Events()
	}
	_, p := telemetryWorkload(t, 12)
	never, err := faults.NewTimeline(faults.FailureSpec{Seed: 9}, p.NumPEs())
	if err != nil {
		t.Fatal(err)
	}
	plainStats, plainEvents := run(nil)
	tlStats, tlEvents := run(never)
	if plainStats != tlStats {
		t.Fatalf("never-failing timeline changed RunStats:\nnil      %+v\ntimeline %+v",
			plainStats, tlStats)
	}
	// pipeline_span values are wall-clock durations — nondeterministic even
	// between two identical runs. The passivity property covers everything
	// else about the stream (kinds, order, seq/cause ids, payloads).
	for _, evs := range [][]telemetry.Event{plainEvents, tlEvents} {
		for i := range evs {
			if evs[i].Kind == telemetry.KindSpan {
				evs[i].Value = 0
			}
		}
	}
	if !reflect.DeepEqual(plainEvents, tlEvents) {
		t.Fatalf("never-failing timeline changed the telemetry stream (%d vs %d events)",
			len(plainEvents), len(tlEvents))
	}
	if tlStats.Remaps != 0 || tlStats.DegradedInstances != 0 || tlStats.TopologyMisses != 0 {
		t.Fatalf("healthy run reports availability activity: %+v", tlStats)
	}
}

// TestPermanentPEFailureRemapsAndCompletes is the acceptance scenario: a
// permanent single-PE death on the MPEG decoder mid-run. The manager must
// detect the loss at the instance boundary, re-map onto the survivors, and
// complete every remaining instance with no deadlock.
func TestPermanentPEFailureRemapsAndCompletes(t *testing.T) {
	g0, p, err := mpeg.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := TightenDeadline(g0, p, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	vec := trace.MovieClips()[0].Generate(g, 80)

	const deadPE, failAt = 1, 20
	tl, err := faults.NewTimeline(faults.FailureSpec{
		Events: []faults.FailureEvent{{Kind: faults.EventPE, PE: deadPE, Instance: failAt}},
	}, p.NumPEs())
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewMemoryRecorder()
	m, err := New(g, p, Options{Window: 20, Threshold: 0.1, Failures: tl, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(vec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instances != len(vec) {
		t.Fatalf("completed %d/%d instances", st.Instances, len(vec))
	}
	if st.Remaps < 1 {
		t.Fatalf("Remaps = %d, want ≥ 1", st.Remaps)
	}
	if want := len(vec) - failAt; st.DegradedInstances != want {
		t.Fatalf("DegradedInstances = %d, want %d", st.DegradedInstances, want)
	}
	// The degraded schedule must avoid the dead PE entirely.
	if !m.Degraded() {
		t.Fatal("manager not degraded after permanent death")
	}
	for task, pe := range m.Schedule().PE {
		if pe == deadPE {
			t.Fatalf("task %d still mapped to dead PE %d", task, deadPE)
		}
	}
	if m.Fallback() != nil {
		for task, pe := range m.Fallback().PE {
			if pe == deadPE {
				t.Fatalf("fallback maps task %d to dead PE %d", task, deadPE)
			}
		}
	}
	// Telemetry narrates the loss: one permanent pe_down, one degraded remap.
	byKind := rec.CountByKind()
	if byKind[telemetry.KindPEDown] != 1 || byKind[telemetry.KindRemap] != 1 {
		t.Fatalf("pe_down=%d remap=%d, want 1/1",
			byKind[telemetry.KindPEDown], byKind[telemetry.KindRemap])
	}
	for _, ev := range rec.Events() {
		if ev.Kind == telemetry.KindPEDown {
			if ev.PE != deadPE || ev.Instance != failAt || ev.Reason != "permanent" {
				t.Fatalf("pe_down event %+v, want PE %d at %d (permanent)", ev, deadPE, failAt)
			}
		}
	}
}

// TestTransientOutageRestoresFromCache pins the recovery economics: when a
// transient outage heals, the healthy mask keys back to the pre-failure
// cache entries, so the restore reschedule is a cache hit, and the runtime
// reports one degraded and one restored remap.
func TestTransientOutageRestoresFromCache(t *testing.T) {
	g, p := telemetryWorkload(t, 7)
	const failAt, repair = 5, 4
	tl, err := faults.NewTimeline(faults.FailureSpec{
		Events: []faults.FailureEvent{
			{Kind: faults.EventPE, PE: 0, Instance: failAt, Duration: repair},
		},
	}, p.NumPEs())
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewMemoryRecorder()
	m, err := New(g, p, Options{Window: 10, Threshold: 0.9, Failures: tl, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	// Constant vectors: no drift, so every reschedule is topology-driven.
	vectors := trace.Fluctuating(g, 1, 20, 0)
	st, err := m.Run(vectors)
	if err != nil {
		t.Fatal(err)
	}
	if st.Remaps != 2 {
		t.Fatalf("Remaps = %d, want 2 (degrade + restore)", st.Remaps)
	}
	if st.DegradedInstances != repair {
		t.Fatalf("DegradedInstances = %d, want %d", st.DegradedInstances, repair)
	}
	if m.Degraded() {
		t.Fatal("manager still degraded after repair")
	}
	if cs := m.CacheStats(); cs.Hits < 1 {
		t.Fatalf("restore reschedule missed the cache: %+v", cs)
	}
	var reasons []string
	for _, ev := range rec.Events() {
		if ev.Kind == telemetry.KindRemap {
			reasons = append(reasons, ev.Reason)
		}
	}
	if !reflect.DeepEqual(reasons, []string{"degraded", "restored"}) {
		t.Fatalf("remap reasons = %v, want [degraded restored]", reasons)
	}
	if byKind := rec.CountByKind(); byKind[telemetry.KindPEUp] != 1 {
		t.Fatalf("pe_up events = %d, want 1", byKind[telemetry.KindPEUp])
	}
}

// TestRunStaticFailoverDeadlocks pins the static baseline's accounting: a
// fixed schedule that keeps dispatching onto a dead PE deadlocks on every
// instance that activates a task there, charged as a miss with one full
// deadline of lateness.
func TestRunStaticFailoverDeadlocks(t *testing.T) {
	g, p := telemetryWorkload(t, 5)
	s, err := BuildOnline(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vectors := trace.Fluctuating(g, 2, 12, 0.3)

	// Kill the PE hosting task 0 (the entry task, active in every scenario)
	// from instance 4 on: everything after that deadlocks.
	const failAt = 4
	tl, err := faults.NewTimeline(faults.FailureSpec{
		Events: []faults.FailureEvent{{Kind: faults.EventPE, PE: s.PE[0], Instance: failAt}},
	}, p.NumPEs())
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunStaticFailover(s, vectors, tl, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(vectors) - failAt; st.DegradedInstances != want || st.TopologyMisses != want {
		t.Fatalf("degraded/topo = %d/%d, want %d/%d",
			st.DegradedInstances, st.TopologyMisses, want, want)
	}
	if st.Misses < st.TopologyMisses {
		t.Fatalf("Misses %d < TopologyMisses %d", st.Misses, st.TopologyMisses)
	}
	if st.TotalLateness < float64(st.TopologyMisses)*g.Deadline() {
		t.Fatalf("TotalLateness %v below the one-deadline-per-deadlock floor %v",
			st.TotalLateness, float64(st.TopologyMisses)*g.Deadline())
	}
	// A nil timeline is exactly RunStaticCfg.
	plain, err := RunStaticCfg(s, vectors, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	viaNil, err := RunStaticFailover(s, vectors, nil, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plain != viaNil {
		t.Fatalf("nil-timeline RunStaticFailover diverged from RunStaticCfg")
	}
}
