// Package core implements the paper's contribution: the adaptive scheduling
// and DVFS framework. A sliding window per branch fork node tracks the most
// recent L branch decisions; when the windowed probability estimate drifts
// more than a threshold T away from the probabilities the current schedule
// was built for, the online algorithm (modified DLS + stretching heuristic,
// cheap enough to run at runtime) is re-invoked with the new estimates. The
// update rule acts like a low-pass filter on the branch probability
// ("filtered Prob" in the paper's Figure 4); window size and threshold trade
// re-scheduling overhead against adaptation fidelity.
package core

import (
	"fmt"
	"math"

	"ctgdvfs/internal/ctg"
)

// DefaultWindow is the sliding-window length the paper uses in its adaptive
// experiments (§IV uses 20; Figure 4's illustration uses 50).
const DefaultWindow = 20

// DefaultThreshold is the drift threshold; the paper evaluates 0.1 and 0.5.
const DefaultThreshold = 0.1

// Profiler maintains, for every branch fork node of a CTG, a fixed-length
// window of the most recent branch decisions and the resulting probability
// estimate.
//
// Windows are pre-seeded to match the initial (profiled) probabilities, so
// the estimate starts at the profile and drifts only as real decisions
// displace the synthetic ones.
type Profiler struct {
	g      *ctg.Graph
	window int

	buf    [][]int // per fork: ring buffer of outcomes
	pos    []int   // per fork: next write position
	counts [][]int // per fork: outcome counts within the window
}

// NewProfiler builds a profiler seeded with the graph's current branch
// probabilities. Window must be positive.
func NewProfiler(g *ctg.Graph, window int) (*Profiler, error) {
	if window <= 0 {
		return nil, fmt.Errorf("core: window must be positive, got %d", window)
	}
	p := &Profiler{
		g:      g,
		window: window,
		buf:    make([][]int, g.NumForks()),
		pos:    make([]int, g.NumForks()),
		counts: make([][]int, g.NumForks()),
	}
	for fi, fork := range g.Forks() {
		probs := g.BranchProbs(fork)
		p.buf[fi] = seedWindow(probs, window)
		p.counts[fi] = make([]int, len(probs))
		for _, k := range p.buf[fi] {
			p.counts[fi][k]++
		}
	}
	return p, nil
}

// seedWindow fills a window with outcomes whose frequencies approximate the
// given distribution, interleaved (largest-remainder style) so evictions
// stay representative.
func seedWindow(probs []float64, window int) []int {
	buf := make([]int, window)
	acc := make([]float64, len(probs))
	for i := 0; i < window; i++ {
		best, bestV := 0, -1.0
		for k := range probs {
			acc[k] += probs[k]
			if acc[k] > bestV {
				best, bestV = k, acc[k]
			}
		}
		acc[best]--
		buf[i] = best
	}
	return buf
}

// Window returns the configured window length.
func (p *Profiler) Window() int { return p.window }

// Observe shifts a new decision for the given fork (dense fork index) into
// its window, evicting the oldest.
func (p *Profiler) Observe(forkIdx, outcome int) error {
	if forkIdx < 0 || forkIdx >= len(p.buf) {
		return fmt.Errorf("core: fork index %d out of range", forkIdx)
	}
	if outcome < 0 || outcome >= len(p.counts[forkIdx]) {
		return fmt.Errorf("core: outcome %d out of range for fork index %d", outcome, forkIdx)
	}
	old := p.buf[forkIdx][p.pos[forkIdx]]
	p.counts[forkIdx][old]--
	p.buf[forkIdx][p.pos[forkIdx]] = outcome
	p.counts[forkIdx][outcome]++
	p.pos[forkIdx] = (p.pos[forkIdx] + 1) % p.window
	return nil
}

// Estimate returns the windowed probability estimate of the fork (dense
// fork index): the raw outcome frequencies within the window.
func (p *Profiler) Estimate(forkIdx int) []float64 {
	out := make([]float64, len(p.counts[forkIdx]))
	for k, c := range p.counts[forkIdx] {
		out[k] = float64(c) / float64(p.window)
	}
	return out
}

// NumOutcomes returns the number of outcomes tracked for the fork (dense
// fork index).
func (p *Profiler) NumOutcomes(forkIdx int) int { return len(p.counts[forkIdx]) }

// EstimateAt returns one outcome's windowed probability estimate without
// materialising the whole vector — the allocation-free counterpart of
// Estimate for hot-path drift checks.
func (p *Profiler) EstimateAt(forkIdx, outcome int) float64 {
	return float64(p.counts[forkIdx][outcome]) / float64(p.window)
}

// EstimateInto appends the windowed estimate of the fork to out and returns
// the extended slice; pass out[:0] of a retained buffer to avoid
// allocations.
func (p *Profiler) EstimateInto(forkIdx int, out []float64) []float64 {
	for _, c := range p.counts[forkIdx] {
		out = append(out, float64(c)/float64(p.window))
	}
	return out
}

// SmoothedEstimate returns the Laplace-smoothed (add-one) windowed
// estimate: (count+1)/(window+outcomes). A raw window easily reports an
// outcome probability of exactly 0 or 1, and a scheduler fed certainty
// allocates *no* slack to the "impossible" branch — which then runs at full
// speed whenever it does occur. Smoothing keeps every outcome minimally
// provisioned.
func (p *Profiler) SmoothedEstimate(forkIdx int) []float64 {
	return p.SmoothedEstimateInto(forkIdx, make([]float64, 0, len(p.counts[forkIdx])))
}

// SmoothedEstimateInto appends the Laplace-smoothed estimate of the fork to
// out and returns the extended slice; pass out[:0] of a retained buffer to
// avoid allocations.
func (p *Profiler) SmoothedEstimateInto(forkIdx int, out []float64) []float64 {
	k := len(p.counts[forkIdx])
	for _, c := range p.counts[forkIdx] {
		out = append(out, (float64(c)+1)/(float64(p.window)+float64(k)))
	}
	return out
}

// MaxDrift returns the largest absolute difference between the windowed
// estimates and the graph's current (schedule-time) branch probabilities,
// over all forks and outcomes.
func (p *Profiler) MaxDrift() float64 {
	maxD := 0.0
	for fi, fork := range p.g.Forks() {
		for k := range p.counts[fi] {
			d := p.EstimateAt(fi, k) - p.g.BranchProb(fork, k)
			if d < 0 {
				d = -d
			}
			if d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// SeriesPoint is one instant of the Figure 4 illustration: the raw branch
// selection, the sliding-window probability, and the threshold-filtered
// probability the scheduler would use.
type SeriesPoint struct {
	Selection  int
	WindowProb float64
	Filtered   float64
	Updated    bool
}

// FilteredSeries reproduces the mechanics of the paper's Figure 4 for one
// two-outcome branch: a window of the given length slides over the 0/1
// selection stream; whenever the windowed probability of outcome 1 departs
// from the last adopted value by more than threshold, the adopted
// ("filtered") value snaps to the window estimate.
func FilteredSeries(selections []int, initProb float64, window int, threshold float64) []SeriesPoint {
	buf := seedWindow([]float64{1 - initProb, initProb}, window)
	count1 := 0
	for _, v := range buf {
		count1 += v
	}
	pos := 0
	filtered := initProb
	out := make([]SeriesPoint, len(selections))
	for i, sel := range selections {
		count1 += sel - buf[pos]
		buf[pos] = sel
		pos = (pos + 1) % window
		wp := float64(count1) / float64(window)
		updated := false
		// "Crosses the threshold" is inclusive: with a balanced 0.5
		// estimate, a drift strictly above 0.5 is unreachable, yet the
		// paper reports T = 0.5 runs that do adapt.
		if d := math.Abs(wp - filtered); d >= threshold-1e-12 {
			filtered = wp
			updated = true
		}
		out[i] = SeriesPoint{Selection: sel, WindowProb: wp, Filtered: filtered, Updated: updated}
	}
	return out
}
