package core

import (
	"fmt"
	"sort"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/power"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/series"
	"ctgdvfs/internal/stretch"
	"ctgdvfs/internal/telemetry"
)

// Tenant describes one application consolidated onto the shared fabric.
type Tenant struct {
	// Name identifies the tenant in telemetry and results; must be unique
	// and non-empty within a fleet.
	Name string
	// Criticality orders the degradation ladder: when the power budget
	// binds, lower-criticality tenants lose PEs and are shed first. Higher
	// is more critical; ties break toward the earlier tenant being more
	// critical.
	Criticality int
	// G is the tenant's conditional task graph.
	G *ctg.Graph
	// P carries the tenant's WCET/energy tables over the *shared* fabric:
	// every tenant's platform must be unrestricted and sized to the same
	// PE count. The fleet partitions that fabric and hands each tenant a
	// partition-restricted view.
	P *platform.Platform
	// Opts configures the tenant's adaptive manager. Failures is forbidden
	// (the fleet owns the availability state); Recorder/Metrics here feed
	// the tenant's own manager, typically shared with FleetOptions.
	Opts Options
}

// FleetOptions configures a consolidation fleet.
type FleetOptions struct {
	// Budget, when non-nil, turns on chip-power measurement. With
	// Ungoverned false the fleet runs the full budget governor
	// (degradation ladder, revocation, shedding); with Ungoverned true it
	// only meters what the cap would have seen — the campaign's baseline
	// arm. Nil disables power accounting entirely (pure hosting).
	Budget     *power.Budget
	Ungoverned bool
	// MinPEs floors how many PEs revocation may leave a tenant (default 1).
	MinPEs int
	// DeadlineFactor, when positive, resets every tenant's deadline to
	// factor × the makespan of a full-speed DLS schedule on its partition —
	// the consolidation analogue of TightenDeadline, guaranteeing each
	// tenant starts feasible on the hardware it was actually granted.
	DeadlineFactor float64
	// Recorder receives the fleet's budget events (budget_exceeded,
	// pe_revoked, tenant_degraded, tenant_restored); nil disables them.
	Recorder telemetry.Recorder
	// Metrics is the registry for the fleet's gauges and counters: the
	// fleet-state gauges ("adaptive.fleet_rung", "adaptive.fleet_tenants_live",
	// per-tenant "adaptive.tenant_guard_level.<name>") and — with a Budget —
	// the power metrics (names prefixed "adaptive.power_"). Nil gives the
	// fleet a private registry. Share one registry across the fleet and its
	// tenants for the consolidated view.
	Metrics *telemetry.Registry
	// Series, when non-nil, is ticked once per fleet round after the power
	// observation, sampling the fleet's registry (rung, power, per-tenant
	// miss rate / guard level / round energy) on the deterministic round
	// axis. A round whose measurement window breached the cap ticks with the
	// budget_exceeded seq as cause, so alert firings chain to the breach.
	// Point the store at the same registry as Metrics. Nil disables sampling.
	Series *series.Store
}

// rungKind enumerates what one degradation-ladder rung does.
type rungKind int

const (
	// rungGuard scales every tenant's guard band (fleet-wide): released
	// slack margin buys lower speeds, hence lower power.
	rungGuard rungKind = iota
	// rungRevoke power-gates one PE of one tenant.
	rungRevoke
	// rungShed stops scheduling one tenant entirely; its remaining PEs are
	// power-gated until restore.
	rungShed
)

// rung is one step of the degradation ladder. Ladder level L means rungs
// [0, L) are in force; escalating to L applies rung L−1, restoring from L
// releases it.
type rung struct {
	kind   rungKind
	tenant int     // tenants index (rungRevoke, rungShed)
	pe     int     // revoked PE (rungRevoke)
	scale  float64 // guard-band scale (rungGuard)
}

// fleetTenant is a Tenant plus its runtime state.
type fleetTenant struct {
	Tenant
	mgr *Manager
	agg runAgg

	// partition is the granted PE set, best-first (ascending total WCET), so
	// revocation takes the least useful PE first: partition[:held] is what
	// the tenant currently runs on.
	partition []int
	partMask  platform.Mask
	revoked   int
	shed      bool
	shedRound int // rounds skipped while shed

	baseGuard  float64
	guardScale float64

	// guardGauge mirrors the tenant manager's circuit-breaker guard level
	// ("adaptive.tenant_guard_level.<name>"), updated every fleet round.
	// missGauge/energyGauge publish the tenant's running miss rate
	// ("adaptive.tenant_miss_rate.<name>") and last round energy
	// ("adaptive.tenant_round_energy.<name>") — the per-tenant rows of the
	// watch view. misses/insts back the rate (registry handles aggregate and
	// cannot be read back).
	guardGauge  *telemetry.Gauge
	missGauge   *telemetry.Gauge
	energyGauge *telemetry.Gauge
	misses      int
	insts       int
}

func (t *fleetTenant) held() int { return len(t.partition) - t.revoked }

// heldMask composes the tenant's partition with its current revocations —
// the mask its manager must run under. Mask.Intersect is the composition
// law here: ApplyAvailability replaces the manager's availability state
// wholesale, so the layers have to be merged before the call.
func (t *fleetTenant) heldMask(numPEs int) platform.Mask {
	rev := platform.FullMask(numPEs)
	for _, pe := range t.partition[t.held():] {
		rev.PEs[pe] = false
	}
	return t.partMask.Intersect(rev, numPEs)
}

// fleetMetrics holds the fleet's resolved registry handles. The power
// handles ("adaptive.power_*") resolve only with a Budget; the fleet-state
// gauges (rung, tenantsLive) resolve always.
type fleetMetrics struct {
	window, cap, heat, level     *telemetry.Gauge
	exceeded, revocations, sheds *telemetry.Counter
	escalations, restores        *telemetry.Counter

	// rung is the degradation-ladder level currently in force
	// ("adaptive.fleet_rung"); tenantsLive counts tenants not shed
	// ("adaptive.fleet_tenants_live"); roundPower is the last round's chip
	// power ("adaptive.power_round") — instantaneous, where window is the
	// budget's sliding mean.
	rung, tenantsLive, roundPower *telemetry.Gauge
}

// Fleet hosts N per-tenant adaptive managers on one shared fabric,
// partitioning the PEs by demand-weighted shares and — when a power budget
// is configured — governing chip power with a criticality-ordered graceful
// degradation ladder: first every tenant's guard band is released (lower
// speeds), then the least-critical tenants lose PEs one at a time, then they
// are shed entirely; restoration walks the same ladder in reverse. The most
// critical tenant never loses hardware and is never shed.
type Fleet struct {
	opts    FleetOptions
	numPEs  int
	tenants []*fleetTenant
	// degradeOrder lists tenant indices least-critical first; the last entry
	// (most critical) contributes no revoke/shed rungs.
	degradeOrder []int

	rungs       []rung
	gov         *power.Governor
	meter       *power.Meter // ungoverned measurement (nil when governed)
	capValue    float64
	window      int
	roundDur    float64
	primed      int
	rounds      int
	revocations int
	sheds       int
	prevOver    int

	rec telemetry.Recorder
	reg *telemetry.Registry
	fm  fleetMetrics

	// Provenance state: one sequencer shared with every tenant manager (so
	// fleet decisions and tenant reactions interleave on one id space), the
	// seq of the latest budget_exceeded event (escalations chain to it), and
	// per-rung escalation seqs (restores chain to the escalation they
	// reverse).
	seq           *telemetry.Sequencer
	lastBreachSeq uint64
	rungSeq       []uint64
}

// NewFleet partitions the shared fabric across the tenants and builds their
// managers. With a governed budget it also predicts the chip power of every
// ladder level (re-running DLS + stretching per candidate configuration) and
// primes the governor, so a cap the undegraded fleet cannot satisfy is
// respected from round zero.
func NewFleet(tenants []Tenant, opts FleetOptions) (*Fleet, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("core: fleet needs at least one tenant")
	}
	if opts.MinPEs == 0 {
		opts.MinPEs = 1
	}
	if opts.MinPEs < 1 {
		return nil, fmt.Errorf("core: fleet MinPEs must be ≥ 1, got %d", opts.MinPEs)
	}
	numPEs := tenants[0].P.NumPEs()
	seen := make(map[string]bool, len(tenants))
	for i := range tenants {
		t := &tenants[i]
		if t.Name == "" || seen[t.Name] {
			return nil, fmt.Errorf("core: tenant %d needs a unique non-empty name", i)
		}
		seen[t.Name] = true
		if t.P.NumPEs() != numPEs {
			return nil, fmt.Errorf("core: tenant %q platform has %d PEs, fleet fabric has %d",
				t.Name, t.P.NumPEs(), numPEs)
		}
		if t.P.Restricted() {
			return nil, fmt.Errorf("core: tenant %q platform is pre-restricted; the fleet owns the partition", t.Name)
		}
		if t.Opts.Failures != nil {
			return nil, fmt.Errorf("core: tenant %q sets Failures; the fleet owns the availability state", t.Name)
		}
	}
	if len(tenants) > numPEs {
		return nil, fmt.Errorf("core: %d tenants cannot share %d PEs", len(tenants), numPEs)
	}

	f := &Fleet{opts: opts, numPEs: numPEs, rec: opts.Recorder}
	f.seq = telemetry.NewSequencer()
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	f.reg = reg
	f.fm.rung = reg.Gauge("adaptive.fleet_rung")
	f.fm.tenantsLive = reg.Gauge("adaptive.fleet_tenants_live")
	f.fm.roundPower = reg.Gauge("adaptive.power_round")
	for i := range tenants {
		f.tenants = append(f.tenants, &fleetTenant{
			Tenant:     tenants[i],
			baseGuard:  tenants[i].Opts.GuardBand,
			guardScale: 1,
		})
	}
	f.partition()
	f.degradeOrder = make([]int, len(f.tenants))
	for i := range f.degradeOrder {
		f.degradeOrder[i] = i
	}
	// Least critical first; ties degrade the later tenant first (the earlier
	// tenant is the more critical of a tied pair).
	sort.SliceStable(f.degradeOrder, func(a, b int) bool {
		ta, tb := f.tenants[f.degradeOrder[a]], f.tenants[f.degradeOrder[b]]
		if ta.Criticality != tb.Criticality {
			return ta.Criticality < tb.Criticality
		}
		return f.degradeOrder[a] > f.degradeOrder[b]
	})

	for _, t := range f.tenants {
		mask := platform.FullMask(numPEs)
		for pe := range mask.PEs {
			mask.PEs[pe] = false
		}
		for _, pe := range t.partition {
			mask.PEs[pe] = true
		}
		t.partMask = mask
		rp, err := t.P.Restrict(mask)
		if err != nil {
			return nil, fmt.Errorf("core: tenant %q partition: %w", t.Name, err)
		}
		if opts.DeadlineFactor > 0 {
			g, err := TightenDeadline(t.G, rp, opts.DeadlineFactor)
			if err != nil {
				return nil, fmt.Errorf("core: tenant %q deadline: %w", t.Name, err)
			}
			t.G = g
		}
		// Tenants stamp their events from the fleet's sequencer: decision
		// provenance crosses the fleet/tenant boundary on one id space.
		t.Opts.Sequencer = f.seq
		t.guardGauge = reg.Gauge("adaptive.tenant_guard_level." + t.Name)
		t.missGauge = reg.Gauge("adaptive.tenant_miss_rate." + t.Name)
		t.energyGauge = reg.Gauge("adaptive.tenant_round_energy." + t.Name)
		t.mgr, err = New(t.G, rp, t.Opts)
		if err != nil {
			return nil, fmt.Errorf("core: tenant %q: %w", t.Name, err)
		}
	}
	for _, t := range f.tenants {
		if d := t.G.Deadline(); d > f.roundDur {
			f.roundDur = d
		}
	}
	f.fm.tenantsLive.Set(float64(len(f.tenants)))

	if opts.Budget != nil {
		b := *opts.Budget
		f.capValue = b.Cap
		f.window = b.Window
		if f.window == 0 {
			f.window = power.DefaultWindow
		}
		f.fm.window = reg.Gauge("adaptive.power_window")
		f.fm.cap = reg.Gauge("adaptive.power_cap")
		f.fm.heat = reg.Gauge("adaptive.power_heat")
		f.fm.level = reg.Gauge("adaptive.power_level")
		f.fm.exceeded = reg.Counter("adaptive.power_budget_exceeded")
		f.fm.revocations = reg.Counter("adaptive.power_revocations")
		f.fm.sheds = reg.Counter("adaptive.power_sheds")
		f.fm.escalations = reg.Counter("adaptive.power_escalations")
		f.fm.restores = reg.Counter("adaptive.power_restores")
		f.fm.cap.Set(b.Cap)
		if opts.Ungoverned {
			m, err := power.NewMeter(b.Cap, f.window)
			if err != nil {
				return nil, err
			}
			f.meter = m
		} else {
			predicted, err := f.buildLadder()
			if err != nil {
				return nil, err
			}
			f.rungSeq = make([]uint64, len(f.rungs))
			gov, err := power.NewGovernor(b, predicted)
			if err != nil {
				return nil, err
			}
			f.gov = gov
			f.primed = gov.Prime()
			for k := 0; k < f.primed; k++ {
				if err := f.applyRung(k, 0, true); err != nil {
					return nil, err
				}
			}
			f.fm.level.Set(float64(gov.Level()))
		}
	}
	return f, nil
}

// partition grants the fabric's PEs to the tenants: demand-weighted shares
// (one PE guaranteed each, remainder to the highest per-PE demand), then
// concrete picks in descending criticality, each tenant taking the available
// PEs with the lowest total WCET over its task set.
func (f *Fleet) partition() {
	n := len(f.tenants)
	demand := make([]float64, n)
	for i, t := range f.tenants {
		work := 0.0
		for task := 0; task < t.G.NumTasks(); task++ {
			work += t.P.AvgWCET(task)
		}
		demand[i] = work
		// Without a deadline reset the deadline normalizes demand into a
		// utilization; with one, the deadline is derived from the grant, so
		// raw work is the meaningful weight.
		if f.opts.DeadlineFactor <= 0 && t.G.Deadline() > 0 {
			demand[i] = work / t.G.Deadline()
		}
	}
	shares := make([]int, n)
	for i := range shares {
		shares[i] = 1
	}
	for granted := n; granted < f.numPEs; granted++ {
		best := 0
		for i := 1; i < n; i++ {
			if demand[i]/float64(shares[i]) > demand[best]/float64(shares[best]) {
				best = i
			}
		}
		shares[best]++
	}

	// Concrete picks: most critical tenant chooses first.
	pickOrder := make([]int, n)
	for i := range pickOrder {
		pickOrder[i] = i
	}
	sort.SliceStable(pickOrder, func(a, b int) bool {
		return f.tenants[pickOrder[a]].Criticality > f.tenants[pickOrder[b]].Criticality
	})
	taken := make([]bool, f.numPEs)
	for _, ti := range pickOrder {
		t := f.tenants[ti]
		type cand struct {
			pe   int
			cost float64
		}
		var cands []cand
		for pe := 0; pe < f.numPEs; pe++ {
			if taken[pe] {
				continue
			}
			cost := 0.0
			for task := 0; task < t.G.NumTasks(); task++ {
				cost += t.P.WCET(task, pe)
			}
			cands = append(cands, cand{pe, cost})
		}
		sort.SliceStable(cands, func(a, b int) bool { return cands[a].cost < cands[b].cost })
		for _, c := range cands[:shares[ti]] {
			t.partition = append(t.partition, c.pe)
			taken[c.pe] = true
		}
	}
}

// predictTenant estimates one tenant's expected per-instance energy in a
// candidate ladder configuration (held-PE count, guard scale) by re-running
// the planning pipeline: DLS on the held set, then guarded stretching. An
// error means the configuration is infeasible (e.g. the workload cannot
// route on that few PEs) — the ladder skips such rungs.
func (f *Fleet) predictTenant(t *fleetTenant, heldPEs []int, guardScale float64) (float64, error) {
	mask := platform.FullMask(f.numPEs)
	for pe := range mask.PEs {
		mask.PEs[pe] = false
	}
	for _, pe := range heldPEs {
		mask.PEs[pe] = true
	}
	rp, err := t.P.Restrict(mask)
	if err != nil {
		return 0, err
	}
	a, err := ctg.Analyze(t.G)
	if err != nil {
		return 0, err
	}
	so := t.Opts.Sched
	if so == (sched.Options{}) {
		so = sched.Modified()
	}
	s, err := sched.DLS(a, rp, so)
	if err != nil {
		return 0, err
	}
	r, err := stretch.HeuristicGuarded(s, t.Opts.DVFS, t.Opts.MaxPaths, t.baseGuard*guardScale)
	if err != nil {
		return 0, err
	}
	return r.ExpectedEnergy, nil
}

// buildLadder constructs the degradation rungs and the predicted chip power
// of every ladder level: guard-release rungs first (fleet-wide, cheapest in
// harm), then — per tenant, least critical first, the most critical tenant
// exempt — PE revocations down to MinPEs followed by a shed rung. Each
// level's prediction walks the configuration incrementally, recomputing only
// the tenants the rung touches.
func (f *Fleet) buildLadder() ([]float64, error) {
	n := len(f.tenants)
	ee := make([]float64, n)  // expected energy per tenant at the sim state
	held := make([]int, n)    // held-PE count per tenant
	active := make([]bool, n) // not shed
	anyGuard := false
	for i, t := range f.tenants {
		e, err := f.predictTenant(t, t.partition, 1)
		if err != nil {
			return nil, fmt.Errorf("core: tenant %q baseline prediction: %w", t.Name, err)
		}
		ee[i] = e
		held[i] = len(t.partition)
		active[i] = true
		if t.baseGuard > 0 {
			anyGuard = true
		}
	}
	chip := func() float64 {
		dyn, pes := 0.0, 0
		for i := range f.tenants {
			if active[i] {
				dyn += ee[i]
				pes += held[i]
			}
		}
		return dyn/f.roundDur + f.opts.Budget.Model.Idle(pes, pes*(pes-1))
	}
	predicted := []float64{chip()}

	if anyGuard {
		for _, scale := range []float64{0.5, 0} {
			ok := true
			for i, t := range f.tenants {
				if t.baseGuard == 0 {
					continue
				}
				e, err := f.predictTenant(t, t.partition[:held[i]], scale)
				if err != nil {
					ok = false
					break
				}
				ee[i] = e
			}
			if !ok {
				break
			}
			f.rungs = append(f.rungs, rung{kind: rungGuard, scale: scale})
			predicted = append(predicted, chip())
		}
	}
	for _, ti := range f.degradeOrder[:n-1] {
		t := f.tenants[ti]
		for held[ti] > f.opts.MinPEs {
			e, err := f.predictTenant(t, t.partition[:held[ti]-1], f.lastGuardScale())
			if err != nil {
				break // cannot run on fewer PEs; stop revoking, shed instead
			}
			held[ti]--
			ee[ti] = e
			f.rungs = append(f.rungs, rung{kind: rungRevoke, tenant: ti, pe: t.partition[held[ti]]})
			predicted = append(predicted, chip())
		}
		active[ti] = false
		f.rungs = append(f.rungs, rung{kind: rungShed, tenant: ti})
		predicted = append(predicted, chip())
	}
	return predicted, nil
}

// lastGuardScale returns the guard scale of the deepest guard rung built so
// far (revocation predictions assume the guard rungs below them are in
// force, which is exactly the runtime's ladder ordering).
func (f *Fleet) lastGuardScale() float64 {
	scale := 1.0
	for _, r := range f.rungs {
		if r.kind == rungGuard {
			scale = r.scale
		}
	}
	return scale
}

// applyRung applies (escalate) or releases (restore) ladder rung k at the
// given fleet round, driving the tenant managers and emitting the budget
// telemetry. The decision event is emitted before the managers are driven so
// every tenant reaction (mask diff, remap, reschedule) chains back to the
// decision's seq: escalations chain to the window breach that forced them
// (0 while priming — the cap itself is the cause), restores to the
// escalation they reverse.
func (f *Fleet) applyRung(k, round int, escalate bool) error {
	ru := f.rungs[k]
	level := k // the level a restore lands on
	cause := f.lastBreachSeq
	if escalate {
		level = k + 1
	} else {
		cause = f.rungSeq[k]
	}
	switch ru.kind {
	case rungGuard:
		scale := ru.scale
		if !escalate {
			scale = 1
			if k > 0 && f.rungs[k-1].kind == rungGuard {
				scale = f.rungs[k-1].scale
			}
		}
		seq := f.emit(telemetry.Event{
			Kind: f.degradeKind(escalate), Instance: round,
			Reason: "guard", Level: level, Value: scale, Threshold: f.capValue,
			Cause: cause,
		})
		if escalate {
			f.rungSeq[k] = seq
		}
		for _, t := range f.tenants {
			if t.shed {
				continue // cannot happen: guard rungs sit below every shed rung
			}
			t.mgr.extCause = seq
			err := t.mgr.SetGuardBand(t.baseGuard * scale)
			t.mgr.extCause = 0
			if err != nil {
				return err
			}
			t.guardScale = scale
		}
	case rungRevoke:
		t := f.tenants[ru.tenant]
		var seq uint64
		if escalate {
			t.revoked++
			f.revocations++
			f.fm.revocations.Inc()
			seq = f.emit(telemetry.Event{
				Kind: telemetry.KindPERevoked, Instance: round,
				PE: ru.pe, Name: t.Name, Level: level, Alive: t.held(),
				Threshold: f.capValue, Cause: cause,
			})
			f.rungSeq[k] = seq
		} else {
			t.revoked--
			seq = f.emit(telemetry.Event{
				Kind: telemetry.KindTenantRestored, Instance: round,
				Name: t.Name, Reason: "revoke", Level: level, PE: ru.pe, Alive: t.held(),
				Threshold: f.capValue, Cause: cause,
			})
		}
		t.mgr.extCause = seq
		err := t.mgr.ApplyAvailability(t.heldMask(f.numPEs))
		t.mgr.extCause = 0
		if err != nil {
			return err
		}
	case rungShed:
		t := f.tenants[ru.tenant]
		t.shed = escalate
		if escalate {
			f.sheds++
			f.fm.sheds.Inc()
		}
		seq := f.emit(telemetry.Event{
			Kind: f.degradeKind(escalate), Instance: round,
			Name: t.Name, Reason: "shed", Level: level, Threshold: f.capValue,
			Cause: cause,
		})
		if escalate {
			f.rungSeq[k] = seq
		}
		live := 0
		for _, ft := range f.tenants {
			if !ft.shed {
				live++
			}
		}
		f.fm.tenantsLive.Set(float64(live))
	}
	f.fm.level.Set(float64(level))
	f.fm.rung.Set(float64(level))
	return nil
}

func (f *Fleet) degradeKind(escalate bool) telemetry.Kind {
	if escalate {
		return telemetry.KindTenantDegraded
	}
	return telemetry.KindTenantRestored
}

// emit stamps a fleet decision event from the shared sequencer and records
// it, returning the seq (0 with no recorder) so effects can chain to it.
func (f *Fleet) emit(ev telemetry.Event) uint64 {
	if f.rec == nil {
		return 0
	}
	ev.Seq = f.seq.Next()
	f.rec.Record(ev)
	return ev.Seq
}

// idlePower returns the static chip power of the current configuration:
// every held PE of every active tenant is powered (revoked PEs and shed
// tenants' PEs are power-gated), and all links among powered PEs are up.
func (f *Fleet) idlePower() float64 {
	if f.opts.Budget == nil {
		return 0
	}
	pes := 0
	for _, t := range f.tenants {
		if !t.shed {
			pes += t.held()
		}
	}
	return f.opts.Budget.Model.Idle(pes, pes*(pes-1))
}

// observePower accounts one fleet round's chip power and applies whatever
// ladder move the governor decides.
func (f *Fleet) observePower(p float64, round int) error {
	switch {
	case f.gov != nil:
		d := f.gov.Observe(p, f.roundDur)
		f.fm.window.Set(f.gov.LastMean())
		f.fm.heat.Set(f.gov.Heat())
		if over := f.gov.Meter().WindowsOverCap(); over > f.prevOver {
			f.prevOver = over
			f.fm.exceeded.Inc()
			// Ladder escalations chain to the latest window breach.
			f.lastBreachSeq = f.emit(telemetry.Event{
				Kind: telemetry.KindBudgetExceeded, Instance: round,
				Value: f.gov.LastMean(), Threshold: f.capValue, Level: f.gov.Level(),
			})
		}
		switch d {
		case power.Escalate:
			f.fm.escalations.Inc()
			return f.applyRung(f.gov.Level()-1, round, true)
		case power.Restore:
			f.fm.restores.Inc()
			return f.applyRung(f.gov.Level(), round, false)
		}
	case f.meter != nil:
		mean, _ := f.meter.Observe(p)
		f.fm.window.Set(mean)
		if over := f.meter.WindowsOverCap(); over > f.prevOver {
			f.prevOver = over
			f.fm.exceeded.Inc()
			f.emit(telemetry.Event{
				Kind: telemetry.KindBudgetExceeded, Instance: round,
				Value: mean, Threshold: f.capValue,
			})
		}
	}
	return nil
}

// Step executes one fleet round: one CTG instance per active tenant
// (vectors[i] is tenant i's decision vector; a shed tenant skips the round),
// then one chip-power observation driving the governor.
func (f *Fleet) Step(vectors [][]int) error {
	if len(vectors) != len(f.tenants) {
		return fmt.Errorf("core: fleet step needs %d decision vectors, got %d", len(f.tenants), len(vectors))
	}
	round := f.rounds
	energy := 0.0
	for i, t := range f.tenants {
		if t.shed {
			t.shedRound++
			continue
		}
		res, err := t.mgr.Step(vectors[i])
		if err != nil {
			return fmt.Errorf("core: tenant %q round %d: %w", t.Name, round, err)
		}
		t.agg.add(res.Instance)
		t.guardGauge.Set(float64(res.GuardLevel))
		t.insts++
		if !res.Instance.DeadlineMet {
			t.misses++
		}
		t.missGauge.Set(float64(t.misses) / float64(t.insts))
		t.energyGauge.Set(res.Instance.Energy)
		energy += res.Instance.Energy
	}
	f.rounds++
	p := energy/f.roundDur + f.idlePower()
	f.fm.roundPower.Set(p)
	prevBreach := f.lastBreachSeq
	err := f.observePower(p, round)
	// Sample the time-series store at this round boundary; a fresh window
	// breach becomes the tick's cause so rule firings chain to it.
	if f.opts.Series != nil {
		var cause uint64
		if f.lastBreachSeq != prevBreach {
			cause = f.lastBreachSeq
		}
		f.opts.Series.Tick(round, f.rec, f.seq, cause)
	}
	return err
}

// TenantResult reports one tenant's end-of-run aggregate.
type TenantResult struct {
	Name        string
	Criticality int
	// PEs is the tenant's held-PE count at the end of the run (granted
	// partition minus outstanding revocations).
	PEs int
	// GrantedPEs is the partition size the tenant was originally granted.
	GrantedPEs int
	// ShedRounds counts fleet rounds the tenant skipped while shed.
	ShedRounds int
	Stats      RunStats
}

// PowerStats reports the fleet's power accounting (nil without a Budget).
type PowerStats struct {
	Cap    float64
	Window int
	// MaxRoundPower / MaxWindowPower are the highest single-round power and
	// full-window mean observed; WindowsOverCap counts full windows whose
	// mean exceeded the cap.
	MaxRoundPower, MaxWindowPower float64
	WindowsOverCap                int
	// Governor state (zero for an ungoverned meter).
	Levels, PrimedLevel, FinalLevel, MaxLevel int
	Escalations, Restores                     int
	Revocations, Sheds                        int
	Heat                                      float64
}

// FleetResult aggregates a consolidation run.
type FleetResult struct {
	Rounds        int
	RoundDuration float64
	Tenants       []TenantResult
	Power         *PowerStats
}

// Run executes rounds until the shortest tenant vector sequence is
// exhausted (vectors[i][r] is tenant i's decision vector for round r) and
// aggregates the per-tenant statistics.
func (f *Fleet) Run(vectors [][][]int) (*FleetResult, error) {
	if len(vectors) != len(f.tenants) {
		return nil, fmt.Errorf("core: fleet run needs %d vector sequences, got %d", len(f.tenants), len(vectors))
	}
	rounds := -1
	for _, vs := range vectors {
		if rounds < 0 || len(vs) < rounds {
			rounds = len(vs)
		}
	}
	step := make([][]int, len(f.tenants))
	for r := 0; r < rounds; r++ {
		for i := range vectors {
			step[i] = vectors[i][r]
		}
		if err := f.Step(step); err != nil {
			return nil, err
		}
	}
	return f.Result(), nil
}

// Result assembles the run's aggregate (also usable mid-run).
func (f *Fleet) Result() *FleetResult {
	res := &FleetResult{Rounds: f.rounds, RoundDuration: f.roundDur}
	for _, t := range f.tenants {
		st := t.agg.finish()
		st.Calls = t.mgr.Calls()
		cs := t.mgr.CacheStats()
		st.CacheHits, st.CacheMisses = cs.Hits, cs.Misses
		st.WarmStarts, st.WarmFallbacks = t.mgr.warm.starts, t.mgr.warm.fallbacks
		st.FallbackActivations = t.mgr.activations
		st.MissesAvoided = t.mgr.missesAvoided
		st.MaxGuardLevel = t.mgr.maxLevelSeen
		st.DegradedInstances = t.mgr.degradedInsts
		st.Remaps = t.mgr.remaps
		st.TopologyMisses = t.mgr.topoMisses
		res.Tenants = append(res.Tenants, TenantResult{
			Name:        t.Name,
			Criticality: t.Criticality,
			PEs:         t.held(),
			GrantedPEs:  len(t.partition),
			ShedRounds:  t.shedRound,
			Stats:       st,
		})
	}
	switch {
	case f.gov != nil:
		m := f.gov.Meter()
		res.Power = &PowerStats{
			Cap: f.capValue, Window: f.window,
			MaxRoundPower: m.MaxRoundPower(), MaxWindowPower: m.MaxWindowPower(),
			WindowsOverCap: m.WindowsOverCap(),
			Levels:         f.gov.Levels(), PrimedLevel: f.primed,
			FinalLevel: f.gov.Level(), MaxLevel: f.gov.MaxLevel(),
			Escalations: f.gov.Escalations(), Restores: f.gov.Restores(),
			Revocations: f.revocations, Sheds: f.sheds,
			Heat: f.gov.Heat(),
		}
	case f.meter != nil:
		res.Power = &PowerStats{
			Cap: f.capValue, Window: f.window,
			MaxRoundPower: f.meter.MaxRoundPower(), MaxWindowPower: f.meter.MaxWindowPower(),
			WindowsOverCap: f.meter.WindowsOverCap(),
		}
	}
	return res
}

// Governor exposes the fleet's budget governor (nil when ungoverned or
// unbudgeted).
func (f *Fleet) Governor() *power.Governor { return f.gov }

// Partition returns a copy of tenant i's granted PE set, best-first.
func (f *Fleet) Partition(i int) []int {
	return append([]int(nil), f.tenants[i].partition...)
}

// Manager exposes tenant i's adaptive manager (tests and diagnostics).
func (f *Fleet) Manager(i int) *Manager { return f.tenants[i].mgr }

// LadderLen returns the degradation ladder's rung count (governed fleets).
func (f *Fleet) LadderLen() int { return len(f.rungs) }

// Metrics returns the registry the fleet publishes to — the one passed via
// FleetOptions.Metrics, or the private default. Never nil. The fleet-state
// gauges ("adaptive.fleet_rung", "adaptive.fleet_tenants_live", per-tenant
// "adaptive.tenant_guard_level.<name>") are always live; the power handles
// ("adaptive.power_*") additionally require a Budget.
func (f *Fleet) Metrics() *telemetry.Registry { return f.reg }
