package core

import (
	"math"
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/faults"
	"ctgdvfs/internal/sim"
	"ctgdvfs/internal/tgff"
	"ctgdvfs/internal/trace"
)

// recoveryWorkload builds a tightened-deadline workload plus a fault plan
// aggressive enough that the plain stretched runtime misses.
func recoveryWorkload(t *testing.T, seed int64, factor float64) (*ctg.Graph, *tgff.Config) {
	t.Helper()
	g, cfg := testWorkload(t, seed)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := TightenDeadline(g, p, factor)
	if err != nil {
		t.Fatal(err)
	}
	return g2, cfg
}

func recoveryPlan(t *testing.T, g *ctg.Graph, cfg *tgff.Config, spec faults.Spec) *faults.Plan {
	t.Helper()
	plan, err := faults.New(spec, g.NumTasks(), cfg.PEs)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestStepRejectsMalformedDecisions(t *testing.T) {
	g, cfg := recoveryWorkload(t, 61, 1.6)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nf := g.NumForks()
	bad := [][]int{
		make([]int, nf+1), // too long
		make([]int, nf-1), // too short
		nil,               // empty
		func() []int { // out-of-range outcome
			v := make([]int, nf)
			v[0] = 99
			return v
		}(),
		func() []int { // negative outcome
			v := make([]int, nf)
			v[0] = -1
			return v
		}(),
	}
	for i, v := range bad {
		if _, err := m.Step(v); err == nil {
			t.Errorf("malformed vector %d accepted", i)
		}
	}
	// The manager must remain usable after rejected steps.
	if _, err := m.Step(make([]int, nf)); err != nil {
		t.Fatalf("valid step after rejections: %v", err)
	}
}

func TestProbsBoundsAndCopySemantics(t *testing.T) {
	g, cfg := recoveryWorkload(t, 62, 1.6)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Probs(-1); got != nil {
		t.Fatalf("Probs(-1) = %v, want nil", got)
	}
	if got := m.Probs(g.NumForks()); got != nil {
		t.Fatalf("Probs(out of range) = %v, want nil", got)
	}
	probs := m.Probs(0)
	if probs == nil {
		t.Fatal("Probs(0) = nil for a valid fork")
	}
	orig := append([]float64(nil), probs...)
	for i := range probs {
		probs[i] = -42
	}
	again := m.Probs(0)
	for i := range again {
		if again[i] != orig[i] {
			t.Fatal("mutating the returned slice changed manager state")
		}
	}
}

func TestNewValidatesRecoveryOptions(t *testing.T) {
	g, cfg := recoveryWorkload(t, 63, 1.6)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{GuardBand: -0.1},
		{GuardBand: 1.5},
		{GuardBand: math.NaN()},
		{MissRateBound: 2},
		{MissRateBound: -1},
		{MissRateBound: math.NaN()},
		{MissWindow: -5},
	}
	for i, o := range bad {
		if _, err := New(g, p, o); err == nil {
			t.Errorf("options %d (%+v) accepted", i, o)
		}
	}
	var o Options
	o.SetWindow(0)
	if _, err := New(g, p, o); err == nil {
		t.Error("explicit zero window accepted")
	}
	// SetThreshold(0) is the legitimate always-reschedule edge.
	var o2 Options
	o2.SetThreshold(0)
	m, err := New(g, p, o2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(make([]int, g.NumForks())); err != nil {
		t.Fatal(err)
	}
}

func TestFallbackNeverPollutesCache(t *testing.T) {
	g, cfg := recoveryWorkload(t, 64, 1.25)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := recoveryPlan(t, g, cfg, faults.Spec{Seed: 9, OverrunProb: 0.6, OverrunFactor: 1.3})
	m, err := New(g, p, Options{Faults: plan, Recovery: true, MissWindow: 10})
	if err != nil {
		t.Fatal(err)
	}
	vec := trace.Fluctuating(g, 5, 400, 0.45)
	st, err := m.Run(vec)
	if err != nil {
		t.Fatal(err)
	}
	if st.FallbackActivations == 0 {
		t.Fatal("test needs fallback activations to be meaningful")
	}
	if m.fallback == nil {
		t.Fatal("recovery manager has no fallback schedule")
	}
	for _, el := range m.cache.byKey {
		e := el.Value.(*cacheEntry)
		if e.schedule == m.fallback {
			t.Fatal("fallback schedule found in the probability-keyed cache")
		}
		for _, sp := range e.schedule.Speed {
			_ = sp
		}
	}
	// The fallback is full speed by construction.
	for tk, sp := range m.fallback.Speed {
		if sp != 1 {
			t.Fatalf("fallback task %d at speed %v, want 1", tk, sp)
		}
	}
}

func TestRecoveryReducesMissesAtLowerEnergyThanFullSpeed(t *testing.T) {
	// The acceptance-criteria triangle on a synthetic workload: under an
	// aggressive overrun plan, guarded+fallback must miss less than the
	// unguarded adaptive runtime and spend less energy than the full-speed
	// static baseline.
	g, cfg := recoveryWorkload(t, 65, 1.6)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := recoveryPlan(t, g, cfg, faults.Spec{Seed: 42, OverrunProb: 0.25, OverrunFactor: 1.2})
	vec := trace.Fluctuating(g, 7, 600, 0.45)

	unguarded, err := New(g, p, Options{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	stU, err := unguarded.Run(vec)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := New(g, p, Options{Faults: plan, Recovery: true, GuardBand: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	stG, err := guarded.Run(vec)
	if err != nil {
		t.Fatal(err)
	}
	// Full-speed baseline: the precomputed fallback replayed statically.
	stF, err := RunStaticCfg(guarded.Fallback(), vec, sim.Config{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if stU.Misses == 0 {
		t.Fatal("unguarded runtime never missed; fault plan too weak for this test")
	}
	if stG.Misses >= stU.Misses {
		t.Fatalf("guarded misses %d not below unguarded %d", stG.Misses, stU.Misses)
	}
	if stG.TotalEnergy >= stF.TotalEnergy {
		t.Fatalf("guarded energy %v not below full-speed %v", stG.TotalEnergy, stF.TotalEnergy)
	}
	if stG.FallbackActivations == 0 || stG.MissesAvoided == 0 {
		t.Fatalf("recovery counters empty: %+v", stG)
	}
	if stG.MissesAvoided > stG.FallbackActivations {
		t.Fatalf("misses avoided %d exceeds activations %d", stG.MissesAvoided, stG.FallbackActivations)
	}
}

func TestCircuitBreakerEscalatesUnderSustainedMisses(t *testing.T) {
	g, cfg := recoveryWorkload(t, 66, 1.2)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := recoveryPlan(t, g, cfg, faults.Spec{Seed: 3, OverrunProb: 0.8, OverrunFactor: 1.25})
	m, err := New(g, p, Options{Faults: plan, Recovery: true, MissWindow: 20, MissRateBound: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	vec := trace.Fluctuating(g, 9, 500, 0.45)
	st, err := m.Run(vec)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxGuardLevel == 0 {
		t.Fatalf("breaker never escalated under a sustained 80%% overrun plan: %+v", st)
	}
	if m.GuardLevel() > st.MaxGuardLevel {
		t.Fatal("current level above recorded max")
	}
}

func TestStepDeterministicWithFaults(t *testing.T) {
	g, cfg := recoveryWorkload(t, 67, 1.4)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := faults.Spec{Seed: 21, OverrunProb: 0.3, OverrunFactor: 1.2, PESlowProb: 0.1, PESlowFactor: 1.1}
	vec := trace.Fluctuating(g, 4, 300, 0.45)
	run := func() RunStats {
		plan := recoveryPlan(t, g, cfg, spec)
		m, err := New(g, p, Options{Faults: plan, Recovery: true, GuardBand: 0.15})
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run(vec)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
