package core

import (
	"math"
	"testing"

	"ctgdvfs/internal/power"
	"ctgdvfs/internal/series"
	"ctgdvfs/internal/telemetry"
	"ctgdvfs/internal/trace"
)

// TestManagerSeriesBitForBit pins the sampling zero-interference guarantee:
// a manager with a series store attached produces the exact same RunStats as
// one without, and the store holds one sample per instance.
func TestManagerSeriesBitForBit(t *testing.T) {
	run := func(st *series.Store) RunStats {
		g, p := telemetryWorkload(t, 21)
		opts := Options{Window: 10, Threshold: 0.1}
		if st != nil {
			opts.Metrics = st.Registry()
			opts.Series = st
		}
		m, err := New(g, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := m.Run(trace.Fluctuating(g, 7, 60, 0.4))
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	plain := run(nil)
	st := series.NewStore(series.StoreOptions{Registry: telemetry.NewRegistry()})
	sampled := run(st)
	if plain != sampled {
		t.Fatalf("series sampling changed RunStats:\nplain   %+v\nsampled %+v", plain, sampled)
	}
	if st.Ticks() != sampled.Instances {
		t.Fatalf("store ticked %d times for %d instances", st.Ticks(), sampled.Instances)
	}
	mr := st.Series("adaptive.miss_rate")
	if mr == nil || mr.Len() != sampled.Instances {
		t.Fatalf("miss-rate series missing or short: %v", mr)
	}
	if tick, v := mr.Last(); tick != sampled.Instances-1 || v != float64(sampled.Misses)/float64(sampled.Instances) {
		t.Fatalf("miss-rate last sample (%d, %g) does not match RunStats %d/%d",
			tick, v, sampled.Misses, sampled.Instances)
	}
	// The instance counter must have been sampled too (registry-wide sweep).
	if s := st.Series("adaptive.instances"); s == nil || s.Len() != sampled.Instances {
		t.Fatal("counter metrics not sampled")
	}
}

// TestFleetSeriesSamplesRounds checks the fleet ticks its store once per
// round and publishes the fleet/tenant gauges the watch view renders.
func TestFleetSeriesSamplesRounds(t *testing.T) {
	tenants := fleetTenants(t, 6, "alpha", "beta")
	const rounds = 40
	vecs := fleetVectors(tenants, rounds)
	st := series.NewStore(series.StoreOptions{Registry: telemetry.NewRegistry()})
	f, err := NewFleet(tenants, FleetOptions{
		DeadlineFactor: 1.6,
		Budget:         &power.Budget{Cap: math.Inf(1), Model: testModel()},
		Metrics:        st.Registry(),
		Series:         st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(vecs); err != nil {
		t.Fatal(err)
	}
	if st.Ticks() != rounds {
		t.Fatalf("store ticked %d times for %d rounds", st.Ticks(), rounds)
	}
	for _, name := range []string{
		"adaptive.fleet_rung",
		"adaptive.power_round",
		"adaptive.tenant_miss_rate.alpha",
		"adaptive.tenant_round_energy.beta",
	} {
		s := st.Series(name)
		if s == nil || s.Len() != rounds {
			t.Fatalf("series %s missing or short (%v)", name, s)
		}
	}
	if _, v := st.Series("adaptive.power_round").Last(); v <= 0 {
		t.Fatalf("round power sampled as %g, want > 0", v)
	}
}
