package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ctgdvfs/internal/tgff"
	"ctgdvfs/internal/trace"
)

// pollCtx is a context whose Err flips to context.DeadlineExceeded after a
// fixed number of polls, making mid-pipeline cancellation deterministic.
type pollCtx struct {
	mu    sync.Mutex
	polls int
	fuse  int
}

func (c *pollCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.polls++
	if c.polls > c.fuse {
		return context.DeadlineExceeded
	}
	return nil
}
func (c *pollCtx) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.polls
}
func (c *pollCtx) Done() <-chan struct{}       { return nil }
func (c *pollCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *pollCtx) Value(any) any               { return nil }

// cancelWorkload builds a manager that reschedules on every step (threshold
// zero), so cancellation checkpoints are reliably exercised.
func cancelManager(t *testing.T, perScenario bool) (*Manager, [][]int) {
	t.Helper()
	g, cfg := testWorkload(t, 11)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err = TightenDeadline(g, p, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	var opts Options
	opts.SetThreshold(0) // always reschedule
	opts.PerScenario = perScenario
	m, err := New(g, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, trace.Fluctuating(g, 3, 30, 0.4)
}

func TestStepCtxCancelLeavesIncumbentUntouched(t *testing.T) {
	for _, perScenario := range []bool{false, true} {
		m, vecs := cancelManager(t, perScenario)
		for i, v := range vecs[:5] {
			if _, err := m.Step(v); err != nil {
				t.Fatalf("perScenario=%v warmup %d: %v", perScenario, i, err)
			}
		}
		before := m.Schedule()
		instances, calls := m.Instances(), m.Calls()

		fc := &pollCtx{fuse: 3}
		_, err := m.StepCtx(fc, vecs[5])
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("perScenario=%v: want DeadlineExceeded, got %v", perScenario, err)
		}
		if fc.count() <= fc.fuse {
			t.Fatalf("perScenario=%v: pipeline never polled past the fuse", perScenario)
		}
		// The incumbent schedule is the same object — a cancelled pipeline
		// must not have adopted anything.
		if m.Schedule() != before {
			t.Fatalf("perScenario=%v: incumbent schedule replaced by a cancelled step", perScenario)
		}
		if m.Instances() != instances {
			t.Fatalf("perScenario=%v: cancelled step advanced instances %d → %d",
				perScenario, instances, m.Instances())
		}
		if m.Calls() != calls {
			t.Fatalf("perScenario=%v: cancelled step counted a completed call", perScenario)
		}
	}
}

func TestStepCtxCompletedThenCancelledIdentical(t *testing.T) {
	// A step whose context expires only after the pipeline completed must be
	// bit-for-bit identical to an uncancelled step of the same manager state.
	mA, vecs := cancelManager(t, false)
	mB, _ := cancelManager(t, false)
	for i, v := range vecs[:8] {
		ra, err := mA.Step(v)
		if err != nil {
			t.Fatalf("A step %d: %v", i, err)
		}
		// B runs every step under a context that never fires during the
		// pipeline (huge fuse) — the context machinery itself must not
		// perturb results.
		fc := &pollCtx{fuse: 1 << 30}
		rb, err := mB.StepCtx(fc, v)
		if err != nil {
			t.Fatalf("B step %d: %v", i, err)
		}
		if ra != rb {
			t.Fatalf("step %d: StepCtx result diverged from Step:\n %+v\nvs %+v", i, ra, rb)
		}
	}
	if mA.Calls() != mB.Calls() || mA.Instances() != mB.Instances() {
		t.Fatalf("counters diverged: calls %d/%d instances %d/%d",
			mA.Calls(), mB.Calls(), mA.Instances(), mB.Instances())
	}
}

func TestStepCtxPreExpiredRefusedCleanly(t *testing.T) {
	m, vecs := cancelManager(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.StepCtx(ctx, vecs[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if m.Instances() != 0 || m.Calls() != 0 {
		t.Fatalf("pre-expired context touched state: instances=%d calls=%d",
			m.Instances(), m.Calls())
	}
}
