package core

import (
	"time"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/stretch"
	"ctgdvfs/internal/telemetry"
)

// Incremental (warm-start) rescheduling. A drift-triggered reschedule
// usually changes the probabilities of one or two forks by a small amount;
// recomputing the mapping from scratch discards an incumbent whose task→PE
// assignment the new DLS run would almost always reproduce. The warm path
// instead diffs the new probability vector against the one the incumbent was
// built from, and when the change is confined to a few forks it keeps the
// incumbent mapping/ordering skeleton (probability-independent, see
// sched.WarmState) and re-runs only the speed assignment of the affected
// sub-DAG via stretch.HeuristicPartial.
//
// The affected set of a changed fork f is: f itself, plus every task whose
// activation set is split across f's outcomes — tasks active under some but
// not all outcomes of f, i.e. the tasks inside f's conditional arms. Their
// slack weighting (activation probability, per-minterm probC chains) shifts
// first-order with f's probabilities. Tasks active under all outcomes
// (ancestors, post-join descendants) keep their incumbent speeds: their
// weighting shifts only through second-order scenario reweighting, an
// approximation the eligibility bounds keep small and the equivalence
// property test pins. Deadline safety is not approximate — the partial pass
// re-applies the step-9 clamp per task and the manager rejects any warm
// result whose worst-case delay exceeds the deadline.
//
// Fallback to a full recompute happens when: the incumbent state is unknown
// (initial/topology reschedules), too many forks changed (> WarmMaxForks),
// the affected set is too large a fraction of the graph (> WarmMaxAffected),
// or the warm result fails validation. Warm results are never cached: the
// cache's contract is that a hit is bit-for-bit what a fresh recompute would
// produce, which warm results approximate but do not guarantee.

// DefaultWarmMaxForks bounds how many forks may drift in one reschedule for
// the warm path to engage.
const DefaultWarmMaxForks = 3

// DefaultWarmMaxAffected bounds the affected fraction of the task set:
// beyond it a full recompute is both safer and barely slower.
const DefaultWarmMaxAffected = 0.5

// warmEps is the deadline-validation tolerance of the warm path.
const warmEps = 1e-9

// warmState carries the incumbent-schedule bookkeeping of the warm path.
type warmState struct {
	valid bool // schedProbs/schedGuard describe the current schedule

	// schedProbs is the flat probability snapshot the incumbent schedule was
	// built from: outcomes of fork 0, then fork 1, ... (offsets indexed by
	// dense fork index). Stored post-normalization, so exact float comparison
	// against the graph's current values detects any change.
	schedProbs []float64
	offsets    []int
	schedGuard float64

	// forkScen[fi][o] is the set of leaf scenarios in which fork fi executes
	// and selects outcome o — the activation-split probe of the affected-set
	// rule. Scenario assignments are topology- and probability-independent,
	// so this is built once per analysis.
	forkScen [][]ctg.Bitset

	bufs  *sched.WarmState   // double-buffered schedule copies
	ws    *stretch.Workspace // partial-stretch scratch
	wsGen int                // mapGen the workspace was last rebound at

	changed  []int  // scratch: dense indices of drifted forks
	affected []bool // scratch: per-task affected mask

	starts    int // warm-started reschedules
	fallbacks int // eligible attempts that fell back to a full recompute
}

// initWarm sizes the warm-state buffers for the manager's graph/analysis.
func (m *Manager) initWarm() {
	w := &m.warm
	forks := m.g.Forks()
	w.offsets = make([]int, len(forks)+1)
	for fi, fork := range forks {
		w.offsets[fi+1] = w.offsets[fi] + m.g.Outcomes(fork)
	}
	w.schedProbs = make([]float64, w.offsets[len(forks)])
	w.forkScen = make([][]ctg.Bitset, len(forks))
	ns := m.a.NumScenarios()
	for fi, fork := range forks {
		sets := make([]ctg.Bitset, m.g.Outcomes(fork))
		for o := range sets {
			sets[o] = ctg.NewBitset(ns)
		}
		for si := 0; si < ns; si++ {
			if o := m.a.Scenario(si).Assign[fi]; o >= 0 {
				sets[o].Set(si)
			}
		}
		w.forkScen[fi] = sets
	}
	w.bufs = sched.NewWarmState()
	w.ws = stretch.NewWorkspace()
	w.wsGen = -1
	w.changed = make([]int, 0, len(forks))
	w.affected = make([]bool, m.g.NumTasks())
}

// noteScheduleState snapshots the probability/guard state the schedule now
// in force was built (or warm-patched) under. Every reschedule path ends
// here.
func (m *Manager) noteScheduleState(guard float64) {
	w := &m.warm
	for fi, fork := range m.g.Forks() {
		base := w.offsets[fi]
		for k := 0; k < w.offsets[fi+1]-base; k++ {
			w.schedProbs[base+k] = m.g.BranchProb(fork, k)
		}
	}
	w.schedGuard = guard
	w.valid = true
}

// changedForks collects (into the reused scratch slice) the dense indices of
// forks whose current probabilities differ from the schedule snapshot.
func (m *Manager) changedForks() []int {
	w := &m.warm
	w.changed = w.changed[:0]
	for fi, fork := range m.g.Forks() {
		base := w.offsets[fi]
		for k := 0; k < w.offsets[fi+1]-base; k++ {
			if m.g.BranchProb(fork, k) != w.schedProbs[base+k] {
				w.changed = append(w.changed, fi)
				break
			}
		}
	}
	return w.changed
}

// markAffected fills the per-task affected mask for the changed forks and
// returns the affected count. A task is affected when it is a changed fork
// itself, or when its activation set intersects some but not all of a
// changed fork's outcome scenario sets (it lives inside a conditional arm).
func (m *Manager) markAffected(changed []int) int {
	w := &m.warm
	for t := range w.affected {
		w.affected[t] = false
	}
	forks := m.g.Forks()
	count := 0
	for t := 0; t < m.g.NumTasks(); t++ {
		gamma := m.a.ActivationSet(ctg.TaskID(t))
		for _, fi := range changed {
			if ctg.TaskID(t) == forks[fi] {
				w.affected[t] = true
				break
			}
			hits := 0
			for _, so := range w.forkScen[fi] {
				if gamma.Intersects(so) {
					hits++
				}
			}
			if hits >= 1 && hits < len(w.forkScen[fi]) {
				w.affected[t] = true
				break
			}
		}
		if w.affected[t] {
			count++
		}
	}
	return count
}

// tryWarmStart attempts an incremental reschedule against the incumbent
// schedule. It returns true when the warm result was adopted (the caller's
// full-recompute path must be skipped); on false the caller proceeds with
// the full path — w.fallbacks distinguishes an eligible-but-failed attempt
// from a plainly ineligible call.
func (m *Manager) tryWarmStart(reason string, guard float64) (bool, error) {
	w := &m.warm
	if !m.opts.WarmStart || !w.valid || m.schedule == nil {
		return false, nil
	}
	if reason == "initial" || reason == "topology" {
		// No incumbent, or the platform under the incumbent changed — the
		// mapping itself must be redone.
		return false, nil
	}
	diffStart := time.Now()
	changed := m.changedForks()
	guardChanged := guard != w.schedGuard
	if len(changed) == 0 && !guardChanged {
		// The triggering update left the schedule-time state bit-for-bit
		// intact (e.g. the smoothed estimate reproduced the old values): the
		// incumbent is exactly what a recompute would rebuild.
		m.span("diff", m.mm.pipeDiff, diffStart)
		m.adoptWarm(reason, guard)
		return true, nil
	}
	if m.opts.PerScenario {
		// The per-scenario speed table reads no branch probabilities — it
		// conditions on realized outcomes, so it depends only on the mapping,
		// platform, deadline and guard. Pure probability drift keeps both the
		// (unstretched) schedule and the table valid verbatim; only a guard
		// change forces a re-stretch, on the same mapping.
		m.span("diff", m.mm.pipeDiff, diffStart)
		if guardChanged {
			stretchStart := time.Now()
			sp, err := stretch.PerScenarioGuardedCancel(m.schedule, m.opts.DVFS, guard, stretch.CancelFunc(m.cancel))
			if err != nil {
				if m.cancelled() {
					return false, err
				}
				w.fallbacks++
				m.mm.warmFallbacks.Inc()
				return false, nil
			}
			m.speeds = sp
			m.span("stretch", m.mm.pipeStretch, stretchStart)
		}
		m.adoptWarm(reason, guard)
		return true, nil
	}
	if guardChanged {
		// A breaker move re-stretches every task at the new guard — still on
		// the incumbent mapping, so the DLS run is saved.
		for t := range w.affected {
			w.affected[t] = true
		}
	} else {
		if len(changed) > m.opts.WarmMaxForks {
			w.fallbacks++
			m.mm.warmFallbacks.Inc()
			return false, nil
		}
		count := m.markAffected(changed)
		if float64(count) > m.opts.WarmMaxAffected*float64(m.g.NumTasks()) {
			w.fallbacks++
			m.mm.warmFallbacks.Inc()
			return false, nil
		}
	}
	m.span("diff", m.mm.pipeDiff, diffStart)
	target := w.bufs.Start(m.schedule)
	if w.wsGen != m.mapGen {
		w.ws.Rebind(target)
		w.wsGen = m.mapGen
	}
	stretchStart := time.Now()
	w.ws.Cancel = stretch.CancelFunc(m.cancel)
	sr, err := stretch.HeuristicPartial(target, m.opts.DVFS, guard, w.affected, w.ws)
	if err != nil {
		// A cancelled partial pass must not fall through to the full
		// pipeline (which would just re-detect the cancellation after
		// paying for a DLS round) — propagate the context error directly.
		if m.cancelled() {
			return false, err
		}
		w.fallbacks++
		m.mm.warmFallbacks.Inc()
		return false, nil
	}
	m.span("stretch", m.mm.pipeStretch, stretchStart)
	validateStart := time.Now()
	if sr.WorstDelay > m.g.Deadline()*(1+warmEps) {
		// The incumbent skeleton can no longer hold the deadline under the
		// new weighting — let the full path find a new mapping.
		w.fallbacks++
		m.mm.warmFallbacks.Inc()
		return false, nil
	}
	if err := target.QuickValidate(); err != nil {
		w.fallbacks++
		m.mm.warmFallbacks.Inc()
		return false, nil
	}
	m.span("validate", m.mm.pipeValidate, validateStart)
	m.schedule = target
	m.speeds = nil
	if m.rec != nil {
		m.emit(telemetry.Event{
			Kind:       telemetry.KindStretch,
			Instance:   m.instances,
			Tasks:      sr.Stretched,
			SlackFound: sr.SlackFound,
			SlackUsed:  sr.SlackUsed,
			Energy:     target.ExpectedEnergy(),
			Makespan:   sr.WorstDelay,
			Cause:      m.causeSeq,
		})
	}
	m.adoptWarm(reason, guard)
	return true, nil
}

// cancelled reports whether the in-flight StepCtx's context has expired
// (always false outside StepCtx).
func (m *Manager) cancelled() bool { return m.cancel != nil && m.cancel() != nil }

// adoptWarm finalizes a warm-started (or verbatim-reused) reschedule: the
// call counts exactly like a full one, the snapshot moves to the new state,
// and the decision event is tagged warm. Warm results are never cached.
func (m *Manager) adoptWarm(reason string, guard float64) {
	w := &m.warm
	w.starts++
	m.mm.warmStarts.Inc()
	m.calls++
	m.mm.calls.Inc()
	m.noteScheduleState(guard)
	m.emitReschedule(reason, "", false, true)
}

// WarmStats returns the warm-start counters: incremental reschedules
// adopted, and eligible attempts that fell back to a full recompute.
func (m *Manager) WarmStats() (starts, fallbacks int) {
	return m.warm.starts, m.warm.fallbacks
}

// AffectedByDrift computes, from first principles, the warm-start affected
// mask for a drift confined to the given forks (dense indices): each changed
// fork itself plus every task whose activation set is split across that
// fork's outcomes. This is the reference implementation of the manager's
// (buffer-reusing) incremental rule, exported for tests and benchmarks.
func AffectedByDrift(a *ctg.Analysis, changed []int) []bool {
	g := a.Graph()
	forks := g.Forks()
	affected := make([]bool, g.NumTasks())
	for _, fi := range changed {
		fork := forks[fi]
		outcomes := g.Outcomes(fork)
		sets := make([]ctg.Bitset, outcomes)
		for o := range sets {
			sets[o] = ctg.NewBitset(a.NumScenarios())
		}
		for si := 0; si < a.NumScenarios(); si++ {
			if o := a.Scenario(si).Assign[fi]; o >= 0 {
				sets[o].Set(si)
			}
		}
		affected[fork] = true
		for t := 0; t < g.NumTasks(); t++ {
			if affected[t] {
				continue
			}
			gamma := a.ActivationSet(ctg.TaskID(t))
			hits := 0
			for _, so := range sets {
				if gamma.Intersects(so) {
					hits++
				}
			}
			if hits >= 1 && hits < outcomes {
				affected[t] = true
			}
		}
	}
	return affected
}
