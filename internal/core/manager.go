package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/faults"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/series"
	"ctgdvfs/internal/sim"
	"ctgdvfs/internal/stats"
	"ctgdvfs/internal/stretch"
	"ctgdvfs/internal/telemetry"
)

// Circuit-breaker defaults: the miss-rate window and the windowed miss-rate
// bound above which the guard band escalates.
const (
	DefaultMissWindow    = 50
	DefaultMissRateBound = 0.1
	// maxGuardLevel caps the circuit breaker's escalation; at level k the
	// effective guard is 1 − (1 − base)/2^k, so level 6 already reserves
	// over 98% of the slack.
	maxGuardLevel = 6
)

// Options configures the adaptive framework.
type Options struct {
	// Window is the sliding-window length L. The zero value selects
	// DefaultWindow; to pass a literal value — including an invalid zero,
	// which New rejects explicitly — use SetWindow.
	Window int
	// Threshold is the drift threshold T. The zero value selects
	// DefaultThreshold; a genuine T = 0 (any observed drift triggers
	// re-scheduling, i.e. re-schedule on every instance) is therefore not
	// expressible by assignment — use SetThreshold(0).
	Threshold float64
	// DVFS is the speed-scaling model (default continuous).
	DVFS platform.DVFS
	// Sched selects the mapping/ordering algorithm (default the paper's
	// modified DLS).
	Sched sched.Options
	// MaxPaths caps the stretching path model (default
	// ctg.DefaultMaxPaths).
	MaxPaths int
	// PerScenario replaces the paper's single-speed stretching with the
	// scenario-conditioned extension (stretch.PerScenario): every
	// re-schedule computes a speed table indexed by leaf scenario, and
	// replay dispatches each task at the speed of its realized knowledge
	// class. Strictly more energy-efficient at the cost of a
	// scenarios × tasks table per schedule.
	PerScenario bool
	// CacheSize bounds the memoized schedule cache (in schedules). The
	// zero value selects DefaultCacheSize; negative disables caching.
	// Cached schedules are exact: a hit returns bit-for-bit what
	// re-running DLS + stretching would produce, so caching never changes
	// energies or call counts — only the per-decision overhead.
	CacheSize int

	// WarmStart enables incremental rescheduling: when a drift-triggered
	// reschedule changes only a few forks' probabilities, the incumbent
	// task→PE mapping and ordering are kept and only the affected sub-DAG's
	// speeds are recomputed (stretch.HeuristicPartial), falling back to the
	// full DLS + stretch pipeline when the diff is too large or the warm
	// result fails validation. Warm results stay within the incumbent's
	// deadline guarantee unconditionally; their speeds approximate (to first
	// order) what a full recompute would assign. See internal/core
	// warmstart.go and DESIGN.md.
	WarmStart bool
	// WarmMaxForks bounds how many forks may drift in one reschedule for the
	// warm path to engage; zero selects DefaultWarmMaxForks.
	WarmMaxForks int
	// WarmMaxAffected bounds the affected fraction of the task set; zero
	// selects DefaultWarmMaxAffected.
	WarmMaxAffected float64

	// GuardBand ∈ [0,1] reserves that fraction of every task's slack as
	// overrun margin during stretching (stretch.HeuristicGuarded /
	// PerScenarioGuarded). Zero reproduces the paper's stretching exactly.
	GuardBand float64
	// Faults, when non-nil, perturbs the replay of every Step with the
	// plan's execution-time factors; the fault-instance cursor advances
	// once per processed instance, so a run over N vectors consumes plan
	// instances 0..N−1 deterministically.
	Faults *faults.Plan
	// Failures, when non-nil, subjects the hardware itself to the
	// timeline's availability faults: at every instance boundary the
	// manager compares the timeline's mask against the one in force, and on
	// any change re-maps the workload onto the survivor set (restricting
	// the platform, rebuilding the full-speed fallback, and re-running the
	// online algorithm under a mask-qualified cache key). When a transient
	// outage heals, the healthy mask keys back to the pre-failure cache
	// entries, so restoration is a cache hit. Setting Failures implies
	// Recovery: a degraded schedule that cannot meet the deadline escalates
	// to the full-speed fallback built for the same survivor set.
	Failures *faults.Timeline
	// Recovery enables the fault-tolerance layer: a precomputed full-speed
	// worst-case fallback schedule (an instance whose primary replay
	// misses the deadline is re-run on it), plus a miss-rate circuit
	// breaker — when more than MissRateBound of the last MissWindow
	// instances missed on the primary schedule, the guard band escalates
	// (halving the remaining unguarded slack per level); when the windowed
	// rate falls to MissRateBound/2 it relaxes one level.
	Recovery bool
	// MissWindow is the circuit breaker's sliding-window length; zero
	// selects DefaultMissWindow.
	MissWindow int
	// MissRateBound is the windowed primary miss rate that trips the
	// breaker; zero selects DefaultMissRateBound.
	MissRateBound float64

	// Recorder, when non-nil, receives the runtime's structured telemetry
	// stream: instance start/finish, per-task and per-transfer slices (via
	// the simulator), per-fork window estimates, re-scheduling decisions
	// with cache outcome, stretch-pass summaries, fault overruns, fallback
	// activations and circuit-breaker level changes. Nil (the default)
	// disables the stream entirely: every emission site is nil-guarded
	// before any event is built, so the disabled path adds one branch and
	// zero allocations and the runtime's outputs are bit-for-bit identical
	// to a recorder-free build.
	Recorder telemetry.Recorder
	// Metrics, when non-nil, is the registry the manager publishes its
	// counters, gauges and latency/makespan histograms to (metric names
	// are prefixed "adaptive."); nil gives the manager a private registry,
	// exposed via Manager.Metrics. Sharing one registry across managers
	// aggregates their counters (the campaign-wide view); each manager's
	// RunStats remain per-manager either way.
	Metrics *telemetry.Registry
	// Sequencer, when non-nil, is the id source stamped onto every emitted
	// event (Event.Seq) so later events can reference earlier ones as their
	// Cause. Nil gives the manager a private sequencer whenever a Recorder
	// is attached. Share one across producers writing to one stream — a
	// Fleet hands its tenants a common sequencer so ids stay unique in the
	// merged stream.
	Sequencer *telemetry.Sequencer
	// Series, when non-nil, is ticked once per processed instance after the
	// instance_finish event, sampling the manager's metrics registry into
	// fixed-capacity time series (internal/series) on the deterministic
	// sim-time axis (the instance index). The tick's cause is the
	// instance_finish seq, so alert firings chain back to the instance that
	// tripped them. Point the store at the same registry as Metrics — or, in
	// parallel campaigns, at a mirror of the shared registry
	// (telemetry.NewMirrorRegistry) so sampling stays deterministic. Nil
	// (the default) disables sampling at the cost of one branch.
	Series *series.Store

	// thresholdSet / windowSet record explicit SetThreshold / SetWindow
	// calls, so literal zeros are distinguishable from unset fields.
	thresholdSet bool
	windowSet    bool
}

// SetThreshold sets the drift threshold to a literal value, including a
// genuine T = 0 — the "always re-schedule" configuration the zero-as-default
// convention cannot express.
func (o *Options) SetThreshold(t float64) {
	o.Threshold = t
	o.thresholdSet = true
}

// SetWindow sets the sliding-window length to a literal value. Unlike plain
// assignment, an explicit 0 is passed through to validation (and rejected)
// instead of being silently replaced by the default.
func (o *Options) SetWindow(w int) {
	o.Window = w
	o.windowSet = true
}

func (o *Options) applyDefaults() {
	if o.Window == 0 && !o.windowSet {
		o.Window = DefaultWindow
	}
	if o.Threshold == 0 && !o.thresholdSet {
		o.Threshold = DefaultThreshold
	}
	if o.Sched == (sched.Options{}) {
		o.Sched = sched.Modified()
	}
	if o.CacheSize == 0 {
		o.CacheSize = DefaultCacheSize
	}
	if o.MissWindow == 0 {
		o.MissWindow = DefaultMissWindow
	}
	if o.MissRateBound == 0 {
		o.MissRateBound = DefaultMissRateBound
	}
	if o.WarmMaxForks == 0 {
		o.WarmMaxForks = DefaultWarmMaxForks
	}
	if o.WarmMaxAffected == 0 {
		o.WarmMaxAffected = DefaultWarmMaxAffected
	}
}

// Manager is the runtime of the adaptive framework: it owns the current
// schedule, replays incoming CTG instances against it, feeds the observed
// branch decisions to the profiler, and re-runs the online algorithm
// whenever the probability estimates drift past the threshold.
type Manager struct {
	opts Options

	g *ctg.Graph // current probability estimates live here
	a *ctg.Analysis
	p *platform.Platform

	profiler *Profiler
	schedule *sched.Schedule
	// speeds is the scenario-conditioned table when opts.PerScenario is
	// set; nil otherwise.
	speeds *stretch.ScenarioSpeeds
	// cache memoizes (mapping, order, speeds) by exact probability state;
	// nil when disabled.
	cache *scheduleCache

	calls     int // re-scheduling invocations (the paper's "# of calls")
	instances int // processed instances; doubles as the telemetry instance id

	// Warm-start state (see warmstart.go) plus the reusable hot-path
	// buffers of the reschedule pipeline: the DLS workspace, a mapping
	// generation counter (bumped whenever the adopted schedule may carry a
	// different mapping — full recomputes and cache hits — so the stretch
	// workspace knows when to rebind), and a probability scratch slice for
	// the drift-update loop.
	warm     warmState
	mapGen   int
	dlsWS    *sched.Workspace
	probsBuf []float64

	// cancel is the cooperative-cancellation hook of the in-flight StepCtx
	// call (nil outside one): the reschedule pipeline threads it into the
	// DLS placement loop and the stretching passes, so a request whose
	// context expires aborts mid-pipeline instead of running to completion.
	// The incumbent schedule is only replaced at pipeline end, so a
	// cancelled reschedule never leaves a partial schedule behind — but the
	// estimator state observed this step's decisions before the pipeline
	// ran, so a cancelled Step leaves the manager mid-instance (instances is
	// not advanced). Callers that need replay determinism after a
	// cancellation rebuild the manager from their decision log (the serve
	// layer does exactly that).
	cancel func() error

	// Telemetry (inert unless Options.Recorder / Metrics set — rec nil
	// means no events; metrics always points at a registry, private by
	// default). The manager's logic state lives in the plain fields above
	// and is mirrored into the registry handles, never read back from
	// them: a registry shared across managers aggregates, and must not be
	// able to corrupt any single manager's RunStats.
	rec     telemetry.Recorder
	metrics *telemetry.Registry
	mm      managerMetrics
	// missesTotal is this manager's own deadline-miss count, backing the
	// adaptive.miss_rate gauge (the registry's miss counter may aggregate
	// several managers and cannot be read back — see the comment above).
	missesTotal int

	// Provenance state (live only while rec != nil): the sequencer stamping
	// event ids, the seq of the current instance's instance_start, the
	// trigger seq the in-flight reschedule pipeline chains its decision
	// events to, an externally imposed cause (a Fleet's ladder decision —
	// set around SetGuardBand/ApplyAvailability calls), and the per-fork
	// seqs of this step's window-estimate events (so a drift-triggered
	// reschedule can name the estimate that crossed the threshold).
	seq      *telemetry.Sequencer
	startSeq uint64
	causeSeq uint64
	extCause uint64
	estSeqs  []uint64

	// Fault-tolerance state (inert unless Options.Recovery / Faults set).
	fallback      *sched.Schedule // precomputed full-speed worst-case schedule
	faultInstance int             // fault-plan cursor, advanced once per Step
	guardLevel    int             // circuit-breaker escalation level
	maxLevelSeen  int
	missRing      []bool // last MissWindow primary-schedule outcomes
	missCursor    int
	missFill      int
	missCount     int
	activations   int // fallback replays
	missesAvoided int // fallback replays that met the deadline

	// Availability state (inert unless Options.Failures set).
	base *platform.Platform // the full, unrestricted platform
	// healthyFallback preserves the full-topology fallback so recovering
	// from a transient outage never recomputes it.
	healthyFallback *sched.Schedule
	mask            platform.Mask // availability mask in force (zero = healthy)
	degraded        bool          // mask hides something
	remaps          int           // availability-driven re-mapping decisions
	degradedInsts   int           // instances executed under a degraded mask
	topoMisses      int           // final misses on degraded instances
}

// managerMetrics holds the manager's resolved registry handles so the hot
// path never touches the registry's name maps.
type managerMetrics struct {
	instances, misses, overruns   *telemetry.Counter
	calls, cacheHits, cacheMisses *telemetry.Counter
	fallbacks, missesAvoided      *telemetry.Counter
	warmStarts, warmFallbacks     *telemetry.Counter
	guardLevel, maxGuardLevel     *telemetry.Gauge
	drift                         *telemetry.Gauge
	missRate, missRateWindow      *telemetry.Gauge
	lateness, makespan            *telemetry.HistogramMetric
	pipeDiff, pipeDLS             *telemetry.HistogramMetric
	pipeStretch, pipeValidate     *telemetry.HistogramMetric
}

// spanHiUS is the upper bound of the pipeline-span histograms in
// microseconds; phases beyond it clamp into the last bucket (the histogram's
// exact max still records them).
const spanHiUS = 50_000

// resolveMetrics binds the manager's metric handles in reg under the
// "adaptive." prefix. Histogram ranges are deadline-relative: lateness can
// only fall in [0, deadline]-ish territory (clamping catches pathological
// overshoots) and makespans beyond twice the deadline carry no extra
// information.
func (m *Manager) resolveMetrics(reg *telemetry.Registry) {
	hi := m.g.Deadline()
	if !(hi > 0) {
		hi = 1
	}
	m.metrics = reg
	m.mm = managerMetrics{
		instances:      reg.Counter("adaptive.instances"),
		misses:         reg.Counter("adaptive.misses"),
		overruns:       reg.Counter("adaptive.overruns"),
		calls:          reg.Counter("adaptive.calls"),
		cacheHits:      reg.Counter("adaptive.cache_hits"),
		cacheMisses:    reg.Counter("adaptive.cache_misses"),
		fallbacks:      reg.Counter("adaptive.fallback_activations"),
		missesAvoided:  reg.Counter("adaptive.misses_avoided"),
		warmStarts:     reg.Counter("adaptive.warm_starts"),
		warmFallbacks:  reg.Counter("adaptive.warm_fallbacks"),
		guardLevel:     reg.Gauge("adaptive.guard_level"),
		maxGuardLevel:  reg.Gauge("adaptive.max_guard_level"),
		drift:          reg.Gauge("adaptive.drift"),
		missRate:       reg.Gauge("adaptive.miss_rate"),
		missRateWindow: reg.Gauge("adaptive.miss_rate_window"),
		lateness:       reg.Histogram("adaptive.lateness", 0, hi, 64),
		makespan:       reg.Histogram("adaptive.makespan", 0, 2*hi, 64),
		pipeDiff:       reg.Histogram("adaptive.pipeline_diff_us", 0, spanHiUS, 64),
		pipeDLS:        reg.Histogram("adaptive.pipeline_dls_us", 0, spanHiUS, 64),
		pipeStretch:    reg.Histogram("adaptive.pipeline_stretch_us", 0, spanHiUS, 64),
		pipeValidate:   reg.Histogram("adaptive.pipeline_validate_us", 0, spanHiUS, 64),
	}
}

// StepResult reports one processed CTG instance.
type StepResult struct {
	// Instance is the execution that counts: the primary replay, or — when
	// FallbackUsed — the full-speed fallback re-run.
	Instance    sim.Instance
	Rescheduled bool
	// Drift is the profiler drift measured after observing this
	// instance's branch decisions.
	Drift float64

	// FallbackUsed reports that the primary replay missed the deadline and
	// the instance was re-run on the worst-case fallback schedule; Primary
	// then keeps the failed primary replay.
	FallbackUsed bool
	Primary      sim.Instance
	// GuardLevel is the circuit breaker's escalation level after this
	// step (0 = base guard band).
	GuardLevel int
	// Degraded reports that the instance executed under an availability
	// mask hiding part of the topology (Failures mode); Remapped reports
	// that the mask changed at this instance's boundary and the workload
	// was re-mapped.
	Degraded bool
	Remapped bool
}

// RunStats aggregates a sequence of instances.
type RunStats struct {
	Instances   int
	TotalEnergy float64
	// AvgEnergy is TotalEnergy / Instances.
	AvgEnergy   float64
	AvgMakespan float64
	Misses      int
	// Calls counts online re-scheduling invocations (adaptive runs only).
	Calls int
	// CacheHits/CacheMisses report how many of those invocations (plus the
	// initial schedule) were served from the memoized schedule cache
	// versus computed fresh. Zero when caching is disabled.
	CacheHits, CacheMisses int
	// WarmStarts counts reschedules served incrementally from the incumbent
	// schedule (Options.WarmStart); WarmFallbacks counts eligible warm
	// attempts that fell back to a full recompute (diff too large, or the
	// warm result failed validation). Both zero when warm-starting is off.
	WarmStarts, WarmFallbacks int

	// FallbackActivations counts instances re-run on the full-speed
	// fallback schedule after a primary-schedule miss (Recovery mode).
	FallbackActivations int
	// MissesAvoided counts fallback activations whose re-run met the
	// deadline — misses the unguarded runtime would have taken.
	MissesAvoided int
	// TotalLateness sums the final deadline overshoot across instances
	// (after fallback, where enabled).
	TotalLateness float64
	// Overruns totals fault-plan perturbed task executions.
	Overruns int
	// MaxGuardLevel is the highest circuit-breaker escalation level the
	// run reached.
	MaxGuardLevel int

	// DegradedInstances counts instances executed with part of the topology
	// masked out (Failures mode); Remaps counts availability-driven
	// re-mapping decisions (both degradations and restorations);
	// TopologyMisses counts final deadline misses on degraded instances —
	// the misses attributable to running on a diminished survivor set.
	DegradedInstances int
	Remaps            int
	TopologyMisses    int

	// LatenessP50/P95/P99 and MakespanP50/P95/P99 are percentile summaries
	// of the per-instance final lateness and makespan distributions
	// (stats.SamplePercentiles — interpolated within 1/256 of the observed
	// range). All zero on an empty run.
	LatenessP50, LatenessP95, LatenessP99 float64
	MakespanP50, MakespanP95, MakespanP99 float64
}

// runAgg accumulates RunStats over a replayed instance sequence. Run and
// RunStaticCfg share it so the adaptive and static runtimes aggregate — and
// round — identically. The plain-sum fields are updated in the same order the
// pre-telemetry runtime used, keeping accumulated floats bit-for-bit.
type runAgg struct {
	st       RunStats
	lateness []float64
	makespan []float64
}

func (a *runAgg) add(inst sim.Instance) {
	a.st.Instances++
	a.st.TotalEnergy += inst.Energy
	a.st.AvgMakespan += inst.Makespan
	if !inst.DeadlineMet {
		a.st.Misses++
	}
	a.st.TotalLateness += inst.Lateness
	a.st.Overruns += inst.Overruns
	a.lateness = append(a.lateness, inst.Lateness)
	a.makespan = append(a.makespan, inst.Makespan)
}

// finish computes the averages and percentile summaries.
func (a *runAgg) finish() RunStats {
	st := a.st
	if st.Instances > 0 {
		st.AvgEnergy = st.TotalEnergy / float64(st.Instances)
		st.AvgMakespan /= float64(st.Instances)
	}
	lp := stats.SamplePercentiles(a.lateness)
	mp := stats.SamplePercentiles(a.makespan)
	st.LatenessP50, st.LatenessP95, st.LatenessP99 = lp.P50, lp.P95, lp.P99
	st.MakespanP50, st.MakespanP95, st.MakespanP99 = mp.P50, mp.P95, mp.P99
	return st
}

// New builds an adaptive manager. The graph's current branch probabilities
// act as the initial profile; the initial schedule is built from them. The
// graph is cloned, so the caller's instance is never mutated.
func New(g *ctg.Graph, p *platform.Platform, opts Options) (*Manager, error) {
	opts.applyDefaults()
	if opts.Threshold < 0 || opts.Threshold > 1 {
		return nil, fmt.Errorf("core: threshold must be in [0,1], got %v", opts.Threshold)
	}
	if math.IsNaN(opts.GuardBand) || opts.GuardBand < 0 || opts.GuardBand > 1 {
		return nil, fmt.Errorf("core: guard band must be in [0,1], got %v", opts.GuardBand)
	}
	if opts.MissWindow < 1 {
		return nil, fmt.Errorf("core: miss window must be ≥ 1, got %d", opts.MissWindow)
	}
	if math.IsNaN(opts.MissRateBound) || opts.MissRateBound <= 0 || opts.MissRateBound > 1 {
		return nil, fmt.Errorf("core: miss-rate bound must be in (0,1], got %v", opts.MissRateBound)
	}
	if opts.Failures != nil {
		if opts.Failures.NumPEs() != p.NumPEs() {
			return nil, fmt.Errorf("core: failure timeline sized for %d PEs, platform has %d",
				opts.Failures.NumPEs(), p.NumPEs())
		}
		if p.Restricted() {
			// A timeline's masks replace the platform's availability state
			// wholesale, which would silently resurrect the masked-out part
			// of a pre-restricted base (e.g. a consolidation partition).
			return nil, fmt.Errorf("core: a failure timeline requires an unrestricted base platform")
		}
		// A degraded schedule needs somewhere to escalate: availability
		// faults imply the recovery machinery.
		opts.Recovery = true
	}
	m := &Manager{opts: opts, g: g.Clone(), p: p, base: p}
	if p.Restricted() {
		// A pre-restricted base platform (a consolidation partition) is this
		// manager's healthy state: record it as the mask in force so the
		// first external ApplyAvailability diffs against the partition, not
		// against a full topology the manager never had.
		m.mask = p.AvailabilityMask()
	}
	if opts.Failures != nil {
		// The timeline may already be degraded at instance 0: the initial
		// schedule must target the survivor set, not hardware that was never
		// there. No remap is recorded — there is no earlier schedule to move
		// away from — but the PE/link loss events are emitted so the stream
		// explains why the first schedule avoids part of the topology.
		mask0 := opts.Failures.MaskAt(0)
		if !mask0.IsFull() {
			rp, err := p.Restrict(mask0)
			if err != nil {
				return nil, fmt.Errorf("core: initial availability mask: %w", err)
			}
			m.p = rp
			m.mask = mask0
			m.degraded = true
		}
	}
	if opts.CacheSize > 0 {
		m.cache = newScheduleCache(opts.CacheSize)
	}
	m.rec = opts.Recorder
	if m.rec != nil {
		m.seq = opts.Sequencer
		if m.seq == nil {
			m.seq = telemetry.NewSequencer()
		}
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m.resolveMetrics(reg)
	a, err := ctg.Analyze(m.g)
	if err != nil {
		return nil, err
	}
	m.a = a
	m.profiler, err = NewProfiler(m.g, opts.Window)
	if err != nil {
		return nil, err
	}
	m.initWarm()
	m.dlsWS = sched.NewWorkspace()
	if opts.Recovery {
		// The worst-case fallback: plain full-speed DLS, never stretched,
		// built once and bypassing the probability-keyed cache entirely (it
		// is probability-independent by construction — every task runs at
		// speed 1 — so caching it under a probability key would be both
		// wrong and polluting).
		fb, err := sched.DLS(m.a, m.p, m.opts.Sched)
		if err != nil {
			return nil, err
		}
		m.fallback = fb
		if !m.degraded {
			m.healthyFallback = fb
		}
		m.missRing = make([]bool, opts.MissWindow)
	}
	if m.degraded {
		// The initial schedule's shape is explained by the already-degraded
		// topology: chain it to the last loss event.
		m.causeSeq = m.emitMaskDiff(platform.Mask{}, m.mask, 0)
	}
	if err := m.reschedule("initial"); err != nil {
		return nil, err
	}
	m.calls = 0 // the initial schedule does not count as an adaptive call
	m.mm.calls.Add(-1)
	return m, nil
}

// effectiveGuard is the guard band after circuit-breaker escalation: level k
// halves the unguarded slack fraction k times, 1 − (1 − base)/2^k.
func (m *Manager) effectiveGuard() float64 {
	g := m.opts.GuardBand
	if m.guardLevel > 0 {
		g = 1 - (1-g)/float64(uint64(1)<<uint(m.guardLevel))
	}
	if g > 1 {
		g = 1
	}
	return g
}

// emit stamps the event with the next sequence id and records it, returning
// the id so the event can be named as the Cause of its effects. Callers must
// have checked m.rec != nil (the provenance state only exists then).
func (m *Manager) emit(ev telemetry.Event) uint64 {
	ev.Seq = m.seq.Next()
	m.rec.Record(ev)
	return ev.Seq
}

// span closes one timed reschedule phase: the wall time since start goes into
// the phase's histogram and, when a recorder is listening, out as a
// pipeline_span event chained to the pipeline's trigger. Phases: "diff" (the
// warm path's fork diff + affected-set marking), "dls" (the full path's
// mapping/ordering run), "stretch" (slack distribution, full or partial),
// "validate" (the warm result's deadline + consistency checks).
func (m *Manager) span(phase string, h *telemetry.HistogramMetric, start time.Time) {
	us := float64(time.Since(start)) / float64(time.Microsecond)
	h.Observe(us)
	if m.rec != nil {
		m.emit(telemetry.Event{
			Kind: telemetry.KindSpan, Instance: m.instances,
			Name: phase, Value: us, Cause: m.causeSeq,
		})
	}
}

// GuardLevel returns the circuit breaker's current escalation level.
func (m *Manager) GuardLevel() int { return m.guardLevel }

// Degraded reports whether part of the topology is currently masked out.
func (m *Manager) Degraded() bool { return m.degraded }

// AvailabilityMask returns the availability mask currently in force (the
// zero mask — everything available — unless Failures is configured and the
// timeline has degraded the topology).
func (m *Manager) AvailabilityMask() platform.Mask { return m.mask }

// emitMaskDiff records the PE and link transitions between two availability
// masks, returning the last emitted event's seq (0 when no recorder or no
// transition) so the remap/reschedule that follows can chain to it. Each
// event's Cause is the externally imposed cause when one is in force (a
// fleet's revocation decision); timeline-driven outages have no in-stream
// cause — the hardware failed on its own. PE deaths carry the timeline's
// permanence verdict; link events are reported only for links whose endpoints
// are alive under both masks, so a PE death is one pe_down event rather than
// a storm of implied link losses.
func (m *Manager) emitMaskDiff(old, cur platform.Mask, instance int) uint64 {
	if m.rec == nil {
		return 0
	}
	var last uint64
	n := m.base.NumPEs()
	alive := cur.NumAlive(n)
	for pe := 0; pe < n; pe++ {
		was, is := old.PEAlive(pe), cur.PEAlive(pe)
		switch {
		case was && !is:
			reason := "transient"
			if m.opts.Failures != nil && m.opts.Failures.PermanentlyDead(instance, pe) {
				reason = "permanent"
			}
			last = m.emit(telemetry.Event{
				Kind: telemetry.KindPEDown, Instance: instance,
				PE: pe, Reason: reason, Alive: alive, Cause: m.extCause,
			})
		case !was && is:
			last = m.emit(telemetry.Event{
				Kind: telemetry.KindPEUp, Instance: instance, PE: pe, Alive: alive,
				Cause: m.extCause,
			})
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || !old.PEAlive(i) || !old.PEAlive(j) || !cur.PEAlive(i) || !cur.PEAlive(j) {
				continue
			}
			was, is := old.LinkUp(i, j), cur.LinkUp(i, j)
			switch {
			case was && !is:
				last = m.emit(telemetry.Event{
					Kind: telemetry.KindLinkDown, Instance: instance, PE: i, PE2: j,
					Cause: m.extCause,
				})
			case !was && is:
				last = m.emit(telemetry.Event{
					Kind: telemetry.KindLinkUp, Instance: instance, PE: i, PE2: j,
					Cause: m.extCause,
				})
			}
		}
	}
	return last
}

// applyTopology re-maps the runtime onto a changed survivor set: restrict
// the platform to the new mask, rebuild the full-speed fallback for the same
// survivors (reusing the preserved healthy fallback when the full topology
// returns), and re-run the online algorithm under the mask-qualified cache
// key. An infeasible mask (or an unroutable degraded topology, surfaced as
// sched.InfeasibleError) propagates as an error: the workload cannot run on
// what remains.
func (m *Manager) applyTopology(cur platform.Mask, instance int) error {
	old := m.mask
	// The remap and the topology reschedule below both chain to the last
	// hardware transition (which itself chains to an external decision when
	// one drove the change).
	topoSeq := m.emitMaskDiff(old, cur, instance)
	rp, err := m.base.Restrict(cur)
	if err != nil {
		return fmt.Errorf("core: instance %d availability mask: %w", instance, err)
	}
	m.p = rp
	m.mask = cur
	// Degraded is measured against the base platform's own availability —
	// identical to !cur.IsFull() for the unrestricted bases of the failover
	// path, but a partition-restricted base (consolidation) is healthy at
	// its partition mask, not at the full fabric it never owned.
	m.degraded = !cur.Equal(m.base.AvailabilityMask(), m.base.NumPEs())
	if m.opts.Recovery {
		// Only the recovery machinery keeps a fallback; rebuilding one for a
		// manager that never had it would silently enable fallback replays.
		if m.degraded || m.healthyFallback == nil {
			fb, err := sched.DLS(m.a, m.p, m.opts.Sched)
			if err != nil {
				return err
			}
			m.fallback = fb
			if !m.degraded {
				m.healthyFallback = fb
			}
		} else {
			m.fallback = m.healthyFallback
		}
	}
	reason := "restored"
	if m.degraded {
		reason = "degraded"
	}
	m.causeSeq = topoSeq
	if err := m.reschedule("topology"); err != nil {
		return err
	}
	m.remaps++
	if m.rec != nil {
		m.emit(telemetry.Event{
			Kind: telemetry.KindRemap, Instance: instance,
			Reason: reason, Alive: m.p.NumAlivePEs(), Cause: topoSeq,
		})
	}
	return nil
}

// Fallback returns the precomputed worst-case fallback schedule (nil unless
// Recovery is enabled).
func (m *Manager) Fallback() *sched.Schedule { return m.fallback }

// ApplyAvailability re-maps the runtime onto an externally imposed
// availability mask — the entry point of PE arbitration by a consolidation
// layer (a budget-revoked PE is a masked PE), complementing the Failures
// timeline that drives the same machinery from seeded outage plans. The mask
// is expressed over the base platform's PE indices; callers layering
// restrictions (a partition plus a revocation, say) compose them with
// platform.Mask.Intersect first, because the mask replaces the availability
// state wholesale. A mask equal to the one in force is a no-op. It returns
// an error when the manager is driven by a Failures timeline (two mask
// authorities would fight over the topology) or when the mask is infeasible.
func (m *Manager) ApplyAvailability(mask platform.Mask) error {
	if m.opts.Failures != nil {
		return fmt.Errorf("core: ApplyAvailability conflicts with a Failures timeline")
	}
	if mask.Equal(m.mask, m.base.NumPEs()) {
		return nil
	}
	return m.applyTopology(mask, m.instances)
}

// SetGuardBand replaces the base guard band and re-stretches the incumbent
// schedule at the new effective guard. Releasing the guard (toward 0) lets
// stretching spend the reserved slack on deeper slowdowns — lower speeds,
// lower power, less overrun margin — which is the first rung of the power
// governor's degradation ladder; raising it restores the margin. A value
// equal to the current base guard is a no-op.
func (m *Manager) SetGuardBand(g float64) error {
	if math.IsNaN(g) || g < 0 || g > 1 {
		return fmt.Errorf("core: guard band must be in [0,1], got %v", g)
	}
	if g == m.opts.GuardBand {
		return nil
	}
	m.opts.GuardBand = g
	return m.reschedule("guard")
}

// GuardBand returns the current base guard band (before circuit-breaker
// escalation).
func (m *Manager) GuardBand() float64 { return m.opts.GuardBand }

// reschedule runs the online algorithm (DLS + stretching) with the graph's
// current probability estimates, consulting the schedule cache first: if the
// exact probability state was scheduled for before, the memoized (mapping,
// order, speeds) is reused. Hits and misses both count as a call — the cache
// changes the cost of an invocation, never the invocation count or its
// result.
func (m *Manager) reschedule(reason string) error {
	if m.causeSeq == 0 {
		// No in-stream trigger of our own: adopt the externally imposed
		// cause when a consolidation layer drove this call (guard-rung
		// SetGuardBand, revocation ApplyAvailability).
		m.causeSeq = m.extCause
	}
	guard := m.effectiveGuard()
	var key string
	if m.cache != nil {
		key = m.probKey()
		if guard > 0 {
			// Guarded schedules live under distinct keys: the same
			// probability state stretched at different guard levels
			// produces different speeds, and a guard-0 entry must stay
			// bit-for-bit what the paper's runtime would reuse.
			key += guardKey(guard)
		}
		if m.degraded {
			// Degraded schedules are keyed by the availability mask too:
			// the same probabilities on fewer PEs are a different schedule.
			// A healthy mask keys to "" (Mask.Key's contract), so once a
			// transient outage heals, lookups return to the pre-failure
			// cache entries verbatim.
			key += m.mask.Key(m.base.NumPEs())
		}
		if e, ok := m.cache.get(key); ok {
			m.schedule, m.speeds = e.schedule, e.speeds
			// The cached mapping may differ from the incumbent's: bump the
			// generation so the warm path rebinds its DAG model before the
			// next partial stretch.
			m.mapGen++
			m.calls++
			m.mm.calls.Inc()
			m.mm.cacheHits.Inc()
			m.noteScheduleState(guard)
			m.emitReschedule(reason, key, true, false)
			return nil
		}
		m.mm.cacheMisses.Inc()
	}
	// Cache miss (or caching off): try the incremental path before paying
	// for a full DLS + stretch pipeline.
	if ok, err := m.tryWarmStart(reason, guard); err != nil {
		return err
	} else if ok {
		return nil
	}
	dlsStart := time.Now()
	m.dlsWS.Cancel = m.cancel
	s, err := sched.DLSInto(m.a, m.p, m.opts.Sched, m.dlsWS)
	if err != nil {
		return err
	}
	m.span("dls", m.mm.pipeDLS, dlsStart)
	stretchStart := time.Now()
	if m.opts.PerScenario {
		sp, err := stretch.PerScenarioGuardedCancel(s, m.opts.DVFS, guard, stretch.CancelFunc(m.cancel))
		if err != nil {
			return err
		}
		m.speeds = sp
		m.span("stretch", m.mm.pipeStretch, stretchStart)
	} else {
		sr, err := stretch.HeuristicGuardedCancel(s, m.opts.DVFS, m.opts.MaxPaths, guard, stretch.CancelFunc(m.cancel))
		if err != nil {
			return err
		}
		m.speeds = nil
		m.span("stretch", m.mm.pipeStretch, stretchStart)
		if m.rec != nil {
			// Stretch-pass summary: how much slack Figure 2 distributed and
			// how much of it the (guarded, possibly discrete) DVFS model
			// actually converted. The per-scenario path has no single
			// summary — its detail is a scenarios × tasks table.
			m.emit(telemetry.Event{
				Kind:       telemetry.KindStretch,
				Instance:   m.instances,
				Tasks:      sr.Stretched,
				SlackFound: sr.SlackFound,
				SlackUsed:  sr.SlackUsed,
				Energy:     sr.ExpectedEnergy,
				Makespan:   sr.WorstDelay,
				Cause:      m.causeSeq,
			})
		}
	}
	m.schedule = s
	if m.cache != nil {
		m.cache.put(key, s, m.speeds)
	}
	m.mapGen++
	m.calls++
	m.mm.calls.Inc()
	m.noteScheduleState(guard)
	m.emitReschedule(reason, key, false, false)
	return nil
}

// emitReschedule records the re-scheduling decision event and consumes the
// pipeline's trigger seq (every reschedule path ends here, so the cause never
// leaks into an unrelated later decision). Drift-triggered decisions carry
// the threshold that tripped them. The hex rendering of the cache key (raw
// probability bits) is only materialized when a recorder is listening.
func (m *Manager) emitReschedule(reason, key string, hit, warm bool) {
	cause := m.causeSeq
	m.causeSeq = 0
	if m.rec == nil {
		return
	}
	ev := telemetry.Event{
		Kind:     telemetry.KindReschedule,
		Instance: m.instances,
		Reason:   reason,
		CacheHit: hit,
		Warm:     warm,
		Calls:    m.calls,
		Cause:    cause,
	}
	if reason == "drift" || reason == "drift+breaker" {
		ev.Threshold = m.opts.Threshold
	}
	if key != "" {
		ev.Key = fmt.Sprintf("%x", key)
	}
	m.emit(ev)
}

// Schedule returns the current schedule (read-only use).
func (m *Manager) Schedule() *sched.Schedule { return m.schedule }

// Metrics returns the registry the manager publishes to — the one passed via
// Options.Metrics, or the manager's private registry otherwise. Never nil.
func (m *Manager) Metrics() *telemetry.Registry { return m.metrics }

// Instances returns the number of instances processed so far.
func (m *Manager) Instances() int { return m.instances }

// ScenarioSpeeds returns the scenario-conditioned speed table of the current
// schedule, or nil outside PerScenario mode (read-only use).
func (m *Manager) ScenarioSpeeds() *stretch.ScenarioSpeeds { return m.speeds }

// Calls returns the number of adaptive re-scheduling invocations so far.
func (m *Manager) Calls() int { return m.calls }

// CacheStats returns the schedule cache counters (zero-valued when caching
// is disabled). The initial schedule counts as the first miss.
func (m *Manager) CacheStats() CacheStats {
	if m.cache == nil {
		return CacheStats{}
	}
	return m.cache.snapshot()
}

// Probs returns the current probability estimate for the fork with the
// given dense index, or nil when the index is out of range. The returned
// slice is a copy — mutating it never touches the manager's internal state.
func (m *Manager) Probs(forkIdx int) []float64 {
	forks := m.g.Forks()
	if forkIdx < 0 || forkIdx >= len(forks) {
		return nil
	}
	return m.g.BranchProbs(forks[forkIdx])
}

// StepCtx is Step under a context: the context's cancellation/deadline is
// polled at cooperative checkpoints inside the reschedule pipeline — once per
// DLS placement round, once per stretched task (single-speed heuristic and
// warm partial pass), and once per scenario in the per-scenario fan-out — so
// an expired request aborts within one unit of pipeline work rather than
// running to completion. The returned error is the context's own
// (context.DeadlineExceeded / context.Canceled), unwrapped, so callers can
// errors.Is it directly.
//
// Guarantees on cancellation: the incumbent schedule is untouched (a new
// schedule is only adopted when the pipeline completes), and a call that
// completed before the context expired is bit-for-bit identical to an
// uncancelled one. The estimator, however, observed this step's decisions
// before the pipeline ran, so a cancelled step leaves the manager
// mid-instance — Instances() is not advanced, and re-Stepping the same
// vector would double-observe it. Callers that need deterministic state
// after a cancellation rebuild the manager by replaying their decision log
// (see internal/serve).
func (m *Manager) StepCtx(ctx context.Context, decisions []int) (StepResult, error) {
	if err := ctx.Err(); err != nil {
		return StepResult{}, err
	}
	m.cancel = ctx.Err
	defer func() { m.cancel = nil }()
	return m.Step(decisions)
}

// Step processes one CTG instance: replay it under the current schedule,
// shift the decisions of the branch forks that actually executed into their
// windows, and re-run the online algorithm if the estimate drifted past the
// threshold.
func (m *Manager) Step(decisions []int) (StepResult, error) {
	si, err := m.a.ScenarioForDecisions(decisions)
	if err != nil {
		return StepResult{}, err
	}
	idx := m.instances
	remapped := false
	if m.opts.Failures != nil {
		// Availability changes are detected at instance boundaries: compare
		// the timeline's mask for this instance against the one in force and
		// re-map onto the survivor set on any difference.
		cur := m.opts.Failures.MaskAt(idx)
		if !cur.Equal(m.mask, m.base.NumPEs()) {
			if err := m.applyTopology(cur, idx); err != nil {
				return StepResult{}, err
			}
			remapped = true
		}
	}
	if m.rec != nil {
		m.startSeq = m.emit(telemetry.Event{Kind: telemetry.KindInstanceStart, Instance: idx, Scenario: si})
		// Estimate seqs are per-step: forks inactive this instance must not
		// leave a stale id for the drift trigger to pick up.
		if m.estSeqs == nil {
			m.estSeqs = make([]uint64, len(m.g.Forks()))
		}
		for i := range m.estSeqs {
			m.estSeqs[i] = 0
		}
	}
	var cfg sim.Config
	if m.speeds != nil {
		cfg.ScenarioSpeeds = m.speeds.Speeds
	}
	if m.opts.Faults != nil {
		cfg.Faults = m.opts.Faults
		cfg.FaultInstance = m.faultInstance
		m.faultInstance++
	}
	cfg.Recorder = m.rec
	cfg.InstanceID = idx
	cfg.Seq = m.seq
	cfg.Cause = m.startSeq
	inst, err := sim.ReplayCfg(m.schedule, si, cfg)
	if err != nil {
		return StepResult{}, err
	}
	res := StepResult{Instance: inst, Degraded: m.degraded, Remapped: remapped, Rescheduled: remapped}
	primaryMiss := !inst.DeadlineMet
	var fbSeq uint64 // the fallback decision, when one fired this step
	if primaryMiss && m.fallback != nil {
		// Recovery: re-run the instance at full speed on the worst-case
		// fallback schedule. The same fault instance applies — the overruns
		// that sank the primary run hit the fallback too, but without
		// stretching the timeline has the full static slack to absorb them.
		fcfg := cfg
		fcfg.ScenarioSpeeds = nil
		fcfg.Phase = telemetry.PhaseFallback
		fb, err := sim.ReplayCfg(m.fallback, si, fcfg)
		if err != nil {
			return StepResult{}, err
		}
		res.FallbackUsed = true
		res.Primary = inst
		res.Instance = fb
		m.activations++
		m.mm.fallbacks.Inc()
		if fb.DeadlineMet {
			m.missesAvoided++
			m.mm.missesAvoided.Inc()
		}
		if m.rec != nil {
			// Makespan is the fallback re-run's; Makespan2 keeps the failed
			// primary timeline for comparison. The cause is the primary
			// replay that missed (its overruns are the instance's
			// fault_overrun events).
			fbSeq = m.emit(telemetry.Event{
				Kind:      telemetry.KindFallback,
				Instance:  idx,
				Met:       fb.DeadlineMet,
				Makespan:  fb.Makespan,
				Makespan2: inst.Makespan,
				Phase:     telemetry.PhaseFallback,
				Cause:     m.startSeq,
			})
		}
	}
	// Only executed branch forks produce observable decisions.
	active := m.a.Scenario(inst.Scenario).Active
	for fi, fork := range m.g.Forks() {
		if !active.Get(int(fork)) {
			continue
		}
		if err := m.profiler.Observe(fi, decisions[fi]); err != nil {
			return StepResult{}, err
		}
	}
	res.Drift = m.profiler.MaxDrift()
	if m.rec != nil {
		// One window-estimate update per fork that actually executed (the
		// others observed nothing this instance).
		for fi, fork := range m.g.Forks() {
			if !active.Get(int(fork)) {
				continue
			}
			m.estSeqs[fi] = m.emit(telemetry.Event{
				Kind:     telemetry.KindEstimate,
				Instance: idx,
				Fork:     fi,
				Probs:    m.profiler.Estimate(fi),
				Drift:    res.Drift,
				Outcome:  decisions[fi],
				Cause:    m.startSeq,
			})
		}
	}
	prevLevel := m.guardLevel
	breakerMoved := false
	if m.fallback != nil {
		breakerMoved = m.recordPrimaryOutcome(primaryMiss)
	}
	var glSeq uint64 // the breaker move, when one fired this step
	if breakerMoved {
		m.mm.guardLevel.Set(float64(m.guardLevel))
		m.mm.maxGuardLevel.SetMax(float64(m.guardLevel))
		if m.rec != nil {
			// The breaker moved on this step's windowed outcome: chain to
			// the fallback when one fired (the miss that tipped the window),
			// to the instance otherwise (e.g. a relaxation on a clean run).
			cause := m.startSeq
			if fbSeq != 0 {
				cause = fbSeq
			}
			glSeq = m.emit(telemetry.Event{
				Kind:      telemetry.KindGuardLevel,
				Instance:  idx,
				Level:     m.guardLevel,
				Level2:    prevLevel,
				Threshold: m.opts.MissRateBound,
				Cause:     cause,
			})
		}
	}
	// Update only the branches whose estimate crossed the threshold (the
	// paper's "the branch probability is updated with this new value");
	// any update triggers one re-scheduling. The comparison is inclusive:
	// see FilteredSeries for why "crosses" must admit equality.
	updated := false
	var trigSeq uint64 // the first threshold-crossing fork's estimate event
	for fi, fork := range m.g.Forks() {
		crossed := false
		for k := 0; k < m.profiler.NumOutcomes(fi); k++ {
			d := m.profiler.EstimateAt(fi, k) - m.g.BranchProb(fork, k)
			if d < 0 {
				d = -d
			}
			if d >= m.opts.Threshold-1e-12 {
				crossed = true
				break
			}
		}
		if crossed {
			if trigSeq == 0 && m.rec != nil {
				trigSeq = m.estSeqs[fi]
			}
			m.probsBuf = m.profiler.SmoothedEstimateInto(fi, m.probsBuf[:0])
			if err := m.g.SetBranchProbs(fork, m.probsBuf); err != nil {
				return StepResult{}, err
			}
			updated = true
		}
	}
	if updated {
		m.a.Reweight()
	}
	if updated || breakerMoved {
		reason := "drift"
		switch {
		case updated && breakerMoved:
			reason = "drift+breaker"
		case breakerMoved:
			reason = "breaker"
		}
		// The decision's provenance: the estimate that crossed the
		// threshold when drift triggered (or contributed), else the breaker
		// move that forced the re-stretch.
		if updated && trigSeq != 0 {
			m.causeSeq = trigSeq
		} else if breakerMoved {
			m.causeSeq = glSeq
		}
		if err := m.reschedule(reason); err != nil {
			return StepResult{}, err
		}
		res.Rescheduled = true
	}
	res.GuardLevel = m.guardLevel
	m.instances++
	m.mm.instances.Inc()
	if m.degraded {
		m.degradedInsts++
		if !res.Instance.DeadlineMet {
			m.topoMisses++
		}
	}
	if !res.Instance.DeadlineMet {
		m.mm.misses.Inc()
		m.missesTotal++
	}
	if res.Instance.Overruns > 0 {
		m.mm.overruns.Add(int64(res.Instance.Overruns))
	}
	m.mm.lateness.Observe(res.Instance.Lateness)
	m.mm.makespan.Observe(res.Instance.Makespan)
	m.mm.drift.Set(res.Drift)
	m.mm.missRate.Set(float64(m.missesTotal) / float64(m.instances))
	var finSeq uint64
	if m.rec != nil {
		finSeq = m.emit(telemetry.Event{
			Kind:        telemetry.KindInstanceFinish,
			Instance:    idx,
			Scenario:    res.Instance.Scenario,
			Energy:      res.Instance.Energy,
			Makespan:    res.Instance.Makespan,
			Lateness:    res.Instance.Lateness,
			Met:         res.Instance.DeadlineMet,
			Overruns:    res.Instance.Overruns,
			Rescheduled: res.Rescheduled,
			Drift:       res.Drift,
			Level:       m.guardLevel,
			Cause:       m.startSeq,
		})
	}
	// Sample the time-series store at this instance boundary (the sim-time
	// axis), chaining any alert firing to the instance_finish above.
	if m.opts.Series != nil {
		m.opts.Series.Tick(idx, m.rec, m.seq, finSeq)
	}
	return res, nil
}

// recordPrimaryOutcome shifts one primary-schedule outcome into the circuit
// breaker's sliding window and moves the escalation level when the windowed
// miss rate crosses the configured bounds. It reports whether the level
// changed (which requires a re-stretch at the new effective guard). The
// window is cleared on every transition, giving the breaker hysteresis: a
// fresh window must fill before the next move.
func (m *Manager) recordPrimaryOutcome(miss bool) bool {
	if m.missFill == len(m.missRing) {
		if m.missRing[m.missCursor] {
			m.missCount--
		}
	} else {
		m.missFill++
	}
	m.missRing[m.missCursor] = miss
	if miss {
		m.missCount++
	}
	m.missCursor = (m.missCursor + 1) % len(m.missRing)
	if m.missFill < len(m.missRing) {
		return false
	}
	rate := float64(m.missCount) / float64(len(m.missRing))
	m.mm.missRateWindow.Set(rate)
	switch {
	case rate > m.opts.MissRateBound && m.guardLevel < maxGuardLevel:
		m.guardLevel++
	case rate <= m.opts.MissRateBound/2 && m.guardLevel > 0:
		m.guardLevel--
	default:
		return false
	}
	if m.guardLevel > m.maxLevelSeen {
		m.maxLevelSeen = m.guardLevel
	}
	m.missFill, m.missCursor, m.missCount = 0, 0, 0
	for i := range m.missRing {
		m.missRing[i] = false
	}
	return true
}

// Run processes a whole decision-vector sequence and aggregates statistics.
func (m *Manager) Run(vectors [][]int) (RunStats, error) {
	var agg runAgg
	for _, v := range vectors {
		r, err := m.Step(v)
		if err != nil {
			return agg.st, err
		}
		agg.add(r.Instance)
	}
	st := agg.finish()
	st.Calls = m.calls
	cs := m.CacheStats()
	st.CacheHits, st.CacheMisses = cs.Hits, cs.Misses
	st.WarmStarts, st.WarmFallbacks = m.warm.starts, m.warm.fallbacks
	st.FallbackActivations = m.activations
	st.MissesAvoided = m.missesAvoided
	st.MaxGuardLevel = m.maxLevelSeen
	st.DegradedInstances = m.degradedInsts
	st.Remaps = m.remaps
	st.TopologyMisses = m.topoMisses
	return st, nil
}

// RunStatic replays a decision-vector sequence against a fixed schedule —
// the paper's non-adaptive "online algorithm", which profiles once (the
// probabilities baked into the schedule) and never adapts.
func RunStatic(s *sched.Schedule, vectors [][]int) (RunStats, error) {
	return RunStaticCfg(s, vectors, sim.Config{})
}

// RunStaticCfg is RunStatic with simulator options — in particular a fault
// plan, whose instance cursor advances once per vector (vector i is plan
// instance i, matching the adaptive manager's cursor so the two runtimes
// face the identical perturbation sequence).
func RunStaticCfg(s *sched.Schedule, vectors [][]int, cfg sim.Config) (RunStats, error) {
	var agg runAgg
	for i, v := range vectors {
		si, err := s.A.ScenarioForDecisions(v)
		if err != nil {
			return agg.st, err
		}
		ci := cfg
		if ci.Faults != nil {
			ci.FaultInstance = i
		}
		ci.InstanceID = i
		if ci.Recorder != nil {
			ci.Recorder.Record(telemetry.Event{Kind: telemetry.KindInstanceStart, Instance: i, Scenario: si})
		}
		inst, err := sim.ReplayCfg(s, si, ci)
		if err != nil {
			return agg.st, err
		}
		if ci.Recorder != nil {
			ci.Recorder.Record(telemetry.Event{
				Kind:     telemetry.KindInstanceFinish,
				Instance: i,
				Scenario: inst.Scenario,
				Energy:   inst.Energy,
				Makespan: inst.Makespan,
				Lateness: inst.Lateness,
				Met:      inst.DeadlineMet,
				Overruns: inst.Overruns,
			})
		}
		agg.add(inst)
	}
	return agg.finish(), nil
}

// RunStaticFailover replays a decision-vector sequence against a fixed
// schedule while the hardware degrades per the failure timeline — the static
// baseline of the failover campaign. The static runtime cannot re-map: when
// the mask at an instance hides a PE hosting one of the scenario's active
// tasks, or a link carrying one of its transfers, the instance deadlocks.
// By convention a deadlocked instance counts as a deadline miss with
// lateness equal to one full deadline (the work never completes; charging
// exactly one period keeps the lateness totals finite and comparable) and
// the nominal replay's energy (the dispatch is attempted, then stalls); it
// also increments TopologyMisses. Instances whose active set happens to
// avoid the masked hardware execute normally.
func RunStaticFailover(s *sched.Schedule, vectors [][]int, tl *faults.Timeline, cfg sim.Config) (RunStats, error) {
	if tl == nil {
		return RunStaticCfg(s, vectors, cfg)
	}
	if tl.NumPEs() != s.P.NumPEs() {
		return RunStats{}, fmt.Errorf("core: failure timeline sized for %d PEs, platform has %d",
			tl.NumPEs(), s.P.NumPEs())
	}
	deadline := s.G.Deadline()
	var agg runAgg
	var degraded, topoMisses int
	for i, v := range vectors {
		si, err := s.A.ScenarioForDecisions(v)
		if err != nil {
			return agg.st, err
		}
		ci := cfg
		if ci.Faults != nil {
			ci.FaultInstance = i
		}
		ci.InstanceID = i
		inst, err := sim.ReplayCfg(s, si, ci)
		if err != nil {
			return agg.st, err
		}
		mask := tl.MaskAt(i)
		if !mask.IsFull() {
			degraded++
			if staticDeadlocked(s, si, mask) {
				inst.DeadlineMet = false
				inst.Lateness = deadline
				inst.Makespan = deadline
				topoMisses++
			}
		}
		agg.add(inst)
	}
	st := agg.finish()
	st.DegradedInstances = degraded
	st.TopologyMisses = topoMisses
	return st, nil
}

// staticDeadlocked reports whether the scenario's execution under the fixed
// schedule touches masked-out hardware: an active task placed on a dead PE,
// or an active cross-PE transfer routed over a down link.
func staticDeadlocked(s *sched.Schedule, scenario int, mask platform.Mask) bool {
	active := s.A.Scenario(scenario).Active
	for t := 0; t < s.G.NumTasks(); t++ {
		if active.Get(t) && !mask.PEAlive(s.PE[t]) {
			return true
		}
	}
	for ei, e := range s.G.Edges() {
		if s.CommStart[ei] == sched.LocalComm {
			continue
		}
		if active.Get(int(e.From)) && active.Get(int(e.To)) &&
			!mask.LinkUp(s.PE[e.From], s.PE[e.To]) {
			return true
		}
	}
	return false
}

// TightenDeadline rebuilds the graph with deadline = factor × the nominal
// (full-speed) makespan of a modified-DLS schedule. The paper's experiments
// fix deadlines relative to the optimal schedule length (e.g. the cruise
// controller uses double the optimum); this helper reproduces that setup.
func TightenDeadline(g *ctg.Graph, p *platform.Platform, factor float64) (*ctg.Graph, error) {
	if !(factor > 0) {
		return nil, fmt.Errorf("core: deadline factor must be positive, got %v", factor)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		return nil, err
	}
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		return nil, err
	}
	return g.WithDeadline(factor * s.Makespan)
}

// BuildOnline builds the non-adaptive online schedule for a graph whose
// branch probabilities hold the profiled values: modified DLS followed by
// the stretching heuristic.
func BuildOnline(g *ctg.Graph, p *platform.Platform, opts Options) (*sched.Schedule, error) {
	opts.applyDefaults()
	a, err := ctg.Analyze(g)
	if err != nil {
		return nil, err
	}
	s, err := sched.DLS(a, p, opts.Sched)
	if err != nil {
		return nil, err
	}
	if _, err := stretch.Heuristic(s, opts.DVFS, opts.MaxPaths); err != nil {
		return nil, err
	}
	return s, nil
}
