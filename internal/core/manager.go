package core

import (
	"fmt"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/sim"
	"ctgdvfs/internal/stretch"
)

// Options configures the adaptive framework.
type Options struct {
	// Window is the sliding-window length L. The zero value selects
	// DefaultWindow; to pass a literal value — including an invalid zero,
	// which New rejects explicitly — use SetWindow.
	Window int
	// Threshold is the drift threshold T. The zero value selects
	// DefaultThreshold; a genuine T = 0 (any observed drift triggers
	// re-scheduling, i.e. re-schedule on every instance) is therefore not
	// expressible by assignment — use SetThreshold(0).
	Threshold float64
	// DVFS is the speed-scaling model (default continuous).
	DVFS platform.DVFS
	// Sched selects the mapping/ordering algorithm (default the paper's
	// modified DLS).
	Sched sched.Options
	// MaxPaths caps the stretching path model (default
	// ctg.DefaultMaxPaths).
	MaxPaths int
	// PerScenario replaces the paper's single-speed stretching with the
	// scenario-conditioned extension (stretch.PerScenario): every
	// re-schedule computes a speed table indexed by leaf scenario, and
	// replay dispatches each task at the speed of its realized knowledge
	// class. Strictly more energy-efficient at the cost of a
	// scenarios × tasks table per schedule.
	PerScenario bool
	// CacheSize bounds the memoized schedule cache (in schedules). The
	// zero value selects DefaultCacheSize; negative disables caching.
	// Cached schedules are exact: a hit returns bit-for-bit what
	// re-running DLS + stretching would produce, so caching never changes
	// energies or call counts — only the per-decision overhead.
	CacheSize int

	// thresholdSet / windowSet record explicit SetThreshold / SetWindow
	// calls, so literal zeros are distinguishable from unset fields.
	thresholdSet bool
	windowSet    bool
}

// SetThreshold sets the drift threshold to a literal value, including a
// genuine T = 0 — the "always re-schedule" configuration the zero-as-default
// convention cannot express.
func (o *Options) SetThreshold(t float64) {
	o.Threshold = t
	o.thresholdSet = true
}

// SetWindow sets the sliding-window length to a literal value. Unlike plain
// assignment, an explicit 0 is passed through to validation (and rejected)
// instead of being silently replaced by the default.
func (o *Options) SetWindow(w int) {
	o.Window = w
	o.windowSet = true
}

func (o *Options) applyDefaults() {
	if o.Window == 0 && !o.windowSet {
		o.Window = DefaultWindow
	}
	if o.Threshold == 0 && !o.thresholdSet {
		o.Threshold = DefaultThreshold
	}
	if o.Sched == (sched.Options{}) {
		o.Sched = sched.Modified()
	}
	if o.CacheSize == 0 {
		o.CacheSize = DefaultCacheSize
	}
}

// Manager is the runtime of the adaptive framework: it owns the current
// schedule, replays incoming CTG instances against it, feeds the observed
// branch decisions to the profiler, and re-runs the online algorithm
// whenever the probability estimates drift past the threshold.
type Manager struct {
	opts Options

	g *ctg.Graph // current probability estimates live here
	a *ctg.Analysis
	p *platform.Platform

	profiler *Profiler
	schedule *sched.Schedule
	// speeds is the scenario-conditioned table when opts.PerScenario is
	// set; nil otherwise.
	speeds *stretch.ScenarioSpeeds
	// cache memoizes (mapping, order, speeds) by exact probability state;
	// nil when disabled.
	cache *scheduleCache

	calls int // re-scheduling invocations (the paper's "# of calls")
}

// StepResult reports one processed CTG instance.
type StepResult struct {
	Instance    sim.Instance
	Rescheduled bool
	// Drift is the profiler drift measured after observing this
	// instance's branch decisions.
	Drift float64
}

// RunStats aggregates a sequence of instances.
type RunStats struct {
	Instances   int
	TotalEnergy float64
	// AvgEnergy is TotalEnergy / Instances.
	AvgEnergy   float64
	AvgMakespan float64
	Misses      int
	// Calls counts online re-scheduling invocations (adaptive runs only).
	Calls int
	// CacheHits/CacheMisses report how many of those invocations (plus the
	// initial schedule) were served from the memoized schedule cache
	// versus computed fresh. Zero when caching is disabled.
	CacheHits, CacheMisses int
}

// New builds an adaptive manager. The graph's current branch probabilities
// act as the initial profile; the initial schedule is built from them. The
// graph is cloned, so the caller's instance is never mutated.
func New(g *ctg.Graph, p *platform.Platform, opts Options) (*Manager, error) {
	opts.applyDefaults()
	if opts.Threshold < 0 || opts.Threshold > 1 {
		return nil, fmt.Errorf("core: threshold must be in [0,1], got %v", opts.Threshold)
	}
	m := &Manager{opts: opts, g: g.Clone(), p: p}
	if opts.CacheSize > 0 {
		m.cache = newScheduleCache(opts.CacheSize)
	}
	a, err := ctg.Analyze(m.g)
	if err != nil {
		return nil, err
	}
	m.a = a
	m.profiler, err = NewProfiler(m.g, opts.Window)
	if err != nil {
		return nil, err
	}
	if err := m.reschedule(); err != nil {
		return nil, err
	}
	m.calls = 0 // the initial schedule does not count as an adaptive call
	return m, nil
}

// reschedule runs the online algorithm (DLS + stretching) with the graph's
// current probability estimates, consulting the schedule cache first: if the
// exact probability state was scheduled for before, the memoized (mapping,
// order, speeds) is reused. Hits and misses both count as a call — the cache
// changes the cost of an invocation, never the invocation count or its
// result.
func (m *Manager) reschedule() error {
	var key string
	if m.cache != nil {
		key = m.probKey()
		if e, ok := m.cache.get(key); ok {
			m.schedule, m.speeds = e.schedule, e.speeds
			m.calls++
			return nil
		}
	}
	s, err := sched.DLS(m.a, m.p, m.opts.Sched)
	if err != nil {
		return err
	}
	if m.opts.PerScenario {
		sp, err := stretch.PerScenario(s, m.opts.DVFS)
		if err != nil {
			return err
		}
		m.speeds = sp
	} else {
		if _, err := stretch.Heuristic(s, m.opts.DVFS, m.opts.MaxPaths); err != nil {
			return err
		}
		m.speeds = nil
	}
	m.schedule = s
	if m.cache != nil {
		m.cache.put(key, s, m.speeds)
	}
	m.calls++
	return nil
}

// Schedule returns the current schedule (read-only use).
func (m *Manager) Schedule() *sched.Schedule { return m.schedule }

// Calls returns the number of adaptive re-scheduling invocations so far.
func (m *Manager) Calls() int { return m.calls }

// CacheStats returns the schedule cache counters (zero-valued when caching
// is disabled). The initial schedule counts as the first miss.
func (m *Manager) CacheStats() CacheStats {
	if m.cache == nil {
		return CacheStats{}
	}
	return m.cache.snapshot()
}

// Probs returns the current probability estimate for the fork with the
// given dense index.
func (m *Manager) Probs(forkIdx int) []float64 {
	return m.g.BranchProbs(m.g.Forks()[forkIdx])
}

// Step processes one CTG instance: replay it under the current schedule,
// shift the decisions of the branch forks that actually executed into their
// windows, and re-run the online algorithm if the estimate drifted past the
// threshold.
func (m *Manager) Step(decisions []int) (StepResult, error) {
	si, err := m.a.ScenarioForDecisions(decisions)
	if err != nil {
		return StepResult{}, err
	}
	var cfg sim.Config
	if m.speeds != nil {
		cfg.ScenarioSpeeds = m.speeds.Speeds
	}
	inst, err := sim.ReplayCfg(m.schedule, si, cfg)
	if err != nil {
		return StepResult{}, err
	}
	// Only executed branch forks produce observable decisions.
	active := m.a.Scenario(inst.Scenario).Active
	for fi, fork := range m.g.Forks() {
		if !active.Get(int(fork)) {
			continue
		}
		if err := m.profiler.Observe(fi, decisions[fi]); err != nil {
			return StepResult{}, err
		}
	}
	res := StepResult{Instance: inst, Drift: m.profiler.MaxDrift()}
	// Update only the branches whose estimate crossed the threshold (the
	// paper's "the branch probability is updated with this new value");
	// any update triggers one re-scheduling. The comparison is inclusive:
	// see FilteredSeries for why "crosses" must admit equality.
	updated := false
	for fi, fork := range m.g.Forks() {
		cur := m.g.BranchProbs(fork)
		est := m.profiler.Estimate(fi)
		crossed := false
		for k := range cur {
			d := est[k] - cur[k]
			if d < 0 {
				d = -d
			}
			if d >= m.opts.Threshold-1e-12 {
				crossed = true
				break
			}
		}
		if crossed {
			if err := m.g.SetBranchProbs(fork, m.profiler.SmoothedEstimate(fi)); err != nil {
				return StepResult{}, err
			}
			updated = true
		}
	}
	if updated {
		m.a.Reweight()
		if err := m.reschedule(); err != nil {
			return StepResult{}, err
		}
		res.Rescheduled = true
	}
	return res, nil
}

// Run processes a whole decision-vector sequence and aggregates statistics.
func (m *Manager) Run(vectors [][]int) (RunStats, error) {
	var st RunStats
	for _, v := range vectors {
		r, err := m.Step(v)
		if err != nil {
			return st, err
		}
		st.Instances++
		st.TotalEnergy += r.Instance.Energy
		st.AvgMakespan += r.Instance.Makespan
		if !r.Instance.DeadlineMet {
			st.Misses++
		}
	}
	st.Calls = m.calls
	cs := m.CacheStats()
	st.CacheHits, st.CacheMisses = cs.Hits, cs.Misses
	if st.Instances > 0 {
		st.AvgEnergy = st.TotalEnergy / float64(st.Instances)
		st.AvgMakespan /= float64(st.Instances)
	}
	return st, nil
}

// RunStatic replays a decision-vector sequence against a fixed schedule —
// the paper's non-adaptive "online algorithm", which profiles once (the
// probabilities baked into the schedule) and never adapts.
func RunStatic(s *sched.Schedule, vectors [][]int) (RunStats, error) {
	var st RunStats
	for _, v := range vectors {
		inst, err := sim.ReplayDecisions(s, v)
		if err != nil {
			return st, err
		}
		st.Instances++
		st.TotalEnergy += inst.Energy
		st.AvgMakespan += inst.Makespan
		if !inst.DeadlineMet {
			st.Misses++
		}
	}
	if st.Instances > 0 {
		st.AvgEnergy = st.TotalEnergy / float64(st.Instances)
		st.AvgMakespan /= float64(st.Instances)
	}
	return st, nil
}

// TightenDeadline rebuilds the graph with deadline = factor × the nominal
// (full-speed) makespan of a modified-DLS schedule. The paper's experiments
// fix deadlines relative to the optimal schedule length (e.g. the cruise
// controller uses double the optimum); this helper reproduces that setup.
func TightenDeadline(g *ctg.Graph, p *platform.Platform, factor float64) (*ctg.Graph, error) {
	if !(factor > 0) {
		return nil, fmt.Errorf("core: deadline factor must be positive, got %v", factor)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		return nil, err
	}
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		return nil, err
	}
	return g.WithDeadline(factor * s.Makespan)
}

// BuildOnline builds the non-adaptive online schedule for a graph whose
// branch probabilities hold the profiled values: modified DLS followed by
// the stretching heuristic.
func BuildOnline(g *ctg.Graph, p *platform.Platform, opts Options) (*sched.Schedule, error) {
	opts.applyDefaults()
	a, err := ctg.Analyze(g)
	if err != nil {
		return nil, err
	}
	s, err := sched.DLS(a, p, opts.Sched)
	if err != nil {
		return nil, err
	}
	if _, err := stretch.Heuristic(s, opts.DVFS, opts.MaxPaths); err != nil {
		return nil, err
	}
	return s, nil
}
