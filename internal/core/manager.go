package core

import (
	"fmt"
	"math"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/faults"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/sim"
	"ctgdvfs/internal/stretch"
)

// Circuit-breaker defaults: the miss-rate window and the windowed miss-rate
// bound above which the guard band escalates.
const (
	DefaultMissWindow    = 50
	DefaultMissRateBound = 0.1
	// maxGuardLevel caps the circuit breaker's escalation; at level k the
	// effective guard is 1 − (1 − base)/2^k, so level 6 already reserves
	// over 98% of the slack.
	maxGuardLevel = 6
)

// Options configures the adaptive framework.
type Options struct {
	// Window is the sliding-window length L. The zero value selects
	// DefaultWindow; to pass a literal value — including an invalid zero,
	// which New rejects explicitly — use SetWindow.
	Window int
	// Threshold is the drift threshold T. The zero value selects
	// DefaultThreshold; a genuine T = 0 (any observed drift triggers
	// re-scheduling, i.e. re-schedule on every instance) is therefore not
	// expressible by assignment — use SetThreshold(0).
	Threshold float64
	// DVFS is the speed-scaling model (default continuous).
	DVFS platform.DVFS
	// Sched selects the mapping/ordering algorithm (default the paper's
	// modified DLS).
	Sched sched.Options
	// MaxPaths caps the stretching path model (default
	// ctg.DefaultMaxPaths).
	MaxPaths int
	// PerScenario replaces the paper's single-speed stretching with the
	// scenario-conditioned extension (stretch.PerScenario): every
	// re-schedule computes a speed table indexed by leaf scenario, and
	// replay dispatches each task at the speed of its realized knowledge
	// class. Strictly more energy-efficient at the cost of a
	// scenarios × tasks table per schedule.
	PerScenario bool
	// CacheSize bounds the memoized schedule cache (in schedules). The
	// zero value selects DefaultCacheSize; negative disables caching.
	// Cached schedules are exact: a hit returns bit-for-bit what
	// re-running DLS + stretching would produce, so caching never changes
	// energies or call counts — only the per-decision overhead.
	CacheSize int

	// GuardBand ∈ [0,1] reserves that fraction of every task's slack as
	// overrun margin during stretching (stretch.HeuristicGuarded /
	// PerScenarioGuarded). Zero reproduces the paper's stretching exactly.
	GuardBand float64
	// Faults, when non-nil, perturbs the replay of every Step with the
	// plan's execution-time factors; the fault-instance cursor advances
	// once per processed instance, so a run over N vectors consumes plan
	// instances 0..N−1 deterministically.
	Faults *faults.Plan
	// Recovery enables the fault-tolerance layer: a precomputed full-speed
	// worst-case fallback schedule (an instance whose primary replay
	// misses the deadline is re-run on it), plus a miss-rate circuit
	// breaker — when more than MissRateBound of the last MissWindow
	// instances missed on the primary schedule, the guard band escalates
	// (halving the remaining unguarded slack per level); when the windowed
	// rate falls to MissRateBound/2 it relaxes one level.
	Recovery bool
	// MissWindow is the circuit breaker's sliding-window length; zero
	// selects DefaultMissWindow.
	MissWindow int
	// MissRateBound is the windowed primary miss rate that trips the
	// breaker; zero selects DefaultMissRateBound.
	MissRateBound float64

	// thresholdSet / windowSet record explicit SetThreshold / SetWindow
	// calls, so literal zeros are distinguishable from unset fields.
	thresholdSet bool
	windowSet    bool
}

// SetThreshold sets the drift threshold to a literal value, including a
// genuine T = 0 — the "always re-schedule" configuration the zero-as-default
// convention cannot express.
func (o *Options) SetThreshold(t float64) {
	o.Threshold = t
	o.thresholdSet = true
}

// SetWindow sets the sliding-window length to a literal value. Unlike plain
// assignment, an explicit 0 is passed through to validation (and rejected)
// instead of being silently replaced by the default.
func (o *Options) SetWindow(w int) {
	o.Window = w
	o.windowSet = true
}

func (o *Options) applyDefaults() {
	if o.Window == 0 && !o.windowSet {
		o.Window = DefaultWindow
	}
	if o.Threshold == 0 && !o.thresholdSet {
		o.Threshold = DefaultThreshold
	}
	if o.Sched == (sched.Options{}) {
		o.Sched = sched.Modified()
	}
	if o.CacheSize == 0 {
		o.CacheSize = DefaultCacheSize
	}
	if o.MissWindow == 0 {
		o.MissWindow = DefaultMissWindow
	}
	if o.MissRateBound == 0 {
		o.MissRateBound = DefaultMissRateBound
	}
}

// Manager is the runtime of the adaptive framework: it owns the current
// schedule, replays incoming CTG instances against it, feeds the observed
// branch decisions to the profiler, and re-runs the online algorithm
// whenever the probability estimates drift past the threshold.
type Manager struct {
	opts Options

	g *ctg.Graph // current probability estimates live here
	a *ctg.Analysis
	p *platform.Platform

	profiler *Profiler
	schedule *sched.Schedule
	// speeds is the scenario-conditioned table when opts.PerScenario is
	// set; nil otherwise.
	speeds *stretch.ScenarioSpeeds
	// cache memoizes (mapping, order, speeds) by exact probability state;
	// nil when disabled.
	cache *scheduleCache

	calls int // re-scheduling invocations (the paper's "# of calls")

	// Fault-tolerance state (inert unless Options.Recovery / Faults set).
	fallback      *sched.Schedule // precomputed full-speed worst-case schedule
	faultInstance int             // fault-plan cursor, advanced once per Step
	guardLevel    int             // circuit-breaker escalation level
	maxLevelSeen  int
	missRing      []bool // last MissWindow primary-schedule outcomes
	missCursor    int
	missFill      int
	missCount     int
	activations   int // fallback replays
	missesAvoided int // fallback replays that met the deadline
}

// StepResult reports one processed CTG instance.
type StepResult struct {
	// Instance is the execution that counts: the primary replay, or — when
	// FallbackUsed — the full-speed fallback re-run.
	Instance    sim.Instance
	Rescheduled bool
	// Drift is the profiler drift measured after observing this
	// instance's branch decisions.
	Drift float64

	// FallbackUsed reports that the primary replay missed the deadline and
	// the instance was re-run on the worst-case fallback schedule; Primary
	// then keeps the failed primary replay.
	FallbackUsed bool
	Primary      sim.Instance
	// GuardLevel is the circuit breaker's escalation level after this
	// step (0 = base guard band).
	GuardLevel int
}

// RunStats aggregates a sequence of instances.
type RunStats struct {
	Instances   int
	TotalEnergy float64
	// AvgEnergy is TotalEnergy / Instances.
	AvgEnergy   float64
	AvgMakespan float64
	Misses      int
	// Calls counts online re-scheduling invocations (adaptive runs only).
	Calls int
	// CacheHits/CacheMisses report how many of those invocations (plus the
	// initial schedule) were served from the memoized schedule cache
	// versus computed fresh. Zero when caching is disabled.
	CacheHits, CacheMisses int

	// FallbackActivations counts instances re-run on the full-speed
	// fallback schedule after a primary-schedule miss (Recovery mode).
	FallbackActivations int
	// MissesAvoided counts fallback activations whose re-run met the
	// deadline — misses the unguarded runtime would have taken.
	MissesAvoided int
	// TotalLateness sums the final deadline overshoot across instances
	// (after fallback, where enabled).
	TotalLateness float64
	// Overruns totals fault-plan perturbed task executions.
	Overruns int
	// MaxGuardLevel is the highest circuit-breaker escalation level the
	// run reached.
	MaxGuardLevel int
}

// New builds an adaptive manager. The graph's current branch probabilities
// act as the initial profile; the initial schedule is built from them. The
// graph is cloned, so the caller's instance is never mutated.
func New(g *ctg.Graph, p *platform.Platform, opts Options) (*Manager, error) {
	opts.applyDefaults()
	if opts.Threshold < 0 || opts.Threshold > 1 {
		return nil, fmt.Errorf("core: threshold must be in [0,1], got %v", opts.Threshold)
	}
	if math.IsNaN(opts.GuardBand) || opts.GuardBand < 0 || opts.GuardBand > 1 {
		return nil, fmt.Errorf("core: guard band must be in [0,1], got %v", opts.GuardBand)
	}
	if opts.MissWindow < 1 {
		return nil, fmt.Errorf("core: miss window must be ≥ 1, got %d", opts.MissWindow)
	}
	if math.IsNaN(opts.MissRateBound) || opts.MissRateBound <= 0 || opts.MissRateBound > 1 {
		return nil, fmt.Errorf("core: miss-rate bound must be in (0,1], got %v", opts.MissRateBound)
	}
	m := &Manager{opts: opts, g: g.Clone(), p: p}
	if opts.CacheSize > 0 {
		m.cache = newScheduleCache(opts.CacheSize)
	}
	a, err := ctg.Analyze(m.g)
	if err != nil {
		return nil, err
	}
	m.a = a
	m.profiler, err = NewProfiler(m.g, opts.Window)
	if err != nil {
		return nil, err
	}
	if opts.Recovery {
		// The worst-case fallback: plain full-speed DLS, never stretched,
		// built once and bypassing the probability-keyed cache entirely (it
		// is probability-independent by construction — every task runs at
		// speed 1 — so caching it under a probability key would be both
		// wrong and polluting).
		fb, err := sched.DLS(m.a, m.p, m.opts.Sched)
		if err != nil {
			return nil, err
		}
		m.fallback = fb
		m.missRing = make([]bool, opts.MissWindow)
	}
	if err := m.reschedule(); err != nil {
		return nil, err
	}
	m.calls = 0 // the initial schedule does not count as an adaptive call
	return m, nil
}

// effectiveGuard is the guard band after circuit-breaker escalation: level k
// halves the unguarded slack fraction k times, 1 − (1 − base)/2^k.
func (m *Manager) effectiveGuard() float64 {
	g := m.opts.GuardBand
	if m.guardLevel > 0 {
		g = 1 - (1-g)/float64(uint64(1)<<uint(m.guardLevel))
	}
	if g > 1 {
		g = 1
	}
	return g
}

// GuardLevel returns the circuit breaker's current escalation level.
func (m *Manager) GuardLevel() int { return m.guardLevel }

// Fallback returns the precomputed worst-case fallback schedule (nil unless
// Recovery is enabled).
func (m *Manager) Fallback() *sched.Schedule { return m.fallback }

// reschedule runs the online algorithm (DLS + stretching) with the graph's
// current probability estimates, consulting the schedule cache first: if the
// exact probability state was scheduled for before, the memoized (mapping,
// order, speeds) is reused. Hits and misses both count as a call — the cache
// changes the cost of an invocation, never the invocation count or its
// result.
func (m *Manager) reschedule() error {
	guard := m.effectiveGuard()
	var key string
	if m.cache != nil {
		key = m.probKey()
		if guard > 0 {
			// Guarded schedules live under distinct keys: the same
			// probability state stretched at different guard levels
			// produces different speeds, and a guard-0 entry must stay
			// bit-for-bit what the paper's runtime would reuse.
			key += guardKey(guard)
		}
		if e, ok := m.cache.get(key); ok {
			m.schedule, m.speeds = e.schedule, e.speeds
			m.calls++
			return nil
		}
	}
	s, err := sched.DLS(m.a, m.p, m.opts.Sched)
	if err != nil {
		return err
	}
	if m.opts.PerScenario {
		sp, err := stretch.PerScenarioGuarded(s, m.opts.DVFS, guard)
		if err != nil {
			return err
		}
		m.speeds = sp
	} else {
		if _, err := stretch.HeuristicGuarded(s, m.opts.DVFS, m.opts.MaxPaths, guard); err != nil {
			return err
		}
		m.speeds = nil
	}
	m.schedule = s
	if m.cache != nil {
		m.cache.put(key, s, m.speeds)
	}
	m.calls++
	return nil
}

// Schedule returns the current schedule (read-only use).
func (m *Manager) Schedule() *sched.Schedule { return m.schedule }

// Calls returns the number of adaptive re-scheduling invocations so far.
func (m *Manager) Calls() int { return m.calls }

// CacheStats returns the schedule cache counters (zero-valued when caching
// is disabled). The initial schedule counts as the first miss.
func (m *Manager) CacheStats() CacheStats {
	if m.cache == nil {
		return CacheStats{}
	}
	return m.cache.snapshot()
}

// Probs returns the current probability estimate for the fork with the
// given dense index, or nil when the index is out of range. The returned
// slice is a copy — mutating it never touches the manager's internal state.
func (m *Manager) Probs(forkIdx int) []float64 {
	forks := m.g.Forks()
	if forkIdx < 0 || forkIdx >= len(forks) {
		return nil
	}
	return m.g.BranchProbs(forks[forkIdx])
}

// Step processes one CTG instance: replay it under the current schedule,
// shift the decisions of the branch forks that actually executed into their
// windows, and re-run the online algorithm if the estimate drifted past the
// threshold.
func (m *Manager) Step(decisions []int) (StepResult, error) {
	si, err := m.a.ScenarioForDecisions(decisions)
	if err != nil {
		return StepResult{}, err
	}
	var cfg sim.Config
	if m.speeds != nil {
		cfg.ScenarioSpeeds = m.speeds.Speeds
	}
	if m.opts.Faults != nil {
		cfg.Faults = m.opts.Faults
		cfg.FaultInstance = m.faultInstance
		m.faultInstance++
	}
	inst, err := sim.ReplayCfg(m.schedule, si, cfg)
	if err != nil {
		return StepResult{}, err
	}
	res := StepResult{Instance: inst}
	primaryMiss := !inst.DeadlineMet
	if primaryMiss && m.fallback != nil {
		// Recovery: re-run the instance at full speed on the worst-case
		// fallback schedule. The same fault instance applies — the overruns
		// that sank the primary run hit the fallback too, but without
		// stretching the timeline has the full static slack to absorb them.
		fcfg := cfg
		fcfg.ScenarioSpeeds = nil
		fb, err := sim.ReplayCfg(m.fallback, si, fcfg)
		if err != nil {
			return StepResult{}, err
		}
		res.FallbackUsed = true
		res.Primary = inst
		res.Instance = fb
		m.activations++
		if fb.DeadlineMet {
			m.missesAvoided++
		}
	}
	// Only executed branch forks produce observable decisions.
	active := m.a.Scenario(inst.Scenario).Active
	for fi, fork := range m.g.Forks() {
		if !active.Get(int(fork)) {
			continue
		}
		if err := m.profiler.Observe(fi, decisions[fi]); err != nil {
			return StepResult{}, err
		}
	}
	res.Drift = m.profiler.MaxDrift()
	breakerMoved := false
	if m.fallback != nil {
		breakerMoved = m.recordPrimaryOutcome(primaryMiss)
	}
	// Update only the branches whose estimate crossed the threshold (the
	// paper's "the branch probability is updated with this new value");
	// any update triggers one re-scheduling. The comparison is inclusive:
	// see FilteredSeries for why "crosses" must admit equality.
	updated := false
	for fi, fork := range m.g.Forks() {
		cur := m.g.BranchProbs(fork)
		est := m.profiler.Estimate(fi)
		crossed := false
		for k := range cur {
			d := est[k] - cur[k]
			if d < 0 {
				d = -d
			}
			if d >= m.opts.Threshold-1e-12 {
				crossed = true
				break
			}
		}
		if crossed {
			if err := m.g.SetBranchProbs(fork, m.profiler.SmoothedEstimate(fi)); err != nil {
				return StepResult{}, err
			}
			updated = true
		}
	}
	if updated {
		m.a.Reweight()
	}
	if updated || breakerMoved {
		if err := m.reschedule(); err != nil {
			return StepResult{}, err
		}
		res.Rescheduled = true
	}
	res.GuardLevel = m.guardLevel
	return res, nil
}

// recordPrimaryOutcome shifts one primary-schedule outcome into the circuit
// breaker's sliding window and moves the escalation level when the windowed
// miss rate crosses the configured bounds. It reports whether the level
// changed (which requires a re-stretch at the new effective guard). The
// window is cleared on every transition, giving the breaker hysteresis: a
// fresh window must fill before the next move.
func (m *Manager) recordPrimaryOutcome(miss bool) bool {
	if m.missFill == len(m.missRing) {
		if m.missRing[m.missCursor] {
			m.missCount--
		}
	} else {
		m.missFill++
	}
	m.missRing[m.missCursor] = miss
	if miss {
		m.missCount++
	}
	m.missCursor = (m.missCursor + 1) % len(m.missRing)
	if m.missFill < len(m.missRing) {
		return false
	}
	rate := float64(m.missCount) / float64(len(m.missRing))
	switch {
	case rate > m.opts.MissRateBound && m.guardLevel < maxGuardLevel:
		m.guardLevel++
	case rate <= m.opts.MissRateBound/2 && m.guardLevel > 0:
		m.guardLevel--
	default:
		return false
	}
	if m.guardLevel > m.maxLevelSeen {
		m.maxLevelSeen = m.guardLevel
	}
	m.missFill, m.missCursor, m.missCount = 0, 0, 0
	for i := range m.missRing {
		m.missRing[i] = false
	}
	return true
}

// Run processes a whole decision-vector sequence and aggregates statistics.
func (m *Manager) Run(vectors [][]int) (RunStats, error) {
	var st RunStats
	for _, v := range vectors {
		r, err := m.Step(v)
		if err != nil {
			return st, err
		}
		st.Instances++
		st.TotalEnergy += r.Instance.Energy
		st.AvgMakespan += r.Instance.Makespan
		if !r.Instance.DeadlineMet {
			st.Misses++
		}
		st.TotalLateness += r.Instance.Lateness
		st.Overruns += r.Instance.Overruns
	}
	st.Calls = m.calls
	cs := m.CacheStats()
	st.CacheHits, st.CacheMisses = cs.Hits, cs.Misses
	st.FallbackActivations = m.activations
	st.MissesAvoided = m.missesAvoided
	st.MaxGuardLevel = m.maxLevelSeen
	if st.Instances > 0 {
		st.AvgEnergy = st.TotalEnergy / float64(st.Instances)
		st.AvgMakespan /= float64(st.Instances)
	}
	return st, nil
}

// RunStatic replays a decision-vector sequence against a fixed schedule —
// the paper's non-adaptive "online algorithm", which profiles once (the
// probabilities baked into the schedule) and never adapts.
func RunStatic(s *sched.Schedule, vectors [][]int) (RunStats, error) {
	return RunStaticCfg(s, vectors, sim.Config{})
}

// RunStaticCfg is RunStatic with simulator options — in particular a fault
// plan, whose instance cursor advances once per vector (vector i is plan
// instance i, matching the adaptive manager's cursor so the two runtimes
// face the identical perturbation sequence).
func RunStaticCfg(s *sched.Schedule, vectors [][]int, cfg sim.Config) (RunStats, error) {
	var st RunStats
	for i, v := range vectors {
		si, err := s.A.ScenarioForDecisions(v)
		if err != nil {
			return st, err
		}
		ci := cfg
		if ci.Faults != nil {
			ci.FaultInstance = i
		}
		inst, err := sim.ReplayCfg(s, si, ci)
		if err != nil {
			return st, err
		}
		st.Instances++
		st.TotalEnergy += inst.Energy
		st.AvgMakespan += inst.Makespan
		if !inst.DeadlineMet {
			st.Misses++
		}
		st.TotalLateness += inst.Lateness
		st.Overruns += inst.Overruns
	}
	if st.Instances > 0 {
		st.AvgEnergy = st.TotalEnergy / float64(st.Instances)
		st.AvgMakespan /= float64(st.Instances)
	}
	return st, nil
}

// TightenDeadline rebuilds the graph with deadline = factor × the nominal
// (full-speed) makespan of a modified-DLS schedule. The paper's experiments
// fix deadlines relative to the optimal schedule length (e.g. the cruise
// controller uses double the optimum); this helper reproduces that setup.
func TightenDeadline(g *ctg.Graph, p *platform.Platform, factor float64) (*ctg.Graph, error) {
	if !(factor > 0) {
		return nil, fmt.Errorf("core: deadline factor must be positive, got %v", factor)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		return nil, err
	}
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		return nil, err
	}
	return g.WithDeadline(factor * s.Makespan)
}

// BuildOnline builds the non-adaptive online schedule for a graph whose
// branch probabilities hold the profiled values: modified DLS followed by
// the stretching heuristic.
func BuildOnline(g *ctg.Graph, p *platform.Platform, opts Options) (*sched.Schedule, error) {
	opts.applyDefaults()
	a, err := ctg.Analyze(g)
	if err != nil {
		return nil, err
	}
	s, err := sched.DLS(a, p, opts.Sched)
	if err != nil {
		return nil, err
	}
	if _, err := stretch.Heuristic(s, opts.DVFS, opts.MaxPaths); err != nil {
		return nil, err
	}
	return s, nil
}
