package core

import (
	"math"
	"sort"
	"testing"

	"ctgdvfs/internal/faults"
	"ctgdvfs/internal/power"
	"ctgdvfs/internal/telemetry"
	"ctgdvfs/internal/tgff"
	"ctgdvfs/internal/trace"
)

// fleetTenants builds one tenant per name over a shared pes-wide fabric.
// Earlier names are more critical.
func fleetTenants(t *testing.T, pes int, names ...string) []Tenant {
	t.Helper()
	tenants := make([]Tenant, len(names))
	for i, name := range names {
		cfg := tgff.Config{Seed: int64(100 + i), Nodes: 14, PEs: pes, Branches: 2, Category: tgff.ForkJoin}
		g, p, err := tgff.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tenants[i] = Tenant{
			Name:        name,
			Criticality: len(names) - i,
			G:           g,
			P:           p,
			Opts:        Options{GuardBand: 0.3},
		}
	}
	return tenants
}

func fleetVectors(tenants []Tenant, n int) [][][]int {
	vecs := make([][][]int, len(tenants))
	for i, tn := range tenants {
		vecs[i] = trace.Fluctuating(tn.G, int64(5+i), n, 0.45)
	}
	return vecs
}

func testModel() power.Model {
	return power.Model{IdlePEPower: 0.05, IdleLinkPower: 0.002}
}

// An infinite cap is a governor that never binds: the fleet must produce
// bit-for-bit the same per-tenant statistics as one with no budget at all.
// This pins the zero-interference property — measurement and the primed-but-
// idle ladder cost nothing behaviorally.
func TestFleetInfiniteCapMatchesUnbudgeted(t *testing.T) {
	tenants := fleetTenants(t, 6, "alpha", "beta")
	vecs := fleetVectors(tenants, 120)

	base, err := NewFleet(tenants, FleetOptions{DeadlineFactor: 1.6})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := base.Run(vecs)
	if err != nil {
		t.Fatal(err)
	}

	gov, err := NewFleet(tenants, FleetOptions{
		DeadlineFactor: 1.6,
		Budget:         &power.Budget{Cap: math.Inf(1), Model: testModel()},
	})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := gov.Run(vecs)
	if err != nil {
		t.Fatal(err)
	}

	for i := range rb.Tenants {
		if rb.Tenants[i].Stats != rg.Tenants[i].Stats {
			t.Fatalf("tenant %s stats diverged under an infinite cap:\nno budget: %+v\ninf cap:   %+v",
				rb.Tenants[i].Name, rb.Tenants[i].Stats, rg.Tenants[i].Stats)
		}
	}
	if rg.Power == nil {
		t.Fatal("governed fleet must report power stats")
	}
	if rg.Power.WindowsOverCap != 0 || rg.Power.Escalations != 0 || rg.Power.MaxLevel != 0 {
		t.Fatalf("infinite cap must never bind: %+v", rg.Power)
	}
	if rb.Power != nil {
		t.Fatal("unbudgeted fleet must not report power stats")
	}
}

func TestFleetPartitionDisjointAndComplete(t *testing.T) {
	tenants := fleetTenants(t, 6, "a", "b", "c")
	f, err := NewFleet(tenants, FleetOptions{DeadlineFactor: 1.6})
	if err != nil {
		t.Fatal(err)
	}
	var all []int
	for i := range tenants {
		part := f.Partition(i)
		if len(part) < 1 {
			t.Fatalf("tenant %d granted no PEs", i)
		}
		all = append(all, part...)
		if alive := f.Manager(i).p.NumAlivePEs(); alive != len(part) {
			t.Fatalf("tenant %d manager sees %d alive PEs, partition has %d", i, alive, len(part))
		}
	}
	sort.Ints(all)
	if len(all) != 6 {
		t.Fatalf("partitions cover %d PEs, want all 6", len(all))
	}
	for i, pe := range all {
		if pe != i {
			t.Fatalf("partitions are not a disjoint cover of the fabric: %v", all)
		}
	}
}

func TestFleetValidation(t *testing.T) {
	good := func() []Tenant { return fleetTenants(t, 6, "a", "b") }
	cases := []struct {
		name    string
		tenants func() []Tenant
		opts    FleetOptions
	}{
		{"no tenants", func() []Tenant { return nil }, FleetOptions{}},
		{"duplicate names", func() []Tenant {
			ts := good()
			ts[1].Name = ts[0].Name
			return ts
		}, FleetOptions{}},
		{"empty name", func() []Tenant {
			ts := good()
			ts[0].Name = ""
			return ts
		}, FleetOptions{}},
		{"failures timeline", func() []Tenant {
			ts := good()
			ts[1].Opts.Failures = &faults.Timeline{}
			return ts
		}, FleetOptions{}},
		{"more tenants than PEs", func() []Tenant {
			return fleetTenants(t, 2, "a", "b", "c")
		}, FleetOptions{}},
		{"negative MinPEs", good, FleetOptions{MinPEs: -1}},
		{"bad budget cap", good, FleetOptions{Budget: &power.Budget{Cap: -5}}},
		{"nan budget cap", good, FleetOptions{Budget: &power.Budget{Cap: math.NaN()}}},
	}
	for _, tc := range cases {
		if _, err := NewFleet(tc.tenants(), tc.opts); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// A pre-restricted tenant platform is rejected: the fleet owns the
	// partition.
	ts := good()
	m := ts[0].P.AvailabilityMask()
	m.PEs[0] = false
	rp, err := ts[0].P.Restrict(m)
	if err != nil {
		t.Fatal(err)
	}
	ts[0].P = rp
	if _, err := NewFleet(ts, FleetOptions{}); err == nil {
		t.Error("pre-restricted tenant platform accepted")
	}
}

func TestFleetStepVectorCount(t *testing.T) {
	tenants := fleetTenants(t, 6, "a", "b")
	f, err := NewFleet(tenants, FleetOptions{DeadlineFactor: 1.6})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Step([][]int{nil}); err == nil {
		t.Fatal("step with wrong vector count accepted")
	}
}

// ungovernedPower measures what the cap would have seen with no enforcement:
// the baseline the degradation tests scale their caps from.
func ungovernedPower(t *testing.T, tenants []Tenant, vecs [][][]int) float64 {
	t.Helper()
	f, err := NewFleet(tenants, FleetOptions{
		DeadlineFactor: 1.6,
		Budget:         &power.Budget{Cap: 1, Model: testModel()},
		Ungoverned:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Run(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Power == nil || !(r.Power.MaxWindowPower > 0) {
		t.Fatalf("ungoverned fleet measured no power: %+v", r.Power)
	}
	return r.Power.MaxWindowPower
}

// A cap below the undegraded fleet's draw must drive the ladder — and the
// ladder must never touch the most critical tenant's hardware, never shed it,
// and never move twice within one measurement window (the no-flap invariant).
func TestFleetGovernedDegradationProtectsCritical(t *testing.T) {
	tenants := fleetTenants(t, 6, "hi", "lo")
	vecs := fleetVectors(tenants, 160)
	p0 := ungovernedPower(t, tenants, vecs)

	const window = 8
	rec := telemetry.NewMemoryRecorder()
	f, err := NewFleet(tenants, FleetOptions{
		DeadlineFactor: 1.6,
		Budget:         &power.Budget{Cap: 0.6 * p0, Window: window, Model: testModel()},
		Recorder:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Run(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Power.MaxLevel == 0 {
		t.Fatalf("a 60%% cap never engaged the ladder: %+v", r.Power)
	}
	hi := r.Tenants[0]
	if hi.Name != "hi" {
		t.Fatalf("tenant order changed: %+v", r.Tenants)
	}
	if hi.ShedRounds != 0 {
		t.Fatalf("most critical tenant was shed for %d rounds", hi.ShedRounds)
	}
	if hi.PEs != hi.GrantedPEs {
		t.Fatalf("most critical tenant lost PEs: holds %d of %d", hi.PEs, hi.GrantedPEs)
	}
	if hi.Stats.Instances != r.Rounds {
		t.Fatalf("most critical tenant ran %d of %d rounds", hi.Stats.Instances, r.Rounds)
	}

	// No-flap: every runtime ladder move is one event; successive moves must
	// be at least one full measurement window apart (priming events at round
	// 0 excluded — they precede any measurement).
	var moves []int
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case telemetry.KindPERevoked, telemetry.KindTenantDegraded, telemetry.KindTenantRestored:
			if ev.Instance > 0 {
				moves = append(moves, ev.Instance)
			}
		}
	}
	for i := 1; i < len(moves); i++ {
		if d := moves[i] - moves[i-1]; d < window {
			t.Fatalf("ladder moved twice within one window: rounds %v", moves)
		}
	}
}

// A brutal cap forces the ladder to its top: the low-criticality tenant is
// shed (its PEs power-gated, its rounds skipped) while the critical tenant
// keeps running every round.
func TestFleetBrutalCapShedsLowCriticality(t *testing.T) {
	tenants := fleetTenants(t, 6, "hi", "lo")
	vecs := fleetVectors(tenants, 80)
	p0 := ungovernedPower(t, tenants, vecs)

	f, err := NewFleet(tenants, FleetOptions{
		DeadlineFactor: 1.6,
		Budget:         &power.Budget{Cap: 0.05 * p0, Model: testModel()},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Run(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Power.PrimedLevel == 0 {
		t.Fatalf("a 5%% cap must prime the ladder above level 0: %+v", r.Power)
	}
	lo := r.Tenants[1]
	if lo.ShedRounds == 0 {
		t.Fatalf("low-criticality tenant was never shed: %+v", lo)
	}
	if lo.Stats.Instances+lo.ShedRounds != r.Rounds {
		t.Fatalf("shed accounting: %d instances + %d shed != %d rounds",
			lo.Stats.Instances, lo.ShedRounds, r.Rounds)
	}
	hi := r.Tenants[0]
	if hi.Stats.Instances != r.Rounds || hi.ShedRounds != 0 {
		t.Fatalf("critical tenant must run every round: %+v", hi)
	}
	if f.LadderLen() == 0 || f.Governor() == nil {
		t.Fatal("governed fleet must expose its ladder and governor")
	}
}
