package core

import (
	"math"
	"testing"

	"ctgdvfs/internal/tgff"
	"ctgdvfs/internal/trace"
)

// warmEnvelope bounds how far a warm-started run's average energy may drift
// from the full-recompute run's: the warm path approximates the stretch
// weighting of unaffected tasks, never schedule validity, so the two runs
// must land in the same energy regime.
const warmEnvelope = 0.15

// TestWarmEquivalenceProperty is the acceptance property of incremental
// rescheduling: across random CTGs and drift patterns, a warm-started run
// and a from-scratch run (caching off in both, so every trigger recomputes)
// produce valid schedules with identical deadline-miss counts and average
// energy within the envelope — and the warm run actually exercises the
// incremental path.
func TestWarmEquivalenceProperty(t *testing.T) {
	for _, seed := range []int64{3, 17, 29, 41} {
		g, cfg := testWorkload(t, seed)
		_, p, err := tgff.Generate(*cfg)
		if err != nil {
			t.Fatal(err)
		}
		vec := trace.Fluctuating(g, seed+100, 400, 0.45)

		run := func(warm bool) (RunStats, *Manager) {
			opts := Options{Window: 20, CacheSize: -1, WarmStart: warm}
			opts.SetThreshold(0.1)
			m, err := New(g, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			st, err := m.Run(vec)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Schedule().Validate(); err != nil {
				t.Fatalf("seed %d warm=%v: final schedule invalid: %v", seed, warm, err)
			}
			return st, m
		}
		full, _ := run(false)
		warm, wm := run(true)

		if full.WarmStarts != 0 {
			t.Fatalf("seed %d: warm-off run reported %d warm starts", seed, full.WarmStarts)
		}
		if warm.WarmStarts == 0 {
			t.Fatalf("seed %d: warm-on run never warm-started (fallbacks %d)", seed, warm.WarmFallbacks)
		}
		if ws, fb := wm.WarmStats(); ws != warm.WarmStarts || fb != warm.WarmFallbacks {
			t.Fatalf("seed %d: WarmStats (%d, %d) disagree with RunStats (%d, %d)",
				seed, ws, fb, warm.WarmStarts, warm.WarmFallbacks)
		}
		if warm.Misses != full.Misses {
			t.Fatalf("seed %d: warm run missed %d deadlines, full run %d", seed, warm.Misses, full.Misses)
		}
		if full.AvgEnergy > 0 {
			if delta := math.Abs(warm.AvgEnergy-full.AvgEnergy) / full.AvgEnergy; delta > warmEnvelope {
				t.Fatalf("seed %d: warm avg energy %v vs full %v (%.1f%% apart, envelope %.0f%%)",
					seed, warm.AvgEnergy, full.AvgEnergy, 100*delta, 100*warmEnvelope)
			}
		}
		if warm.Instances != full.Instances || warm.Calls > full.Calls {
			t.Fatalf("seed %d: warm run (%d instances, %d calls) vs full (%d, %d)",
				seed, warm.Instances, warm.Calls, full.Instances, full.Calls)
		}
	}
}

// TestWarmEquivalencePerScenario pins the same property for the
// per-scenario DVFS mode, whose warm tier reuses the speed table verbatim
// under pure probability drift.
func TestWarmEquivalencePerScenario(t *testing.T) {
	g, cfg := testWorkload(t, 23)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	vec := trace.Fluctuating(g, 123, 300, 0.45)

	run := func(warm bool) RunStats {
		opts := Options{Window: 20, CacheSize: -1, PerScenario: true, WarmStart: warm}
		opts.SetThreshold(0.1)
		m, err := New(g, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run(vec)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	full := run(false)
	warm := run(true)
	if warm.WarmStarts == 0 {
		t.Fatal("per-scenario warm run never warm-started")
	}
	if warm.Misses != full.Misses {
		t.Fatalf("per-scenario: warm missed %d, full %d", warm.Misses, full.Misses)
	}
	// The per-scenario speed table depends only on mapping/platform/guard,
	// so warm reuse is exact: energies must agree to float tolerance.
	if full.AvgEnergy > 0 {
		if delta := math.Abs(warm.AvgEnergy-full.AvgEnergy) / full.AvgEnergy; delta > 1e-9 {
			t.Fatalf("per-scenario warm energy %v != full %v", warm.AvgEnergy, full.AvgEnergy)
		}
	}
}

// TestMarkAffectedMatchesReference checks the manager's buffer-reusing
// affected-set computation against the exported from-first-principles
// reference on every single-fork and pairwise drift.
func TestMarkAffectedMatchesReference(t *testing.T) {
	g, cfg := testWorkload(t, 31)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g, p, Options{Window: 20})
	if err != nil {
		t.Fatal(err)
	}
	nf := g.NumForks()
	var cases [][]int
	for fi := 0; fi < nf; fi++ {
		cases = append(cases, []int{fi})
		for fj := fi + 1; fj < nf; fj++ {
			cases = append(cases, []int{fi, fj})
		}
	}
	for _, changed := range cases {
		count := m.markAffected(changed)
		want := AffectedByDrift(m.a, changed)
		got := m.warm.affected
		wantCount := 0
		for t2 := range want {
			if want[t2] {
				wantCount++
			}
			if got[t2] != want[t2] {
				t.Fatalf("drift %v: task %d affected=%v, reference %v", changed, t2, got[t2], want[t2])
			}
		}
		if count != wantCount {
			t.Fatalf("drift %v: markAffected count %d, reference %d", changed, count, wantCount)
		}
		if wantCount == 0 {
			t.Fatalf("drift %v: empty affected set (fork itself must be affected)", changed)
		}
	}
}

// TestWarmPureReuseWhenStateUnchanged pins the cheapest warm tier: when a
// trigger leaves the schedule-built probability/guard state bit-for-bit
// intact, the incumbent is adopted verbatim (no stretch pass, no fallback).
func TestWarmPureReuseWhenStateUnchanged(t *testing.T) {
	g, cfg := testWorkload(t, 37)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g, p, Options{Window: 20, CacheSize: -1, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Schedule()
	ok, err := m.tryWarmStart("drift", m.effectiveGuard())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("unchanged state not served by pure reuse")
	}
	if m.Schedule() != before {
		t.Fatal("pure reuse replaced the schedule pointer")
	}
	if starts, fallbacks := m.WarmStats(); starts != 1 || fallbacks != 0 {
		t.Fatalf("WarmStats after pure reuse = (%d, %d), want (1, 0)", starts, fallbacks)
	}
}

// TestProfilerEstimateIntoEquivalence pins the allocation-free estimate
// accessors against their allocating counterparts.
func TestProfilerEstimateIntoEquivalence(t *testing.T) {
	g, _ := testWorkload(t, 43)
	p, err := NewProfiler(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		for fi := 0; fi < g.NumForks(); fi++ {
			if err := p.Observe(fi, i%p.NumOutcomes(fi)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var buf []float64
	for fi := 0; fi < g.NumForks(); fi++ {
		est := p.Estimate(fi)
		buf = p.EstimateInto(fi, buf[:0])
		if len(buf) != len(est) {
			t.Fatalf("fork %d: EstimateInto len %d, Estimate len %d", fi, len(buf), len(est))
		}
		for k := range est {
			if buf[k] != est[k] {
				t.Fatalf("fork %d outcome %d: EstimateInto %v != Estimate %v", fi, k, buf[k], est[k])
			}
			if got := p.EstimateAt(fi, k); got != est[k] {
				t.Fatalf("fork %d outcome %d: EstimateAt %v != Estimate %v", fi, k, got, est[k])
			}
		}
		sm := p.SmoothedEstimate(fi)
		buf = p.SmoothedEstimateInto(fi, buf[:0])
		for k := range sm {
			if buf[k] != sm[k] {
				t.Fatalf("fork %d outcome %d: SmoothedEstimateInto %v != SmoothedEstimate %v", fi, k, buf[k], sm[k])
			}
		}
	}
}
