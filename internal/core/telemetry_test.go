package core

import (
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/telemetry"
	"ctgdvfs/internal/tgff"
	"ctgdvfs/internal/trace"
)

// telemetryWorkload builds a deterministic graph + platform pair for the
// telemetry tests (testWorkload only returns the graph).
func telemetryWorkload(t *testing.T, seed int64) (*ctg.Graph, *platform.Platform) {
	t.Helper()
	g, cfg := testWorkload(t, seed)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, p
}

// TestTelemetryEventStream checks the manager narrates a run completely: one
// start/finish pair per instance, task slices from the simulator, estimate
// updates for executed forks, and a reschedule decision for every call.
func TestTelemetryEventStream(t *testing.T) {
	g, p := telemetryWorkload(t, 11)
	rec := telemetry.NewMemoryRecorder()
	m, err := New(g, p, Options{Window: 10, Threshold: 0.1, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(trace.Fluctuating(g, 7, 40, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	byKind := rec.CountByKind()
	if got := byKind[telemetry.KindInstanceStart]; got != st.Instances {
		t.Fatalf("%d instance_start events, want %d", got, st.Instances)
	}
	if got := byKind[telemetry.KindInstanceFinish]; got != st.Instances {
		t.Fatalf("%d instance_finish events, want %d", got, st.Instances)
	}
	if byKind[telemetry.KindTaskSlice] < st.Instances {
		t.Fatalf("only %d task slices for %d instances", byKind[telemetry.KindTaskSlice], st.Instances)
	}
	if byKind[telemetry.KindEstimate] == 0 {
		t.Fatal("no window-estimate events")
	}
	// One reschedule decision per call, plus the initial schedule.
	if got := byKind[telemetry.KindReschedule]; got != st.Calls+1 {
		t.Fatalf("%d reschedule events, want calls+initial = %d", got, st.Calls+1)
	}
	// Event-level invariants: ids in range, finishes carry the replay result.
	for _, ev := range rec.Events() {
		if ev.Instance < 0 || ev.Instance >= st.Instances {
			t.Fatalf("event %+v has out-of-range instance id", ev)
		}
		if ev.Kind == telemetry.KindInstanceFinish && (ev.Energy <= 0 || ev.Makespan <= 0) {
			t.Fatalf("degenerate finish event %+v", ev)
		}
	}
}

// TestTelemetryDisabledBitForBit pins the headline guarantee: a manager with
// telemetry attached produces the exact same RunStats as one without — the
// recorder and registry observe, they never steer.
func TestTelemetryDisabledBitForBit(t *testing.T) {
	run := func(opts Options) RunStats {
		g, p := telemetryWorkload(t, 12)
		m, err := New(g, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run(trace.Fluctuating(g, 3, 60, 0.45))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	plain := run(Options{Window: 10, Threshold: 0.1})
	instrumented := run(Options{
		Window: 10, Threshold: 0.1,
		Recorder: telemetry.NewMemoryRecorder(),
		Metrics:  telemetry.NewRegistry(),
	})
	if plain != instrumented {
		t.Fatalf("telemetry changed RunStats:\nplain        %+v\ninstrumented %+v", plain, instrumented)
	}
}

// TestMetricsMirrorMatchesRunStats checks the registry mirrors the logic
// counters exactly — same numbers, just exposed live instead of at run end.
func TestMetricsMirrorMatchesRunStats(t *testing.T) {
	g, p := telemetryWorkload(t, 13)
	m, err := New(g, p, Options{Window: 10, Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(trace.Fluctuating(g, 5, 50, 0.45))
	if err != nil {
		t.Fatal(err)
	}
	reg := m.Metrics()
	if reg == nil {
		t.Fatal("Metrics() must never be nil")
	}
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"adaptive.instances":    int64(st.Instances),
		"adaptive.misses":       int64(st.Misses),
		"adaptive.calls":        int64(st.Calls),
		"adaptive.cache_hits":   int64(st.CacheHits),
		"adaptive.cache_misses": int64(st.CacheMisses),
		"adaptive.overruns":     int64(st.Overruns),
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	h := snap.Histograms["adaptive.makespan"]
	if h.Count != uint64(st.Instances) {
		t.Fatalf("makespan histogram count = %d, want %d", h.Count, st.Instances)
	}
	if h.P50 > h.P95 || h.P95 > h.P99 {
		t.Fatalf("quantile ordering violated: %+v", h)
	}
}

// TestRunStatsPercentiles checks the new distribution summaries are ordered,
// bracketed by the observed makespans, and shared by the static runtime.
func TestRunStatsPercentiles(t *testing.T) {
	g, p := telemetryWorkload(t, 14)
	m, err := New(g, p, Options{Window: 10, Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(trace.Fluctuating(g, 9, 80, 0.45))
	if err != nil {
		t.Fatal(err)
	}
	if st.MakespanP50 <= 0 {
		t.Fatalf("MakespanP50 = %v, want > 0", st.MakespanP50)
	}
	if st.MakespanP50 > st.MakespanP95 || st.MakespanP95 > st.MakespanP99 {
		t.Fatalf("makespan percentiles unordered: %v %v %v",
			st.MakespanP50, st.MakespanP95, st.MakespanP99)
	}
	if st.Misses == 0 && (st.LatenessP99 != 0 || st.LatenessP50 != 0) {
		t.Fatalf("lateness percentiles nonzero without misses: %v %v",
			st.LatenessP50, st.LatenessP99)
	}
	s, err := BuildOnline(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sst, err := RunStatic(s, trace.Fluctuating(g, 9, 80, 0.45))
	if err != nil {
		t.Fatal(err)
	}
	if sst.MakespanP50 <= 0 || sst.MakespanP50 > sst.MakespanP99 {
		t.Fatalf("static percentiles broken: %+v", sst)
	}
}
