package core

import (
	"math"
	"testing"

	"ctgdvfs/internal/tgff"
	"ctgdvfs/internal/trace"
)

// periodicVectors builds a decision sequence that alternates between two
// saturated regimes (blocks of all-zeros and all-ones, longer than the
// window), so the profiler's adopted probability states recur exactly from
// the second period onward — the situation the schedule cache exists for.
func periodicVectors(numForks, block, periods int) [][]int {
	var v [][]int
	for p := 0; p < periods; p++ {
		for _, outcome := range []int{0, 1} {
			for i := 0; i < block; i++ {
				d := make([]int, numForks)
				for f := range d {
					d[f] = outcome
				}
				v = append(v, d)
			}
		}
	}
	return v
}

func TestCacheHitMissAccounting(t *testing.T) {
	g, cfg := testWorkload(t, 11)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g, p, Options{Window: 20, Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	vec := periodicVectors(g.NumForks(), 40, 3)
	st, err := m.Run(vec)
	if err != nil {
		t.Fatal(err)
	}
	cs := m.CacheStats()
	if cs.Hits == 0 {
		t.Fatal("recurring regimes produced no cache hits")
	}
	// Every rescheduling invocation consults the cache, plus the initial
	// schedule (which New excludes from Calls).
	if cs.Hits+cs.Misses != st.Calls+1 {
		t.Fatalf("hits %d + misses %d != calls %d + 1", cs.Hits, cs.Misses, st.Calls)
	}
	if st.CacheHits != cs.Hits || st.CacheMisses != cs.Misses {
		t.Fatalf("RunStats cache counters (%d, %d) disagree with CacheStats (%d, %d)",
			st.CacheHits, st.CacheMisses, cs.Hits, cs.Misses)
	}
	if cs.Size > DefaultCacheSize {
		t.Fatalf("cache size %d exceeds bound %d", cs.Size, DefaultCacheSize)
	}
}

func TestCacheEvictionBound(t *testing.T) {
	g, cfg := testWorkload(t, 12)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Window: 20, CacheSize: 2}
	opts.SetThreshold(0.05)
	m, err := New(g, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(trace.Fluctuating(g, 7, 600, 0.45)); err != nil {
		t.Fatal(err)
	}
	cs := m.CacheStats()
	if cs.Size > 2 {
		t.Fatalf("cache size %d exceeds configured bound 2", cs.Size)
	}
	if cs.Evictions == 0 {
		t.Fatal("want evictions on a 2-entry cache over a fluctuating run")
	}
	// Every miss inserts a fresh entry, which either grows the cache or
	// evicts the LRU entry.
	if cs.Misses != cs.Size+cs.Evictions {
		t.Fatalf("misses %d != size %d + evictions %d", cs.Misses, cs.Size, cs.Evictions)
	}
}

// TestCacheDeterminism is the acceptance check: a cached adaptive run must be
// indistinguishable — per-step energy, rescheduling decisions, call count —
// from the same run with caching disabled.
func TestCacheDeterminism(t *testing.T) {
	g, cfg := testWorkload(t, 13)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, perScenario := range []bool{false, true} {
		cached, err := New(g, p, Options{Window: 20, Threshold: 0.2, PerScenario: perScenario})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := New(g, p, Options{Window: 20, Threshold: 0.2, PerScenario: perScenario, CacheSize: -1})
		if err != nil {
			t.Fatal(err)
		}
		if s := plain.CacheStats(); s != (CacheStats{}) {
			t.Fatalf("disabled cache reports stats %+v", s)
		}
		vec := periodicVectors(g.NumForks(), 30, 3)
		for i, d := range vec {
			rc, err := cached.Step(d)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := plain.Step(d)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(rc.Instance.Energy-rp.Instance.Energy) > 1e-9 {
				t.Fatalf("perScenario=%v step %d: cached energy %v, uncached %v",
					perScenario, i, rc.Instance.Energy, rp.Instance.Energy)
			}
			if rc.Rescheduled != rp.Rescheduled {
				t.Fatalf("perScenario=%v step %d: rescheduled %v vs %v",
					perScenario, i, rc.Rescheduled, rp.Rescheduled)
			}
		}
		if cached.Calls() != plain.Calls() {
			t.Fatalf("perScenario=%v: cached calls %d, uncached %d",
				perScenario, cached.Calls(), plain.Calls())
		}
		if cached.CacheStats().Hits == 0 {
			t.Fatalf("perScenario=%v: determinism run exercised no cache hits", perScenario)
		}
	}
}

func TestThresholdZeroExplicit(t *testing.T) {
	g, cfg := testWorkload(t, 14)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	var opts Options
	opts.SetThreshold(0)
	opts.Window = 20
	m, err := New(g, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.opts.Threshold != 0 {
		t.Fatalf("explicit T=0 replaced by %v", m.opts.Threshold)
	}
	vec := trace.Fluctuating(g, 5, 50, 0.45)
	st, err := m.Run(vec)
	if err != nil {
		t.Fatal(err)
	}
	// At T = 0 any drift crosses the threshold, so every instance triggers
	// one rescheduling.
	if st.Calls != len(vec) {
		t.Fatalf("T=0 made %d calls over %d instances, want one per instance", st.Calls, len(vec))
	}
}

func TestZeroValuesStillDefault(t *testing.T) {
	g, cfg := testWorkload(t, 15)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.opts.Threshold != DefaultThreshold || m.opts.Window != DefaultWindow {
		t.Fatalf("zero-valued options resolved to (W=%d, T=%v), want defaults (%d, %v)",
			m.opts.Window, m.opts.Threshold, DefaultWindow, DefaultThreshold)
	}
	if m.opts.CacheSize != DefaultCacheSize {
		t.Fatalf("zero CacheSize resolved to %d, want %d", m.opts.CacheSize, DefaultCacheSize)
	}
}

func TestWindowZeroExplicitRejected(t *testing.T) {
	g, cfg := testWorkload(t, 16)
	_, p, err := tgff.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	var opts Options
	opts.SetWindow(0)
	if _, err := New(g, p, opts); err == nil {
		t.Fatal("explicit window 0 must be rejected, not defaulted")
	}
}
