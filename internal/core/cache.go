package core

import (
	"container/list"
	"math"

	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/stretch"
)

// DefaultCacheSize is the default bound of the memoized schedule cache.
const DefaultCacheSize = 64

// CacheStats reports the schedule cache's counters. Hits + Misses equals the
// number of rescheduling invocations that consulted the cache (the initial
// schedule included).
type CacheStats struct {
	Hits, Misses, Evictions int
	// Size is the current number of cached schedules (≤ the configured
	// bound).
	Size int
}

// scheduleCache memoizes the output of the online algorithm (DLS mapping +
// ordering + stretched speeds) keyed by the exact branch-probability vector
// it was computed for. Probabilities adopted by the adaptive manager are
// window estimates — exact rationals (count+1)/(window+outcomes) of integer
// window counts — so a recurring probability regime (a GOP cycle in an MPEG
// trace, a repeating road segment in cruise) reproduces the key bit for bit
// and reuses the schedule instead of re-running DLS + stretching. Keys store
// the IEEE-754 bit patterns of the probabilities, which makes equality exact
// (never approximate): a hit returns precisely what recomputation would.
//
// The cache is bounded LRU: the least recently used entry is evicted when
// the bound is exceeded.
type scheduleCache struct {
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
	stats CacheStats
}

type cacheEntry struct {
	key      string
	schedule *sched.Schedule
	speeds   *stretch.ScenarioSpeeds // nil unless PerScenario mode
}

func newScheduleCache(capacity int) *scheduleCache {
	return &scheduleCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

// get looks up a key, counting a hit or miss and refreshing recency.
func (c *scheduleCache) get(key string) (*cacheEntry, bool) {
	if el, ok := c.byKey[key]; ok {
		c.stats.Hits++
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry), true
	}
	c.stats.Misses++
	return nil, false
}

// put inserts a freshly computed schedule, evicting the LRU entry past the
// bound.
func (c *scheduleCache) put(key string, s *sched.Schedule, sp *stretch.ScenarioSpeeds) {
	if el, ok := c.byKey[key]; ok {
		// get is always called first, so this only happens if a caller
		// recomputed despite a hit; refresh the entry.
		el.Value = &cacheEntry{key: key, schedule: s, speeds: sp}
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, schedule: s, speeds: sp})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// snapshot returns the counters with the current size filled in.
func (c *scheduleCache) snapshot() CacheStats {
	st := c.stats
	st.Size = c.ll.Len()
	return st
}

// guardKey renders a non-zero effective guard band as a key suffix (the
// big-endian IEEE-754 bits), so schedules stretched at different guard
// levels never alias. Guard-0 keys carry no suffix, keeping them identical
// to the pre-recovery cache keys.
func guardKey(guard float64) string {
	var buf [8]byte
	bits := math.Float64bits(guard)
	for i := 0; i < 8; i++ {
		buf[i] = byte(bits >> (56 - 8*i))
	}
	return string(buf[:])
}

// probKey renders the manager's current branch-probability state as an exact
// cache key: the big-endian IEEE-754 bits of every outcome probability of
// every fork, in dense fork order.
func (m *Manager) probKey() string {
	buf := make([]byte, 0, 8*2*m.g.NumForks())
	for _, fork := range m.g.Forks() {
		for _, p := range m.g.BranchProbs(fork) {
			bits := math.Float64bits(p)
			for shift := 56; shift >= 0; shift -= 8 {
				buf = append(buf, byte(bits>>shift))
			}
		}
	}
	return string(buf)
}
