package power

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func validBudget() Budget {
	return Budget{Cap: 10, Window: 4, Model: Model{IdlePEPower: 0.5, IdleLinkPower: 0.01}}
}

func TestBudgetValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Budget)
		field string
	}{
		{"zero cap", func(b *Budget) { b.Cap = 0 }, "cap"},
		{"negative cap", func(b *Budget) { b.Cap = -3 }, "cap"},
		{"nan cap", func(b *Budget) { b.Cap = math.NaN() }, "cap"},
		{"inf cap", func(b *Budget) { b.Cap = math.Inf(1) }, "cap"},
		{"neg inf cap", func(b *Budget) { b.Cap = math.Inf(-1) }, "cap"},
		{"negative window", func(b *Budget) { b.Window = -1 }, "window"},
		{"nan restore margin", func(b *Budget) { b.RestoreMargin = math.NaN() }, "restore_margin"},
		{"restore margin one", func(b *Budget) { b.RestoreMargin = 1 }, "restore_margin"},
		{"negative prime margin", func(b *Budget) { b.PrimeMargin = -0.1 }, "prime_margin"},
		{"nan thermal limit", func(b *Budget) { b.ThermalLimit = math.NaN() }, "thermal_limit"},
		{"inf thermal limit", func(b *Budget) { b.ThermalLimit = math.Inf(1) }, "thermal_limit"},
		{"negative thermal limit", func(b *Budget) { b.ThermalLimit = -1 }, "thermal_limit"},
		{"negative idle pe power", func(b *Budget) { b.Model.IdlePEPower = -1 }, "model.idle_pe_power"},
		{"nan idle link power", func(b *Budget) { b.Model.IdleLinkPower = math.NaN() }, "model.idle_link_power"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := validBudget()
			tc.mut(&b)
			err := b.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", b)
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("want *SpecError, got %T: %v", err, err)
			}
			if se.Field != tc.field {
				t.Fatalf("want field %q, got %q (%v)", tc.field, se.Field, err)
			}
		})
	}
	b := validBudget()
	if err := b.Validate(); err != nil {
		t.Fatalf("valid budget rejected: %v", err)
	}
}

func TestNewGovernorAdmitsInfiniteCapOnly(t *testing.T) {
	b := validBudget()
	b.Cap = math.Inf(1)
	if err := b.Validate(); err == nil {
		t.Fatal("spec validation must reject an infinite cap")
	}
	g, err := NewGovernor(b, []float64{5, 3})
	if err != nil {
		t.Fatalf("NewGovernor must admit +Inf cap: %v", err)
	}
	if lvl := g.Prime(); lvl != 0 {
		t.Fatalf("infinite cap primes to level %d, want 0", lvl)
	}
	for i := 0; i < 100; i++ {
		if d := g.Observe(1e18, 1); d != Hold {
			t.Fatalf("infinite-cap governor moved (%v) at round %d", d, i)
		}
	}
	// The other invalid caps stay rejected even programmatically.
	b.Cap = -1
	if _, err := NewGovernor(b, []float64{5}); err == nil {
		t.Fatal("NewGovernor accepted a negative cap")
	}
}

func TestNewGovernorRejectsBadPredictedTable(t *testing.T) {
	b := validBudget()
	if _, err := NewGovernor(b, nil); err == nil {
		t.Fatal("accepted an empty predicted table")
	}
	if _, err := NewGovernor(b, []float64{3, math.NaN()}); err == nil {
		t.Fatal("accepted a NaN predicted entry")
	}
}

func TestTaskPower(t *testing.T) {
	// E=8, WCET=2, s=0.5: energy at s is 8·0.25 = 2 over time 2/0.5 = 4,
	// so power 0.5 — and E·s³/WCET = 8·0.125/2 = 0.5.
	if got := TaskPower(8, 2, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("TaskPower = %v, want 0.5", got)
	}
	if got := TaskPower(8, 2, 1); got != 4 {
		t.Fatalf("full-speed TaskPower = %v, want 4", got)
	}
	if got := TaskPower(8, 0, 1); got != 0 {
		t.Fatalf("zero-WCET TaskPower = %v, want 0", got)
	}
}

func TestModelIdle(t *testing.T) {
	m := Model{IdlePEPower: 2, IdleLinkPower: 0.5}
	if got := m.Idle(3, 6); got != 9 {
		t.Fatalf("Idle(3,6) = %v, want 9", got)
	}
}

func TestMeterWindowStats(t *testing.T) {
	mt, err := NewMeter(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, full := mt.Observe(6); full {
		t.Fatal("window full after one sample")
	}
	mt.Observe(6)
	mean, full := mt.Observe(18) // window [6 6 18] mean 10: at cap, not over
	if !full || mean != 10 {
		t.Fatalf("mean %v full %v, want 10 true", mean, full)
	}
	if mt.WindowsOverCap() != 0 {
		t.Fatalf("mean == cap counted as over-cap")
	}
	mean, _ = mt.Observe(12) // window [6 18 12] mean 12: over
	if mean != 12 || mt.WindowsOverCap() != 1 {
		t.Fatalf("mean %v over %d, want 12 1", mean, mt.WindowsOverCap())
	}
	if mt.MaxWindowPower() != 12 || mt.MaxRoundPower() != 18 || mt.Samples() != 4 {
		t.Fatalf("stats maxW %v maxR %v n %d", mt.MaxWindowPower(), mt.MaxRoundPower(), mt.Samples())
	}
	if _, err := NewMeter(10, 0); err == nil {
		t.Fatal("NewMeter accepted window 0")
	}
	if _, err := NewMeter(math.NaN(), 3); err == nil {
		t.Fatal("NewMeter accepted NaN cap")
	}
}

func TestGovernorPrime(t *testing.T) {
	b := Budget{Cap: 10, Window: 4, PrimeMargin: 0.1}
	// Admissible bound is 9: level 2 is the first level fitting.
	g, err := NewGovernor(b, []float64{12, 9.5, 8.9, 5})
	if err != nil {
		t.Fatal(err)
	}
	if lvl := g.Prime(); lvl != 2 {
		t.Fatalf("primed to %d, want 2", lvl)
	}
	// No level fits: prime to the top.
	g2, _ := NewGovernor(b, []float64{12, 11, 10})
	if lvl := g2.Prime(); lvl != 2 {
		t.Fatalf("primed to %d, want top level 2", lvl)
	}
}

func TestGovernorEscalatesAndRestores(t *testing.T) {
	b := Budget{Cap: 10, Window: 4, RestoreMargin: 0.2, PrimeMargin: 0.05}
	g, err := NewGovernor(b, []float64{12, 6})
	if err != nil {
		t.Fatal(err)
	}
	// Over-cap rounds: escalation exactly when the 4-round window fills.
	for i := 0; i < 3; i++ {
		if d := g.Observe(14, 1); d != Hold {
			t.Fatalf("moved (%v) on partial window, round %d", d, i)
		}
	}
	if d := g.Observe(14, 1); d != Escalate {
		t.Fatalf("want Escalate on full over-cap window, got %v", d)
	}
	if g.Level() != 1 || g.Escalations() != 1 {
		t.Fatalf("level %d escalations %d", g.Level(), g.Escalations())
	}
	// At the top level an over-cap window has nowhere to go.
	for i := 0; i < 8; i++ {
		if d := g.Observe(14, 1); d != Hold {
			t.Fatalf("top-level escalation attempt (%v)", d)
		}
	}
	// Cooling: restore needs mean ≤ 8 (cap·0.8) and predicted[0]=12 ≤ 9.5 —
	// which fails, so the governor must hold even with full headroom.
	for i := 0; i < 8; i++ {
		if d := g.Observe(1, 1); d != Hold {
			t.Fatalf("restored into an inadmissible level (%v)", d)
		}
	}

	// With an admissible lower level the same cooling restores.
	g2, _ := NewGovernor(b, []float64{7, 6})
	g2.level = 1
	for i := 0; i < 3; i++ {
		g2.Observe(1, 1)
	}
	if d := g2.Observe(1, 1); d != Restore {
		t.Fatalf("want Restore, got %v", d)
	}
	if g2.Level() != 0 || g2.Restores() != 1 {
		t.Fatalf("level %d restores %d", g2.Level(), g2.Restores())
	}
}

func TestGovernorThermalAccumulator(t *testing.T) {
	// The accumulator catches what the windowed mean forgives: its cooling
	// is floored at zero, so a cold round before a hot burst is wasted while
	// the burst's heat survives to the window's evaluation point. The
	// pattern 5,13,13,8 under cap 10 has mean 9.75 ≤ cap, but heat runs
	// 0 → 3 → 6 → 4, and 4 exceeds the limit of 3 when the window fills.
	b := Budget{Cap: 10, Window: 4, ThermalLimit: 3}
	g, err := NewGovernor(b, []float64{5, 4})
	if err != nil {
		t.Fatal(err)
	}
	var d Decision
	for _, p := range []float64{5, 13, 13, 8} {
		d = g.Observe(p, 1)
	}
	if d != Escalate {
		t.Fatalf("want thermal Escalate (heat %v), got %v", g.Heat(), d)
	}
	if g.Level() != 1 {
		t.Fatalf("level %d after thermal trip, want 1", g.Level())
	}

	// A milder alternation (12 then 5: +2 then −5 per pair) keeps the heat
	// peak under the limit and the mean under the cap: never trips.
	g2, _ := NewGovernor(b, []float64{5, 4})
	for i := 0; i < 20; i++ {
		if d := g2.Observe(12, 1); d != Hold {
			t.Fatalf("mild excursion tripped at pair %d (heat %v)", i, g2.Heat())
		}
		if d := g2.Observe(5, 1); d != Hold {
			t.Fatalf("mild excursion tripped at pair %d (heat %v)", i, g2.Heat())
		}
	}
}

// TestGovernorNeverFlaps is the hysteresis property test: under any input —
// a steady workload hovering exactly at the cap, and an adversarial
// generator — two ladder moves are always at least one full window apart, so
// a revoke→restore→revoke cycle within one window is impossible.
func TestGovernorNeverFlaps(t *testing.T) {
	const window = 6
	b := Budget{Cap: 10, Window: window, RestoreMargin: 0.1, PrimeMargin: 0.05}
	pred := []float64{11, 8, 6, 4}

	check := func(t *testing.T, name string, next func(i int) float64) {
		g, err := NewGovernor(b, pred)
		if err != nil {
			t.Fatal(err)
		}
		g.Prime()
		lastMove := -1
		prevLevel := g.Level()
		for i := 0; i < 5000; i++ {
			d := g.Observe(next(i), 1)
			if d == Hold {
				if g.Level() != prevLevel {
					t.Fatalf("%s: level moved without a decision at round %d", name, i)
				}
				continue
			}
			if lastMove >= 0 && i-lastMove < window {
				t.Fatalf("%s: moves %d rounds apart (rounds %d and %d), window is %d",
					name, i-lastMove, lastMove, i, window)
			}
			lastMove = i
			prevLevel = g.Level()
		}
	}

	// Steady workload at the cap boundary: hovers within ±1% of the cap.
	check(t, "steady", func(i int) float64 {
		if i%2 == 0 {
			return 10.1
		}
		return 9.9
	})
	// Steady over-cap: monotone climb, then hold at the top.
	check(t, "hot", func(i int) float64 { return 14 })
	// Steady under-cap with admissible lower levels: monotone descent.
	check(t, "cold", func(i int) float64 { return 2 })
	// Adversarial: a deterministic LCG swinging across the whole range.
	seed := uint64(1)
	check(t, "adversarial", func(i int) float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return 20 * float64(seed>>40) / float64(1<<24)
	})
}

// TestGovernorSteadyMonotone pins the stronger steady-state property: with a
// constant input the ladder moves in one direction only and settles — it
// never reverses (no revoke→restore→revoke at any distance).
func TestGovernorSteadyMonotone(t *testing.T) {
	b := Budget{Cap: 10, Window: 4, RestoreMargin: 0.1, PrimeMargin: 0.05}
	pred := []float64{12, 8, 6}
	for _, tc := range []struct {
		name  string
		p     float64
		start int
	}{
		{"hot from 0", 15, 0},
		{"cold from top", 2, 2},
		{"at cap from 1", 10, 1},
	} {
		g, err := NewGovernor(b, pred)
		if err != nil {
			t.Fatal(err)
		}
		g.level = tc.start
		dir := 0 // +1 escalating, −1 restoring
		for i := 0; i < 400; i++ {
			switch g.Observe(tc.p, 1) {
			case Escalate:
				if dir < 0 {
					t.Fatalf("%s: reversed restore→escalate at round %d", tc.name, i)
				}
				dir = 1
			case Restore:
				if dir > 0 {
					t.Fatalf("%s: reversed escalate→restore at round %d", tc.name, i)
				}
				dir = -1
			}
		}
	}
}

// TestGovernorAccessors pins the diagnostic surface the fleet and the
// campaign tables read: decision names, level/heat/mean accessors, the
// prediction table and the typed spec error's message.
func TestGovernorAccessors(t *testing.T) {
	for d, want := range map[Decision]string{Hold: "hold", Escalate: "escalate", Restore: "restore"} {
		if d.String() != want {
			t.Fatalf("Decision(%d).String() = %q, want %q", d, d.String(), want)
		}
	}

	b := Budget{Cap: 10, Window: 2}
	g, err := NewGovernor(b, []float64{8, 5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.Levels() != 3 || g.MaxLevel() != 0 || g.Heat() != 0 {
		t.Fatalf("fresh governor: levels %d max %d heat %v", g.Levels(), g.MaxLevel(), g.Heat())
	}
	if g.Predicted(1) != 5 {
		t.Fatalf("Predicted(1) = %v", g.Predicted(1))
	}
	g.Observe(12, 1)
	if g.LastMean() != 12 {
		t.Fatalf("LastMean = %v after one observation of 12", g.LastMean())
	}
	if m := g.Meter(); m == nil || m.Mean() != 12 {
		t.Fatalf("meter mean = %v", g.Meter().Mean())
	}

	var empty Meter
	if empty.Mean() != 0 {
		t.Fatalf("empty meter mean = %v", empty.Mean())
	}

	se := &SpecError{Field: "cap", Value: -1, Reason: "must be positive and finite"}
	msg := se.Error()
	if !strings.Contains(msg, "cap") || !strings.Contains(msg, "must be positive and finite") {
		t.Fatalf("SpecError message %q", msg)
	}
}
