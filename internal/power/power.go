// Package power models chip-level power for a consolidated MPSoC and
// enforces a configurable power/thermal budget over it.
//
// The dynamic term comes straight from the paper's DVFS model (unit load
// capacitance, voltage proportional to frequency): a task at normalized
// speed s takes WCET/s time and consumes E·s² energy, so while it executes
// it draws instantaneous power E·s²/(WCET/s) = E·s³/WCET. Averaged over a
// scheduling round, the chip's dynamic power is the energy of the round's
// instances divided by the round duration. On top of that sit static terms:
// every powered-on PE draws IdlePEPower whether or not it is executing, and
// every up link among powered PEs draws IdleLinkPower. A power-gated PE — one
// revoked by the budget governor, or belonging to a shed tenant — draws
// nothing, which is what makes PE revocation and tenant shedding effective
// budget levers at all.
//
// Budget is the declarative spec (cap, rolling window, thermal accumulator
// limit, restore/prime margins, idle model); Governor is the runtime that
// tracks measured chip power against it and decides when a consolidated
// fleet must climb or descend its degradation ladder. Meter is the shared
// rolling-window measurement both the governor and an ungoverned baseline
// use, so "what would the cap have seen" is answerable without enforcement.
package power

import (
	"fmt"
	"math"
)

// Model holds the static terms of the chip power model. The zero value is a
// purely dynamic model (no idle draw), under which revoking an idle PE saves
// nothing — set IdlePEPower to make the governor's revocation rungs bite.
type Model struct {
	// IdlePEPower is the static power drawn by one powered-on PE,
	// independent of utilization. Power-gated PEs draw nothing.
	IdlePEPower float64 `json:"idle_pe_power,omitempty"`
	// IdleLinkPower is the static power drawn by one up directed link whose
	// endpoints are both powered.
	IdleLinkPower float64 `json:"idle_link_power,omitempty"`
}

// TaskPower returns the instantaneous power of a task with nominal energy e
// and full-speed WCET w executing at normalized speed s: E·s³/WCET. Zero
// WCET (a degenerate task) draws nothing.
func TaskPower(e, w, s float64) float64 {
	if !(w > 0) {
		return 0
	}
	return e * s * s * s / w
}

// Idle returns the model's static chip power with pes powered PEs and links
// up directed links among them.
func (m Model) Idle(pes, links int) float64 {
	return m.IdlePEPower*float64(pes) + m.IdleLinkPower*float64(links)
}

// validate checks the model's fields (part of Budget.Validate).
func (m Model) validate() error {
	if math.IsNaN(m.IdlePEPower) || math.IsInf(m.IdlePEPower, 0) || m.IdlePEPower < 0 {
		return &SpecError{Field: "model.idle_pe_power", Value: m.IdlePEPower,
			Reason: "must be a finite non-negative power"}
	}
	if math.IsNaN(m.IdleLinkPower) || math.IsInf(m.IdleLinkPower, 0) || m.IdleLinkPower < 0 {
		return &SpecError{Field: "model.idle_link_power", Value: m.IdleLinkPower,
			Reason: "must be a finite non-negative power"}
	}
	return nil
}

// Default margins; see Budget.
const (
	DefaultRestoreMargin = 0.10
	DefaultPrimeMargin   = 0.05
	DefaultWindow        = 8
)

// Budget is the declarative chip power budget: what the governor enforces,
// and the schema behind the fault-spec file's "power" section and the
// experiments CLI's -power-cap/-power-window flags.
type Budget struct {
	// Cap is the chip power cap the rolling-window mean must stay under.
	// Specs require a positive finite cap; an infinite cap (a governor that
	// is present but never binds) is only constructible programmatically via
	// NewGovernor, for overhead pinning.
	Cap float64 `json:"cap"`
	// Window is the rolling measurement window in scheduling rounds. The
	// governor evaluates (and moves at most one ladder level) only on full
	// windows, and clears the window on every move — the hysteresis that
	// keeps the ladder from flapping. Zero selects DefaultWindow.
	Window int `json:"window,omitempty"`
	// RestoreMargin is the fractional headroom below the cap the windowed
	// mean must show before the governor descends a level: restore requires
	// mean ≤ cap·(1−RestoreMargin). Zero selects DefaultRestoreMargin.
	RestoreMargin float64 `json:"restore_margin,omitempty"`
	// PrimeMargin is the safety fraction applied to the ladder's predicted
	// power table, both when priming the initial level and when gating a
	// restore: a level is admissible only if its predicted chip power is
	// ≤ cap·(1−PrimeMargin). Zero selects DefaultPrimeMargin.
	PrimeMargin float64 `json:"prime_margin,omitempty"`
	// ThermalLimit bounds the thermal accumulator: heat integrates
	// max(0, power − cap) over time and escalates the ladder when it exceeds
	// the limit, catching sustained just-under-window excursions a windowed
	// mean alone would forgive slowly. Zero disables the accumulator.
	ThermalLimit float64 `json:"thermal_limit,omitempty"`
	// Model supplies the static (idle) power terms.
	Model Model `json:"model,omitempty"`
}

// SpecError is the typed rejection of an invalid power-budget spec. Callers
// detect it with errors.As to distinguish a bad configuration from runtime
// failures, mirroring the fault-spec and workload-parser hardening.
type SpecError struct {
	// Field names the offending budget field (JSON name).
	Field string
	// Value is the rejected value.
	Value float64
	// Reason describes the constraint it violated.
	Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("power: budget field %q = %v: %s", e.Field, e.Value, e.Reason)
}

// Validate rejects non-finite, zero or negative caps and windows, and any
// other field outside its domain. This is the strict form used for JSON
// specs and CLI flags; NewGovernor alone additionally admits Cap = +Inf.
func (b *Budget) Validate() error { return b.validate(false) }

func (b *Budget) validate(allowInfCap bool) error {
	capOK := b.Cap > 0 && !math.IsNaN(b.Cap) &&
		(!math.IsInf(b.Cap, 1) || allowInfCap) && !math.IsInf(b.Cap, -1)
	if !capOK {
		return &SpecError{Field: "cap", Value: b.Cap, Reason: "must be a positive finite power"}
	}
	if b.Window < 0 {
		return &SpecError{Field: "window", Value: float64(b.Window), Reason: "must be ≥ 1 rounds"}
	}
	if math.IsNaN(b.RestoreMargin) || b.RestoreMargin < 0 || b.RestoreMargin >= 1 {
		return &SpecError{Field: "restore_margin", Value: b.RestoreMargin, Reason: "must be in [0,1)"}
	}
	if math.IsNaN(b.PrimeMargin) || b.PrimeMargin < 0 || b.PrimeMargin >= 1 {
		return &SpecError{Field: "prime_margin", Value: b.PrimeMargin, Reason: "must be in [0,1)"}
	}
	if math.IsNaN(b.ThermalLimit) || math.IsInf(b.ThermalLimit, 0) || b.ThermalLimit < 0 {
		return &SpecError{Field: "thermal_limit", Value: b.ThermalLimit, Reason: "must be finite and ≥ 0 (0 disables)"}
	}
	return b.Model.validate()
}

// withDefaults returns the budget with zero-valued knobs replaced by their
// defaults.
func (b Budget) withDefaults() Budget {
	if b.Window == 0 {
		b.Window = DefaultWindow
	}
	if b.RestoreMargin == 0 {
		b.RestoreMargin = DefaultRestoreMargin
	}
	if b.PrimeMargin == 0 {
		b.PrimeMargin = DefaultPrimeMargin
	}
	return b
}

// Meter is the rolling-window chip-power measurement: every scheduling round
// contributes one power sample, and full windows are scored against the cap.
// The governor embeds one; an ungoverned baseline uses one directly, so the
// campaign can report what the cap would have seen without enforcing it.
type Meter struct {
	cap  float64
	ring []float64
	fill int
	cur  int
	sum  float64

	samples   int
	maxSample float64
	maxWindow float64
	overCap   int
}

// NewMeter builds a meter over the given cap and window length.
func NewMeter(cap float64, window int) (*Meter, error) {
	if window < 1 {
		return nil, &SpecError{Field: "window", Value: float64(window), Reason: "must be ≥ 1 rounds"}
	}
	if math.IsNaN(cap) || cap <= 0 {
		return nil, &SpecError{Field: "cap", Value: cap, Reason: "must be a positive power"}
	}
	return &Meter{cap: cap, ring: make([]float64, window)}, nil
}

// Observe shifts one round's chip power into the window. It returns the
// windowed mean and whether the window is full (the mean of a partial window
// is reported but never acted on).
func (t *Meter) Observe(p float64) (mean float64, full bool) {
	t.samples++
	if p > t.maxSample {
		t.maxSample = p
	}
	if t.fill == len(t.ring) {
		t.sum -= t.ring[t.cur]
	} else {
		t.fill++
	}
	t.ring[t.cur] = p
	t.sum += p
	t.cur = (t.cur + 1) % len(t.ring)
	mean = t.sum / float64(t.fill)
	if t.fill < len(t.ring) {
		return mean, false
	}
	if mean > t.maxWindow {
		t.maxWindow = mean
	}
	if mean > t.cap {
		t.overCap++
	}
	return mean, true
}

// clear empties the window (the governor's move hysteresis).
func (t *Meter) clear() {
	t.fill, t.cur, t.sum = 0, 0, 0
	for i := range t.ring {
		t.ring[i] = 0
	}
}

// Samples returns the number of rounds observed.
func (t *Meter) Samples() int { return t.samples }

// Mean returns the current (possibly partial) window mean, zero when the
// window is empty.
func (t *Meter) Mean() float64 {
	if t.fill == 0 {
		return 0
	}
	return t.sum / float64(t.fill)
}

// MaxRoundPower returns the highest single-round power observed.
func (t *Meter) MaxRoundPower() float64 { return t.maxSample }

// MaxWindowPower returns the highest full-window mean observed (zero until
// the first window fills).
func (t *Meter) MaxWindowPower() float64 { return t.maxWindow }

// WindowsOverCap returns how many full-window means exceeded the cap.
func (t *Meter) WindowsOverCap() int { return t.overCap }
