package power

import (
	"fmt"
	"math"
)

// Decision is the governor's verdict after one observed round.
type Decision int

const (
	// Hold keeps the ladder where it is.
	Hold Decision = iota
	// Escalate moves one level up the degradation ladder (more degraded).
	Escalate
	// Restore moves one level back down (less degraded).
	Restore
)

func (d Decision) String() string {
	switch d {
	case Escalate:
		return "escalate"
	case Restore:
		return "restore"
	default:
		return "hold"
	}
}

// Governor tracks rolling-window chip power against a Budget and walks a
// deterministic degradation ladder with hysteresis. The ladder itself (what
// each level *does* — guard release, PE revocation, tenant shedding) belongs
// to the consolidation layer; the governor only owns the decision:
//
//   - Escalate when a full measurement window's mean power exceeds the cap,
//     or the thermal accumulator exceeds its limit, and a higher level
//     exists.
//   - Restore when a full window shows the configured headroom below the
//     cap, the accumulator has cooled, and the *predicted* power of the
//     level below fits under the cap with the prime margin — so the governor
//     never descends into a configuration it expects to bounce out of.
//   - Every move clears the measurement window: a fresh window must fill
//     before the next move, which is the no-flap invariant (at least Window
//     rounds between any two moves, in either direction).
//
// Prime seeds the initial level from the same predicted-power table, so a
// cap that the full-power configuration cannot satisfy is respected from
// round zero instead of after a first measured violation.
type Governor struct {
	b         Budget
	meter     *Meter
	predicted []float64 // predicted chip power per ladder level

	level    int
	heat     float64
	lastMove int     // sample index of the last level move (-1 = never)
	lastMean float64 // windowed mean at the last observation (survives clears)

	escalations int
	restores    int
	maxLevel    int
}

// NewGovernor builds a governor for a budget and a per-level predicted-power
// table (predicted[0] is the undegraded configuration; higher indices are
// deeper degradation rungs, and the table length fixes the ladder height).
// The budget is validated as a spec, except that Cap = +Inf is admitted: an
// unbounded governor never escalates, which is the overhead-pinning
// configuration the equivalence tests rely on.
func NewGovernor(b Budget, predicted []float64) (*Governor, error) {
	b = b.withDefaults()
	if err := b.validate(true); err != nil {
		return nil, err
	}
	if len(predicted) == 0 {
		return nil, fmt.Errorf("power: governor needs a non-empty predicted-power table")
	}
	for i, p := range predicted {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return nil, fmt.Errorf("power: predicted power for level %d is invalid: %v", i, p)
		}
	}
	var meter *Meter
	if !math.IsInf(b.Cap, 1) {
		m, err := NewMeter(b.Cap, b.Window)
		if err != nil {
			return nil, err
		}
		meter = m
	} else {
		// An infinite cap still measures (the stats are free and useful),
		// against a cap no mean can exceed.
		meter = &Meter{cap: math.MaxFloat64, ring: make([]float64, b.Window)}
	}
	return &Governor{b: b, meter: meter, predicted: predicted, lastMove: -1}, nil
}

// Prime selects the initial ladder level: the lowest level whose predicted
// chip power fits under cap·(1−PrimeMargin), or the top level when none
// does. It returns the chosen level; callers apply the corresponding ladder
// configuration before the first round executes.
func (g *Governor) Prime() int {
	bound := g.b.Cap * (1 - g.b.PrimeMargin)
	g.level = len(g.predicted) - 1
	for l, p := range g.predicted {
		if p <= bound {
			g.level = l
			break
		}
	}
	if g.level > g.maxLevel {
		g.maxLevel = g.level
	}
	return g.level
}

// Observe accounts one scheduling round — measured chip power p sustained
// for duration d — and returns the ladder decision. On Escalate/Restore the
// governor's Level has already moved; the caller applies the new level's
// configuration before the next round.
func (g *Governor) Observe(p, d float64) Decision {
	// The thermal accumulator integrates the excursion above the cap and
	// never goes negative: power under the cap cools it at the same rate it
	// heats, to a floor of zero.
	g.heat += (p - g.b.Cap) * d
	if g.heat < 0 {
		g.heat = 0
	}
	mean, full := g.meter.Observe(p)
	g.lastMean = mean
	if !full {
		// Moves happen only on full windows; with the window cleared on
		// every move, this is what guarantees ≥ Window rounds between moves.
		return Hold
	}
	overHeat := g.b.ThermalLimit > 0 && g.heat > g.b.ThermalLimit
	if (mean > g.b.Cap || overHeat) && g.level < len(g.predicted)-1 {
		g.level++
		g.escalations++
		if g.level > g.maxLevel {
			g.maxLevel = g.level
		}
		g.lastMove = g.meter.samples
		g.meter.clear()
		return Escalate
	}
	if g.level > 0 &&
		mean <= g.b.Cap*(1-g.b.RestoreMargin) &&
		(g.b.ThermalLimit == 0 || g.heat <= g.b.ThermalLimit/2) &&
		g.predicted[g.level-1] <= g.b.Cap*(1-g.b.PrimeMargin) {
		g.level--
		g.restores++
		g.lastMove = g.meter.samples
		g.meter.clear()
		return Restore
	}
	return Hold
}

// Level returns the current ladder level (0 = undegraded).
func (g *Governor) Level() int { return g.level }

// MaxLevel returns the deepest level the governor has reached.
func (g *Governor) MaxLevel() int { return g.maxLevel }

// Levels returns the ladder height (length of the predicted table).
func (g *Governor) Levels() int { return len(g.predicted) }

// Heat returns the thermal accumulator's current value.
func (g *Governor) Heat() float64 { return g.heat }

// LastMean returns the windowed mean as of the last observation. Unlike
// Meter().Mean() it survives the window clear a move performs, so callers can
// report the mean that triggered a decision.
func (g *Governor) LastMean() float64 { return g.lastMean }

// Escalations and Restores return the move counts.
func (g *Governor) Escalations() int { return g.escalations }
func (g *Governor) Restores() int    { return g.restores }

// Meter exposes the governor's measurement window (read-only use).
func (g *Governor) Meter() *Meter { return g.meter }

// Predicted returns the predicted chip power of one ladder level.
func (g *Governor) Predicted(level int) float64 { return g.predicted[level] }
