// Package faults models non-deterministic execution-time misbehaviour for
// the adaptive runtime: tasks that overrun their profiled execution time,
// "hot" tasks that overrun in bursts, and processing elements that suffer
// transient slowdowns (DVFS glitches, thermal throttling, shared-resource
// interference). The paper's manager stretches tasks down to the deadline
// assuming every task runs exactly its nominal time, so a single overrun at
// runtime turns the energy win into a deadline miss — exactly the hazard the
// varying-WCET literature (Berten et al.; Leung & Tsui) treats as
// first-class. A Plan is the injection side of the fault-tolerance story;
// detection and recovery live in internal/core.
//
// Determinism is the package's load-bearing property: every factor is a pure
// hash of (seed, stream, instance, task-or-PE), with no shared RNG state.
// The same seed reproduces the same perturbation sequence regardless of
// query order, worker bound, or which subset of instances a caller examines
// — which is what lets the parallel scenario engine fan replays out while
// keeping fault statistics bit-for-bit identical to a serial run.
package faults

import (
	"fmt"
	"math"
	"sort"
)

// Spec parameterizes a fault plan. The zero value is a no-fault plan (every
// factor is exactly 1).
type Spec struct {
	// Seed selects the deterministic perturbation sequence.
	Seed int64 `json:"seed"`

	// OverrunProb is the per-task per-instance probability of an
	// execution-time overrun; OverrunFactor (≥ 1) multiplies the execution
	// time of an overrunning task. OverrunFactor 1.2 models the "20%
	// overrun" setting of the fault campaign.
	OverrunProb   float64 `json:"overrun_prob,omitempty"`
	OverrunFactor float64 `json:"overrun_factor,omitempty"`

	// HotTasks selects this many tasks (deterministically, by seed) for
	// bursty overruns: whenever a burst is active, a hot task overruns by
	// HotFactor (≥ 1) in every instance of the burst. BurstProb is the
	// per-instance probability that a burst starts for a given hot task;
	// BurstLen is the burst duration in instances.
	HotTasks  int     `json:"hot_tasks,omitempty"`
	HotFactor float64 `json:"hot_factor,omitempty"`
	BurstProb float64 `json:"burst_prob,omitempty"`
	BurstLen  int     `json:"burst_len,omitempty"`

	// PESlowProb is the per-PE per-instance probability of a transient
	// slowdown; PESlowFactor (≥ 1) multiplies the execution time of every
	// task dispatched on a slowed PE during that instance.
	PESlowProb   float64 `json:"pe_slow_prob,omitempty"`
	PESlowFactor float64 `json:"pe_slow_factor,omitempty"`
}

// Validate checks the workload-independent half of the spec: probabilities in
// [0,1], factors either unset (0) or finite and ≥ 1, burst geometry coherent.
// New performs these checks plus the count-dependent ones (HotTasks vs the
// task count); the JSON loading path calls Validate directly so a bad spec
// file fails at decode time, not first use.
func (s *Spec) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"OverrunProb", s.OverrunProb},
		{"BurstProb", s.BurstProb},
		{"PESlowProb", s.PESlowProb},
	} {
		if pr.v < 0 || pr.v > 1 || math.IsNaN(pr.v) {
			return fmt.Errorf("faults: %s must be in [0,1], got %v", pr.name, pr.v)
		}
	}
	for _, fc := range []struct {
		name string
		v    float64
	}{
		{"OverrunFactor", s.OverrunFactor},
		{"HotFactor", s.HotFactor},
		{"PESlowFactor", s.PESlowFactor},
	} {
		// 0 means "unset"; an explicit factor must be ≥ 1 and finite
		// (factors below 1 would model tasks finishing early, which the
		// guard-band story does not need and the recovery logic does not
		// expect).
		if fc.v != 0 && (fc.v < 1 || math.IsInf(fc.v, 0) || math.IsNaN(fc.v)) {
			return fmt.Errorf("faults: %s must be ≥ 1, got %v", fc.name, fc.v)
		}
	}
	if s.HotTasks < 0 {
		return fmt.Errorf("faults: negative HotTasks %d", s.HotTasks)
	}
	if s.BurstLen < 0 {
		return fmt.Errorf("faults: negative BurstLen %d", s.BurstLen)
	}
	if s.HotTasks > 0 && s.BurstProb > 0 && s.BurstLen == 0 {
		return fmt.Errorf("faults: bursty hot tasks need BurstLen ≥ 1")
	}
	return nil
}

// Plan is a validated, seeded fault plan for a workload of a fixed task and
// PE count. All methods are safe for concurrent use (the plan is immutable
// after New).
type Plan struct {
	spec  Spec
	tasks int
	pes   int
	hot   []int  // sorted hot-task IDs
	isHot []bool // dense membership
}

// Hash streams keep the independent fault channels decorrelated.
const (
	streamOverrun uint64 = 0x6f766572 // "over"
	streamBurst   uint64 = 0x62757273 // "burs"
	streamPE      uint64 = 0x70657065 // "pepe"
	streamHotPick uint64 = 0x686f7470 // "hotp"
)

// New validates a spec and builds the plan for a workload with the given
// task and PE counts.
func New(spec Spec, numTasks, numPEs int) (*Plan, error) {
	if numTasks <= 0 || numPEs <= 0 {
		return nil, fmt.Errorf("faults: need positive task/PE counts, got %d/%d", numTasks, numPEs)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.HotTasks > numTasks {
		return nil, fmt.Errorf("faults: HotTasks %d out of range for %d tasks", spec.HotTasks, numTasks)
	}
	if spec.OverrunFactor == 0 {
		spec.OverrunFactor = 1
	}
	if spec.HotFactor == 0 {
		spec.HotFactor = spec.OverrunFactor
	}
	if spec.PESlowFactor == 0 {
		spec.PESlowFactor = 1
	}
	p := &Plan{spec: spec, tasks: numTasks, pes: numPEs}
	p.pickHotTasks()
	return p, nil
}

// Spec returns the validated spec (with defaulted factors filled in).
func (p *Plan) Spec() Spec { return p.spec }

// Hot returns the sorted IDs of the plan's hot tasks.
func (p *Plan) Hot() []int { return append([]int(nil), p.hot...) }

// pickHotTasks selects HotTasks distinct tasks by ranking every task on an
// independent hash score — deterministic in the seed, uniform over tasks.
func (p *Plan) pickHotTasks() {
	p.isHot = make([]bool, p.tasks)
	if p.spec.HotTasks == 0 {
		return
	}
	type scored struct {
		task  int
		score uint64
	}
	all := make([]scored, p.tasks)
	for t := range all {
		all[t] = scored{task: t, score: p.bits(streamHotPick, uint64(t), 0)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score < all[j].score
		}
		return all[i].task < all[j].task
	})
	for _, s := range all[:p.spec.HotTasks] {
		p.hot = append(p.hot, s.task)
		p.isHot[s.task] = true
	}
	sort.Ints(p.hot)
}

// mix64 is the SplitMix64 finalizer: a strong, allocation-free bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// bits derives the raw 64-bit hash of one (stream, a, b) draw under the
// plan's seed.
func (p *Plan) bits(stream, a, b uint64) uint64 {
	h := uint64(p.spec.Seed) * 0x9e3779b97f4a7c15
	h = mix64(h ^ stream)
	h = mix64(h ^ a*0xa24baed4963ee407)
	h = mix64(h ^ b*0x9fb21c651e98df25)
	return h
}

// uniform maps a draw to [0,1) with 53 bits of precision.
func (p *Plan) uniform(stream, a, b uint64) float64 {
	return float64(p.bits(stream, a, b)>>11) / (1 << 53)
}

// TaskFactor returns the execution-time multiplier of the given task during
// the given CTG instance: the product of its independent overrun (if drawn)
// and its burst overrun (if the task is hot and a burst is active). The
// result is always ≥ 1; instance indices are defined for every non-negative
// integer, so callers may probe any window of the plan.
func (p *Plan) TaskFactor(instance, task int) float64 {
	if task < 0 || task >= p.tasks {
		return 1
	}
	f := 1.0
	if p.spec.OverrunProb > 0 && p.spec.OverrunFactor > 1 {
		if p.uniform(streamOverrun, uint64(instance), uint64(task)) < p.spec.OverrunProb {
			f = p.spec.OverrunFactor
		}
	}
	if p.isHot[task] && p.inBurst(instance, task) {
		f *= p.spec.HotFactor
	}
	return f
}

// inBurst reports whether a burst covering the instance started for the hot
// task within the last BurstLen instances.
func (p *Plan) inBurst(instance, task int) bool {
	if p.spec.BurstProb <= 0 || p.spec.BurstLen <= 0 || p.spec.HotFactor <= 1 {
		return false
	}
	for j := instance - p.spec.BurstLen + 1; j <= instance; j++ {
		if j < 0 {
			continue
		}
		if p.uniform(streamBurst, uint64(j), uint64(task)) < p.spec.BurstProb {
			return true
		}
	}
	return false
}

// PEFactor returns the execution-time multiplier every task on the given PE
// experiences during the given instance (a transient whole-PE slowdown), ≥ 1.
func (p *Plan) PEFactor(instance, pe int) float64 {
	if pe < 0 || pe >= p.pes {
		return 1
	}
	if p.spec.PESlowProb > 0 && p.spec.PESlowFactor > 1 {
		if p.uniform(streamPE, uint64(instance), uint64(pe)) < p.spec.PESlowProb {
			return p.spec.PESlowFactor
		}
	}
	return 1
}

// Factor returns the combined execution-time multiplier of a task dispatched
// on a PE during an instance: TaskFactor × PEFactor.
func (p *Plan) Factor(instance, task, pe int) float64 {
	return p.TaskFactor(instance, task) * p.PEFactor(instance, pe)
}

// MaxFactor returns the largest combined multiplier the plan can produce —
// the bound a guard band must absorb for schedules to tolerate the plan by
// construction.
func (p *Plan) MaxFactor() float64 {
	f := 1.0
	if p.spec.OverrunProb > 0 {
		f = p.spec.OverrunFactor
	}
	if p.spec.HotTasks > 0 && p.spec.BurstProb > 0 {
		f *= p.spec.HotFactor
	}
	if p.spec.PESlowProb > 0 {
		f *= p.spec.PESlowFactor
	}
	return f
}
