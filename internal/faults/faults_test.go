package faults

import (
	"math"
	"testing"
)

func TestValidation(t *testing.T) {
	bad := []Spec{
		{OverrunProb: -0.1},
		{OverrunProb: 1.5},
		{OverrunProb: math.NaN()},
		{OverrunFactor: 0.5, OverrunProb: 0.1},
		{OverrunFactor: math.Inf(1), OverrunProb: 0.1},
		{HotTasks: -1},
		{HotTasks: 100},
		{BurstLen: -2},
		{HotTasks: 1, BurstProb: 0.5}, // BurstLen missing
		{PESlowProb: 2},
		{PESlowFactor: 0.2, PESlowProb: 0.1},
	}
	for i, spec := range bad {
		if _, err := New(spec, 10, 2); err == nil {
			t.Errorf("spec %d (%+v): want error", i, spec)
		}
	}
	if _, err := New(Spec{}, 0, 2); err == nil {
		t.Error("want error for zero tasks")
	}
	if _, err := New(Spec{}, 10, 0); err == nil {
		t.Error("want error for zero PEs")
	}
}

func TestZeroSpecIsIdentity(t *testing.T) {
	p, err := New(Spec{Seed: 7}, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	for inst := 0; inst < 50; inst++ {
		for task := 0; task < 12; task++ {
			for pe := 0; pe < 3; pe++ {
				if f := p.Factor(inst, task, pe); f != 1 {
					t.Fatalf("zero spec factor(%d,%d,%d)=%v", inst, task, pe, f)
				}
			}
		}
	}
	if p.MaxFactor() != 1 {
		t.Fatalf("zero spec MaxFactor %v", p.MaxFactor())
	}
}

func TestDeterminismAndSeedSensitivity(t *testing.T) {
	spec := Spec{
		Seed: 42, OverrunProb: 0.25, OverrunFactor: 1.2,
		HotTasks: 3, HotFactor: 1.4, BurstProb: 0.05, BurstLen: 8,
		PESlowProb: 0.05, PESlowFactor: 1.15,
	}
	a, err := New(spec, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(spec, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	spec2 := spec
	spec2.Seed = 43
	c, err := New(spec2, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for inst := 0; inst < 200; inst++ {
		for task := 0; task < 20; task++ {
			fa, fb := a.TaskFactor(inst, task), b.TaskFactor(inst, task)
			if fa != fb {
				t.Fatalf("same seed diverged at (%d,%d): %v vs %v", inst, task, fa, fb)
			}
			if fa != c.TaskFactor(inst, task) {
				diff++
			}
		}
		for pe := 0; pe < 4; pe++ {
			if a.PEFactor(inst, pe) != b.PEFactor(inst, pe) {
				t.Fatalf("same seed PE factor diverged at (%d,%d)", inst, pe)
			}
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestOverrunRateMatchesProb(t *testing.T) {
	p, err := New(Spec{Seed: 9, OverrunProb: 0.2, OverrunFactor: 1.2}, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, hits := 0, 0
	for inst := 0; inst < 2000; inst++ {
		for task := 0; task < 10; task++ {
			n++
			if p.TaskFactor(inst, task) > 1 {
				hits++
			}
		}
	}
	rate := float64(hits) / float64(n)
	if math.Abs(rate-0.2) > 0.02 {
		t.Fatalf("empirical overrun rate %v, want ≈0.2", rate)
	}
}

func TestHotTasksBurst(t *testing.T) {
	p, err := New(Spec{
		Seed: 5, HotTasks: 2, HotFactor: 1.5, BurstProb: 0.1, BurstLen: 5,
	}, 15, 2)
	if err != nil {
		t.Fatal(err)
	}
	hot := p.Hot()
	if len(hot) != 2 || hot[0] == hot[1] {
		t.Fatalf("hot tasks %v, want 2 distinct", hot)
	}
	// Hot tasks burst in runs: a burst starting at instance j covers
	// [j, j+BurstLen), so some run of ≥ BurstLen consecutive overrun
	// instances must exist. Non-hot tasks never overrun under this spec.
	maxRun := 0
	for task := 0; task < 15; task++ {
		run := 0
		for inst := 0; inst < 500; inst++ {
			f := p.TaskFactor(inst, task)
			if !p.isHot[task] {
				if f != 1 {
					t.Fatalf("non-hot task %d overran", task)
				}
				continue
			}
			if f > 1 {
				run++
				if run > maxRun {
					maxRun = run
				}
			} else {
				run = 0
			}
		}
	}
	if maxRun < 5 {
		t.Fatalf("longest burst run %d, want ≥ BurstLen (5)", maxRun)
	}
	if p.MaxFactor() != 1.5 {
		t.Fatalf("MaxFactor %v, want 1.5", p.MaxFactor())
	}
}

func TestPESlowdown(t *testing.T) {
	p, err := New(Spec{Seed: 3, PESlowProb: 0.1, PESlowFactor: 1.3}, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for inst := 0; inst < 1000; inst++ {
		for pe := 0; pe < 3; pe++ {
			f := p.PEFactor(inst, pe)
			if f != 1 && f != 1.3 {
				t.Fatalf("PE factor %v", f)
			}
			if f > 1 {
				hits++
			}
		}
	}
	rate := float64(hits) / 3000
	if math.Abs(rate-0.1) > 0.03 {
		t.Fatalf("PE slowdown rate %v, want ≈0.1", rate)
	}
	// Combined factor multiplies.
	if got := p.Factor(0, 99, -1); got != 1 {
		t.Fatalf("out-of-range ids must be identity, got %v", got)
	}
}

func TestDefaultedFactors(t *testing.T) {
	p, err := New(Spec{Seed: 1, OverrunProb: 0.5, OverrunFactor: 1.3, HotTasks: 1, BurstProb: 0.2, BurstLen: 3}, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Spec().HotFactor != 1.3 {
		t.Fatalf("HotFactor should default to OverrunFactor, got %v", p.Spec().HotFactor)
	}
	if p.Spec().PESlowFactor != 1 {
		t.Fatalf("PESlowFactor should default to 1, got %v", p.Spec().PESlowFactor)
	}
}
