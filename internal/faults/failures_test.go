package faults

import (
	"errors"
	"strings"
	"testing"

	"ctgdvfs/internal/power"
)

func TestTimelineValidation(t *testing.T) {
	bad := []FailureSpec{
		{PEDeathProb: -0.1},
		{PEDeathProb: 1.5},
		{PEFailProb: 2},
		{LinkFailProb: -1},
		{PERepair: -1},
		{LinkRepair: -2},
		{Events: []FailureEvent{{Kind: "pe", PE: -1}}},
		{Events: []FailureEvent{{Kind: "pe", PE: 9}}},
		{Events: []FailureEvent{{Kind: "link", From: 0, To: 0}}},
		{Events: []FailureEvent{{Kind: "link", From: 0, To: 7}}},
		{Events: []FailureEvent{{Kind: "volcano"}}},
		{Events: []FailureEvent{{Kind: "pe", PE: 0, Instance: -2}}},
		{Events: []FailureEvent{{Kind: "pe", PE: 0, Duration: -1}}},
	}
	for i, spec := range bad {
		if _, err := NewTimeline(spec, 3); err == nil {
			t.Errorf("spec %d (%+v): accepted", i, spec)
		}
	}
	if _, err := NewTimeline(FailureSpec{}, 0); err == nil {
		t.Error("zero PE count accepted")
	}
	if _, err := NewTimeline(FailureSpec{}, 3); err != nil {
		t.Errorf("zero spec rejected: %v", err)
	}
}

func TestZeroSpecNeverFails(t *testing.T) {
	tl, err := NewTimeline(FailureSpec{Seed: 99}, 4)
	if err != nil {
		t.Fatal(err)
	}
	spec := tl.Spec()
	if spec.Enabled() {
		t.Fatal("zero spec reports Enabled")
	}
	for _, inst := range []int{0, 1, 17, 1000} {
		if !tl.MaskAt(inst).IsFull() {
			t.Fatalf("instance %d: zero spec produced a degraded mask", inst)
		}
		if tl.DegradedAt(inst) {
			t.Fatalf("instance %d: DegradedAt true under zero spec", inst)
		}
	}
}

func TestTimelineDeterministicAndOrderIndependent(t *testing.T) {
	spec := FailureSpec{Seed: 7, PEDeathProb: 0.01, PEFailProb: 0.1, PERepair: 3, LinkFailProb: 0.05, LinkRepair: 2}
	a, err := NewTimeline(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTimeline(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Query a forward, b backward: masks must agree instance by instance.
	const n = 200
	fwd := make([]string, n)
	for i := 0; i < n; i++ {
		fwd[i] = a.MaskAt(i).String()
	}
	for i := n - 1; i >= 0; i-- {
		if got := b.MaskAt(i).String(); got != fwd[i] {
			t.Fatalf("instance %d: order-dependent mask: %s vs %s", i, got, fwd[i])
		}
	}
	// A different seed must decorrelate (at these rates 200 instances of
	// identical history would be astronomically unlikely).
	c, err := NewTimeline(FailureSpec{Seed: 8, PEDeathProb: 0.01, PEFailProb: 0.1, PERepair: 3, LinkFailProb: 0.05, LinkRepair: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < n; i++ {
		if c.MaskAt(i).String() != fwd[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed change did not alter the failure history")
	}
}

func TestPermanentDeathIsMonotonic(t *testing.T) {
	tl, err := NewTimeline(FailureSpec{Seed: 3, PEDeathProb: 0.05}, 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	deadAt := make([]int, 4)
	for pe := range deadAt {
		deadAt[pe] = -1
	}
	for i := 0; i < n; i++ {
		m := tl.MaskAt(i)
		for pe := 0; pe < 4; pe++ {
			if !m.PEAlive(pe) {
				if deadAt[pe] < 0 {
					deadAt[pe] = i
				}
				if !tl.PermanentlyDead(i, pe) {
					t.Fatalf("instance %d: PE %d down but not PermanentlyDead under a death-only spec", i, pe)
				}
			} else if deadAt[pe] >= 0 {
				t.Fatalf("instance %d: PE %d resurrected (died at %d)", i, pe, deadAt[pe])
			}
		}
	}
	died := 0
	for _, d := range deadAt {
		if d >= 0 {
			died++
		}
	}
	// At death prob 0.05 over 400 instances each PE dies w.p. ~1-(0.95)^400;
	// the keep-alive floor must still leave one survivor.
	if died == 0 {
		t.Fatal("no PE died over 400 instances at PEDeathProb 0.05 (suspicious hashing)")
	}
	if died == 4 {
		t.Fatal("keep-alive floor failed: all PEs permanently dead")
	}
}

func TestKeepAliveFloor(t *testing.T) {
	// PEDeathProb 1 would kill everything at instance 0; the floor must spare
	// exactly one PE forever.
	tl, err := NewTimeline(FailureSpec{Seed: 11, PEDeathProb: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range []int{0, 5, 50} {
		m := tl.MaskAt(inst)
		if got := m.NumAlive(3); got != 1 {
			t.Fatalf("instance %d: %d survivors, want exactly 1", inst, got)
		}
	}
	// Combined with transient outages on everything the floor still holds.
	tl2, err := NewTimeline(FailureSpec{Seed: 11, PEDeathProb: 1, PEFailProb: 1, PERepair: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for inst := 0; inst < 20; inst++ {
		if got := tl2.MaskAt(inst).NumAlive(3); got < 1 {
			t.Fatalf("instance %d: no survivors", inst)
		}
	}
}

func TestTransientOutageRepairs(t *testing.T) {
	const repair = 3
	tl, err := NewTimeline(FailureSpec{Seed: 5, PEFailProb: 0.08, PERepair: repair}, 3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	sawDown, sawRecovery := false, false
	downRun := make([]int, 3)
	for i := 0; i < n; i++ {
		m := tl.MaskAt(i)
		for pe := 0; pe < 3; pe++ {
			if !m.PEAlive(pe) {
				sawDown = true
				downRun[pe]++
				if tl.PermanentlyDead(i, pe) {
					t.Fatalf("transient outage reported permanent (instance %d pe %d)", i, pe)
				}
			} else {
				if downRun[pe] > 0 {
					sawRecovery = true
				}
				downRun[pe] = 0
			}
		}
	}
	if !sawDown || !sawRecovery {
		t.Fatalf("expected transient outages and recoveries over %d instances (down=%v up=%v)",
			n, sawDown, sawRecovery)
	}
}

func TestScriptedEvents(t *testing.T) {
	spec := FailureSpec{Events: []FailureEvent{
		{Kind: EventPE, PE: 1, Instance: 5, Duration: 3},
		{Kind: EventPE, PE: 2, Instance: 10}, // permanent
		{Kind: EventLink, From: 0, To: 2, Instance: 2, Duration: 4},
	}}
	tl, err := NewTimeline(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		inst      int
		pe1, pe2  bool // alive?
		link02    bool
		degradedQ bool
	}{
		{0, true, true, true, false},
		{2, true, true, false, true},
		{5, false, true, false, true},
		{6, false, true, true, true},
		{8, true, true, true, false},
		// PE 2 is permanently dead from instance 10, so any link touching it
		// reports down even though no link event is active.
		{10, true, false, false, true},
		{100, true, false, false, true},
	}
	for _, tc := range cases {
		m := tl.MaskAt(tc.inst)
		if m.PEAlive(1) != tc.pe1 || m.PEAlive(2) != tc.pe2 || m.LinkUp(0, 2) != tc.link02 {
			t.Fatalf("instance %d: got pe1=%v pe2=%v link02=%v, want %v/%v/%v",
				tc.inst, m.PEAlive(1), m.PEAlive(2), m.LinkUp(0, 2), tc.pe1, tc.pe2, tc.link02)
		}
		if tl.DegradedAt(tc.inst) != tc.degradedQ {
			t.Fatalf("instance %d: DegradedAt = %v, want %v", tc.inst, tl.DegradedAt(tc.inst), tc.degradedQ)
		}
	}
	if !tl.PermanentlyDead(10, 2) {
		t.Fatal("scripted permanent event not reported by PermanentlyDead")
	}
	if tl.PermanentlyDead(5, 1) {
		t.Fatal("scripted transient event reported permanent")
	}
}

func TestSpecFileRoundTrip(t *testing.T) {
	f := &SpecFile{
		Perturb: &Spec{Seed: 42, OverrunProb: 0.2, OverrunFactor: 1.2, HotTasks: 2, HotFactor: 1.5, BurstProb: 0.1, BurstLen: 4},
		Failures: &FailureSpec{
			Seed: 7, PEDeathProb: 0.001, PEFailProb: 0.02, PERepair: 3,
			LinkFailProb: 0.01, LinkRepair: 2,
			Events: []FailureEvent{{Kind: EventPE, PE: 1, Instance: 50, Duration: 10}},
		},
	}
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSpecFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if *back.Perturb != *f.Perturb {
		t.Fatalf("perturb spec did not round-trip: %+v vs %+v", *back.Perturb, *f.Perturb)
	}
	if back.Failures.Seed != f.Failures.Seed || back.Failures.PERepair != f.Failures.PERepair ||
		len(back.Failures.Events) != 1 || back.Failures.Events[0] != f.Failures.Events[0] {
		t.Fatalf("failure spec did not round-trip: %+v", *back.Failures)
	}
}

func TestSpecFileRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"unknown top-level field", `{"perturbations": {}}`},
		{"unknown nested field", `{"perturb": {"seed": 1, "overrun_probability": 0.2}}`},
		{"invalid probability", `{"perturb": {"overrun_prob": 1.5}}`},
		{"invalid factor", `{"perturb": {"overrun_prob": 0.1, "overrun_factor": 0.5}}`},
		{"invalid failure prob", `{"failures": {"pe_death_prob": -1}}`},
		{"invalid event kind", `{"failures": {"events": [{"kind": "gpu"}]}}`},
		{"trailing data", `{"failures": {}} {"failures": {}}`},
		{"not json", `pe_death_prob = 0.5`},
		{"missing power cap", `{"power": {}}`},
		{"zero power cap", `{"power": {"cap": 0}}`},
		{"negative power cap", `{"power": {"cap": -4}}`},
		{"negative power window", `{"power": {"cap": 10, "window": -2}}`},
		{"bad restore margin", `{"power": {"cap": 10, "restore_margin": 1.5}}`},
		{"negative thermal limit", `{"power": {"cap": 10, "thermal_limit": -1}}`},
		{"negative idle power", `{"power": {"cap": 10, "model": {"idle_pe_power": -0.1}}}`},
		{"unknown power field", `{"power": {"cap": 10, "capacitance": 3}}`},
	}
	for _, tc := range cases {
		if _, err := DecodeSpecFile([]byte(tc.data)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// A bad power spec surfaces the typed error, naming the field.
	var se *power.SpecError
	_, err := DecodeSpecFile([]byte(`{"power": {"cap": -4}}`))
	if !errors.As(err, &se) || se.Field != "cap" {
		t.Fatalf("want *power.SpecError for cap, got %v", err)
	}
	// A valid power section round-trips.
	f, err := DecodeSpecFile([]byte(`{"power": {"cap": 12.5, "window": 16, "model": {"idle_pe_power": 0.2}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Power == nil || f.Power.Cap != 12.5 || f.Power.Window != 16 || f.Power.Model.IdlePEPower != 0.2 {
		t.Fatalf("power section did not decode: %+v", f.Power)
	}
}

func TestSpecValidateMatchesNew(t *testing.T) {
	// Validate must reject exactly what New rejects for count-independent
	// specs: spot-check a few shapes both ways.
	bad := []Spec{
		{OverrunProb: 2},
		{OverrunProb: 0.1, OverrunFactor: 0.9},
		{HotTasks: -1},
		{BurstLen: -1},
		{HotTasks: 1, BurstProb: 0.5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d: Validate accepted", i)
		}
		if _, err := New(s, 10, 2); err == nil {
			t.Errorf("spec %d: New accepted", i)
		}
	}
	ok := Spec{Seed: 1, OverrunProb: 0.2, OverrunFactor: 1.2}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestTimelineMaskString(t *testing.T) {
	tl, err := NewTimeline(FailureSpec{Events: []FailureEvent{{Kind: EventPE, PE: 0, Instance: 0}}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := tl.MaskAt(0).String()
	if !strings.Contains(s, "dead PEs [0]") {
		t.Fatalf("mask string %q missing dead-PE report", s)
	}
}
