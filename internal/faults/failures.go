// failures.go models hardware-availability faults — the second half of the
// package's fault story. Where Plan perturbs execution *times*, a Timeline
// perturbs the *topology*: processing elements die permanently, suffer
// transient outages that heal after a repair interval, and point-to-point
// links drop. The adaptive manager (internal/core) consults the timeline at
// every instance boundary and reschedules the workload onto the survivor set.
//
// Determinism mirrors Plan: every availability decision is a pure hash of
// (seed, stream, instance-or-PE), so the same spec reproduces the same
// failure history regardless of query order or worker count. Permanent
// deaths are drawn as geometric death instants (one uniform per PE), which
// keeps MaskAt O(PEs · repair window) instead of O(instance).
package faults

import (
	"fmt"
	"math"

	"ctgdvfs/internal/platform"
)

// Failure-event kinds for FailureSpec.Events.
const (
	// EventPE scripts a processing-element outage.
	EventPE = "pe"
	// EventLink scripts a directed-link outage.
	EventLink = "link"
)

// FailureEvent scripts one explicit availability fault: the named PE or link
// goes down at Instance and stays down for Duration instances (0 = forever).
// Scripted events compose with the stochastic model — campaigns use the
// rates, targeted tests use events.
type FailureEvent struct {
	// Kind is EventPE or EventLink.
	Kind string `json:"kind"`
	// Instance is the CTG-instance index at which the outage begins.
	Instance int `json:"instance"`
	// PE is the processing element of an EventPE outage.
	PE int `json:"pe,omitempty"`
	// From and To are the directed-link endpoints of an EventLink outage.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Duration is the outage length in instances; 0 means permanent.
	Duration int `json:"duration,omitempty"`
}

// FailureSpec parameterizes a hardware-availability timeline. The zero value
// never fails anything.
type FailureSpec struct {
	// Seed selects the deterministic failure history.
	Seed int64 `json:"seed"`

	// PEDeathProb is the per-PE per-instance probability of *permanent*
	// death. Deaths are drawn as geometric death instants, so a PE with
	// death probability q dies before instance k with probability
	// 1−(1−q)^k and never recovers.
	PEDeathProb float64 `json:"pe_death_prob,omitempty"`

	// PEFailProb is the per-PE per-instance probability that a *transient*
	// outage begins; an outage keeps the PE down for PERepair instances
	// (the repair time). PERepair defaults to 1 when outages are enabled.
	PEFailProb float64 `json:"pe_fail_prob,omitempty"`
	PERepair   int     `json:"pe_repair,omitempty"`

	// LinkFailProb is the per-directed-link per-instance probability that a
	// transient link outage begins, lasting LinkRepair instances.
	// LinkRepair defaults to 1 when link outages are enabled.
	LinkFailProb float64 `json:"link_fail_prob,omitempty"`
	LinkRepair   int     `json:"link_repair,omitempty"`

	// Events scripts explicit outages on top of the stochastic model.
	Events []FailureEvent `json:"events,omitempty"`
}

// Validate checks the spec's internal consistency — the platform-independent
// half of NewTimeline's validation, shared with the JSON decoding path.
func (s *FailureSpec) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"PEDeathProb", s.PEDeathProb},
		{"PEFailProb", s.PEFailProb},
		{"LinkFailProb", s.LinkFailProb},
	} {
		if pr.v < 0 || pr.v > 1 || math.IsNaN(pr.v) {
			return fmt.Errorf("faults: %s must be in [0,1], got %v", pr.name, pr.v)
		}
	}
	if s.PERepair < 0 {
		return fmt.Errorf("faults: negative PERepair %d", s.PERepair)
	}
	if s.LinkRepair < 0 {
		return fmt.Errorf("faults: negative LinkRepair %d", s.LinkRepair)
	}
	for i, ev := range s.Events {
		switch ev.Kind {
		case EventPE:
			if ev.PE < 0 {
				return fmt.Errorf("faults: event %d: negative PE %d", i, ev.PE)
			}
		case EventLink:
			if ev.From < 0 || ev.To < 0 || ev.From == ev.To {
				return fmt.Errorf("faults: event %d: invalid link %d->%d", i, ev.From, ev.To)
			}
		default:
			return fmt.Errorf("faults: event %d: unknown kind %q (want %q or %q)",
				i, ev.Kind, EventPE, EventLink)
		}
		if ev.Instance < 0 {
			return fmt.Errorf("faults: event %d: negative instance %d", i, ev.Instance)
		}
		if ev.Duration < 0 {
			return fmt.Errorf("faults: event %d: negative duration %d", i, ev.Duration)
		}
	}
	return nil
}

// Enabled reports whether the spec can produce any failure at all.
func (s *FailureSpec) Enabled() bool {
	return s.PEDeathProb > 0 || s.PEFailProb > 0 || s.LinkFailProb > 0 || len(s.Events) > 0
}

// Timeline is a validated, seeded hardware-availability history for a
// platform with a fixed PE count. All methods are safe for concurrent use
// (the timeline is immutable after NewTimeline).
//
// The timeline guarantees at least one surviving PE at every instance: if the
// drawn history would kill or down every PE simultaneously, the PE with the
// latest permanent death instant (ties to the lowest index) is spared its
// outages — a documented keep-alive floor that lets campaigns sweep
// aggressive failure rates without tripping the schedulers' infeasible-mask
// rejection.
type Timeline struct {
	spec FailureSpec
	pes  int
	// death[pe] is the instance at which the PE dies permanently from the
	// stochastic draw (maxInt = never).
	death []int
	// immortal is the keep-alive PE: the one spared when everything else is
	// gone (the PE with the latest stochastic death instant, ties low).
	immortal int
}

// Hash streams for the availability channels, disjoint from Plan's.
const (
	streamPEDeath uint64 = 0x70656474 // "pedt"
	streamPEFail  uint64 = 0x7065666c // "pefl"
	streamLink    uint64 = 0x6c6e666c // "lnfl"
)

const neverDies = math.MaxInt64

// NewTimeline validates a failure spec against a PE count and builds the
// timeline.
func NewTimeline(spec FailureSpec, numPEs int) (*Timeline, error) {
	if numPEs <= 0 {
		return nil, fmt.Errorf("faults: need a positive PE count, got %d", numPEs)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	for i, ev := range spec.Events {
		switch ev.Kind {
		case EventPE:
			if ev.PE >= numPEs {
				return nil, fmt.Errorf("faults: event %d: PE %d out of range for %d PEs", i, ev.PE, numPEs)
			}
		case EventLink:
			if ev.From >= numPEs || ev.To >= numPEs {
				return nil, fmt.Errorf("faults: event %d: link %d->%d out of range for %d PEs",
					i, ev.From, ev.To, numPEs)
			}
		}
	}
	if spec.PEFailProb > 0 && spec.PERepair == 0 {
		spec.PERepair = 1
	}
	if spec.LinkFailProb > 0 && spec.LinkRepair == 0 {
		spec.LinkRepair = 1
	}
	tl := &Timeline{spec: spec, pes: numPEs, death: make([]int, numPEs)}
	for pe := range tl.death {
		tl.death[pe] = tl.deathInstant(pe)
		if tl.death[pe] > tl.death[tl.immortal] {
			tl.immortal = pe
		}
	}
	return tl, nil
}

// Spec returns the validated spec (with defaulted repair times filled in).
func (t *Timeline) Spec() FailureSpec { return t.spec }

// NumPEs returns the PE count the timeline was built for.
func (t *Timeline) NumPEs() int { return t.pes }

// bits/uniform mirror Plan's derivation under the failure spec's seed.
func (t *Timeline) bits(stream, a, b uint64) uint64 {
	h := uint64(t.spec.Seed) * 0x9e3779b97f4a7c15
	h = mix64(h ^ stream)
	h = mix64(h ^ a*0xa24baed4963ee407)
	h = mix64(h ^ b*0x9fb21c651e98df25)
	return h
}

func (t *Timeline) uniform(stream, a, b uint64) float64 {
	return float64(t.bits(stream, a, b)>>11) / (1 << 53)
}

// deathInstant draws the PE's permanent death instance from the geometric
// distribution with per-instance probability PEDeathProb: one uniform per PE,
// inverted through the geometric CDF, so death is O(1) to query and
// monotonic by construction (dead stays dead).
func (t *Timeline) deathInstant(pe int) int {
	q := t.spec.PEDeathProb
	if q <= 0 {
		return neverDies
	}
	if q >= 1 {
		return 0
	}
	u := t.uniform(streamPEDeath, uint64(pe), 0)
	// Smallest k with 1−(1−q)^(k+1) > u, i.e. the instance of the first
	// successful Bernoulli draw.
	k := math.Floor(math.Log1p(-u) / math.Log1p(-q))
	if k >= float64(neverDies) || math.IsNaN(k) {
		return neverDies
	}
	return int(k)
}

// peTransientDown reports whether a stochastic transient outage covers the
// instance for the PE: an outage started within the last PERepair instances.
func (t *Timeline) peTransientDown(instance, pe int) bool {
	q := t.spec.PEFailProb
	if q <= 0 {
		return false
	}
	for j := instance - t.spec.PERepair + 1; j <= instance; j++ {
		if j < 0 {
			continue
		}
		if t.uniform(streamPEFail, uint64(j), uint64(pe)) < q {
			return true
		}
	}
	return false
}

// linkTransientDown reports whether a stochastic link outage covers the
// instance for the directed link.
func (t *Timeline) linkTransientDown(instance, from, to int) bool {
	q := t.spec.LinkFailProb
	if q <= 0 {
		return false
	}
	link := uint64(from)*uint64(t.pes) + uint64(to)
	for j := instance - t.spec.LinkRepair + 1; j <= instance; j++ {
		if j < 0 {
			continue
		}
		if t.uniform(streamLink, uint64(j), link) < q {
			return true
		}
	}
	return false
}

// eventActive reports whether a scripted event covers the instance.
func eventActive(ev FailureEvent, instance int) bool {
	if instance < ev.Instance {
		return false
	}
	return ev.Duration == 0 || instance < ev.Instance+ev.Duration
}

// PermanentlyDead reports whether the PE is permanently gone at the instance
// (stochastic death or a scripted permanent outage) — the label telemetry
// attaches to pe-down events.
func (t *Timeline) PermanentlyDead(instance, pe int) bool {
	if pe < 0 || pe >= t.pes {
		return false
	}
	if t.death[pe] <= instance && pe != t.immortal {
		return true
	}
	for _, ev := range t.spec.Events {
		if ev.Kind == EventPE && ev.PE == pe && ev.Duration == 0 && ev.Instance <= instance {
			return true
		}
	}
	return false
}

// MaskAt returns the availability mask in force during the given instance.
// The result is a fresh mask; callers may mutate it freely. Masks are a pure
// function of (spec, instance): querying any instance in any order yields the
// same history.
func (t *Timeline) MaskAt(instance int) platform.Mask {
	m := platform.FullMask(t.pes)
	for pe := 0; pe < t.pes; pe++ {
		if t.death[pe] <= instance || t.peTransientDown(instance, pe) {
			m.PEs[pe] = false
		}
	}
	if t.spec.LinkFailProb > 0 {
		for i := 0; i < t.pes; i++ {
			for j := 0; j < t.pes; j++ {
				if i != j && t.linkTransientDown(instance, i, j) {
					m.Links[i][j] = false
				}
			}
		}
	}
	for _, ev := range t.spec.Events {
		if !eventActive(ev, instance) {
			continue
		}
		switch ev.Kind {
		case EventPE:
			m.PEs[ev.PE] = false
		case EventLink:
			m.Links[ev.From][ev.To] = false
		}
	}
	// Keep-alive floor: never let the last PE go; a mask with no survivors
	// would be rejected by every scheduler, which is the right response to a
	// hand-built impossible topology but the wrong one mid-sweep.
	alive := 0
	for _, a := range m.PEs {
		if a {
			alive++
		}
	}
	if alive == 0 {
		m.PEs[t.immortal] = true
	}
	return m
}

// DegradedAt reports whether anything is masked out at the instance — a
// cheaper probe than comparing full masks when callers only need a boolean.
func (t *Timeline) DegradedAt(instance int) bool {
	return !t.MaskAt(instance).IsFull()
}
