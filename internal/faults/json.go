package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"ctgdvfs/internal/power"
)

// SpecFile is the on-disk form of a complete fault configuration: the
// execution-time perturbation spec and the hardware-availability failure
// spec, either of which may be omitted. It is the schema behind the
// experiments CLI's -faults-spec flag, letting campaigns be re-run from a
// checked-in JSON file instead of a stack of individual flags.
type SpecFile struct {
	// Perturb parameterizes execution-time faults (overruns, bursts, PE
	// slowdowns); nil means no time perturbation.
	Perturb *Spec `json:"perturb,omitempty"`
	// Failures parameterizes hardware-availability faults (PE death and
	// outage, link outage); nil means the topology never degrades.
	Failures *FailureSpec `json:"failures,omitempty"`
	// Power parameterizes the chip power budget of a consolidation fleet
	// (cap, measurement window, thermal limit, idle model); nil means no
	// budget. Strictly validated: non-finite, zero or negative caps and
	// windows are rejected with a typed *power.SpecError.
	Power *power.Budget `json:"power,omitempty"`
}

// Validate checks both halves of the file.
func (f *SpecFile) Validate() error {
	if f.Perturb != nil {
		if err := f.Perturb.Validate(); err != nil {
			return err
		}
	}
	if f.Failures != nil {
		if err := f.Failures.Validate(); err != nil {
			return err
		}
	}
	if f.Power != nil {
		if err := f.Power.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// DecodeSpecFile parses a fault configuration from JSON, rejecting unknown
// fields (a typo'd key silently ignored would make a campaign lie about what
// it injected) and validating both specs before returning.
func DecodeSpecFile(data []byte) (*SpecFile, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f SpecFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("faults: decode spec file: %w", err)
	}
	// A second document in the same stream is a malformed file, not extra
	// whitespace.
	if dec.More() {
		return nil, fmt.Errorf("faults: spec file contains trailing data")
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// LoadSpecFile reads and decodes a fault configuration from disk.
func LoadSpecFile(path string) (*SpecFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: read spec file: %w", err)
	}
	return DecodeSpecFile(data)
}

// Encode renders the file as indented JSON, validating first so a bad spec
// cannot round-trip into a checked-in artifact.
func (f *SpecFile) Encode() ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("faults: encode spec file: %w", err)
	}
	return append(data, '\n'), nil
}
