package series

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// sparkRunes are the eight-level unicode sparkline glyphs, lowest first.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the trailing `width` values of v as a unicode sparkline,
// scaled to the rendered window's own min/max (a flat window renders at the
// lowest level). NaN samples render as spaces.
func Sparkline(v []float64, width int) string {
	if width <= 0 {
		width = 48
	}
	if len(v) > width {
		v = v[len(v)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if math.IsNaN(x) {
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	var b strings.Builder
	for _, x := range v {
		switch {
		case math.IsNaN(x):
			b.WriteByte(' ')
		case hi <= lo:
			b.WriteRune(sparkRunes[0])
		default:
			idx := int((x - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
			b.WriteRune(sparkRunes[idx])
		}
	}
	return b.String()
}

// WatchOptions configures RenderWatch.
type WatchOptions struct {
	// Width is the sparkline width in samples/columns (default 48).
	Width int
}

// Metric-name prefixes the watch view groups tenant rows by.
const (
	tenantMissPrefix   = "adaptive.tenant_miss_rate."
	tenantGuardPrefix  = "adaptive.tenant_guard_level."
	tenantEnergyPrefix = "adaptive.tenant_round_energy."
)

// watchRow renders one labeled sparkline line: label, sparkline, last value,
// and window min/max.
func watchRow(b *strings.Builder, label string, sd *SeriesDump, width int) {
	if sd == nil || len(sd.V) == 0 {
		return
	}
	last := sd.V[len(sd.V)-1]
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range sd.V {
		if math.IsNaN(x) {
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	fmt.Fprintf(b, "  %-22s %s  %.4g  [%.4g..%.4g]\n", label, Sparkline(sd.V, width), last, lo, hi)
}

// RenderWatch renders a dump as the `ctgsched watch` terminal view: a fleet
// section (rung, chip power vs cap, tenants live) when fleet series are
// present, per-tenant sparkline rows (miss rate, guard level, round energy),
// single-manager rows otherwise (windowed miss rate, guard level, drift),
// and a firing-alerts section. Output is deterministic (series and tenants
// sorted by name), so the view goldens cleanly.
func RenderWatch(d Dump, opts WatchOptions) string {
	width := opts.Width
	if width <= 0 {
		width = 48
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ctgsched watch — %d ticks, %d series\n", d.Ticks, len(d.Series))

	if rung := d.Get("adaptive.fleet_rung"); rung != nil {
		b.WriteString("\nfleet\n")
		watchRow(&b, "rung", rung, width)
		if p := d.Get("adaptive.power_round"); p != nil && len(p.V) > 0 {
			capV := math.NaN()
			if c := d.Get("adaptive.power_cap"); c != nil && len(c.V) > 0 {
				capV = c.V[len(c.V)-1]
			}
			last := p.V[len(p.V)-1]
			fmt.Fprintf(&b, "  %-22s %s  %.4g / cap %.4g\n", "chip power", Sparkline(p.V, width), last, capV)
		}
		watchRow(&b, "power window", d.Get("adaptive.power_window"), width)
		watchRow(&b, "tenants live", d.Get("adaptive.fleet_tenants_live"), width)
	}

	tenants := map[string]bool{}
	for i := range d.Series {
		if name, ok := strings.CutPrefix(d.Series[i].Name, tenantMissPrefix); ok {
			tenants[name] = true
		}
	}
	names := make([]string, 0, len(tenants))
	for n := range tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "\ntenant %s\n", name)
		watchRow(&b, "miss rate", d.Get(tenantMissPrefix+name), width)
		watchRow(&b, "guard level", d.Get(tenantGuardPrefix+name), width)
		watchRow(&b, "round energy", d.Get(tenantEnergyPrefix+name), width)
	}

	if len(names) == 0 {
		if mr := d.Get("adaptive.miss_rate_window"); mr != nil || d.Get("adaptive.miss_rate") != nil {
			b.WriteString("\nmanager\n")
			watchRow(&b, "miss rate (window)", mr, width)
			watchRow(&b, "miss rate (run)", d.Get("adaptive.miss_rate"), width)
			watchRow(&b, "guard level", d.Get("adaptive.guard_level"), width)
			watchRow(&b, "drift", d.Get("adaptive.drift"), width)
		}
	}

	firing := 0
	for _, a := range d.Alerts {
		if a.Firing {
			firing++
		}
	}
	if len(d.Alerts) > 0 {
		fmt.Fprintf(&b, "\nalerts (%d rules, %d firing)\n", len(d.Alerts), firing)
		for _, a := range d.Alerts {
			state := "ok    "
			if a.Firing {
				state = "FIRING"
			}
			fmt.Fprintf(&b, "  %s %-24s %s %s %.4g (value %.4g)\n",
				state, a.Rule.Name, a.Rule.Metric, opDisplay(a.Rule), a.Rule.Value, a.Value)
		}
	}
	return b.String()
}

func opDisplay(r Rule) string {
	if r.Kind == RuleAbsence {
		return "absent ≥"
	}
	op := r.Op
	if op == "" {
		op = ">"
	}
	if r.Kind == RuleRate {
		return "rate " + op
	}
	return op
}
