package series

import (
	"math"
	"reflect"
	"testing"

	"ctgdvfs/internal/telemetry"
)

func TestRingWrap(t *testing.T) {
	s := newSeries("x", 4)
	for i := 0; i < 10; i++ {
		s.push(i, float64(i)*2)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	for i := 0; i < 4; i++ {
		tick, v := s.At(i)
		if tick != 6+i || v != float64(6+i)*2 {
			t.Fatalf("At(%d) = (%d, %g), want (%d, %g)", i, tick, v, 6+i, float64(6+i)*2)
		}
	}
	if tick, v := s.Last(); tick != 9 || v != 18 {
		t.Fatalf("Last = (%d, %g), want (9, 18)", tick, v)
	}
}

func TestSeriesAggregates(t *testing.T) {
	s := newSeries("x", 8)
	if _, v := s.Last(); !math.IsNaN(v) {
		t.Fatalf("empty Last value = %g, want NaN", v)
	}
	if _, ok := s.Delta(0); ok {
		t.Fatal("Delta on empty series reported ok")
	}
	if st := s.Stats(0); st.Count != 0 || !math.IsNaN(st.Mean) {
		t.Fatalf("empty Stats = %+v", st)
	}
	s.push(0, 1)
	s.push(1, 3)
	s.push(3, 2)
	if d, ok := s.Delta(0); !ok || d != 1 {
		t.Fatalf("Delta = (%g, %v), want (1, true)", d, ok)
	}
	// (2-1) over ticks 0..3.
	if r, ok := s.Rate(0); !ok || r != 1.0/3 {
		t.Fatalf("Rate = (%g, %v), want (1/3, true)", r, ok)
	}
	if st := s.Stats(2); st.Count != 2 || st.Min != 2 || st.Max != 3 || st.Mean != 2.5 {
		t.Fatalf("Stats(2) = %+v", st)
	}
}

// TestStoreSamplesAndDiscovers checks the store picks up metrics registered
// after construction (and even after the first tick) and samples everything
// each tick, histograms expanded into their five sub-series.
func TestStoreSamplesAndDiscovers(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	st := NewStore(StoreOptions{Registry: reg, Capacity: 16})
	c.Inc()
	g.Set(1.5)
	st.Tick(0, nil, nil, 0)

	h := reg.Histogram("h", 0, 10, 10)
	h.Observe(2)
	c.Inc()
	g.Set(2.5)
	st.Tick(1, nil, nil, 0)

	if st.Ticks() != 2 {
		t.Fatalf("Ticks = %d, want 2", st.Ticks())
	}
	wantNames := []string{"c", "g", "h.count", "h.mean", "h.p50", "h.p95", "h.p99"}
	if got := st.Names(); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("Names = %v, want %v", got, wantNames)
	}
	cs := st.Series("c")
	if cs.Len() != 2 {
		t.Fatalf("counter series has %d samples, want 2", cs.Len())
	}
	if _, v := cs.Last(); v != 2 {
		t.Fatalf("counter last = %g, want 2", v)
	}
	if tick, v := st.Series("g").Last(); tick != 1 || v != 2.5 {
		t.Fatalf("gauge last = (%d, %g), want (1, 2.5)", tick, v)
	}
	// The histogram appeared after tick 0, so its sub-series hold one sample.
	hc := st.Series("h" + SuffixCount)
	if hc.Len() != 1 {
		t.Fatalf("histogram count series has %d samples, want 1", hc.Len())
	}
	if _, v := hc.Last(); v != 1 {
		t.Fatalf("histogram count = %g, want 1", v)
	}
	if _, v := st.Series("h" + SuffixMean).Last(); v != 2 {
		t.Fatalf("histogram mean = %g, want 2", v)
	}
}

// TestStoreDeterministicAcrossRegistrationOrder pins the discovery sort: two
// runs registering the same metrics in different orders build identical
// stores.
func TestStoreDeterministicAcrossRegistrationOrder(t *testing.T) {
	build := func(names []string) Dump {
		reg := telemetry.NewRegistry()
		for i, n := range names {
			reg.Gauge(n).Set(float64(i))
		}
		st := NewStore(StoreOptions{Registry: reg, Capacity: 8})
		st.Tick(0, nil, nil, 0)
		for _, n := range names {
			reg.Gauge(n).Set(7)
		}
		st.Tick(1, nil, nil, 0)
		d := st.Dump()
		// Zero out the values that legitimately differ (first-tick values
		// depend on registration order above); shape and order must not.
		for i := range d.Series {
			d.Series[i].V[0] = 0
		}
		return d
	}
	a := build([]string{"b", "a", "c"})
	b := build([]string{"c", "b", "a"})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("store shape depends on registration order:\n%+v\n%+v", a, b)
	}
}

func TestNilStoreIsNoop(t *testing.T) {
	var st *Store
	st.Tick(0, nil, nil, 0) // must not panic
	if st.Ticks() != 0 || st.Len() != 0 || st.Series("x") != nil || st.Names() != nil {
		t.Fatal("nil store accessors must return zero values")
	}
	if d := st.Dump(); len(d.Series) != 0 {
		t.Fatal("nil store dump must be empty")
	}
}

// TestStoreTickAllocsZero pins the always-on cost: once every metric has been
// discovered, Tick allocates nothing — including rule evaluation.
func TestStoreTickAllocsZero(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h", 0, 10, 10)
	st := NewStore(StoreOptions{Registry: reg, Capacity: 64, Rules: []Rule{
		{Name: "hot", Metric: "g", Value: 1e9},
		{Name: "quiet", Metric: "c", Kind: RuleRate, Value: 1e9},
	}})
	rec := telemetry.NewMemoryRecorder()
	seq := telemetry.NewSequencer()
	st.Tick(0, rec, seq, 0)
	tick := 1
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(float64(tick))
		h.Observe(float64(tick % 10))
		st.Tick(tick, rec, seq, 0)
		tick++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Tick allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestCollectorIngestSnapshot(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("c").Add(3)
	reg.Gauge("g").Set(0.5)
	reg.Histogram("h", 0, 10, 10).Observe(4)

	col := NewCollector(8)
	col.IngestSnapshot(0, reg.Snapshot())
	reg.Counter("c").Inc()
	col.IngestSnapshot(1, reg.Snapshot())

	d := col.Dump()
	if d.Ticks != 2 {
		t.Fatalf("Ticks = %d, want 2", d.Ticks)
	}
	cs := d.Get("c")
	if cs == nil || !reflect.DeepEqual(cs.V, []float64{3, 4}) {
		t.Fatalf("counter series = %+v", cs)
	}
	for _, name := range []string{"h" + SuffixCount, "h" + SuffixMean, "h" + SuffixP50, "h" + SuffixP95, "h" + SuffixP99} {
		if d.Get(name) == nil {
			t.Fatalf("missing expanded histogram series %s", name)
		}
	}
}
