package series

import (
	"strings"
	"testing"

	"ctgdvfs/internal/telemetry"
)

// TestThresholdRuleForAndHysteresis walks the full rule state machine: the
// for-hold delays the firing, the firing event carries Seq/Cause provenance,
// the Clear dead band keeps the rule firing between clear and value, and the
// resolution chains back to the firing via Cause.
func TestThresholdRuleForAndHysteresis(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("m")
	clear := 0.1
	st := NewStore(StoreOptions{Registry: reg, Rules: []Rule{
		{Name: "hot", Metric: "m", Value: 0.2, For: 2, Clear: &clear},
	}})
	rec := telemetry.NewMemoryRecorder()
	seq := telemetry.NewSequencer()
	step := func(tick int, v float64, cause uint64) {
		g.Set(v)
		st.Tick(tick, rec, seq, cause)
	}

	step(0, 0.3, 7) // hold 1 of 2: no event yet
	if n := len(rec.Events()); n != 0 {
		t.Fatalf("rule fired after one breaching sample despite For: 2 (%d events)", n)
	}
	step(1, 0.35, 9) // hold 2 -> fires
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Kind != telemetry.KindAlertFiring {
		t.Fatalf("want one alert_firing event, got %+v", evs)
	}
	fire := evs[0]
	if fire.Name != "hot" || fire.Reason != "m" || fire.Value != 0.35 || fire.Threshold != 0.2 {
		t.Fatalf("firing payload %+v", fire)
	}
	if fire.Instance != 1 || fire.Level != 2 {
		t.Fatalf("firing tick/hold = %d/%d, want 1/2", fire.Instance, fire.Level)
	}
	if fire.Seq == 0 || fire.Cause != 9 {
		t.Fatalf("firing Seq/Cause = %d/%d, want nonzero/9 (this tick's cause)", fire.Seq, fire.Cause)
	}

	step(2, 0.15, 0) // inside the dead band: still firing, no event
	if len(rec.Events()) != 1 {
		t.Fatal("rule flapped inside the Clear dead band")
	}
	al := st.Alerts()
	if len(al) != 1 || !al[0].Firing || al[0].Value != 0.15 {
		t.Fatalf("Alerts mid-band = %+v", al)
	}

	step(3, 0.05, 0) // below clear -> resolves
	evs = rec.Events()
	if len(evs) != 2 || evs[1].Kind != telemetry.KindAlertResolved {
		t.Fatalf("want alert_resolved, got %+v", evs)
	}
	if evs[1].Cause != fire.Seq {
		t.Fatalf("resolve Cause = %d, want the firing seq %d", evs[1].Cause, fire.Seq)
	}
	if al := st.Alerts(); al[0].Firing {
		t.Fatal("rule still firing after resolve")
	}

	// A breach after resolution is a fresh episode: hold restarts.
	step(4, 0.3, 0)
	if len(rec.Events()) != 2 {
		t.Fatal("hold counter did not reset after resolve")
	}
}

func TestRateRule(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("m")
	st := NewStore(StoreOptions{Registry: reg, Rules: []Rule{
		{Name: "climb", Metric: "m", Kind: RuleRate, Value: 0.5, Window: 4},
	}})
	rec := telemetry.NewMemoryRecorder()
	g.Set(0)
	st.Tick(0, rec, nil, 0) // one sample: rate undefined, no fire
	if len(rec.Events()) != 0 {
		t.Fatal("rate rule fired with a single sample")
	}
	g.Set(2)
	st.Tick(1, rec, nil, 0) // rate (2-0)/1 = 2 > 0.5 -> fires
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Kind != telemetry.KindAlertFiring || evs[0].Value != 2 {
		t.Fatalf("rate firing events %+v", evs)
	}
}

func TestAbsenceRule(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("present").Set(1) // some unrelated metric keeps the store busy
	st := NewStore(StoreOptions{Registry: reg, Rules: []Rule{
		{Name: "silent", Metric: "ghost", Kind: RuleAbsence, Stale: 3},
	}})
	rec := telemetry.NewMemoryRecorder()
	st.Tick(0, rec, nil, 0)
	st.Tick(1, rec, nil, 0)
	if len(rec.Events()) != 0 {
		t.Fatal("absence rule fired before Stale ticks of silence")
	}
	st.Tick(2, rec, nil, 0) // third silent tick -> fires
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Kind != telemetry.KindAlertFiring || evs[0].Name != "silent" {
		t.Fatalf("absence firing events %+v", evs)
	}
	// The metric appears: the next tick samples it at the current tick and
	// the rule resolves.
	reg.Gauge("ghost").Set(4)
	st.Tick(3, rec, nil, 0)
	evs = rec.Events()
	if len(evs) != 2 || evs[1].Kind != telemetry.KindAlertResolved {
		t.Fatalf("absence did not resolve on reappearance: %+v", evs)
	}
}

func TestRuleValidate(t *testing.T) {
	bad := []Rule{
		{Metric: "m", Value: 1},                 // no name
		{Name: "x", Value: 1},                   // no metric
		{Name: "x", Metric: "m", Kind: "bogus"}, // unknown kind
		{Name: "x", Metric: "m", Op: "=="},      // unknown op
		{Name: "x", Metric: "m", For: -1},       // negative for
		{Name: "x", Metric: "m", Value: 0.1, Clear: func() *float64 { v := 0.2; return &v }()}, // clear above a ">" bound
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %d (%+v) validated, want error", i, r)
		}
	}
	good := Rule{Name: "x", Metric: "m", Op: "<", Value: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
}

func TestParseRulesRejectsUnknownFields(t *testing.T) {
	_, err := ParseRules(strings.NewReader(`{"rules":[{"name":"x","metric":"m","bogus":1}]}`))
	if err == nil {
		t.Fatal("unknown rule field accepted")
	}
	rs, err := ParseRules(strings.NewReader(`{"rules":[{"name":"x","metric":"m","value":0.5,"for":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rules) != 1 || rs.Rules[0].For != 2 {
		t.Fatalf("parsed %+v", rs)
	}
}

func TestNewStorePanicsOnBadInput(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("nil registry", func() { NewStore(StoreOptions{}) })
	expectPanic("invalid rule", func() {
		NewStore(StoreOptions{Registry: telemetry.NewRegistry(), Rules: []Rule{{Name: "x"}}})
	})
}
