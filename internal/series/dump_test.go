package series

import (
	"bytes"
	"reflect"
	"testing"

	"ctgdvfs/internal/telemetry"
)

// TestDumpRoundTrip checks WriteJSON/ReadDump preserve the store's contents
// exactly, including rule statuses.
func TestDumpRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	st := NewStore(StoreOptions{Registry: reg, Capacity: 8, Rules: []Rule{
		{Name: "hot", Metric: "g", Value: 0.5},
	}})
	rec := telemetry.NewMemoryRecorder()
	for i := 0; i < 5; i++ {
		c.Inc()
		g.Set(float64(i) / 4)
		st.Tick(i, rec, nil, 0)
	}

	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := st.Dump()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if gs := got.Get("g"); gs == nil || len(gs.V) != 5 || gs.V[4] != 1 {
		t.Fatalf("gauge series after round-trip: %+v", got.Get("g"))
	}
	if len(got.Alerts) != 1 || !got.Alerts[0].Firing {
		t.Fatalf("alert status after round-trip: %+v", got.Alerts)
	}
	if got.Get("missing") != nil {
		t.Fatal("Get on absent series must return nil")
	}
}

func TestReadDumpRejectsGarbage(t *testing.T) {
	if _, err := ReadDump(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Fatal("garbage dump accepted")
	}
}
