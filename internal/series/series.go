// Package series is the deterministic time-series layer over the telemetry
// metrics registry: a fixed-capacity ring-buffer store that samples every
// registered metric on sim-time boundaries (instance index for managers,
// round index for fleets — never wall clock, so replays are bit-for-bit), a
// rule-based alerting engine evaluated per sample (rules.go), a replayable
// JSON dump format (dump.go), and a terminal sparkline renderer (watch.go).
//
// Like the flight recorder, the store is cheap enough to leave always on:
// steady-state sampling reuses preallocated rings and allocates nothing
// (pinned by benchmark — handle discovery runs only when the registry grew),
// and a nil *Store ignores Tick calls so the disabled path is one branch.
package series

import (
	"math"
	"sort"

	"ctgdvfs/internal/telemetry"
)

// DefaultCapacity is the ring length used when StoreOptions.Capacity is not
// positive: enough history for a watch window without unbounded growth.
const DefaultCapacity = 512

// Histogram sub-series suffixes: each histogram metric expands into five
// scalar series so windowed aggregates and rules work uniformly.
const (
	SuffixCount = ".count"
	SuffixMean  = ".mean"
	SuffixP50   = ".p50"
	SuffixP95   = ".p95"
	SuffixP99   = ".p99"
)

var histSuffixes = [5]string{SuffixCount, SuffixMean, SuffixP50, SuffixP95, SuffixP99}

// Series is one named ring of (tick, value) samples, oldest overwritten
// first. Ticks are the producer's sim-time index (instance or round), not
// timestamps.
type Series struct {
	name string
	t    []int
	v    []float64
	head int // next write slot
	n    int // live samples (≤ cap)
}

func newSeries(name string, capacity int) *Series {
	return &Series{name: name, t: make([]int, capacity), v: make([]float64, capacity)}
}

// Name returns the series name (the registry metric name, plus a histogram
// suffix for expanded histogram series).
func (s *Series) Name() string { return s.name }

// Len returns the number of live samples (≤ capacity).
func (s *Series) Len() int { return s.n }

func (s *Series) push(t int, v float64) {
	s.t[s.head] = t
	s.v[s.head] = v
	s.head++
	if s.head == len(s.v) {
		s.head = 0
	}
	if s.n < len(s.v) {
		s.n++
	}
}

// At returns the i-th live sample, oldest first (0 ≤ i < Len).
func (s *Series) At(i int) (tick int, value float64) {
	idx := s.head - s.n + i
	if idx < 0 {
		idx += len(s.v)
	}
	return s.t[idx], s.v[idx]
}

// Last returns the most recent sample, or (0, NaN) when empty.
func (s *Series) Last() (tick int, value float64) {
	if s.n == 0 {
		return 0, math.NaN()
	}
	return s.At(s.n - 1)
}

// Delta returns last − first over the trailing window of at most `window`
// samples (whole ring when window ≤ 0), or 0 with ok=false when fewer than
// two samples exist.
func (s *Series) Delta(window int) (delta float64, ok bool) {
	w := s.window(window)
	if w < 2 {
		return 0, false
	}
	_, first := s.At(s.n - w)
	_, last := s.At(s.n - 1)
	return last - first, true
}

// Rate returns Delta divided by the tick span of the same window — the
// per-tick rate of change. ok=false when fewer than two samples exist or the
// window spans zero ticks.
func (s *Series) Rate(window int) (rate float64, ok bool) {
	w := s.window(window)
	if w < 2 {
		return 0, false
	}
	t0, first := s.At(s.n - w)
	t1, last := s.At(s.n - 1)
	if t1 == t0 {
		return 0, false
	}
	return (last - first) / float64(t1-t0), true
}

// WindowStats summarizes the trailing window of a series.
type WindowStats struct {
	Count int
	Min   float64
	Max   float64
	Mean  float64
}

// Stats aggregates the trailing window of at most `window` samples (whole
// ring when window ≤ 0). An empty series yields Count 0 and NaN bounds.
func (s *Series) Stats(window int) WindowStats {
	w := s.window(window)
	if w == 0 {
		return WindowStats{Min: math.NaN(), Max: math.NaN(), Mean: math.NaN()}
	}
	st := WindowStats{Count: w, Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for i := s.n - w; i < s.n; i++ {
		_, v := s.At(i)
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		sum += v
	}
	st.Mean = sum / float64(w)
	return st
}

func (s *Series) window(window int) int {
	if window <= 0 || window > s.n {
		return s.n
	}
	return window
}

// StoreOptions configures a Store.
type StoreOptions struct {
	// Registry is the metrics registry the store samples. Required.
	Registry *telemetry.Registry
	// Capacity is the per-series ring length (default DefaultCapacity).
	Capacity int
	// Rules are evaluated against the freshly sampled values on every Tick;
	// firings and resolutions are emitted as telemetry events through the
	// recorder passed to Tick.
	Rules []Rule
}

// counterHandle pairs a resolved counter with its series ring.
type counterHandle struct {
	c *telemetry.Counter
	s *Series
}

type gaugeHandle struct {
	g *telemetry.Gauge
	s *Series
}

type histHandle struct {
	h *telemetry.HistogramMetric
	s [5]*Series // count, mean, p50, p95, p99 — histSuffixes order
}

// Store samples a metrics registry into fixed-capacity per-metric rings on
// demand (Tick) and evaluates alert rules against each sample. It is not
// internally locked: one producer owns one store and ticks it from its own
// step loop (the manager's instance boundary, the fleet's round boundary).
// Give concurrent producers their own stores over mirror registries
// (telemetry.NewMirrorRegistry) — that is what keeps sampling deterministic
// under parallel campaigns.
type Store struct {
	reg      *telemetry.Registry
	capacity int

	counters []counterHandle
	gauges   []gaugeHandle
	hists    []histHandle
	// byName indexes every series (histograms under their suffixed names)
	// for rule evaluation and dump/read access.
	byName map[string]*Series
	// cached registry sizes: discovery reruns only when these change, which
	// keeps the steady-state Tick allocation-free.
	nCounters, nGauges, nHists int

	rules []*ruleState
	ticks int
}

// NewStore builds a store over opts.Registry. Panics on a nil registry or an
// invalid rule (campaign setup is fail-fast; validate user-supplied rule
// files with RuleSet.Validate first).
func NewStore(opts StoreOptions) *Store {
	if opts.Registry == nil {
		panic("series: NewStore requires a Registry")
	}
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	st := &Store{
		reg:      opts.Registry,
		capacity: capacity,
		byName:   make(map[string]*Series),
	}
	for i := range opts.Rules {
		r := opts.Rules[i]
		if err := r.Validate(); err != nil {
			panic("series: " + err.Error())
		}
		st.rules = append(st.rules, newRuleState(r))
	}
	return st
}

// Registry returns the registry the store samples — producers that accept a
// store use this as their metrics registry so every write lands where the
// sampler reads.
func (st *Store) Registry() *telemetry.Registry {
	if st == nil {
		return nil
	}
	return st.reg
}

// Ticks returns how many samples have been taken.
func (st *Store) Ticks() int {
	if st == nil {
		return 0
	}
	return st.ticks
}

// Len returns the number of series (histograms counted per sub-series).
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	return len(st.byName)
}

// Series returns the named series (nil when absent). Histogram sub-series
// use the metric name plus a Suffix* constant.
func (st *Store) Series(name string) *Series {
	if st == nil {
		return nil
	}
	return st.byName[name]
}

// Names returns every series name in sorted order.
func (st *Store) Names() []string {
	if st == nil {
		return nil
	}
	names := make([]string, 0, len(st.byName))
	for n := range st.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Tick samples every registered metric at sim-time t and evaluates the alert
// rules against the fresh values. rec/seq stamp rule firings as telemetry
// events; cause is the Seq of the event the sample was taken at (the
// instance_finish for managers, the round's budget breach for fleets, 0 for
// none) and becomes the Cause of any alert fired on this tick. A nil store
// ignores the call.
//
// Steady state (no new metrics registered since the previous tick) allocates
// nothing: the change check is three map lengths under the registry's read
// lock, sampling writes into preallocated rings, and rule evaluation is
// plain arithmetic on resolved series handles.
func (st *Store) Tick(t int, rec telemetry.Recorder, seq *telemetry.Sequencer, cause uint64) {
	if st == nil {
		return
	}
	if nc, ng, nh := st.reg.Sizes(); nc != st.nCounters || ng != st.nGauges || nh != st.nHists {
		st.discover(nc, ng, nh)
	}
	for i := range st.counters {
		h := &st.counters[i]
		h.s.push(t, float64(h.c.Value()))
	}
	for i := range st.gauges {
		h := &st.gauges[i]
		h.s.push(t, h.g.Value())
	}
	for i := range st.hists {
		h := &st.hists[i]
		snap := h.h.Snapshot()
		h.s[0].push(t, float64(snap.Count))
		h.s[1].push(t, snap.Mean)
		h.s[2].push(t, snap.P50)
		h.s[3].push(t, snap.P95)
		h.s[4].push(t, snap.P99)
	}
	st.ticks++
	for _, rs := range st.rules {
		rs.eval(st, t, rec, seq, cause)
	}
}

// discover resolves handles for metrics that appeared since the last tick.
// It runs off the steady-state path (only when the registry grew) and keeps
// ring creation deterministic by sorting new names before appending — two
// runs that register the same metrics in different orders still build
// identical stores.
func (st *Store) discover(nc, ng, nh int) {
	var newCounters, newGauges, newHists []string
	st.reg.VisitCounters(func(name string, _ *telemetry.Counter) {
		if _, ok := st.byName[name]; !ok {
			newCounters = append(newCounters, name)
		}
	})
	st.reg.VisitGauges(func(name string, _ *telemetry.Gauge) {
		if _, ok := st.byName[name]; !ok {
			newGauges = append(newGauges, name)
		}
	})
	st.reg.VisitHistograms(func(name string, _ *telemetry.HistogramMetric) {
		if _, ok := st.byName[name+SuffixCount]; !ok {
			newHists = append(newHists, name)
		}
	})
	sort.Strings(newCounters)
	sort.Strings(newGauges)
	sort.Strings(newHists)
	for _, name := range newCounters {
		s := newSeries(name, st.capacity)
		st.byName[name] = s
		st.counters = append(st.counters, counterHandle{c: st.reg.Counter(name), s: s})
	}
	for _, name := range newGauges {
		s := newSeries(name, st.capacity)
		st.byName[name] = s
		st.gauges = append(st.gauges, gaugeHandle{g: st.reg.Gauge(name), s: s})
	}
	for _, name := range newHists {
		// Histogram layout args are ignored for existing metrics, so the
		// zero layout resolves the already-created handle.
		h := histHandle{h: st.reg.Histogram(name, 0, 1, 1)}
		for i, suf := range histSuffixes {
			s := newSeries(name+suf, st.capacity)
			st.byName[name+suf] = s
			h.s[i] = s
		}
		st.hists = append(st.hists, h)
	}
	st.nCounters, st.nGauges, st.nHists = nc, ng, nh
}

// Collector is a client-side store builder for consumers that do not own a
// registry — `ctgsched watch` polling a /metrics endpoint ingests successive
// snapshots into one.
type Collector struct {
	capacity int
	byName   map[string]*Series
	ticks    int
}

// NewCollector returns an empty collector with the given per-series ring
// capacity (default DefaultCapacity).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Collector{capacity: capacity, byName: make(map[string]*Series)}
}

// Observe appends one (tick, value) sample to the named series, creating it
// on first use.
func (c *Collector) Observe(name string, t int, v float64) {
	s, ok := c.byName[name]
	if !ok {
		s = newSeries(name, c.capacity)
		c.byName[name] = s
	}
	s.push(t, v)
}

// IngestSnapshot appends every metric of a registry snapshot at tick t,
// expanding histograms into the same five sub-series a Store produces.
func (c *Collector) IngestSnapshot(t int, snap telemetry.Snapshot) {
	for name, v := range snap.Counters {
		c.Observe(name, t, float64(v))
	}
	for name, v := range snap.Gauges {
		c.Observe(name, t, v)
	}
	for name, h := range snap.Histograms {
		c.Observe(name+SuffixCount, t, float64(h.Count))
		c.Observe(name+SuffixMean, t, h.Mean)
		c.Observe(name+SuffixP50, t, h.P50)
		c.Observe(name+SuffixP95, t, h.P95)
		c.Observe(name+SuffixP99, t, h.P99)
	}
	c.ticks++
}

// Dump converts the collector's contents into the same Dump a Store
// produces, so one renderer serves both live and replay watch modes.
func (c *Collector) Dump() Dump {
	return dumpFrom(c.capacity, c.ticks, c.byName, nil)
}
