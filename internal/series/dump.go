package series

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// SeriesDump is one series in on-disk form: parallel tick/value arrays,
// oldest first.
type SeriesDump struct {
	Name string    `json:"name"`
	T    []int     `json:"t"`
	V    []float64 `json:"v"`
}

// Dump is the replayable on-disk form of a store: every series (sorted by
// name) plus the rule statuses at dump time. `ctgsched watch -dump` renders
// one directly.
type Dump struct {
	Capacity int           `json:"capacity"`
	Ticks    int           `json:"ticks"`
	Series   []SeriesDump  `json:"series"`
	Alerts   []AlertStatus `json:"alerts,omitempty"`
}

func dumpFrom(capacity, ticks int, byName map[string]*Series, alerts []AlertStatus) Dump {
	d := Dump{Capacity: capacity, Ticks: ticks, Alerts: alerts}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		s := byName[name]
		sd := SeriesDump{Name: name, T: make([]int, s.Len()), V: make([]float64, s.Len())}
		for i := 0; i < s.Len(); i++ {
			sd.T[i], sd.V[i] = s.At(i)
		}
		d.Series = append(d.Series, sd)
	}
	return d
}

// Dump captures the store's full contents, series sorted by name.
func (st *Store) Dump() Dump {
	if st == nil {
		return Dump{}
	}
	return dumpFrom(st.capacity, st.ticks, st.byName, st.Alerts())
}

// WriteJSON writes the dump as indented JSON (series pre-sorted by name, so
// output is deterministic).
func (st *Store) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st.Dump())
}

// ReadDump decodes a dump written by WriteJSON.
func ReadDump(r io.Reader) (Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return Dump{}, fmt.Errorf("series: read dump: %w", err)
	}
	return d, nil
}

// LoadDump reads a dump file.
func LoadDump(path string) (Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return Dump{}, err
	}
	defer f.Close()
	return ReadDump(f)
}

// Get returns the named series of the dump (nil when absent).
func (d Dump) Get(name string) *SeriesDump {
	for i := range d.Series {
		if d.Series[i].Name == name {
			return &d.Series[i]
		}
	}
	return nil
}
