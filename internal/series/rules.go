package series

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ctgdvfs/internal/telemetry"
)

// RuleKind enumerates the alert rule types.
type RuleKind string

const (
	// RuleThreshold fires when the metric's latest sample crosses Value.
	RuleThreshold RuleKind = "threshold"
	// RuleRate fires when the metric's per-tick rate of change over Window
	// samples crosses Value.
	RuleRate RuleKind = "rate"
	// RuleAbsence fires when the metric has not been sampled for Stale
	// consecutive ticks (a producer that should be reporting went silent).
	RuleAbsence RuleKind = "absence"
)

// Rule is one alert rule over one series. Rules are evaluated on every Tick
// against the freshly sampled values; a rule must hold for For consecutive
// breaching samples before it fires (the `for`-duration), and once firing it
// resolves only when the clear-side condition holds (hysteresis via Clear).
type Rule struct {
	// Name identifies the rule in alert events and the watch view.
	Name string `json:"name"`
	// Metric is the series watched (histogram sub-series use the metric name
	// plus .count/.mean/.p50/.p95/.p99).
	Metric string `json:"metric"`
	// Kind selects threshold, rate or absence semantics (default threshold).
	Kind RuleKind `json:"kind,omitempty"`
	// Op is the breach comparison: ">", ">=", "<" or "<=" (default ">").
	// Ignored by absence rules.
	Op string `json:"op,omitempty"`
	// Value is the breach bound. Ignored by absence rules.
	Value float64 `json:"value"`
	// For is the number of consecutive breaching samples required before the
	// rule fires (default 1 — fire on first breach).
	For int `json:"for,omitempty"`
	// Clear is the resolve bound: a firing rule resolves when the observed
	// value is on the non-breach side of Clear. Default Value (no
	// hysteresis); set it inside the breach bound to add a dead band, e.g.
	// Op ">" Value 0.12 Clear 0.10 fires above 0.12 and resolves below 0.10.
	Clear *float64 `json:"clear,omitempty"`
	// Window is the trailing sample window of a rate rule (default 8).
	Window int `json:"window,omitempty"`
	// Stale is the silent-tick count that fires an absence rule (default 8).
	Stale int `json:"stale,omitempty"`
}

// Validate reports whether the rule is well-formed.
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("rule has no name")
	}
	if r.Metric == "" {
		return fmt.Errorf("rule %q has no metric", r.Name)
	}
	switch r.Kind {
	case "", RuleThreshold, RuleRate, RuleAbsence:
	default:
		return fmt.Errorf("rule %q: unknown kind %q", r.Name, r.Kind)
	}
	switch r.Op {
	case "", ">", ">=", "<", "<=":
	default:
		return fmt.Errorf("rule %q: unknown op %q", r.Name, r.Op)
	}
	if r.For < 0 {
		return fmt.Errorf("rule %q: negative for %d", r.Name, r.For)
	}
	if r.Window < 0 {
		return fmt.Errorf("rule %q: negative window %d", r.Name, r.Window)
	}
	if r.Stale < 0 {
		return fmt.Errorf("rule %q: negative stale %d", r.Name, r.Stale)
	}
	if r.Clear != nil && r.Kind != RuleAbsence {
		op, v, c := r.Op, r.Value, *r.Clear
		if op == "" {
			op = ">"
		}
		upper := op == ">" || op == ">="
		if (upper && c > v) || (!upper && c < v) {
			return fmt.Errorf("rule %q: clear %g is outside the %s %g breach bound", r.Name, c, op, v)
		}
	}
	return nil
}

// RuleSet is a named collection of rules — the on-disk format of a -rules
// file.
type RuleSet struct {
	Rules []Rule `json:"rules"`
}

// Validate validates every rule.
func (rs RuleSet) Validate() error {
	for _, r := range rs.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ParseRules decodes a RuleSet from JSON and validates it.
func ParseRules(r io.Reader) (RuleSet, error) {
	var rs RuleSet
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rs); err != nil {
		return RuleSet{}, fmt.Errorf("series: parse rules: %w", err)
	}
	if err := rs.Validate(); err != nil {
		return RuleSet{}, fmt.Errorf("series: %w", err)
	}
	return rs, nil
}

// LoadRules reads and validates a rules file.
func LoadRules(path string) (RuleSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return RuleSet{}, err
	}
	defer f.Close()
	return ParseRules(f)
}

// ruleState is the per-rule evaluation state machine: a hold counter climbs
// on breaching samples, the rule fires at hold ≥ For, and a firing rule
// resolves when the clear-side condition holds.
type ruleState struct {
	rule    Rule
	op      string
	forN    int
	clear   float64
	window  int
	stale   int
	hold    int
	firing  bool
	fireSeq uint64 // Seq of the alert_firing event, Cause of the resolve
	// silent counts consecutive ticks the watched series went unsampled
	// (absence rules).
	silent  int
	value   float64 // last observed value (watch display)
	firedAt int     // tick the rule last fired (watch display)
}

func newRuleState(r Rule) *ruleState {
	st := &ruleState{rule: r, op: r.Op, forN: r.For, window: r.Window, stale: r.Stale}
	if st.op == "" {
		st.op = ">"
	}
	if st.forN <= 0 {
		st.forN = 1
	}
	if st.window <= 0 {
		st.window = 8
	}
	if st.stale <= 0 {
		st.stale = 8
	}
	if r.Clear != nil {
		st.clear = *r.Clear
	} else {
		st.clear = r.Value
	}
	return st
}

func (st *ruleState) breach(v float64) bool {
	switch st.op {
	case ">":
		return v > st.rule.Value
	case ">=":
		return v >= st.rule.Value
	case "<":
		return v < st.rule.Value
	case "<=":
		return v <= st.rule.Value
	}
	return false
}

// cleared reports the hysteresis resolve condition: the value is strictly on
// the non-breach side of the clear bound.
func (st *ruleState) cleared(v float64) bool {
	switch st.op {
	case ">":
		return v <= st.clear
	case ">=":
		return v < st.clear
	case "<":
		return v >= st.clear
	case "<=":
		return v > st.clear
	}
	return false
}

// eval advances the rule state machine for the sample taken at tick t.
func (st *ruleState) eval(store *Store, t int, rec telemetry.Recorder, seq *telemetry.Sequencer, cause uint64) {
	s := store.byName[st.rule.Metric]

	if st.rule.Kind == RuleAbsence {
		// A series is "present" on this tick iff its newest sample carries
		// tick t — stores push every known metric each tick, so a stale or
		// missing series means its producer stopped registering values.
		present := false
		if s != nil {
			if tick, _ := s.Last(); tick == t && s.Len() > 0 {
				present = true
			}
		}
		if present {
			st.silent = 0
			if st.firing {
				st.resolve(t, 0, rec, seq)
			}
			return
		}
		st.silent++
		st.value = float64(st.silent)
		if st.silent >= st.stale && !st.firing {
			st.hold = st.silent
			st.fire(t, float64(st.silent), rec, seq, cause)
		}
		return
	}

	if s == nil || s.Len() == 0 {
		return
	}
	var v float64
	var ok bool
	switch st.rule.Kind {
	case RuleRate:
		v, ok = s.Rate(st.window)
	default: // threshold
		_, v = s.Last()
		ok = true
	}
	if !ok {
		return
	}
	st.value = v
	if st.firing {
		if st.cleared(v) {
			st.resolve(t, v, rec, seq)
		}
		return
	}
	if st.breach(v) {
		st.hold++
		if st.hold >= st.forN {
			st.fire(t, v, rec, seq, cause)
		}
	} else {
		st.hold = 0
	}
}

func (st *ruleState) fire(t int, v float64, rec telemetry.Recorder, seq *telemetry.Sequencer, cause uint64) {
	st.firing = true
	st.firedAt = t
	if rec == nil {
		return
	}
	var sq uint64
	if seq != nil {
		sq = seq.Next()
	}
	st.fireSeq = sq
	rec.Record(telemetry.Event{
		Kind:      telemetry.KindAlertFiring,
		Instance:  t,
		Seq:       sq,
		Cause:     cause,
		Name:      st.rule.Name,
		Reason:    st.rule.Metric,
		Value:     v,
		Threshold: st.rule.Value,
		Level:     st.hold,
	})
}

func (st *ruleState) resolve(t int, v float64, rec telemetry.Recorder, seq *telemetry.Sequencer) {
	st.firing = false
	st.hold = 0
	st.silent = 0
	fireSeq := st.fireSeq
	st.fireSeq = 0
	if rec == nil {
		return
	}
	var sq uint64
	if seq != nil {
		sq = seq.Next()
	}
	rec.Record(telemetry.Event{
		Kind:      telemetry.KindAlertResolved,
		Instance:  t,
		Seq:       sq,
		Cause:     fireSeq,
		Name:      st.rule.Name,
		Reason:    st.rule.Metric,
		Value:     v,
		Threshold: st.rule.Value,
	})
}

// AlertStatus is the externally visible state of one rule.
type AlertStatus struct {
	Rule    Rule    `json:"rule"`
	Firing  bool    `json:"firing"`
	Value   float64 `json:"value"`
	Hold    int     `json:"hold,omitempty"`
	FiredAt int     `json:"fired_at,omitempty"`
}

// Alerts returns the current status of every rule, in rule order.
func (st *Store) Alerts() []AlertStatus {
	if st == nil || len(st.rules) == 0 {
		return nil
	}
	out := make([]AlertStatus, len(st.rules))
	for i, rs := range st.rules {
		out[i] = AlertStatus{
			Rule:    rs.rule,
			Firing:  rs.firing,
			Value:   rs.value,
			Hold:    rs.hold,
			FiredAt: rs.firedAt,
		}
	}
	return out
}
