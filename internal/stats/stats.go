// Package stats provides the small summary-statistics helpers the
// experiment harness uses to report multi-seed robustness runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
}

// Summarize computes the summary of a sample. An empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(s.Std / float64(len(xs)-1))
	} else {
		s.Std = 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// String renders "mean ± std [min … max] (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.3g ± %.2g [%.3g … %.3g] (n=%d)", s.Mean, s.Std, s.Min, s.Max, s.N)
}
