package stats

import (
	"math"
	"testing"
)

// TestHistogramSingleSample pins the one-observation edge: every quantile
// collapses to that observation and the moments are exact.
func TestHistogramSingleSample(t *testing.T) {
	h := MustHistogram(0, 100, 16)
	h.Observe(42)
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("Quantile(%v) = %v, want 42", q, got)
		}
	}
	if h.Sum() != 42 || h.Mean() != 42 || h.Min() != 42 || h.Max() != 42 {
		t.Fatalf("moments wrong: sum %v mean %v min %v max %v",
			h.Sum(), h.Mean(), h.Min(), h.Max())
	}
	if p := SamplePercentiles([]float64{42}); p.P50 != 42 || p.P95 != 42 || p.P99 != 42 {
		t.Fatalf("single-sample percentiles: %+v", p)
	}
}

// TestHistogramQuantileDegenerateInputs covers the q-argument edges: NaN,
// below 0, above 1, and quantiles of an empty histogram.
func TestHistogramQuantileDegenerateInputs(t *testing.T) {
	h := MustHistogram(0, 10, 4)
	for _, q := range []float64{math.NaN(), -1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	h.Observe(3)
	h.Observe(7)
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Errorf("Quantile(NaN) = %v, want 0", got)
	}
	if got := h.Quantile(-0.5); got != 3 {
		t.Errorf("Quantile(q<0) = %v, want min 3", got)
	}
	if got := h.Quantile(1.5); got != 7 {
		t.Errorf("Quantile(q>1) = %v, want max 7", got)
	}
}

// TestHistogramLayoutAccessors pins Bounds/Buckets and the Percentiles
// convenience summary.
func TestHistogramLayoutAccessors(t *testing.T) {
	h := MustHistogram(-5, 5, 8)
	lo, hi := h.Bounds()
	if lo != -5 || hi != 5 {
		t.Fatalf("Bounds = %v,%v", lo, hi)
	}
	if got := len(h.Buckets()); got != 8 {
		t.Fatalf("Buckets len = %d, want 8", got)
	}
	// Buckets returns a copy: mutating it must not corrupt the histogram.
	h.Observe(0)
	h.Buckets()[0] = 999
	if h.Count() != 1 {
		t.Fatal("Buckets() exposed internal state")
	}
	if p := (Percentiles{P50: h.Quantile(0.5), P95: h.Quantile(0.95), P99: h.Quantile(0.99)}); p != (Percentiles{}) {
		t.Fatalf("single-zero percentiles: %+v", p)
	}
}

// TestHistogramClampedQuantilesStayOrdered observes far out-of-range values
// and checks the interpolated quantiles remain monotone in q — the clamped
// first/last buckets must not invert the interpolation.
func TestHistogramClampedQuantilesStayOrdered(t *testing.T) {
	h := MustHistogram(0, 10, 5)
	for _, v := range []float64{-50, -50, 2, 5, 8, 60, 60, 60} {
		h.Observe(v)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotone at q=%v: %v < %v", q, got, prev)
		}
		if got < h.Min() || got > h.Max() {
			t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, got, h.Min(), h.Max())
		}
		prev = got
	}
}
