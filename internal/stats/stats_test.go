package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeHandComputed(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("N/mean = %d/%v", s.N, s.Mean)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if math.Abs(s.Std-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Std != 0 || s.Median != 3 {
		t.Fatalf("singleton summary = %+v", s)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Fatalf("odd median = %v", odd.Median)
	}
	if !strings.Contains(s.String(), "n=1") {
		t.Fatal("String missing n")
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated (sorting must copy)")
	}
}
