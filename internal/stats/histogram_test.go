package stats

import (
	"math"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := MustHistogram(0, 100, 10)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v, want 1/100", h.Min(), h.Max())
	}
	if got, want := h.Mean(), 50.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	// Uniform 1..100: quantiles should land within one bucket width (10).
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50}, {0.95, 95}, {0.99, 99},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 10 {
			t.Errorf("Quantile(%v) = %v, want ≈ %v", tc.q, got, tc.want)
		}
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 100 {
		t.Errorf("extreme quantiles %v/%v, want exact min/max", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramEmptyAndDegenerate(t *testing.T) {
	h := MustHistogram(0, 10, 4)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// All observations identical, zero-width range.
	d := MustHistogram(5, 5, 1)
	for i := 0; i < 3; i++ {
		d.Observe(5)
	}
	if got := d.Quantile(0.5); got != 5 {
		t.Fatalf("degenerate Quantile = %v, want 5", got)
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := MustHistogram(0, 10, 5)
	h.Observe(-100)
	h.Observe(1000)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if h.Min() != -100 || h.Max() != 1000 {
		t.Fatalf("exact extremes lost: %v/%v", h.Min(), h.Max())
	}
	// Quantiles stay inside the exact observed range.
	if q := h.Quantile(0.5); q < -100 || q > 1000 {
		t.Fatalf("Quantile(0.5) = %v outside observed range", q)
	}
	h.Observe(math.NaN())
	if h.Count() != 2 {
		t.Fatal("NaN must be ignored")
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	a := MustHistogram(0, 10, 10)
	b := MustHistogram(0, 10, 10)
	for i := 0; i < 5; i++ {
		a.Observe(float64(i))
		b.Observe(float64(i + 5))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 10 || a.Min() != 0 || a.Max() != 9 {
		t.Fatalf("merged count/min/max = %d/%v/%v", a.Count(), a.Min(), a.Max())
	}
	c := MustHistogram(0, 20, 10)
	if err := a.Merge(c); err == nil {
		t.Fatal("merge across layouts must fail")
	}
	a.Reset()
	if a.Count() != 0 || a.Quantile(0.5) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestHistogramInvalid(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("0 buckets must fail")
	}
	if _, err := NewHistogram(10, 0, 4); err == nil {
		t.Fatal("inverted range must fail")
	}
	if _, err := NewHistogram(math.NaN(), 0, 4); err == nil {
		t.Fatal("NaN bound must fail")
	}
}

func TestSamplePercentiles(t *testing.T) {
	if p := SamplePercentiles(nil); p != (Percentiles{}) {
		t.Fatalf("empty sample: %+v", p)
	}
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	p := SamplePercentiles(xs)
	// 256 buckets over [0, 999]: error bounded by one bucket width (~3.9).
	for _, tc := range []struct{ got, want float64 }{
		{p.P50, 499.5}, {p.P95, 949.05}, {p.P99, 989.01},
	} {
		if math.Abs(tc.got-tc.want) > 4 {
			t.Errorf("percentile %v, want ≈ %v", tc.got, tc.want)
		}
	}
	// A constant sample collapses to the constant.
	if p := SamplePercentiles([]float64{7, 7, 7}); p.P50 != 7 || p.P99 != 7 {
		t.Errorf("constant sample: %+v", p)
	}
}
