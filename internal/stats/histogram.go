package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bucket histogram over a closed value range [Lo, Hi]:
// Buckets equal-width bins plus exact Min/Max/Sum/Count side counters.
// Observations outside the range clamp into the first/last bucket (the side
// counters keep the exact extremes), so quantile estimates degrade gracefully
// instead of dropping samples. The zero Histogram is not usable — construct
// with NewHistogram.
//
// Quantiles are estimated by linear interpolation inside the bucket that
// contains the requested rank, clamped to the exactly-tracked [Min, Max], so
// on well-ranged data the error is bounded by one bucket width. This is the
// summary type behind the telemetry metrics registry and the P50/P95/P99
// fields of core.RunStats.
type Histogram struct {
	lo, hi float64
	counts []uint64
	n      uint64
	min    float64
	max    float64
	sum    float64
}

// NewHistogram builds a histogram over [lo, hi] with the given bucket count.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("stats: histogram needs ≥ 1 bucket, got %d", buckets)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		return nil, fmt.Errorf("stats: invalid histogram range [%v, %v]", lo, hi)
	}
	return &Histogram{
		lo: lo, hi: hi,
		counts: make([]uint64, buckets),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}, nil
}

// MustHistogram is NewHistogram for static configurations; it panics on an
// invalid range or bucket count.
func MustHistogram(lo, hi float64, buckets int) *Histogram {
	h, err := NewHistogram(lo, hi, buckets)
	if err != nil {
		panic(err)
	}
	return h
}

// bucketOf maps a value to its bucket index, clamping out-of-range values.
func (h *Histogram) bucketOf(x float64) int {
	if h.hi == h.lo {
		return 0
	}
	i := int(float64(len(h.counts)) * (x - h.lo) / (h.hi - h.lo))
	if i < 0 {
		return 0
	}
	if i >= len(h.counts) {
		return len(h.counts) - 1
	}
	return i
}

// Observe records one value. NaN observations are ignored.
func (h *Histogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.counts[h.bucketOf(x)]++
	h.n++
	h.sum += x
	if x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact sample mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the exact smallest observation (0 for an empty histogram).
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest observation (0 for an empty histogram).
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-quantile (q ∈ [0, 1]) by locating the bucket that
// holds rank q·n and interpolating linearly inside it. Results are clamped to
// the exact [Min, Max]. An empty histogram yields 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 || math.IsNaN(q) {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.n)
	acc := 0.0
	width := (h.hi - h.lo) / float64(len(h.counts))
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := acc + float64(c)
		if next >= rank {
			frac := (rank - acc) / float64(c)
			v := h.lo + (float64(i)+frac)*width
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		acc = next
	}
	return h.max
}

// Merge folds other into h. The two histograms must share range and bucket
// count.
func (h *Histogram) Merge(other *Histogram) error {
	if other.lo != h.lo || other.hi != h.hi || len(other.counts) != len(h.counts) {
		return fmt.Errorf("stats: cannot merge histogram [%v,%v]×%d into [%v,%v]×%d",
			other.lo, other.hi, len(other.counts), h.lo, h.hi, len(h.counts))
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.n > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	return nil
}

// Reset clears all observations, keeping the bucket layout.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
}

// Bounds returns the configured [lo, hi] range.
func (h *Histogram) Bounds() (lo, hi float64) { return h.lo, h.hi }

// Buckets returns a copy of the per-bucket counts.
func (h *Histogram) Buckets() []uint64 { return append([]uint64(nil), h.counts...) }

// Percentiles is the fixed P50/P95/P99 summary the runtime statistics report.
type Percentiles struct {
	P50, P95, P99 float64
}

// SamplePercentiles summarizes a sample through a histogram sized to the
// sample's exact range: values are folded into a 256-bucket histogram over
// [min, max] and the three quantiles read back out. This keeps the quantile
// path identical to the metrics registry's (one shared implementation) while
// bounding the interpolation error to 1/256 of the observed range. An empty
// sample yields zero percentiles.
func SamplePercentiles(xs []float64) Percentiles {
	if len(xs) == 0 {
		return Percentiles{}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	h := MustHistogram(lo, hi, 256)
	for _, x := range xs {
		h.Observe(x)
	}
	return Percentiles{P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99)}
}
