package exp

import (
	"fmt"
	"time"

	"ctgdvfs/internal/core"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/stretch"
	"ctgdvfs/internal/tgff"
)

// Table1Row is one CTG of the paper's Table 1, with energies normalized so
// the online algorithm scores 100 (exactly the paper's presentation).
type Table1Row struct {
	CTG     int
	Triplet string // a/b/c: nodes/PEs/branch nodes
	Ref1    float64
	Ref2    float64
	Online  float64 // always 100 by construction
}

// Table1Result reproduces Table 1 plus the runtime comparison the paper
// reports in its §IV text (reference algorithm 2's NLP vs the online
// heuristic, a ≈120000× gap on their testbed).
type Table1Result struct {
	Rows []Table1Row
	// AvgRef1/AvgRef2 are the mean normalized energies.
	AvgRef1, AvgRef2 float64
	// OnlineTime and NLPTime are mean per-CTG runtimes of the two
	// stretching pipelines; Speedup is their ratio.
	OnlineTime, NLPTime time.Duration
	Speedup             float64
}

// Table1 compares the online algorithm against reference algorithms 1 [10]
// and 2 [17] on the paper's five random CTGs, with accurate branch
// probabilities and no adaptation (exactly the paper's setup). The five CTGs
// are independent, so they run on the worker pool; rows aggregate in case
// order, reproducing the serial table exactly (the timing columns are
// wall-clock and vary run to run either way).
func Table1() (*Table1Result, error) {
	type caseResult struct {
		row           Table1Row
		tOnline, tNLP time.Duration
	}
	cases := tgff.Table1Cases()
	results, err := par.MapErr(len(cases), func(i int) (caseResult, error) {
		c := cases[i]
		g0, p, err := tgff.Generate(c.Config)
		if err != nil {
			return caseResult{}, fmt.Errorf("table1 case %d: %w", i+1, err)
		}
		g, err := core.TightenDeadline(g0, p, DeadlineFactor)
		if err != nil {
			return caseResult{}, err
		}

		sOnline, err := buildOnline(g, p)
		if err != nil {
			return caseResult{}, err
		}
		sRef1, err := buildRef1(g, p)
		if err != nil {
			return caseResult{}, err
		}
		sRef2, err := buildRef2(g, p, stretch.NLPOptions{})
		if err != nil {
			return caseResult{}, err
		}

		eOnline := sOnline.ExpectedEnergy()
		out := caseResult{row: Table1Row{
			CTG:     i + 1,
			Triplet: fmt.Sprintf("%d/%d/%d", c.Config.Nodes, c.Config.PEs, c.Config.Branches),
			Ref1:    100 * sRef1.ExpectedEnergy() / eOnline,
			Ref2:    100 * sRef2.ExpectedEnergy() / eOnline,
			Online:  100,
		}}

		// Runtime of the two stretching pipelines (scheduling included,
		// as in the paper's end-to-end comparison).
		out.tOnline, err = timeIt(20, func() error {
			_, err := buildOnline(g, p)
			return err
		})
		if err != nil {
			return caseResult{}, err
		}
		out.tNLP, err = timeIt(1, func() error {
			_, err := buildRef2(g, p, stretch.NLPOptions{})
			return err
		})
		if err != nil {
			return caseResult{}, err
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Table1Result{}
	var onlineTotal, nlpTotal time.Duration
	for _, cr := range results {
		res.Rows = append(res.Rows, cr.row)
		res.AvgRef1 += cr.row.Ref1
		res.AvgRef2 += cr.row.Ref2
		onlineTotal += cr.tOnline
		nlpTotal += cr.tNLP
	}
	n := float64(len(res.Rows))
	res.AvgRef1 /= n
	res.AvgRef2 /= n
	res.OnlineTime = onlineTotal / time.Duration(len(res.Rows))
	res.NLPTime = nlpTotal / time.Duration(len(res.Rows))
	if res.OnlineTime > 0 {
		res.Speedup = float64(res.NLPTime) / float64(res.OnlineTime)
	}
	return res, nil
}

// Render formats the result like the paper's Table 1.
func (r *Table1Result) Render() string {
	rows := make([][]string, 0, len(r.Rows)+1)
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.CTG), row.Triplet,
			f0(row.Ref1), f0(row.Ref2), f0(row.Online),
		})
	}
	rows = append(rows, []string{"avg", "", f1(r.AvgRef1), f1(r.AvgRef2), "100.0"})
	s := "Table 1: Energy consumption of online algorithm (normalized, online = 100)\n"
	s += table([]string{"CTG", "a/b/c", "RefAlg1", "RefAlg2", "Online"}, rows)
	s += fmt.Sprintf("\nMean runtime: online %v, NLP-based (ref 2) %v  =>  speedup %.0fx\n",
		r.OnlineTime, r.NLPTime, r.Speedup)
	return s
}
