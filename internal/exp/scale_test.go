package exp

import "testing"

// TestScaleWorkloadShape checks the generator's structural invariants on a
// small instance: task count near target, requested scenario count, a valid
// buildable analysis, and non-empty conditional arms (split activation).
func TestScaleWorkloadShape(t *testing.T) {
	g, p, err := ScaleWorkload(ScaleConfig{Tasks: 200, PEs: 8, Forks: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPEs() != 8 {
		t.Fatalf("PEs = %d, want 8", p.NumPEs())
	}
	if g.NumForks() != 3 {
		t.Fatalf("forks = %d, want 3", g.NumForks())
	}
	if n := g.NumTasks(); n < 150 || n > 220 {
		t.Fatalf("tasks = %d, want ~200", n)
	}
}

// TestScaleCampaignSmoke runs a miniature campaign cell end to end and
// checks the warm run's behavioral envelope against the full run.
func TestScaleCampaignSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign smoke is seconds-scale")
	}
	r, err := ScaleCampaign([]ScaleConfig{{Tasks: 300, PEs: 8, Forks: 3, Seed: 3}}, 30)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Cells[0]
	if c.WarmStarts == 0 {
		t.Fatalf("warm run never warm-started: %+v", c)
	}
	if c.MissesWarm > c.MissesFull {
		t.Fatalf("warm run misses %d > full run misses %d", c.MissesWarm, c.MissesFull)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}
