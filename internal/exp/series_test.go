package exp

import (
	"reflect"
	"testing"

	"ctgdvfs/internal/health"
	"ctgdvfs/internal/series"
	"ctgdvfs/internal/telemetry"
)

// TestFaultCampaignMonitoredAlerts checks the full monitoring stack over the
// fault campaign: sampling changes no campaign number, every workload's store
// ticks once per instance, the miss-rate rule fires with Seq/Cause
// provenance, and the firing's cause chain resolves through `explain`.
func TestFaultCampaignMonitoredAlerts(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaign replays hundreds of faulty instances per runtime")
	}
	plain, err := faultCampaignN(DefaultCampaignSpec(), DefaultCampaignGuard, campaignTestVectors, nil, MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	clear := 0.08
	mc := MonitorConfig{Rules: []series.Rule{
		{Name: "miss-rate-high", Metric: "adaptive.miss_rate_window", Value: 0.11, Clear: &clear},
	}}
	reg := telemetry.NewRegistry()
	tel := &CampaignTelemetry{
		Metrics:   reg,
		Recorders: make(map[string]*telemetry.MemoryRecorder),
		Health:    make(map[string]*health.AnalyzerRecorder),
		Series:    make(map[string]*series.Store),
	}
	observed, err := faultCampaignN(DefaultCampaignSpec(), DefaultCampaignGuard, campaignTestVectors, tel, mc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Rows, observed.Rows) {
		t.Fatalf("series sampling changed campaign rows:\n%+v\n%+v", plain.Rows, observed.Rows)
	}

	firings := 0
	for name, st := range tel.Series {
		if st.Ticks() != campaignTestVectors {
			t.Errorf("%s: store ticked %d times for %d instances", name, st.Ticks(), campaignTestVectors)
		}
		if s := st.Series("adaptive.miss_rate_window"); s == nil {
			t.Errorf("%s: miss-rate window gauge not sampled", name)
		}

		rec := tel.Recorders[name]
		if rec == nil {
			t.Fatalf("%s: no recorder", name)
		}
		events := rec.Events()
		bySeq := make(map[uint64]telemetry.Event, len(events))
		for _, e := range events {
			if e.Seq != 0 {
				bySeq[e.Seq] = e
			}
		}
		for _, e := range events {
			if e.Kind != telemetry.KindAlertFiring {
				continue
			}
			firings++
			if e.Name != "miss-rate-high" || e.Value <= 0.11 {
				t.Errorf("%s: malformed firing %+v", name, e)
			}
			if e.Seq == 0 || e.Cause == 0 {
				t.Errorf("%s: firing lacks Seq/Cause provenance: %+v", name, e)
				continue
			}
			// The cause must be this tick's instance_finish — the chain
			// `ctgsched explain` walks.
			cause, ok := bySeq[e.Cause]
			if !ok || cause.Kind != telemetry.KindInstanceFinish || cause.Instance != e.Instance {
				t.Errorf("%s: firing cause %d is %+v, want this instance's finish", name, e.Cause, cause)
			}
		}

		// The explain engine reconstructs the chain from the same stream.
		x, err := health.Explain(events, health.ExplainQuery{Kind: "alert_firing", Instance: -1})
		if err != nil {
			t.Fatalf("%s: explain: %v", name, err)
		}
		if len(x.Chain) < 2 || x.Chain[len(x.Chain)-2].Kind != telemetry.KindInstanceFinish {
			t.Errorf("%s: explain chain does not pass through instance_finish: %+v", name, x.Chain)
		}
	}
	if firings == 0 {
		t.Fatal("miss-rate rule never fired during the fault campaign")
	}

	// Mirror forwarding: the shared parent registry aggregated the same
	// instance count the private stores sampled.
	snap := reg.Snapshot()
	if got := snap.Counters["adaptive.instances"]; got == 0 {
		t.Fatal("shared registry saw no forwarded writes")
	}
}
