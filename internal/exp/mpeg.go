package exp

import (
	"fmt"

	"ctgdvfs/internal/apps/mpeg"
	"ctgdvfs/internal/core"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/trace"
)

// Figure4Result reproduces the paper's Figure 4: the raw selections of the
// MPEG type branch (b1) over 1000 macroblocks, the probability within a
// window of 50 iterations, and the threshold-filtered probability the
// adaptive algorithm adopts (threshold 0.1).
type Figure4Result struct {
	Window    int
	Threshold float64
	Points    []core.SeriesPoint
	// Updates counts filtered-probability updates (each triggers
	// re-scheduling in the full framework).
	Updates int
}

// Figure4 generates the branch-selection series. The paper extracts branch
// b1 (macroblock type I) from a real movie decode; we use the synthetic
// Airwolf clip and the TypeCheck fork of the reconstructed MPEG CTG.
func Figure4() (*Figure4Result, error) {
	g, _, err := mpeg.Build()
	if err != nil {
		return nil, err
	}
	clip := trace.MovieClips()[0] // Airwolf
	vec := clip.Generate(g, 1000)
	forkIdx := g.ForkIndex(mpeg.TaskTypeCheck)
	if forkIdx < 0 {
		return nil, fmt.Errorf("figure4: TypeCheck is not a fork")
	}
	sel := make([]int, len(vec))
	for i := range vec {
		// Selection "1" = branch b1 (outcome 0 = I-type) selected.
		if vec[i][forkIdx] == 0 {
			sel[i] = 1
		}
	}
	res := &Figure4Result{Window: 50, Threshold: 0.1}
	res.Points = core.FilteredSeries(sel, 0.5, res.Window, res.Threshold)
	for _, pt := range res.Points {
		if pt.Updated {
			res.Updates++
		}
	}
	return res, nil
}

// Render prints a sampled view of the three series (every 25th point) plus
// summary statistics; the full series is in Points.
func (r *Figure4Result) Render() string {
	rows := make([][]string, 0, len(r.Points)/25+1)
	for i := 0; i < len(r.Points); i += 25 {
		pt := r.Points[i]
		rows = append(rows, []string{
			fmt.Sprintf("%d", i), fmt.Sprintf("%d", pt.Selection),
			f2(pt.WindowProb), f2(pt.Filtered),
		})
	}
	s := fmt.Sprintf("Figure 4: branch b1 selection and probability (window %d, threshold %.1f)\n",
		r.Window, r.Threshold)
	s += table([]string{"iter", "Selection", "prob", "filteredProb"}, rows)
	s += fmt.Sprintf("\nFiltered-probability updates over %d iterations: %d\n", len(r.Points), r.Updates)
	return s
}

// MovieRow is one movie clip of Figure 5 / Table 2.
type MovieRow struct {
	Movie string
	// Energies are per-instance averages over the 1000 testing vectors,
	// normalized so the non-adaptive online algorithm scores 100.
	Online, AdaptiveT05, AdaptiveT01 float64
	// Calls are the re-scheduling invocation counts (Table 2).
	CallsT05, CallsT01 int
	// HitsT05/HitsT01 count the calls served from the memoized schedule
	// cache (recurring probability regimes reuse a prior DLS + stretch
	// result; energies and call counts are unaffected).
	HitsT05, HitsT01 int
}

// MPEGResult reproduces Figure 5 (energy) and Table 2 (call counts)
// together, since the paper derives both from the same runs.
type MPEGResult struct {
	Rows []MovieRow
	// SavingsT05/SavingsT01 are the paper's headline averages: relative
	// energy saving of the adaptive algorithm over the online algorithm
	// at thresholds 0.5 and 0.1 (the paper reports 21% and 23%).
	SavingsT05, SavingsT01 float64
	// AvgCallsT05/AvgCallsT01 mirror Table 2's averages (paper: ≈9, ≈162).
	AvgCallsT05, AvgCallsT01 float64
}

// MPEG runs the paper's first adaptive experiment: the MPEG decoder CTG on
// 3 PEs, eight movie clips of 2000 macroblock vectors each — the first 1000
// train the non-adaptive profile, the second 1000 are measured.
func MPEG() (*MPEGResult, error) {
	g0, p, err := mpeg.Build()
	if err != nil {
		return nil, err
	}
	g, err := core.TightenDeadline(g0, p, DeadlineFactor)
	if err != nil {
		return nil, err
	}
	// The eight clips are independent end-to-end runs (profile, static
	// schedule, two adaptive managers each), so they fan out over the
	// worker pool; aggregation below walks rows in clip order, matching
	// the serial run exactly.
	clips := trace.MovieClips()
	rows, err := par.MapErr(len(clips), func(ci int) (MovieRow, error) {
		clip := clips[ci]
		vec := clip.Generate(g, 2000)
		train, test := vec[:1000], vec[1000:]

		profile := trace.AverageProbs(g, train)
		gProf := g.Clone()
		if err := trace.ApplyProfile(gProf, profile); err != nil {
			return MovieRow{}, err
		}

		static, err := buildOnline(gProf, p)
		if err != nil {
			return MovieRow{}, err
		}
		stOnline, err := core.RunStatic(static, test)
		if err != nil {
			return MovieRow{}, err
		}

		row := MovieRow{Movie: clip.Name, Online: 100}
		for _, th := range []float64{0.5, 0.1} {
			m, err := core.New(gProf, p, core.Options{
				Window: 20, Threshold: th, DVFS: platform.Continuous(),
			})
			if err != nil {
				return MovieRow{}, err
			}
			st, err := m.Run(test)
			if err != nil {
				return MovieRow{}, err
			}
			norm := 100 * st.AvgEnergy / stOnline.AvgEnergy
			if th == 0.5 {
				row.AdaptiveT05, row.CallsT05, row.HitsT05 = norm, st.Calls, st.CacheHits
			} else {
				row.AdaptiveT01, row.CallsT01, row.HitsT01 = norm, st.Calls, st.CacheHits
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &MPEGResult{Rows: rows}
	n := float64(len(res.Rows))
	for _, row := range res.Rows {
		res.SavingsT05 += (100 - row.AdaptiveT05) / 100
		res.SavingsT01 += (100 - row.AdaptiveT01) / 100
		res.AvgCallsT05 += float64(row.CallsT05)
		res.AvgCallsT01 += float64(row.CallsT01)
	}
	res.SavingsT05 /= n
	res.SavingsT01 /= n
	res.AvgCallsT05 /= n
	res.AvgCallsT01 /= n
	return res, nil
}

// Render formats Figure 5 and Table 2.
func (r *MPEGResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Movie, f1(row.Online), f1(row.AdaptiveT05), f1(row.AdaptiveT01),
			fmt.Sprintf("%d (%d hit)", row.CallsT05, row.HitsT05),
			fmt.Sprintf("%d (%d hit)", row.CallsT01, row.HitsT01),
		})
	}
	s := "Figure 5 + Table 2: MPEG energy (normalized, online = 100) and call counts\n"
	s += table([]string{"Movie", "Online", "Adapt T=0.5", "Adapt T=0.1", "Calls T=0.5", "Calls T=0.1"}, rows)
	s += fmt.Sprintf("\nAverage savings: T=0.5 %.0f%%, T=0.1 %.0f%% (paper: 21%%, 23%%)\n",
		100*r.SavingsT05, 100*r.SavingsT01)
	s += fmt.Sprintf("Average calls: T=0.5 %.1f, T=0.1 %.1f (paper: 9, 162)\n",
		r.AvgCallsT05, r.AvgCallsT01)
	return s
}
