package exp

import (
	"fmt"

	"ctgdvfs/internal/apps/wlan"
	"ctgdvfs/internal/core"
	"ctgdvfs/internal/faults"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/sim"
	"ctgdvfs/internal/trace"
)

// FailoverCell is one point of the failover sweep: one workload replayed
// under one seeded availability timeline (transient PE-outage probability ×
// repair time), once by the adaptive runtime that re-maps onto the survivor
// set and once by a static schedule that keeps dispatching onto whatever the
// timeline has taken away.
type FailoverCell struct {
	Workload string
	FailProb float64 // per-PE per-instance transient outage probability
	Repair   int     // outage length in graph instances
	Vectors  int

	// Adaptive-remap runtime (core.Manager with the failure timeline).
	AdaptiveMisses    int
	AdaptiveEnergy    float64
	Remaps            int
	DegradedInstances int
	AdaptiveTopoMiss  int

	// Static baseline: the same DVFS schedule replayed unchanged; instances
	// that dispatch onto dead hardware deadlock and are charged one full
	// deadline of lateness (core.RunStaticFailover).
	StaticMisses   int
	StaticEnergy   float64
	StaticTopoMiss int
}

// AdaptiveMissRate and StaticMissRate are the per-runtime miss fractions.
func (c FailoverCell) AdaptiveMissRate() float64 {
	return float64(c.AdaptiveMisses) / float64(c.Vectors)
}
func (c FailoverCell) StaticMissRate() float64 {
	return float64(c.StaticMisses) / float64(c.Vectors)
}

// FailoverResult is the failover campaign (DESIGN.md §10): the deadline and
// energy cost of surviving PE outages by online re-mapping, against a static
// schedule that deadlocks whenever its hardware disappears.
type FailoverResult struct {
	Seed     int64
	Scripted bool // true when a -faults-spec timeline replaced the sweep
	Cells    []FailoverCell
}

// Default failover sweep: outage probabilities and repair times, chosen so
// mpeg/wlan/cruise all see several outages (and at least one overlap of two
// concurrent outages at the aggressive corner) within 400 instances.
var (
	DefaultFailoverProbs   = []float64{0.01, 0.05}
	DefaultFailoverRepairs = []int{5, 25}
)

// DefaultFailoverVectors bounds the measured sequence per workload; the
// sweep is |probs|×|repairs|×3 workloads end-to-end runs, so the campaign
// stays tractable at a few hundred instances per cell.
const DefaultFailoverVectors = 400

// failoverWorkloads is campaignWorkloads plus the 802.11b receiver, prepared
// the same way: tightened deadline, training prefix profiled into the graph,
// disjoint measured sequence.
func failoverWorkloads() ([]campaignWorkload, error) {
	out, err := campaignWorkloads()
	if err != nil {
		return nil, err
	}
	g0, p, err := wlan.Build()
	if err != nil {
		return nil, err
	}
	g, err := core.TightenDeadline(g0, p, DeadlineFactor)
	if err != nil {
		return nil, err
	}
	gProf := g.Clone()
	if err := trace.ApplyProfile(gProf, trace.AverageProbs(g, wlan.ChannelTrace(g, 201, 1000))); err != nil {
		return nil, err
	}
	out = append(out, campaignWorkload{name: "wlan", g: gProf, p: p, vec: wlan.ChannelTrace(g, 202, 1000)})
	return out, nil
}

// FailoverCampaign sweeps transient-outage probability × repair time over
// the mpeg/wlan/cruise workloads. Every cell replays the identical seeded
// availability timeline under two runtimes: the adaptive manager, which
// re-schedules onto the survivor set at the instance boundary where a PE
// drops (and restores the cached healthy schedule when it returns), and the
// manager's own pre-outage DVFS schedule replayed statically, which
// deadlocks on every instance that activates a task on dead hardware. Nil
// probs/repairs run the default sweep.
func FailoverCampaign(seed int64, probs []float64, repairs []int) (*FailoverResult, error) {
	if len(probs) == 0 {
		probs = DefaultFailoverProbs
	}
	if len(repairs) == 0 {
		repairs = DefaultFailoverRepairs
	}
	specs := make([]faults.FailureSpec, 0, len(probs)*len(repairs))
	for _, q := range probs {
		for _, rep := range repairs {
			specs = append(specs, faults.FailureSpec{Seed: seed, PEFailProb: q, PERepair: rep})
		}
	}
	return failoverCampaignN(specs, DefaultFailoverVectors, false)
}

// FailoverCampaignSpec replays one scripted availability timeline (e.g. from
// a -faults-spec file) instead of the sweep: one cell per workload.
func FailoverCampaignSpec(spec faults.FailureSpec) (*FailoverResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return failoverCampaignN([]faults.FailureSpec{spec}, DefaultFailoverVectors, true)
}

// failoverCampaignN runs every (workload, spec) cell over the worker pool,
// truncating the measured sequences to maxVec vectors (0 = full length).
func failoverCampaignN(specs []faults.FailureSpec, maxVec int, scripted bool) (*FailoverResult, error) {
	workloads, err := failoverWorkloads()
	if err != nil {
		return nil, err
	}
	if maxVec > 0 {
		for i := range workloads {
			if len(workloads[i].vec) > maxVec {
				workloads[i].vec = workloads[i].vec[:maxVec]
			}
		}
	}
	// Cells are independent end-to-end runs: fan out workload-major so the
	// rendered table groups by workload, sweep order within.
	cells, err := par.MapErr(len(workloads)*len(specs), func(i int) (FailoverCell, error) {
		w := workloads[i/len(specs)]
		spec := specs[i%len(specs)]
		tl, err := faults.NewTimeline(spec, w.p.NumPEs())
		if err != nil {
			return FailoverCell{}, err
		}

		m, err := core.New(w.g, w.p, core.Options{
			Window: 20, Threshold: 0.1, Failures: tl,
		})
		if err != nil {
			return FailoverCell{}, err
		}
		// The static arm replays the adaptive runtime's own initial DVFS
		// schedule, so the contrast isolates re-mapping, not mapping quality.
		static := m.Schedule().Clone()
		stA, err := m.Run(w.vec)
		if err != nil {
			return FailoverCell{}, err
		}
		stS, err := core.RunStaticFailover(static, w.vec, tl, sim.Config{})
		if err != nil {
			return FailoverCell{}, err
		}

		return FailoverCell{
			Workload: w.name,
			FailProb: spec.PEFailProb,
			Repair:   spec.PERepair,
			Vectors:  len(w.vec),

			AdaptiveMisses:    stA.Misses,
			AdaptiveEnergy:    stA.AvgEnergy,
			Remaps:            stA.Remaps,
			DegradedInstances: stA.DegradedInstances,
			AdaptiveTopoMiss:  stA.TopologyMisses,

			StaticMisses:   stS.Misses,
			StaticEnergy:   stS.AvgEnergy,
			StaticTopoMiss: stS.TopologyMisses,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	seed := int64(0)
	if len(specs) > 0 {
		seed = specs[0].Seed
	}
	return &FailoverResult{Seed: seed, Scripted: scripted, Cells: cells}, nil
}

// Render formats the failover sweep, one row per (workload, outage rate,
// repair time) cell.
func (r *FailoverResult) Render() string {
	rows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		point := fmt.Sprintf("%.2f/%d", c.FailProb, c.Repair)
		if r.Scripted {
			point = "scripted"
		}
		rows = append(rows, []string{
			c.Workload, point,
			fmt.Sprintf("%d", c.DegradedInstances),
			fmt.Sprintf("%d", c.Remaps),
			fmt.Sprintf("%.1f%% (%d topo)", 100*c.AdaptiveMissRate(), c.AdaptiveTopoMiss),
			fmt.Sprintf("%.1f%% (%d topo)", 100*c.StaticMissRate(), c.StaticTopoMiss),
			f1(c.AdaptiveEnergy), f1(c.StaticEnergy),
		})
	}
	s := fmt.Sprintf("Failover campaign: seed %d, adaptive re-mapping vs static schedule under PE outages\n", r.Seed)
	s += "(fail/repair: per-PE per-instance outage probability / repair time in instances;\n topo: misses attributable to topology loss — static deadlocks count one deadline each)\n"
	s += table(
		[]string{"workload", "fail/repair", "degraded", "remaps", "adaptive miss", "static miss", "E adp", "E stat"},
		rows)
	return s
}
