package exp

import (
	"strings"
	"testing"
)

// The experiment runners are deterministic (seeded workloads), so these
// tests pin the qualitative shape of every reproduced table and figure —
// the same relations DESIGN.md §3 promises.

func TestTable1Shape(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Online != 100 {
			t.Fatalf("CTG %d: online not normalized to 100", row.CTG)
		}
		// Reference algorithm 1 is clearly worse on every CTG.
		if row.Ref1 < 110 {
			t.Errorf("CTG %d: ref1 = %.1f, want ≥ 110", row.CTG, row.Ref1)
		}
		// Reference algorithm 2 (NLP) is at least as good as the online
		// heuristic, but close to it (the paper's ~8% gap).
		if row.Ref2 > 102 {
			t.Errorf("CTG %d: ref2 = %.1f, want ≤ 102", row.CTG, row.Ref2)
		}
		if row.Ref2 < 80 {
			t.Errorf("CTG %d: ref2 = %.1f suspiciously far below online", row.CTG, row.Ref2)
		}
	}
	if r.AvgRef1 < 120 {
		t.Errorf("avg ref1 = %.1f, want ≥ 120 (paper: ~180)", r.AvgRef1)
	}
	// The heuristic replaces the NLP at a runtime orders of magnitude
	// lower.
	if r.Speedup < 50 {
		t.Errorf("speedup = %.0f, want ≥ 50", r.Speedup)
	}
	out := r.Render()
	for _, want := range []string{"Table 1", "RefAlg1", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	r, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 1000 {
		t.Fatalf("got %d points, want 1000", len(r.Points))
	}
	if r.Updates < 2 || r.Updates > 80 {
		t.Fatalf("updates = %d, want a handful over 1000 iterations", r.Updates)
	}
	prevFiltered := 0.5
	for i, pt := range r.Points {
		if pt.WindowProb < 0 || pt.WindowProb > 1 {
			t.Fatalf("point %d: window prob %v out of range", i, pt.WindowProb)
		}
		if pt.Selection != 0 && pt.Selection != 1 {
			t.Fatalf("point %d: selection %d", i, pt.Selection)
		}
		// The filtered series only moves on updates (low-pass behavior).
		if !pt.Updated && pt.Filtered != prevFiltered {
			t.Fatalf("point %d: filtered moved without an update", i)
		}
		if pt.Updated && pt.Filtered != pt.WindowProb {
			t.Fatalf("point %d: update did not adopt the window estimate", i)
		}
		prevFiltered = pt.Filtered
	}
	if !strings.Contains(r.Render(), "Figure 4") {
		t.Error("render missing title")
	}
}

func TestMPEGShape(t *testing.T) {
	if testing.Short() {
		t.Skip("MPEG experiment takes ~10s")
	}
	r, err := MPEG()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("got %d movies, want 8", len(r.Rows))
	}
	// Fine-grained adaptation (T=0.1) saves energy on average.
	if r.SavingsT01 <= 0.02 {
		t.Errorf("T=0.1 savings = %.3f, want > 2%%", r.SavingsT01)
	}
	// The threshold controls the re-scheduling rate by more than an order
	// of magnitude (paper: 9 vs 162 calls).
	if r.AvgCallsT01 < 5*r.AvgCallsT05 {
		t.Errorf("call counts %v vs %v: T=0.1 should re-schedule far more",
			r.AvgCallsT01, r.AvgCallsT05)
	}
	if r.AvgCallsT05 > 40 {
		t.Errorf("T=0.5 calls = %.1f, want coarse (≈9)", r.AvgCallsT05)
	}
	if !strings.Contains(r.Render(), "Table 2") {
		t.Error("render missing Table 2 reference")
	}
}

func TestCruiseShape(t *testing.T) {
	r, err := Cruise()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("got %d sequences, want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Adaptive never loses on the cruise workload...
		if row.Adaptive > row.NonAdaptive*1.005 {
			t.Errorf("sequence %d: adaptive %.2f worse than non-adaptive %.2f",
				row.Sequence, row.Adaptive, row.NonAdaptive)
		}
	}
	// ...but the gain stays small (the paper's ~5%): three minterms of
	// nearly equal energy and a deadline at twice the optimum.
	if r.AvgSaving <= 0 || r.AvgSaving > 0.15 {
		t.Errorf("avg saving = %.3f, want small positive", r.AvgSaving)
	}
	// Threshold 0.1 sequences re-schedule two orders of magnitude more
	// than the threshold 0.5 one (paper: ~150 vs ~9).
	if r.Rows[0].Calls < 50 || r.Rows[1].Calls < 50 {
		t.Errorf("T=0.1 calls = %d/%d, want ≥ 50", r.Rows[0].Calls, r.Rows[1].Calls)
	}
	if r.Rows[2].Calls > 30 {
		t.Errorf("T=0.5 calls = %d, want coarse", r.Rows[2].Calls)
	}
}

func TestRandomCTGShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("random-CTG experiments take a few seconds")
	}
	t4, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	t5, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	f6, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 10 || len(t5.Rows) != 10 || len(f6.Rows) != 10 {
		t.Fatal("each random-CTG experiment must cover 10 graphs")
	}

	// The central Table 4 vs Table 5 contrast: a profile biased to the
	// lowest-energy minterm costs the online algorithm far more than one
	// biased to the highest-energy minterm.
	if t4.AvgSavingT01 < t5.AvgSavingT01+0.05 {
		t.Errorf("T=0.1 savings: lowest-bias %.3f vs highest-bias %.3f, want a clear gap",
			t4.AvgSavingT01, t5.AvgSavingT01)
	}
	if t4.AvgSavingT05 < t5.AvgSavingT05 {
		t.Errorf("T=0.5 savings: lowest-bias %.3f below highest-bias %.3f",
			t4.AvgSavingT05, t5.AvgSavingT05)
	}
	// Both biased settings leave the adaptive algorithm ahead on average.
	if t4.AvgSavingT01 <= 0.05 {
		t.Errorf("table 4 savings %.3f, want substantial", t4.AvgSavingT01)
	}
	if t5.AvgSavingT01 <= 0 {
		t.Errorf("table 5 savings %.3f, want positive", t5.AvgSavingT01)
	}
	// Ideal profiling shrinks but does not erase the adaptive advantage.
	if f6.AvgSavingT01 < -0.01 || f6.AvgSavingT01 > t4.AvgSavingT01 {
		t.Errorf("figure 6 savings %.3f out of expected band", f6.AvgSavingT01)
	}
	// Category 1 (nested fork-join) benefits at least as much as the flat
	// Category 2 under biased profiles (paper: ~8% higher).
	if t5.Cat1SavingT05 < t5.Cat2SavingT05 {
		t.Errorf("table 5 category savings inverted: %.3f vs %.3f",
			t5.Cat1SavingT05, t5.Cat2SavingT05)
	}
	// Threshold ordering of call counts holds everywhere.
	for _, r := range []*RandomResult{t4, t5, f6} {
		if r.AvgCallsT01 < 3*r.AvgCallsT05 {
			t.Errorf("%v: calls %v vs %v, want far more at T=0.1",
				r.Bias, r.AvgCallsT01, r.AvgCallsT05)
		}
	}
	for _, r := range []*RandomResult{t4, t5, f6} {
		if !strings.Contains(r.Render(), "a/b/c") {
			t.Error("render missing header")
		}
	}
	if t4.Bias.String() == t5.Bias.String() {
		t.Error("bias labels must differ")
	}
}
