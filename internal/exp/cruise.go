package exp

import (
	"fmt"

	"ctgdvfs/internal/apps/cruise"
	"ctgdvfs/internal/core"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/trace"
)

// CruiseRow is one vector sequence of the paper's Table 3.
type CruiseRow struct {
	Sequence  int
	Threshold float64
	// NonAdaptive and Adaptive are average per-instance energies (raw
	// units; the paper prints raw values here, not normalized ones).
	NonAdaptive, Adaptive float64
	Calls                 int
}

// CruiseResult reproduces Table 3: the vehicle cruise controller (32 tasks,
// two branch nodes, 5 PEs, deadline twice the optimal schedule length) on
// three road-condition sequences. The paper reports ≈5% savings — small
// because the CTG has only three minterms of nearly equal energy and a very
// loose deadline.
type CruiseResult struct {
	Rows []CruiseRow
	// AvgSaving is the mean relative saving of adaptive over non-adaptive.
	AvgSaving float64
}

// Cruise runs the experiment. The first sequence doubles as the training
// set for the non-adaptive profile, exactly as in the paper; thresholds are
// 0.1 for sequences 1–2 and 0.5 for sequence 3.
func Cruise() (*CruiseResult, error) {
	g0, p, err := cruise.Build()
	if err != nil {
		return nil, err
	}
	// "the deadline we used was double of the optimum schedule length".
	g, err := core.TightenDeadline(g0, p, 2)
	if err != nil {
		return nil, err
	}

	seqs := []trace.Vectors{
		trace.RoadSequence(g, 101, 1000),
		trace.RoadSequence(g, 102, 1000),
		trace.RoadSequence(g, 103, 1000),
	}
	thresholds := []float64{0.1, 0.1, 0.5}

	// Profile from the first (training) sequence.
	profile := trace.AverageProbs(g, seqs[0])
	gProf := g.Clone()
	if err := trace.ApplyProfile(gProf, profile); err != nil {
		return nil, err
	}
	static, err := buildOnline(gProf, p)
	if err != nil {
		return nil, err
	}

	// The three sequences share the profiled graph and static schedule but
	// are otherwise independent runs (each adaptive manager clones the
	// graph), so they fan out; the savings average walks rows in sequence
	// order, matching the serial run exactly.
	rows, err := par.MapErr(len(seqs), func(i int) (CruiseRow, error) {
		vec := seqs[i]
		stStatic, err := core.RunStatic(static, vec)
		if err != nil {
			return CruiseRow{}, err
		}
		m, err := core.New(gProf, p, core.Options{Window: 20, Threshold: thresholds[i]})
		if err != nil {
			return CruiseRow{}, err
		}
		stAdaptive, err := m.Run(vec)
		if err != nil {
			return CruiseRow{}, err
		}
		return CruiseRow{
			Sequence:    i + 1,
			Threshold:   thresholds[i],
			NonAdaptive: stStatic.AvgEnergy,
			Adaptive:    stAdaptive.AvgEnergy,
			Calls:       stAdaptive.Calls,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &CruiseResult{Rows: rows}
	for _, row := range res.Rows {
		res.AvgSaving += (row.NonAdaptive - row.Adaptive) / row.NonAdaptive
	}
	res.AvgSaving /= float64(len(res.Rows))
	return res, nil
}

// Render formats Table 3.
func (r *CruiseResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Sequence), fmt.Sprintf("%.1f", row.Threshold),
			f1(row.NonAdaptive), f1(row.Adaptive), fmt.Sprintf("%d", row.Calls),
		})
	}
	s := "Table 3: Energy consumption of vehicle cruise controller system\n"
	s += table([]string{"Sequence", "T", "Non-adaptive", "Adaptive", "Calls"}, rows)
	s += fmt.Sprintf("\nAverage savings: %.1f%% (paper: ≈5%%)\n", 100*r.AvgSaving)
	return s
}
