package exp

import (
	"fmt"

	"ctgdvfs/internal/apps/cruise"
	"ctgdvfs/internal/apps/mpeg"
	"ctgdvfs/internal/core"
	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/faults"
	"ctgdvfs/internal/health"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/series"
	"ctgdvfs/internal/sim"
	"ctgdvfs/internal/telemetry"
	"ctgdvfs/internal/trace"
)

// CampaignRow is one workload of the fault campaign: the same seeded overrun
// plan replayed under three runtimes — the always-full-speed static baseline
// (the guarded manager's precomputed fallback schedule), the paper's adaptive
// runtime with no overrun awareness, and the guarded adaptive runtime with
// worst-case fallback recovery.
type CampaignRow struct {
	Workload string
	Vectors  int
	// Overruns counts fault-plan perturbed task executions seen by the
	// guarded runtime (the plans are identical across runtimes; schedules
	// differ, so mapped PEs — and therefore PE-slowdown hits — may not).
	Overruns int

	// Per-runtime deadline misses over the vector sequence.
	FullSpeedMisses, UnguardedMisses, GuardedMisses int
	// Per-runtime average per-instance energy (raw units).
	FullSpeedEnergy, UnguardedEnergy, GuardedEnergy float64
	// Recovery counters of the guarded runtime.
	FallbackActivations, MissesAvoided, MaxGuardLevel int
	// TotalLateness is the guarded runtime's summed residual overshoot.
	TotalLateness float64
}

// MissRateFull, MissRateUnguarded and MissRateGuarded are the per-runtime
// miss fractions.
func (r CampaignRow) MissRateFull() float64 { return float64(r.FullSpeedMisses) / float64(r.Vectors) }
func (r CampaignRow) MissRateUnguarded() float64 {
	return float64(r.UnguardedMisses) / float64(r.Vectors)
}
func (r CampaignRow) MissRateGuarded() float64 { return float64(r.GuardedMisses) / float64(r.Vectors) }

// FaultCampaignResult is the robustness extension (DESIGN.md §7): the
// miss-rate-vs-energy tradeoff of guard-band stretching plus fallback
// recovery under a deterministic execution-time overrun plan, on the two
// application workloads of the paper's evaluation.
type FaultCampaignResult struct {
	Spec  faults.Spec
	Guard float64
	Rows  []CampaignRow
}

// DefaultCampaignSpec is the campaign's reference fault plan: every task
// execution overruns its WCET by 20% with probability 0.2.
func DefaultCampaignSpec() faults.Spec {
	return faults.Spec{Seed: 42, OverrunProb: 0.2, OverrunFactor: 1.2}
}

// DefaultCampaignGuard is the campaign's base guard band: 20% of every
// task's slack reserved as overrun margin.
const DefaultCampaignGuard = 0.2

// campaignWorkload is one prepared application: a profiled graph, its
// platform and the measured decision vectors.
type campaignWorkload struct {
	name string
	g    *ctg.Graph
	p    *platform.Platform
	vec  trace.Vectors
}

// campaignWorkloads prepares the MPEG decoder and the cruise controller the
// same way their paper experiments do: tightened deadline, a training
// sequence profiled into the graph, a disjoint measured sequence.
func campaignWorkloads() ([]campaignWorkload, error) {
	var out []campaignWorkload

	// MPEG decoder: Airwolf clip, first 1000 macroblocks train the profile,
	// the second 1000 are measured (as in Figure 5 / Table 2).
	g0, p, err := mpeg.Build()
	if err != nil {
		return nil, err
	}
	g, err := core.TightenDeadline(g0, p, DeadlineFactor)
	if err != nil {
		return nil, err
	}
	vec := trace.MovieClips()[0].Generate(g, 2000)
	train, test := vec[:1000], vec[1000:]
	gProf := g.Clone()
	if err := trace.ApplyProfile(gProf, trace.AverageProbs(g, train)); err != nil {
		return nil, err
	}
	out = append(out, campaignWorkload{name: "mpeg", g: gProf, p: p, vec: test})

	// Cruise controller: deadline at twice the optimum (as in Table 3),
	// road sequence 101 trains, 102 is measured.
	g0, p, err = cruise.Build()
	if err != nil {
		return nil, err
	}
	g, err = core.TightenDeadline(g0, p, 2)
	if err != nil {
		return nil, err
	}
	gProf = g.Clone()
	if err := trace.ApplyProfile(gProf, trace.AverageProbs(g, trace.RoadSequence(g, 101, 1000))); err != nil {
		return nil, err
	}
	out = append(out, campaignWorkload{name: "cruise", g: gProf, p: p, vec: trace.RoadSequence(g, 102, 1000)})

	return out, nil
}

// FaultCampaign runs the overrun campaign on both application workloads.
// Each workload faces the identical fault plan under all three runtimes, so
// the contrast isolates the runtime policy: the full-speed baseline buys
// deadline safety with maximum energy, the unguarded adaptive runtime spends
// its whole slack on DVFS and pays in misses, and the guarded runtime splits
// the slack — most of the DVFS saving, a bounded miss rate, and a full-speed
// fallback for the instances the guard band cannot absorb.
func FaultCampaign(spec faults.Spec, guard float64) (*FaultCampaignResult, error) {
	return faultCampaignN(spec, guard, 0, nil, MonitorConfig{})
}

// CampaignTelemetry carries the observability side of an observed campaign:
// one event stream per workload (separate recorders, so the parallel
// workloads never interleave their streams) and one registry every guarded
// manager publishes into (counters aggregate campaign-wide). Only the
// guarded+fallback runtime is instrumented — it is the runtime whose behavior
// (fallback re-runs, breaker trips, guard levels) the trace is for; the
// baselines would only double every slice.
type CampaignTelemetry struct {
	Metrics   *telemetry.Registry
	Recorders map[string]*telemetry.MemoryRecorder // keyed by workload name
	// Health holds one streaming analyzer per workload, fanned into the same
	// event stream as the workload's recorder: drift detection, SLO tracking
	// and hotspot attribution run live alongside the campaign, and the
	// per-workload snapshots feed the harness's health summary.
	Health map[string]*health.AnalyzerRecorder
	// Series holds one time-series store per workload (or per consolidation
	// cell), populated only by the Monitored campaign variants. Each store
	// samples a private mirror of Metrics (telemetry.NewMirrorRegistry), so
	// sampling is deterministic even though the workloads run in parallel:
	// every write still forwards into the shared registry for the live
	// /metrics view, but the per-workload rings see only their own producer.
	Series map[string]*series.Store
}

// MonitorConfig configures the Monitored campaign variants: alert rules
// evaluated per sample and the per-series ring capacity (0 selects
// series.DefaultCapacity).
type MonitorConfig struct {
	Rules          []series.Rule
	SeriesCapacity int
}

// FaultCampaignObserved is FaultCampaign with telemetry attached to the
// guarded runtime of every workload. The returned streams replay into
// telemetry.ChromeTrace (one AddRun per workload) and the registry snapshot
// summarizes the whole campaign. Pass a registry to watch the campaign live
// (e.g. one already served over HTTP); nil allocates a private one.
func FaultCampaignObserved(spec faults.Spec, guard float64, reg *telemetry.Registry) (*FaultCampaignResult, *CampaignTelemetry, error) {
	return FaultCampaignMonitored(spec, guard, reg, MonitorConfig{})
}

// FaultCampaignMonitored is FaultCampaignObserved plus time-series sampling:
// every workload's guarded runtime samples a per-workload series store on
// each instance boundary and evaluates mc.Rules against the samples (alert
// firings land in the workload's event stream with full Seq/Cause
// provenance). The stores arrive in CampaignTelemetry.Series.
func FaultCampaignMonitored(spec faults.Spec, guard float64, reg *telemetry.Registry, mc MonitorConfig) (*FaultCampaignResult, *CampaignTelemetry, error) {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	tel := &CampaignTelemetry{
		Metrics:   reg,
		Recorders: make(map[string]*telemetry.MemoryRecorder),
		Health:    make(map[string]*health.AnalyzerRecorder),
		Series:    make(map[string]*series.Store),
	}
	res, err := faultCampaignN(spec, guard, 0, tel, mc)
	if err != nil {
		return nil, nil, err
	}
	return res, tel, nil
}

// faultCampaignN is FaultCampaign with the measured sequences truncated to
// maxVec vectors per workload (0 = full length) — the tests use a short
// prefix so the campaign stays affordable under the race detector; the
// truncation changes nothing but the sample size (instance i keeps fault
// instance i).
func faultCampaignN(spec faults.Spec, guard float64, maxVec int, tel *CampaignTelemetry, mc MonitorConfig) (*FaultCampaignResult, error) {
	workloads, err := campaignWorkloads()
	if err != nil {
		return nil, err
	}
	if maxVec > 0 {
		for i := range workloads {
			if len(workloads[i].vec) > maxVec {
				workloads[i].vec = workloads[i].vec[:maxVec]
			}
		}
	}
	// Recorders and analyzers are allocated before the fan-out so the maps
	// are read-only inside the workers.
	if tel != nil {
		for _, w := range workloads {
			rec := telemetry.NewMemoryRecorder()
			tel.Recorders[w.name] = rec
			if tel.Health != nil {
				// Alerts interleave into the workload's own stream; metrics
				// share the campaign registry (adaptive.health.* aggregates
				// across workloads, like the adaptive.* counters do).
				tel.Health[w.name] = health.New(health.Options{
					Alerts:  rec,
					Metrics: tel.Metrics,
				})
			}
			if tel.Series != nil {
				// Each workload samples its own mirror of the campaign
				// registry — the mirror forwards every write to the shared
				// parent, so the aggregate /metrics view is unchanged while
				// the sampled rings stay deterministic under the fan-out.
				tel.Series[w.name] = series.NewStore(series.StoreOptions{
					Registry: telemetry.NewMirrorRegistry(tel.Metrics),
					Capacity: mc.SeriesCapacity,
					Rules:    mc.Rules,
				})
			}
		}
	}
	// The workloads are independent end-to-end runs, so they fan out over
	// the worker pool; rows stay in workload order.
	rows, err := par.MapErr(len(workloads), func(i int) (CampaignRow, error) {
		w := workloads[i]
		plan, err := faults.New(spec, w.g.NumTasks(), w.p.NumPEs())
		if err != nil {
			return CampaignRow{}, err
		}

		unguarded, err := core.New(w.g, w.p, core.Options{
			Window: 20, Threshold: 0.1, Faults: plan,
		})
		if err != nil {
			return CampaignRow{}, err
		}
		stU, err := unguarded.Run(w.vec)
		if err != nil {
			return CampaignRow{}, err
		}

		gopts := core.Options{
			Window: 20, Threshold: 0.1, Faults: plan,
			GuardBand: guard, Recovery: true,
		}
		if tel != nil {
			gopts.Recorder = tel.Recorders[w.name]
			if h := tel.Health[w.name]; h != nil {
				gopts.Recorder = telemetry.MultiRecorder{tel.Recorders[w.name], h}
			}
			gopts.Metrics = tel.Metrics
			if st := tel.Series[w.name]; st != nil {
				// The manager publishes into the workload's mirror registry
				// (which forwards to the shared one) and ticks its store.
				gopts.Metrics = st.Registry()
				gopts.Series = st
			}
		}
		guarded, err := core.New(w.g, w.p, gopts)
		if err != nil {
			return CampaignRow{}, err
		}
		stG, err := guarded.Run(w.vec)
		if err != nil {
			return CampaignRow{}, err
		}

		// Always-full-speed baseline: the guarded manager's precomputed
		// worst-case fallback schedule, replayed statically under the same
		// plan (vector i is fault instance i in every runtime).
		stF, err := core.RunStaticCfg(guarded.Fallback(), w.vec, sim.Config{Faults: plan})
		if err != nil {
			return CampaignRow{}, err
		}

		return CampaignRow{
			Workload:            w.name,
			Vectors:             len(w.vec),
			Overruns:            stG.Overruns,
			FullSpeedMisses:     stF.Misses,
			UnguardedMisses:     stU.Misses,
			GuardedMisses:       stG.Misses,
			FullSpeedEnergy:     stF.AvgEnergy,
			UnguardedEnergy:     stU.AvgEnergy,
			GuardedEnergy:       stG.AvgEnergy,
			FallbackActivations: stG.FallbackActivations,
			MissesAvoided:       stG.MissesAvoided,
			MaxGuardLevel:       stG.MaxGuardLevel,
			TotalLateness:       stG.TotalLateness,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &FaultCampaignResult{Spec: spec, Guard: guard, Rows: rows}, nil
}

// Render formats the miss-rate-vs-energy tradeoff, energies normalized to
// the full-speed baseline (= 100).
func (r *FaultCampaignResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		norm := func(e float64) string { return f1(100 * e / row.FullSpeedEnergy) }
		rows = append(rows, []string{
			row.Workload,
			fmt.Sprintf("%d", row.Overruns),
			fmt.Sprintf("%.1f%% / %s", 100*row.MissRateFull(), norm(row.FullSpeedEnergy)),
			fmt.Sprintf("%.1f%% / %s", 100*row.MissRateUnguarded(), norm(row.UnguardedEnergy)),
			fmt.Sprintf("%.1f%% / %s", 100*row.MissRateGuarded(), norm(row.GuardedEnergy)),
			fmt.Sprintf("%d (%d saved)", row.FallbackActivations, row.MissesAvoided),
			fmt.Sprintf("%d", row.MaxGuardLevel),
		})
	}
	s := fmt.Sprintf("Fault campaign: seed %d, overrun prob %.2f ×%.2f, guard band %.2f\n",
		r.Spec.Seed, r.Spec.OverrunProb, r.Spec.OverrunFactor, r.Guard)
	s += "(each cell: miss rate / energy normalized to full speed = 100)\n"
	s += table(
		[]string{"Workload", "Overruns", "Full speed", "Unguarded", "Guarded+fallback", "Fallbacks", "MaxLvl"},
		rows)
	return s
}
