package exp

import (
	"reflect"
	"strings"
	"testing"

	"ctgdvfs/internal/health"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/telemetry"
)

// campaignTestVectors truncates the measured sequences so the acceptance
// tests stay affordable under the race detector; the qualitative contrast is
// already unambiguous at this length.
const campaignTestVectors = 250

// TestFaultCampaignAcceptance pins the PR's headline claim on both
// application workloads: under the seeded 20%-overrun plan the guarded
// runtime with fallback recovery misses strictly less than the unguarded
// adaptive runtime AND spends strictly less energy than the always-full-speed
// baseline, with the recovery counters visible in the row.
func TestFaultCampaignAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaign replays hundreds of faulty instances per runtime")
	}
	r, err := faultCampaignN(DefaultCampaignSpec(), DefaultCampaignGuard, campaignTestVectors, nil, MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("got %d workloads, want 2", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Overruns == 0 {
			t.Errorf("%s: fault plan injected no overruns", row.Workload)
		}
		if row.UnguardedMisses == 0 {
			t.Errorf("%s: unguarded runtime never missed; the campaign has no contrast", row.Workload)
		}
		if row.GuardedMisses >= row.UnguardedMisses {
			t.Errorf("%s: guarded misses %d not strictly below unguarded %d",
				row.Workload, row.GuardedMisses, row.UnguardedMisses)
		}
		if row.GuardedEnergy >= row.FullSpeedEnergy {
			t.Errorf("%s: guarded energy %v not strictly below full-speed %v",
				row.Workload, row.GuardedEnergy, row.FullSpeedEnergy)
		}
		if row.FallbackActivations == 0 {
			t.Errorf("%s: fallback never activated", row.Workload)
		}
		if row.MissesAvoided > row.FallbackActivations {
			t.Errorf("%s: misses avoided %d exceeds activations %d",
				row.Workload, row.MissesAvoided, row.FallbackActivations)
		}
		if row.GuardedMisses+row.MissesAvoided > row.FallbackActivations+row.UnguardedMisses {
			t.Errorf("%s: counters inconsistent: %+v", row.Workload, row)
		}
	}
	out := r.Render()
	for _, want := range []string{"Fault campaign", "Guarded+fallback", "mpeg", "cruise"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestFaultCampaignObservedHealth checks the observed campaign carries one
// live health analyzer per workload, fanned into the same stream as the
// recorder, and that attaching it changes no campaign number.
func TestFaultCampaignObservedHealth(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaign replays hundreds of faulty instances per runtime")
	}
	plain, err := faultCampaignN(DefaultCampaignSpec(), DefaultCampaignGuard, campaignTestVectors, nil, MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tel := &CampaignTelemetry{
		Metrics:   reg,
		Recorders: make(map[string]*telemetry.MemoryRecorder),
		Health:    make(map[string]*health.AnalyzerRecorder),
	}
	observed, err := faultCampaignN(DefaultCampaignSpec(), DefaultCampaignGuard, campaignTestVectors, tel, MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Rows, observed.Rows) {
		t.Fatalf("health monitoring changed campaign rows:\n%+v\n%+v", plain.Rows, observed.Rows)
	}
	for _, row := range observed.Rows {
		h := tel.Health[row.Workload]
		if h == nil {
			t.Fatalf("%s: no health analyzer", row.Workload)
		}
		s := h.Health()
		if s.Instances != row.Vectors {
			t.Errorf("%s: analyzer saw %d instances, want %d", row.Workload, s.Instances, row.Vectors)
		}
		if s.SLO.Misses != row.GuardedMisses {
			t.Errorf("%s: analyzer counted %d misses, want %d", row.Workload, s.SLO.Misses, row.GuardedMisses)
		}
		if s.SLO.Fallbacks != row.FallbackActivations {
			t.Errorf("%s: analyzer counted %d fallbacks, want %d",
				row.Workload, s.SLO.Fallbacks, row.FallbackActivations)
		}
		if s.SLO.MaxGuardLevel != row.MaxGuardLevel {
			t.Errorf("%s: analyzer max guard level %d, want %d",
				row.Workload, s.SLO.MaxGuardLevel, row.MaxGuardLevel)
		}
		if len(s.Hotspots.Tasks) == 0 || len(s.Drift) == 0 {
			t.Errorf("%s: analyzer missing hotspot/drift data", row.Workload)
		}
		// Raised alerts interleave into the workload's trace stream as typed
		// events, exactly as many as the analyzer counted.
		typed := tel.Recorders[row.Workload].CountByKind()[telemetry.KindHealthAlert]
		if typed != s.AlertsTotal {
			t.Errorf("%s: %d typed alert events vs %d alerts raised", row.Workload, typed, s.AlertsTotal)
		}
	}
	if reg.Snapshot().Counters["adaptive.instances"] == 0 {
		t.Error("campaign registry saw no instances")
	}
}

// TestFaultCampaignDeterministicAcrossWorkerBounds re-runs the campaign at
// several worker bounds: the stateless fault hash plus the index-addressed
// parallel helpers must make every number bit-for-bit identical.
func TestFaultCampaignDeterministicAcrossWorkerBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaign replays hundreds of faulty instances per runtime")
	}
	var base *FaultCampaignResult
	for _, workers := range []int{1, 4} {
		prev := par.SetLimit(workers)
		r, err := faultCampaignN(DefaultCampaignSpec(), DefaultCampaignGuard, campaignTestVectors, nil, MonitorConfig{})
		par.SetLimit(prev)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = r
			continue
		}
		if !reflect.DeepEqual(base.Rows, r.Rows) {
			t.Fatalf("workers=%d diverged:\n%+v\n%+v", workers, base.Rows, r.Rows)
		}
	}
}
