package exp

import (
	"reflect"
	"strings"
	"testing"

	"ctgdvfs/internal/par"
)

// campaignTestVectors truncates the measured sequences so the acceptance
// tests stay affordable under the race detector; the qualitative contrast is
// already unambiguous at this length.
const campaignTestVectors = 250

// TestFaultCampaignAcceptance pins the PR's headline claim on both
// application workloads: under the seeded 20%-overrun plan the guarded
// runtime with fallback recovery misses strictly less than the unguarded
// adaptive runtime AND spends strictly less energy than the always-full-speed
// baseline, with the recovery counters visible in the row.
func TestFaultCampaignAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaign replays hundreds of faulty instances per runtime")
	}
	r, err := faultCampaignN(DefaultCampaignSpec(), DefaultCampaignGuard, campaignTestVectors, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("got %d workloads, want 2", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Overruns == 0 {
			t.Errorf("%s: fault plan injected no overruns", row.Workload)
		}
		if row.UnguardedMisses == 0 {
			t.Errorf("%s: unguarded runtime never missed; the campaign has no contrast", row.Workload)
		}
		if row.GuardedMisses >= row.UnguardedMisses {
			t.Errorf("%s: guarded misses %d not strictly below unguarded %d",
				row.Workload, row.GuardedMisses, row.UnguardedMisses)
		}
		if row.GuardedEnergy >= row.FullSpeedEnergy {
			t.Errorf("%s: guarded energy %v not strictly below full-speed %v",
				row.Workload, row.GuardedEnergy, row.FullSpeedEnergy)
		}
		if row.FallbackActivations == 0 {
			t.Errorf("%s: fallback never activated", row.Workload)
		}
		if row.MissesAvoided > row.FallbackActivations {
			t.Errorf("%s: misses avoided %d exceeds activations %d",
				row.Workload, row.MissesAvoided, row.FallbackActivations)
		}
		if row.GuardedMisses+row.MissesAvoided > row.FallbackActivations+row.UnguardedMisses {
			t.Errorf("%s: counters inconsistent: %+v", row.Workload, row)
		}
	}
	out := r.Render()
	for _, want := range []string{"Fault campaign", "Guarded+fallback", "mpeg", "cruise"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestFaultCampaignDeterministicAcrossWorkerBounds re-runs the campaign at
// several worker bounds: the stateless fault hash plus the index-addressed
// parallel helpers must make every number bit-for-bit identical.
func TestFaultCampaignDeterministicAcrossWorkerBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaign replays hundreds of faulty instances per runtime")
	}
	var base *FaultCampaignResult
	for _, workers := range []int{1, 4} {
		prev := par.SetLimit(workers)
		r, err := faultCampaignN(DefaultCampaignSpec(), DefaultCampaignGuard, campaignTestVectors, nil)
		par.SetLimit(prev)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = r
			continue
		}
		if !reflect.DeepEqual(base.Rows, r.Rows) {
			t.Fatalf("workers=%d diverged:\n%+v\n%+v", workers, base.Rows, r.Rows)
		}
	}
}
