package exp

import (
	"strings"
	"testing"
)

// TestConsolidationCampaignShort runs the sweep at reduced rounds and checks
// the campaign's structural claims: every cell carries both arms, the
// ungoverned baseline never sheds and busts every sub-P0 cap, and at every
// degradation-forcing cap the governed fleet actually degrades while keeping
// the most-critical tenant running every round with zero misses.
func TestConsolidationCampaignShort(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet sweep")
	}
	rounds := 80
	res, err := ConsolidationCampaign(rounds)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(consolidationMixes()) * len(ConsolidationCapFractions)
	if len(res.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(res.Cells), wantCells)
	}

	for _, c := range res.Cells {
		u, g := c.Ungoverned, c.Governed
		if u.Instances != rounds*c.Tenants || u.ShedRounds != 0 {
			t.Errorf("%s@%.2f: ungoverned ran %d instances (shed %d), want %d and 0",
				c.Mix, c.CapFrac, u.Instances, u.ShedRounds, rounds*c.Tenants)
		}
		if g.HiInstances != rounds {
			t.Errorf("%s@%.2f: most-critical tenant ran %d rounds, want %d",
				c.Mix, c.CapFrac, g.HiInstances, rounds)
		}
		if c.CapFrac < 1 {
			if u.MaxWindowPower <= c.Cap || u.WindowsOverCap == 0 {
				t.Errorf("%s@%.2f: ungoverned peak %.2f should bust cap %.2f (over %d)",
					c.Mix, c.CapFrac, u.MaxWindowPower, c.Cap, u.WindowsOverCap)
			}
			if g.MaxLevel == 0 {
				t.Errorf("%s@%.2f: governed fleet never degraded under a sub-P0 cap",
					c.Mix, c.CapFrac)
			}
			if g.HiMisses != 0 {
				t.Errorf("%s@%.2f: governed most-critical tenant missed %d deadlines",
					c.Mix, c.CapFrac, g.HiMisses)
			}
		}
	}

	// At least one degradation-forcing cap must be held outright: no window
	// over cap, with the ladder engaged — the campaign's headline claim.
	held := false
	for _, c := range res.Cells {
		if c.CapFrac < 1 && c.Governed.WindowsOverCap == 0 && c.Governed.MaxLevel > 0 {
			held = true
		}
	}
	if !held {
		t.Error("no cell holds a degradation-forcing cap with zero over-cap windows")
	}

	out := res.Render()
	for _, want := range []string{"Consolidation campaign", "mpeg>cruise>wlan", "gov hi-miss"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestConsolidationObservedTelemetry checks the observed variant wires one
// recorder and health analyzer per cell and that governed degradation shows
// up in the power section of the cell's health snapshot.
func TestConsolidationObservedTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet sweep")
	}
	res, tel, err := ConsolidationCampaignObserved(60, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(consolidationMixes()) * len(ConsolidationCapFractions)
	wantRecs := 0 // one fleet stream per cell plus one per tenant
	for _, m := range consolidationMixes() {
		wantRecs += (1 + len(m.tenants)) * len(ConsolidationCapFractions)
	}
	if len(tel.Recorders) != wantRecs || len(tel.Health) != wantCells {
		t.Fatalf("telemetry streams = %d/%d, want %d/%d",
			len(tel.Recorders), len(tel.Health), wantRecs, wantCells)
	}
	sawPower := false
	for _, c := range res.Cells {
		key := consolidationCellKey(c.Mix, c.CapFrac, false)
		rec, h := tel.Recorders[key], tel.Health[key]
		if rec == nil || h == nil {
			t.Fatalf("cell %s missing telemetry", key)
		}
		if c.Governed.MaxLevel > 0 {
			if len(rec.Events()) == 0 {
				t.Errorf("cell %s degraded but recorded no events", key)
			}
			if ps := h.Health().Power; ps != nil && ps.MaxLevel > 0 {
				sawPower = true
			}
		}
	}
	if !sawPower {
		t.Error("no degraded cell surfaced a power section in its health snapshot")
	}
}

func TestExtendPlatformTilesNative(t *testing.T) {
	ws, err := campaignWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	native := ws[0].p
	ext, err := extendPlatform(native, ConsolidationPEs)
	if err != nil {
		t.Fatal(err)
	}
	if ext.NumPEs() != ConsolidationPEs || ext.NumTasks() != native.NumTasks() {
		t.Fatalf("extended shape %d PEs / %d tasks", ext.NumPEs(), ext.NumTasks())
	}
	n := native.NumPEs()
	for task := 0; task < native.NumTasks(); task++ {
		for pe := 0; pe < ConsolidationPEs; pe++ {
			if ext.WCET(task, pe) != native.WCET(task, pe%n) ||
				ext.Energy(task, pe) != native.Energy(task, pe%n) {
				t.Fatalf("task %d PE %d does not tile native PE %d", task, pe, pe%n)
			}
		}
	}
	if _, err := extendPlatform(ext, n); err == nil {
		t.Fatal("shrinking extension accepted")
	}
}
