package exp

import (
	"strings"
	"testing"
)

func TestTableRenderer(t *testing.T) {
	out := table([]string{"col", "x"}, [][]string{
		{"a", "1"},
		{"longer-cell", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// All rows align to the widest cell.
	width := len(lines[0])
	for i, ln := range lines {
		if len(strings.TrimRight(ln, " ")) > width {
			t.Fatalf("line %d wider than header: %q", i, ln)
		}
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("missing separator: %q", lines[1])
	}
	if !strings.Contains(out, "longer-cell") {
		t.Fatal("cell content lost")
	}
}

func TestFormatHelpers(t *testing.T) {
	if f0(99.6) != "100" || f1(1.25) != "1.2" && f1(1.25) != "1.3" || f2(0.5) != "0.50" {
		t.Fatalf("format helpers wrong: %q %q %q", f0(99.6), f1(1.25), f2(0.5))
	}
}

func TestTimeItRepeatsAndPropagatesErrors(t *testing.T) {
	n := 0
	d, err := timeIt(3, func() error { n++; return nil })
	if err != nil || n != 3 || d < 0 {
		t.Fatalf("timeIt: n=%d d=%v err=%v", n, d, err)
	}
	// Zero reps clamps to one.
	n = 0
	if _, err := timeIt(0, func() error { n++; return nil }); err != nil || n != 1 {
		t.Fatalf("timeIt clamp: n=%d err=%v", n, err)
	}
	if _, err := timeIt(2, func() error { return errSentinel }); err == nil {
		t.Fatal("timeIt must propagate errors")
	}
}

type sentinelError struct{}

func (sentinelError) Error() string { return "sentinel" }

var errSentinel = sentinelError{}
