package exp

import (
	"fmt"

	"ctgdvfs/internal/apps/mpeg"
	"ctgdvfs/internal/apps/wlan"
	"ctgdvfs/internal/core"
	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/stretch"
	"ctgdvfs/internal/tgff"
)

// PerScenarioRow compares the paper's single-speed-per-task heuristic with
// the scenario-conditioned extension on one workload.
type PerScenarioRow struct {
	Name string
	// SingleSpeed and PerScenario are expected energies; Saving is the
	// relative improvement of the extension.
	SingleSpeed, PerScenario float64
	Saving                   float64
	Scenarios                int
}

// PerScenarioResult is the per-scenario-DVFS extension experiment.
type PerScenarioResult struct {
	Rows      []PerScenarioRow
	AvgSaving float64
}

// PerScenarioDVFS quantifies what the paper's single-speed restriction
// costs: it compares the online heuristic against scenario-conditioned
// speeds (stretch.PerScenario) on the Table 1 graphs and the two
// branch-heavy applications. Both assignments run on the identical mapping
// and meet the deadline in every scenario.
func PerScenarioDVFS() (*PerScenarioResult, error) {
	runOne := func(name string, g *ctg.Graph, p *platform.Platform) (PerScenarioRow, error) {
		g, err := core.TightenDeadline(g, p, DeadlineFactor)
		if err != nil {
			return PerScenarioRow{}, err
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			return PerScenarioRow{}, err
		}
		sSingle, err := sched.DLS(a, p, sched.Modified())
		if err != nil {
			return PerScenarioRow{}, err
		}
		rH, err := stretch.Heuristic(sSingle, platform.Continuous(), 0)
		if err != nil {
			return PerScenarioRow{}, err
		}
		sMulti, err := sched.DLS(a, p, sched.Modified())
		if err != nil {
			return PerScenarioRow{}, err
		}
		sp, err := stretch.PerScenario(sMulti, platform.Continuous())
		if err != nil {
			return PerScenarioRow{}, err
		}
		multi := stretch.ExpectedEnergyWithScenarioSpeeds(sMulti, sp)
		return PerScenarioRow{
			Name:        name,
			SingleSpeed: rH.ExpectedEnergy,
			PerScenario: multi,
			Saving:      (rH.ExpectedEnergy - multi) / rH.ExpectedEnergy,
			Scenarios:   a.NumScenarios(),
		}, nil
	}

	// Assemble the work list first (five Table 1 graphs plus the two
	// applications), then fan the independent comparisons out over the
	// worker pool; rows come back in work-list order.
	type workload struct {
		name string
		g    *ctg.Graph
		p    *platform.Platform
	}
	var work []workload
	for i, c := range tgff.Table1Cases() {
		g, p, err := tgff.Generate(c.Config)
		if err != nil {
			return nil, err
		}
		work = append(work, workload{fmt.Sprintf("random %d (%d/%d/%d)", i+1,
			c.Config.Nodes, c.Config.PEs, c.Config.Branches), g, p})
	}
	if g, p, err := mpeg.Build(); err != nil {
		return nil, err
	} else {
		work = append(work, workload{"MPEG decoder", g, p})
	}
	if g, p, err := wlan.Build(); err != nil {
		return nil, err
	} else {
		work = append(work, workload{"802.11b receiver", g, p})
	}

	rows, err := par.MapErr(len(work), func(i int) (PerScenarioRow, error) {
		return runOne(work[i].name, work[i].g, work[i].p)
	})
	if err != nil {
		return nil, err
	}
	res := &PerScenarioResult{Rows: rows}
	for _, row := range res.Rows {
		res.AvgSaving += row.Saving
	}
	res.AvgSaving /= float64(len(res.Rows))
	return res, nil
}

// Render formats the per-scenario-DVFS comparison.
func (r *PerScenarioResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name, fmt.Sprintf("%d", row.Scenarios),
			f1(row.SingleSpeed), f1(row.PerScenario),
			fmt.Sprintf("%.1f%%", 100*row.Saving),
		})
	}
	s := "Extension: scenario-conditioned DVFS vs the paper's single speed per task\n"
	s += table([]string{"workload", "minterms", "single-speed E", "per-scenario E", "saving"}, rows)
	s += fmt.Sprintf("\nAverage saving: %.1f%% (speeds conditioned on resolved ancestor forks only;\nidentical mapping, deadline met in every scenario)\n", 100*r.AvgSaving)
	return s
}
