package exp

import (
	"fmt"

	"ctgdvfs/internal/serve/chaos"
)

// DaemonResult is the chaos campaign against the multi-tenant scheduling
// daemon (DESIGN.md §15): the seeded fault-injection run of
// internal/serve/chaos, exposed as an experiment so `-exp daemon` gates the
// daemon's robustness invariants the same way the other campaigns gate
// scheduling quality.
type DaemonResult struct {
	Report *chaos.Report
}

// Daemon runs the reference chaos campaign.
func Daemon() (*DaemonResult, error) {
	rep, err := chaos.Run(chaos.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &DaemonResult{Report: rep}, nil
}

// Render formats the campaign report.
func (r *DaemonResult) Render() string { return r.Report.Render() }

// Err returns a non-nil error when the campaign broke an invariant, so the
// experiment driver exits non-zero on a red run.
func (r *DaemonResult) Err() error {
	if r.Report.Green() {
		return nil
	}
	return fmt.Errorf("daemon chaos campaign: %d invariant violations", len(r.Report.Violations))
}
