package exp

import (
	"fmt"

	"ctgdvfs/internal/core"
	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/tgff"
	"ctgdvfs/internal/trace"
)

// Bias selects how the non-adaptive algorithm's profile is produced for the
// random-CTG experiments.
type Bias int

const (
	// BiasLowest profiles toward the lowest-energy minterm (Table 4): the
	// online algorithm schedules for the cheap case and pays dearly when
	// expensive minterms occur.
	BiasLowest Bias = iota
	// BiasHighest profiles toward the highest-energy minterm (Table 5):
	// mispredictions only hit the cheap minterms, so the gap shrinks.
	BiasHighest
	// BiasIdeal uses the exact long-run average of the test vectors
	// (Figure 6): adaptation can still win on local fluctuations.
	BiasIdeal
)

func (b Bias) String() string {
	switch b {
	case BiasLowest:
		return "lowest-energy minterm bias"
	case BiasHighest:
		return "highest-energy minterm bias"
	default:
		return "ideal profiling"
	}
}

// RandomRow is one random CTG of Tables 4/5 or Figure 6. Energies are raw
// per-instance averages (the paper prints raw values in these tables).
type RandomRow struct {
	CTG      int
	Triplet  string
	Category tgff.Category

	Online    float64
	T05Energy float64
	T05Calls  int
	T01Energy float64
	T01Calls  int
}

// RandomResult aggregates one bias variant over the ten random CTGs.
type RandomResult struct {
	Bias Bias
	Rows []RandomRow

	// Mean relative savings of the adaptive algorithm over online.
	AvgSavingT05, AvgSavingT01 float64
	// Per-category savings at each threshold (categories 1 and 2).
	Cat1SavingT05, Cat2SavingT05 float64
	Cat1SavingT01, Cat2SavingT01 float64
	// Mean call counts.
	AvgCallsT05, AvgCallsT01 float64
}

// RandomCTGs runs the Tables 4/5 / Figure 6 experiment for one profile
// bias: ten random CTGs (graphs 1–5 Category 1, 6–10 Category 2), test
// vectors with equal long-run branch averages but 0.4–0.5 fluctuation, the
// online algorithm profiled per the bias, and the adaptive algorithm
// starting from the same profile with thresholds 0.5 and 0.1.
func RandomCTGs(bias Bias) (*RandomResult, error) {
	// The ten CTGs are independent (per-case generator seeds, per-case trace
	// seeds), so each runs on the worker pool; the savings aggregation walks
	// rows in case order afterwards, reproducing the serial tables exactly.
	cases := tgff.Table4Cases()
	rows, err := par.MapErr(len(cases), func(i int) (RandomRow, error) {
		c := cases[i]
		g0, p, err := tgff.Generate(c.Config)
		if err != nil {
			return RandomRow{}, fmt.Errorf("random case %d: %w", i+1, err)
		}
		g, err := core.TightenDeadline(g0, p, DeadlineFactor)
		if err != nil {
			return RandomRow{}, err
		}
		vec := trace.Fluctuating(g, int64(4000+i), 1000, 0.45)

		var profile [][]float64
		switch bias {
		case BiasIdeal:
			profile = trace.AverageProbs(g, vec)
		default:
			a, err := ctg.Analyze(g)
			if err != nil {
				return RandomRow{}, err
			}
			avgEnergy := func(t ctg.TaskID) float64 {
				sum := 0.0
				for pe := 0; pe < p.NumPEs(); pe++ {
					sum += p.Energy(int(t), pe)
				}
				return sum / float64(p.NumPEs())
			}
			minIdx, maxIdx := a.MinMaxWeightScenarios(avgEnergy)
			idx := minIdx
			if bias == BiasHighest {
				idx = maxIdx
			}
			profile = trace.BiasedProfile(a, idx, 0.9)
		}

		gProf := g.Clone()
		if err := trace.ApplyProfile(gProf, profile); err != nil {
			return RandomRow{}, err
		}
		static, err := buildOnline(gProf, p)
		if err != nil {
			return RandomRow{}, err
		}
		stOnline, err := core.RunStatic(static, vec)
		if err != nil {
			return RandomRow{}, err
		}

		row := RandomRow{
			CTG:      i + 1,
			Triplet:  fmt.Sprintf("%d/%d/%d", c.Config.Nodes, c.Config.PEs, c.Config.Branches),
			Category: c.Config.Category,
			Online:   stOnline.AvgEnergy,
		}
		for _, th := range []float64{0.5, 0.1} {
			m, err := core.New(gProf, p, core.Options{Window: 20, Threshold: th})
			if err != nil {
				return RandomRow{}, err
			}
			st, err := m.Run(vec)
			if err != nil {
				return RandomRow{}, err
			}
			if th == 0.5 {
				row.T05Energy, row.T05Calls = st.AvgEnergy, st.Calls
			} else {
				row.T01Energy, row.T01Calls = st.AvgEnergy, st.Calls
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}

	res := &RandomResult{Bias: bias, Rows: rows}
	var cat1T05, cat1T01, cat2T05, cat2T01 []float64
	for _, row := range res.Rows {
		s05 := (row.Online - row.T05Energy) / row.Online
		s01 := (row.Online - row.T01Energy) / row.Online
		res.AvgSavingT05 += s05
		res.AvgSavingT01 += s01
		res.AvgCallsT05 += float64(row.T05Calls)
		res.AvgCallsT01 += float64(row.T01Calls)
		if row.Category == tgff.ForkJoin {
			cat1T05 = append(cat1T05, s05)
			cat1T01 = append(cat1T01, s01)
		} else {
			cat2T05 = append(cat2T05, s05)
			cat2T01 = append(cat2T01, s01)
		}
	}
	n := float64(len(res.Rows))
	res.AvgSavingT05 /= n
	res.AvgSavingT01 /= n
	res.AvgCallsT05 /= n
	res.AvgCallsT01 /= n
	res.Cat1SavingT05 = mean(cat1T05)
	res.Cat2SavingT05 = mean(cat2T05)
	res.Cat1SavingT01 = mean(cat1T01)
	res.Cat2SavingT01 = mean(cat2T01)
	return res, nil
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}

// Table4 reproduces Table 4 (online profiled for the lowest-energy
// minterm).
func Table4() (*RandomResult, error) { return RandomCTGs(BiasLowest) }

// Table5 reproduces Table 5 (online profiled for the highest-energy
// minterm).
func Table5() (*RandomResult, error) { return RandomCTGs(BiasHighest) }

// Figure6 reproduces Figure 6 (online with ideal profiling vs adaptive).
func Figure6() (*RandomResult, error) { return RandomCTGs(BiasIdeal) }

// Render formats the result like the corresponding paper table.
func (r *RandomResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.CTG), row.Triplet,
			f1(row.Online),
			f1(row.T05Energy), fmt.Sprintf("%d", row.T05Calls),
			f1(row.T01Energy), fmt.Sprintf("%d", row.T01Calls),
		})
	}
	title := map[Bias]string{
		BiasLowest:  "Table 4: Energy savings with online algorithm profiled for lowest energy minterm",
		BiasHighest: "Table 5: Energy savings with online algorithm profiled for highest energy minterm",
		BiasIdeal:   "Figure 6: Energy consumption with ideal profiling",
	}[r.Bias]
	s := title + "\n"
	s += table([]string{"CTG", "a/b/c", "Online", "T=0.5", "#calls", "T=0.1", "#calls"}, rows)
	s += fmt.Sprintf("\nAverage savings: T=0.5 %.0f%%, T=0.1 %.0f%%\n",
		100*r.AvgSavingT05, 100*r.AvgSavingT01)
	s += fmt.Sprintf("Category 1 vs 2 savings at T=0.5: %.0f%% vs %.0f%%\n",
		100*r.Cat1SavingT05, 100*r.Cat2SavingT05)
	s += fmt.Sprintf("Average calls: T=0.5 %.1f, T=0.1 %.1f\n", r.AvgCallsT05, r.AvgCallsT01)
	return s
}
