package exp

import (
	"fmt"
	"math/rand"
	"time"

	"ctgdvfs/internal/core"
	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
)

// Large-scale performance tier: a synthetic CTG generator producing
// 10³–10⁴-task graphs on 16–64-PE platforms, plus a scaling campaign that
// measures the adaptive runtime's rescheduling cost — full recompute versus
// incremental warm start — as the graph grows. The paper's own workloads top
// out near 100 tasks; this tier is where the warm-start path earns its keep,
// since a full DLS + stretch pipeline at 10³ tasks costs hundreds of
// milliseconds while a small-drift warm start touches only one fork's
// conditional arms.

// ScaleConfig parameterizes one synthetic large-scale workload. The shape is
// deliberately regular — W parallel chains between a common entry and sink,
// with conditional fork/join diamonds embedded mid-chain — so task count,
// parallelism and scenario count can be scaled independently.
type ScaleConfig struct {
	// Tasks is the approximate total task count (the generator rounds to
	// fill whole chains). Default 1000.
	Tasks int
	// PEs is the platform size; also the number of parallel chains. Default
	// 16.
	PEs int
	// Forks is the number of conditional fork/join diamonds (one per chain,
	// at most PEs); scenarios grow as 2^Forks. Default 5.
	Forks int
	// ArmLen is the task count of each conditional arm. Default 3.
	ArmLen int
	// Seed drives all randomized parameters (WCETs, energies, comm volumes,
	// branch probabilities). Default 1.
	Seed int64
}

func (c *ScaleConfig) applyDefaults() {
	if c.Tasks == 0 {
		c.Tasks = 1000
	}
	if c.PEs == 0 {
		c.PEs = 16
	}
	if c.Forks == 0 {
		c.Forks = 5
	}
	if c.ArmLen == 0 {
		c.ArmLen = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

func (c *ScaleConfig) validate() error {
	if c.Forks > c.PEs {
		return fmt.Errorf("exp: scale config wants %d forks but only %d chains (PEs)", c.Forks, c.PEs)
	}
	min := 2 + c.PEs*2 + c.Forks*(2*c.ArmLen+1)
	if c.Tasks < min {
		return fmt.Errorf("exp: scale config wants %d tasks, shape needs ≥ %d", c.Tasks, min)
	}
	return nil
}

// ScaleWorkload generates a large-scale CTG and matching heterogeneous
// platform. The graph is one entry task fanning out to PEs parallel chains
// that re-converge on a sink; the first Forks chains embed, mid-chain, a
// conditional diamond (fork task → two ArmLen-task arms under outcomes 0/1 →
// or-node join). The arms are the only tasks whose activation is split
// across a fork's outcomes, so a drift confined to one fork yields a small,
// well-separated affected set — the structure the warm-start path exploits.
//
// The returned graph carries a generous provisional deadline; tighten it
// against an actual schedule with core.TightenDeadline before measuring.
func ScaleWorkload(cfg ScaleConfig) (*ctg.Graph, *platform.Platform, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := ctg.NewBuilder()

	const (
		wcetMin, wcetMax = 5.0, 40.0
		hetero           = 0.3
		commMin, commMax = 2.0, 16.0
		bandMin, bandMax = 4.0, 12.0
		txEnergyPerKB    = 0.02
	)
	comm := func() float64 { return commMin + rng.Float64()*(commMax-commMin) }

	chainLen := (cfg.Tasks - 2 - cfg.Forks*(2*cfg.ArmLen+1)) / cfg.PEs
	if chainLen < 2 {
		chainLen = 2
	}

	entry := b.AddTask("", ctg.AndNode)
	chainEnds := make([]ctg.TaskID, cfg.PEs)
	for w := 0; w < cfg.PEs; w++ {
		last := entry
		mid := chainLen / 2
		for i := 0; i < chainLen; i++ {
			t := b.AddTask("", ctg.AndNode)
			b.AddEdge(last, t, comm())
			last = t
			if w < cfg.Forks && i == mid {
				// Conditional diamond: `last` becomes fork w.
				fork := last
				join := b.AddTask("", ctg.OrNode)
				for outcome := 0; outcome < 2; outcome++ {
					armLast := fork
					for j := 0; j < cfg.ArmLen; j++ {
						at := b.AddTask("", ctg.AndNode)
						if j == 0 {
							b.AddCondEdge(fork, at, comm(), outcome)
						} else {
							b.AddEdge(armLast, at, comm())
						}
						armLast = at
					}
					b.AddEdge(armLast, join, comm())
				}
				p := 0.2 + 0.6*rng.Float64()
				b.SetBranchProbs(fork, []float64{p, 1 - p})
				last = join
			}
		}
		chainEnds[w] = last
	}
	sink := b.AddTask("", ctg.AndNode)
	for _, end := range chainEnds {
		b.AddEdge(end, sink, comm())
	}

	numTasks := 2 + cfg.PEs*chainLen + cfg.Forks*(2*cfg.ArmLen+1)
	// Provisional deadline: serial worst case, far beyond any schedule.
	g, err := b.Build(float64(numTasks) * wcetMax)
	if err != nil {
		return nil, nil, err
	}

	pb := platform.NewBuilder(numTasks, cfg.PEs)
	for t := 0; t < numTasks; t++ {
		mean := wcetMin + rng.Float64()*(wcetMax-wcetMin)
		w := make([]float64, cfg.PEs)
		e := make([]float64, cfg.PEs)
		for pe := 0; pe < cfg.PEs; pe++ {
			w[pe] = mean * (1 - hetero + 2*hetero*rng.Float64())
			e[pe] = w[pe] * (0.8 + 0.4*rng.Float64())
		}
		pb.SetTask(t, w, e)
	}
	for i := 0; i < cfg.PEs; i++ {
		for j := 0; j < cfg.PEs; j++ {
			if i != j {
				pb.SetLink(i, j, bandMin+rng.Float64()*(bandMax-bandMin), txEnergyPerKB)
			}
		}
	}
	p, err := pb.Build()
	if err != nil {
		return nil, nil, err
	}
	return g, p, nil
}

// ScaleDriftVectors builds a decision-vector sequence whose drift is
// confined to fork 0: its outcome cycles with period 3 (so a window-20
// estimate keeps moving), while every other fork always selects outcome 0.
// This is the small-drift regime the warm-start path targets.
func ScaleDriftVectors(g *ctg.Graph, n int) [][]int {
	vecs := make([][]int, n)
	for i := range vecs {
		v := make([]int, g.NumForks())
		if i%3 == 0 {
			v[0] = 1
		}
		vecs[i] = v
	}
	return vecs
}

// ScaleCell is one measured point of the scaling campaign.
type ScaleCell struct {
	Tasks, PEs, Forks int
	Instances         int

	// FullMs is one cold full reschedule (DLS + stretch) in milliseconds.
	FullMs float64
	// StepFullMs / StepWarmMs are the mean per-instance adaptive step times
	// under the drift workload with warm-starting off / on.
	StepFullMs float64
	StepWarmMs float64
	// Speedup is StepFullMs / StepWarmMs.
	Speedup float64

	WarmStarts    int
	WarmFallbacks int
	// MissesFull / MissesWarm pin the behavioral envelope: warm-starting
	// must not trade deadline misses for speed.
	MissesFull int
	MissesWarm int
	// EnergyDeltaPct is the relative expected-energy difference of the two
	// runs (warm vs full), in percent.
	EnergyDeltaPct float64
}

// ScaleResult is the scaling campaign's output.
type ScaleResult struct {
	Cells []ScaleCell
}

// ScaleCampaignQuick runs the single-cell quick tier (one 10³-task graph on
// 16 PEs) — the configuration the verify pipeline smokes and the committed
// benchmarks gate.
func ScaleCampaignQuick() (*ScaleResult, error) {
	return ScaleCampaign([]ScaleConfig{{Tasks: 1000, PEs: 16, Forks: 5}}, 45)
}

// ScaleCampaignFull runs the full scaling curve up to 10⁴ tasks on 64 PEs.
// Budget minutes, not seconds: the largest cell's full reschedules are the
// very cost the curve exists to demonstrate.
func ScaleCampaignFull() (*ScaleResult, error) {
	return ScaleCampaign([]ScaleConfig{
		{Tasks: 1000, PEs: 16, Forks: 5},
		{Tasks: 2000, PEs: 32, Forks: 4},
		{Tasks: 5000, PEs: 64, Forks: 3},
		{Tasks: 10000, PEs: 64, Forks: 3},
	}, 45)
}

// ScaleCampaign measures, for each configuration, the cost of full
// rescheduling versus warm-started rescheduling under a small-drift
// workload: two adaptive managers (warm off / warm on, threshold 0 so every
// estimate movement triggers a reschedule, cache disabled so every trigger
// pays the pipeline) replay the same fork-0 drift vectors.
func ScaleCampaign(cfgs []ScaleConfig, instances int) (*ScaleResult, error) {
	res := &ScaleResult{}
	for _, cfg := range cfgs {
		cfg.applyDefaults()
		g0, p, err := ScaleWorkload(cfg)
		if err != nil {
			return nil, err
		}
		g, err := core.TightenDeadline(g0, p, 2.0)
		if err != nil {
			return nil, err
		}
		vec := ScaleDriftVectors(g, instances)

		start := time.Now()
		if _, err := core.BuildOnline(g, p, core.Options{}); err != nil {
			return nil, err
		}
		fullMs := float64(time.Since(start).Microseconds()) / 1e3

		run := func(warm bool) (core.RunStats, float64, float64, error) {
			var opts core.Options
			opts.SetThreshold(0)
			opts.CacheSize = -1
			opts.WarmStart = warm
			m, err := core.New(g, p, opts)
			if err != nil {
				return core.RunStats{}, 0, 0, err
			}
			t0 := time.Now()
			st, err := m.Run(vec)
			if err != nil {
				return core.RunStats{}, 0, 0, err
			}
			ms := float64(time.Since(t0).Microseconds()) / 1e3 / float64(instances)
			return st, ms, m.Schedule().ExpectedEnergy(), nil
		}
		stFull, stepFull, _, err := run(false)
		if err != nil {
			return nil, err
		}
		stWarm, stepWarm, _, err := run(true)
		if err != nil {
			return nil, err
		}

		cell := ScaleCell{
			Tasks: g.NumTasks(), PEs: cfg.PEs, Forks: cfg.Forks,
			Instances:  instances,
			FullMs:     fullMs,
			StepFullMs: stepFull,
			StepWarmMs: stepWarm,
			WarmStarts: stWarm.WarmStarts, WarmFallbacks: stWarm.WarmFallbacks,
			MissesFull: stFull.Misses, MissesWarm: stWarm.Misses,
		}
		if stepWarm > 0 {
			cell.Speedup = stepFull / stepWarm
		}
		if stFull.AvgEnergy > 0 {
			cell.EnergyDeltaPct = 100 * (stWarm.AvgEnergy - stFull.AvgEnergy) / stFull.AvgEnergy
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// Render formats the scaling curve.
func (r *ScaleResult) Render() string {
	rows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.Tasks), fmt.Sprintf("%d", c.PEs), fmt.Sprintf("%d", c.Forks),
			fmt.Sprintf("%.1f", c.FullMs),
			fmt.Sprintf("%.2f", c.StepFullMs), fmt.Sprintf("%.2f", c.StepWarmMs),
			fmt.Sprintf("%.1fx", c.Speedup),
			fmt.Sprintf("%d/%d", c.WarmStarts, c.WarmFallbacks),
			fmt.Sprintf("%d/%d", c.MissesFull, c.MissesWarm),
			fmt.Sprintf("%+.1f%%", c.EnergyDeltaPct),
		})
	}
	s := "Scaling tier: full vs warm-started rescheduling under fork-0 drift\n"
	s += table([]string{"tasks", "PEs", "forks", "full-resched ms", "step-full ms", "step-warm ms", "speedup", "warm/fb", "miss f/w", "Δenergy"}, rows)
	s += "\nstep-full: mean adaptive step, every drift paying a full DLS+stretch (T=0, cache off)\n"
	s += "step-warm: same workload with incremental warm-start rescheduling enabled\n"
	return s
}
