package exp

import (
	"fmt"

	"ctgdvfs/internal/core"
	"ctgdvfs/internal/health"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/power"
	"ctgdvfs/internal/series"
	"ctgdvfs/internal/telemetry"
)

// ConsolidationPEs is the shared fabric size the consolidation campaign
// hosts its tenants on: every application's native platform (3–5 PEs) is
// tiled out to this many PEs so multiple tenants can hold disjoint
// partitions.
const ConsolidationPEs = 8

// DefaultConsolidationRounds bounds the replayed rounds per fleet run. Each
// cell runs a governed and an ungoverned fleet end to end, so the sweep is
// |mixes| × |cap fractions| × 2 full runs.
const DefaultConsolidationRounds = 300

// ConsolidationWindow is the power-measurement window (rounds) used by both
// arms of every cell.
const ConsolidationWindow = 8

// ConsolidationGuard is every tenant's base guard band: the first ladder
// rungs release this reserved slack back to DVFS before any hardware is
// taken away.
const ConsolidationGuard = 0.3

// ConsolidationCapFractions are the swept chip-power caps, as fractions of
// each mix's measured ungoverned peak P0: one cap the undegraded fleet
// already satisfies, and two the governor can only meet by degrading.
var ConsolidationCapFractions = []float64{1.10, 0.85, 0.70}

// Idle-power model, relative to the mix's measured peak dynamic power: idle
// PEs together draw 30% of peak dynamic, the interconnect 2%. Power-gating a
// revoked PE recovers its idle share — what makes revocation a real rung and
// not just a capacity cut.
const (
	consolidationIdlePEFrac   = 0.30
	consolidationIdleLinkFrac = 0.02
)

// consolidationMix is one tenant line-up, most-critical first.
type consolidationMix struct {
	label   string
	tenants []int // workload indices, descending criticality
}

// consolidationMixes sweeps tenant count (2 vs 3 apps sharing the fabric)
// and criticality order (which tenant the ladder must protect).
func consolidationMixes() []consolidationMix {
	return []consolidationMix{
		{label: "mpeg>cruise", tenants: []int{0, 1}},
		{label: "cruise>mpeg", tenants: []int{1, 0}},
		{label: "mpeg>cruise>wlan", tenants: []int{0, 1, 2}},
		{label: "wlan>cruise>mpeg", tenants: []int{2, 1, 0}},
	}
}

// extendPlatform tiles a native platform out to numPEs: PE k of the extended
// fabric behaves like native PE k mod native (WCET and energy tables), and
// the interconnect is uniform at the native fabric's average bandwidth and
// transfer energy. This keeps each application's heterogeneity while giving
// every tenant mix one common fabric to partition.
func extendPlatform(p *platform.Platform, numPEs int) (*platform.Platform, error) {
	native := p.NumPEs()
	if native > numPEs {
		return nil, fmt.Errorf("exp: cannot shrink %d-PE platform to %d PEs", native, numPEs)
	}
	b := platform.NewBuilder(p.NumTasks(), numPEs)
	for t := 0; t < p.NumTasks(); t++ {
		wcet := make([]float64, numPEs)
		energy := make([]float64, numPEs)
		for pe := 0; pe < numPEs; pe++ {
			wcet[pe] = p.WCET(t, pe%native)
			energy[pe] = p.Energy(t, pe%native)
		}
		b.SetTask(t, wcet, energy)
	}
	var bw, en float64
	links := 0
	for i := 0; i < native; i++ {
		for j := 0; j < native; j++ {
			if i == j {
				continue
			}
			bw += p.Bandwidth(i, j)
			en += p.CommEnergy(1, i, j)
			links++
		}
	}
	b.SetAllLinks(bw/float64(links), en/float64(links))
	return b.Build()
}

// consolidationWorkloads prepares the three applications for consolidation:
// profiled graphs as in the fault campaign (training prefix applied,
// disjoint measured sequence), but over the ConsolidationPEs-wide shared
// fabric. Deadlines are left to the fleet's DeadlineFactor, which tightens
// each tenant against the partition it is actually granted.
func consolidationWorkloads() ([]campaignWorkload, error) {
	ws, err := failoverWorkloads()
	if err != nil {
		return nil, err
	}
	for i := range ws {
		ws[i].p, err = extendPlatform(ws[i].p, ConsolidationPEs)
		if err != nil {
			return nil, fmt.Errorf("exp: extend %s platform: %w", ws[i].name, err)
		}
	}
	return ws, nil
}

// ConsolidationArm is one runtime's end-of-run aggregate in a cell.
type ConsolidationArm struct {
	// HiMisses / HiInstances cover the most-critical tenant only — the
	// tenant the degradation ladder must keep whole.
	HiMisses    int
	HiInstances int
	// Misses / Instances / ShedRounds aggregate every tenant.
	Misses     int
	Instances  int
	ShedRounds int
	Energy     float64

	MaxWindowPower float64
	WindowsOverCap int

	// Governor state (zero for the ungoverned arm).
	PrimedLevel, MaxLevel, FinalLevel int
	Revocations, Sheds                int
}

// HiMissRate is the most-critical tenant's deadline-miss fraction.
func (a ConsolidationArm) HiMissRate() float64 {
	if a.HiInstances == 0 {
		return 0
	}
	return float64(a.HiMisses) / float64(a.HiInstances)
}

// MissRate is the fleet-wide miss fraction over executed instances.
func (a ConsolidationArm) MissRate() float64 {
	if a.Instances == 0 {
		return 0
	}
	return float64(a.Misses) / float64(a.Instances)
}

// ConsolidationCell is one point of the sweep: one tenant mix under one
// chip-power cap, run governed and ungoverned.
type ConsolidationCell struct {
	Mix      string
	Tenants  int
	CapFrac  float64
	Cap      float64
	Baseline float64 // P0: the mix's ungoverned peak window power

	Governed   ConsolidationArm
	Ungoverned ConsolidationArm
}

// ConsolidationResult is the consolidation campaign (DESIGN.md §12): N
// applications share one fabric under a chip power cap; the governed fleet
// degrades gracefully in criticality order while the ungoverned baseline
// runs everything and busts the budget.
type ConsolidationResult struct {
	Rounds int
	PEs    int
	Cells  []ConsolidationCell
}

// ConsolidationCampaign runs the full sweep. rounds ≤ 0 selects
// DefaultConsolidationRounds.
func ConsolidationCampaign(rounds int) (*ConsolidationResult, error) {
	res, _, err := consolidationN(rounds, false, nil, nil, MonitorConfig{})
	return res, err
}

// ConsolidationCampaignBudget replays every mix under one absolute budget
// instead of the P0-relative sweep: the cap and window come from the spec
// (CLI flags or a -faults-spec power section, already validated), the idle
// model from the spec when set, otherwise derived from the mix's measured
// peak as in the default sweep.
func ConsolidationCampaignBudget(rounds int, b power.Budget) (*ConsolidationResult, error) {
	res, _, err := consolidationN(rounds, false, &b, nil, MonitorConfig{})
	return res, err
}

// ConsolidationCampaignObserved is ConsolidationCampaign with full
// observability: each cell's governed arm streams its fleet and tenant
// events into a per-cell recorder and health analyzer (keyed
// "mix@capfrac"), and every arm publishes into reg (a fresh registry when
// nil). A non-nil override replaces the sweep as in
// ConsolidationCampaignBudget.
func ConsolidationCampaignObserved(rounds int, override *power.Budget, reg *telemetry.Registry) (*ConsolidationResult, *CampaignTelemetry, error) {
	return consolidationN(rounds, true, override, reg, MonitorConfig{})
}

// ConsolidationCampaignMonitored is ConsolidationCampaignObserved plus
// time-series sampling: each cell's governed fleet samples a per-cell series
// store (keyed like the recorders) on every round boundary and evaluates
// mc.Rules against the samples. The stores arrive in
// CampaignTelemetry.Series.
func ConsolidationCampaignMonitored(rounds int, override *power.Budget, reg *telemetry.Registry, mc MonitorConfig) (*ConsolidationResult, *CampaignTelemetry, error) {
	return consolidationN(rounds, true, override, reg, mc)
}

// consolidationCellKey names a cell's telemetry stream. Under an absolute
// budget override there is one cell per mix and the mix label alone is the
// key (the cap fraction depends on the measured P0, which is not known when
// the streams are pre-allocated).
func consolidationCellKey(mix string, frac float64, override bool) string {
	if override {
		return mix
	}
	return fmt.Sprintf("%s@%.2f", mix, frac)
}

func consolidationN(rounds int, observed bool, override *power.Budget, reg *telemetry.Registry, mc MonitorConfig) (*ConsolidationResult, *CampaignTelemetry, error) {
	if rounds <= 0 {
		rounds = DefaultConsolidationRounds
	}
	ws, err := consolidationWorkloads()
	if err != nil {
		return nil, nil, err
	}
	mixes := consolidationMixes()
	fracs := ConsolidationCapFractions
	if override != nil {
		fracs = []float64{0} // placeholder: the real fraction is cap/P0 per mix
	}

	var tel *CampaignTelemetry
	if observed {
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		tel = &CampaignTelemetry{
			Metrics:   reg,
			Recorders: make(map[string]*telemetry.MemoryRecorder),
			Health:    make(map[string]*health.AnalyzerRecorder),
			Series:    make(map[string]*series.Store),
		}
		// Pre-allocate every cell's streams so the parallel sweep only reads
		// the maps. Each cell gets one recorder for the fleet's budget events
		// plus one per tenant (two tenants replaying the same rounds into one
		// stream would collide in the Chrome trace), and one health analyzer
		// fed by all of them.
		for _, m := range mixes {
			for _, frac := range fracs {
				key := consolidationCellKey(m.label, frac, override != nil)
				tel.Recorders[key] = telemetry.NewMemoryRecorder()
				tel.Health[key] = health.New(health.Options{})
				for _, wi := range m.tenants {
					tel.Recorders[key+"/"+ws[wi].name] = telemetry.NewMemoryRecorder()
				}
				// The governed arm samples a per-cell mirror of the shared
				// registry, keeping the rings deterministic under the
				// parallel sweep (see CampaignTelemetry.Series).
				tel.Series[key] = series.NewStore(series.StoreOptions{
					Registry: telemetry.NewMirrorRegistry(reg),
					Capacity: mc.SeriesCapacity,
					Rules:    mc.Rules,
				})
			}
		}
	}

	// Phase 1: measure each mix's ungoverned peak dynamic power (zero idle
	// model), then anchor the idle model and P0 to it. The probe uses a
	// throwaway cap — an ungoverned fleet only meters.
	type baseline struct {
		model power.Model
		p0    float64
	}
	bases, err := par.MapErr(len(mixes), func(i int) (baseline, error) {
		probe := power.Budget{Cap: 1, Window: ConsolidationWindow}
		res, err := runConsolidationFleet(ws, mixes[i], rounds, probe, true, nil, nil, nil)
		if err != nil {
			return baseline{}, fmt.Errorf("exp: %s baseline: %w", mixes[i].label, err)
		}
		dyn := res.Power.MaxWindowPower
		m := power.Model{
			IdlePEPower:   consolidationIdlePEFrac * dyn / ConsolidationPEs,
			IdleLinkPower: consolidationIdleLinkFrac * dyn / (ConsolidationPEs * (ConsolidationPEs - 1)),
		}
		return baseline{model: m, p0: dyn + m.Idle(ConsolidationPEs, ConsolidationPEs*(ConsolidationPEs-1))}, nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Phase 2: the sweep proper — every mix × cap fraction, both arms.
	type cellIdx struct {
		mix  int
		frac float64
	}
	var idx []cellIdx
	for mi := range mixes {
		for _, frac := range fracs {
			idx = append(idx, cellIdx{mix: mi, frac: frac})
		}
	}
	cells, err := par.MapErr(len(idx), func(i int) (ConsolidationCell, error) {
		m, b := mixes[idx[i].mix], bases[idx[i].mix]
		key := consolidationCellKey(m.label, idx[i].frac, override != nil)
		budget := power.Budget{Cap: idx[i].frac * b.p0, Window: ConsolidationWindow, Model: b.model}
		if override != nil {
			budget = *override
			if budget.Window == 0 {
				budget.Window = ConsolidationWindow
			}
			if budget.Model == (power.Model{}) {
				budget.Model = b.model
			}
		}
		frac := idx[i].frac
		if override != nil {
			frac = budget.Cap / b.p0
		}
		cell := ConsolidationCell{
			Mix:      m.label,
			Tenants:  len(m.tenants),
			CapFrac:  frac,
			Cap:      budget.Cap,
			Baseline: b.p0,
		}
		var fleetRec telemetry.Recorder
		var tenantRec func(name string) telemetry.Recorder
		var cellReg *telemetry.Registry
		var cellSeries *series.Store
		if tel != nil {
			h := tel.Health[key]
			fleetRec = telemetry.MultiRecorder{tel.Recorders[key], h}
			tenantRec = func(name string) telemetry.Recorder {
				return telemetry.MultiRecorder{tel.Recorders[key+"/"+name], h}
			}
			cellReg = tel.Metrics
			if cellSeries = tel.Series[key]; cellSeries != nil {
				// The governed arm publishes into the cell's mirror registry
				// (which forwards to the shared one) so its store samples
				// only this cell's fleet.
				cellReg = cellSeries.Registry()
			}
		}
		gov, err := runConsolidationFleet(ws, m, rounds, budget, false, fleetRec, tenantRec, cellReg, cellSeries)
		if err != nil {
			return cell, fmt.Errorf("exp: %s governed cap %.2f: %w", m.label, budget.Cap, err)
		}
		var ungovReg *telemetry.Registry
		if tel != nil {
			ungovReg = tel.Metrics
		}
		ungov, err := runConsolidationFleet(ws, m, rounds, budget, true, nil, nil, ungovReg)
		if err != nil {
			return cell, fmt.Errorf("exp: %s ungoverned cap %.2f: %w", m.label, budget.Cap, err)
		}
		cell.Governed = consolidationArm(gov)
		cell.Ungoverned = consolidationArm(ungov)
		return cell, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return &ConsolidationResult{Rounds: rounds, PEs: ConsolidationPEs, Cells: cells}, tel, nil
}

// runConsolidationFleet builds and runs one fleet arm for a mix. tenantRec,
// when non-nil, yields each tenant's own event recorder (tenant streams must
// stay separate; they replay the same round numbering). An optional series
// store (at most one) attaches round-boundary sampling to the fleet; pass
// reg = st.Registry() alongside so the sampled rings see the fleet's writes.
func runConsolidationFleet(ws []campaignWorkload, m consolidationMix, rounds int,
	budget power.Budget, ungoverned bool, fleetRec telemetry.Recorder,
	tenantRec func(name string) telemetry.Recorder, reg *telemetry.Registry,
	st ...*series.Store) (*core.FleetResult, error) {
	var fleetSeries *series.Store
	if len(st) > 0 {
		fleetSeries = st[0]
	}
	tenants := make([]core.Tenant, len(m.tenants))
	vectors := make([][][]int, len(m.tenants))
	for i, wi := range m.tenants {
		w := ws[wi]
		var rec telemetry.Recorder
		if tenantRec != nil {
			rec = tenantRec(w.name)
		}
		tenants[i] = core.Tenant{
			Name:        w.name,
			Criticality: len(m.tenants) - i,
			G:           w.g,
			P:           w.p,
			Opts:        core.Options{GuardBand: ConsolidationGuard, Recorder: rec, Metrics: reg},
		}
		vec := w.vec
		if rounds < len(vec) {
			vec = vec[:rounds]
		}
		vectors[i] = vec
	}
	f, err := core.NewFleet(tenants, core.FleetOptions{
		Budget:         &budget,
		Ungoverned:     ungoverned,
		DeadlineFactor: DeadlineFactor,
		Recorder:       fleetRec,
		Metrics:        reg,
		Series:         fleetSeries,
	})
	if err != nil {
		return nil, err
	}
	return f.Run(vectors)
}

// consolidationArm condenses a fleet result into the campaign's aggregate.
// The most-critical tenant is the one with the highest Criticality.
func consolidationArm(r *core.FleetResult) ConsolidationArm {
	a := ConsolidationArm{
		MaxWindowPower: r.Power.MaxWindowPower,
		WindowsOverCap: r.Power.WindowsOverCap,
		PrimedLevel:    r.Power.PrimedLevel,
		MaxLevel:       r.Power.MaxLevel,
		FinalLevel:     r.Power.FinalLevel,
		Revocations:    r.Power.Revocations,
		Sheds:          r.Power.Sheds,
	}
	hi := 0
	for i, t := range r.Tenants {
		if t.Criticality > r.Tenants[hi].Criticality {
			hi = i
		}
		a.Misses += t.Stats.Misses
		a.Instances += t.Stats.Instances
		a.ShedRounds += t.ShedRounds
		a.Energy += t.Stats.TotalEnergy
	}
	a.HiMisses = r.Tenants[hi].Stats.Misses
	a.HiInstances = r.Tenants[hi].Stats.Instances
	return a
}

// NewConsolidationBenchFleet builds the benchmark fleet: the two-tenant
// mpeg>cruise mix on the shared fabric, with a cap at 85% of the mix's
// measured ungoverned peak — tight enough that the governed arm's ladder
// engages. It returns the fleet and the per-tenant round vectors
// (vectors[tenant][round]); the root-package benchmarks step through them
// cyclically.
func NewConsolidationBenchFleet(ungoverned bool) (*core.Fleet, [][][]int, error) {
	ws, err := consolidationWorkloads()
	if err != nil {
		return nil, nil, err
	}
	m := consolidationMixes()[0] // mpeg>cruise
	probe := power.Budget{Cap: 1, Window: ConsolidationWindow}
	res, err := runConsolidationFleet(ws, m, 64, probe, true, nil, nil, nil)
	if err != nil {
		return nil, nil, err
	}
	dyn := res.Power.MaxWindowPower
	model := power.Model{
		IdlePEPower:   consolidationIdlePEFrac * dyn / ConsolidationPEs,
		IdleLinkPower: consolidationIdleLinkFrac * dyn / (ConsolidationPEs * (ConsolidationPEs - 1)),
	}
	p0 := dyn + model.Idle(ConsolidationPEs, ConsolidationPEs*(ConsolidationPEs-1))
	budget := power.Budget{Cap: 0.85 * p0, Window: ConsolidationWindow, Model: model}

	tenants := make([]core.Tenant, len(m.tenants))
	vectors := make([][][]int, len(m.tenants))
	for i, wi := range m.tenants {
		w := ws[wi]
		tenants[i] = core.Tenant{
			Name:        w.name,
			Criticality: len(m.tenants) - i,
			G:           w.g,
			P:           w.p,
			Opts:        core.Options{GuardBand: ConsolidationGuard},
		}
		vectors[i] = w.vec
	}
	f, err := core.NewFleet(tenants, core.FleetOptions{
		Budget:         &budget,
		Ungoverned:     ungoverned,
		DeadlineFactor: DeadlineFactor,
	})
	if err != nil {
		return nil, nil, err
	}
	return f, vectors, nil
}

// Render formats the campaign as the experiments CLI prints it.
func (r *ConsolidationResult) Render() string {
	rows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		g, u := c.Governed, c.Ungoverned
		rows = append(rows, []string{
			c.Mix,
			fmt.Sprintf("%.2f×P0=%.1f", c.CapFrac, c.Cap),
			fmt.Sprintf("%.1f%%", 100*g.HiMissRate()),
			fmt.Sprintf("%.1f%%", 100*g.MissRate()),
			f1(g.MaxWindowPower),
			fmt.Sprintf("%d", g.WindowsOverCap),
			fmt.Sprintf("%d/%d/%d", g.PrimedLevel, g.MaxLevel, g.FinalLevel),
			fmt.Sprintf("%d", g.Revocations),
			fmt.Sprintf("%d", g.ShedRounds),
			fmt.Sprintf("%.1f%%", 100*u.HiMissRate()),
			fmt.Sprintf("%.1f%%", 100*u.MissRate()),
			f1(u.MaxWindowPower),
			fmt.Sprintf("%d", u.WindowsOverCap),
		})
	}
	s := fmt.Sprintf("Consolidation campaign: %d tenant mixes on a shared %d-PE fabric, %d rounds, window %d\n",
		len(consolidationMixes()), r.PEs, r.Rounds, ConsolidationWindow)
	s += "(mix lists tenants most-critical first; cap swept as a fraction of the mix's ungoverned peak P0;\n" +
		" lvl: primed/max/final degradation-ladder level; shed: tenant-rounds skipped while shed)\n"
	s += table(
		[]string{"mix", "cap", "gov hi-miss", "gov miss", "gov peakW", "gov over", "lvl", "revoked", "shed",
			"ungov hi-miss", "ungov miss", "ungov peakW", "ungov over"},
		rows)
	return s
}
