package exp

import (
	"strings"
	"testing"
)

func TestAblationRatioShape(t *testing.T) {
	r, err := AblationRatio()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(r.Rows))
	}
	// The released-denominator reading tracks the NLP optimum closely;
	// the literal reading strands a large share of the slack.
	if r.AvgReleased > 115 {
		t.Errorf("released variant avg %.1f, want close to NLP (≤ 115)", r.AvgReleased)
	}
	if r.AvgLiteral < r.AvgReleased+20 {
		t.Errorf("literal variant avg %.1f not clearly worse than released %.1f",
			r.AvgLiteral, r.AvgReleased)
	}
	for _, row := range r.Rows {
		if row.NLP <= 0 {
			t.Errorf("CTG %d: non-positive NLP energy", row.CTG)
		}
		if row.Literal < row.Released-1 {
			t.Errorf("CTG %d: literal %.1f beats released %.1f", row.CTG, row.Literal, row.Released)
		}
	}
	if !strings.Contains(r.Render(), "ablation") {
		t.Error("render missing title")
	}
}

func TestOverheadShape(t *testing.T) {
	r, err := Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 4 {
		t.Fatalf("got %d points", len(r.Points))
	}
	if r.Points[0].SwitchTime != 0 {
		t.Fatal("first point must be the zero-overhead baseline")
	}
	if r.Points[0].Misses != 0 {
		t.Fatal("zero overhead must meet all deadlines")
	}
	// Energy grows monotonically with the overhead, and the stretched
	// schedule stays below the full-speed reference until the overhead is
	// extreme.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Energy < r.Points[i-1].Energy-1e-9 {
			t.Errorf("energy not monotone at point %d", i)
		}
		if r.Points[i].Misses < r.Points[i-1].Misses {
			t.Errorf("misses not monotone at point %d", i)
		}
	}
	last := r.Points[len(r.Points)-1]
	if last.Misses == 0 {
		t.Error("extreme unbudgeted switch time should break some deadlines")
	}
	if r.Points[0].Energy >= r.Points[0].FullSpeedEnergy {
		t.Error("DVFS must beat full speed at zero overhead")
	}
	if !strings.Contains(r.Render(), "overhead") {
		t.Error("render missing title")
	}
}

func TestSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs adaptive managers")
	}
	// A trimmed grid keeps the test fast while still checking the two
	// monotonicities that matter.
	r, err := Sweep([]int{10, 20}, []float64{0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 4 {
		t.Fatalf("got %d cells", len(r.Cells))
	}
	get := func(w int, th float64) SweepCell {
		for _, c := range r.Cells {
			if c.Window == w && c.Threshold == th {
				return c
			}
		}
		t.Fatalf("missing cell %d/%v", w, th)
		return SweepCell{}
	}
	// Lower thresholds re-schedule more, at every window size.
	for _, w := range []int{10, 20} {
		if get(w, 0.1).Calls <= get(w, 0.5).Calls {
			t.Errorf("window %d: calls not decreasing in threshold", w)
		}
	}
	// Larger windows re-schedule less at the same threshold (noise is
	// averaged away).
	if get(20, 0.1).Calls >= get(10, 0.1).Calls {
		t.Error("window 20 should trigger fewer calls than window 10")
	}
	if !strings.Contains(r.Render(), "sweep") {
		t.Error("render missing title")
	}
}

func TestPerScenarioDVFSShape(t *testing.T) {
	r, err := PerScenarioDVFS()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("got %d rows, want 7 (5 random + MPEG + WLAN)", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Conditioning on more information can never hurt.
		if row.PerScenario > row.SingleSpeed*1.001 {
			t.Errorf("%s: per-scenario %v worse than single-speed %v",
				row.Name, row.PerScenario, row.SingleSpeed)
		}
		if row.Scenarios < 2 {
			t.Errorf("%s: degenerate scenario count %d", row.Name, row.Scenarios)
		}
	}
	if r.AvgSaving <= 0.05 {
		t.Errorf("avg saving %.3f, want a clear advantage", r.AvgSaving)
	}
	if !strings.Contains(r.Render(), "single speed") {
		t.Error("render missing title")
	}
}
