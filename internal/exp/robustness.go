package exp

import (
	"fmt"

	"ctgdvfs/internal/core"
	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/stats"
	"ctgdvfs/internal/tgff"
	"ctgdvfs/internal/trace"
)

// RobustnessResult re-runs the Table 4 experiment (lowest-energy-minterm
// bias, the setting with the largest adaptive gains) across several
// independent workload seeds and summarizes the savings distribution — the
// paper reports single runs, so this extension checks that its headline
// contrast is not a seed artifact.
type RobustnessResult struct {
	Trials int
	// SavingT05/SavingT01 summarize the per-trial average savings of the
	// adaptive algorithm over the misprofiled online algorithm.
	SavingT05, SavingT01 stats.Summary
	// Gap summarizes (Table4 saving − Table5 saving) at T = 0.1 per
	// trial: the bias contrast itself.
	Gap stats.Summary
}

// Robustness runs `trials` independent replications. Each trial regenerates
// the ten random CTGs and their vectors with a shifted seed.
func Robustness(trials int) (*RobustnessResult, error) {
	if trials <= 0 {
		trials = 5
	}
	res := &RobustnessResult{Trials: trials}
	var s05, s01, gaps []float64
	for trial := 0; trial < trials; trial++ {
		low, err := runRandomTrial(BiasLowest, int64(trial)*97)
		if err != nil {
			return nil, err
		}
		high, err := runRandomTrial(BiasHighest, int64(trial)*97)
		if err != nil {
			return nil, err
		}
		s05 = append(s05, low.t05)
		s01 = append(s01, low.t01)
		gaps = append(gaps, low.t01-high.t01)
	}
	res.SavingT05 = stats.Summarize(s05)
	res.SavingT01 = stats.Summarize(s01)
	res.Gap = stats.Summarize(gaps)
	return res, nil
}

type trialOutcome struct {
	t05, t01 float64 // average relative savings
}

// runRandomTrial is a seed-shifted replication of one bias variant of the
// Tables 4/5 experiment, averaged over its ten CTGs.
func runRandomTrial(bias Bias, seedShift int64) (trialOutcome, error) {
	var out trialOutcome
	cases := tgff.Table4Cases()
	for i, c := range cases {
		cfg := c.Config
		cfg.Seed += seedShift
		g0, p, err := tgff.Generate(cfg)
		if err != nil {
			return out, err
		}
		g, err := core.TightenDeadline(g0, p, DeadlineFactor)
		if err != nil {
			return out, err
		}
		vec := trace.Fluctuating(g, int64(5000+i)+seedShift, 1000, 0.45)

		a, err := ctg.Analyze(g)
		if err != nil {
			return out, err
		}
		avgEnergy := func(t ctg.TaskID) float64 {
			sum := 0.0
			for pe := 0; pe < p.NumPEs(); pe++ {
				sum += p.Energy(int(t), pe)
			}
			return sum / float64(p.NumPEs())
		}
		minIdx, maxIdx := a.MinMaxWeightScenarios(avgEnergy)
		idx := minIdx
		if bias == BiasHighest {
			idx = maxIdx
		}
		gProf := g.Clone()
		if err := trace.ApplyProfile(gProf, trace.BiasedProfile(a, idx, 0.9)); err != nil {
			return out, err
		}
		static, err := buildOnline(gProf, p)
		if err != nil {
			return out, err
		}
		stOnline, err := core.RunStatic(static, vec)
		if err != nil {
			return out, err
		}
		for _, th := range []float64{0.5, 0.1} {
			m, err := core.New(gProf, p, core.Options{Window: 20, Threshold: th})
			if err != nil {
				return out, err
			}
			st, err := m.Run(vec)
			if err != nil {
				return out, err
			}
			saving := (stOnline.AvgEnergy - st.AvgEnergy) / stOnline.AvgEnergy
			if th == 0.5 {
				out.t05 += saving
			} else {
				out.t01 += saving
			}
		}
	}
	out.t05 /= float64(len(cases))
	out.t01 /= float64(len(cases))
	return out, nil
}

// Render formats the robustness summary.
func (r *RobustnessResult) Render() string {
	s := fmt.Sprintf("Extension: robustness of the Table 4/5 contrast over %d seed replications\n\n", r.Trials)
	s += fmt.Sprintf("adaptive saving vs misprofiled online, T=0.5: %s\n", r.SavingT05)
	s += fmt.Sprintf("adaptive saving vs misprofiled online, T=0.1: %s\n", r.SavingT01)
	s += fmt.Sprintf("Table4−Table5 saving gap at T=0.1:            %s\n", r.Gap)
	return s
}
