package exp

import (
	"fmt"

	"ctgdvfs/internal/apps/mpeg"
	"ctgdvfs/internal/core"
	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/sim"
	"ctgdvfs/internal/stretch"
	"ctgdvfs/internal/tgff"
	"ctgdvfs/internal/trace"
)

// The experiments in this file go beyond the paper's evaluation: the paper
// itself remarks that "the window size and the threshold determine how
// frequently the online scheduling and DVFS is called and they also impact
// how well the algorithm adapts", but only samples T ∈ {0.1, 0.5} and
// L ∈ {20, 50}; it also explicitly ignores DVFS switching overhead. These
// runners fill those gaps and ablate the Figure-2 ratio interpretation that
// DESIGN.md documents.

// SweepCell is one (window, threshold) point of the adaptation-parameter
// sweep.
type SweepCell struct {
	Window    int
	Threshold float64
	// Saving is the relative energy saving of the adaptive algorithm
	// over the non-adaptive online algorithm on the same testing
	// vectors.
	Saving float64
	// Calls is the re-scheduling invocation count per 1000 instances.
	Calls int
}

// SweepResult is the full window × threshold grid on the MPEG workload.
type SweepResult struct {
	Clip       string
	Windows    []int
	Thresholds []float64
	Cells      []SweepCell
}

// Sweep maps the adaptation design space: sliding-window length L versus
// drift threshold T on the MPEG decoder with one movie clip. Nil parameter
// slices take the default grid (L ∈ {5,10,20,50}, T ∈ {0.05..0.5}).
func Sweep(windows []int, thresholds []float64) (*SweepResult, error) {
	if windows == nil {
		windows = []int{5, 10, 20, 50}
	}
	if thresholds == nil {
		thresholds = []float64{0.05, 0.1, 0.2, 0.3, 0.5}
	}
	g0, p, err := mpeg.Build()
	if err != nil {
		return nil, err
	}
	g, err := core.TightenDeadline(g0, p, DeadlineFactor)
	if err != nil {
		return nil, err
	}
	clip := trace.MovieClips()[0]
	vec := clip.Generate(g, 2000)
	train, test := vec[:1000], vec[1000:]
	profile := trace.AverageProbs(g, train)
	gProf := g.Clone()
	if err := trace.ApplyProfile(gProf, profile); err != nil {
		return nil, err
	}
	static, err := buildOnline(gProf, p)
	if err != nil {
		return nil, err
	}
	stStatic, err := core.RunStatic(static, test)
	if err != nil {
		return nil, err
	}

	res := &SweepResult{Clip: clip.Name, Windows: windows, Thresholds: thresholds}
	for _, window := range windows {
		for _, threshold := range thresholds {
			m, err := core.New(gProf, p, core.Options{Window: window, Threshold: threshold})
			if err != nil {
				return nil, err
			}
			st, err := m.Run(test)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, SweepCell{
				Window:    window,
				Threshold: threshold,
				Saving:    (stStatic.AvgEnergy - st.AvgEnergy) / stStatic.AvgEnergy,
				Calls:     st.Calls,
			})
		}
	}
	return res, nil
}

// Render formats the sweep as two grids (savings and call counts).
func (r *SweepResult) Render() string {
	windows := r.Windows
	thresholds := r.Thresholds
	cell := map[[2]int]SweepCell{}
	for _, c := range r.Cells {
		ti := -1
		for i, t := range thresholds {
			if t == c.Threshold {
				ti = i
			}
		}
		cell[[2]int{c.Window, ti}] = c
	}
	header := []string{"window \\ T"}
	for _, t := range thresholds {
		header = append(header, fmt.Sprintf("%.2f", t))
	}
	var savRows, callRows [][]string
	for _, w := range windows {
		sr := []string{fmt.Sprintf("%d", w)}
		cr := []string{fmt.Sprintf("%d", w)}
		for ti := range thresholds {
			c := cell[[2]int{w, ti}]
			sr = append(sr, fmt.Sprintf("%+.1f%%", 100*c.Saving))
			cr = append(cr, fmt.Sprintf("%d", c.Calls))
		}
		savRows = append(savRows, sr)
		callRows = append(callRows, cr)
	}
	s := fmt.Sprintf("Extension: window × threshold sweep (MPEG, clip %s)\n\n", r.Clip)
	s += "Energy saving over non-adaptive online:\n"
	s += table(header, savRows)
	s += "\nRe-scheduling calls per 1000 instances:\n"
	s += table(header, callRows)
	return s
}

// OverheadPoint is one DVFS-switching-overhead setting.
type OverheadPoint struct {
	SwitchTime   float64
	SwitchEnergy float64
	// Energy and Misses are the exhaustive-replay expected energy and
	// scenario deadline misses of the stretched MPEG schedule.
	Energy float64
	Misses int
	// FullSpeedEnergy is the same schedule forced to full speed (no DVFS,
	// hence no transitions) — the break-even reference.
	FullSpeedEnergy float64
}

// OverheadResult sweeps the DVFS transition cost the paper ignores.
type OverheadResult struct {
	Points []OverheadPoint
}

// Overhead quantifies how real DVFS switching costs erode the stretched
// schedule's savings and — because the stretching heuristic budgets no time
// for transitions — eventually break deadlines.
func Overhead() (*OverheadResult, error) {
	g0, p, err := mpeg.Build()
	if err != nil {
		return nil, err
	}
	g, err := core.TightenDeadline(g0, p, DeadlineFactor)
	if err != nil {
		return nil, err
	}
	s, err := buildOnline(g, p)
	if err != nil {
		return nil, err
	}
	full := s.Clone()
	for t := range full.Speed {
		full.Speed[t] = 1
	}
	res := &OverheadResult{}
	for _, ov := range []float64{0, 0.5, 1, 2, 4, 8} {
		cfg := sim.Config{SwitchTime: ov, SwitchEnergy: ov * 0.2}
		sum, err := sim.ExhaustiveCfg(s, cfg)
		if err != nil {
			return nil, err
		}
		fsum, err := sim.ExhaustiveCfg(full, cfg)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, OverheadPoint{
			SwitchTime:      ov,
			SwitchEnergy:    ov * 0.2,
			Energy:          sum.ExpectedEnergy,
			Misses:          sum.Misses,
			FullSpeedEnergy: fsum.ExpectedEnergy,
		})
	}
	return res, nil
}

// Render formats the overhead sweep.
func (r *OverheadResult) Render() string {
	rows := make([][]string, 0, len(r.Points))
	for _, pt := range r.Points {
		rows = append(rows, []string{
			f1(pt.SwitchTime), f2(pt.SwitchEnergy),
			f1(pt.Energy), fmt.Sprintf("%d", pt.Misses), f1(pt.FullSpeedEnergy),
		})
	}
	s := "Extension: DVFS switching overhead sweep (MPEG, stretched schedule)\n"
	s += table([]string{"switch time", "switch energy", "DVFS energy", "misses", "full-speed energy"}, rows)
	s += "\nThe paper assumes zero-overhead transitions; non-zero switch time is\nunbudgeted by the stretcher, so misses appear once transitions eat the slack.\n"
	return s
}

// AblationRow compares the two readings of Figure 2's ratio denominator on
// one Table-1 CTG (see DESIGN.md).
type AblationRow struct {
	CTG      int
	Triplet  string
	NLP      float64 // expected energy of the NLP reference (baseline)
	Released float64 // heuristic with locked tasks released (this repo's default), normalized to NLP = 100
	Literal  float64 // heuristic with the literal slk/delay ratio, normalized to NLP = 100
}

// AblationResult is the ratio-interpretation ablation over the Table 1
// graphs.
type AblationResult struct {
	Rows                    []AblationRow
	AvgReleased, AvgLiteral float64
}

// AblationRatio quantifies the DESIGN.md decision to read Figure 2's
// "slk(p)/delay(p)" with locked tasks released from the denominator: the
// released variant tracks the NLP optimum closely (the paper's ~8% gap);
// the literal variant leaves a large share of the slack undistributed.
func AblationRatio() (*AblationResult, error) {
	res := &AblationResult{}
	for i, c := range tgff.Table1Cases() {
		g0, p, err := tgff.Generate(c.Config)
		if err != nil {
			return nil, err
		}
		g, err := core.TightenDeadline(g0, p, DeadlineFactor)
		if err != nil {
			return nil, err
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			return nil, err
		}
		run := func(literal bool) (float64, error) {
			s, err := sched.DLS(a, p, sched.Modified())
			if err != nil {
				return 0, err
			}
			r, err := stretch.HeuristicVariant(s, platform.Continuous(), 0, literal)
			if err != nil {
				return 0, err
			}
			return r.ExpectedEnergy, nil
		}
		released, err := run(false)
		if err != nil {
			return nil, err
		}
		literal, err := run(true)
		if err != nil {
			return nil, err
		}
		sNLP, err := sched.DLS(a, p, sched.Modified())
		if err != nil {
			return nil, err
		}
		rNLP, err := stretch.NLP(sNLP, platform.Continuous(), stretch.NLPOptions{})
		if err != nil {
			return nil, err
		}
		row := AblationRow{
			CTG:      i + 1,
			Triplet:  fmt.Sprintf("%d/%d/%d", c.Config.Nodes, c.Config.PEs, c.Config.Branches),
			NLP:      rNLP.ExpectedEnergy,
			Released: 100 * released / rNLP.ExpectedEnergy,
			Literal:  100 * literal / rNLP.ExpectedEnergy,
		}
		res.Rows = append(res.Rows, row)
		res.AvgReleased += row.Released
		res.AvgLiteral += row.Literal
	}
	res.AvgReleased /= float64(len(res.Rows))
	res.AvgLiteral /= float64(len(res.Rows))
	return res, nil
}

// Render formats the ablation table.
func (r *AblationResult) Render() string {
	rows := make([][]string, 0, len(r.Rows)+1)
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.CTG), row.Triplet,
			"100", f1(row.Released), f1(row.Literal),
		})
	}
	rows = append(rows, []string{"avg", "", "100", f1(r.AvgReleased), f1(r.AvgLiteral)})
	s := "Extension: Figure-2 ratio-denominator ablation (normalized, NLP = 100)\n"
	s += table([]string{"CTG", "a/b/c", "NLP", "released (default)", "literal slk/delay"}, rows)
	return s
}
