package exp

import (
	"strings"
	"testing"

	"ctgdvfs/internal/faults"
)

// TestFailoverCampaignAcceptance pins the PR's headline claim: under a
// seeded transient-outage timeline, the adaptive re-mapping runtime misses
// strictly fewer deadlines than the static schedule on every workload, the
// static arm's deadlocks are all topology-attributable, and the adaptive arm
// actually re-mapped during the degraded windows.
func TestFailoverCampaignAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("failover campaign replays hundreds of degraded instances per runtime")
	}
	spec := faults.FailureSpec{Seed: 42, PEFailProb: 0.05, PERepair: 10}
	r, err := failoverCampaignN([]faults.FailureSpec{spec}, 150, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 3 {
		t.Fatalf("cells = %d, want 3 (mpeg, cruise, wlan)", len(r.Cells))
	}
	seen := map[string]bool{}
	for _, c := range r.Cells {
		seen[c.Workload] = true
		if c.DegradedInstances == 0 {
			t.Fatalf("%s: timeline produced no degraded instances", c.Workload)
		}
		if c.Remaps < 2 {
			t.Fatalf("%s: remaps = %d, want ≥ 2 (degrade + restore)", c.Workload, c.Remaps)
		}
		if c.AdaptiveMisses >= c.StaticMisses {
			t.Fatalf("%s: adaptive misses %d not below static %d",
				c.Workload, c.AdaptiveMisses, c.StaticMisses)
		}
		if c.StaticTopoMiss == 0 {
			t.Fatalf("%s: static baseline never deadlocked despite outages", c.Workload)
		}
		if c.StaticTopoMiss > c.StaticMisses {
			t.Fatalf("%s: topo misses %d exceed total misses %d",
				c.Workload, c.StaticTopoMiss, c.StaticMisses)
		}
	}
	for _, w := range []string{"mpeg", "cruise", "wlan"} {
		if !seen[w] {
			t.Fatalf("workload %s missing from campaign", w)
		}
	}
}

// TestFailoverCampaignSpecScripted replays a scripted permanent death from a
// spec-file-style FailureSpec: one cell per workload, rendered as such.
func TestFailoverCampaignSpecScripted(t *testing.T) {
	if testing.Short() {
		t.Skip("failover campaign replays hundreds of degraded instances per runtime")
	}
	spec := faults.FailureSpec{
		Events: []faults.FailureEvent{{Kind: faults.EventPE, PE: 0, Instance: 30}},
	}
	r, err := failoverCampaignN([]faults.FailureSpec{spec}, 80, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Cells {
		if want := c.Vectors - 30; c.DegradedInstances != want {
			t.Fatalf("%s: degraded = %d, want %d (permanent death at 30)",
				c.Workload, c.DegradedInstances, want)
		}
		if c.Remaps != 1 {
			t.Fatalf("%s: remaps = %d, want exactly 1 for a permanent death", c.Workload, c.Remaps)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "scripted") {
		t.Fatalf("scripted campaign not labeled as such:\n%s", out)
	}
	// The invalid spec is rejected before any workload is built.
	if _, err := FailoverCampaignSpec(faults.FailureSpec{PEFailProb: 2}); err == nil {
		t.Fatal("FailoverCampaignSpec accepted an out-of-range probability")
	}
}
