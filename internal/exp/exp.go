// Package exp reproduces every table and figure of the paper's evaluation
// (§IV): one runner per experiment, each returning a structured result with
// a text rendering that mirrors the paper's presentation. Absolute numbers
// differ (the substrate is this repository's simulator, not the authors'
// testbed); the experiments preserve the paper's qualitative shape — who
// wins, by roughly what factor, and where the trends cross.
//
// Experiment index (see DESIGN.md §3 for the full mapping):
//
//	Table1   — online heuristic vs reference algorithms [10] and [17]
//	Figure4  — branch selection, windowed and filtered probability (MPEG)
//	Figure5  — MPEG energy, adaptive (T=0.5, T=0.1) vs non-adaptive
//	Table2   — MPEG re-scheduling call counts per movie
//	Table3   — cruise controller, adaptive vs non-adaptive
//	Table4   — random CTGs, profile biased to the lowest-energy minterm
//	Table5   — random CTGs, profile biased to the highest-energy minterm
//	Figure6  — random CTGs, ideal profiling vs adaptive
package exp

import (
	"fmt"
	"strings"
	"time"

	"ctgdvfs/internal/core"
	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/stretch"
)

// DeadlineFactor is the default ratio of deadline to nominal makespan used
// by experiments that the paper does not pin down (the cruise controller is
// explicitly 2×).
const DeadlineFactor = 1.6

// buildRef1 runs reference algorithm 1 (Shin & Kim style): plain list
// scheduling (worst-case levels, no ME overlap, contention-blind
// communication) followed by probability-blind critical-path stretching.
func buildRef1(g *ctg.Graph, p *platform.Platform) (*sched.Schedule, error) {
	a, err := ctg.Analyze(g)
	if err != nil {
		return nil, err
	}
	s, err := sched.DLS(a, p, sched.Plain())
	if err != nil {
		return nil, err
	}
	if _, err := stretch.WorstCase(s, platform.Continuous(), 0); err != nil {
		return nil, err
	}
	return s, nil
}

// buildRef2 runs reference algorithm 2 (the authors' ISCAS'07 approach):
// the same modified DLS ordering as the online algorithm, followed by
// NLP-based stretching.
func buildRef2(g *ctg.Graph, p *platform.Platform, opts stretch.NLPOptions) (*sched.Schedule, error) {
	a, err := ctg.Analyze(g)
	if err != nil {
		return nil, err
	}
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		return nil, err
	}
	if _, err := stretch.NLP(s, platform.Continuous(), opts); err != nil {
		return nil, err
	}
	return s, nil
}

// buildOnline runs the paper's online algorithm: modified DLS + the
// stretching heuristic.
func buildOnline(g *ctg.Graph, p *platform.Platform) (*sched.Schedule, error) {
	return core.BuildOnline(g, p, core.Options{})
}

// timeIt measures the wall-clock time of fn, repeated reps times, returning
// the mean duration.
func timeIt(reps int, fn func() error) (time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(reps), nil
}

// table renders rows of cells as a fixed-width text table.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for c, h := range header {
		width[c] = len(h)
	}
	for _, r := range rows {
		for c, cell := range r {
			if c < len(width) && len(cell) > width[c] {
				width[c] = len(cell)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for c, cell := range cells {
			if c > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[c], cell)
		}
		sb.WriteByte('\n')
	}
	line(header)
	for c, w := range width {
		if c > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
