// Package mpeg models the software MPEG decoder of the paper's §III.B/IV as
// a conditional task graph: the macroblock decoding loop of the Berkeley
// MPEG player, reconstructed from the paper's Figure 3 description — 40
// tasks including 9 branch fork nodes, mapped onto a 3-PE MPSoC.
//
// The branch structure follows the text exactly:
//
//   - branch a ("Skipped"): a skipped macroblock bypasses decoding entirely;
//   - branch b (macroblock type): an Intra macroblock takes the monolithic
//     dequantize+IDCT path; otherwise motion vectors are decoded and the six
//     blocks of the macroblock are processed individually;
//   - branch i (motion mode): full-pel vs half-pel motion compensation (the
//     ninth fork the paper counts but does not letter);
//   - branches c–h: each of the six blocks independently needs or skips its
//     IDCT, depending on the coded block pattern.
//
// To decode an I-frame macroblock, a1 and b1 are certain; in B/P frames
// every branch can fire — matching the paper's observation that the workload
// (hence the branch distribution) drifts with the visual content.
package mpeg

import (
	"fmt"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
)

// NumPEs is the multiprocessor size the paper uses for the MPEG experiment.
const NumPEs = 3

// Task indices of the named landmarks (exported for tests and examples).
const (
	TaskParseHeader = 0
	TaskVLD         = 1
	TaskSkipCheck   = 2 // fork a
	TaskSkipCopy    = 3
	TaskTypeCheck   = 4 // fork b
	TaskDequantI    = 5
	TaskIDCTIntra   = 6
	TaskDecodeMV    = 7
	TaskMVMode      = 8 // fork i
	TaskMCFull      = 9
	TaskMCHalf      = 10
	TaskMCJoin      = 11
	TaskCBPDecode   = 12
	// Tasks 13..36: six blocks × (BlockVLC fork, IDCT, SkipIDCT, join).
	TaskAssemble  = 37
	TaskColorConv = 38
	TaskStore     = 39
)

// NumBlocks is the number of 8×8 blocks per macroblock.
const NumBlocks = 6

// BlockTask returns the task index of the given per-block stage
// (0=BlockVLC/fork, 1=IDCT, 2=SkipIDCT, 3=join) for block j in [0,6).
func BlockTask(j, stage int) ctg.TaskID {
	return ctg.TaskID(13 + 4*j + stage)
}

// taskSpec carries the platform cost model of one task: base WCET and the
// per-PE multiplier profile. PE0 is a general-purpose RISC, PE1 a slower
// low-power core, PE2 a DSP-style core that accelerates the signal-heavy
// kernels (IDCT, motion compensation, color conversion).
type taskSpec struct {
	name string
	kind ctg.Kind
	wcet float64
	dsp  bool // accelerated on PE2
}

// Build constructs the MPEG macroblock CTG and its 3-PE platform. The
// deadline is provisional (loose); callers typically tighten it with
// core.TightenDeadline. Branch probabilities are initialized to plausible
// B/P-frame statistics and are usually overwritten by profiling.
func Build() (*ctg.Graph, *platform.Platform, error) {
	specs := make([]taskSpec, 40)
	set := func(id int, name string, kind ctg.Kind, wcet float64, dsp bool) {
		specs[id] = taskSpec{name: name, kind: kind, wcet: wcet, dsp: dsp}
	}
	set(TaskParseHeader, "ParseHeader", ctg.AndNode, 3, false)
	set(TaskVLD, "VLD", ctg.AndNode, 7, false)
	set(TaskSkipCheck, "SkipCheck", ctg.AndNode, 2, false)
	set(TaskSkipCopy, "SkipCopy", ctg.AndNode, 5, true)
	set(TaskTypeCheck, "TypeCheck", ctg.AndNode, 2, false)
	set(TaskDequantI, "DequantIntra", ctg.AndNode, 14, true)
	set(TaskIDCTIntra, "IDCTIntra", ctg.AndNode, 28, true)
	set(TaskDecodeMV, "DecodeMV", ctg.AndNode, 6, false)
	set(TaskMVMode, "MVMode", ctg.AndNode, 2, false)
	set(TaskMCFull, "MCFullPel", ctg.AndNode, 14, true)
	set(TaskMCHalf, "MCHalfPel", ctg.AndNode, 21, true)
	set(TaskMCJoin, "MCJoin", ctg.OrNode, 1, false)
	set(TaskCBPDecode, "CBPDecode", ctg.AndNode, 3, false)
	for j := 0; j < NumBlocks; j++ {
		set(int(BlockTask(j, 0)), fmt.Sprintf("BlockVLC%d", j), ctg.AndNode, 4, false)
		set(int(BlockTask(j, 1)), fmt.Sprintf("BlockIDCT%d", j), ctg.AndNode, 18, true)
		set(int(BlockTask(j, 2)), fmt.Sprintf("BlockZero%d", j), ctg.AndNode, 1, false)
		set(int(BlockTask(j, 3)), fmt.Sprintf("BlockJoin%d", j), ctg.OrNode, 1, false)
	}
	set(TaskAssemble, "Assemble", ctg.OrNode, 3, false)
	set(TaskColorConv, "ColorConv", ctg.AndNode, 6, true)
	set(TaskStore, "Store", ctg.AndNode, 3, false)

	b := ctg.NewBuilder()
	for id, sp := range specs {
		if got := b.AddTask(sp.name, sp.kind); int(got) != id {
			return nil, nil, fmt.Errorf("mpeg: task %s got id %d, want %d", sp.name, got, id)
		}
	}

	// Front end.
	b.AddEdge(TaskParseHeader, TaskVLD, 2)
	b.AddEdge(TaskVLD, TaskSkipCheck, 1)
	// Branch a: outcome 0 = not skipped, outcome 1 = skipped.
	b.AddCondEdge(TaskSkipCheck, TaskTypeCheck, 1, 0)
	b.AddCondEdge(TaskSkipCheck, TaskSkipCopy, 1, 1)
	b.SetBranchProbs(TaskSkipCheck, []float64{0.85, 0.15})
	// Branch b: outcome 0 = Intra, outcome 1 = predicted (P/B).
	b.AddCondEdge(TaskTypeCheck, TaskDequantI, 6, 0)
	b.AddCondEdge(TaskTypeCheck, TaskDecodeMV, 1, 1)
	b.AddCondEdge(TaskTypeCheck, TaskCBPDecode, 2, 1)
	b.SetBranchProbs(TaskTypeCheck, []float64{0.2, 0.8})
	// Intra path.
	b.AddEdge(TaskDequantI, TaskIDCTIntra, 6)
	b.AddEdge(TaskIDCTIntra, TaskAssemble, 6)
	// Motion path. Branch i: full-pel vs half-pel interpolation.
	b.AddEdge(TaskDecodeMV, TaskMVMode, 1)
	b.AddCondEdge(TaskMVMode, TaskMCFull, 4, 0)
	b.AddCondEdge(TaskMVMode, TaskMCHalf, 4, 1)
	b.SetBranchProbs(TaskMVMode, []float64{0.5, 0.5})
	b.AddEdge(TaskMCFull, TaskMCJoin, 4)
	b.AddEdge(TaskMCHalf, TaskMCJoin, 4)
	b.AddEdge(TaskMCJoin, TaskAssemble, 4)
	// Per-block pipelines; branches c..h: IDCT needed vs block unchanged.
	for j := 0; j < NumBlocks; j++ {
		vlc, idct, zero, join := BlockTask(j, 0), BlockTask(j, 1), BlockTask(j, 2), BlockTask(j, 3)
		b.AddEdge(TaskCBPDecode, vlc, 1)
		b.AddCondEdge(vlc, idct, 2, 0)
		b.AddCondEdge(vlc, zero, 0.5, 1)
		b.SetBranchProbs(vlc, []float64{0.6, 0.4})
		b.AddEdge(idct, join, 2)
		b.AddEdge(zero, join, 0.5)
		b.AddEdge(join, TaskAssemble, 2)
	}
	// Back end.
	b.AddEdge(TaskSkipCopy, TaskAssemble, 6)
	b.AddEdge(TaskAssemble, TaskColorConv, 6)
	b.AddEdge(TaskColorConv, TaskStore, 6)

	// A very loose provisional deadline; experiments tighten it relative
	// to the nominal makespan.
	g, err := b.Build(10000)
	if err != nil {
		return nil, nil, fmt.Errorf("mpeg: %w", err)
	}

	pb := platform.NewBuilder(len(specs), NumPEs)
	for id, sp := range specs {
		// PE0 general core, PE1 low-power (slower), PE2 DSP.
		mul := [NumPEs]float64{1.0, 1.35, 1.15}
		if sp.dsp {
			mul[2] = 0.6
		}
		w := make([]float64, NumPEs)
		e := make([]float64, NumPEs)
		for pe := 0; pe < NumPEs; pe++ {
			w[pe] = sp.wcet * mul[pe]
			// The low-power core trades time for energy; the DSP is
			// efficient on its kernels.
			epu := [NumPEs]float64{1.0, 0.65, 0.9}[pe]
			e[pe] = sp.wcet * epu
		}
		pb.SetTask(id, w, e)
	}
	pb.SetAllLinks(8, 0.03)
	p, err := pb.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("mpeg: %w", err)
	}
	return g, p, nil
}
