package mpeg

import (
	"testing"

	"ctgdvfs/internal/core"
	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/sim"
	"ctgdvfs/internal/trace"
)

func TestBuildMatchesPaperCounts(t *testing.T) {
	g, p, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 40 {
		t.Fatalf("tasks = %d, want 40 (paper: 40 tasks)", g.NumTasks())
	}
	if g.NumForks() != 9 {
		t.Fatalf("forks = %d, want 9 (paper: 9 branching nodes)", g.NumForks())
	}
	if p.NumPEs() != 3 {
		t.Fatalf("PEs = %d, want 3", p.NumPEs())
	}
	if p.NumTasks() != 40 {
		t.Fatalf("platform tasks = %d", p.NumTasks())
	}
}

func TestScenarioStructure(t *testing.T) {
	g, _, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	// skipped (1) + intra (1) + predicted · (2 MC modes × 2^6 CBP) = 130.
	if a.NumScenarios() != 130 {
		t.Fatalf("scenarios = %d, want 130", a.NumScenarios())
	}
	// The assemble/color/store tail always runs.
	for _, task := range []ctg.TaskID{TaskParseHeader, TaskVLD, TaskSkipCheck, TaskAssemble, TaskColorConv, TaskStore} {
		if got := a.ActivationProb(task); got != 1 {
			t.Fatalf("task %d activation prob %v, want 1", task, got)
		}
	}
	// SkipCopy and TypeCheck are mutually exclusive (different arms of a).
	if !a.MutuallyExclusive(TaskSkipCopy, TaskTypeCheck) {
		t.Fatal("SkipCopy and TypeCheck must be mutually exclusive")
	}
	// Intra IDCT excludes motion compensation.
	if !a.MutuallyExclusive(TaskIDCTIntra, TaskMCHalf) {
		t.Fatal("IDCTIntra and MCHalf must be mutually exclusive")
	}
	// Per-block IDCTs are independent, not exclusive.
	if a.MutuallyExclusive(BlockTask(0, 1), BlockTask(1, 1)) {
		t.Fatal("block IDCTs of different blocks are not mutually exclusive")
	}
}

func TestIFrameCertainty(t *testing.T) {
	// For an I-frame macroblock, a1 and b1 are certain: with those probs
	// pinned, the intra path must be always-active.
	g, _, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetBranchProbs(TaskSkipCheck, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetBranchProbs(TaskTypeCheck, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.ActivationProb(TaskIDCTIntra); got != 1 {
		t.Fatalf("IDCTIntra activation prob %v under I-frame certainty", got)
	}
	if got := a.ActivationProb(TaskDecodeMV); got != 0 {
		t.Fatalf("DecodeMV activation prob %v under I-frame certainty", got)
	}
}

func TestEndToEndPipeline(t *testing.T) {
	g, p, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err = core.TightenDeadline(g, p, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.BuildOnline(g, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sim.Exhaustive(s)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Misses > 0 {
		t.Fatalf("%d scenario deadline misses, worst makespan %v vs deadline %v",
			sum.Misses, sum.WorstMakespan, g.Deadline())
	}
	if !(sum.ExpectedEnergy > 0) {
		t.Fatal("expected energy must be positive")
	}
	// Stretching must save energy relative to full speed.
	full := 0.0
	for task := 0; task < g.NumTasks(); task++ {
		full += s.A.ActivationProb(ctg.TaskID(task)) * s.NominalEnergy(ctg.TaskID(task))
	}
	if !(sum.ExpectedEnergy < full) {
		t.Fatalf("no energy saved: %v >= %v", sum.ExpectedEnergy, full)
	}
}

func TestAdaptiveRunOnMovieTrace(t *testing.T) {
	g, p, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err = core.TightenDeadline(g, p, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	m := trace.MovieClips()[0]
	vec := m.Generate(g, 300)
	mgr, err := core.New(g, p, core.Options{Window: 20, Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Run(vec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instances != 300 {
		t.Fatalf("instances = %d", st.Instances)
	}
	if st.Misses != 0 {
		t.Fatalf("%d deadline misses on movie trace", st.Misses)
	}
	if st.Calls == 0 {
		t.Fatal("adaptive manager never adapted on a drifting movie trace")
	}
}
