// Package wlan models an IEEE 802.11b physical-layer receive pipeline as a
// conditional task graph — the paper's own motivating example of task-level
// branching ("branches that select different modulation schemes for preamble
// and payload based on 802.11b physical layer standard", §I).
//
// Two branch fork nodes drive the workload:
//
//   - preamble mode (2 outcomes): a long preamble carries a 1 Mbps DBPSK
//     header; the short preamble's header is 2 Mbps DQPSK;
//   - payload rate (4 outcomes): 1, 2, 5.5 or 11 Mbps — DBPSK, DQPSK,
//     CCK-5.5 and CCK-11 demodulation chains of very different weight. The
//     four-way fork exercises the library's k-ary branch support, which the
//     paper's benchmarks (all binary) do not.
//
// Rate selection follows the channel: a station under a good SNR sends
// short-preamble 11 Mbps frames almost exclusively, a fading channel forces
// long preambles and low rates — so the branch distribution drifts exactly
// the way the adaptive framework targets.
package wlan

import (
	"fmt"
	"math/rand"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/trace"
)

// NumPEs is the platform size: a RISC control core and two DSP-style cores.
const NumPEs = 3

// Landmark task indices.
const (
	TaskRFFrontEnd  = 0
	TaskAGC         = 1
	TaskSyncDetect  = 2 // fork p: 0=long preamble, 1=short preamble
	TaskLongSync    = 3
	TaskLongHeader  = 4
	TaskShortSync   = 5
	TaskShortHeader = 6
	TaskHeaderJoin  = 7 // or-node
	TaskRateSelect  = 8 // fork r: 0=1M, 1=2M, 2=5.5M, 3=11M
	TaskDBPSKDemod  = 9
	TaskDBPSKDecode = 10
	TaskDQPSKDemod  = 11
	TaskDQPSKDecode = 12
	TaskCCK55Demod  = 13
	TaskCCK55Decode = 14
	TaskCCK11Demod  = 15
	TaskCCK11Decode = 16
	TaskPayloadJoin = 17 // or-node
	TaskDescramble  = 18
	TaskCRCCheck    = 19
	TaskDeframe     = 20
	TaskMACHandoff  = 21
)

// Build constructs the 802.11b receive CTG and its 3-PE platform. The
// deadline is provisional; tighten against the nominal makespan as usual.
func Build() (*ctg.Graph, *platform.Platform, error) {
	type spec struct {
		name string
		kind ctg.Kind
		wcet float64
		dsp  bool
	}
	specs := [22]spec{
		TaskRFFrontEnd:  {"RFFrontEnd", ctg.AndNode, 3, false},
		TaskAGC:         {"AGC", ctg.AndNode, 4, true},
		TaskSyncDetect:  {"SyncDetect", ctg.AndNode, 3, true},
		TaskLongSync:    {"LongSync", ctg.AndNode, 12, true},
		TaskLongHeader:  {"LongHeaderDecode", ctg.AndNode, 8, false},
		TaskShortSync:   {"ShortSync", ctg.AndNode, 6, true},
		TaskShortHeader: {"ShortHeaderDecode", ctg.AndNode, 5, false},
		TaskHeaderJoin:  {"HeaderJoin", ctg.OrNode, 1, false},
		TaskRateSelect:  {"RateSelect", ctg.AndNode, 2, false},
		TaskDBPSKDemod:  {"DBPSKDemod", ctg.AndNode, 22, true},
		TaskDBPSKDecode: {"DBPSKDecode", ctg.AndNode, 10, false},
		TaskDQPSKDemod:  {"DQPSKDemod", ctg.AndNode, 14, true},
		TaskDQPSKDecode: {"DQPSKDecode", ctg.AndNode, 7, false},
		TaskCCK55Demod:  {"CCK55Demod", ctg.AndNode, 10, true},
		TaskCCK55Decode: {"CCK55Decode", ctg.AndNode, 6, false},
		TaskCCK11Demod:  {"CCK11Demod", ctg.AndNode, 8, true},
		TaskCCK11Decode: {"CCK11Decode", ctg.AndNode, 5, false},
		TaskPayloadJoin: {"PayloadJoin", ctg.OrNode, 1, false},
		TaskDescramble:  {"Descramble", ctg.AndNode, 4, false},
		TaskCRCCheck:    {"CRCCheck", ctg.AndNode, 3, false},
		TaskDeframe:     {"Deframe", ctg.AndNode, 3, false},
		TaskMACHandoff:  {"MACHandoff", ctg.AndNode, 2, false},
	}

	b := ctg.NewBuilder()
	for id, sp := range specs {
		if got := b.AddTask(sp.name, sp.kind); int(got) != id {
			return nil, nil, fmt.Errorf("wlan: task %s got id %d, want %d", sp.name, got, id)
		}
	}

	b.AddEdge(TaskRFFrontEnd, TaskAGC, 8)
	b.AddEdge(TaskAGC, TaskSyncDetect, 8)
	// Fork p: preamble mode.
	b.AddCondEdge(TaskSyncDetect, TaskLongSync, 6, 0)
	b.AddCondEdge(TaskSyncDetect, TaskShortSync, 6, 1)
	b.SetBranchProbs(TaskSyncDetect, []float64{0.5, 0.5})
	b.AddEdge(TaskLongSync, TaskLongHeader, 2)
	b.AddEdge(TaskShortSync, TaskShortHeader, 2)
	b.AddEdge(TaskLongHeader, TaskHeaderJoin, 1)
	b.AddEdge(TaskShortHeader, TaskHeaderJoin, 1)
	b.AddEdge(TaskHeaderJoin, TaskRateSelect, 1)
	// Fork r: payload rate, four outcomes.
	arms := [4][2]ctg.TaskID{
		{TaskDBPSKDemod, TaskDBPSKDecode},
		{TaskDQPSKDemod, TaskDQPSKDecode},
		{TaskCCK55Demod, TaskCCK55Decode},
		{TaskCCK11Demod, TaskCCK11Decode},
	}
	for rate, arm := range arms {
		b.AddCondEdge(TaskRateSelect, arm[0], 10, rate)
		b.AddEdge(arm[0], arm[1], 6)
		b.AddEdge(arm[1], TaskPayloadJoin, 2)
	}
	b.SetBranchProbs(TaskRateSelect, []float64{0.1, 0.2, 0.3, 0.4})
	// Back end.
	b.AddEdge(TaskPayloadJoin, TaskDescramble, 2)
	b.AddEdge(TaskDescramble, TaskCRCCheck, 2)
	b.AddEdge(TaskCRCCheck, TaskDeframe, 2)
	b.AddEdge(TaskDeframe, TaskMACHandoff, 1)

	g, err := b.Build(10000)
	if err != nil {
		return nil, nil, fmt.Errorf("wlan: %w", err)
	}

	pb := platform.NewBuilder(len(specs), NumPEs)
	for id, sp := range specs {
		// PE0 RISC control core, PE1/PE2 DSPs (PE2 slightly faster).
		mul := [NumPEs]float64{1.0, 0.85, 0.75}
		if !sp.dsp {
			mul = [NumPEs]float64{0.8, 1.2, 1.2}
		}
		w := make([]float64, NumPEs)
		e := make([]float64, NumPEs)
		for pe := 0; pe < NumPEs; pe++ {
			w[pe] = sp.wcet * mul[pe]
			e[pe] = sp.wcet * [NumPEs]float64{0.9, 1.0, 1.1}[pe]
		}
		pb.SetTask(id, w, e)
	}
	pb.SetAllLinks(12, 0.02)
	p, err := pb.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("wlan: %w", err)
	}
	return g, p, nil
}

// ChannelTrace generates n frame decision vectors from a drifting-SNR
// channel model: the SNR random-walks between deep fade and excellent;
// the rate distribution and the short-preamble probability follow it
// (802.11b rate adaptation).
func ChannelTrace(g *ctg.Graph, seed int64, n int) trace.Vectors {
	rng := rand.New(rand.NewSource(seed))
	out := make(trace.Vectors, n)
	snr := 0.5 + 0.3*rng.Float64() // normalized 0..1
	for i := 0; i < n; i++ {
		if i%40 == 0 { // channel coherence block
			snr += (2*rng.Float64() - 1) * 0.25
			if snr < 0 {
				snr = -snr
			}
			if snr > 1 {
				snr = 2 - snr
			}
		}
		// Preamble: short preamble needs a decent channel.
		pShort := 0.1 + 0.8*snr
		// Rate distribution: mass moves to 11M as SNR improves.
		rates := []float64{
			0.55 * (1 - snr) * (1 - snr),
			0.45 * (1 - snr),
			0.3 + 0.2*snr,
			snr * snr,
		}
		sum := 0.0
		for _, v := range rates {
			sum += v
		}
		for k := range rates {
			rates[k] /= sum
		}
		row := make([]int, g.NumForks())
		for fi, fork := range g.Forks() {
			switch fork {
			case ctg.TaskID(TaskSyncDetect):
				if rng.Float64() < pShort {
					row[fi] = 1
				}
			case ctg.TaskID(TaskRateSelect):
				r := rng.Float64()
				acc := 0.0
				row[fi] = len(rates) - 1
				for k, v := range rates {
					acc += v
					if r < acc {
						row[fi] = k
						break
					}
				}
			}
		}
		out[i] = row
	}
	return out
}
