package wlan

import (
	"testing"

	"ctgdvfs/internal/core"
	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/sim"
)

func TestBuildStructure(t *testing.T) {
	g, p, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 22 {
		t.Fatalf("tasks = %d, want 22", g.NumTasks())
	}
	if g.NumForks() != 2 {
		t.Fatalf("forks = %d, want 2", g.NumForks())
	}
	if got := g.Outcomes(ctg.TaskID(TaskRateSelect)); got != 4 {
		t.Fatalf("rate fork outcomes = %d, want 4", got)
	}
	if p.NumPEs() != NumPEs || p.NumTasks() != 22 {
		t.Fatal("platform dimensions wrong")
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	// 2 preamble modes × 4 rates.
	if a.NumScenarios() != 8 {
		t.Fatalf("scenarios = %d, want 8", a.NumScenarios())
	}
	// The four demod chains are pairwise exclusive; preamble and rate
	// arms are orthogonal.
	if !a.MutuallyExclusive(TaskDBPSKDemod, TaskCCK11Demod) {
		t.Fatal("different rate arms must be exclusive")
	}
	if a.MutuallyExclusive(TaskLongSync, TaskCCK11Demod) {
		t.Fatal("preamble and rate arms are orthogonal, not exclusive")
	}
	// The 1 Mbps chain is the heaviest (low rate = long airtime/work).
	if p.WCET(TaskDBPSKDemod, 1) <= p.WCET(TaskCCK11Demod, 1) {
		t.Fatal("1M demod must outweigh 11M demod")
	}
}

func TestChannelTraceFollowsSNR(t *testing.T) {
	g, _, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	v := ChannelTrace(g, 5, 4000)
	if len(v) != 4000 {
		t.Fatalf("got %d vectors", len(v))
	}
	rateIdx := g.ForkIndex(ctg.TaskID(TaskRateSelect))
	preIdx := g.ForkIndex(ctg.TaskID(TaskSyncDetect))
	counts := [4]int{}
	shortWith11, shortTotal := 0, 0
	for _, row := range v {
		counts[row[rateIdx]]++
		if row[rateIdx] == 3 {
			shortTotal++
			if row[preIdx] == 1 {
				shortWith11++
			}
		}
	}
	for k, c := range counts {
		if c == 0 {
			t.Fatalf("rate %d never selected over 4000 frames", k)
		}
	}
	// 11 Mbps frames correlate with good channels, hence short preambles.
	if shortTotal > 0 && float64(shortWith11)/float64(shortTotal) < 0.5 {
		t.Fatalf("11M frames use short preambles only %d/%d of the time",
			shortWith11, shortTotal)
	}
}

func TestEndToEndAdaptive(t *testing.T) {
	g, p, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err = core.TightenDeadline(g, p, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.BuildOnline(g, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sim.Exhaustive(s)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Misses > 0 {
		t.Fatalf("%d deadline misses on the static schedule", sum.Misses)
	}

	vec := ChannelTrace(g, 9, 600)
	mgr, err := core.New(g, p, core.Options{Window: 20, Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Run(vec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != 0 {
		t.Fatalf("%d adaptive misses", st.Misses)
	}
	if st.Calls == 0 {
		t.Fatal("no adaptation under a fading channel")
	}
}
