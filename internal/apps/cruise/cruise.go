// Package cruise models the vehicle cruise-controller application of the
// paper's second experiment (taken there from Paul Pop's thesis, ref [15]):
// a conditional task graph of 32 tasks with two branch fork nodes, mapped
// onto a 5-PE distributed automotive platform.
//
// The conditional structure yields exactly three leaf minterms, matching the
// paper's remark that the CTG "typically has ... only three minterms": the
// mode-select fork chooses between accelerating and decelerating, and only
// the accelerate arm contains the nested stability fork (smooth tracking vs
// corrective control). The two arms of each fork are deliberately close in
// energy — the paper attributes the small (~5%) adaptive gains on this
// application to that property, combined with a deadline of twice the
// optimal schedule length.
package cruise

import (
	"fmt"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
)

// NumPEs is the platform size of the paper's cruise-controller experiment.
const NumPEs = 5

// Landmark task indices (exported for tests and examples).
const (
	TaskSensorSpeed   = 0
	TaskSensorPedal   = 1
	TaskSensorIncline = 2
	TaskFuseInputs    = 3
	TaskEstimateState = 4
	TaskModeSelect    = 5 // fork m: 0=accelerate, 1=decelerate
	TaskThrottleMap   = 6
	TaskStability     = 7 // fork s: 0=smooth, 1=corrective (accel arm only)
	TaskCruiseHold    = 8
	TaskSetpointTrack = 9
	TaskPIDCorrect    = 10
	TaskSlipEstimate  = 11
	TaskTractionCtl   = 12
	TaskStabJoin      = 13 // or-node
	TaskBrakeMap      = 14
	TaskEngineBrake   = 15
	TaskABSCheck      = 16
	TaskModeJoin      = 17 // or-node
	TaskActThrottle   = 18
	TaskActBrake      = 19
	TaskDashboard     = 20
	TaskSpeedLimit    = 21
	TaskAlarmEval     = 22
	TaskLogTelemetry  = 23
	TaskCANBroadcast  = 24
	TaskWatchdog      = 25
	TaskDiagSelfTest  = 26
	TaskDisplayUpdate = 27
	TaskPowerMgmt     = 28
	TaskFuelCalc      = 29
	TaskIgnitionAdv   = 30
	TaskComplete      = 31
)

// Build constructs the cruise-controller CTG and its 5-PE platform. The
// deadline is provisional; the paper's experiment uses twice the optimal
// schedule length (use core.TightenDeadline with factor 2).
func Build() (*ctg.Graph, *platform.Platform, error) {
	type spec struct {
		name string
		kind ctg.Kind
		wcet float64
	}
	specs := [32]spec{
		TaskSensorSpeed:   {"SensorSpeed", ctg.AndNode, 3},
		TaskSensorPedal:   {"SensorPedal", ctg.AndNode, 3},
		TaskSensorIncline: {"SensorIncline", ctg.AndNode, 4},
		TaskFuseInputs:    {"FuseInputs", ctg.AndNode, 5},
		TaskEstimateState: {"EstimateState", ctg.AndNode, 8},
		TaskModeSelect:    {"ModeSelect", ctg.AndNode, 2},
		TaskThrottleMap:   {"ThrottleMap", ctg.AndNode, 6},
		TaskStability:     {"StabilityCheck", ctg.AndNode, 2},
		TaskCruiseHold:    {"CruiseHold", ctg.AndNode, 7},
		TaskSetpointTrack: {"SetpointTrack", ctg.AndNode, 6},
		TaskPIDCorrect:    {"PIDCorrect", ctg.AndNode, 9},
		TaskSlipEstimate:  {"SlipEstimate", ctg.AndNode, 8},
		TaskTractionCtl:   {"TractionControl", ctg.AndNode, 9},
		TaskStabJoin:      {"StabJoin", ctg.OrNode, 1},
		TaskBrakeMap:      {"BrakeMap", ctg.AndNode, 6},
		TaskEngineBrake:   {"EngineBrake", ctg.AndNode, 7},
		TaskABSCheck:      {"ABSCheck", ctg.AndNode, 6},
		TaskModeJoin:      {"ModeJoin", ctg.OrNode, 1},
		TaskActThrottle:   {"ActuateThrottle", ctg.AndNode, 4},
		TaskActBrake:      {"ActuateBrake", ctg.AndNode, 4},
		TaskDashboard:     {"Dashboard", ctg.AndNode, 3},
		TaskSpeedLimit:    {"SpeedLimitCheck", ctg.AndNode, 3},
		TaskAlarmEval:     {"AlarmEval", ctg.AndNode, 3},
		TaskLogTelemetry:  {"LogTelemetry", ctg.AndNode, 4},
		TaskCANBroadcast:  {"CANBroadcast", ctg.AndNode, 4},
		TaskWatchdog:      {"Watchdog", ctg.AndNode, 2},
		TaskDiagSelfTest:  {"DiagSelfTest", ctg.AndNode, 5},
		TaskDisplayUpdate: {"DisplayUpdate", ctg.AndNode, 3},
		TaskPowerMgmt:     {"PowerMgmt", ctg.AndNode, 3},
		TaskFuelCalc:      {"FuelCalc", ctg.AndNode, 5},
		TaskIgnitionAdv:   {"IgnitionAdvance", ctg.AndNode, 4},
		TaskComplete:      {"Complete", ctg.AndNode, 2},
	}

	b := ctg.NewBuilder()
	for id, sp := range specs {
		if got := b.AddTask(sp.name, sp.kind); int(got) != id {
			return nil, nil, fmt.Errorf("cruise: task %s got id %d, want %d", sp.name, got, id)
		}
	}

	// Sensor fusion front end.
	b.AddEdge(TaskSensorSpeed, TaskFuseInputs, 1)
	b.AddEdge(TaskSensorPedal, TaskFuseInputs, 1)
	b.AddEdge(TaskSensorIncline, TaskFuseInputs, 1)
	b.AddEdge(TaskFuseInputs, TaskEstimateState, 2)
	b.AddEdge(TaskEstimateState, TaskModeSelect, 1)

	// Fork m: accelerate vs decelerate. The accelerate arm nests fork s.
	b.AddCondEdge(TaskModeSelect, TaskThrottleMap, 1, 0)
	b.AddCondEdge(TaskModeSelect, TaskBrakeMap, 1, 1)
	b.SetBranchProbs(TaskModeSelect, []float64{0.5, 0.5})

	// Accelerate arm.
	b.AddEdge(TaskThrottleMap, TaskFuelCalc, 1)
	b.AddEdge(TaskFuelCalc, TaskIgnitionAdv, 1)
	b.AddEdge(TaskIgnitionAdv, TaskStability, 1)
	// Fork s (nested): smooth vs corrective.
	b.AddCondEdge(TaskStability, TaskCruiseHold, 1, 0)
	b.AddCondEdge(TaskStability, TaskPIDCorrect, 1, 1)
	b.SetBranchProbs(TaskStability, []float64{0.7, 0.3})
	b.AddEdge(TaskCruiseHold, TaskSetpointTrack, 1)
	b.AddEdge(TaskSetpointTrack, TaskStabJoin, 1)
	b.AddEdge(TaskPIDCorrect, TaskSlipEstimate, 1)
	b.AddEdge(TaskSlipEstimate, TaskTractionCtl, 1)
	b.AddEdge(TaskTractionCtl, TaskStabJoin, 1)
	b.AddEdge(TaskStabJoin, TaskModeJoin, 1)

	// Decelerate arm (comparable total energy to the accelerate arm).
	b.AddEdge(TaskBrakeMap, TaskEngineBrake, 1)
	b.AddEdge(TaskEngineBrake, TaskABSCheck, 1)
	b.AddEdge(TaskABSCheck, TaskModeJoin, 1)

	// Actuation and housekeeping tail.
	b.AddEdge(TaskModeJoin, TaskActThrottle, 1)
	b.AddEdge(TaskModeJoin, TaskActBrake, 1)
	b.AddEdge(TaskModeJoin, TaskDashboard, 1)
	b.AddEdge(TaskEstimateState, TaskSpeedLimit, 1)
	b.AddEdge(TaskSpeedLimit, TaskAlarmEval, 1)
	b.AddEdge(TaskActThrottle, TaskLogTelemetry, 1)
	b.AddEdge(TaskActBrake, TaskLogTelemetry, 1)
	b.AddEdge(TaskLogTelemetry, TaskCANBroadcast, 1)
	b.AddEdge(TaskDashboard, TaskDisplayUpdate, 1)
	b.AddEdge(TaskAlarmEval, TaskDisplayUpdate, 1)
	b.AddEdge(TaskCANBroadcast, TaskWatchdog, 1)
	b.AddEdge(TaskWatchdog, TaskDiagSelfTest, 1)
	b.AddEdge(TaskDiagSelfTest, TaskPowerMgmt, 1)
	b.AddEdge(TaskDisplayUpdate, TaskComplete, 1)
	b.AddEdge(TaskPowerMgmt, TaskComplete, 1)

	g, err := b.Build(10000)
	if err != nil {
		return nil, nil, fmt.Errorf("cruise: %w", err)
	}

	pb := platform.NewBuilder(len(specs), NumPEs)
	for id, sp := range specs {
		// Five ECU-class cores with mild heterogeneity.
		mul := [NumPEs]float64{1.0, 1.1, 0.9, 1.2, 1.0}
		epu := [NumPEs]float64{1.0, 0.85, 1.1, 0.75, 0.95}
		w := make([]float64, NumPEs)
		e := make([]float64, NumPEs)
		for pe := 0; pe < NumPEs; pe++ {
			w[pe] = sp.wcet * mul[pe]
			e[pe] = sp.wcet * epu[pe]
		}
		pb.SetTask(id, w, e)
	}
	pb.SetAllLinks(10, 0.02) // CAN-like shared fabric, modeled point-to-point
	p, err := pb.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("cruise: %w", err)
	}
	return g, p, nil
}
