package cruise

import (
	"math"
	"testing"

	"ctgdvfs/internal/core"
	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/sim"
	"ctgdvfs/internal/trace"
)

func TestBuildMatchesPaperCounts(t *testing.T) {
	g, p, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 32 {
		t.Fatalf("tasks = %d, want 32 (paper: 32 tasks)", g.NumTasks())
	}
	if g.NumForks() != 2 {
		t.Fatalf("forks = %d, want 2 (paper: two branching nodes)", g.NumForks())
	}
	if p.NumPEs() != 5 {
		t.Fatalf("PEs = %d, want 5", p.NumPEs())
	}
}

func TestThreeMinterms(t *testing.T) {
	g, _, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	// decelerate, accelerate·smooth, accelerate·corrective.
	if a.NumScenarios() != 3 {
		t.Fatalf("scenarios = %d, want 3 (paper: only three minterms)", a.NumScenarios())
	}
}

func TestArmsAreEnergyBalanced(t *testing.T) {
	// The paper attributes the small adaptive gain to near-equal minterm
	// energies; verify the scenario energies stay within 40% of each
	// other (at nominal speed, averaged over PEs).
	g, p, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	avgEnergy := func(task ctg.TaskID) float64 {
		sum := 0.0
		for pe := 0; pe < p.NumPEs(); pe++ {
			sum += p.Energy(int(task), pe)
		}
		return sum / float64(p.NumPEs())
	}
	var emin, emax float64 = math.Inf(1), 0
	for si := 0; si < a.NumScenarios(); si++ {
		e := a.ScenarioWeight(si, avgEnergy)
		if e < emin {
			emin = e
		}
		if e > emax {
			emax = e
		}
	}
	if emax/emin > 1.4 {
		t.Fatalf("scenario energies too far apart: %v vs %v", emin, emax)
	}
}

func TestEndToEndWithPaperDeadline(t *testing.T) {
	g, p, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	// "the deadline we used was double of the optimum schedule length".
	g, err = core.TightenDeadline(g, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.BuildOnline(g, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sim.Exhaustive(s)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Misses > 0 {
		t.Fatalf("%d deadline misses", sum.Misses)
	}

	// Adaptive run over a road-condition trace.
	vec := trace.RoadSequence(g, 1, 400)
	mgr, err := core.New(g, p, core.Options{Window: 20, Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Run(vec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != 0 {
		t.Fatalf("%d adaptive deadline misses", st.Misses)
	}
	if st.Calls == 0 {
		t.Fatal("no adaptation on a road trace with changing conditions")
	}
}
