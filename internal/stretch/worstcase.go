package stretch

import (
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
)

// WorstCase runs the probability-blind slack-distribution stretcher that
// models the DVFS stage of reference algorithm 1: each task, in scheduling
// order, receives a share of the slack of its most critical spanning chain —
//
//	slk(τ) = wcet(τ) · slk(p_worst)/delay(p_worst)
//
// with p_worst the largest-delay (lowest-ratio) chain through τ over *all*
// chains, with no branch-probability or activation-probability weighting
// (refs [9]/[10] style). Tasks on rarely-taken branches therefore receive as
// much slack as always-active ones, which is exactly the weakness the
// paper's heuristic fixes.
func WorstCase(s *sched.Schedule, d platform.DVFS, maxPaths int) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	_ = maxPaths // retained for API stability; the DP model needs no cap
	dag := newDAG(s)
	deadline := s.G.Deadline()
	res := &Result{}
	for _, t := range s.Order {
		r := dag.run(nil)
		delay := dag.throughAny(r, t)
		slack := deadline - delay
		if slack <= 0 {
			continue
		}
		wcet := s.WCET(t)
		slk := wcet * slack / delay
		if slk > slack {
			slk = slack
		}
		speed := d.SpeedForTime(wcet, wcet+slk)
		if speed < 1 {
			s.Speed[t] = speed
			dag.refreshExec(t)
			res.Stretched++
		}
	}
	res.ExpectedEnergy = s.ExpectedEnergy()
	res.WorstDelay = dag.longest(dag.run(nil))
	return res, nil
}
