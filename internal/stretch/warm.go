package stretch

import (
	"fmt"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
)

// This file is the partial-recompute half of incremental (warm-start)
// rescheduling. When a probability drift is confined to a few forks, the
// mapping stage reuses the incumbent schedule skeleton (sched.WarmState) and
// only the speed assignment of the *affected* tasks is recomputed here. The
// unaffected tasks keep their incumbent speeds and are treated as locked
// from the outset — exactly the state the full heuristic reaches after
// processing them — so the partial pass costs O(|affected| × minterms × DP)
// instead of O(tasks × minterms × DP).
//
// Deadline safety is unconditional: the incumbent kept every chain within
// the deadline, resetting the affected tasks to full speed only shortens
// chains, and every per-task step re-applies the Figure 2 step-9 clamp. What
// the partial pass approximates (relative to a full recompute at the new
// probabilities) is optimality, not validity — the unaffected tasks' speeds
// still reflect the old weighting. The adaptive manager bounds that
// approximation with its affected-fraction eligibility rule and pins it with
// the warm-equivalence property test.

// Workspace holds the reusable buffers of repeated stretching passes over
// one mapping: the combined-DAG model, the lock vector and the slack DP
// scratch. Rebind it after every full reschedule (new mapping), then each
// HeuristicPartial call on that mapping allocates nothing. Not safe for
// concurrent use.
type Workspace struct {
	// Cancel, when non-nil, is polled once per affected task inside
	// HeuristicPartial (the same granularity as the full heuristic); a
	// non-nil return aborts the pass with that error. See CancelFunc.
	Cancel CancelFunc

	dag     *dagModel
	locked  []bool
	scratch *slackScratch
}

// NewWorkspace returns an empty stretch workspace; Rebind must be called
// before the first HeuristicPartial.
func NewWorkspace() *Workspace { return &Workspace{} }

// Rebind rebuilds the workspace's DAG topology from a schedule — required
// whenever the mapping changed (a full DLS ran or a cached schedule with a
// different mapping was adopted).
func (w *Workspace) Rebind(s *sched.Schedule) {
	w.dag = newDAG(s)
	n := s.G.NumTasks()
	if cap(w.locked) < n {
		w.locked = make([]bool, n)
	}
	w.locked = w.locked[:n]
	if w.scratch == nil || len(w.scratch.full.up) != n {
		w.scratch = newSlackScratch(n)
	}
}

// retarget points the bound DAG at another schedule sharing the same mapping
// (a warm-start buffer copy): topology, order and communication delays are
// identical, only the speed-dependent execution times need a refresh.
func (w *Workspace) retarget(s *sched.Schedule) {
	w.dag.s = s
	for t := range w.dag.exec {
		w.dag.exec[t] = s.ExecTime(ctg.TaskID(t))
	}
}

// HeuristicPartial re-runs the Figure 2 stretching pass over only the
// affected tasks of a warm-started schedule: affected tasks are reset to
// full speed and re-stretched in DLS order under the current (drifted)
// probabilities, while every other task keeps its incumbent speed and
// counts as locked. The schedule's Speed vector is updated in place.
//
// The workspace must have been Rebind-ed to a schedule with the same
// mapping (s itself, or the incumbent s was copied from). Passing affected
// all-true reproduces HeuristicGuarded bit for bit — at workspace-reuse
// cost — which is how the breaker's guard-level changes re-stretch without
// paying for a new mapping.
//
// Unlike the full heuristic, the partial pass leaves Result.ExpectedEnergy
// zero: the expected-energy evaluation allocates per cross-PE edge and the
// warm path is the allocation-free hot path. Callers that want it (e.g. for
// telemetry) call s.ExpectedEnergy() themselves.
func HeuristicPartial(s *sched.Schedule, d platform.DVFS, guard float64, affected []bool, w *Workspace) (Result, error) {
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	if err := validGuard(guard); err != nil {
		return Result{}, err
	}
	n := s.G.NumTasks()
	if len(affected) != n {
		return Result{}, fmt.Errorf("stretch: affected mask sized %d, want %d", len(affected), n)
	}
	if w == nil {
		w = NewWorkspace()
		w.Rebind(s)
	} else if w.dag == nil {
		w.Rebind(s)
	}
	w.retarget(s)
	dag := w.dag
	for t := 0; t < n; t++ {
		if affected[t] {
			if s.Speed[t] != 1 {
				s.Speed[t] = 1
				dag.refreshExec(ctg.TaskID(t))
			}
			w.locked[t] = false
		} else {
			w.locked[t] = true
		}
	}
	var res Result
	for _, t := range s.Order {
		if !affected[t] {
			continue
		}
		if w.Cancel != nil {
			if err := w.Cancel(); err != nil {
				return Result{}, err
			}
		}
		slk := calculateSlack(dag, t, w.locked, false, w.scratch)
		if slk > 0 {
			wcet := s.WCET(t)
			res.SlackFound += slk
			speed := d.GuardedSpeedForTime(wcet, wcet+slk, guard)
			if speed < 1 {
				s.Speed[t] = speed
				dag.refreshExec(t)
				res.Stretched++
				res.SlackUsed += wcet/speed - wcet
			}
		}
		w.locked[t] = true
	}
	res.WorstDelay = dag.longest(dag.runInto(w.scratch.full, nil))
	return res, nil
}
