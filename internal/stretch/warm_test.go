package stretch

import (
	"testing"

	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
)

// TestPartialAllAffectedMatchesGuarded pins the documented contract of
// HeuristicPartial: with an all-true affected mask it reproduces
// HeuristicGuarded bit for bit — same per-task speeds, same slack
// accounting, same worst-case delay — across random CTGs, deadline
// tightness and guard levels.
func TestPartialAllAffectedMatchesGuarded(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, factor := range []float64{1.2, 1.6, 2.5} {
			for _, guard := range []float64{0, 0.2} {
				ref := prepare(t, seed, factor)
				got := ref.Clone()

				want, err := HeuristicGuarded(ref, platform.Continuous(), 0, guard)
				if err != nil {
					t.Fatal(err)
				}
				affected := make([]bool, got.G.NumTasks())
				for i := range affected {
					affected[i] = true
				}
				ws := NewWorkspace()
				ws.Rebind(got)
				res, err := HeuristicPartial(got, platform.Continuous(), guard, affected, ws)
				if err != nil {
					t.Fatal(err)
				}

				for task := range ref.Speed {
					if ref.Speed[task] != got.Speed[task] {
						t.Fatalf("seed %d factor %v guard %v: task %d speed %v (guarded) != %v (partial)",
							seed, factor, guard, task, ref.Speed[task], got.Speed[task])
					}
				}
				if res.Stretched != want.Stretched || res.SlackFound != want.SlackFound ||
					res.SlackUsed != want.SlackUsed || res.WorstDelay != want.WorstDelay {
					t.Fatalf("seed %d factor %v guard %v: partial result %+v != guarded %+v",
						seed, factor, guard, res, *want)
				}
				// Partial leaves ExpectedEnergy to the caller; the schedules
				// themselves must agree.
				if e1, e2 := ref.ExpectedEnergy(), got.ExpectedEnergy(); e1 != e2 {
					t.Fatalf("seed %d factor %v guard %v: energy %v != %v", seed, factor, guard, e1, e2)
				}
			}
		}
	}
}

// TestPartialSubsetKeepsDeadline checks deadline safety of genuinely partial
// re-stretches: whatever subset of tasks is re-stretched (the rest keeping
// incumbent speeds), the worst-case delay stays within the deadline.
func TestPartialSubsetKeepsDeadline(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		s := prepare(t, seed, 1.6)
		if _, err := HeuristicGuarded(s, platform.Continuous(), 0, 0); err != nil {
			t.Fatal(err)
		}
		warm := sched.NewWarmState()
		ws := NewWorkspace()
		n := s.G.NumTasks()
		// Re-stretch sliding windows of tasks: prefixes, suffixes, stripes.
		masks := [][]bool{make([]bool, n), make([]bool, n), make([]bool, n)}
		for i := 0; i < n; i++ {
			masks[0][i] = i < n/2
			masks[1][i] = i >= n/2
			masks[2][i] = i%3 == 0
		}
		for mi, affected := range masks {
			target := warm.Start(s)
			ws.Rebind(target)
			res, err := HeuristicPartial(target, platform.Continuous(), 0, affected, ws)
			if err != nil {
				t.Fatal(err)
			}
			if res.WorstDelay > target.G.Deadline()*(1+1e-9) {
				t.Fatalf("seed %d mask %d: partial re-stretch delay %v exceeds deadline %v",
					seed, mi, res.WorstDelay, target.G.Deadline())
			}
			if err := target.QuickValidate(); err != nil {
				t.Fatalf("seed %d mask %d: warm schedule invalid: %v", seed, mi, err)
			}
			// Unaffected tasks keep their incumbent speeds untouched.
			for task := range affected {
				if !affected[task] && target.Speed[task] != s.Speed[task] {
					t.Fatalf("seed %d mask %d: unaffected task %d speed changed %v -> %v",
						seed, mi, task, s.Speed[task], target.Speed[task])
				}
			}
		}
	}
}
