package stretch

import (
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/tgff"
)

// prepare builds a scheduled random CTG with the given deadline factor.
func prepare(t *testing.T, seed int64, factor float64) *sched.Schedule {
	t.Helper()
	g, p, err := tgff.Generate(tgff.Config{
		Seed: seed, Nodes: 16 + int(seed%8), PEs: 2 + int(seed%3),
		Branches: int(seed % 4), Category: tgff.ForkJoin,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := g.WithDeadline(factor * s0.Makespan)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ctg.Analyze(g2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.DLS(a2, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Property: a looser deadline never yields higher expected energy — more
// slack can only help every stretcher.
func TestEnergyMonotoneInDeadline(t *testing.T) {
	factors := []float64{1.1, 1.3, 1.6, 2.0, 3.0}
	for seed := int64(0); seed < 12; seed++ {
		type runFn func(*sched.Schedule) (*Result, error)
		runs := map[string]runFn{
			"heuristic": func(s *sched.Schedule) (*Result, error) {
				return Heuristic(s, platform.Continuous(), 0)
			},
			"worstcase": func(s *sched.Schedule) (*Result, error) {
				return WorstCase(s, platform.Continuous(), 0)
			},
		}
		for name, run := range runs {
			prev := -1.0
			for fi := len(factors) - 1; fi >= 0; fi-- {
				s := prepare(t, seed, factors[fi])
				res, err := run(s)
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, name, err)
				}
				// Iterating factors from loosest to tightest: energy must
				// be non-decreasing as the deadline tightens.
				if prev >= 0 && res.ExpectedEnergy < prev-1e-9 {
					t.Fatalf("seed %d %s: energy %v at factor %v below %v at looser deadline",
						seed, name, res.ExpectedEnergy, factors[fi], prev)
				}
				prev = res.ExpectedEnergy
			}
		}
	}
}

// Property: stretching never raises any task's speed above 1 and never
// lowers expected energy below the theoretical floor (all tasks at the
// minimum speed).
func TestStretchedEnergyWithinBounds(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		s := prepare(t, 200+seed, 2.0)
		res, err := Heuristic(s, platform.Continuous(), 0)
		if err != nil {
			t.Fatal(err)
		}
		floor := 0.0
		minSpeed := platform.DefaultMinSpeed
		for task := 0; task < s.G.NumTasks(); task++ {
			id := ctg.TaskID(task)
			floor += s.A.ActivationProb(id) * s.NominalEnergy(id) * minSpeed * minSpeed
		}
		if res.ExpectedEnergy < floor-1e-9 {
			t.Fatalf("seed %d: energy %v below physical floor %v", seed, res.ExpectedEnergy, floor)
		}
	}
}

// Property: the heuristic is deterministic — same schedule, same speeds.
func TestHeuristicDeterministic(t *testing.T) {
	s1 := prepare(t, 33, 1.5)
	s2 := prepare(t, 33, 1.5)
	if _, err := Heuristic(s1, platform.Continuous(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Heuristic(s2, platform.Continuous(), 0); err != nil {
		t.Fatal(err)
	}
	for task := range s1.Speed {
		if s1.Speed[task] != s2.Speed[task] {
			t.Fatalf("task %d: speeds %v vs %v differ across identical runs",
				task, s1.Speed[task], s2.Speed[task])
		}
	}
}

// Property: discrete-level stretching is never better than continuous (the
// levels are a subset of the continuous range) but stays deadline-safe.
func TestDiscreteNeverBeatsContinuous(t *testing.T) {
	levels := platform.Discrete(0.2, 0.4, 0.6, 0.8, 1)
	for seed := int64(0); seed < 12; seed++ {
		sc := prepare(t, 400+seed, 1.7)
		resC, err := Heuristic(sc, platform.Continuous(), 0)
		if err != nil {
			t.Fatal(err)
		}
		sd := prepare(t, 400+seed, 1.7)
		resD, err := Heuristic(sd, levels, 0)
		if err != nil {
			t.Fatal(err)
		}
		if resD.ExpectedEnergy < resC.ExpectedEnergy-1e-9 {
			t.Fatalf("seed %d: discrete energy %v beats continuous %v",
				seed, resD.ExpectedEnergy, resC.ExpectedEnergy)
		}
		if resD.WorstDelay > sd.G.Deadline()+1e-6 {
			t.Fatalf("seed %d: discrete stretching violated deadline", seed)
		}
	}
}
