package stretch

import (
	"math"
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/tgff"
)

func guardWorkload(t *testing.T, seed int64) (*ctg.Graph, *sched.Schedule) {
	t.Helper()
	g, p, err := tgff.Generate(tgff.Config{
		Seed: seed, Nodes: 16, PEs: 3, Branches: 2, Category: tgff.ForkJoin,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := g.WithDeadline(1.5 * s.Makespan)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ctg.Analyze(g2)
	if err != nil {
		t.Fatal(err)
	}
	s, err = sched.DLS(a2, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	return g2, s
}

func TestGuardedSpeedForTime(t *testing.T) {
	d := platform.Continuous()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// guard 0 must be bit-for-bit SpeedForTime.
	for _, budget := range []float64{5, 10, 17.3, 100} {
		if a, b := d.GuardedSpeedForTime(10, budget, 0), d.SpeedForTime(10, budget); a != b {
			t.Fatalf("guard 0 diverged at budget %v: %v vs %v", budget, a, b)
		}
	}
	// guard reserves slack: speed monotonically increases with guard.
	prev := 0.0
	for _, g := range []float64{0, 0.25, 0.5, 0.75, 1} {
		sp := d.GuardedSpeedForTime(10, 40, g)
		if sp < prev {
			t.Fatalf("guard %v speed %v below guard-lighter speed %v", g, sp, prev)
		}
		prev = sp
	}
	if sp := d.GuardedSpeedForTime(10, 40, 1); sp != 1 {
		t.Fatalf("full guard speed %v, want 1", sp)
	}
	// guard 0.5 on slack 30: effective budget 25 → speed 0.4.
	if sp := d.GuardedSpeedForTime(10, 40, 0.5); math.Abs(sp-0.4) > 1e-12 {
		t.Fatalf("half-guard speed %v, want 0.4", sp)
	}
	// Over-range guards clamp instead of producing negative budgets.
	if sp := d.GuardedSpeedForTime(10, 40, 2); sp != 1 {
		t.Fatalf("clamped guard speed %v, want 1", sp)
	}
}

func TestHeuristicGuardedValidatesAndBounds(t *testing.T) {
	_, s := guardWorkload(t, 21)
	for _, bad := range []float64{-0.1, 1.5, math.NaN()} {
		if _, err := HeuristicGuarded(s.Clone(), platform.Continuous(), 0, bad); err == nil {
			t.Fatalf("guard %v: want error", bad)
		}
	}
	if _, err := PerScenarioGuarded(s.Clone(), platform.Continuous(), math.Inf(1)); err == nil {
		t.Fatal("infinite guard: want error")
	}
}

func TestGuardZeroMatchesHeuristicBitForBit(t *testing.T) {
	for seed := int64(30); seed < 36; seed++ {
		_, s1 := guardWorkload(t, seed)
		_, s2 := guardWorkload(t, seed)
		r1, err := Heuristic(s1, platform.Continuous(), 0)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := HeuristicGuarded(s2, platform.Continuous(), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r1.ExpectedEnergy != r2.ExpectedEnergy || r1.Stretched != r2.Stretched {
			t.Fatalf("seed %d: guard 0 diverged from Heuristic: %+v vs %+v", seed, r1, r2)
		}
		for i := range s1.Speed {
			if s1.Speed[i] != s2.Speed[i] {
				t.Fatalf("seed %d task %d: speed %v vs %v", seed, i, s1.Speed[i], s2.Speed[i])
			}
		}
	}
}

func TestGuardTradesEnergyForMargin(t *testing.T) {
	// More guard → faster speeds → more energy but earlier nominal finishes:
	// the classic robustness/energy tradeoff, monotone in the guard.
	_, base := guardWorkload(t, 40)
	prevEnergy := -1.0
	for _, guard := range []float64{0, 0.2, 0.5, 1} {
		s := base.Clone()
		r, err := HeuristicGuarded(s, platform.Continuous(), 0, guard)
		if err != nil {
			t.Fatal(err)
		}
		if r.ExpectedEnergy < prevEnergy-1e-9 {
			t.Fatalf("guard %v lowered energy: %v after %v", guard, r.ExpectedEnergy, prevEnergy)
		}
		prevEnergy = r.ExpectedEnergy
		for i, sp := range s.Speed {
			if sp < base.Speed[i]-1e-12 && guard == 1 {
				t.Fatalf("full guard stretched task %d to %v", i, sp)
			}
		}
		if guard == 1 && r.Stretched != 0 {
			t.Fatalf("full guard stretched %d tasks", r.Stretched)
		}
	}
}

func TestPerScenarioGuardedMatchesAndTightens(t *testing.T) {
	_, s := guardWorkload(t, 50)
	plain, err := PerScenario(s, platform.Continuous())
	if err != nil {
		t.Fatal(err)
	}
	zero, err := PerScenarioGuarded(s, platform.Continuous(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for si := range plain.Speeds {
		for ti := range plain.Speeds[si] {
			if plain.Speeds[si][ti] != zero.Speeds[si][ti] {
				t.Fatalf("guard 0 diverged at scenario %d task %d", si, ti)
			}
		}
	}
	guarded, err := PerScenarioGuarded(s, platform.Continuous(), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Guarding is a robustness/energy tradeoff: the guarded table must cost
	// more energy overall (individual tasks may stretch deeper when an
	// earlier task's reserved slack cascades to them, so the comparison is
	// aggregate, not per entry).
	pe := ExpectedEnergyWithScenarioSpeeds(s, plain)
	ge := ExpectedEnergyWithScenarioSpeeds(s, guarded)
	if ge <= pe {
		t.Fatalf("guarded expected energy %v not above plain %v", ge, pe)
	}
	full, err := PerScenarioGuarded(s, platform.Continuous(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for si := range full.Speeds {
		for ti, sp := range full.Speeds[si] {
			if sp != 1 {
				t.Fatalf("full guard left scenario %d task %d at %v", si, ti, sp)
			}
		}
	}
}
