// Package stretch implements the DVFS (voltage/frequency selection) stage
// that runs after task mapping and ordering:
//
//   - Heuristic: the paper's online task-stretching heuristic (Figure 2), a
//     low-complexity slack-distribution pass that weights per-minterm
//     critical-path slack by branch and activation probabilities. This is
//     what makes runtime re-scheduling affordable.
//   - WorstCase: the probability-blind critical-path slack distribution used
//     to model reference algorithm 1 (Shin & Kim [10] / Wu et al. [9]
//     style).
//   - NLP: a convex-programming stretcher modeling reference algorithm 2
//     (Malani et al. [17]): minimize expected energy subject to deadline
//     constraints, solved by a penalty-method gradient descent.
//
// All three reason about the paths of the scheduled CTG — every maximal
// source→sink chain through real and schedule-induced pseudo edges, with the
// (unscalable) cross-PE communication delay folded into the path delay. The
// paper enumerates these paths explicitly ("calculate all possible paths
// using BFS"); since the critical path of a class is always the one with the
// largest delay (the lowest slack ratio for a common deadline), this
// implementation computes the same quantities with longest-path dynamic
// programming instead, which stays polynomial on graphs whose explicit path
// count explodes (fork-join ladders).
package stretch

import (
	"math"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/sched"
)

// dagModel is the scheduled graph the stretchers reason about: real +
// pseudo edges with mapping-resolved communication delays, and the current
// (speed-dependent) execution time of every task.
type dagModel struct {
	s     *sched.Schedule
	edges []ctg.Edge
	comm  []float64 // per combined-edge index
	outE  [][]int   // per task: combined-edge indices
	inE   [][]int
	order []ctg.TaskID // topological order of the combined graph
	exec  []float64    // current execution times
}

func newDAG(s *sched.Schedule) *dagModel {
	g := s.G
	n := g.NumTasks()
	d := &dagModel{
		s:     s,
		edges: make([]ctg.Edge, 0, g.NumEdges()+len(s.Pseudo)),
		outE:  make([][]int, n),
		inE:   make([][]int, n),
		exec:  make([]float64, n),
	}
	d.edges = append(d.edges, g.Edges()...)
	d.edges = append(d.edges, s.Pseudo...)
	d.comm = make([]float64, len(d.edges))
	for ei, e := range d.edges {
		d.comm[ei] = s.P.CommTime(e.CommKB, s.PE[e.From], s.PE[e.To])
		d.outE[e.From] = append(d.outE[e.From], ei)
		d.inE[e.To] = append(d.inE[e.To], ei)
	}
	// The combined graph is acyclic: both real and pseudo edges point from
	// earlier to strictly later nominal start times, except between
	// mutually exclusive tasks, which carry no edges at all. Sorting by
	// (start, id) therefore yields a topological order.
	d.order = make([]ctg.TaskID, n)
	for i := range d.order {
		d.order[i] = ctg.TaskID(i)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := d.order[j-1], d.order[j]
			if s.Start[a] > s.Start[b] || (s.Start[a] == s.Start[b] && a > b) {
				d.order[j-1], d.order[j] = b, a
			} else {
				break
			}
		}
	}
	for t := 0; t < n; t++ {
		d.exec[t] = s.ExecTime(ctg.TaskID(t))
	}
	return d
}

// refreshExec re-reads the execution time of one task after its speed
// changed.
func (d *dagModel) refreshExec(t ctg.TaskID) { d.exec[t] = d.s.ExecTime(t) }

// negInf marks a path class that does not exist below a node.
var negInf = math.Inf(-1)

// dpResult holds, per task, the longest-path decomposition of the scheduled
// graph (optionally restricted to the edges consistent with one scenario):
//
//	up[v]    — the largest delay of any chain ending just before v
//	downU[v] — the largest remaining delay after v over suffixes containing
//	           NO conditional edge (prob(p, v) = 1 class), or -Inf
//	downC[v] — the same over suffixes containing at least one conditional
//	           edge (prob(p, v) ≠ 1 class), or -Inf
//	probC[v] — the joint branch probability of the argmax downC suffix,
//	           i.e. prob(p_worst, v) of the paper
//
// Backpointers permit reconstructing the argmax chains so that a critical
// path shared by several minterms can be recognized and counted once.
type dpResult struct {
	up, downU, downC, probC []float64
	ubp                     []int  // argmax incoming edge, -1 at chain start
	dbpU, dbpC              []int  // argmax outgoing edge per class, -1 at end
	classA                  []byte // which class wins downAny: 'U' or 'C'
}

// downAny returns max(downU, downC) for v.
func (r *dpResult) downAny(v ctg.TaskID) float64 {
	if r.downU[v] >= r.downC[v] {
		return r.downU[v]
	}
	return r.downC[v]
}

// newDPResult allocates a decomposition for an n-task graph.
func newDPResult(n int) *dpResult {
	return &dpResult{
		up:     make([]float64, n),
		downU:  make([]float64, n),
		downC:  make([]float64, n),
		probC:  make([]float64, n),
		ubp:    make([]int, n),
		dbpU:   make([]int, n),
		dbpC:   make([]int, n),
		classA: make([]byte, n),
	}
}

// run computes the decomposition. assign restricts edges to those whose
// condition the scenario assignment satisfies; nil means the full graph.
//
// Note on truncated suffixes: in a scenario-restricted graph, a fork the
// scenario never assigns has no consistent conditional out-edges, so chains
// "end" there even though the unrestricted graph continues. Such truncated
// suffixes can only shorten candidate delays; since criticality always takes
// the *largest* delay, they never displace a real critical path.
func (d *dagModel) run(assign []int) *dpResult {
	return d.runInto(newDPResult(len(d.exec)), assign)
}

// runInto is run reusing a previously allocated decomposition — the
// stretchers call the DP once per (task, minterm) pair, so buffer reuse is
// what keeps the inner loop allocation-free. Every slot of r is overwritten.
func (d *dagModel) runInto(r *dpResult, assign []int) *dpResult {
	n := len(d.exec)
	g := d.s.G
	ok := func(ei int) bool {
		if assign == nil {
			return true
		}
		c := d.edges[ei].Cond
		if !c.IsConditional() {
			return true
		}
		return assign[g.ForkIndex(c.Branch())] == c.Outcome()
	}

	// Upward pass in topological order.
	for _, v := range d.order {
		r.up[v], r.ubp[v] = 0, -1
		for _, ei := range d.inE[v] {
			if !ok(ei) {
				continue
			}
			u := d.edges[ei].From
			if cand := r.up[u] + d.exec[u] + d.comm[ei]; cand > r.up[v] {
				r.up[v], r.ubp[v] = cand, ei
			}
		}
	}

	// Downward pass in reverse topological order.
	for i := n - 1; i >= 0; i-- {
		v := d.order[i]
		hasOut := false
		for _, ei := range d.outE[v] {
			if ok(ei) {
				hasOut = true
				break
			}
		}
		if !hasOut {
			r.downU[v], r.dbpU[v] = 0, -1
			r.downC[v], r.dbpC[v] = negInf, -1
			r.probC[v] = 0
			r.classA[v] = 'U'
			continue
		}
		r.downU[v], r.dbpU[v] = negInf, -1
		r.downC[v], r.dbpC[v] = negInf, -1
		r.probC[v] = 0
		for _, ei := range d.outE[v] {
			if !ok(ei) {
				continue
			}
			e := d.edges[ei]
			w := e.To
			step := d.comm[ei] + d.exec[w]
			// U class: unconditional edge, continuation also U.
			if !e.Cond.IsConditional() && r.downU[w] > negInf {
				if cand := step + r.downU[w]; cand > r.downU[v] {
					r.downU[v], r.dbpU[v] = cand, ei
				}
			}
			// C class.
			if e.Cond.IsConditional() {
				// The conditional edge itself satisfies the class; the
				// continuation may be anything.
				cont := r.downAny(w)
				if cont > negInf {
					if cand := step + cont; cand > r.downC[v] {
						contProb := 1.0
						if r.classA[w] == 'C' {
							contProb = r.probC[w]
						}
						r.downC[v], r.dbpC[v] = cand, ei
						r.probC[v] = g.CondProb(e.Cond) * contProb
					}
				}
			} else if r.downC[w] > negInf {
				if cand := step + r.downC[w]; cand > r.downC[v] {
					r.downC[v], r.dbpC[v] = cand, ei
					r.probC[v] = r.probC[w]
				}
			}
		}
		if r.downU[v] >= r.downC[v] {
			r.classA[v] = 'U'
		} else {
			r.classA[v] = 'C'
		}
	}
	return r
}

// throughAny returns the largest delay of any chain through v (the paper's
// critical spanning path of step 9): up + exec + max(downU, downC).
func (d *dagModel) throughAny(r *dpResult, v ctg.TaskID) float64 {
	down := r.downAny(v)
	if down == negInf {
		down = 0
	}
	return r.up[v] + d.exec[v] + down
}

// longest returns the longest chain delay in the decomposition (the worst
// path delay of the whole schedule).
func (d *dagModel) longest(r *dpResult) float64 {
	best := 0.0
	for t := range d.exec {
		if l := d.throughAny(r, ctg.TaskID(t)); l > best {
			best = l
		}
	}
	return best
}

// walkCritical traverses the argmax chain through v whose suffix has the
// given class ('U' or 'C'), invoking node for every task on the chain and
// edge for every edge.
func (r *dpResult) walkCritical(d *dagModel, v ctg.TaskID, class byte,
	node func(ctg.TaskID), edge func(ei int)) {
	// Upward walk (prefix, visited from v back to the chain start).
	for u := v; ; {
		node(u)
		ei := r.ubp[u]
		if ei < 0 {
			break
		}
		edge(ei)
		u = d.edges[ei].From
	}
	// Downward walk in the requested class.
	for u := v; ; {
		var ei int
		switch class {
		case 'U':
			ei = r.dbpU[u]
		case 'C':
			ei = r.dbpC[u]
		case 'A':
			class = r.classA[u]
			continue
		}
		if ei < 0 {
			break
		}
		e := d.edges[ei]
		if class == 'C' && e.Cond.IsConditional() {
			class = 'A'
		}
		edge(ei)
		u = e.To
		node(u)
	}
}

// pathSet deduplicates critical-path node sequences so that a chain found
// critical for several minterms is counted once by the heuristic. It
// replaces the former string-signature keys: sequences are interned in a
// reusable int32 arena and looked up by FNV-1a hash with exact sequence
// verification on hash hits, so dedup semantics are identical to string
// comparison with zero steady-state allocation.
type pathSet struct {
	arena []int32 // all interned sequences, concatenated
	// entries hold the interned [start, end) spans as hash-chained nodes:
	// heads maps a hash to the 1-based index of its newest entry and each
	// entry links to the previous one with the same hash. Chaining through a
	// flat slice (instead of map[hash][]span) keeps the steady state
	// allocation-free: reset truncates the slice and clears the map, and
	// re-populating an already-sized map and slice allocates nothing.
	entries []pathSpan
	heads   map[uint64]int32 // hash -> 1-based index into entries (0 = none)
	buf     []int32          // scratch for the sequence being tested
}

// pathSpan is one interned sequence: [start, end) in the arena plus the
// 1-based index of the previous entry with the same hash.
type pathSpan struct {
	start, end int32
	prev       int32
}

// reset clears the set, retaining capacity.
func (p *pathSet) reset() {
	p.arena = p.arena[:0]
	p.entries = p.entries[:0]
	if p.heads == nil {
		p.heads = make(map[uint64]int32)
	} else {
		clear(p.heads)
	}
}

// fnv1a hashes an int32 sequence (FNV-1a over the little-endian bytes).
func fnv1a(seq []int32) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, v := range seq {
		u := uint32(v)
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(u >> shift))
			h *= prime
		}
	}
	return h
}

// addCritical reconstructs the argmax chain through v with the given suffix
// class and adds its node sequence to the set, reporting whether it was new.
func (p *pathSet) addCritical(r *dpResult, d *dagModel, v ctg.TaskID, class byte) bool {
	p.buf = p.buf[:0]
	r.walkCritical(d, v, class, func(u ctg.TaskID) {
		p.buf = append(p.buf, int32(u))
	}, func(int) {})
	h := fnv1a(p.buf)
	for idx := p.heads[h]; idx != 0; {
		span := p.entries[idx-1]
		idx = span.prev
		if int(span.end-span.start) != len(p.buf) {
			continue
		}
		match := true
		for i, u := range p.arena[span.start:span.end] {
			if u != p.buf[i] {
				match = false
				break
			}
		}
		if match {
			return false
		}
	}
	start := int32(len(p.arena))
	p.arena = append(p.arena, p.buf...)
	p.entries = append(p.entries, pathSpan{start: start, end: int32(len(p.arena)), prev: p.heads[h]})
	p.heads[h] = int32(len(p.entries))
	return true
}

// criticalDenominator returns the distributable delay of the argmax chain
// through v with the given suffix class: the execution time of the not yet
// locked tasks plus the (unscalable) communication delay. Locked tasks are
// "released from consideration" (paper §III.A), so the remaining slack is
// shared among the tasks that can still absorb it.
func (r *dpResult) criticalDenominator(d *dagModel, v ctg.TaskID, class byte, locked []bool) float64 {
	denom := 0.0
	r.walkCritical(d, v, class, func(u ctg.TaskID) {
		if !locked[u] {
			denom += d.exec[u]
		}
	}, func(ei int) {
		denom += d.comm[ei]
	})
	return denom
}
