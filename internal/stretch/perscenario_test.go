package stretch

import (
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/sim"
	"ctgdvfs/internal/tgff"
)

func TestPerScenarioNeedsUnstretchedSchedule(t *testing.T) {
	s := prepare(t, 50, 1.5)
	if _, err := Heuristic(s, platform.Continuous(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := PerScenario(s, platform.Continuous()); err == nil {
		t.Fatal("want error on an already-stretched schedule")
	}
}

func TestPerScenarioCausality(t *testing.T) {
	// Scenarios that agree on a task's ancestor forks must assign it the
	// same speed.
	for seed := int64(0); seed < 10; seed++ {
		s := prepare(t, 600+seed, 1.6)
		sp, err := PerScenario(s, platform.Continuous())
		if err != nil {
			t.Fatal(err)
		}
		a := s.A
		anc := ancestorForkSets(s)
		for task := 0; task < s.G.NumTasks(); task++ {
			byKey := map[string]float64{}
			for si := 0; si < a.NumScenarios(); si++ {
				key := ancestorKey(a.Scenario(si).Assign, anc[task])
				if prev, ok := byKey[key]; ok {
					if prev != sp.Speeds[si][task] {
						t.Fatalf("seed %d task %d: speeds %v and %v disagree within knowledge class %q",
							seed, task, prev, sp.Speeds[si][task], key)
					}
				} else {
					byKey[key] = sp.Speeds[si][task]
				}
			}
		}
	}
}

func TestPerScenarioBeatsSingleSpeed(t *testing.T) {
	// Expected energy with scenario-conditioned speeds must never lose to
	// the single-speed heuristic, and should win on graphs with
	// contrasting minterms.
	var single, multi float64
	for seed := int64(0); seed < 12; seed++ {
		sSingle := prepare(t, 700+seed, 1.6)
		resH, err := Heuristic(sSingle, platform.Continuous(), 0)
		if err != nil {
			t.Fatal(err)
		}
		sMulti := prepare(t, 700+seed, 1.6)
		sp, err := PerScenario(sMulti, platform.Continuous())
		if err != nil {
			t.Fatal(err)
		}
		e := ExpectedEnergyWithScenarioSpeeds(sMulti, sp)
		single += resH.ExpectedEnergy
		multi += e
	}
	if multi > single*1.001 {
		t.Fatalf("per-scenario speeds averaged %v, single-speed %v", multi, single)
	}
	if multi > single*0.97 {
		t.Logf("note: per-scenario advantage small on this batch (%v vs %v)", multi, single)
	}
}

func TestPerScenarioMeetsDeadlinesInReplay(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g, p, err := tgff.Generate(tgff.Config{
			Seed: 800 + seed, Nodes: 16 + int(seed%6), PEs: 2 + int(seed%3),
			Branches: 1 + int(seed%3), Category: tgff.ForkJoin,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		s0, err := sched.DLS(a, p, sched.Modified())
		if err != nil {
			t.Fatal(err)
		}
		g2, err := g.WithDeadline(1.4 * s0.Makespan)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := ctg.Analyze(g2)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.DLS(a2, p, sched.Modified())
		if err != nil {
			t.Fatal(err)
		}
		sp, err := PerScenario(s, platform.Continuous())
		if err != nil {
			t.Fatal(err)
		}
		sum, err := sim.ExhaustiveCfg(s, sim.Config{ScenarioSpeeds: sp.Speeds})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Misses > 0 {
			t.Fatalf("seed %d: %d deadline misses under per-scenario speeds (worst %v vs %v)",
				seed, sum.Misses, sum.WorstMakespan, g2.Deadline())
		}
		// The replayed expected energy matches the closed form.
		want := ExpectedEnergyWithScenarioSpeeds(s, sp)
		if diff := sum.ExpectedEnergy - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("seed %d: replay energy %v, closed form %v", seed, sum.ExpectedEnergy, want)
		}
	}
}

func TestPerScenarioSpeedsInRange(t *testing.T) {
	s := prepare(t, 55, 1.8)
	sp, err := PerScenario(s, platform.Continuous())
	if err != nil {
		t.Fatal(err)
	}
	for si := range sp.Speeds {
		for task, v := range sp.Speeds[si] {
			if !(v > 0) || v > 1 {
				t.Fatalf("scenario %d task %d speed %v out of range", si, task, v)
			}
		}
	}
}
