package stretch

import (
	"math"
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/tgff"
)

func uniformPlatform(t *testing.T, tasks, pes int, wcet, energy float64) *platform.Platform {
	t.Helper()
	b := platform.NewBuilder(tasks, pes)
	for i := 0; i < tasks; i++ {
		b.SetUniformTask(i, wcet, energy)
	}
	b.SetAllLinks(1, 0.1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// scheduleChain builds t0->t1->t2 with zero comm on one PE, deadline 60.
func scheduleChain(t *testing.T) *sched.Schedule {
	t.Helper()
	b := ctg.NewBuilder()
	t0 := b.AddTask("", ctg.AndNode)
	t1 := b.AddTask("", ctg.AndNode)
	t2 := b.AddTask("", ctg.AndNode)
	b.AddEdge(t0, t1, 0)
	b.AddEdge(t1, t2, 0)
	g, err := b.Build(60)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	p := uniformPlatform(t, 3, 1, 10, 4)
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHeuristicChainHandComputed(t *testing.T) {
	s := scheduleChain(t)
	res, err := Heuristic(s, platform.Continuous(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Ratio distribution with locked tasks released from the denominator,
	// in order t0, t1, t2:
	// t0: slack 30, distributable 30 → share 10 → speed 0.5; delay 40.
	// t1: slack 20, distributable 20 (t0 locked) → share 10 → 0.5; delay 50.
	// t2: slack 10, distributable 10 → share 10 → speed 0.5; delay 60.
	// This is the energy-optimal uniform scaling for a chain.
	for i := 0; i < 3; i++ {
		if math.Abs(s.Speed[i]-0.5) > 1e-9 {
			t.Fatalf("speed[%d] = %v, want 0.5", i, s.Speed[i])
		}
	}
	if math.Abs(res.WorstDelay-60) > 1e-9 {
		t.Fatalf("WorstDelay = %v, want 60", res.WorstDelay)
	}
	if res.Stretched != 3 {
		t.Fatalf("Stretched = %d, want 3", res.Stretched)
	}
	// Energy: 3 tasks × 4 × 0.5².
	if math.Abs(res.ExpectedEnergy-3) > 1e-9 {
		t.Fatalf("ExpectedEnergy = %v, want 3", res.ExpectedEnergy)
	}
}

func TestNLPBeatsHeuristicOnChain(t *testing.T) {
	sH := scheduleChain(t)
	if _, err := Heuristic(sH, platform.Continuous(), 0); err != nil {
		t.Fatal(err)
	}
	sN := scheduleChain(t)
	resN, err := NLP(sN, platform.Continuous(), NLPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The symmetric optimum stretches every task to t=20 (speed 0.5).
	for i := 0; i < 3; i++ {
		if math.Abs(sN.Speed[i]-0.5) > 0.03 {
			t.Fatalf("NLP speed[%d] = %v, want ≈0.5", i, sN.Speed[i])
		}
	}
	if resN.WorstDelay > 60+1e-6 {
		t.Fatalf("NLP violated deadline: %v", resN.WorstDelay)
	}
	// On a plain chain the heuristic already reaches the uniform optimum,
	// so NLP matches it up to numerical tolerance.
	if resN.ExpectedEnergy > sH.ExpectedEnergy()*1.01 {
		t.Fatalf("NLP energy %v clearly worse than heuristic %v",
			resN.ExpectedEnergy, sH.ExpectedEnergy())
	}
}

// forkSchedule builds fork → {likely arm a, unlikely arm b} → join on a
// single PE with plenty of slack.
func forkSchedule(t *testing.T, pA float64) *sched.Schedule {
	t.Helper()
	b := ctg.NewBuilder()
	f := b.AddTask("fork", ctg.AndNode)
	a1 := b.AddTask("likely", ctg.AndNode)
	b1 := b.AddTask("unlikely", ctg.AndNode)
	j := b.AddTask("join", ctg.OrNode)
	b.AddCondEdge(f, a1, 0, 0)
	b.AddCondEdge(f, b1, 0, 1)
	b.AddEdge(a1, j, 0)
	b.AddEdge(b1, j, 0)
	b.SetBranchProbs(f, []float64{pA, 1 - pA})
	g, err := b.Build(90) // nominal makespan 30 → slack 60
	if err != nil {
		t.Fatal(err)
	}
	an, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	p := uniformPlatform(t, 4, 1, 10, 4)
	s, err := sched.DLS(an, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHeuristicFavorsLikelyBranch(t *testing.T) {
	s := forkSchedule(t, 0.9)
	if _, err := Heuristic(s, platform.Continuous(), 0); err != nil {
		t.Fatal(err)
	}
	// Task 1 (prob 0.9) must be stretched more (lower speed) than task 2
	// (prob 0.1).
	if !(s.Speed[1] < s.Speed[2]) {
		t.Fatalf("likely arm speed %v not below unlikely arm speed %v",
			s.Speed[1], s.Speed[2])
	}
	// Both conditional-arm tasks must receive some slack at all (the
	// interpretation fix for Figure 2 step 5).
	if s.Speed[1] >= 1 || s.Speed[2] >= 1 {
		t.Fatalf("conditional arm tasks unstretched: %v", s.Speed)
	}
}

func TestWorstCaseIgnoresProbabilities(t *testing.T) {
	s := forkSchedule(t, 0.9)
	if _, err := WorstCase(s, platform.Continuous(), 0); err != nil {
		t.Fatal(err)
	}
	// Same wcet, same path structure → same slack share regardless of
	// branch probability... except processing order: the first-processed
	// arm eats slack. Both arms lie on disjoint paths though, so shares
	// are symmetric here.
	if math.Abs(s.Speed[1]-s.Speed[2]) > 1e-9 {
		t.Fatalf("worst-case stretcher differentiated arms: %v vs %v",
			s.Speed[1], s.Speed[2])
	}
}

func TestDeadlinePreservedOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		cat := tgff.ForkJoin
		if seed%2 == 1 {
			cat = tgff.Flat
		}
		g, p, err := tgff.Generate(tgff.Config{
			Seed: seed, Nodes: 14 + int(seed%8), PEs: 2 + int(seed%3),
			Branches: int(seed % 4), Category: cat,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		// Tighten the deadline to 1.6× the DLS makespan so stretching has
		// real constraints.
		s0, err := sched.DLS(a, p, sched.Modified())
		if err != nil {
			t.Fatal(err)
		}
		g2, err := g.WithDeadline(1.6 * s0.Makespan)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := ctg.Analyze(g2)
		if err != nil {
			t.Fatal(err)
		}

		type stretcher struct {
			name string
			run  func(*sched.Schedule) (*Result, error)
		}
		stretchers := []stretcher{
			{"heuristic", func(s *sched.Schedule) (*Result, error) {
				return Heuristic(s, platform.Continuous(), 0)
			}},
			{"worstcase", func(s *sched.Schedule) (*Result, error) {
				return WorstCase(s, platform.Continuous(), 0)
			}},
			{"nlp", func(s *sched.Schedule) (*Result, error) {
				return NLP(s, platform.Continuous(), NLPOptions{MaxIters: 300})
			}},
		}
		for _, st := range stretchers {
			s, err := sched.DLS(a2, p, sched.Modified())
			if err != nil {
				t.Fatal(err)
			}
			nominal := s.ExpectedEnergy()
			res, err := st.run(s)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, st.name, err)
			}
			if res.WorstDelay > g2.Deadline()+1e-6 {
				t.Fatalf("seed %d %s: worst path delay %v exceeds deadline %v",
					seed, st.name, res.WorstDelay, g2.Deadline())
			}
			for task, sp := range s.Speed {
				if !(sp > 0) || sp > 1 {
					t.Fatalf("seed %d %s: task %d speed %v out of range", seed, st.name, task, sp)
				}
			}
			if res.ExpectedEnergy > nominal+1e-9 {
				t.Fatalf("seed %d %s: stretching increased energy %v > %v",
					seed, st.name, res.ExpectedEnergy, nominal)
			}
		}
	}
}

// expectedEnergyUnder evaluates a stretched schedule's expected energy
// against an *independent* probability model (the "true" distribution),
// which is how the non-adaptive algorithm's misprofiled schedules are scored
// in the paper's Tables 4/5.
func expectedEnergyUnder(s *sched.Schedule, truth *ctg.Analysis) float64 {
	sum := 0.0
	for task := 0; task < s.G.NumTasks(); task++ {
		sum += truth.ActivationProb(ctg.TaskID(task)) * s.TaskEnergy(ctg.TaskID(task))
	}
	for ei, e := range s.G.Edges() {
		if ce := s.CommEnergy(ei); ce > 0 {
			both := truth.ActivationSet(e.From).Clone()
			both.IntersectWith(truth.ActivationSet(e.To))
			sum += truth.ProbOfSet(both) * ce
		}
	}
	return sum
}

func TestAccurateProbsBeatWrongProbsOnAverage(t *testing.T) {
	// The core adaptive-framework premise: scheduling+stretching with the
	// true branch probabilities yields lower true expected energy than the
	// same pipeline driven by inverted (wrong) probabilities.
	var accSum, wrongSum float64
	for seed := int64(0); seed < 20; seed++ {
		g, p, err := tgff.Generate(tgff.Config{
			Seed: 100 + seed, Nodes: 20, PEs: 3, Branches: 3,
			Category: tgff.ForkJoin,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		s0, err := sched.DLS(a, p, sched.Modified())
		if err != nil {
			t.Fatal(err)
		}
		g2, err := g.WithDeadline(1.4 * s0.Makespan)
		if err != nil {
			t.Fatal(err)
		}
		// Skew the true distribution so being wrong hurts.
		for _, f := range g2.Forks() {
			if err := g2.SetBranchProbs(f, []float64{0.9, 0.1}); err != nil {
				t.Fatal(err)
			}
		}
		truth, err := ctg.Analyze(g2)
		if err != nil {
			t.Fatal(err)
		}
		sAcc, err := sched.DLS(truth, p, sched.Modified())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Heuristic(sAcc, platform.Continuous(), 0); err != nil {
			t.Fatal(err)
		}
		accSum += expectedEnergyUnder(sAcc, truth)

		gWrong := g2.Clone()
		for _, f := range gWrong.Forks() {
			if err := gWrong.SetBranchProbs(f, []float64{0.1, 0.9}); err != nil {
				t.Fatal(err)
			}
		}
		aWrong, err := ctg.Analyze(gWrong)
		if err != nil {
			t.Fatal(err)
		}
		sWrong, err := sched.DLS(aWrong, p, sched.Modified())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Heuristic(sWrong, platform.Continuous(), 0); err != nil {
			t.Fatal(err)
		}
		wrongSum += expectedEnergyUnder(sWrong, truth)
	}
	if accSum >= wrongSum {
		t.Fatalf("accurate-probability pipeline (%v) not better than misprofiled one (%v)",
			accSum, wrongSum)
	}
}

func TestNLPAtLeastAsGoodOnAverage(t *testing.T) {
	var hSum, nSum float64
	for seed := int64(0); seed < 10; seed++ {
		g, p, err := tgff.Generate(tgff.Config{
			Seed: 300 + seed, Nodes: 16, PEs: 3, Branches: 2,
			Category: tgff.ForkJoin,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		s0, err := sched.DLS(a, p, sched.Modified())
		if err != nil {
			t.Fatal(err)
		}
		g2, err := g.WithDeadline(1.5 * s0.Makespan)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := ctg.Analyze(g2)
		if err != nil {
			t.Fatal(err)
		}
		sH, err := sched.DLS(a2, p, sched.Modified())
		if err != nil {
			t.Fatal(err)
		}
		resH, err := Heuristic(sH, platform.Continuous(), 0)
		if err != nil {
			t.Fatal(err)
		}
		sN, err := sched.DLS(a2, p, sched.Modified())
		if err != nil {
			t.Fatal(err)
		}
		resN, err := NLP(sN, platform.Continuous(), NLPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		hSum += resH.ExpectedEnergy
		nSum += resN.ExpectedEnergy
	}
	if nSum > hSum*1.02 {
		t.Fatalf("NLP average energy %v clearly worse than heuristic %v", nSum, hSum)
	}
}

func TestNLPInfeasibleDeadlineKeepsFullSpeed(t *testing.T) {
	b := ctg.NewBuilder()
	t0 := b.AddTask("", ctg.AndNode)
	t1 := b.AddTask("", ctg.AndNode)
	b.AddEdge(t0, t1, 0)
	g, err := b.Build(5) // two 10-unit tasks cannot meet 5
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	p := uniformPlatform(t, 2, 1, 10, 1)
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []func() (*Result, error){
		func() (*Result, error) { return NLP(s, platform.Continuous(), NLPOptions{MaxIters: 200}) },
		func() (*Result, error) { return Heuristic(s, platform.Continuous(), 0) },
		func() (*Result, error) { return WorstCase(s, platform.Continuous(), 0) },
	} {
		if _, err := run(); err != nil {
			t.Fatal(err)
		}
		if s.Speed[0] != 1 || s.Speed[1] != 1 {
			t.Fatalf("infeasible deadline still stretched: %v", s.Speed)
		}
	}
}

func TestHeuristicWithDiscreteLevels(t *testing.T) {
	s := scheduleChain(t)
	res, err := Heuristic(s, platform.Discrete(0.25, 0.5, 0.75, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Continuous speeds are 0.5 everywhere, which is an exact level.
	for i := 0; i < 3; i++ {
		if s.Speed[i] != 0.5 {
			t.Fatalf("discrete speed[%d] = %v, want 0.5", i, s.Speed[i])
		}
	}
	// With a coarser level set, every assigned speed is an exact level and
	// the deadline still holds (rounding is always upward).
	s2 := scheduleChain(t)
	res2, err := Heuristic(s2, platform.Discrete(0.4, 0.7, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if sp := s2.Speed[i]; sp != 0.4 && sp != 0.7 && sp != 1 {
			t.Fatalf("coarse discrete speed[%d] = %v, not a level", i, sp)
		}
	}
	if res2.WorstDelay > 60 {
		t.Fatalf("coarse discrete stretching violated deadline: %v", res2.WorstDelay)
	}
	if res.WorstDelay > 60 {
		t.Fatalf("discrete stretching violated deadline: %v", res.WorstDelay)
	}
}

func TestHeuristicInvalidDVFS(t *testing.T) {
	s := scheduleChain(t)
	bad := platform.DVFS{MinSpeed: -2}
	if _, err := Heuristic(s, bad, 0); err == nil {
		t.Fatal("want error for invalid DVFS model")
	}
	if _, err := WorstCase(s, bad, 0); err == nil {
		t.Fatal("want error for invalid DVFS model")
	}
	if _, err := NLP(s, bad, NLPOptions{}); err == nil {
		t.Fatal("want error for invalid DVFS model")
	}
}
