package stretch

import (
	"math"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
)

// NLPOptions tunes the nonlinear-programming stretcher. Zero values take the
// documented defaults.
type NLPOptions struct {
	// MaxIters bounds the gradient iterations (default 4000).
	MaxIters int
	// Tol is the relative objective-improvement convergence threshold
	// (default 1e-9).
	Tol float64
	// PenaltyInit and PenaltyGrowth control the quadratic penalty weight
	// (defaults 10 and 1.8, grown when progress stalls).
	PenaltyInit, PenaltyGrowth float64
	// MaxPaths is retained for API stability and ignored (the constraint
	// set is per-node, not per-path).
	MaxPaths int
}

func (o *NLPOptions) applyDefaults() {
	if o.MaxIters == 0 {
		o.MaxIters = 4000
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	if o.PenaltyInit == 0 {
		o.PenaltyInit = 10
	}
	if o.PenaltyGrowth == 0 {
		o.PenaltyGrowth = 1.8
	}
}

// NLP runs the nonlinear-programming stretcher that models reference
// algorithm 2 ([17]): it minimizes the expected energy
//
//	f(t) = Σ_τ prob(τ) · E(τ) · (wcet(τ)/t(τ))²
//
// over per-task execution times t(τ) ∈ [wcet, wcet/minSpeed], subject to the
// deadline on every source→sink chain of the scheduled graph. The
// exponentially many per-path constraints are folded into |V| equivalent
// convex constraints L_v(t) ≤ D, where L_v is the largest chain delay
// through node v (a max of affine functions, computed by longest-path DP);
// max_v L_v is exactly the schedule length, so the two constraint sets
// coincide. The problem is convex (1/t² is convex for t > 0); it is solved
// with a quadratic-penalty subgradient descent with backtracking line search
// followed by a critical-path feasibility repair, converging to the
// constrained optimum as the penalty weight grows. The deliberate
// computational weight of this method — thousands of full passes — is what
// the paper's Table 1 contrasts against the heuristic's single pass
// (≈10⁵× runtime gap on their testbed).
func NLP(s *sched.Schedule, d platform.DVFS, opts NLPOptions) (*Result, error) {
	opts.applyDefaults()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	dag := newDAG(s)
	n := s.G.NumTasks()
	deadline := s.G.Deadline()

	// Fixed per-task data.
	wcet := make([]float64, n)
	weight := make([]float64, n) // prob(τ)·E(τ)·wcet² (objective numerator)
	lo := make([]float64, n)
	hi := make([]float64, n)
	minSpeed := d.MinSpeed
	if minSpeed == 0 {
		minSpeed = platform.DefaultMinSpeed
	}
	for i := 0; i < n; i++ {
		t := ctg.TaskID(i)
		wcet[i] = s.WCET(t)
		weight[i] = s.A.ActivationProb(t) * s.NominalEnergy(t) * wcet[i] * wcet[i]
		lo[i] = wcet[i]
		hi[i] = wcet[i] / minSpeed
	}

	x := append([]float64(nil), wcet...) // start at full speed
	grad := make([]float64, n)
	cand := make([]float64, n)

	objective := func(x []float64) float64 {
		f := 0.0
		for i := range x {
			f += weight[i] / (x[i] * x[i])
		}
		return f
	}
	// decompose evaluates the longest-path DP at x and returns it.
	decompose := func(x []float64) *dpResult {
		copy(dag.exec, x)
		return dag.run(nil)
	}
	violSum := func(r *dpResult) float64 {
		sum := 0.0
		for i := 0; i < n; i++ {
			if v := dag.throughAny(r, ctg.TaskID(i)) - deadline; v > 0 {
				sum += v * v
			}
		}
		return sum
	}
	merit := func(x []float64, mu float64) float64 {
		return objective(x) + mu*violSum(decompose(x))
	}

	// Quadratic-penalty outer loop: minimize merit at the current penalty
	// weight until progress stalls, then raise the weight.
	const maxPenaltyBumps = 40
	mu := opts.PenaltyInit
	prev := merit(x, mu)
	step := 1.0
	bumps := 0
	for iter := 0; iter < opts.MaxIters; iter++ {
		// Subgradient of the merit function at x.
		r := decompose(x)
		for i := range grad {
			grad[i] = -2 * weight[i] / (x[i] * x[i] * x[i])
		}
		for i := 0; i < n; i++ {
			v := dag.throughAny(r, ctg.TaskID(i)) - deadline
			if v <= 0 {
				continue
			}
			// The subgradient of L_i with respect to t is the indicator of
			// the argmax chain through i.
			for _, u := range chainThrough(dag, r, ctg.TaskID(i)) {
				grad[u] += mu * 2 * v
			}
		}
		// Backtracking line search on the merit function, with box
		// projection.
		improvedBy := -1.0
		for try := 0; try < 30; try++ {
			for i := range cand {
				v := x[i] - step*grad[i]
				if v < lo[i] {
					v = lo[i]
				}
				if v > hi[i] {
					v = hi[i]
				}
				cand[i] = v
			}
			if m := merit(cand, mu); m < prev {
				copy(x, cand)
				improvedBy = prev - m
				prev = m
				step *= 1.3
				break
			}
			step *= 0.5
		}
		if improvedBy < 0 || improvedBy < opts.Tol*math.Abs(prev)+1e-15 {
			bumps++
			if bumps > maxPenaltyBumps {
				break
			}
			mu *= opts.PenaltyGrowth
			prev = merit(x, mu)
			step = 1
		}
	}

	// Feasibility repair: shrink the stretch of the critical chain until
	// no chain exceeds the deadline (t = wcet is always feasible when the
	// nominal schedule meets the deadline).
	for pass := 0; pass < 20*n+20; pass++ {
		r := decompose(x)
		worst, worstV := -1, 1e-9
		for i := 0; i < n; i++ {
			if v := dag.throughAny(r, ctg.TaskID(i)) - deadline; v > worstV {
				worst, worstV = i, v
			}
		}
		if worst < 0 {
			break
		}
		chain := chainThrough(dag, r, ctg.TaskID(worst))
		stretchTotal := 0.0
		for _, v := range chain {
			stretchTotal += x[v] - wcet[v]
		}
		if stretchTotal <= 0 {
			break // infeasible even at full speed; nothing to repair
		}
		scale := 1 - worstV/stretchTotal
		if scale < 0 {
			scale = 0
		}
		for _, v := range chain {
			x[v] = wcet[v] + (x[v]-wcet[v])*scale
		}
	}

	// Convert execution times to clamped speeds.
	res := &Result{}
	for i := 0; i < n; i++ {
		speed := d.SpeedForTime(wcet[i], x[i])
		if speed < 1 {
			s.Speed[ctg.TaskID(i)] = speed
			res.Stretched++
		} else {
			s.Speed[ctg.TaskID(i)] = 1
		}
	}
	for t := 0; t < n; t++ {
		dag.refreshExec(ctg.TaskID(t))
	}
	res.ExpectedEnergy = s.ExpectedEnergy()
	res.WorstDelay = dag.longest(dag.run(nil))
	return res, nil
}

// chainThrough reconstructs the argmax chain through v (nodes of the
// longest path containing v) from the DP backpointers.
func chainThrough(dag *dagModel, r *dpResult, v ctg.TaskID) []ctg.TaskID {
	var chain []ctg.TaskID
	for u := v; ; {
		chain = append(chain, u)
		ei := r.ubp[u]
		if ei < 0 {
			break
		}
		u = dag.edges[ei].From
	}
	class := r.classA[v]
	for u := v; ; {
		var ei int
		switch class {
		case 'U':
			ei = r.dbpU[u]
		case 'C':
			ei = r.dbpC[u]
		}
		if ei < 0 {
			break
		}
		e := dag.edges[ei]
		if class == 'C' && e.Cond.IsConditional() {
			class = r.classA[e.To]
		}
		u = e.To
		chain = append(chain, u)
	}
	return chain
}
