package stretch

import (
	"fmt"
	"math"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
)

// Result summarizes a stretching pass.
type Result struct {
	// Stretched counts tasks whose speed dropped below 1.
	Stretched int
	// ExpectedEnergy is the schedule's expected energy after stretching.
	ExpectedEnergy float64
	// WorstDelay is the largest chain delay after stretching; it never
	// exceeds the deadline when the nominal schedule was feasible.
	WorstDelay float64
	// SlackFound sums the positive per-task slack CalculateSlack
	// distributed (time units); SlackUsed sums the execution-time increase
	// actually converted into speed reduction — under a guard band (or a
	// discrete DVFS model snapping to a level) it is below SlackFound, the
	// difference being the margin reserved for overruns. Populated by the
	// heuristic stretchers; the worst-case and NLP baselines leave both
	// zero.
	SlackFound, SlackUsed float64
}

// Observer receives one callback per task processed by the stretching
// heuristic (in DLS task order): the slack CalculateSlack distributed to the
// task and the speed the task ended at. It is the telemetry hook of the
// stretching stage; a nil Observer costs one branch per task.
type Observer func(t ctg.TaskID, slack, speed float64)

// Heuristic runs the paper's online task-stretching heuristic (Figure 2) on
// the schedule, assigning one DVFS speed per task in the DLS task order. The
// schedule's Speed vector is updated in place.
//
// For each task τ (processed in scheduling order and then locked):
//
//	slk1 — for every leaf minterm m ∈ Γ(τ), find among the chains of m
//	       through τ whose suffix still carries branch uncertainty
//	       (prob(p, τ) ≠ 1) the critical one — the largest delay, i.e. the
//	       lowest distributable slack ratio slk(p)/delay(p) — and accumulate
//	       prob(p_worst, τ)·wcet(τ)·ratio·prob(τ). A chain that is critical
//	       for several minterms is counted once (the weights prob(p, τ)
//	       then approximate a distribution over the downstream branch
//	       combinations).
//	slk2 — among the chains through τ with no remaining downstream
//	       uncertainty (prob(p, τ) = 1), take the critical ratio:
//	       wcet(τ)·ratio·prob(τ).
//	slk(τ) = min of the two (each only when applicable), clamped so that no
//	       chain through τ would exceed the deadline (step 9).
//
// The task is stretched by its slack, its speed locked, and the delays every
// later decision sees reflect it (the paper's "update the delay and slack of
// all paths spanning τi").
//
// Interpretation note: the paper's Figure 2 step 5 reads "paths of m where
// prob(m) = 1"; we read it as prob(p, τ) = 1 so that the two buckets
// partition the spanning paths. Under the literal reading, a task living
// only on conditional arms (e.g. τ4 of the paper's own Figure 1) would never
// receive slack, contradicting the stated goal of giving more slack to
// likely tasks; under this reading the worked examples of §III.A hold.
func Heuristic(s *sched.Schedule, d platform.DVFS, maxPaths int) (*Result, error) {
	return heuristicOpts(s, d, maxPaths, false, 0, nil, nil)
}

// HeuristicGuarded is Heuristic with a guard band: a fraction guard ∈ [0, 1]
// of every task's distributed slack is reserved as margin instead of being
// converted into speed reduction (platform.GuardedSpeedForTime), so the
// stretched schedule tolerates bounded execution-time overruns by
// construction at the cost of higher energy. guard = 0 is exactly Heuristic;
// guard = 1 leaves every task at full speed.
func HeuristicGuarded(s *sched.Schedule, d platform.DVFS, maxPaths int, guard float64) (*Result, error) {
	return HeuristicObserved(s, d, maxPaths, guard, nil)
}

// HeuristicObserved is HeuristicGuarded with a per-task telemetry Observer.
// The observer only watches — passing nil is bit-for-bit HeuristicGuarded.
func HeuristicObserved(s *sched.Schedule, d platform.DVFS, maxPaths int, guard float64, obs Observer) (*Result, error) {
	if err := validGuard(guard); err != nil {
		return nil, err
	}
	return heuristicOpts(s, d, maxPaths, false, guard, obs, nil)
}

// validGuard checks a guard-band fraction.
func validGuard(guard float64) error {
	if math.IsNaN(guard) || guard < 0 || guard > 1 {
		return fmt.Errorf("stretch: guard band must be in [0,1], got %v", guard)
	}
	return nil
}

// HeuristicVariant exposes the ablation knob between the two readings of
// Figure 2's ratio denominator: released-tasks (literalRatio=false, the
// default — locked tasks leave the distributable delay, reaching uniform
// scaling on chains) and the literal slk(p)/delay(p) (literalRatio=true —
// shares shrink geometrically along a path, leaving slack unused). See the
// ablation benchmarks for the measured difference.
func HeuristicVariant(s *sched.Schedule, d platform.DVFS, maxPaths int, literalRatio bool) (*Result, error) {
	return heuristicOpts(s, d, maxPaths, literalRatio, 0, nil, nil)
}

func heuristicOpts(s *sched.Schedule, d platform.DVFS, maxPaths int, literalRatio bool, guard float64, obs Observer, cancel CancelFunc) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	_ = maxPaths // retained for API stability; the DP model needs no cap
	dag := newDAG(s)
	locked := make([]bool, s.G.NumTasks())
	scratch := newSlackScratch(s.G.NumTasks())
	res := &Result{}
	for _, t := range s.Order {
		if cancel != nil {
			if err := cancel(); err != nil {
				return nil, err
			}
		}
		slk := calculateSlack(dag, t, locked, literalRatio, scratch)
		if slk > 0 {
			wcet := s.WCET(t)
			res.SlackFound += slk
			speed := d.GuardedSpeedForTime(wcet, wcet+slk, guard)
			if speed < 1 {
				s.Speed[t] = speed
				dag.refreshExec(t)
				res.Stretched++
				res.SlackUsed += wcet/speed - wcet
			}
		}
		if obs != nil {
			obs(t, slk, s.Speed[t])
		}
		// "Stretch τi, lock its schedule and speed": processed tasks leave
		// the distributable portion of every path they span.
		locked[t] = true
	}
	res.ExpectedEnergy = s.ExpectedEnergy()
	res.WorstDelay = dag.longest(dag.run(nil))
	return res, nil
}

// slackScratch holds the buffers calculateSlack reuses across the O(tasks ×
// minterms) inner loop: the full-graph and per-minterm DP decompositions and
// the critical-path dedup set. One per Heuristic call (or per worker when
// minterm loops run in parallel).
type slackScratch struct {
	full, minterm *dpResult
	seen          pathSet
}

func newSlackScratch(n int) *slackScratch {
	return &slackScratch{full: newDPResult(n), minterm: newDPResult(n)}
}

// calculateSlack implements the CalculateSlack(τ) routine of Figure 2 on the
// current delays. The distributable slack ratio of a critical chain is its
// slack over the execution time of its *unlocked* tasks (plus communication)
// — already-stretched tasks are "released from consideration" (§III.A), so
// on a simple chain with a loose deadline the heuristic converges to the
// energy-optimal uniform scaling instead of geometrically shrinking shares.
func calculateSlack(dag *dagModel, t ctg.TaskID, locked []bool, literalRatio bool, scratch *slackScratch) float64 {
	s := dag.s
	a := s.A
	deadline := s.G.Deadline()
	wcet := s.WCET(t)
	probT := a.ActivationProb(t)

	// Full-graph decomposition: slk2 and the step-9 clamp.
	full := dag.runInto(scratch.full, nil)

	// slk1: probability-weighted sum of per-minterm critical chain shares.
	slk1 := 0.0
	slk1Valid := false
	scratch.seen.reset()
	gamma := a.ActivationSet(t)
	gamma.ForEach(func(si int) {
		sc := a.Scenario(si)
		r := dag.runInto(scratch.minterm, sc.Assign)
		if r.downC[t] == negInf {
			return // no chain with downstream uncertainty in this minterm
		}
		slk1Valid = true
		if !scratch.seen.addCritical(r, dag, t, 'C') {
			return // shared critical path: count once
		}
		delay := r.up[t] + dag.exec[t] + r.downC[t]
		denom := delay
		if !literalRatio {
			denom = r.criticalDenominator(dag, t, 'C', locked)
		}
		if ratio := (deadline - delay) / denom; ratio > 0 {
			slk1 += r.probC[t] * wcet * ratio * probT
		}
	})

	// slk2: critical (largest-delay) chain with prob(p, τ) = 1.
	slk2 := math.Inf(1)
	slk2Valid := false
	if full.downU[t] > negInf {
		slk2Valid = true
		delay := full.up[t] + dag.exec[t] + full.downU[t]
		denom := delay
		if !literalRatio {
			denom = full.criticalDenominator(dag, t, 'U', locked)
		}
		slk2 = wcet * (deadline - delay) / denom * probT
	}

	var slk float64
	switch {
	case slk1Valid && slk2Valid:
		slk = math.Min(slk1, slk2)
	case slk1Valid:
		slk = slk1
	case slk2Valid:
		slk = slk2
	default:
		return 0
	}

	// Step 9: never exceed the slack of the worst chain through τ, so the
	// deadline holds on every chain.
	if m := deadline - dag.throughAny(full, t); slk > m {
		slk = m
	}
	if slk < 0 || math.IsInf(slk, 1) {
		return 0
	}
	return slk
}
