package stretch

import (
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
)

// CancelFunc is the cooperative-cancellation hook of the stretching passes: a
// non-nil return aborts the pass with that error at the next checkpoint. The
// intended value is a context's Err method. Cancellation must be monotone —
// once the func returns non-nil it must keep returning non-nil — which every
// context satisfies (Err is sticky).
//
// Checkpoint granularity:
//
//   - the single-speed heuristic polls once per task processed (each task
//     pays one O(minterms × DP) CalculateSlack, the natural unit of work);
//   - the per-scenario pass polls once per scenario inside the parallel
//     fan-out and once after the barrier, so a cancelled run stops within
//     one scenario batch — in-flight scenarios finish, queued ones are
//     skipped — and the error surfaces before the folding stage.
//
// A nil CancelFunc is bit-for-bit the uncancellable entry point.
type CancelFunc func() error

// HeuristicGuardedCancel is HeuristicGuarded with a cooperative-cancellation
// hook polled once per task. A nil cancel is exactly HeuristicGuarded.
func HeuristicGuardedCancel(s *sched.Schedule, d platform.DVFS, maxPaths int, guard float64, cancel CancelFunc) (*Result, error) {
	if err := validGuard(guard); err != nil {
		return nil, err
	}
	return heuristicOpts(s, d, maxPaths, false, guard, nil, cancel)
}

// PerScenarioGuardedCancel is PerScenarioGuarded with a
// cooperative-cancellation hook polled per scenario. A nil cancel is exactly
// PerScenarioGuarded.
func PerScenarioGuardedCancel(s *sched.Schedule, d platform.DVFS, guard float64, cancel CancelFunc) (*ScenarioSpeeds, error) {
	if err := validGuard(guard); err != nil {
		return nil, err
	}
	return perScenarioOpts(s, d, guard, cancel)
}
