package stretch

import (
	"errors"
	"sync/atomic"
	"testing"

	"ctgdvfs/internal/platform"
)

var errCancelled = errors.New("cancelled")

// countingCancel is a monotone cancel source safe for the per-scenario
// parallel fan-out: nil for the first fuse polls, errCancelled forever after.
type countingCancel struct {
	polls atomic.Int64
	fuse  int64
}

func (c *countingCancel) fn() CancelFunc {
	return func() error {
		if c.polls.Add(1) > c.fuse {
			return errCancelled
		}
		return nil
	}
}

func TestHeuristicCancelAbortsWithinOneTask(t *testing.T) {
	s := prepare(t, 42, 1.6)
	cc := &countingCancel{fuse: 2}
	res, err := HeuristicGuardedCancel(s, platform.Continuous(), 0, 0, cc.fn())
	if !errors.Is(err, errCancelled) {
		t.Fatalf("want errCancelled, got %v (res %v)", err, res)
	}
	if res != nil {
		t.Fatal("cancelled stretch returned a result")
	}
	// Polled once per stretched task: the abort lands on poll fuse+1.
	if got := cc.polls.Load(); got != cc.fuse+1 {
		t.Fatalf("polled %d times, want %d (abort within one task)", got, cc.fuse+1)
	}
}

func TestHeuristicCancelCompletedRunIdentical(t *testing.T) {
	want := prepare(t, 43, 1.6)
	wres, err := HeuristicGuarded(want, platform.Continuous(), 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got := prepare(t, 43, 1.6)
	cc := &countingCancel{fuse: 1 << 30}
	gres, err := HeuristicGuardedCancel(got, platform.Continuous(), 0, 0.1, cc.fn())
	if err != nil {
		t.Fatal(err)
	}
	if cc.polls.Load() == 0 {
		t.Fatal("cancel source was never polled")
	}
	if gres.ExpectedEnergy != wres.ExpectedEnergy || gres.SlackUsed != wres.SlackUsed {
		t.Fatalf("result differs: %+v vs %+v", gres, wres)
	}
	for i := range want.Speed {
		if got.Speed[i] != want.Speed[i] {
			t.Fatalf("task %d speed %v != %v", i, got.Speed[i], want.Speed[i])
		}
	}
}

func TestPerScenarioCancelAbortsBeforeFold(t *testing.T) {
	s := prepare(t, 44, 1.6)
	nsc := s.A.NumScenarios()
	cc := &countingCancel{fuse: 0}
	sp, err := PerScenarioGuardedCancel(s, platform.Continuous(), 0, cc.fn())
	if !errors.Is(err, errCancelled) {
		t.Fatalf("want errCancelled, got %v (speeds %v)", err, sp)
	}
	if sp != nil {
		t.Fatal("cancelled per-scenario stretch returned speeds")
	}
	// Promptness bound: every scenario worker polls at most once before
	// bailing, plus the post-barrier poll — never more than one full batch.
	if got := cc.polls.Load(); got > int64(nsc)+1 {
		t.Fatalf("polled %d times across %d scenarios (should abort within one batch)", got, nsc)
	}
}

func TestPerScenarioCancelCompletedRunIdentical(t *testing.T) {
	want := prepare(t, 45, 1.6)
	wsp, err := PerScenarioGuarded(want, platform.Continuous(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got := prepare(t, 45, 1.6)
	cc := &countingCancel{fuse: 1 << 30}
	gsp, err := PerScenarioGuardedCancel(got, platform.Continuous(), 0.1, cc.fn())
	if err != nil {
		t.Fatal(err)
	}
	if cc.polls.Load() == 0 {
		t.Fatal("cancel source was never polled")
	}
	if len(gsp.Speeds) != len(wsp.Speeds) {
		t.Fatalf("scenario count %d != %d", len(gsp.Speeds), len(wsp.Speeds))
	}
	for si := range wsp.Speeds {
		for ti := range wsp.Speeds[si] {
			if gsp.Speeds[si][ti] != wsp.Speeds[si][ti] {
				t.Fatalf("scenario %d task %d: %v != %v", si, ti,
					gsp.Speeds[si][ti], wsp.Speeds[si][ti])
			}
		}
	}
}
