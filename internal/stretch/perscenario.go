package stretch

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
)

// ScenarioSpeeds is a per-scenario DVFS assignment: Speeds[si][t] is the
// speed of task t when leaf scenario si is realized. It is produced by
// PerScenario and consumed by the simulator (sim.Config.ScenarioSpeeds).
type ScenarioSpeeds struct {
	Speeds [][]float64
}

// PerScenario computes a scenario-conditioned speed assignment — an
// extension beyond the paper, whose heuristic fixes a single speed per task
// across all minterms.
//
// The dispatcher may only use information that is causally available: when
// task τ starts, every branch fork that precedes it (through real edges or
// the schedule's serialization) has already resolved, while other forks may
// not have. The speed of τ is therefore conditioned on the outcomes of τ's
// *ancestor* forks only: scenarios that agree on those outcomes must assign
// τ the same speed. Construction:
//
//  1. For every leaf scenario, stretch the scenario's own subgraph — only
//     its active tasks share the slack, inactive tasks and unrealized
//     transfers cost nothing — yielding an ideal per-scenario speed vector.
//  2. Fold causality in: for each task, over every group of scenarios that
//     agree on its ancestor-fork outcomes, take the fastest assigned speed
//     (running faster than a scenario's ideal is always deadline-safe).
//
// The input schedule must be unstretched (all speeds 1); the schedule is
// not modified. Expected energy strictly improves over the single-speed
// heuristic whenever minterm workloads differ, at the cost of a speed
// table of size scenarios × tasks.
func PerScenario(s *sched.Schedule, d platform.DVFS) (*ScenarioSpeeds, error) {
	return perScenarioOpts(s, d, 0, nil)
}

// PerScenarioGuarded is PerScenario with a guard band: a fraction guard of
// every task's per-scenario slack is reserved as overrun margin
// (platform.GuardedSpeedForTime). guard = 0 is exactly PerScenario.
func PerScenarioGuarded(s *sched.Schedule, d platform.DVFS, guard float64) (*ScenarioSpeeds, error) {
	if err := validGuard(guard); err != nil {
		return nil, err
	}
	return perScenarioOpts(s, d, guard, nil)
}

func perScenarioOpts(s *sched.Schedule, d platform.DVFS, guard float64, cancel CancelFunc) (*ScenarioSpeeds, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	for t := range s.Speed {
		if s.Speed[t] != 1 {
			return nil, fmt.Errorf("stretch: PerScenario needs an unstretched schedule (task %d at %v)", t, s.Speed[t])
		}
	}
	a := s.A
	n := s.G.NumTasks()
	base := newDAG(s)

	// Step 1: ideal speeds per scenario. Each leaf minterm stretches an
	// independent subgraph, so the loop fans out over the worker pool with
	// per-worker scratch (graph view + DP buffers); results land in
	// scenario-indexed slots, identical to the serial loop.
	// Cancellation polls per scenario: a worker that observes a cancelled
	// run skips its scenario (the slot stays nil), so a cancelled pass stops
	// within one scenario batch — in-flight scenarios finish, queued ones
	// cost one poll each — and the post-barrier check below surfaces the
	// error before the folding stage ever sees the partial table.
	ideal := par.MapScratch(a.NumScenarios(),
		func() *scenarioScratch { return newScenarioScratch(base) },
		func(scr *scenarioScratch, si int) []float64 {
			if cancel != nil && cancel() != nil {
				return nil
			}
			return scenarioStretch(s, d, si, scr, guard)
		})
	if cancel != nil {
		if err := cancel(); err != nil {
			return nil, err
		}
	}

	// Step 2: causality folding by ancestor-fork signature. Tasks are
	// independent (each writes one speed-table column), so this fans out
	// per task.
	anc := ancestorForkSets(s)
	out := &ScenarioSpeeds{Speeds: make([][]float64, a.NumScenarios())}
	for si := range out.Speeds {
		out.Speeds[si] = append([]float64(nil), ideal[si]...)
	}
	radix := make([]uint64, s.G.NumForks())
	for fi, fork := range s.G.Forks() {
		// Outcomes in [0, k) plus OutcomeUnassigned, shifted to [0, k].
		radix[fi] = uint64(s.G.Outcomes(fork)) + 1
	}
	par.ForEach(n, func(t int) {
		foldTaskSpeeds(a, anc[t], radix, ideal, out.Speeds, t)
	})
	return out, nil
}

// foldTaskSpeeds groups the scenarios by their assignment restricted to the
// task's ancestor forks and assigns every group member the group's fastest
// ideal speed. Groups are keyed by an exact mixed-radix integer encoding of
// the restricted assignment — no string building on the hot path — falling
// back to the string key only if the radix product overflows uint64 (a graph
// that degenerate cannot be enumerated anyway).
func foldTaskSpeeds(a *ctg.Analysis, forks ctg.Bitset, radix []uint64, ideal, speeds [][]float64, t int) {
	prod := uint64(1)
	overflow := false
	forks.ForEach(func(fi int) {
		if prod > math.MaxUint64/radix[fi] {
			overflow = true
			return
		}
		prod *= radix[fi]
	})
	var groups [][]int
	if overflow {
		byStr := make(map[string][]int)
		for si := 0; si < a.NumScenarios(); si++ {
			key := ancestorKey(a.Scenario(si).Assign, forks)
			byStr[key] = append(byStr[key], si)
		}
		for _, sis := range byStr {
			groups = append(groups, sis)
		}
	} else {
		byInt := make(map[uint64][]int)
		for si := 0; si < a.NumScenarios(); si++ {
			assign := a.Scenario(si).Assign
			var key uint64
			forks.ForEach(func(fi int) {
				key = key*radix[fi] + uint64(assign[fi]+1)
			})
			byInt[key] = append(byInt[key], si)
		}
		for _, sis := range byInt {
			groups = append(groups, sis)
		}
	}
	for _, sis := range groups {
		fastest := 0.0
		for _, si := range sis {
			if ideal[si][t] > fastest {
				fastest = ideal[si][t]
			}
		}
		for _, si := range sis {
			speeds[si][t] = fastest
		}
	}
}

// scenarioScratch is the per-worker reusable state of the PerScenario
// stretching loop: a mutable view of the base DAG (cost vectors only; the
// topology is shared read-only), a DP decomposition, and the lock vector.
type scenarioScratch struct {
	base   *dagModel
	view   dagModel
	dp     *dpResult
	locked []bool
}

func newScenarioScratch(base *dagModel) *scenarioScratch {
	n := len(base.exec)
	scr := &scenarioScratch{base: base, view: *base, dp: newDPResult(n), locked: make([]bool, n)}
	scr.view.exec = make([]float64, n)
	scr.view.comm = make([]float64, len(base.comm))
	return scr
}

// load resets the scratch to the scenario's view of the base DAG: only
// active tasks carry execution time and only transfers between active
// endpoints cost.
func (scr *scenarioScratch) load(active ctg.Bitset) {
	base := scr.base
	copy(scr.view.exec, base.exec)
	copy(scr.view.comm, base.comm)
	for t := range scr.view.exec {
		if !active.Get(t) {
			scr.view.exec[t] = 0
		}
	}
	for ei, e := range base.edges {
		if !active.Get(int(e.From)) || !active.Get(int(e.To)) {
			scr.view.comm[ei] = 0
		}
	}
	for t := range scr.locked {
		scr.locked[t] = false
	}
}

// scenarioStretch stretches one scenario's subgraph: only active tasks carry
// execution time, only transfers between active endpoints cost, and the
// whole slack is distributed among the active tasks (activation within the
// scenario is certain, so no probability weighting applies).
func scenarioStretch(s *sched.Schedule, d platform.DVFS, si int, scr *scenarioScratch, guard float64) []float64 {
	sc := s.A.Scenario(si)
	scr.load(sc.Active)
	dag := &scr.view
	deadline := s.G.Deadline()
	n := len(dag.exec)
	speeds := make([]float64, n)
	for t := range speeds {
		speeds[t] = 1
	}
	locked := scr.locked
	for _, t := range s.Order {
		if sc.Active.Get(int(t)) {
			r := dag.runInto(scr.dp, sc.Assign)
			delay := dag.throughAny(r, t)
			if slack := deadline - delay; slack > 0 {
				denom := r.criticalDenominator(dag, t, 'A', locked)
				wcet := s.WCET(t)
				slk := wcet * slack / denom
				if slk > slack {
					slk = slack
				}
				if slk > 0 {
					speed := d.GuardedSpeedForTime(wcet, wcet+slk, guard)
					if speed < 1 {
						speeds[t] = speed
						dag.exec[t] = wcet / speed
					}
				}
			}
		}
		locked[t] = true
	}
	return speeds
}

// ancestorForkSets computes, per task, the set of fork indices that precede
// it through real or schedule-induced pseudo edges — the forks whose
// outcomes are known when the task dispatches.
func ancestorForkSets(s *sched.Schedule) []ctg.Bitset {
	g := s.G
	n := g.NumTasks()
	pred := make([][]ctg.TaskID, n)
	for _, e := range g.Edges() {
		pred[e.To] = append(pred[e.To], e.From)
	}
	for _, e := range s.Pseudo {
		pred[e.To] = append(pred[e.To], e.From)
	}
	// Topological order by nominal start (the same argument as newDAG).
	order := make([]ctg.TaskID, n)
	for i := range order {
		order[i] = ctg.TaskID(i)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if s.Start[a] > s.Start[b] || (s.Start[a] == s.Start[b] && a > b) {
				order[j-1], order[j] = b, a
			} else {
				break
			}
		}
	}
	anc := make([]ctg.Bitset, n)
	for _, t := range order {
		anc[t] = ctg.NewBitset(g.NumForks())
		for _, u := range pred[t] {
			anc[t].UnionWith(anc[u])
			if fi := g.ForkIndex(u); fi >= 0 {
				anc[t].Set(fi)
			}
		}
	}
	return anc
}

// ancestorKey renders a scenario assignment restricted to the given fork
// set.
func ancestorKey(assign []int, forks ctg.Bitset) string {
	var sb strings.Builder
	forks.ForEach(func(fi int) {
		sb.WriteString(strconv.Itoa(fi))
		sb.WriteByte('=')
		sb.WriteString(strconv.Itoa(assign[fi]))
		sb.WriteByte(';')
	})
	return sb.String()
}

// ExpectedEnergyWithScenarioSpeeds evaluates the expected energy of a
// schedule under a per-scenario speed table.
func ExpectedEnergyWithScenarioSpeeds(s *sched.Schedule, sp *ScenarioSpeeds) float64 {
	a := s.A
	total := 0.0
	for si := 0; si < a.NumScenarios(); si++ {
		sc := a.Scenario(si)
		e := 0.0
		sc.Active.ForEach(func(t int) {
			v := sp.Speeds[si][t]
			e += s.NominalEnergy(ctg.TaskID(t)) * v * v
		})
		for ei, edge := range s.G.Edges() {
			if sc.Active.Get(int(edge.From)) && sc.Active.Get(int(edge.To)) {
				e += s.CommEnergy(ei)
			}
		}
		total += sc.Prob * e
	}
	return total
}
