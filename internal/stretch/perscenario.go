package stretch

import (
	"fmt"
	"strconv"
	"strings"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
)

// ScenarioSpeeds is a per-scenario DVFS assignment: Speeds[si][t] is the
// speed of task t when leaf scenario si is realized. It is produced by
// PerScenario and consumed by the simulator (sim.Config.ScenarioSpeeds).
type ScenarioSpeeds struct {
	Speeds [][]float64
}

// PerScenario computes a scenario-conditioned speed assignment — an
// extension beyond the paper, whose heuristic fixes a single speed per task
// across all minterms.
//
// The dispatcher may only use information that is causally available: when
// task τ starts, every branch fork that precedes it (through real edges or
// the schedule's serialization) has already resolved, while other forks may
// not have. The speed of τ is therefore conditioned on the outcomes of τ's
// *ancestor* forks only: scenarios that agree on those outcomes must assign
// τ the same speed. Construction:
//
//  1. For every leaf scenario, stretch the scenario's own subgraph — only
//     its active tasks share the slack, inactive tasks and unrealized
//     transfers cost nothing — yielding an ideal per-scenario speed vector.
//  2. Fold causality in: for each task, over every group of scenarios that
//     agree on its ancestor-fork outcomes, take the fastest assigned speed
//     (running faster than a scenario's ideal is always deadline-safe).
//
// The input schedule must be unstretched (all speeds 1); the schedule is
// not modified. Expected energy strictly improves over the single-speed
// heuristic whenever minterm workloads differ, at the cost of a speed
// table of size scenarios × tasks.
func PerScenario(s *sched.Schedule, d platform.DVFS) (*ScenarioSpeeds, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	for t := range s.Speed {
		if s.Speed[t] != 1 {
			return nil, fmt.Errorf("stretch: PerScenario needs an unstretched schedule (task %d at %v)", t, s.Speed[t])
		}
	}
	a := s.A
	n := s.G.NumTasks()
	base := newDAG(s)

	// Step 1: ideal speeds per scenario.
	ideal := make([][]float64, a.NumScenarios())
	for si := 0; si < a.NumScenarios(); si++ {
		ideal[si] = scenarioStretch(base, s, d, si)
	}

	// Step 2: causality folding by ancestor-fork signature.
	anc := ancestorForkSets(s)
	out := &ScenarioSpeeds{Speeds: make([][]float64, a.NumScenarios())}
	for si := range out.Speeds {
		out.Speeds[si] = append([]float64(nil), ideal[si]...)
	}
	for t := 0; t < n; t++ {
		groups := map[string][]int{}
		for si := 0; si < a.NumScenarios(); si++ {
			key := ancestorKey(a.Scenario(si).Assign, anc[t])
			groups[key] = append(groups[key], si)
		}
		for _, sis := range groups {
			fastest := 0.0
			for _, si := range sis {
				if ideal[si][t] > fastest {
					fastest = ideal[si][t]
				}
			}
			for _, si := range sis {
				out.Speeds[si][t] = fastest
			}
		}
	}
	return out, nil
}

// scenarioStretch stretches one scenario's subgraph: only active tasks carry
// execution time, only transfers between active endpoints cost, and the
// whole slack is distributed among the active tasks (activation within the
// scenario is certain, so no probability weighting applies).
func scenarioStretch(base *dagModel, s *sched.Schedule, d platform.DVFS, si int) []float64 {
	sc := s.A.Scenario(si)
	dag := base.scenarioView(sc.Active)
	deadline := s.G.Deadline()
	n := len(dag.exec)
	speeds := make([]float64, n)
	for t := range speeds {
		speeds[t] = 1
	}
	locked := make([]bool, n)
	for _, t := range s.Order {
		if sc.Active.Get(int(t)) {
			r := dag.run(sc.Assign)
			delay := dag.throughAny(r, t)
			if slack := deadline - delay; slack > 0 {
				denom := r.criticalDenominator(dag, t, 'A', locked)
				wcet := s.WCET(t)
				slk := wcet * slack / denom
				if slk > slack {
					slk = slack
				}
				if slk > 0 {
					speed := d.SpeedForTime(wcet, wcet+slk)
					if speed < 1 {
						speeds[t] = speed
						dag.exec[t] = wcet / speed
					}
				}
			}
		}
		locked[t] = true
	}
	return speeds
}

// scenarioView clones the cost vectors with inactive tasks and unrealized
// transfers zeroed, sharing the immutable topology.
func (d *dagModel) scenarioView(active ctg.Bitset) *dagModel {
	cp := *d
	cp.exec = append([]float64(nil), d.exec...)
	cp.comm = append([]float64(nil), d.comm...)
	for t := range cp.exec {
		if !active.Get(t) {
			cp.exec[t] = 0
		}
	}
	for ei, e := range d.edges {
		if !active.Get(int(e.From)) || !active.Get(int(e.To)) {
			cp.comm[ei] = 0
		}
	}
	return &cp
}

// ancestorForkSets computes, per task, the set of fork indices that precede
// it through real or schedule-induced pseudo edges — the forks whose
// outcomes are known when the task dispatches.
func ancestorForkSets(s *sched.Schedule) []ctg.Bitset {
	g := s.G
	n := g.NumTasks()
	pred := make([][]ctg.TaskID, n)
	for _, e := range g.Edges() {
		pred[e.To] = append(pred[e.To], e.From)
	}
	for _, e := range s.Pseudo {
		pred[e.To] = append(pred[e.To], e.From)
	}
	// Topological order by nominal start (the same argument as newDAG).
	order := make([]ctg.TaskID, n)
	for i := range order {
		order[i] = ctg.TaskID(i)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if s.Start[a] > s.Start[b] || (s.Start[a] == s.Start[b] && a > b) {
				order[j-1], order[j] = b, a
			} else {
				break
			}
		}
	}
	anc := make([]ctg.Bitset, n)
	for _, t := range order {
		anc[t] = ctg.NewBitset(g.NumForks())
		for _, u := range pred[t] {
			anc[t].UnionWith(anc[u])
			if fi := g.ForkIndex(u); fi >= 0 {
				anc[t].Set(fi)
			}
		}
	}
	return anc
}

// ancestorKey renders a scenario assignment restricted to the given fork
// set.
func ancestorKey(assign []int, forks ctg.Bitset) string {
	var sb strings.Builder
	forks.ForEach(func(fi int) {
		sb.WriteString(strconv.Itoa(fi))
		sb.WriteByte('=')
		sb.WriteString(strconv.Itoa(assign[fi]))
		sb.WriteByte(';')
	})
	return sb.String()
}

// ExpectedEnergyWithScenarioSpeeds evaluates the expected energy of a
// schedule under a per-scenario speed table.
func ExpectedEnergyWithScenarioSpeeds(s *sched.Schedule, sp *ScenarioSpeeds) float64 {
	a := s.A
	total := 0.0
	for si := 0; si < a.NumScenarios(); si++ {
		sc := a.Scenario(si)
		e := 0.0
		sc.Active.ForEach(func(t int) {
			v := sp.Speeds[si][t]
			e += s.NominalEnergy(ctg.TaskID(t)) * v * v
		})
		for ei, edge := range s.G.Edges() {
			if sc.Active.Get(int(edge.From)) && sc.Active.Get(int(edge.To)) {
				e += s.CommEnergy(ei)
			}
		}
		total += sc.Prob * e
	}
	return total
}
