package stretch

import (
	"testing"

	"ctgdvfs/internal/par"
	"ctgdvfs/internal/platform"
)

// TestPerScenarioParallelMatchesSerial pins the determinism contract of the
// parallel scenario engine: per-minterm stretching on one worker and on many
// workers must produce bit-for-bit identical speed tables. Run under -race
// this also exercises the scratch-buffer isolation between workers.
func TestPerScenarioParallelMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		s := prepare(t, 900+seed, 1.6)

		prev := par.SetLimit(1)
		serial, err := PerScenario(s, platform.Continuous())
		if err != nil {
			par.SetLimit(prev)
			t.Fatal(err)
		}
		// Force more workers than the container may have cores, so the
		// concurrent path runs even on a single-CPU host.
		par.SetLimit(4)
		parallel, err := PerScenario(s, platform.Continuous())
		par.SetLimit(prev)
		if err != nil {
			t.Fatal(err)
		}

		if len(serial.Speeds) != len(parallel.Speeds) {
			t.Fatalf("seed %d: %d vs %d scenarios", seed, len(serial.Speeds), len(parallel.Speeds))
		}
		for si := range serial.Speeds {
			for task, v := range serial.Speeds[si] {
				if parallel.Speeds[si][task] != v {
					t.Fatalf("seed %d scenario %d task %d: serial %v, parallel %v",
						seed, si, task, v, parallel.Speeds[si][task])
				}
			}
		}
	}
}
