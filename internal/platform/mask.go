package platform

import (
	"fmt"
	"strings"
)

// Mask is a hardware-availability view over a Platform: which processing
// elements are alive and which directed links are up. The zero value (nil
// slices) means "everything available" — the healthy platform. Masks are the
// currency of the degraded-mode story: a failure timeline (internal/faults)
// produces one per CTG instance, Platform.Restrict applies it, the schedulers
// plan around it, and the adaptive manager keys its memoized schedules by it
// so degraded and healthy schedules never collide.
type Mask struct {
	// PEs marks each processing element alive (true) or dead (false).
	// Nil means all PEs are alive.
	PEs []bool
	// Links marks each directed link [from][to] up (true) or down (false).
	// Nil means all links are up; diagonal entries are ignored (local
	// communication never uses a link).
	Links [][]bool
}

// FullMask returns a mask with every PE alive and every link up, sized for
// numPEs processing elements. Mutating the result never affects the platform.
func FullMask(numPEs int) Mask {
	m := Mask{PEs: make([]bool, numPEs), Links: make([][]bool, numPEs)}
	for i := range m.PEs {
		m.PEs[i] = true
		m.Links[i] = make([]bool, numPEs)
		for j := range m.Links[i] {
			m.Links[i][j] = true
		}
	}
	return m
}

// IsFull reports whether the mask hides nothing: every listed PE alive and
// every listed link up (nil slices count as full).
func (m Mask) IsFull() bool {
	for _, alive := range m.PEs {
		if !alive {
			return false
		}
	}
	for i, row := range m.Links {
		for j, up := range row {
			if i != j && !up {
				return false
			}
		}
	}
	return true
}

// NumAlive returns the number of alive PEs under the mask, given the
// platform's PE count (needed because a nil PEs slice means "all alive").
func (m Mask) NumAlive(numPEs int) int {
	if m.PEs == nil {
		return numPEs
	}
	n := 0
	for _, alive := range m.PEs {
		if alive {
			n++
		}
	}
	return n
}

// PEAlive reports whether the PE is alive under the mask (out-of-range
// indices and nil masks are alive).
func (m Mask) PEAlive(pe int) bool {
	if m.PEs == nil || pe < 0 || pe >= len(m.PEs) {
		return true
	}
	return m.PEs[pe]
}

// LinkUp reports whether the directed link is up under the mask. A link
// touching a dead PE is down regardless of the link entry.
func (m Mask) LinkUp(i, j int) bool {
	if i == j {
		return true
	}
	if !m.PEAlive(i) || !m.PEAlive(j) {
		return false
	}
	if m.Links == nil || i < 0 || i >= len(m.Links) || j < 0 || j >= len(m.Links[i]) {
		return true
	}
	return m.Links[i][j]
}

// Intersect returns the mask under which a PE is alive (and a link up) only
// when both m and o agree, for a platform with numPEs processing elements.
// It is the composition law for independent restrictions — a consolidation
// partition and a power-budget revocation, say — which Platform.Restrict
// alone cannot express: Restrict replaces the availability state wholesale,
// so callers layering masks must intersect them first.
func (m Mask) Intersect(o Mask, numPEs int) Mask {
	out := FullMask(numPEs)
	for pe := range out.PEs {
		out.PEs[pe] = m.PEAlive(pe) && o.PEAlive(pe)
	}
	for i := range out.Links {
		for j := range out.Links[i] {
			if i != j {
				out.Links[i][j] = m.LinkUp(i, j) && o.LinkUp(i, j)
			}
		}
	}
	return out
}

// Equal reports whether two masks describe the same availability state for a
// platform with numPEs processing elements (nil and explicit all-true
// representations compare equal).
func (m Mask) Equal(o Mask, numPEs int) bool {
	for pe := 0; pe < numPEs; pe++ {
		if m.PEAlive(pe) != o.PEAlive(pe) {
			return false
		}
	}
	for i := 0; i < numPEs; i++ {
		for j := 0; j < numPEs; j++ {
			if i != j && m.LinkUp(i, j) != o.LinkUp(i, j) {
				return false
			}
		}
	}
	return true
}

// Key renders the mask as a compact byte string for use in schedule-cache
// keys: one 'M' marker byte, one availability byte per PE, then one byte per
// down link (pair-encoded) — only emitted when something is actually masked,
// so healthy masks key to "" and reuse pre-failure cache entries verbatim.
// The 'M' marker cannot collide with the IEEE-754 guard-band suffix: 0x4D as
// a leading exponent byte would encode a float around 1e64, far outside the
// guard's [0,1] range.
func (m Mask) Key(numPEs int) string {
	if m.IsFull() {
		return ""
	}
	var b strings.Builder
	b.WriteByte('M')
	for pe := 0; pe < numPEs; pe++ {
		if m.PEAlive(pe) {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
	}
	for i := 0; i < numPEs; i++ {
		for j := 0; j < numPEs; j++ {
			if i != j && m.PEAlive(i) && m.PEAlive(j) && !m.LinkUp(i, j) {
				b.WriteByte(byte(i))
				b.WriteByte(byte(j))
			}
		}
	}
	return b.String()
}

// String renders the mask for error messages and logs.
func (m Mask) String() string {
	var dead, down []string
	for pe, alive := range m.PEs {
		if !alive {
			dead = append(dead, fmt.Sprintf("%d", pe))
		}
	}
	for i, row := range m.Links {
		for j, up := range row {
			if i != j && !up {
				down = append(down, fmt.Sprintf("%d->%d", i, j))
			}
		}
	}
	if len(dead) == 0 && len(down) == 0 {
		return "mask{healthy}"
	}
	return fmt.Sprintf("mask{dead PEs [%s], down links [%s]}",
		strings.Join(dead, " "), strings.Join(down, " "))
}

// InfeasibleMaskError is the typed rejection of an availability mask no
// schedule can satisfy — most importantly a mask with no surviving PE.
// Callers detect it with errors.As to distinguish "this topology cannot host
// the workload" from programming errors.
type InfeasibleMaskError struct {
	// Reason describes what makes the mask infeasible.
	Reason string
}

func (e *InfeasibleMaskError) Error() string {
	return "platform: infeasible availability mask: " + e.Reason
}

// Restrict returns a view of the platform with the mask applied: dead PEs and
// down links are remembered and reported via PEAlive/LinkUp, and the cached
// per-task average WCET is recomputed over the surviving PEs (so static
// levels and the DLS delta term reflect the hardware that can actually run
// the task). A full mask returns the receiver unchanged. A mask with no
// surviving PE is rejected with *InfeasibleMaskError. The receiver is never
// mutated; the returned platform shares the immutable cost tables.
func (p *Platform) Restrict(m Mask) (*Platform, error) {
	if m.PEs != nil && len(m.PEs) != p.numPEs {
		return nil, fmt.Errorf("platform: mask sized for %d PEs, platform has %d", len(m.PEs), p.numPEs)
	}
	if m.Links != nil && len(m.Links) != p.numPEs {
		return nil, fmt.Errorf("platform: link mask sized for %d PEs, platform has %d", len(m.Links), p.numPEs)
	}
	if m.IsFull() {
		return p, nil
	}
	if m.NumAlive(p.numPEs) == 0 {
		return nil, &InfeasibleMaskError{Reason: "no surviving PE"}
	}
	cp := *p
	cp.alive = make([]bool, p.numPEs)
	for pe := range cp.alive {
		cp.alive[pe] = m.PEAlive(pe)
	}
	cp.linkUp = make([][]bool, p.numPEs)
	for i := range cp.linkUp {
		cp.linkUp[i] = make([]bool, p.numPEs)
		for j := range cp.linkUp[i] {
			cp.linkUp[i][j] = m.LinkUp(i, j)
		}
	}
	// Average WCET over the survivors: the degraded scheduler's levels and
	// delta terms should rank PEs against the hardware that remains.
	alive := m.NumAlive(p.numPEs)
	cp.avgWCET = make([]float64, p.numTasks)
	for t := 0; t < p.numTasks; t++ {
		sum := 0.0
		for pe := 0; pe < p.numPEs; pe++ {
			if cp.alive[pe] {
				sum += p.wcet[t][pe]
			}
		}
		cp.avgWCET[t] = sum / float64(alive)
	}
	return &cp, nil
}

// PEAlive reports whether the PE is available on this (possibly restricted)
// platform. Unrestricted platforms report every PE alive.
func (p *Platform) PEAlive(pe int) bool {
	if p.alive == nil {
		return true
	}
	return p.alive[pe]
}

// LinkUp reports whether the directed link from PE i to PE j is available.
// Local "links" (i == j) are always up; links touching a dead PE are down.
func (p *Platform) LinkUp(i, j int) bool {
	if i == j {
		return true
	}
	if p.alive != nil && (!p.alive[i] || !p.alive[j]) {
		return false
	}
	if p.linkUp == nil {
		return true
	}
	return p.linkUp[i][j]
}

// NumAlivePEs returns the number of available PEs (all of them on an
// unrestricted platform).
func (p *Platform) NumAlivePEs() int {
	if p.alive == nil {
		return p.numPEs
	}
	n := 0
	for _, a := range p.alive {
		if a {
			n++
		}
	}
	return n
}

// Restricted reports whether the platform carries an availability mask.
func (p *Platform) Restricted() bool { return p.alive != nil || p.linkUp != nil }

// AvailabilityMask returns the platform's availability state as a Mask
// (a full mask on unrestricted platforms).
func (p *Platform) AvailabilityMask() Mask {
	m := FullMask(p.numPEs)
	for pe := range m.PEs {
		m.PEs[pe] = p.PEAlive(pe)
	}
	for i := range m.Links {
		for j := range m.Links[i] {
			if i != j {
				m.Links[i][j] = p.LinkUp(i, j)
			}
		}
	}
	return m
}
