package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func buildSmall(t *testing.T) *Platform {
	t.Helper()
	p, err := NewBuilder(2, 3).
		SetTask(0, []float64{10, 20, 30}, []float64{5, 4, 3}).
		SetTask(1, []float64{1, 2, 3}, []float64{1, 1, 1}).
		SetAllLinks(2, 0.5).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderBasics(t *testing.T) {
	p := buildSmall(t)
	if p.NumTasks() != 2 || p.NumPEs() != 3 {
		t.Fatalf("dims = %d×%d", p.NumTasks(), p.NumPEs())
	}
	if p.WCET(0, 1) != 20 || p.Energy(0, 2) != 3 {
		t.Fatal("WCET/Energy wrong")
	}
	if p.AvgWCET(0) != 20 {
		t.Fatalf("AvgWCET = %v, want 20", p.AvgWCET(0))
	}
	if p.BestPE(0) != 0 || p.MinWCET(0) != 10 {
		t.Fatal("BestPE/MinWCET wrong")
	}
	if p.Bandwidth(0, 1) != 2 {
		t.Fatal("Bandwidth wrong")
	}
}

func TestCommCosts(t *testing.T) {
	p := buildSmall(t)
	if got := p.CommTime(10, 0, 1); got != 5 {
		t.Fatalf("CommTime = %v, want 5", got)
	}
	if got := p.CommTime(10, 1, 1); got != 0 {
		t.Fatalf("local CommTime = %v, want 0", got)
	}
	if got := p.CommTime(0, 0, 1); got != 0 {
		t.Fatalf("zero-volume CommTime = %v, want 0", got)
	}
	if got := p.CommEnergy(10, 0, 1); got != 5 {
		t.Fatalf("CommEnergy = %v, want 5", got)
	}
	if got := p.CommEnergy(10, 2, 2); got != 0 {
		t.Fatalf("local CommEnergy = %v, want 0", got)
	}
}

func TestBuilderValidation(t *testing.T) {
	cases := []struct {
		name string
		b    *Builder
	}{
		{"zero tasks", NewBuilder(0, 1)},
		{"zero PEs", NewBuilder(1, 0)},
		{"task out of range", NewBuilder(1, 1).SetTask(5, []float64{1}, []float64{1})},
		{"wrong widths", NewBuilder(1, 2).SetTask(0, []float64{1}, []float64{1, 1})},
		{"zero wcet", NewBuilder(1, 1).SetTask(0, []float64{0}, []float64{1})},
		{"negative energy", NewBuilder(1, 1).SetTask(0, []float64{1}, []float64{-1})},
		{"nan wcet", NewBuilder(1, 1).SetTask(0, []float64{math.NaN()}, []float64{1})},
		{"self link", NewBuilder(1, 2).SetUniformTask(0, 1, 1).SetLink(0, 0, 1, 1)},
		{"zero bandwidth", NewBuilder(1, 2).SetUniformTask(0, 1, 1).SetLink(0, 1, 0, 1)},
		{"missing task", NewBuilder(2, 1).SetUniformTask(0, 1, 1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := c.b.Build(); err == nil {
				t.Fatalf("want error")
			}
		})
	}
}

func TestBuilderErrorSticky(t *testing.T) {
	b := NewBuilder(1, 1).SetTask(9, []float64{1}, []float64{1})
	// Later valid calls must not clear the error.
	b.SetUniformTask(0, 1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("builder error must stick")
	}
}

func TestBuilderConsumed(t *testing.T) {
	b := NewBuilder(1, 1).SetUniformTask(0, 1, 1)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("second Build must fail")
	}
}

func TestDVFSContinuous(t *testing.T) {
	d := Continuous()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.Clamp(0.5); got != 0.5 {
		t.Fatalf("Clamp(0.5) = %v", got)
	}
	if got := d.Clamp(2); got != 1 {
		t.Fatalf("Clamp(2) = %v, want 1", got)
	}
	if got := d.Clamp(0.0001); got != DefaultMinSpeed {
		t.Fatalf("Clamp(0.0001) = %v, want %v", got, DefaultMinSpeed)
	}
	if got := d.Clamp(math.NaN()); got != 1 {
		t.Fatalf("Clamp(NaN) = %v, want 1", got)
	}
	if got := d.ExecTime(10, 0.5); got != 20 {
		t.Fatalf("ExecTime = %v, want 20", got)
	}
	if got := d.ExecEnergy(8, 0.5); got != 2 {
		t.Fatalf("ExecEnergy = %v, want 2", got)
	}
	if got := d.SpeedForTime(10, 40); got != 0.25 {
		t.Fatalf("SpeedForTime = %v, want 0.25", got)
	}
	if got := d.SpeedForTime(10, 0); got != 1 {
		t.Fatalf("SpeedForTime(zero budget) = %v, want 1", got)
	}
}

func TestDVFSDiscrete(t *testing.T) {
	d := Discrete(1, 0.25, 0.5, 0.75)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rounds up for deadline safety.
	if got := d.Clamp(0.3); got != 0.5 {
		t.Fatalf("Clamp(0.3) = %v, want 0.5", got)
	}
	if got := d.Clamp(0.75); got != 0.75 {
		t.Fatalf("Clamp(0.75) = %v, want 0.75", got)
	}
	if got := d.Clamp(0.8); got != 1 {
		t.Fatalf("Clamp(0.8) = %v, want 1", got)
	}
	if got := d.Clamp(0.01); got != 0.25 {
		t.Fatalf("Clamp(0.01) = %v, want 0.25", got)
	}
}

func TestDVFSValidation(t *testing.T) {
	bad := []DVFS{
		{MinSpeed: -0.1},
		{MinSpeed: 1.5},
		Discrete(0.5, 0.75), // missing full speed
		Discrete(0, 1),
		Discrete(1.5, 1),
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Fatalf("case %d: want validation error", i)
		}
	}
}

// Property: for any clamped speed, energy decreases and time increases
// monotonically as the speed drops, and energy·time ≥ wcet·E·s (sanity of
// the quadratic model).
func TestDVFSMonotonicityProperty(t *testing.T) {
	d := Continuous()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		sa := d.Clamp(math.Abs(a))
		sb := d.Clamp(math.Abs(b))
		if sa > sb {
			sa, sb = sb, sa
		}
		const wcet, e = 10, 4
		return d.ExecTime(wcet, sa) >= d.ExecTime(wcet, sb) &&
			d.ExecEnergy(e, sa) <= d.ExecEnergy(e, sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
