package platform

import (
	"fmt"
	"math"
	"sort"
)

// DefaultMinSpeed is the lowest normalized speed a task may be scaled to.
// A floor exists both physically (leakage and minimum operating voltage)
// and numerically (stretching to speed → 0 would take unbounded time).
const DefaultMinSpeed = 0.05

// DVFS models dynamic voltage and frequency scaling of a PE with the
// paper's unit-capacitance, V ∝ f assumptions:
//
//	time(s)   = WCET / s
//	energy(s) = E_nominal · s²
//
// for normalized speed s ∈ [MinSpeed, 1]. With Levels set, only the listed
// discrete speeds are available (an extension beyond the paper, which uses
// continuous scaling); speeds are rounded *up* so deadlines stay safe.
type DVFS struct {
	// MinSpeed is the lowest allowed speed; zero means DefaultMinSpeed.
	MinSpeed float64
	// Levels, when non-empty, restricts speeds to these values (each in
	// (0, 1], sorted ascending by Validate).
	Levels []float64
}

// Continuous is the paper's DVFS model: any speed in [DefaultMinSpeed, 1].
func Continuous() DVFS { return DVFS{} }

// Discrete returns a DVFS model restricted to the given speed levels.
func Discrete(levels ...float64) DVFS {
	return DVFS{Levels: append([]float64(nil), levels...)}
}

// Validate checks the model and normalizes it (sorts levels). It must be
// called (directly or via the schedulers, which call it) before Clamp.
func (d *DVFS) Validate() error {
	if d.MinSpeed == 0 {
		d.MinSpeed = DefaultMinSpeed
	}
	if d.MinSpeed < 0 || d.MinSpeed > 1 {
		return fmt.Errorf("platform: invalid MinSpeed %v", d.MinSpeed)
	}
	if len(d.Levels) > 0 {
		sort.Float64s(d.Levels)
		for _, l := range d.Levels {
			if !(l > 0) || l > 1 {
				return fmt.Errorf("platform: invalid DVFS level %v", l)
			}
		}
		if d.Levels[len(d.Levels)-1] != 1 {
			return fmt.Errorf("platform: DVFS levels must include full speed 1, got max %v", d.Levels[len(d.Levels)-1])
		}
	}
	return nil
}

// Clamp maps a desired speed to an allowed one: at least MinSpeed, at most
// 1, and — with discrete levels — rounded up to the next level so that the
// task never runs slower than requested (deadline safety).
func (d DVFS) Clamp(s float64) float64 {
	minSpeed := d.MinSpeed
	if minSpeed == 0 {
		minSpeed = DefaultMinSpeed
	}
	if math.IsNaN(s) || s > 1 {
		s = 1
	}
	if s < minSpeed {
		s = minSpeed
	}
	if len(d.Levels) == 0 {
		return s
	}
	// Round up to the next discrete level.
	i := sort.SearchFloat64s(d.Levels, s)
	if i == len(d.Levels) {
		i--
	}
	return d.Levels[i]
}

// ExecTime returns the execution time of a task with the given full-speed
// WCET when run at speed s.
func (d DVFS) ExecTime(wcet, s float64) float64 { return wcet / s }

// ExecEnergy returns the energy of a task with the given nominal energy
// when run at speed s.
func (d DVFS) ExecEnergy(nominal, s float64) float64 { return nominal * s * s }

// SpeedForTime returns the (clamped) speed required to finish a task with
// the given full-speed WCET within the given time budget.
func (d DVFS) SpeedForTime(wcet, budget float64) float64 {
	if budget <= 0 {
		return 1
	}
	return d.Clamp(wcet / budget)
}

// GuardedSpeedForTime is SpeedForTime with a guard band: a fraction guard of
// the slack (budget − wcet) is reserved as margin rather than converted to
// speed reduction, so the task nominally finishes guard·slack early and a
// bounded execution-time overrun is absorbed before the budget is breached.
// guard ≤ 0 reproduces SpeedForTime exactly; guard ≥ 1 reserves all slack
// (full speed); NaN guards are treated as 0.
func (d DVFS) GuardedSpeedForTime(wcet, budget, guard float64) float64 {
	if guard > 0 && budget > wcet {
		if guard > 1 {
			guard = 1
		}
		budget = wcet + (budget-wcet)*(1-guard)
	}
	return d.SpeedForTime(wcet, budget)
}
