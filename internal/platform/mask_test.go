package platform

import (
	"errors"
	"math"
	"testing"
)

// maskTestPlatform builds a 3-task × 3-PE heterogeneous platform.
func maskTestPlatform(t *testing.T) *Platform {
	t.Helper()
	b := NewBuilder(3, 3)
	b.SetTask(0, []float64{1, 2, 3}, []float64{3, 2, 1})
	b.SetTask(1, []float64{2, 1, 2}, []float64{1, 1, 1})
	b.SetTask(2, []float64{3, 3, 1}, []float64{2, 2, 2})
	b.SetAllLinks(2, 0.5)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFullMaskRestrictIsIdentity(t *testing.T) {
	p := maskTestPlatform(t)
	r, err := p.Restrict(FullMask(3))
	if err != nil {
		t.Fatal(err)
	}
	if r != p {
		t.Fatal("Restrict(full) must return the receiver unchanged")
	}
	if p.Restricted() {
		t.Fatal("healthy platform must not report Restricted")
	}
	if got := p.NumAlivePEs(); got != 3 {
		t.Fatalf("NumAlivePEs = %d, want 3", got)
	}
	if !p.PEAlive(1) || !p.LinkUp(0, 2) {
		t.Fatal("healthy platform must report full availability")
	}
}

func TestRestrictDeadPE(t *testing.T) {
	p := maskTestPlatform(t)
	m := FullMask(3)
	m.PEs[1] = false
	r, err := p.Restrict(m)
	if err != nil {
		t.Fatal(err)
	}
	if r.PEAlive(1) {
		t.Fatal("PE 1 must be dead on the restricted view")
	}
	if !r.Restricted() || r.NumAlivePEs() != 2 {
		t.Fatalf("restricted view: Restricted=%v alive=%d", r.Restricted(), r.NumAlivePEs())
	}
	// Links touching the dead PE are down; the rest stay up.
	if r.LinkUp(0, 1) || r.LinkUp(1, 2) {
		t.Fatal("links touching a dead PE must be down")
	}
	if !r.LinkUp(0, 2) || !r.LinkUp(2, 0) {
		t.Fatal("links between survivors must stay up")
	}
	// avgWCET is recomputed over survivors: task 0 has WCET {1,2,3}, so the
	// survivor mean over PEs {0,2} is 2, not the healthy 2.
	if got, want := r.AvgWCET(0), (1.0+3.0)/2; got != want {
		t.Fatalf("survivor AvgWCET = %v, want %v", got, want)
	}
	// The original platform is untouched.
	if !p.PEAlive(1) || p.AvgWCET(0) != 2 {
		t.Fatal("Restrict mutated the receiver")
	}
	// BestPE skips the dead PE: task 1 is fastest on dead PE 1, so the
	// restricted best is a survivor.
	if got := r.BestPE(1); got == 1 {
		t.Fatal("BestPE returned a dead PE")
	}
	if got := p.BestPE(1); got != 1 {
		t.Fatalf("healthy BestPE = %d, want 1", got)
	}
}

func TestRestrictLinkOutage(t *testing.T) {
	p := maskTestPlatform(t)
	m := FullMask(3)
	m.Links[0][2] = false
	r, err := p.Restrict(m)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkUp(0, 2) {
		t.Fatal("link 0->2 must be down")
	}
	if !r.LinkUp(2, 0) {
		t.Fatal("the reverse link is independent and must stay up")
	}
	if r.NumAlivePEs() != 3 {
		t.Fatal("a link outage must not kill PEs")
	}
}

func TestRestrictRejectsAllDead(t *testing.T) {
	p := maskTestPlatform(t)
	m := FullMask(3)
	for pe := range m.PEs {
		m.PEs[pe] = false
	}
	_, err := p.Restrict(m)
	var ie *InfeasibleMaskError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InfeasibleMaskError, got %v", err)
	}
}

func TestRestrictRejectsWrongSize(t *testing.T) {
	p := maskTestPlatform(t)
	if _, err := p.Restrict(Mask{PEs: []bool{true}}); err == nil {
		t.Fatal("undersized mask accepted")
	}
	if _, err := p.Restrict(Mask{Links: make([][]bool, 5)}); err == nil {
		t.Fatal("oversized link mask accepted")
	}
}

func TestMaskKeyAndEqual(t *testing.T) {
	full := FullMask(3)
	if full.Key(3) != "" {
		t.Fatal("full mask must key to the empty string (pre-failure cache compatibility)")
	}
	if !(Mask{}).Equal(full, 3) {
		t.Fatal("zero mask and explicit full mask must compare equal")
	}
	dead := FullMask(3)
	dead.PEs[2] = false
	link := FullMask(3)
	link.Links[1][0] = false
	keys := map[string]bool{full.Key(3): true}
	for _, m := range []Mask{dead, link} {
		k := m.Key(3)
		if k == "" || keys[k] {
			t.Fatalf("mask %v key %q not distinct", m, k)
		}
		keys[k] = true
		if m.Equal(full, 3) {
			t.Fatalf("degraded mask %v compares equal to full", m)
		}
	}
	if dead.Key(3)[0] != 'M' {
		t.Fatal("mask keys must carry the 'M' marker byte")
	}
}

func TestBuilderRejectsNonFiniteInputs(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Builder
	}{
		{"inf energy", func() *Builder {
			return NewBuilder(1, 2).SetTask(0, []float64{1, 1}, []float64{math.Inf(1), 1})
		}},
		{"nan energy", func() *Builder {
			return NewBuilder(1, 2).SetTask(0, []float64{1, 1}, []float64{math.NaN(), 1})
		}},
		{"negative energy", func() *Builder {
			return NewBuilder(1, 2).SetTask(0, []float64{1, 1}, []float64{-1, 1})
		}},
		{"inf wcet", func() *Builder {
			return NewBuilder(1, 2).SetTask(0, []float64{math.Inf(1), 1}, []float64{1, 1})
		}},
		{"nan wcet", func() *Builder {
			return NewBuilder(1, 2).SetTask(0, []float64{math.NaN(), 1}, []float64{1, 1})
		}},
		{"zero wcet", func() *Builder {
			return NewBuilder(1, 2).SetTask(0, []float64{0, 1}, []float64{1, 1})
		}},
		{"negative wcet", func() *Builder {
			return NewBuilder(1, 2).SetTask(0, []float64{-2, 1}, []float64{1, 1})
		}},
		{"inf bandwidth", func() *Builder {
			return NewBuilder(1, 2).SetUniformTask(0, 1, 1).SetLink(0, 1, math.Inf(1), 0)
		}},
		{"nan bandwidth", func() *Builder {
			return NewBuilder(1, 2).SetUniformTask(0, 1, 1).SetLink(0, 1, math.NaN(), 0)
		}},
		{"zero bandwidth", func() *Builder {
			return NewBuilder(1, 2).SetUniformTask(0, 1, 1).SetLink(0, 1, 0, 0)
		}},
		{"negative bandwidth", func() *Builder {
			return NewBuilder(1, 2).SetUniformTask(0, 1, 1).SetLink(0, 1, -3, 0)
		}},
		{"inf link energy", func() *Builder {
			return NewBuilder(1, 2).SetUniformTask(0, 1, 1).SetLink(0, 1, 1, math.Inf(1))
		}},
		{"nan link energy", func() *Builder {
			return NewBuilder(1, 2).SetUniformTask(0, 1, 1).SetLink(0, 1, 1, math.NaN())
		}},
		{"negative link energy", func() *Builder {
			return NewBuilder(1, 2).SetUniformTask(0, 1, 1).SetLink(0, 1, 1, -0.5)
		}},
	}
	for _, tc := range cases {
		if _, err := tc.build().Build(); err == nil {
			t.Errorf("%s: poisoned input accepted", tc.name)
		}
	}
}

func TestMaskIntersect(t *testing.T) {
	const n = 4
	a := FullMask(n)
	a.PEs[1] = false
	a.Links[0][2] = false
	b := FullMask(n)
	b.PEs[3] = false
	b.Links[2][0] = false

	got := a.Intersect(b, n)
	for pe := 0; pe < n; pe++ {
		want := pe != 1 && pe != 3
		if got.PEAlive(pe) != want {
			t.Fatalf("PE %d alive = %v, want %v", pe, got.PEAlive(pe), want)
		}
	}
	if got.LinkUp(0, 2) || got.LinkUp(2, 0) {
		t.Fatal("down links from either operand must stay down")
	}
	if got.LinkUp(0, 3) {
		t.Fatal("a link touching a dead PE must be down")
	}

	// Zero masks (nil slices = everything available) are the identity.
	id := platformZeroMask().Intersect(a, n)
	if !id.Equal(a, n) {
		t.Fatalf("zero ∩ a = %v, want %v", id, a)
	}
	if !a.Intersect(platformZeroMask(), n).Equal(a, n) {
		t.Fatal("a ∩ zero must equal a")
	}
	// Intersection is commutative.
	if !a.Intersect(b, n).Equal(b.Intersect(a, n), n) {
		t.Fatal("Intersect must be commutative")
	}
	// The result never aliases the operands.
	got.PEs[0] = false
	if !a.PEAlive(0) || !b.PEAlive(0) {
		t.Fatal("Intersect result aliases an operand")
	}
}

func platformZeroMask() Mask { return Mask{} }
