// Package platform models the MPSoC hardware of the paper: a set of
// heterogeneous processing elements (PEs) with per-task worst-case execution
// times and energies at nominal supply voltage, a point-to-point
// interconnect with per-link bandwidth and transmission energy, and a
// dynamic voltage/frequency scaling (DVFS) model.
//
// Units are deliberately abstract, matching the paper's normalized
// evaluation: time is in generic "time units" (the same unit as the CTG
// deadline), energy in generic "energy units", and communication volume in
// kilobytes. The DVFS model follows the paper's §IV simplification — unit
// load capacitance, voltage proportional to frequency — so a task running at
// normalized speed s ∈ (0, 1] takes WCET/s time and consumes E·s² energy,
// while communication is never scaled.
package platform

import (
	"errors"
	"fmt"
	"math"
)

// Platform is an immutable description of an MPSoC: n tasks × m PEs of
// execution costs, plus an m × m interconnect. Build one with NewBuilder.
type Platform struct {
	numTasks int
	numPEs   int

	wcet   [][]float64 // [task][pe] worst-case execution time at full speed
	energy [][]float64 // [task][pe] energy at nominal VDD (full speed)

	bandwidth [][]float64 // [pe][pe] KB per time unit
	txEnergy  [][]float64 // [pe][pe] energy per KB

	avgWCET []float64 // [task] mean WCET across PEs (cached for DLS)

	// alive and linkUp carry an availability restriction (see Restrict);
	// both nil on a healthy platform, in which case every accessor reports
	// full availability. avgWCET is recomputed over survivors on restricted
	// views.
	alive  []bool
	linkUp [][]bool
}

// Builder assembles a Platform. A Builder is created for a fixed task and PE
// count; all entries default to unusable (zero) and must be filled in.
type Builder struct {
	p   *Platform
	err error
}

// NewBuilder returns a Builder for the given number of tasks and PEs.
// Link entries default to bandwidth 1 KB/time-unit and zero transmission
// energy; execution entries must be set explicitly.
func NewBuilder(numTasks, numPEs int) *Builder {
	b := &Builder{}
	if numTasks <= 0 || numPEs <= 0 {
		b.err = fmt.Errorf("platform: need positive task and PE counts, got %d, %d", numTasks, numPEs)
		return b
	}
	p := &Platform{numTasks: numTasks, numPEs: numPEs}
	p.wcet = make([][]float64, numTasks)
	p.energy = make([][]float64, numTasks)
	for t := range p.wcet {
		p.wcet[t] = make([]float64, numPEs)
		p.energy[t] = make([]float64, numPEs)
	}
	p.bandwidth = make([][]float64, numPEs)
	p.txEnergy = make([][]float64, numPEs)
	for i := range p.bandwidth {
		p.bandwidth[i] = make([]float64, numPEs)
		p.txEnergy[i] = make([]float64, numPEs)
		for j := range p.bandwidth[i] {
			if i != j {
				p.bandwidth[i][j] = 1
			}
		}
	}
	b.p = p
	return b
}

// SetTask sets the per-PE WCET and energy of one task. Both slices must have
// one entry per PE; WCETs must be positive, energies non-negative.
func (b *Builder) SetTask(task int, wcet, energy []float64) *Builder {
	if b.err != nil {
		return b
	}
	if task < 0 || task >= b.p.numTasks {
		b.err = fmt.Errorf("platform: task %d out of range", task)
		return b
	}
	if len(wcet) != b.p.numPEs || len(energy) != b.p.numPEs {
		b.err = fmt.Errorf("platform: task %d: want %d entries, got %d/%d",
			task, b.p.numPEs, len(wcet), len(energy))
		return b
	}
	for pe := 0; pe < b.p.numPEs; pe++ {
		if !(wcet[pe] > 0) || math.IsInf(wcet[pe], 0) || math.IsNaN(wcet[pe]) {
			b.err = fmt.Errorf("platform: task %d pe %d: invalid WCET %v", task, pe, wcet[pe])
			return b
		}
		if energy[pe] < 0 || math.IsInf(energy[pe], 0) || math.IsNaN(energy[pe]) {
			b.err = fmt.Errorf("platform: task %d pe %d: invalid energy %v", task, pe, energy[pe])
			return b
		}
	}
	copy(b.p.wcet[task], wcet)
	copy(b.p.energy[task], energy)
	return b
}

// SetUniformTask sets the same WCET/energy on every PE (a homogeneous
// system).
func (b *Builder) SetUniformTask(task int, wcet, energy float64) *Builder {
	if b.err != nil {
		return b
	}
	w := make([]float64, b.p.numPEs)
	e := make([]float64, b.p.numPEs)
	for i := range w {
		w[i], e[i] = wcet, energy
	}
	return b.SetTask(task, w, e)
}

// SetLink sets the bandwidth (KB per time unit) and transmission energy
// (energy per KB) of the directed link from pe i to pe j. The paper models
// dedicated point-to-point links; i == j is invalid (local communication is
// free by definition).
func (b *Builder) SetLink(i, j int, bandwidthKBPerTU, energyPerKB float64) *Builder {
	if b.err != nil {
		return b
	}
	if i < 0 || i >= b.p.numPEs || j < 0 || j >= b.p.numPEs || i == j {
		b.err = fmt.Errorf("platform: invalid link %d->%d", i, j)
		return b
	}
	if !(bandwidthKBPerTU > 0) || math.IsInf(bandwidthKBPerTU, 0) ||
		energyPerKB < 0 || math.IsInf(energyPerKB, 0) || math.IsNaN(energyPerKB) {
		b.err = fmt.Errorf("platform: link %d->%d: invalid bandwidth %v or energy %v",
			i, j, bandwidthKBPerTU, energyPerKB)
		return b
	}
	b.p.bandwidth[i][j] = bandwidthKBPerTU
	b.p.txEnergy[i][j] = energyPerKB
	return b
}

// SetAllLinks sets every directed link to the same bandwidth and energy.
func (b *Builder) SetAllLinks(bandwidthKBPerTU, energyPerKB float64) *Builder {
	if b.err != nil {
		return b
	}
	for i := 0; i < b.p.numPEs; i++ {
		for j := 0; j < b.p.numPEs; j++ {
			if i != j {
				b.SetLink(i, j, bandwidthKBPerTU, energyPerKB)
			}
		}
	}
	return b
}

// Build validates the platform and returns it.
func (b *Builder) Build() (*Platform, error) {
	if b.err != nil {
		return nil, b.err
	}
	p := b.p
	if p == nil {
		return nil, errors.New("platform: builder already consumed")
	}
	for t := 0; t < p.numTasks; t++ {
		for pe := 0; pe < p.numPEs; pe++ {
			if p.wcet[t][pe] == 0 {
				return nil, fmt.Errorf("platform: task %d has no WCET on pe %d (SetTask not called?)", t, pe)
			}
		}
	}
	p.avgWCET = make([]float64, p.numTasks)
	for t := 0; t < p.numTasks; t++ {
		sum := 0.0
		for pe := 0; pe < p.numPEs; pe++ {
			sum += p.wcet[t][pe]
		}
		p.avgWCET[t] = sum / float64(p.numPEs)
	}
	b.p = nil
	return p, nil
}

// NumTasks returns the number of tasks the platform was sized for.
func (p *Platform) NumTasks() int { return p.numTasks }

// NumPEs returns the number of processing elements.
func (p *Platform) NumPEs() int { return p.numPEs }

// WCET returns the worst-case execution time of the task on the PE at full
// speed.
func (p *Platform) WCET(task, pe int) float64 { return p.wcet[task][pe] }

// Energy returns the energy of the task on the PE at nominal VDD (full
// speed).
func (p *Platform) Energy(task, pe int) float64 { return p.energy[task][pe] }

// AvgWCET returns the mean WCET of the task across all PEs at full speed —
// the *WCET(τ) of the paper's static-level formula.
func (p *Platform) AvgWCET(task int) float64 { return p.avgWCET[task] }

// BestPE returns the available PE with the smallest WCET for the task (on a
// restricted platform dead PEs are skipped; Restrict guarantees at least one
// survivor).
func (p *Platform) BestPE(task int) int {
	best := -1
	for pe := 0; pe < p.numPEs; pe++ {
		if !p.PEAlive(pe) {
			continue
		}
		if best < 0 || p.wcet[task][pe] < p.wcet[task][best] {
			best = pe
		}
	}
	return best
}

// MinWCET returns the smallest WCET of the task over all PEs.
func (p *Platform) MinWCET(task int) float64 { return p.wcet[task][p.BestPE(task)] }

// CommTime returns the time to move kb kilobytes from PE i to PE j; zero
// when i == j (local buffers are free, per the paper's model).
func (p *Platform) CommTime(kb float64, i, j int) float64 {
	if i == j || kb == 0 {
		return 0
	}
	return kb / p.bandwidth[i][j]
}

// CommEnergy returns the transmission energy for kb kilobytes from PE i to
// PE j; zero when i == j. Communication is not voltage-scaled.
func (p *Platform) CommEnergy(kb float64, i, j int) float64 {
	if i == j {
		return 0
	}
	return kb * p.txEnergy[i][j]
}

// Bandwidth returns the link bandwidth from PE i to PE j in KB per time
// unit.
func (p *Platform) Bandwidth(i, j int) float64 { return p.bandwidth[i][j] }
