// Package par is a minimal, stdlib-only bounded worker pool for the
// scenario-indexed hot loops of the scheduler (per-minterm stretching,
// exhaustive replay, per-graph experiment fan-out).
//
// Design constraints, in order:
//
//   - Determinism: every helper writes results into an index-addressed slot,
//     so the output of a parallel run is byte-identical to the serial loop
//     regardless of interleaving. Callers that reduce (sum, max) must do so
//     serially over the returned slice in index order.
//   - Boundedness: at most Limit() goroutines run per call. Nested calls
//     (an experiment fan-out whose cases replay scenarios in parallel) each
//     apply their own bound rather than sharing a global semaphore — sharing
//     one would deadlock when an outer worker blocks on inner work.
//   - Zero overhead when it cannot help: with one index or a limit of one,
//     the loop runs inline on the calling goroutine (no goroutines, no
//     channels), which keeps -race equivalence tests honest and avoids
//     penalizing single-core hosts.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// limit is the per-call worker bound; 0 means "GOMAXPROCS at call time".
var limit atomic.Int64

// Limit returns the current per-call worker bound.
func Limit() int {
	if n := limit.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetLimit overrides the per-call worker bound and returns the previous
// value. n <= 0 restores the default (GOMAXPROCS). Intended for benchmarks
// and serial-vs-parallel equivalence tests.
func SetLimit(n int) int {
	prev := Limit()
	if n <= 0 {
		limit.Store(0)
	} else {
		limit.Store(int64(n))
	}
	return prev
}

// workersFor returns the worker count for an n-index loop under the current
// limit.
func workersFor(n int) int {
	workers := Limit()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// run distributes indices [0, n) over the given number of workers, passing
// each invocation its dense worker id in [0, workers). It is the common
// engine under the exported helpers.
//
// Panic safety: a panicking body never kills a worker goroutine mid-pool or
// deadlocks the caller. Each worker recovers per index, records the panic,
// and keeps draining; after the pool joins, the panic of the *lowest* index
// is re-raised on the calling goroutine — the same deterministic panic (and
// the same goroutine) a serial loop would produce, regardless of worker
// bound or interleaving.
func run(n, workers int, body func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	var (
		panicMu  sync.Mutex
		panicIdx = n // lowest panicking index seen; n = none
		panicVal any
	)
	invoke := func(worker, i int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if i < panicIdx {
					panicIdx, panicVal = i, r
				}
				panicMu.Unlock()
			}
		}()
		body(worker, i)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				invoke(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if panicIdx < n {
		panic(panicVal)
	}
}

// ForEach runs fn(i) for every i in [0, n) on the pool.
func ForEach(n int, fn func(i int)) {
	run(n, workersFor(n), func(_, i int) { fn(i) })
}

// Map computes out[i] = fn(i) for every i in [0, n) on the pool.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	run(n, workersFor(n), func(_, i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible work. All indices run (no short-circuit, so the
// result slice is fully populated); if any invocation fails, the error with
// the lowest index is returned, making the reported failure deterministic.
func MapErr[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	run(n, workersFor(n), func(_, i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// MapScratch is Map with per-worker scratch state: each worker calls mk once
// and passes its scratch to every fn it executes. Use it to reuse large
// buffers (DP tables, graph views) across loop iterations without
// synchronization.
func MapScratch[T, S any](n int, mk func() S, fn func(scratch S, i int) T) []T {
	out := make([]T, n)
	workers := workersFor(n)
	scratches := make([]S, workers)
	for i := range scratches {
		scratches[i] = mk()
	}
	run(n, workers, func(w, i int) { out[i] = fn(scratches[w], i) })
	return out
}

// MapScratchErr is MapScratch for fallible work, with MapErr's deterministic
// lowest-index error.
func MapScratchErr[T, S any](n int, mk func() S, fn func(scratch S, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	workers := workersFor(n)
	scratches := make([]S, workers)
	for i := range scratches {
		scratches[i] = mk()
	}
	run(n, workers, func(w, i int) { out[i], errs[i] = fn(scratches[w], i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
