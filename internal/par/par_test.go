package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		out := Map(n, func(i int) int { return i * i })
		if len(out) != n {
			t.Fatalf("n=%d: got %d results", n, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("n=%d: out[%d] = %d", n, i, v)
			}
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	const n = 500
	var counts [n]atomic.Int64
	ForEach(n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errAt := func(bad ...int) error {
		isBad := map[int]bool{}
		for _, b := range bad {
			isBad[b] = true
		}
		_, err := MapErr(64, func(i int) (int, error) {
			if isBad[i] {
				return 0, fmt.Errorf("fail@%d", i)
			}
			return i, nil
		})
		return err
	}
	if err := errAt(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	for trial := 0; trial < 10; trial++ {
		err := errAt(41, 7, 23)
		if err == nil || err.Error() != "fail@7" {
			t.Fatalf("want deterministic lowest-index error fail@7, got %v", err)
		}
	}
}

func TestMapErrStillPopulatesResults(t *testing.T) {
	out, err := MapErr(8, func(i int) (int, error) {
		if i == 3 {
			return -1, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	// No short-circuit: indices after the failure still ran.
	if out[7] != 7 {
		t.Fatalf("index 7 did not run: %v", out)
	}
}

func TestSetLimitBoundsConcurrency(t *testing.T) {
	defer SetLimit(SetLimit(3))
	var cur, peak atomic.Int64
	ForEach(64, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent bodies with limit 3", p)
	}
}

func TestSerialFallbackRunsInline(t *testing.T) {
	defer SetLimit(SetLimit(1))
	order := make([]int, 0, 10)
	// With limit 1 the loop must run in index order on this goroutine.
	ForEach(10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial fallback out of order: %v", order)
		}
	}
}

func TestMapScratchReusesPerWorkerState(t *testing.T) {
	made := atomic.Int64{}
	out := MapScratch(200, func() *[]int {
		made.Add(1)
		buf := make([]int, 0, 8)
		return &buf
	}, func(s *[]int, i int) int {
		*s = append((*s)[:0], i, i) // scribble to catch sharing across workers
		return (*s)[0] + (*s)[1]
	})
	for i, v := range out {
		if v != 2*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if m := made.Load(); m > int64(Limit()) {
		t.Fatalf("made %d scratches with limit %d", m, Limit())
	}
}

func TestMapScratchErr(t *testing.T) {
	_, err := MapScratchErr(16, func() int { return 0 }, func(_ int, i int) (int, error) {
		if i >= 10 {
			return 0, fmt.Errorf("fail@%d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "fail@10" {
		t.Fatalf("want fail@10, got %v", err)
	}
}

func TestPanicInWorkerPropagatesAtEveryBound(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 2, 3, 4, 8, 16, 64} {
		prev := SetLimit(workers)
		func() {
			defer SetLimit(prev)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if s, ok := r.(string); !ok || s != "boom 7" {
					t.Fatalf("workers=%d: recovered %v, want lowest-index panic \"boom 7\"", workers, r)
				}
			}()
			// Two panicking indices: the lower one must win at every bound,
			// matching what a serial loop would raise first.
			Map(n, func(i int) int {
				if i == 7 || i == 40 {
					panic(fmt.Sprintf("boom %d", i))
				}
				return i
			})
		}()
	}
}

func TestPanicDoesNotStarveSiblingIndices(t *testing.T) {
	// Every non-panicking index still runs: the pool drains instead of
	// dying with the panicking goroutine.
	const n = 200
	var ran [n]atomic.Int64
	prev := SetLimit(4)
	defer SetLimit(prev)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic swallowed")
			}
		}()
		ForEach(n, func(i int) {
			ran[i].Add(1)
			if i == 13 {
				panic(errors.New("unlucky"))
			}
		})
	}()
	for i := range ran {
		if c := ran[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times after sibling panic", i, c)
		}
	}
}
