package serve

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ctgdvfs/internal/core"
	"ctgdvfs/internal/health"
	"ctgdvfs/internal/telemetry"
)

// gateRecorder forwards events to its sink chain unless switched off. The
// daemon gates a tenant's stream off while replaying its decision log (restore
// after a crash, rebuild after a panic or a cancelled step): the replayed
// steps re-emit thousands of events that were already recorded the first time
// around, and delivering them again would corrupt every downstream consumer's
// notion of what happened. Toggled and read only under the owning tenant's
// state lock.
type gateRecorder struct {
	next telemetry.Recorder
	off  bool
}

func (g *gateRecorder) Record(e telemetry.Event) {
	if !g.off {
		g.next.Record(e)
	}
}

// tailRecorder remembers the last event that passed the gate, so serve-layer
// events (tenant_panic, tenant_restart) can name the step they interrupted as
// their Cause.
type tailRecorder struct {
	last telemetry.Event
	n    int
}

func (t *tailRecorder) Record(e telemetry.Event) {
	t.last = e
	t.n++
}

func (t *tailRecorder) lastSeq() uint64 { return t.last.Seq }

// ChaosSpec is the per-request fault injection accepted only when the daemon
// runs with Options.Chaos. It exists for the chaos harness: a production
// daemon ignores it entirely.
type ChaosSpec struct {
	// DelayMS stalls the tenant's worker before the step (a slow tenant —
	// its own queue backs up; siblings must not notice).
	DelayMS int `json:"delay_ms,omitempty"`
	// Panic panics the tenant's worker with this value mid-request.
	Panic string `json:"panic,omitempty"`
}

// StepReply is the daemon's answer to one step request.
type StepReply struct {
	Tenant       string  `json:"tenant"`
	Instance     int     `json:"instance"` // 0-based index of the instance just processed
	Scenario     int     `json:"scenario"`
	Met          bool    `json:"met"`
	Energy       float64 `json:"energy"`
	Makespan     float64 `json:"makespan"`
	Lateness     float64 `json:"lateness,omitempty"`
	Rescheduled  bool    `json:"rescheduled,omitempty"`
	FallbackUsed bool    `json:"fallback_used,omitempty"`
	GuardLevel   int     `json:"guard_level,omitempty"`
	Degraded     bool    `json:"degraded,omitempty"`
}

// stepDone carries one request's outcome back to the HTTP handler.
type stepDone struct {
	reply StepReply
	err   error
}

// stepReq is one queued step request.
type stepReq struct {
	ctx       context.Context
	decisions []int
	chaos     ChaosSpec
	done      chan stepDone
}

// tenant is one hosted manager plus everything that isolates it from its
// siblings: a private worker goroutine and queue, private admission state
// (token bucket + circuit breaker), a private telemetry chain, and a private
// decision log that makes its state rebuildable at any moment.
//
// Lock order: stMu may be taken alone or before admMu; admMu is never held
// while taking stMu.
type tenant struct {
	name string
	spec TenantSpec
	srv  *Server

	queue chan *stepReq
	stop  chan struct{}
	done  chan struct{} // closed when the worker exits

	// admMu guards admission state, touched by HTTP handler goroutines.
	admMu      sync.Mutex
	bucket     tokenBucket
	brk        breaker
	rng        *rand.Rand
	rejRate    int
	rejQueue   int
	rejBreaker int
	rejShed    int

	// stMu guards the engine state, touched by the worker (and by read-only
	// HTTP handlers for schedules/stats).
	stMu         sync.Mutex
	mgr          *core.Manager
	log          [][]int
	seq          *telemetry.Sequencer
	gate         *gateRecorder
	tail         *tailRecorder
	sinks        telemetry.MultiRecorder // post-gate sinks; serve events bypass the gate
	flight       *telemetry.FlightRecorder
	analyzer     *health.AnalyzerRecorder
	events       *telemetry.JSONLRecorder // nil unless Options.EventsDir
	status       string                   // "ok", "degraded", "failed"
	consecPanics int
	steps        int
	panics       int
	restarts     int
	checkpoints  int
	restored     bool
	restoredFrom string // "", "ok", "fallback"
}

// newTenant builds a tenant (manager, telemetry chain, admission state) but
// does not start its worker; the caller starts it once any restore replay is
// done.
func newTenant(srv *Server, spec TenantSpec) (*tenant, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	t := &tenant{
		name:   spec.Name,
		spec:   spec,
		srv:    srv,
		queue:  make(chan *stepReq, srv.opts.QueueDepth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		seq:    telemetry.NewSequencer(),
		tail:   &tailRecorder{},
		status: "ok",
	}
	t.bucket = tokenBucket{rate: srv.opts.Rate, burst: srv.opts.Burst}
	// Deterministic per-tenant jitter: seed derived from the daemon seed and
	// the tenant name so chaos runs are reproducible.
	t.rng = rand.New(rand.NewSource(srv.opts.Seed ^ int64(fnvString(spec.Name))))

	t.flight = telemetry.NewFlightRecorder(telemetry.FlightRecorderOptions{
		Capacity: srv.opts.FlightWindow,
	})
	t.sinks = telemetry.MultiRecorder{t.tail, t.flight}
	if srv.opts.SLO != (health.SLO{}) {
		t.analyzer = health.New(health.Options{SLO: srv.opts.SLO})
		t.sinks = append(t.sinks, t.analyzer)
	}
	if dir := srv.opts.EventsDir; dir != "" {
		// O_TRUNC: a prior run's stream may end in a torn tail (the daemon
		// was killed); appending after it would turn crash damage readers
		// tolerate at the tail into mid-stream corruption they must report.
		f, err := os.OpenFile(filepath.Join(dir, spec.Name+".events.jsonl"),
			os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("serve: events stream for %s: %w", spec.Name, err)
		}
		t.events = telemetry.NewJSONLRecorder(f)
		t.sinks = append(t.sinks, t.events)
	}
	t.gate = &gateRecorder{next: t.sinks}

	m, err := t.buildManager()
	if err != nil {
		t.closeSinks()
		return nil, err
	}
	t.mgr = m
	return t, nil
}

// buildManager constructs a fresh manager from the spec, wired to the
// tenant's telemetry chain.
func (t *tenant) buildManager() (*core.Manager, error) {
	g, p, err := t.spec.build()
	if err != nil {
		return nil, err
	}
	opts := t.spec.coreOptions()
	opts.Recorder = t.gate
	opts.Sequencer = t.seq
	return core.New(g, p, opts)
}

// start launches the worker goroutine.
func (t *tenant) start() {
	go t.worker()
}

// halt stops the worker and waits for it to exit. Queued requests are failed
// with ErrClosed.
func (t *tenant) halt() {
	close(t.stop)
	<-t.done
	for {
		select {
		case req := <-t.queue:
			req.done <- stepDone{err: ErrClosed}
		default:
			return
		}
	}
}

// closeSinks flushes and closes the tenant's owned sinks (the JSONL stream).
func (t *tenant) closeSinks() {
	if t.events != nil {
		t.events.Close()
	}
}

func (t *tenant) worker() {
	defer close(t.done)
	for {
		select {
		case <-t.stop:
			return
		case req := <-t.queue:
			t.handle(req)
		}
	}
}

// handle runs one request with panic containment and breaker bookkeeping.
func (t *tenant) handle(req *stepReq) {
	var d stepDone
	func() {
		defer func() {
			if r := recover(); r != nil {
				d = stepDone{err: t.containPanic(r)}
			}
		}()
		d.reply, d.err = t.step(req)
	}()
	t.admMu.Lock()
	switch {
	case d.err == nil:
		t.brk.onSuccess()
	case isClientErr(d.err):
		// Malformed input is the caller's fault, not tenant ill-health.
	case isPanicErr(d.err):
		// containPanic already opened the breaker with its own backoff.
	default:
		t.brk.onFailure(t.srv.now(), t.srv.opts.MaxFailures,
			t.srv.opts.BaseBackoff, t.srv.opts.MaxBackoff, t.rng)
	}
	t.admMu.Unlock()
	// Drain the event stream's write buffer after every request so a later
	// kill -9 loses at most the in-flight step's events — in particular,
	// tenant_panic and tenant_restart records are durable the moment the
	// caller sees the outcome. JSONLRecorder.Flush is self-locking.
	if t.events != nil {
		t.events.Flush()
	}
	req.done <- d
}

// step processes one instance on the worker goroutine.
func (t *tenant) step(req *stepReq) (StepReply, error) {
	// A request whose deadline expired while queued is refused cleanly: no
	// engine state was touched, so no rebuild is needed.
	if err := req.ctx.Err(); err != nil {
		t.srv.metrics.deadlineCancels.Inc()
		return StepReply{}, err
	}
	if t.srv.opts.Chaos {
		if req.chaos.DelayMS > 0 {
			t.srv.sleep(time.Duration(req.chaos.DelayMS) * time.Millisecond)
		}
		if req.chaos.Panic != "" {
			panic("chaos: " + req.chaos.Panic)
		}
	}
	t.stMu.Lock()
	defer t.stMu.Unlock()
	if t.status == "failed" {
		return StepReply{}, &RejectionError{Tenant: t.name, Code: "tenant_failed",
			Status: 503}
	}
	idx := len(t.log)
	res, err := t.mgr.StepCtx(req.ctx, req.decisions)
	if err != nil {
		if isCtxErr(err) {
			// The estimator observed this step's decisions before the
			// pipeline was cancelled, leaving the manager mid-instance.
			// Rebuild deterministically from the decision log so the next
			// admitted step sees exactly the pre-cancellation state.
			t.srv.metrics.deadlineCancels.Inc()
			t.recoverLocked("cancel_rebuild", t.tail.lastSeq(), 0)
			return StepReply{}, err
		}
		return StepReply{}, clientErrorf("step: %v", err)
	}
	t.log = append(t.log, append([]int(nil), req.decisions...))
	t.steps++
	t.status = "ok"
	t.consecPanics = 0
	t.srv.metrics.steps.Inc()
	rep := StepReply{
		Tenant:       t.name,
		Instance:     idx,
		Scenario:     res.Instance.Scenario,
		Met:          res.Instance.DeadlineMet,
		Energy:       res.Instance.Energy,
		Makespan:     res.Instance.Makespan,
		Lateness:     res.Instance.Lateness,
		Rescheduled:  res.Rescheduled,
		FallbackUsed: res.FallbackUsed,
		GuardLevel:   res.GuardLevel,
		Degraded:     res.Degraded,
	}
	if every := t.srv.opts.CheckpointEvery; every > 0 && len(t.log)%every == 0 {
		t.checkpointLocked()
	}
	return rep, nil
}

// containPanic is the isolation boundary: the panicking request fails, the
// tenant is marked degraded, its breaker opens with an escalating backoff,
// and its engine state is rebuilt from the decision log — the daemon and
// every sibling tenant never notice.
func (t *tenant) containPanic(r any) error {
	val := fmt.Sprint(r)
	t.srv.metrics.panics.Inc()
	t.stMu.Lock()
	defer t.stMu.Unlock()
	t.consecPanics++
	t.panics++
	t.status = "degraded"
	cause := t.tail.lastSeq()
	panicSeq := t.seq.Next()
	t.emitLocked(telemetry.Event{
		Kind:     telemetry.KindTenantPanic,
		Seq:      panicSeq,
		Cause:    cause,
		Instance: len(t.log),
		Name:     t.name,
		Reason:   val,
		Level:    t.consecPanics,
	})
	t.admMu.Lock()
	backoff := t.brk.open(t.srv.now(), t.srv.opts.BaseBackoff, t.srv.opts.MaxBackoff, t.rng)
	t.admMu.Unlock()
	t.recoverLocked("panic_backoff", panicSeq, backoff)
	return &PanicError{Tenant: t.name, Value: val}
}

// recoverLocked rebuilds the tenant's engine state by replaying the decision
// log with the telemetry gate off, then emits the tenant_restart event. A
// rebuild failure (it should be impossible: the log replayed fine once)
// permanently fails the tenant rather than serving undefined state.
func (t *tenant) recoverLocked(reason string, cause uint64, backoff time.Duration) {
	if err := t.rebuildLocked(); err != nil {
		t.status = "failed"
		return
	}
	t.restarts++
	t.srv.metrics.restarts.Inc()
	t.emitLocked(telemetry.Event{
		Kind:     telemetry.KindTenantRestart,
		Seq:      t.seq.Next(),
		Cause:    cause,
		Instance: len(t.log),
		Name:     t.name,
		Reason:   reason,
		Value:    float64(backoff.Milliseconds()),
	})
}

// rebuildLocked replaces the manager with a fresh one fast-forwarded through
// the decision log. The gate stays off for the whole replay so already-
// recorded events are not re-delivered; the shared sequencer keeps advancing,
// so post-replay events never collide with pre-rebuild seqs.
func (t *tenant) rebuildLocked() error {
	m, err := t.buildManager()
	if err != nil {
		return err
	}
	t.gate.off = true
	defer func() { t.gate.off = false }()
	for i, v := range t.log {
		if _, err := m.Step(v); err != nil {
			return fmt.Errorf("serve: tenant %s replay instance %d: %w", t.name, i, err)
		}
	}
	t.mgr = m
	return nil
}

// checkpointLocked writes one atomic snapshot of the tenant.
func (t *tenant) checkpointLocked() error {
	dir := t.srv.opts.CheckpointDir
	if dir == "" {
		return nil
	}
	pay := &snapshotPayload{
		Name:       t.name,
		Spec:       t.spec,
		Vectors:    t.log,
		Instances:  len(t.log),
		Calls:      t.mgr.Calls(),
		GuardLevel: t.mgr.GuardLevel(),
		Digest:     digestHex(scheduleDigest(t.mgr)),
	}
	if err := writeSnapshot(snapshotPath(dir, t.name), pay); err != nil {
		return err
	}
	t.checkpoints++
	t.srv.metrics.checkpoints.Inc()
	t.emitLocked(telemetry.Event{
		Kind:     telemetry.KindCheckpoint,
		Seq:      t.seq.Next(),
		Instance: pay.Instances,
		Name:     t.name,
		Calls:    pay.Calls,
		Key:      pay.Digest,
	})
	return nil
}

// emitLocked records one serve-layer event directly to the post-gate sinks,
// so daemon lifecycle events are captured even while a replay is gated.
func (t *tenant) emitLocked(e telemetry.Event) {
	t.sinks.Record(e)
}

// admit runs the tenant's admission chain: circuit breaker, then token
// bucket, then SLO shedding. Returns nil when the request may be enqueued.
func (t *tenant) admit() error {
	now := t.srv.now()
	t.admMu.Lock()
	if ok, retry := t.brk.admit(now); !ok {
		t.rejBreaker++
		t.admMu.Unlock()
		t.srv.metrics.rejBreaker.Inc()
		return &RejectionError{Tenant: t.name, Code: "breaker_open", Status: 503, RetryAfter: retry}
	}
	if ok, retry := t.bucket.admit(now); !ok {
		t.rejRate++
		t.admMu.Unlock()
		t.srv.metrics.rejRate.Inc()
		return &RejectionError{Tenant: t.name, Code: "rate_limited", Status: 429, RetryAfter: retry}
	}
	t.admMu.Unlock()
	if t.srv.opts.SLOShed && t.sloFailing() {
		t.admMu.Lock()
		t.rejShed++
		t.admMu.Unlock()
		t.srv.metrics.rejShed.Inc()
		return &RejectionError{Tenant: t.name, Code: "slo_shed", Status: 503,
			RetryAfter: t.srv.opts.BaseBackoff}
	}
	return nil
}

// sloFailing reports whether any non-pending SLO verdict is currently failing
// (the health budget is blown — shed load instead of digging deeper).
func (t *tenant) sloFailing() bool {
	if t.analyzer == nil {
		return false
	}
	s := t.analyzer.Health()
	for _, v := range s.SLO.Verdicts {
		if !v.Pass && !v.Pending {
			return true
		}
	}
	return false
}

// probeFailed releases a half-open probe slot that never reached the worker
// (enqueue failed): without this, a full queue during half-open would wedge
// the breaker in probing state forever.
func (t *tenant) probeFailed() {
	t.admMu.Lock()
	if t.brk.state == brkHalfOpen {
		t.brk.probing = false
	}
	t.admMu.Unlock()
}

// TenantStatus is the externally visible state of one tenant.
type TenantStatus struct {
	Name         string `json:"name"`
	Status       string `json:"status"` // "ok", "degraded", "failed"
	Breaker      string `json:"breaker"`
	Instances    int    `json:"instances"`
	Calls        int    `json:"calls"`
	GuardLevel   int    `json:"guard_level"`
	Steps        int    `json:"steps"`
	Panics       int    `json:"panics"`
	Restarts     int    `json:"restarts"`
	Checkpoints  int    `json:"checkpoints"`
	Restored     bool   `json:"restored,omitempty"`
	RestoredFrom string `json:"restored_from,omitempty"`
	QueueDepth   int    `json:"queue_depth"`
	QueueLen     int    `json:"queue_len"`

	RejectedRate    int `json:"rejected_rate,omitempty"`
	RejectedQueue   int `json:"rejected_queue,omitempty"`
	RejectedBreaker int `json:"rejected_breaker,omitempty"`
	RejectedShed    int `json:"rejected_shed,omitempty"`

	Digest string `json:"digest"`
}

// statusSnapshot assembles the tenant's externally visible state.
func (t *tenant) statusSnapshot() TenantStatus {
	t.stMu.Lock()
	st := TenantStatus{
		Name:         t.name,
		Status:       t.status,
		Instances:    len(t.log),
		Calls:        t.mgr.Calls(),
		GuardLevel:   t.mgr.GuardLevel(),
		Steps:        t.steps,
		Panics:       t.panics,
		Restarts:     t.restarts,
		Checkpoints:  t.checkpoints,
		Restored:     t.restored,
		RestoredFrom: t.restoredFrom,
		QueueDepth:   cap(t.queue),
		QueueLen:     len(t.queue),
		Digest:       digestHex(scheduleDigest(t.mgr)),
	}
	t.stMu.Unlock()
	t.admMu.Lock()
	st.Breaker = breakerStateName(t.brk.state)
	st.RejectedRate = t.rejRate
	st.RejectedQueue = t.rejQueue
	st.RejectedBreaker = t.rejBreaker
	st.RejectedShed = t.rejShed
	t.admMu.Unlock()
	return st
}

// isPanicErr reports whether err is a contained-panic error.
func isPanicErr(err error) bool {
	_, ok := err.(*PanicError)
	return ok
}

// fnvString is a tiny FNV-1a over a string for seed derivation.
func fnvString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
