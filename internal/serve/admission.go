package serve

import (
	"fmt"
	"math/rand"
	"net/http"
	"time"
)

// RejectionError is a typed admission-control rejection: the request was
// refused before any tenant state was touched. Status is the HTTP mapping
// (429 for rate limiting, 503 for queue/breaker/shed rejections) and
// RetryAfter, when positive, is the hint surfaced as a Retry-After header —
// the earliest moment a retry can possibly be admitted.
type RejectionError struct {
	Tenant     string
	Code       string // "rate_limited", "queue_full", "breaker_open", "slo_shed", "tenant_failed"
	Status     int
	RetryAfter time.Duration
}

func (e *RejectionError) Error() string {
	return fmt.Sprintf("serve: tenant %s rejected: %s", e.Tenant, e.Code)
}

// PanicError reports a contained tenant-worker panic: the panicking request
// failed, the tenant was marked degraded and restarted with backoff, and the
// daemon (and every sibling tenant) kept running. Maps to HTTP 500.
type PanicError struct {
	Tenant string
	Value  string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("serve: tenant %s worker panicked (contained): %s", e.Tenant, e.Value)
}

// Breaker states. A tenant's circuit breaker opens on repeated consecutive
// failures (or immediately on a panic), rejects everything until the current
// backoff expires, then half-opens: exactly one probe request is admitted,
// and its outcome either closes the breaker or re-opens it with a doubled
// backoff.
const (
	brkClosed = iota
	brkOpen
	brkHalfOpen
)

func breakerStateName(s int) string {
	switch s {
	case brkOpen:
		return "open"
	case brkHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// breaker is one tenant's circuit breaker. Not self-locking: the owning
// tenant guards it with admMu.
type breaker struct {
	state   int
	until   time.Time     // open-state expiry
	backoff time.Duration // backoff served by the current/last open period
	fails   int           // consecutive failures since the last success
	probing bool          // a half-open probe is in flight
}

// admit decides whether one request passes the breaker at time now.
func (b *breaker) admit(now time.Time) (ok bool, retryAfter time.Duration) {
	switch b.state {
	case brkClosed:
		return true, 0
	case brkOpen:
		if now.Before(b.until) {
			return false, b.until.Sub(now)
		}
		b.state = brkHalfOpen
		b.probing = false
		fallthrough
	default: // brkHalfOpen
		if b.probing {
			return false, b.backoff
		}
		b.probing = true
		return true, 0
	}
}

// onSuccess closes the breaker (a half-open probe succeeded, or a closed
// breaker saw a normal success).
func (b *breaker) onSuccess() {
	b.state = brkClosed
	b.fails = 0
	b.backoff = 0
	b.probing = false
}

// onFailure records one failed request; after maxFails consecutive failures
// (or any failure while half-open) the breaker opens with a
// jittered-exponential backoff. Returns the backoff now in force (0 while
// still closed).
func (b *breaker) onFailure(now time.Time, maxFails int, base, max time.Duration, rng *rand.Rand) time.Duration {
	b.fails++
	if b.state == brkHalfOpen || b.fails >= maxFails {
		return b.open(now, base, max, rng)
	}
	return 0
}

// open trips the breaker: the backoff doubles from the last open period
// (starting at base, capped at max) and is jittered into [d/2, d) so a herd
// of tenants tripped together does not retry in lockstep.
func (b *breaker) open(now time.Time, base, max time.Duration, rng *rand.Rand) time.Duration {
	d := base
	if b.backoff > 0 {
		d = 2 * b.backoff
	}
	if d > max {
		d = max
	}
	b.backoff = d
	jittered := d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
	b.state = brkOpen
	b.until = now.Add(jittered)
	b.probing = false
	return jittered
}

// tokenBucket is one tenant's request-rate limiter: rate tokens/second refill
// up to burst. Not self-locking (guarded by admMu). A zero rate admits
// everything.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func (b *tokenBucket) admit(now time.Time) (ok bool, retryAfter time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	if b.last.IsZero() {
		b.tokens = b.burst
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// writeError renders err as the daemon's JSON error envelope, mapping typed
// errors to their HTTP status and attaching Retry-After hints.
func writeError(w http.ResponseWriter, err error) {
	type envelope struct {
		Error        string `json:"error"`
		Code         string `json:"code,omitempty"`
		RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	}
	env := envelope{Error: err.Error()}
	status := http.StatusInternalServerError
	switch e := err.(type) {
	case *RejectionError:
		status = e.Status
		env.Code = e.Code
		if e.RetryAfter > 0 {
			env.RetryAfterMS = e.RetryAfter.Milliseconds()
			secs := int64(e.RetryAfter.Seconds()) + 1
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		}
	case *PanicError:
		status = http.StatusInternalServerError
		env.Code = "panic"
	default:
		switch {
		case err == ErrUnknownTenant:
			status = http.StatusNotFound
			env.Code = "unknown_tenant"
		case err == ErrClosed:
			status = http.StatusServiceUnavailable
			env.Code = "closed"
		case isCtxErr(err):
			status = http.StatusGatewayTimeout
			env.Code = "deadline"
		case isClientErr(err):
			status = http.StatusBadRequest
			env.Code = "bad_request"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSON(w, env)
}
