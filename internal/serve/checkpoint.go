package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"strings"

	"ctgdvfs/internal/core"
	"ctgdvfs/internal/telemetry"
)

// Checkpoint format. A snapshot is a single file:
//
//	ctgschedd-snapshot v1 sha256=<hex digest of the payload bytes>\n
//	<payload JSON>
//
// written via write-temp-then-rename (telemetry.CreateAtomic: temp file in
// the same directory, fsync, atomic rename, directory fsync), so a crash
// mid-write never leaves a torn file under the snapshot name. The previous
// generation is rotated to <name>.ckpt.prev before the rename lands, and
// restore falls back to it when the primary is torn or corrupt — the same
// tolerate-the-tail-report-the-middle posture as health.TruncatedTailError.
//
// The payload deliberately snapshots *inputs*, not engine internals: the
// tenant spec (CTG, platform, manager knobs) plus the full decision-vector
// log. Restore rebuilds the manager and replays the log; because the engine
// is deterministic, that reproduces the estimator window, the incumbent
// schedule, the guard level and the cache state bit-for-bit. The snapshot's
// Instances/Calls/GuardLevel/Digest fields are *verification* values: after
// replay they are compared against the rebuilt state, and any mismatch is
// reported as a corrupt snapshot rather than silently served.
const (
	snapshotMagic   = "ctgschedd-snapshot v1 sha256="
	snapshotExt     = ".ckpt"
	snapshotPrevExt = ".ckpt.prev"
)

// SnapshotError reports a torn, corrupt or divergent snapshot file. Like
// health.TruncatedTailError it is a diagnosis, not just a failure: Reason
// says what was wrong (bad header, checksum mismatch, replay divergence), so
// the operator can tell a half-written file from real corruption.
type SnapshotError struct {
	Path   string
	Reason string
	Err    error
}

func (e *SnapshotError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("serve: snapshot %s: %s: %v", e.Path, e.Reason, e.Err)
	}
	return fmt.Sprintf("serve: snapshot %s: %s", e.Path, e.Reason)
}

func (e *SnapshotError) Unwrap() error { return e.Err }

// snapshotPayload is the JSON body of one checkpoint.
type snapshotPayload struct {
	Name    string     `json:"name"`
	Spec    TenantSpec `json:"spec"`
	Vectors [][]int    `json:"vectors"`

	// Verification fields: what the replayed state must report.
	Instances  int    `json:"instances"`
	Calls      int    `json:"calls"`
	GuardLevel int    `json:"guard_level"`
	Digest     string `json:"digest"` // %016x of scheduleDigest at capture
}

// snapshotPath is the primary snapshot file of a tenant.
func snapshotPath(dir, name string) string {
	return filepath.Join(dir, name+snapshotExt)
}

// writeSnapshot persists one snapshot atomically, rotating the previous
// generation to .ckpt.prev.
func writeSnapshot(path string, pay *snapshotPayload) error {
	body, err := json.Marshal(pay)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(body)
	f, err := telemetry.CreateAtomic(path)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "%s%s\n", snapshotMagic, hex.EncodeToString(sum[:])); err != nil {
		f.Abort()
		return err
	}
	if _, err := f.Write(body); err != nil {
		f.Abort()
		return err
	}
	// Keep the previous generation around: a crash between these two renames
	// leaves at worst only the .prev file, which restore falls back to.
	if _, serr := os.Stat(path); serr == nil {
		os.Rename(path, path+".prev")
	}
	return f.Close()
}

// loadSnapshot parses and checksums one snapshot file.
func loadSnapshot(path string) (*snapshotPayload, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, &SnapshotError{Path: path, Reason: "unreadable", Err: err}
	}
	nl := strings.IndexByte(string(raw), '\n')
	if nl < 0 || !strings.HasPrefix(string(raw[:nl]), snapshotMagic) {
		return nil, &SnapshotError{Path: path, Reason: "bad header (torn or not a snapshot)"}
	}
	wantHex := strings.TrimPrefix(string(raw[:nl]), snapshotMagic)
	body := raw[nl+1:]
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != wantHex {
		return nil, &SnapshotError{Path: path, Reason: "checksum mismatch (torn or corrupt payload)"}
	}
	var pay snapshotPayload
	if err := json.Unmarshal(body, &pay); err != nil {
		return nil, &SnapshotError{Path: path, Reason: "payload unmarshal", Err: err}
	}
	if pay.Instances != len(pay.Vectors) {
		return nil, &SnapshotError{Path: path,
			Reason: fmt.Sprintf("inconsistent payload: %d instances vs %d vectors", pay.Instances, len(pay.Vectors))}
	}
	return &pay, nil
}

// loadSnapshotWithFallback loads the primary snapshot, falling back to the
// rotated previous generation when the primary is torn or corrupt. It
// returns the payload, whether the fallback generation was used, and the
// primary's error when one was diagnosed (nil on a clean primary load).
func loadSnapshotWithFallback(path string) (pay *snapshotPayload, usedPrev bool, primaryErr error) {
	pay, primaryErr = loadSnapshot(path)
	if primaryErr == nil {
		return pay, false, nil
	}
	prev, perr := loadSnapshot(path + ".prev")
	if perr != nil {
		return nil, false, primaryErr
	}
	return prev, true, primaryErr
}

// scheduleDigest fingerprints the externally observable scheduling state of a
// manager: the incumbent mapping, start times and speeds, the makespan, the
// per-scenario speed table when one is active, and the current per-fork
// probability estimates. Two managers with equal digests dispatch every
// future instance identically — this is the "bit-for-bit identical schedule"
// a restore must reproduce.
func scheduleDigest(m *core.Manager) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	putU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	putF := func(v float64) { putU64(math.Float64bits(v)) }
	s := m.Schedule()
	if s == nil {
		return 0
	}
	for _, pe := range s.PE {
		putU64(uint64(int64(pe)))
	}
	for _, v := range s.Start {
		putF(v)
	}
	for _, v := range s.Speed {
		putF(v)
	}
	putF(s.Makespan)
	if sp := m.ScenarioSpeeds(); sp != nil {
		for _, row := range sp.Speeds {
			for _, v := range row {
				putF(v)
			}
		}
	}
	for fi := 0; ; fi++ {
		probs := m.Probs(fi)
		if probs == nil {
			break
		}
		for _, v := range probs {
			putF(v)
		}
	}
	putU64(uint64(int64(m.GuardLevel())))
	return h.Sum64()
}

func digestHex(d uint64) string { return fmt.Sprintf("%016x", d) }
