// Package chaos is the seeded fault-injection harness for the scheduling
// daemon (DESIGN.md §15). A campaign runs the same tenants with the same
// seeded decision vectors against two in-process daemons driven over real
// HTTP: a quiet baseline and a chaos daemon whose "gremlin" tenant is
// subjected to injected panics, slow steps and request floods, and which is
// killed without warning (no final checkpoint) mid-campaign and restarted
// from its snapshots.
//
// The harness asserts the daemon's robustness invariants rather than its
// scheduling quality:
//
//   - zero cross-tenant interference — every victim reply is bit-for-bit
//     identical to the baseline's and no victim ever saw a rejection,
//     panic or restart;
//   - panic accountability — every injected panic surfaces as exactly one
//     tenant_panic event carrying a causal Seq/Cause link;
//   - bounded recovery — the kill-restart cycle resumes each tenant at most
//     CheckpointEvery instances behind the kill point and replays back to
//     a final schedule digest equal to the baseline's.
//
// Violations are collected in Report.Violations, not returned as errors:
// a campaign that runs to completion with violations is a red result, one
// that cannot run at all is an error.
package chaos

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"ctgdvfs/internal/apps/cruise"
	"ctgdvfs/internal/apps/mpeg"
	"ctgdvfs/internal/serve"
	"ctgdvfs/internal/telemetry"
	"ctgdvfs/internal/trace"
)

// Config parameterizes one campaign. The zero value is invalid; use
// DefaultConfig for the reference campaign.
type Config struct {
	// Seed drives every stochastic choice (decision vectors, per-tenant
	// vector streams). Two campaigns with equal configs are identical.
	Seed int64
	// Victims is the number of well-behaved tenants running next to the
	// gremlin (alternating mpeg and cruise workloads).
	Victims int
	// Steps is the per-tenant decision-vector count.
	Steps int
	// KillAt is the step index after which the chaos daemon is abandoned
	// (simulated kill -9: no final checkpoint, no sink flush) and rebuilt
	// from its checkpoint directory. Must satisfy 0 < KillAt < Steps.
	KillAt int
	// CheckpointEvery is the chaos daemon's snapshot period in instances;
	// it bounds how far behind KillAt the restart may resume.
	CheckpointEvery int
	// PanicEvery injects a worker panic into the gremlin before every
	// PanicEvery-th step (0 disables).
	PanicEvery int
	// DelayEvery/DelayMS make every DelayEvery-th gremlin step hold its
	// worker for DelayMS milliseconds (0 disables), so floods meet a busy
	// queue.
	DelayEvery, DelayMS int
	// FloodEvery/FloodSize fire FloodSize concurrent malformed requests at
	// the gremlin every FloodEvery-th step (0 disables). Malformed bodies
	// (empty decision vectors) are rejected before any state change, so
	// floods pressure admission and the queue without advancing the
	// gremlin's instance count.
	FloodEvery, FloodSize int
	// Rate/Burst are the chaos daemon's per-tenant admission limits
	// (requests/second and bucket capacity).
	Rate, Burst float64
	// Dir is the campaign scratch directory (checkpoints + event streams);
	// empty selects a fresh temporary directory, removed on return.
	Dir string
}

// DefaultConfig is the reference campaign: three tenants, forty steps, a
// panic every seventh step, floods of six against a periodically slowed
// worker, and a kill at step 25 with checkpoints every eight instances.
func DefaultConfig() Config {
	return Config{
		Seed:            42,
		Victims:         2,
		Steps:           40,
		KillAt:          25,
		CheckpointEvery: 8,
		PanicEvery:      7,
		DelayEvery:      5,
		DelayMS:         25,
		FloodEvery:      9,
		FloodSize:       6,
		Rate:            200,
		Burst:           80,
	}
}

// GremlinName is the tenant receiving every injection.
const GremlinName = "gremlin"

// TenantReport is one tenant's outcome across the full campaign.
type TenantReport struct {
	Name     string
	Workload string
	// Steps counts committed steps; Divergences counts replies that
	// differed from the baseline's reply for the same index.
	Steps, Divergences int
	// Panics/Restarts/Rejections sum both daemon generations (before and
	// after the kill).
	Panics, Restarts              int
	RejectedRate, RejectedBreaker int
	RejectedQueue, RejectedShed   int
	// ResumedAt is the instance count right after the kill-restart
	// (committed log length restored from the latest snapshot).
	ResumedAt int
	// Digest and BaselineDigest are the final schedule digests of the two
	// daemons; DigestMatch is their equality.
	Digest, BaselineDigest string
	DigestMatch            bool
}

// Report is a finished campaign.
type Report struct {
	Cfg Config
	// Tenants is gremlin-first, then victims in creation order.
	Tenants []TenantReport
	// PanicsInjected counts harness-initiated panics; PanicEvents counts
	// tenant_panic telemetry events observed across both generations, and
	// PanicEventsCaused how many of those carried a non-zero causal link.
	PanicsInjected, PanicEvents, PanicEventsCaused int
	// Flood outcome histogram by HTTP status.
	FloodSent     int
	FloodByStatus map[int]int
	// RestoredTenants counts tenants rebuilt from snapshots at restart.
	RestoredTenants int
	// Health is the chaos daemon's final health report.
	Health serve.DaemonHealth
	// Violations lists every broken invariant; empty means green.
	Violations []string
	// Elapsed is the campaign wall-clock time.
	Elapsed time.Duration
}

// Green reports whether the campaign upheld every invariant.
func (r *Report) Green() bool { return len(r.Violations) == 0 }

func (r *Report) violatef(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// campaignTenant is one tenant's static plan: its spec and vector stream.
type campaignTenant struct {
	spec serve.TenantSpec
	vecs trace.Vectors
}

// plan builds the seeded tenant set: the gremlin plus cfg.Victims victims
// alternating between the two application workloads of the paper.
func plan(cfg Config) ([]campaignTenant, error) {
	gm, _, err := mpeg.Build()
	if err != nil {
		return nil, err
	}
	gc, _, err := cruise.Build()
	if err != nil {
		return nil, err
	}
	mk := func(name, workload string, factor float64, seed int64) campaignTenant {
		g := gm
		if workload == "cruise" {
			g = gc
		}
		return campaignTenant{
			spec: serve.TenantSpec{
				Name:           name,
				Workload:       workload,
				DeadlineFactor: factor,
				Threshold:      1e-9,
			},
			vecs: trace.Fluctuating(g, seed, cfg.Steps, 0.4),
		}
	}
	ts := []campaignTenant{mk(GremlinName, "mpeg", 1.6, cfg.Seed)}
	for i := 0; i < cfg.Victims; i++ {
		if i%2 == 0 {
			ts = append(ts, mk(fmt.Sprintf("victim-%d", i), "mpeg", 1.6, cfg.Seed+int64(i)+1))
		} else {
			ts = append(ts, mk(fmt.Sprintf("victim-%d", i), "cruise", 2.0, cfg.Seed+int64(i)+1))
		}
	}
	return ts, nil
}

// Run executes the campaign.
func Run(cfg Config) (*Report, error) {
	start := time.Now()
	if cfg.Steps <= 0 || cfg.KillAt <= 0 || cfg.KillAt >= cfg.Steps {
		return nil, fmt.Errorf("chaos: need 0 < KillAt < Steps, got kill %d steps %d", cfg.KillAt, cfg.Steps)
	}
	if cfg.CheckpointEvery <= 0 {
		return nil, fmt.Errorf("chaos: CheckpointEvery must be positive")
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ctgsched-chaos-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	tenants, err := plan(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Cfg: cfg, FloodByStatus: map[int]int{}}

	// ---- Baseline generation: quiet daemon, full run, recorded replies.
	baseReplies, baseDigests, err := runBaseline(cfg, tenants)
	if err != nil {
		return nil, fmt.Errorf("chaos: baseline run: %w", err)
	}

	// ---- Chaos generation 1: injections until the kill point.
	opts := serve.Options{
		CheckpointDir:   filepath.Join(dir, "ckpt"),
		CheckpointEvery: cfg.CheckpointEvery,
		EventsDir:       filepath.Join(dir, "events"),
		Rate:            cfg.Rate,
		Burst:           cfg.Burst,
		Chaos:           true,
		Seed:            cfg.Seed,
	}
	if err := os.MkdirAll(opts.EventsDir, 0o755); err != nil {
		return nil, err
	}
	srv, err := serve.New(opts)
	if err != nil {
		return nil, fmt.Errorf("chaos: start daemon: %w", err)
	}
	ts := httptest.NewServer(srv.Handler())
	for _, ct := range tenants {
		if _, err := srv.CreateTenant(ct.spec); err != nil {
			ts.Close()
			srv.Abandon()
			return nil, fmt.Errorf("chaos: create %s: %w", ct.spec.Name, err)
		}
	}
	phase1 := drivePhase(rep, ts.URL, tenants, baseReplies, cfg, nil, cfg.KillAt, true)

	// Pre-kill bookkeeping: per-tenant counters and the gremlin's event
	// stream die with this generation (restart truncates both), so fold
	// them into the report now.
	preKill := map[string]serve.TenantStatus{}
	for _, st := range srv.Tenants() {
		preKill[st.Name] = st
	}
	srv.Abandon() // simulated kill -9: no final checkpoint, no sink flush
	ts.Close()
	countPanicEvents(rep, opts.EventsDir)

	// ---- Chaos generation 2: restart from snapshots, finish the run.
	srv2, err := serve.New(opts)
	if err != nil {
		rep.violatef("restart from snapshots failed: %v", err)
		rep.Elapsed = time.Since(start)
		finalize(rep, tenants, phase1, nil, preKill, nil, nil, baseDigests, nil)
		return rep, nil
	}
	ts2 := httptest.NewServer(srv2.Handler())
	resumedAt := map[string]int{}
	for _, st := range srv2.Tenants() {
		resumedAt[st.Name] = st.Instances
		rep.RestoredTenants++
		if st.Instances > cfg.KillAt || st.Instances < cfg.KillAt-cfg.CheckpointEvery {
			rep.violatef("%s resumed at instance %d, outside (%d, %d] recovery bound",
				st.Name, st.Instances, cfg.KillAt-cfg.CheckpointEvery, cfg.KillAt)
		}
	}
	if rep.RestoredTenants != len(tenants) {
		rep.violatef("restart restored %d of %d tenants", rep.RestoredTenants, len(tenants))
	}
	phase2 := drivePhase(rep, ts2.URL, tenants, baseReplies, cfg, resumedAt, cfg.Steps, true)
	rep.Health = srv2.Health()
	postKill := map[string]serve.TenantStatus{}
	for _, st := range srv2.Tenants() {
		postKill[st.Name] = st
	}
	digests := map[string]string{}
	for _, ct := range tenants {
		sr, err := srv2.Schedule(ct.spec.Name)
		if err != nil {
			rep.violatef("%s: final schedule fetch: %v", ct.spec.Name, err)
			continue
		}
		digests[ct.spec.Name] = sr.Digest
	}
	if err := srv2.Close(); err != nil {
		rep.violatef("daemon close: %v", err)
	}
	ts2.Close()
	countPanicEvents(rep, opts.EventsDir)

	finalize(rep, tenants, phase1, phase2, preKill, postKill, resumedAt, baseDigests, digests)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// runBaseline drives the quiet daemon over HTTP and records every reply and
// final digest.
func runBaseline(cfg Config, tenants []campaignTenant) (map[string][]serve.StepReply, map[string]string, error) {
	srv, err := serve.New(serve.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, nil, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, ct := range tenants {
		if _, err := srv.CreateTenant(ct.spec); err != nil {
			return nil, nil, fmt.Errorf("create %s: %w", ct.spec.Name, err)
		}
	}
	replies := make(map[string][]serve.StepReply, len(tenants))
	var mu sync.Mutex
	var wg sync.WaitGroup
	errc := make(chan error, len(tenants))
	for _, ct := range tenants {
		wg.Add(1)
		go func(ct campaignTenant) {
			defer wg.Done()
			cl := &serve.Client{BaseURL: ts.URL}
			out := make([]serve.StepReply, 0, cfg.Steps)
			for i, v := range ct.vecs {
				rep, err := cl.Step(context.Background(), ct.spec.Name, v, serve.ChaosSpec{})
				if err != nil {
					errc <- fmt.Errorf("%s step %d: %w", ct.spec.Name, i, err)
					return
				}
				out = append(out, rep)
			}
			mu.Lock()
			replies[ct.spec.Name] = out
			mu.Unlock()
		}(ct)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return nil, nil, err
	default:
	}
	digests := map[string]string{}
	for _, ct := range tenants {
		sr, err := srv.Schedule(ct.spec.Name)
		if err != nil {
			return nil, nil, err
		}
		digests[ct.spec.Name] = sr.Digest
	}
	return replies, digests, nil
}

// phaseStats is one tenant's outcome over one drive phase.
type phaseStats struct {
	steps, divergences, injected int
}

// drivePhase steps every tenant over [from[name], to), injecting chaos into
// the gremlin when inject is set, and compares each reply to the baseline's
// reply at the same index (a nil from map starts every tenant at 0). One
// goroutine (and one Client — it is not concurrency-safe) per tenant.
func drivePhase(rep *Report, baseURL string, tenants []campaignTenant,
	base map[string][]serve.StepReply, cfg Config, from map[string]int, to int, inject bool) map[string]*phaseStats {
	stats := make(map[string]*phaseStats, len(tenants))
	for _, ct := range tenants {
		stats[ct.spec.Name] = &phaseStats{}
	}
	var mu sync.Mutex // guards rep counters written by tenant goroutines
	var wg sync.WaitGroup
	for _, ct := range tenants {
		start, ok := 0, true
		if from != nil {
			start, ok = from[ct.spec.Name]
			if !ok {
				continue // restore violation already recorded
			}
		}
		wg.Add(1)
		go func(ct campaignTenant, start int) {
			defer wg.Done()
			name := ct.spec.Name
			st := stats[name]
			cl := &serve.Client{BaseURL: baseURL}
			gremlin := inject && name == GremlinName
			for i := start; i < to; i++ {
				if gremlin && cfg.PanicEvery > 0 && i%cfg.PanicEvery == cfg.PanicEvery-1 {
					if injectPanic(cl, name, ct.vecs[i]) {
						st.injected++
					} else {
						mu.Lock()
						rep.violatef("%s: panic injection at step %d never landed", name, i)
						mu.Unlock()
					}
				}
				if gremlin && cfg.FloodEvery > 0 && i%cfg.FloodEvery == cfg.FloodEvery-1 {
					sent, byStatus := flood(baseURL, name, cfg.FloodSize)
					mu.Lock()
					rep.FloodSent += sent
					for code, n := range byStatus {
						rep.FloodByStatus[code] += n
					}
					mu.Unlock()
				}
				var chaos serve.ChaosSpec
				if gremlin && cfg.DelayEvery > 0 && i%cfg.DelayEvery == cfg.DelayEvery-1 {
					chaos.DelayMS = cfg.DelayMS
				}
				got, err := cl.Step(context.Background(), name, ct.vecs[i], chaos)
				if err != nil {
					mu.Lock()
					rep.violatef("%s step %d failed after retries: %v", name, i, err)
					mu.Unlock()
					return
				}
				st.steps++
				if want := base[name][i]; got != want {
					st.divergences++
					mu.Lock()
					rep.violatef("%s step %d diverged from baseline:\n got %+v\nwant %+v", name, i, got, want)
					mu.Unlock()
				}
			}
		}(ct, start)
	}
	wg.Wait()
	return stats
}

// injectPanic fires a panic-chaos step and confirms containment: the reply
// must be the typed panic error, never a success. Admission rejections
// (the breaker from a previous panic, rate limiting under flood) are
// retried briefly.
func injectPanic(cl *serve.Client, name string, vec []int) bool {
	for attempt := 0; attempt < 200; attempt++ {
		_, err := cl.StepOnce(context.Background(), name, vec, serve.ChaosSpec{Panic: "chaos-campaign"})
		ae, ok := err.(*serve.APIError)
		if !ok {
			return false // success or transport error: injection did not land as a contained panic
		}
		if ae.Status == http.StatusInternalServerError && ae.Code == "panic" {
			return true
		}
		if !ae.Retryable() {
			return false
		}
		wait := ae.RetryAfter
		if wait <= 0 || wait > 100*time.Millisecond {
			wait = 10 * time.Millisecond
		}
		time.Sleep(wait)
	}
	return false
}

// flood fires n concurrent malformed step requests (empty decision vector)
// at a tenant and histograms the response statuses. Every outcome is a
// rejection of some kind — 400 once a worker looks at the body, 429/503
// when admission or the queue sheds it first — and none advances state.
func flood(baseURL, name string, n int) (sent int, byStatus map[int]int) {
	byStatus = map[int]int{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(
				baseURL+"/v1/tenants/"+name+"/step", "application/json",
				strings.NewReader(`{"decisions":[]}`))
			if err != nil {
				return
			}
			resp.Body.Close()
			mu.Lock()
			byStatus[resp.StatusCode]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return n, byStatus
}

// countPanicEvents scans every tenant event stream in dir for tenant_panic
// events and their causal links. Called once per daemon generation (the
// restart truncates the streams).
func countPanicEvents(rep *Report, dir string) {
	paths, _ := filepath.Glob(filepath.Join(dir, "*.events.jsonl"))
	for _, p := range paths {
		evs, err := readEventsTorn(p)
		if err != nil {
			rep.violatef("event stream %s unreadable: %v", filepath.Base(p), err)
			continue
		}
		for _, e := range evs {
			if e.Kind != telemetry.KindTenantPanic {
				continue
			}
			rep.PanicEvents++
			if e.Cause != 0 && e.Seq != 0 {
				rep.PanicEventsCaused++
			}
			if !strings.HasPrefix(filepath.Base(p), GremlinName+".") {
				rep.violatef("tenant_panic event in non-gremlin stream %s", filepath.Base(p))
			}
		}
	}
}

// readEventsTorn reads a JSONL event stream that may end in a torn line (a
// daemon killed without warning loses its write buffer mid-record): every
// complete line is decoded, a single undecodable tail line is discarded, and
// corruption anywhere before the tail is still an error.
func readEventsTorn(path string) ([]telemetry.Event, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(raw), "\n")
	var evs []telemetry.Event
	for i, ln := range lines {
		if strings.TrimSpace(ln) == "" {
			continue
		}
		got, err := telemetry.ReadJSONL(strings.NewReader(ln + "\n"))
		if err != nil {
			if i == len(lines)-1 {
				break // torn tail: the record after the last newline
			}
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		evs = append(evs, got...)
	}
	return evs, nil
}

// finalize folds phase stats, status counters and digests into per-tenant
// reports and checks the campaign-wide invariants.
func finalize(rep *Report, tenants []campaignTenant, p1, p2 map[string]*phaseStats,
	pre, post map[string]serve.TenantStatus, resumedAt map[string]int,
	baseDigests, digests map[string]string) {
	for _, ct := range tenants {
		name := ct.spec.Name
		tr := TenantReport{Name: name, Workload: ct.spec.Workload}
		for _, ph := range []map[string]*phaseStats{p1, p2} {
			if ph == nil {
				continue
			}
			if st := ph[name]; st != nil {
				tr.Steps += st.steps
				tr.Divergences += st.divergences
				rep.PanicsInjected += st.injected
			}
		}
		for _, sts := range []map[string]serve.TenantStatus{pre, post} {
			if sts == nil {
				continue
			}
			st, ok := sts[name]
			if !ok {
				continue
			}
			tr.Panics += st.Panics
			tr.Restarts += st.Restarts
			tr.RejectedRate += st.RejectedRate
			tr.RejectedBreaker += st.RejectedBreaker
			tr.RejectedQueue += st.RejectedQueue
			tr.RejectedShed += st.RejectedShed
		}
		if resumedAt != nil {
			tr.ResumedAt = resumedAt[name]
		}
		tr.BaselineDigest = baseDigests[name]
		if digests != nil {
			tr.Digest = digests[name]
		}
		tr.DigestMatch = tr.Digest != "" && tr.Digest == tr.BaselineDigest
		if !tr.DigestMatch {
			rep.violatef("%s: final digest %q != baseline %q", name, tr.Digest, tr.BaselineDigest)
		}
		if name != GremlinName {
			if tr.Panics != 0 || tr.Restarts != 0 {
				rep.violatef("victim %s saw %d panics / %d restarts", name, tr.Panics, tr.Restarts)
			}
			if n := tr.RejectedRate + tr.RejectedBreaker + tr.RejectedQueue + tr.RejectedShed; n != 0 {
				rep.violatef("victim %s saw %d rejections (cross-tenant interference)", name, n)
			}
			if tr.Divergences != 0 {
				rep.violatef("victim %s diverged from baseline on %d steps", name, tr.Divergences)
			}
		}
		rep.Tenants = append(rep.Tenants, tr)
	}
	sort.Slice(rep.Tenants, func(i, j int) bool {
		a, b := rep.Tenants[i], rep.Tenants[j]
		if (a.Name == GremlinName) != (b.Name == GremlinName) {
			return a.Name == GremlinName
		}
		return a.Name < b.Name
	})
	// Panic accountability: every injection surfaced as exactly one causal
	// tenant_panic event, and the status counters agree.
	if rep.PanicEvents != rep.PanicsInjected {
		rep.violatef("injected %d panics but observed %d tenant_panic events",
			rep.PanicsInjected, rep.PanicEvents)
	}
	if rep.PanicEventsCaused != rep.PanicEvents {
		rep.violatef("%d of %d tenant_panic events missing a Seq/Cause link",
			rep.PanicEvents-rep.PanicEventsCaused, rep.PanicEvents)
	}
	for _, tr := range rep.Tenants {
		if tr.Name == GremlinName && tr.Panics != rep.PanicsInjected {
			rep.violatef("gremlin status counted %d panics, harness injected %d",
				tr.Panics, rep.PanicsInjected)
		}
		if tr.Name == GremlinName && tr.Restarts < tr.Panics {
			rep.violatef("gremlin restarted %d times for %d panics", tr.Restarts, tr.Panics)
		}
	}
}

// Render formats the campaign report.
func (r *Report) Render() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "Chaos campaign (seed %d): %d tenants x %d steps, kill at %d, checkpoint every %d\n",
		r.Cfg.Seed, len(r.Tenants), r.Cfg.Steps, r.Cfg.KillAt, r.Cfg.CheckpointEvery)
	fmt.Fprintf(&b, "%-12s %-8s %6s %5s %5s %5s %7s %7s  %s\n",
		"tenant", "workload", "steps", "div", "panic", "rst", "rej", "resume", "digest")
	for _, t := range r.Tenants {
		rej := t.RejectedRate + t.RejectedBreaker + t.RejectedQueue + t.RejectedShed
		match := "MATCH"
		if !t.DigestMatch {
			match = "DIVERGED"
		}
		fmt.Fprintf(&b, "%-12s %-8s %6d %5d %5d %5d %7d %7d  %s %s\n",
			t.Name, t.Workload, t.Steps, t.Divergences, t.Panics, t.Restarts, rej, t.ResumedAt, t.Digest, match)
	}
	fmt.Fprintf(&b, "panics: %d injected, %d tenant_panic events (%d causal)\n",
		r.PanicsInjected, r.PanicEvents, r.PanicEventsCaused)
	var codes []int
	for c := range r.FloodByStatus {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	fmt.Fprintf(&b, "floods: %d sent", r.FloodSent)
	for _, c := range codes {
		fmt.Fprintf(&b, ", %d x HTTP %d", r.FloodByStatus[c], c)
	}
	fmt.Fprintf(&b, "\nrestart: %d tenants restored from snapshots; daemon health %s (%d requests, %d steps, %d restores)\n",
		r.RestoredTenants, r.Health.Status, r.Health.Requests, r.Health.Steps, r.Health.Restores)
	fmt.Fprintf(&b, "elapsed: %s\n", r.Elapsed.Round(time.Millisecond))
	if r.Green() {
		b.WriteString("verdict: GREEN — zero cross-tenant interference, every panic accounted, recovery bounded\n")
	} else {
		fmt.Fprintf(&b, "verdict: RED — %d violations\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	return b.String()
}
