package chaos

import "testing"

// TestCampaignGreen runs a reduced campaign end to end and requires every
// robustness invariant to hold: no cross-tenant interference, every panic
// accounted for with a causal event, and a bounded bit-for-bit kill-restart
// recovery.
func TestCampaignGreen(t *testing.T) {
	cfg := Config{
		Seed:            7,
		Victims:         1,
		Steps:           18,
		KillAt:          11,
		CheckpointEvery: 4,
		PanicEvery:      5,
		DelayEvery:      4,
		DelayMS:         10,
		FloodEvery:      6,
		FloodSize:       4,
		Rate:            500,
		Burst:           100,
		Dir:             t.TempDir(),
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Green() {
		t.Fatalf("campaign red:\n%s", rep.Render())
	}
	if rep.PanicsInjected == 0 || rep.PanicEvents != rep.PanicsInjected {
		t.Fatalf("panic accounting: injected %d, events %d", rep.PanicsInjected, rep.PanicEvents)
	}
	if rep.FloodSent == 0 || len(rep.FloodByStatus) == 0 {
		t.Fatalf("floods never rejected: sent %d, statuses %v", rep.FloodSent, rep.FloodByStatus)
	}
	if rep.RestoredTenants != cfg.Victims+1 {
		t.Fatalf("restored %d tenants, want %d", rep.RestoredTenants, cfg.Victims+1)
	}
	for _, tr := range rep.Tenants {
		if tr.Steps == 0 || !tr.DigestMatch {
			t.Fatalf("tenant %s: steps %d digest match %v", tr.Name, tr.Steps, tr.DigestMatch)
		}
	}
	t.Logf("\n%s", rep.Render())
}
