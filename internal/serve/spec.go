package serve

import (
	"fmt"
	"strings"

	"ctgdvfs/internal/apps/cruise"
	"ctgdvfs/internal/apps/mpeg"
	"ctgdvfs/internal/apps/wlan"
	"ctgdvfs/internal/core"
	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/ctgio"
	"ctgdvfs/internal/platform"
)

// TenantSpec is the submit-time description of one tenant: which CTG +
// platform it runs and how its adaptive manager is configured. The spec is
// pure data (JSON over the wire, persisted verbatim inside checkpoints), so a
// restored daemon rebuilds bit-for-bit the same manager the original submit
// created.
type TenantSpec struct {
	// Name identifies the tenant in every URL, event stream and checkpoint
	// file. Restricted to [A-Za-z0-9._-] (it becomes a file name).
	Name string `json:"name"`

	// Workload selects a built-in application ("mpeg", "cruise", "wlan");
	// empty means CTG carries an inline graph+platform in the ctgio text
	// format — the "submit a CTG + platform" path.
	Workload string `json:"workload,omitempty"`
	CTG      string `json:"ctg,omitempty"`
	// DeadlineFactor, when > 0, tightens the graph's deadline to factor ×
	// the nominal schedule's makespan (core.TightenDeadline) — the same
	// knob the experiment campaigns use.
	DeadlineFactor float64 `json:"deadline_factor,omitempty"`

	// Adaptive-manager knobs (zero values select the core defaults).
	Window      int     `json:"window,omitempty"`
	Threshold   float64 `json:"threshold,omitempty"`
	GuardBand   float64 `json:"guard_band,omitempty"`
	PerScenario bool    `json:"per_scenario,omitempty"`
	WarmStart   bool    `json:"warm_start,omitempty"`
	Recovery    bool    `json:"recovery,omitempty"`
	CacheSize   int     `json:"cache_size,omitempty"`
}

// validate checks the spec's invariants that do not require building it.
func (sp *TenantSpec) validate() error {
	if sp.Name == "" {
		return clientErrorf("tenant name is required")
	}
	for _, r := range sp.Name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return clientErrorf("tenant name %q: only [A-Za-z0-9._-] allowed", sp.Name)
		}
	}
	switch sp.Workload {
	case "mpeg", "cruise", "wlan":
		if sp.CTG != "" {
			return clientErrorf("workload %q and inline ctg are mutually exclusive", sp.Workload)
		}
	case "":
		if sp.CTG == "" {
			return clientErrorf("either workload or an inline ctg is required")
		}
	default:
		return clientErrorf("unknown workload %q (want mpeg, cruise, wlan or inline ctg)", sp.Workload)
	}
	return nil
}

// build materializes the spec's graph and platform.
func (sp *TenantSpec) build() (*ctg.Graph, *platform.Platform, error) {
	var (
		g   *ctg.Graph
		p   *platform.Platform
		err error
	)
	switch sp.Workload {
	case "mpeg":
		g, p, err = mpeg.Build()
	case "cruise":
		g, p, err = cruise.Build()
	case "wlan":
		g, p, err = wlan.Build()
	default:
		g, p, err = ctgio.Read(strings.NewReader(sp.CTG))
		if err != nil {
			err = clientErrorf("inline ctg: %v", err)
		}
	}
	if err != nil {
		return nil, nil, err
	}
	if sp.DeadlineFactor > 0 {
		g, err = core.TightenDeadline(g, p, sp.DeadlineFactor)
		if err != nil {
			return nil, nil, clientErrorf("deadline factor %v: %v", sp.DeadlineFactor, err)
		}
	}
	return g, p, nil
}

// coreOptions maps the spec's manager knobs onto core.Options (telemetry
// fields are filled in by the tenant builder).
func (sp *TenantSpec) coreOptions() core.Options {
	return core.Options{
		Window:      sp.Window,
		Threshold:   sp.Threshold,
		GuardBand:   sp.GuardBand,
		PerScenario: sp.PerScenario,
		WarmStart:   sp.WarmStart,
		Recovery:    sp.Recovery,
		CacheSize:   sp.CacheSize,
	}
}

// clientError marks malformed-request errors (HTTP 400, never the breaker's
// business).
type clientError struct{ msg string }

func (e *clientError) Error() string { return e.msg }

func clientErrorf(format string, args ...any) error {
	return &clientError{msg: fmt.Sprintf("serve: "+format, args...)}
}

func isClientErr(err error) bool {
	_, ok := err.(*clientError)
	return ok
}
