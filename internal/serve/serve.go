// Package serve hosts many per-tenant adaptive scheduling managers
// (core.Manager) behind an HTTP/JSON API — the resilient multi-tenant
// daemon layer of the framework.
//
// Each tenant owns a single worker goroutine (core.Manager is single-caller
// by contract), a bounded request queue, private admission state (token
// bucket + circuit breaker), a private telemetry chain, and an append-only
// decision log. The log is the tenant's source of truth: because the engine
// is deterministic, replaying it rebuilds the exact manager state after a
// contained panic, a deadline-cancelled step, or a daemon kill-restart
// (checkpoint/restore). Admission control rejects with typed, retryable
// errors before any engine state is touched, so an overloaded or failing
// tenant degrades alone — the daemon and its siblings keep their schedules
// and their latency.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ctgdvfs/internal/health"
	"ctgdvfs/internal/telemetry"
)

// Sentinel errors of the daemon API.
var (
	// ErrUnknownTenant reports a request naming a tenant the daemon does not
	// host (HTTP 404).
	ErrUnknownTenant = errors.New("serve: unknown tenant")
	// ErrClosed reports a request arriving during/after shutdown (HTTP 503).
	ErrClosed = errors.New("serve: server closed")
	// ErrDuplicateTenant reports a submit for a name already hosted.
	ErrDuplicateTenant = errors.New("serve: tenant already exists")
)

// isCtxErr reports whether err is a context cancellation or deadline expiry.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Options configures a Server. The zero value is a working in-memory daemon:
// no checkpointing, no rate limits, no default deadline.
type Options struct {
	// CheckpointDir, when non-empty, enables checkpoint/restore: tenants
	// snapshot atomically into <dir>/<name>.ckpt and New resumes every
	// tenant found there.
	CheckpointDir string
	// CheckpointEvery snapshots a tenant after every N successful steps
	// (plus once at creation). 0 disables periodic snapshots (explicit
	// POST /checkpoint still works when CheckpointDir is set).
	CheckpointEvery int

	// QueueDepth bounds each tenant's request queue; a full queue rejects
	// with queue_full (503). 0 selects 16.
	QueueDepth int
	// Rate is the per-tenant steady request rate (requests/second) enforced
	// by a token bucket; 0 disables rate limiting. Burst is the bucket
	// capacity (0 selects max(1, Rate)).
	Rate  float64
	Burst float64

	// DefaultTimeout is the deadline applied to step requests that arrive
	// without one; 0 leaves them unbounded. MaxTimeout, when > 0, clamps
	// every step deadline (caller-supplied or default) to at most this.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// MaxFailures consecutive non-client step failures open a tenant's
	// circuit breaker (0 selects 5); the open period starts at BaseBackoff
	// (0 selects 50ms), doubles per re-trip, and is capped at MaxBackoff
	// (0 selects 5s). A worker panic opens the breaker immediately.
	MaxFailures int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// SLO, when non-zero, attaches a health analyzer to every tenant and
	// exposes its verdicts; with SLOShed set, a tenant whose SLO budget is
	// blown sheds new work (503 slo_shed) instead of digging deeper.
	SLO     health.SLO
	SLOShed bool

	// FlightWindow is each tenant's flight-recorder capacity (0 selects 256).
	FlightWindow int
	// EventsDir, when non-empty, streams each tenant's telemetry to
	// <dir>/<name>.events.jsonl (truncated at creation/restore so a prior
	// run's torn tail never becomes mid-stream corruption).
	EventsDir string

	// Chaos enables per-request fault injection (ChaosSpec); production
	// daemons leave it off and the fields are ignored.
	Chaos bool
	// Seed derives per-tenant jitter RNGs, keeping chaos runs reproducible.
	Seed int64

	// Metrics, when non-nil, is the registry the daemon publishes "serve.*"
	// metrics to; nil gives the server a private registry.
	Metrics *telemetry.Registry

	// Now and Sleep override the clock for tests (nil selects the real one).
	Now   func() time.Time
	Sleep func(time.Duration)
}

func (o *Options) applyDefaults() {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.Burst <= 0 {
		o.Burst = o.Rate
		if o.Burst < 1 {
			o.Burst = 1
		}
	}
	if o.MaxFailures <= 0 {
		o.MaxFailures = 5
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.FlightWindow <= 0 {
		o.FlightWindow = 256
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
}

// serverMetrics holds the daemon's registry handles.
type serverMetrics struct {
	requests        *telemetry.Counter
	steps           *telemetry.Counter
	rejRate         *telemetry.Counter
	rejQueue        *telemetry.Counter
	rejBreaker      *telemetry.Counter
	rejShed         *telemetry.Counter
	deadlineCancels *telemetry.Counter
	panics          *telemetry.Counter
	restarts        *telemetry.Counter
	checkpoints     *telemetry.Counter
	restores        *telemetry.Counter
	tenantsGauge    *telemetry.Gauge
	stepUS          *telemetry.HistogramMetric
}

func newServerMetrics(reg *telemetry.Registry) serverMetrics {
	return serverMetrics{
		requests:        reg.Counter("serve.requests"),
		steps:           reg.Counter("serve.steps"),
		rejRate:         reg.Counter("serve.rejected_rate"),
		rejQueue:        reg.Counter("serve.rejected_queue"),
		rejBreaker:      reg.Counter("serve.rejected_breaker"),
		rejShed:         reg.Counter("serve.rejected_slo"),
		deadlineCancels: reg.Counter("serve.deadline_cancels"),
		panics:          reg.Counter("serve.panics"),
		restarts:        reg.Counter("serve.restarts"),
		checkpoints:     reg.Counter("serve.checkpoints"),
		restores:        reg.Counter("serve.restores"),
		tenantsGauge:    reg.Gauge("serve.tenants"),
		stepUS:          reg.Histogram("serve.step_us", 0, 1e6, 64),
	}
}

// Server is the multi-tenant daemon.
type Server struct {
	opts    Options
	reg     *telemetry.Registry
	metrics serverMetrics
	now     func() time.Time
	sleep   func(time.Duration)

	mu      sync.RWMutex
	tenants map[string]*tenant

	closed atomic.Bool
}

// New builds a Server and, when CheckpointDir holds snapshots, restores every
// tenant found there (replaying each decision log with telemetry gated off
// and verifying the rebuilt state bit-for-bit against the snapshot's digest)
// before any request can be admitted.
func New(opts Options) (*Server, error) {
	opts.applyDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		opts:    opts,
		reg:     reg,
		metrics: newServerMetrics(reg),
		now:     opts.Now,
		sleep:   opts.Sleep,
		tenants: make(map[string]*tenant),
	}
	if opts.CheckpointDir != "" {
		if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
			return nil, err
		}
		if err := s.restoreAll(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// restoreAll resumes every tenant snapshotted in CheckpointDir.
func (s *Server) restoreAll() error {
	entries, err := os.ReadDir(s.opts.CheckpointDir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasSuffix(n, snapshotExt) && !strings.HasSuffix(n, snapshotPrevExt) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		path := filepath.Join(s.opts.CheckpointDir, n)
		t, _, err := s.restoreTenant(path)
		if err != nil {
			return err
		}
		s.tenants[t.name] = t
		s.metrics.restores.Inc()
		t.start()
	}
	s.metrics.tenantsGauge.Set(float64(len(s.tenants)))
	return nil
}

// restoreTenant resumes one tenant from its snapshot file, falling back to
// the previous generation when the primary is torn, corrupt, or diverges on
// replay.
func (s *Server) restoreTenant(path string) (*tenant, string, error) {
	pay, usedPrev, primaryErr := loadSnapshotWithFallback(path)
	if pay == nil {
		return nil, "", primaryErr
	}
	from := "ok"
	if usedPrev {
		from = "fallback"
	}
	t, err := s.buildFromPayload(pay, from)
	if err != nil && !usedPrev {
		// The primary loaded cleanly but diverged on replay — try the
		// previous generation before giving up.
		if prev, perr := loadSnapshot(path + ".prev"); perr == nil {
			if t2, err2 := s.buildFromPayload(prev, "fallback"); err2 == nil {
				return t2, "fallback", nil
			}
		}
		return nil, "", err
	}
	if err != nil {
		return nil, "", err
	}
	return t, from, nil
}

// buildFromPayload rebuilds one tenant from a verified snapshot payload: a
// fresh manager fast-forwarded through the snapshot's decision log with
// telemetry gated off, then checked instance-count, call-count, guard-level
// and schedule-digest against the values captured at snapshot time.
func (s *Server) buildFromPayload(pay *snapshotPayload, from string) (*tenant, error) {
	t, err := newTenant(s, pay.Spec)
	if err != nil {
		return nil, err
	}
	t.gate.off = true
	for i, v := range pay.Vectors {
		if _, serr := t.mgr.Step(v); serr != nil {
			t.gate.off = false
			t.closeSinks()
			return nil, &SnapshotError{Path: pay.Name,
				Reason: fmt.Sprintf("replay failed at instance %d", i), Err: serr}
		}
	}
	t.gate.off = false
	t.log = append(t.log, pay.Vectors...)
	if got := t.mgr.Instances(); got != pay.Instances {
		t.closeSinks()
		return nil, &SnapshotError{Path: pay.Name,
			Reason: fmt.Sprintf("replay divergence: %d instances, snapshot says %d", got, pay.Instances)}
	}
	if got := t.mgr.Calls(); got != pay.Calls {
		t.closeSinks()
		return nil, &SnapshotError{Path: pay.Name,
			Reason: fmt.Sprintf("replay divergence: %d calls, snapshot says %d", got, pay.Calls)}
	}
	if got := t.mgr.GuardLevel(); got != pay.GuardLevel {
		t.closeSinks()
		return nil, &SnapshotError{Path: pay.Name,
			Reason: fmt.Sprintf("replay divergence: guard level %d, snapshot says %d", got, pay.GuardLevel)}
	}
	if got := digestHex(scheduleDigest(t.mgr)); got != pay.Digest {
		t.closeSinks()
		return nil, &SnapshotError{Path: pay.Name,
			Reason: fmt.Sprintf("replay divergence: schedule digest %s, snapshot says %s", got, pay.Digest)}
	}
	t.restored = true
	t.restoredFrom = from
	t.emitLocked(telemetry.Event{
		Kind:     telemetry.KindRestore,
		Seq:      t.seq.Next(),
		Instance: pay.Instances,
		Name:     t.name,
		Key:      pay.Digest,
		Reason:   from,
	})
	return t, nil
}

// CreateTenant admits a new tenant and starts its worker. When checkpointing
// is enabled an initial snapshot is written immediately, so a daemon killed
// before the first periodic checkpoint still restores the tenant.
func (s *Server) CreateTenant(spec TenantSpec) (TenantStatus, error) {
	if s.closed.Load() {
		return TenantStatus{}, ErrClosed
	}
	t, err := newTenant(s, spec)
	if err != nil {
		return TenantStatus{}, err
	}
	s.mu.Lock()
	if _, dup := s.tenants[spec.Name]; dup {
		s.mu.Unlock()
		t.closeSinks()
		return TenantStatus{}, fmt.Errorf("%w: %s", ErrDuplicateTenant, spec.Name)
	}
	s.tenants[spec.Name] = t
	s.metrics.tenantsGauge.Set(float64(len(s.tenants)))
	s.mu.Unlock()
	t.stMu.Lock()
	t.checkpointLocked()
	t.stMu.Unlock()
	t.start()
	return t.statusSnapshot(), nil
}

// RemoveTenant stops and forgets a tenant, deleting its snapshots so it does
// not resurrect at the next daemon start.
func (s *Server) RemoveTenant(name string) error {
	s.mu.Lock()
	t, ok := s.tenants[name]
	if ok {
		delete(s.tenants, name)
		s.metrics.tenantsGauge.Set(float64(len(s.tenants)))
	}
	s.mu.Unlock()
	if !ok {
		return ErrUnknownTenant
	}
	t.halt()
	t.closeSinks()
	if dir := s.opts.CheckpointDir; dir != "" {
		p := snapshotPath(dir, name)
		os.Remove(p)
		os.Remove(p + ".prev")
	}
	return nil
}

// tenant looks one tenant up.
func (s *Server) tenant(name string) (*tenant, error) {
	s.mu.RLock()
	t, ok := s.tenants[name]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrUnknownTenant
	}
	return t, nil
}

// Tenants lists every hosted tenant's status, sorted by name.
func (s *Server) Tenants() []TenantStatus {
	s.mu.RLock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.RUnlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	out := make([]TenantStatus, len(ts))
	for i, t := range ts {
		out[i] = t.statusSnapshot()
	}
	return out
}

// wrapCtx applies the daemon's default/maximum step deadline.
func (s *Server) wrapCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	d, has := ctx.Deadline()
	switch {
	case !has && s.opts.DefaultTimeout > 0:
		return context.WithTimeout(ctx, s.opts.DefaultTimeout)
	case s.opts.MaxTimeout > 0 && (!has || time.Until(d) > s.opts.MaxTimeout):
		return context.WithTimeout(ctx, s.opts.MaxTimeout)
	}
	return ctx, func() {}
}

// Step submits one decision vector to a tenant and waits for the outcome (or
// the context). The full resilience chain runs in order: closed check, tenant
// lookup, breaker, rate limit, SLO shed, bounded enqueue — every rejection is
// typed and happens before any engine state is touched.
func (s *Server) Step(ctx context.Context, name string, decisions []int, chaos ChaosSpec) (StepReply, error) {
	if s.closed.Load() {
		return StepReply{}, ErrClosed
	}
	t, err := s.tenant(name)
	if err != nil {
		return StepReply{}, err
	}
	s.metrics.requests.Inc()
	if err := t.admit(); err != nil {
		return StepReply{}, err
	}
	ctx, cancel := s.wrapCtx(ctx)
	defer cancel()
	req := &stepReq{ctx: ctx, decisions: decisions, chaos: chaos, done: make(chan stepDone, 1)}
	select {
	case t.queue <- req:
	default:
		t.probeFailed()
		t.admMu.Lock()
		t.rejQueue++
		t.admMu.Unlock()
		s.metrics.rejQueue.Inc()
		return StepReply{}, &RejectionError{Tenant: name, Code: "queue_full", Status: 503,
			RetryAfter: s.opts.BaseBackoff}
	}
	start := s.now()
	select {
	case d := <-req.done:
		s.metrics.stepUS.Observe(float64(s.now().Sub(start).Microseconds()))
		return d.reply, d.err
	case <-ctx.Done():
		// The worker observes the same context: if it already started the
		// step it cancels at the next pipeline checkpoint and rebuilds; if
		// the request is still queued it refuses it on dequeue. Either way
		// the buffered done channel never blocks it.
		return StepReply{}, ctx.Err()
	case <-t.stop:
		// The tenant halted between enqueue and service (daemon shutdown or
		// removal); halt fails the drained queue, but the stop select keeps
		// this caller from waiting on a reply that will never come.
		return StepReply{}, ErrClosed
	}
}

// Checkpoint forces a snapshot of one tenant now.
func (s *Server) Checkpoint(name string) (TenantStatus, error) {
	t, err := s.tenant(name)
	if err != nil {
		return TenantStatus{}, err
	}
	if s.opts.CheckpointDir == "" {
		return TenantStatus{}, clientErrorf("checkpointing is disabled (no -checkpoint-dir)")
	}
	t.stMu.Lock()
	err = t.checkpointLocked()
	t.stMu.Unlock()
	if err != nil {
		return TenantStatus{}, err
	}
	return t.statusSnapshot(), nil
}

// ScheduleReply is the externally visible incumbent schedule of a tenant.
type ScheduleReply struct {
	Tenant    string    `json:"tenant"`
	Instances int       `json:"instances"`
	Calls     int       `json:"calls"`
	Makespan  float64   `json:"makespan"`
	PE        []int     `json:"pe"`
	Start     []float64 `json:"start"`
	Speed     []float64 `json:"speed"`
	Digest    string    `json:"digest"`
}

// Schedule returns a tenant's incumbent schedule.
func (s *Server) Schedule(name string) (ScheduleReply, error) {
	t, err := s.tenant(name)
	if err != nil {
		return ScheduleReply{}, err
	}
	t.stMu.Lock()
	defer t.stMu.Unlock()
	sch := t.mgr.Schedule()
	rep := ScheduleReply{
		Tenant:    name,
		Instances: len(t.log),
		Calls:     t.mgr.Calls(),
		Digest:    digestHex(scheduleDigest(t.mgr)),
	}
	if sch != nil {
		rep.Makespan = sch.Makespan
		rep.PE = append([]int(nil), sch.PE...)
		rep.Start = append([]float64(nil), sch.Start...)
		rep.Speed = append([]float64(nil), sch.Speed...)
	}
	return rep, nil
}

// DumpEvents writes a tenant's flight-recorder window (most recent telemetry)
// as JSONL.
func (s *Server) DumpEvents(name string, w interface{ Write([]byte) (int, error) }) error {
	t, err := s.tenant(name)
	if err != nil {
		return err
	}
	return t.flight.DumpTo(w)
}

// DaemonHealth is the daemon-level health report: per-tenant status plus the
// serving totals.
type DaemonHealth struct {
	Status  string         `json:"status"` // "ok", or "degraded" when any tenant is
	Tenants []TenantStatus `json:"tenants"`

	Requests        int64 `json:"requests"`
	Steps           int64 `json:"steps"`
	Rejected        int64 `json:"rejected"`
	DeadlineCancels int64 `json:"deadline_cancels"`
	Panics          int64 `json:"panics"`
	Restarts        int64 `json:"restarts"`
	Checkpoints     int64 `json:"checkpoints"`
	Restores        int64 `json:"restores"`
}

// Health assembles the daemon health report.
func (s *Server) Health() DaemonHealth {
	h := DaemonHealth{
		Status:          "ok",
		Tenants:         s.Tenants(),
		Requests:        s.metrics.requests.Value(),
		Steps:           s.metrics.steps.Value(),
		DeadlineCancels: s.metrics.deadlineCancels.Value(),
		Panics:          s.metrics.panics.Value(),
		Restarts:        s.metrics.restarts.Value(),
		Checkpoints:     s.metrics.checkpoints.Value(),
		Restores:        s.metrics.restores.Value(),
	}
	h.Rejected = s.metrics.rejRate.Value() + s.metrics.rejQueue.Value() +
		s.metrics.rejBreaker.Value() + s.metrics.rejShed.Value()
	for _, t := range h.Tenants {
		if t.Status != "ok" {
			h.Status = "degraded"
			break
		}
	}
	return h
}

// Close shuts the daemon down gracefully: no new admissions, workers drained
// and stopped, a final checkpoint per tenant, telemetry flushed.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	var first error
	for _, t := range ts {
		t.halt()
		t.stMu.Lock()
		if err := t.checkpointLocked(); err != nil && first == nil {
			first = err
		}
		t.stMu.Unlock()
		t.closeSinks()
	}
	return first
}

// Abandon simulates a crash for the chaos harness: workers stop so goroutines
// do not leak into the test, but nothing is checkpointed or flushed — exactly
// the state a kill -9 leaves behind. Restore must cope using only what was
// already durably on disk.
func (s *Server) Abandon() {
	if s.closed.Swap(true) {
		return
	}
	s.mu.Lock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	for _, t := range ts {
		t.halt()
	}
}

// Handler returns the daemon's HTTP API.
//
//	POST   /v1/tenants                    submit a TenantSpec
//	GET    /v1/tenants                    list tenant statuses
//	GET    /v1/tenants/{name}             one tenant's status
//	DELETE /v1/tenants/{name}             remove a tenant
//	POST   /v1/tenants/{name}/step        {"decisions":[...],"chaos":{...}}
//	GET    /v1/tenants/{name}/schedule    incumbent schedule + digest
//	GET    /v1/tenants/{name}/events      flight-recorder window (JSONL)
//	POST   /v1/tenants/{name}/checkpoint  force a snapshot
//	GET    /v1/healthz                    daemon health report
//	GET    /v1/metrics                    metrics registry (JSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		var spec TenantSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeError(w, clientErrorf("decode spec: %v", err))
			return
		}
		st, err := s.CreateTenant(spec)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, s.Tenants())
	})
	mux.HandleFunc("GET /v1/tenants/{name}", func(w http.ResponseWriter, r *http.Request) {
		t, err := s.tenant(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, t.statusSnapshot())
	})
	mux.HandleFunc("DELETE /v1/tenants/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.RemoveTenant(r.PathValue("name")); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/tenants/{name}/step", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Decisions []int     `json:"decisions"`
			Chaos     ChaosSpec `json:"chaos"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(w, clientErrorf("decode step: %v", err))
			return
		}
		rep, err := s.Step(r.Context(), r.PathValue("name"), body.Decisions, body.Chaos)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, rep)
	})
	mux.HandleFunc("GET /v1/tenants/{name}/schedule", func(w http.ResponseWriter, r *http.Request) {
		rep, err := s.Schedule(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, rep)
	})
	mux.HandleFunc("GET /v1/tenants/{name}/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		if err := s.DumpEvents(r.PathValue("name"), w); err != nil {
			writeError(w, err)
		}
	})
	mux.HandleFunc("POST /v1/tenants/{name}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Checkpoint(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, s.Health())
	})
	mux.Handle("GET /v1/metrics", s.reg)
	return mux
}

// NewHTTPServer wraps a handler in an http.Server with hardened limits: a
// client that trickles headers, never reads its response, or ships unbounded
// header blocks cannot pin a connection (or its goroutine) forever.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
}

// writeJSON encodes v to w (headers/status must already be written).
func writeJSON(w interface{ Write([]byte) (int, error) }, v any) {
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
