package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ctgdvfs/internal/apps/mpeg"
	"ctgdvfs/internal/ctgio"
	"ctgdvfs/internal/telemetry"
	"ctgdvfs/internal/trace"
)

// testVectors generates n deterministic decision vectors for the mpeg CTG.
func testVectors(t testing.TB, n int) [][]int {
	t.Helper()
	g, _, err := mpeg.Build()
	if err != nil {
		t.Fatalf("mpeg.Build: %v", err)
	}
	return trace.Fluctuating(g, 7, n, 0.4)
}

// mpegSpec is the standard test tenant: tight deadline, near-zero drift
// threshold so almost every step reschedules (exercising the full pipeline).
func mpegSpec(name string) TenantSpec {
	return TenantSpec{Name: name, Workload: "mpeg", DeadlineFactor: 1.6, Threshold: 1e-9}
}

func mustServer(t testing.TB, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustCreate(t testing.TB, s *Server, spec TenantSpec) {
	t.Helper()
	if _, err := s.CreateTenant(spec); err != nil {
		t.Fatalf("CreateTenant(%s): %v", spec.Name, err)
	}
}

func TestAPIRoundTrip(t *testing.T) {
	s := mustServer(t, Options{})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	cl := &Client{BaseURL: hs.URL}
	ctx := context.Background()

	st, err := cl.Submit(ctx, mpegSpec("vid0"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.Name != "vid0" || st.Status != "ok" {
		t.Fatalf("unexpected status after submit: %+v", st)
	}
	vecs := testVectors(t, 20)
	for i, v := range vecs {
		rep, err := cl.Step(ctx, "vid0", v, ChaosSpec{})
		if err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
		if rep.Instance != i {
			t.Fatalf("Step %d: instance %d", i, rep.Instance)
		}
		if rep.Makespan <= 0 {
			t.Fatalf("Step %d: non-positive makespan %v", i, rep.Makespan)
		}
	}
	sch, err := cl.Schedule(ctx, "vid0")
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if len(sch.PE) == 0 || sch.Digest == "" || sch.Instances != len(vecs) {
		t.Fatalf("unexpected schedule reply: %+v", sch)
	}
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "ok" || h.Steps != int64(len(vecs)) {
		t.Fatalf("unexpected health: %+v", h)
	}

	// Typed 404 for an unknown tenant, 400 for a malformed vector.
	if _, err := cl.StepOnce(ctx, "nope", vecs[0], ChaosSpec{}); err == nil {
		t.Fatal("expected 404 for unknown tenant")
	} else if ae, ok := err.(*APIError); !ok || ae.Status != 404 {
		t.Fatalf("want 404 APIError, got %v", err)
	}
	if _, err := cl.StepOnce(ctx, "vid0", []int{1}, ChaosSpec{}); err == nil {
		t.Fatal("expected 400 for short vector")
	} else if ae, ok := err.(*APIError); !ok || ae.Status != 400 {
		t.Fatalf("want 400 APIError, got %v", err)
	}
}

func TestRateLimitRejectsWithRetryAfter(t *testing.T) {
	s := mustServer(t, Options{Rate: 1, Burst: 1})
	mustCreate(t, s, mpegSpec("a"))
	vecs := testVectors(t, 2)
	ctx := context.Background()
	if _, err := s.Step(ctx, "a", vecs[0], ChaosSpec{}); err != nil {
		t.Fatalf("first step should pass the bucket: %v", err)
	}
	_, err := s.Step(ctx, "a", vecs[1], ChaosSpec{})
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Code != "rate_limited" || rej.Status != 429 {
		t.Fatalf("want rate_limited 429, got %v", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("want positive RetryAfter, got %v", rej.RetryAfter)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s := mustServer(t, Options{QueueDepth: 1, Chaos: true})
	mustCreate(t, s, mpegSpec("a"))
	vecs := testVectors(t, 1)
	ctx := context.Background()

	// Occupy the worker with a slow chaos step, then flood concurrently: the
	// depth-1 queue takes one request and the rest must be rejected with the
	// typed queue_full error (not blocked, not dropped silently).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Step(ctx, "a", vecs[0], ChaosSpec{DelayMS: 500})
	}()
	time.Sleep(100 * time.Millisecond) // let the slow step reach the worker
	const flood = 8
	errs := make(chan error, flood)
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Step(ctx, "a", vecs[0], ChaosSpec{})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	full := 0
	for err := range errs {
		var rej *RejectionError
		if errors.As(err, &rej) && rej.Code == "queue_full" {
			if rej.Status != 503 {
				t.Fatalf("queue_full status %d, want 503", rej.Status)
			}
			full++
		}
	}
	if full == 0 {
		t.Fatal("flood against a busy depth-1 queue produced no queue_full rejections")
	}
}

func TestPanicIsContainedAndBreakerOpens(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s := mustServer(t, Options{Chaos: true, BaseBackoff: 100 * time.Millisecond, Now: clock})
	mustCreate(t, s, mpegSpec("a"))
	vecs := testVectors(t, 4)
	ctx := context.Background()

	_, err := s.Step(ctx, "a", vecs[0], ChaosSpec{Panic: "boom"})
	var pe *PanicError
	if !errors.As(err, &pe) || !strings.Contains(pe.Value, "boom") {
		t.Fatalf("want contained PanicError, got %v", err)
	}

	// The breaker is now open: immediate retry is rejected with a hint.
	_, err = s.Step(ctx, "a", vecs[0], ChaosSpec{})
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Code != "breaker_open" {
		t.Fatalf("want breaker_open, got %v", err)
	}

	// After the backoff expires the half-open probe is admitted and, on
	// success, the breaker closes.
	now = now.Add(time.Second)
	if _, err := s.Step(ctx, "a", vecs[0], ChaosSpec{}); err != nil {
		t.Fatalf("post-backoff probe: %v", err)
	}
	if _, err := s.Step(ctx, "a", vecs[1], ChaosSpec{}); err != nil {
		t.Fatalf("post-probe step: %v", err)
	}

	st := s.Tenants()[0]
	if st.Panics != 1 || st.Restarts != 1 {
		t.Fatalf("want 1 panic + 1 restart, got %+v", st)
	}

	// The panic is on the telemetry stream with provenance: a tenant_panic
	// event carrying the panic value, and a tenant_restart caused by it.
	var buf bytes.Buffer
	if err := s.DumpEvents("a", &buf); err != nil {
		t.Fatalf("DumpEvents: %v", err)
	}
	evs, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	var panicSeq uint64
	var sawRestart bool
	for _, e := range evs {
		switch e.Kind {
		case telemetry.KindTenantPanic:
			if !strings.Contains(e.Reason, "boom") || e.Seq == 0 {
				t.Fatalf("bad tenant_panic event: %+v", e)
			}
			panicSeq = e.Seq
		case telemetry.KindTenantRestart:
			if e.Cause != panicSeq || e.Reason != "panic_backoff" {
				t.Fatalf("bad tenant_restart event: %+v", e)
			}
			sawRestart = true
		}
	}
	if panicSeq == 0 || !sawRestart {
		t.Fatalf("missing tenant_panic/tenant_restart events in %d events", len(evs))
	}
}

// TestPanicIsolationAcrossTenants drives a victim tenant to repeated panics
// while a sibling processes the same workload as an undisturbed baseline; the
// sibling's replies must be bit-for-bit identical and the victim's state must
// be rebuilt deterministically (its final digest matches a never-panicked
// run of the same committed steps).
func TestPanicIsolationAcrossTenants(t *testing.T) {
	now := time.Unix(1000, 0)
	s := mustServer(t, Options{Chaos: true, Now: func() time.Time { return now }})
	mustCreate(t, s, mpegSpec("victim"))
	mustCreate(t, s, mpegSpec("sibling"))

	base := mustServer(t, Options{})
	mustCreate(t, base, mpegSpec("victim"))
	mustCreate(t, base, mpegSpec("sibling"))

	vecs := testVectors(t, 30)
	ctx := context.Background()
	for i, v := range vecs {
		if i%7 == 3 {
			if _, err := s.Step(ctx, "victim", v, ChaosSpec{Panic: "chaos"}); !isPanicErr(err) {
				t.Fatalf("step %d: want PanicError, got %v", i, err)
			}
			now = now.Add(10 * time.Second) // let the backoff expire
		}
		got, err := s.Step(ctx, "victim", v, ChaosSpec{})
		if err != nil {
			t.Fatalf("victim step %d: %v", i, err)
		}
		want, err := base.Step(ctx, "victim", v, ChaosSpec{})
		if err != nil {
			t.Fatalf("baseline victim step %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("victim step %d diverged after panics:\n got %+v\nwant %+v", i, got, want)
		}

		got, err = s.Step(ctx, "sibling", v, ChaosSpec{})
		if err != nil {
			t.Fatalf("sibling step %d: %v", i, err)
		}
		want, err = base.Step(ctx, "sibling", v, ChaosSpec{})
		if err != nil {
			t.Fatalf("baseline sibling step %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("sibling step %d diverged (cross-tenant interference):\n got %+v\nwant %+v", i, got, want)
		}
	}
	// Final state digests agree with the baseline daemon's.
	for _, name := range []string{"victim", "sibling"} {
		gs, _ := s.Schedule(name)
		ws, _ := base.Schedule(name)
		if gs.Digest != ws.Digest {
			t.Fatalf("%s: digest %s != baseline %s", name, gs.Digest, ws.Digest)
		}
	}
}

// fakeCtx is a context whose Err flips to context.DeadlineExceeded after a
// fixed number of polls — deterministic mid-pipeline cancellation.
type fakeCtx struct {
	mu    sync.Mutex
	polls int
	fuse  int
}

func (c *fakeCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.polls++
	if c.polls > c.fuse {
		return context.DeadlineExceeded
	}
	return nil
}
func (c *fakeCtx) Done() <-chan struct{}       { return nil }
func (c *fakeCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *fakeCtx) Value(any) any               { return nil }

func TestDeadlineCancelMidStepRebuilds(t *testing.T) {
	s := mustServer(t, Options{})
	base := mustServer(t, Options{})
	mustCreate(t, s, mpegSpec("a"))
	mustCreate(t, base, mpegSpec("a"))
	vecs := testVectors(t, 20)
	ctx := context.Background()
	for i, v := range vecs[:10] {
		if _, err := s.Step(ctx, "a", v, ChaosSpec{}); err != nil {
			t.Fatalf("warmup step %d: %v", i, err)
		}
		if _, err := base.Step(ctx, "a", v, ChaosSpec{}); err != nil {
			t.Fatalf("baseline step %d: %v", i, err)
		}
	}
	// Cancel mid-pipeline: the fuse admits the pre-Step checks, then trips
	// inside the reschedule pipeline (threshold 1e-9 makes every step
	// reschedule).
	fc := &fakeCtx{fuse: 4}
	_, err := s.Step(fc, "a", vecs[10], ChaosSpec{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from cancelled step, got %v", err)
	}
	if fc.polls <= fc.fuse {
		t.Fatalf("context was never polled past the fuse (%d polls)", fc.polls)
	}
	// The rebuild left a provenance trail (checked now, before further steps
	// rotate it out of the flight-recorder window).
	var buf bytes.Buffer
	s.DumpEvents("a", &buf)
	evs, _ := telemetry.ReadJSONL(&buf)
	sawRebuild := false
	for _, e := range evs {
		if e.Kind == telemetry.KindTenantRestart && e.Reason == "cancel_rebuild" {
			sawRebuild = true
		}
	}
	if !sawRebuild {
		t.Fatal("no tenant_restart/cancel_rebuild event recorded")
	}

	// The cancelled step must not have committed, and the rebuild must leave
	// the tenant exactly where it was: continuing with the same vectors
	// yields bit-for-bit the baseline's replies and final digest.
	for i, v := range vecs[10:] {
		got, err := s.Step(ctx, "a", v, ChaosSpec{})
		if err != nil {
			t.Fatalf("post-cancel step %d: %v", i, err)
		}
		want, err := base.Step(ctx, "a", v, ChaosSpec{})
		if err != nil {
			t.Fatalf("baseline step %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("post-cancel step %d diverged:\n got %+v\nwant %+v", i, got, want)
		}
	}
	gs, _ := s.Schedule("a")
	ws, _ := base.Schedule("a")
	if gs.Digest != ws.Digest {
		t.Fatalf("digest after cancel-rebuild %s != baseline %s", gs.Digest, ws.Digest)
	}
}

func TestExpiredContextRefusedCleanly(t *testing.T) {
	s := mustServer(t, Options{})
	mustCreate(t, s, mpegSpec("a"))
	vecs := testVectors(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Step(ctx, "a", vecs[0], ChaosSpec{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if st := s.Tenants()[0]; st.Instances != 0 || st.Restarts != 0 {
		t.Fatalf("clean refusal must not touch state: %+v", st)
	}
}

func TestCheckpointRestoreResumesBitForBit(t *testing.T) {
	dir := t.TempDir()
	vecs := testVectors(t, 40)
	ctx := context.Background()

	// Uninterrupted baseline.
	base := mustServer(t, Options{})
	mustCreate(t, base, mpegSpec("a"))
	baseline := make([]StepReply, len(vecs))
	for i, v := range vecs {
		rep, err := base.Step(ctx, "a", v, ChaosSpec{})
		if err != nil {
			t.Fatalf("baseline step %d: %v", i, err)
		}
		baseline[i] = rep
	}

	// Daemon 1: checkpoint every 8 steps, killed after 27 (last checkpoint
	// at 24).
	s1 := mustServer(t, Options{CheckpointDir: dir, CheckpointEvery: 8})
	mustCreate(t, s1, mpegSpec("a"))
	for i, v := range vecs[:27] {
		if _, err := s1.Step(ctx, "a", v, ChaosSpec{}); err != nil {
			t.Fatalf("s1 step %d: %v", i, err)
		}
	}
	s1.Abandon() // kill -9: no final checkpoint, no flush

	// Daemon 2 resumes from the last durable snapshot.
	s2 := mustServer(t, Options{CheckpointDir: dir, CheckpointEvery: 8})
	sts := s2.Tenants()
	if len(sts) != 1 || !sts[0].Restored || sts[0].RestoredFrom != "ok" {
		t.Fatalf("tenant not restored: %+v", sts)
	}
	resumed := sts[0].Instances
	if resumed != 24 {
		t.Fatalf("restored to instance %d, want 24 (last checkpoint)", resumed)
	}
	// Re-submit the suffix; every reply must match the uninterrupted run.
	for i := resumed; i < len(vecs); i++ {
		rep, err := s2.Step(ctx, "a", vecs[i], ChaosSpec{})
		if err != nil {
			t.Fatalf("s2 step %d: %v", i, err)
		}
		if rep != baseline[i] {
			t.Fatalf("step %d after restore diverged:\n got %+v\nwant %+v", i, rep, baseline[i])
		}
	}
	gs, _ := s2.Schedule("a")
	ws, _ := base.Schedule("a")
	if gs.Digest != ws.Digest {
		t.Fatalf("final digest %s != baseline %s", gs.Digest, ws.Digest)
	}
}

func TestRestoreFallsBackOnTornSnapshot(t *testing.T) {
	dir := t.TempDir()
	vecs := testVectors(t, 20)
	ctx := context.Background()

	s1 := mustServer(t, Options{CheckpointDir: dir, CheckpointEvery: 8})
	mustCreate(t, s1, mpegSpec("a"))
	for i, v := range vecs {
		if _, err := s1.Step(ctx, "a", v, ChaosSpec{}); err != nil {
			t.Fatalf("s1 step %d: %v", i, err)
		}
	}
	s1.Abandon()

	// Tear the primary snapshot mid-payload (simulated crash mid-write that
	// somehow bypassed the atomic rename — e.g. disk corruption).
	p := snapshotPath(dir, "a")
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustServer(t, Options{CheckpointDir: dir})
	st := s2.Tenants()[0]
	if !st.Restored || st.RestoredFrom != "fallback" {
		t.Fatalf("want fallback restore, got %+v", st)
	}
	if st.Instances != 8 {
		t.Fatalf("fallback restored to %d, want 8 (previous generation)", st.Instances)
	}

	// With both generations corrupt, restore reports a typed SnapshotError
	// instead of silently serving bad state.
	if err := os.WriteFile(p+".prev", []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = New(Options{CheckpointDir: dir})
	var se *SnapshotError
	if !errors.As(err, &se) {
		t.Fatalf("want SnapshotError for doubly-corrupt snapshot, got %v", err)
	}
}

func TestSnapshotRoundTripAndChecksum(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x.ckpt")
	pay := &snapshotPayload{Name: "x", Spec: mpegSpec("x"),
		Vectors: [][]int{{1, 0, 1, 0, 1, 0, 1, 0, 1}}, Instances: 1, Calls: 1, Digest: "00"}
	if err := writeSnapshot(p, pay); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	got, err := loadSnapshot(p)
	if err != nil {
		t.Fatalf("loadSnapshot: %v", err)
	}
	if got.Name != "x" || got.Instances != 1 || len(got.Vectors) != 1 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	// Flip one payload byte: the checksum must catch it.
	raw, _ := os.ReadFile(p)
	raw[len(raw)-2] ^= 0x20
	os.WriteFile(p, raw, 0o644)
	if _, err := loadSnapshot(p); err == nil {
		t.Fatal("corrupted snapshot loaded without error")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want checksum diagnosis, got %v", err)
	}
}

func TestRemoveTenantDeletesSnapshots(t *testing.T) {
	dir := t.TempDir()
	s := mustServer(t, Options{CheckpointDir: dir})
	mustCreate(t, s, mpegSpec("a"))
	if _, err := os.Stat(snapshotPath(dir, "a")); err != nil {
		t.Fatalf("initial checkpoint missing: %v", err)
	}
	if err := s.RemoveTenant("a"); err != nil {
		t.Fatalf("RemoveTenant: %v", err)
	}
	if _, err := os.Stat(snapshotPath(dir, "a")); !os.IsNotExist(err) {
		t.Fatalf("snapshot survived removal: %v", err)
	}
	if err := s.RemoveTenant("a"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("want ErrUnknownTenant, got %v", err)
	}
}

func TestInlineCTGSubmit(t *testing.T) {
	// Round-trip an app graph through the ctgio text format and submit it as
	// an inline CTG.
	g, p, err := mpeg.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ctgio.Write(&buf, g, p); err != nil {
		t.Fatalf("write ctg: %v", err)
	}
	s := mustServer(t, Options{})
	if _, err := s.CreateTenant(TenantSpec{Name: "inline", CTG: buf.String(), Threshold: 1e-9}); err != nil {
		t.Fatalf("inline submit: %v", err)
	}
	vecs := testVectors(t, 3)
	for i, v := range vecs {
		if _, err := s.Step(context.Background(), "inline", v, ChaosSpec{}); err != nil {
			t.Fatalf("inline step %d: %v", i, err)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	s := mustServer(t, Options{})
	bad := []TenantSpec{
		{},                                      // no name
		{Name: "x/y", Workload: "mpeg"},         // bad charset
		{Name: "a"},                             // neither workload nor ctg
		{Name: "a", Workload: "nope"},           // unknown workload
		{Name: "a", Workload: "mpeg", CTG: "x"}, // both
	}
	for i, spec := range bad {
		if _, err := s.CreateTenant(spec); err == nil {
			t.Fatalf("spec %d accepted: %+v", i, spec)
		} else if !isClientErr(err) {
			t.Fatalf("spec %d: want client error, got %v", i, err)
		}
	}
	mustCreate(t, s, mpegSpec("dup"))
	if _, err := s.CreateTenant(mpegSpec("dup")); !errors.Is(err, ErrDuplicateTenant) {
		t.Fatalf("want ErrDuplicateTenant, got %v", err)
	}
}

func TestCloseRejectsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, s, mpegSpec("a"))
	vecs := testVectors(t, 5)
	for _, v := range vecs {
		if _, err := s.Step(context.Background(), "a", v, ChaosSpec{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Step(context.Background(), "a", vecs[0], ChaosSpec{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after Close, got %v", err)
	}
	// The graceful final checkpoint captured all 5 instances.
	pay, err := loadSnapshot(snapshotPath(dir, "a"))
	if err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	if pay.Instances != 5 {
		t.Fatalf("final snapshot has %d instances, want 5", pay.Instances)
	}
}
