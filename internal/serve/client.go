package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Client is a small HTTP client for the daemon API with jittered-exponential
// retry on retryable failures (429/503 responses and transport errors). It
// honors Retry-After hints when the server supplies one and gives up when the
// context expires or MaxRetries is exhausted. A Client is not safe for
// concurrent use (it owns a mutable RNG and retry budget); give each
// goroutine its own.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client (nil selects http.DefaultClient).
	HTTP *http.Client
	// MaxRetries bounds retry attempts per request (0 selects 5; negative
	// disables retries).
	MaxRetries int
	// BaseDelay is the first retry delay, doubled per attempt and jittered
	// into [d/2, d) (0 selects 25ms); MaxDelay caps it (0 selects 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Rand is the jitter source (nil selects a fixed-seed RNG, keeping
	// campaign retries reproducible).
	Rand *rand.Rand
	// Sleep overrides the inter-retry sleep for tests (nil selects a
	// context-aware real sleep).
	Sleep func(context.Context, time.Duration) error
}

// APIError is a non-2xx daemon response that was not retried to success.
type APIError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: api error %d (%s): %s", e.Status, e.Code, e.Message)
}

// Retryable reports whether the error is worth retrying (throttling or
// transient unavailability, not a caller bug).
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) maxRetries() int {
	switch {
	case c.MaxRetries < 0:
		return 0
	case c.MaxRetries == 0:
		return 5
	}
	return c.MaxRetries
}

func (c *Client) delays() (base, max time.Duration) {
	base, max = c.BaseDelay, c.MaxDelay
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	return base, max
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-tm.C:
		return nil
	}
}

func (c *Client) jitter(d time.Duration) time.Duration {
	rng := c.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
		c.Rand = rng
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// do runs one JSON request with retries; out, when non-nil, receives the
// decoded 2xx body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return err
		}
	}
	base, maxD := c.delays()
	delay := base
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http().Do(req)
		if err == nil {
			err = decodeResponse(resp, out)
			if err == nil {
				return nil
			}
			if ae, ok := err.(*APIError); !ok || !ae.Retryable() {
				return err
			}
		} else if ctx.Err() != nil {
			return ctx.Err()
		}
		lastErr = err
		if attempt >= c.maxRetries() {
			return lastErr
		}
		wait := c.jitter(delay)
		if ae, ok := err.(*APIError); ok && ae.RetryAfter > wait {
			wait = ae.RetryAfter
		}
		if delay *= 2; delay > maxD {
			delay = maxD
		}
		if serr := c.sleep(ctx, wait); serr != nil {
			return lastErr
		}
	}
}

// decodeResponse maps a response to either out (2xx) or an *APIError.
func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			io.Copy(io.Discard, resp.Body)
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	var env struct {
		Error        string `json:"error"`
		Code         string `json:"code"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	json.Unmarshal(raw, &env)
	ae := &APIError{Status: resp.StatusCode, Code: env.Code, Message: env.Error}
	if ae.Message == "" {
		ae.Message = string(raw)
	}
	if env.RetryAfterMS > 0 {
		ae.RetryAfter = time.Duration(env.RetryAfterMS) * time.Millisecond
	} else if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// Submit creates a tenant.
func (c *Client) Submit(ctx context.Context, spec TenantSpec) (TenantStatus, error) {
	var st TenantStatus
	err := c.do(ctx, http.MethodPost, "/v1/tenants", spec, &st)
	return st, err
}

// Step submits one decision vector.
func (c *Client) Step(ctx context.Context, tenant string, decisions []int, chaos ChaosSpec) (StepReply, error) {
	body := struct {
		Decisions []int     `json:"decisions"`
		Chaos     ChaosSpec `json:"chaos"`
	}{decisions, chaos}
	var rep StepReply
	err := c.do(ctx, http.MethodPost, "/v1/tenants/"+tenant+"/step", body, &rep)
	return rep, err
}

// StepOnce is Step without any retries (the caller observes every rejection).
func (c *Client) StepOnce(ctx context.Context, tenant string, decisions []int, chaos ChaosSpec) (StepReply, error) {
	saved := c.MaxRetries
	c.MaxRetries = -1
	defer func() { c.MaxRetries = saved }()
	return c.Step(ctx, tenant, decisions, chaos)
}

// Schedule fetches a tenant's incumbent schedule.
func (c *Client) Schedule(ctx context.Context, tenant string) (ScheduleReply, error) {
	var rep ScheduleReply
	err := c.do(ctx, http.MethodGet, "/v1/tenants/"+tenant+"/schedule", nil, &rep)
	return rep, err
}

// Status fetches one tenant's status.
func (c *Client) Status(ctx context.Context, tenant string) (TenantStatus, error) {
	var st TenantStatus
	err := c.do(ctx, http.MethodGet, "/v1/tenants/"+tenant, nil, &st)
	return st, err
}

// Checkpoint forces a snapshot of one tenant.
func (c *Client) Checkpoint(ctx context.Context, tenant string) (TenantStatus, error) {
	var st TenantStatus
	err := c.do(ctx, http.MethodPost, "/v1/tenants/"+tenant+"/checkpoint", nil, &st)
	return st, err
}

// Health fetches the daemon health report.
func (c *Client) Health(ctx context.Context) (DaemonHealth, error) {
	var h DaemonHealth
	err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &h)
	return h, err
}
