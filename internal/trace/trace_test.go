package trace

import (
	"math"
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/tgff"
)

func testGraph(t *testing.T) *ctg.Graph {
	t.Helper()
	g, _, err := tgff.Generate(tgff.Config{Seed: 5, Nodes: 20, PEs: 3, Branches: 3, Category: tgff.Flat})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMovieVectorsShape(t *testing.T) {
	g := testGraph(t)
	clips := MovieClips()
	if len(clips) != 8 {
		t.Fatalf("got %d clips, want 8", len(clips))
	}
	names := map[string]bool{}
	for _, m := range clips {
		names[m.Name] = true
		v := m.Generate(g, 500)
		if len(v) != 500 {
			t.Fatalf("%s: %d vectors", m.Name, len(v))
		}
		for _, row := range v {
			if len(row) != g.NumForks() {
				t.Fatalf("%s: row width %d", m.Name, len(row))
			}
			for fi, o := range row {
				if o < 0 || o >= g.Outcomes(g.Forks()[fi]) {
					t.Fatalf("%s: outcome %d out of range", m.Name, o)
				}
			}
		}
		// Long-run frequencies must not be fully degenerate, and at least
		// one fork must swing substantially across the clip (frame-type
		// regime changes).
		avg := AverageProbs(g, v)
		for fi := range avg {
			if avg[fi][0] < 0.01 || avg[fi][0] > 0.99 {
				t.Fatalf("%s fork %d: degenerate average %v", m.Name, fi, avg[fi][0])
			}
		}
		const window = 50
		swing := 0.0
		for fi := range avg {
			lo, hi := 1.0, 0.0
			count := 0
			for i, row := range v {
				if row[fi] == 0 {
					count++
				}
				if i >= window {
					if v[i-window][fi] == 0 {
						count--
					}
					freq := float64(count) / window
					if freq < lo {
						lo = freq
					}
					if freq > hi {
						hi = freq
					}
				}
			}
			if hi-lo > swing {
				swing = hi - lo
			}
		}
		if swing < 0.3 {
			t.Fatalf("%s: max windowed swing %v, want regime changes", m.Name, swing)
		}
	}
	for _, want := range []string{"Airwolf", "Bike", "Bus", "Coaster", "Flower", "Shuttle", "Tennis", "Train"} {
		if !names[want] {
			t.Fatalf("missing clip %s", want)
		}
	}
}

func TestMovieDeterministic(t *testing.T) {
	g := testGraph(t)
	m := MovieClips()[0]
	v1 := m.Generate(g, 100)
	v2 := m.Generate(g, 100)
	for i := range v1 {
		for fi := range v1[i] {
			if v1[i][fi] != v2[i][fi] {
				t.Fatal("movie generation is not deterministic")
			}
		}
	}
}

func TestShuttleHasShortestFrames(t *testing.T) {
	// Shuttle is the QCIF clip: its frames are the shortest, so it sees
	// the most frame-type transitions per 1000 macroblocks — the Table 2
	// outlier.
	clips := MovieClips()
	var shuttle, minOther int
	minOther = 1 << 30
	for _, m := range clips {
		if m.Name == "Shuttle" {
			shuttle = m.FrameLen
		} else if m.FrameLen < minOther {
			minOther = m.FrameLen
		}
	}
	if shuttle >= minOther {
		t.Fatalf("Shuttle frame length %d not below others' min %d", shuttle, minOther)
	}
}

func TestFluctuatingBalancedAverage(t *testing.T) {
	g := testGraph(t)
	v := Fluctuating(g, 7, 4000, 0.45)
	avg := AverageProbs(g, v)
	for fi := range avg {
		if math.Abs(avg[fi][0]-0.5) > 0.08 {
			t.Fatalf("fork %d long-run average %v, want ≈0.5", fi, avg[fi][0])
		}
	}
	// And the windowed probability must actually swing (amplitude ≈0.45).
	window := 50
	swingHi, swingLo := false, false
	count := 0
	for i, row := range v {
		count += 1 - row[0] // outcome 0 count? track outcome-0 freq
		if i >= window {
			count -= 1 - v[i-window][0]
			freq := 1 - float64(count)/float64(window)
			if freq > 0.75 {
				swingHi = true
			}
			if freq < 0.25 {
				swingLo = true
			}
		}
	}
	if !swingHi || !swingLo {
		t.Fatalf("fluctuating trace never swings (hi=%v lo=%v)", swingHi, swingLo)
	}
}

func TestRoadSequence(t *testing.T) {
	g := testGraph(t)
	v := RoadSequence(g, 3, 1000)
	if len(v) != 1000 {
		t.Fatalf("got %d vectors", len(v))
	}
	for _, row := range v {
		if len(row) != g.NumForks() {
			t.Fatalf("row width %d", len(row))
		}
	}
	// Different seeds produce different routes.
	v2 := RoadSequence(g, 4, 1000)
	same := true
	for i := range v {
		for fi := range v[i] {
			if v[i][fi] != v2[i][fi] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different road seeds identical")
	}
}

func TestAverageProbsHandExample(t *testing.T) {
	b := ctg.NewBuilder()
	f := b.AddTask("", ctg.AndNode)
	x := b.AddTask("", ctg.AndNode)
	y := b.AddTask("", ctg.AndNode)
	b.AddCondEdge(f, x, 0, 0)
	b.AddCondEdge(f, y, 0, 1)
	g, err := b.Build(10)
	if err != nil {
		t.Fatal(err)
	}
	v := Vectors{{0}, {1}, {1}, {1}}
	avg := AverageProbs(g, v)
	if avg[0][0] != 0.25 || avg[0][1] != 0.75 {
		t.Fatalf("AverageProbs = %v", avg)
	}
	empty := AverageProbs(g, nil)
	if empty[0][0] != 0 {
		t.Fatal("empty average should be zero")
	}
}

func TestBiasedProfileAndApply(t *testing.T) {
	g, _, err := tgff.Generate(tgff.Config{Seed: 6, Nodes: 22, PEs: 3, Branches: 3, Category: tgff.ForkJoin})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	minIdx, maxIdx := a.MinMaxWeightScenarios(func(ctg.TaskID) float64 { return 1 })
	_ = maxIdx
	prof := BiasedProfile(a, minIdx, 0.9)
	if len(prof) != g.NumForks() {
		t.Fatalf("profile width %d", len(prof))
	}
	sc := a.Scenario(minIdx)
	for fi := range prof {
		sum := 0.0
		for _, p := range prof[fi] {
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("fork %d profile sums to %v", fi, sum)
		}
		if o := sc.Assign[fi]; o != ctg.OutcomeUnassigned {
			if prof[fi][o] != 0.9 {
				t.Fatalf("fork %d: assigned outcome prob %v, want 0.9", fi, prof[fi][o])
			}
		}
	}
	if err := ApplyProfile(g, prof); err != nil {
		t.Fatal(err)
	}
	for fi, fork := range g.Forks() {
		got := g.BranchProbs(fork)
		for k := range got {
			if math.Abs(got[k]-prof[fi][k]) > 1e-12 {
				t.Fatalf("ApplyProfile mismatch on fork %d", fi)
			}
		}
	}
}

func TestMovieGOPStructure(t *testing.T) {
	// During the first (I) frame of a clip, the type branch (fork role 1)
	// must be overwhelmingly intra; during the following B frames it must
	// be overwhelmingly predicted.
	g, _, err := tgff.Generate(tgff.Config{Seed: 5, Nodes: 20, PEs: 3, Branches: 3, Category: tgff.Flat})
	if err != nil {
		t.Fatal(err)
	}
	m := MovieClips()[0] // GOP "IBBPBB", FrameLen 330
	v := m.Generate(g, 3*m.FrameLen)
	intraRate := func(from, to int) float64 {
		n := 0
		for i := from; i < to; i++ {
			if v[i][1] == 0 { // fork role 1, outcome 0 = intra
				n++
			}
		}
		return float64(n) / float64(to-from)
	}
	if r := intraRate(0, m.FrameLen); r < 0.9 {
		t.Fatalf("I-frame intra rate %v, want ≥ 0.9", r)
	}
	if r := intraRate(m.FrameLen, 3*m.FrameLen); r > 0.3 {
		t.Fatalf("B-frame intra rate %v, want ≤ 0.3", r)
	}
	// The skip branch (role 0) is almost never taken inside an I frame.
	skips := 0
	for i := 0; i < m.FrameLen; i++ {
		if v[i][0] == 1 {
			skips++
		}
	}
	if float64(skips)/float64(m.FrameLen) > 0.1 {
		t.Fatalf("I-frame skip rate %v, want tiny", float64(skips)/float64(m.FrameLen))
	}
}
