// Package trace synthesizes branch-decision workloads for CTGs: sequences
// of decision vectors (one outcome per branch fork node per CTG instance)
// with the temporal statistics the paper observed on real inputs — slowly
// varying windowed probability, local fluctuation, and occasional scene
// changes.
//
// The paper instruments a software MPEG decoder on eight real movie clips
// and a vehicle cruise controller on recorded road conditions; neither
// artifact is available, so this package generates statistically equivalent
// streams (see DESIGN.md's substitution notes). The adaptive framework only
// ever observes the 0/1 decision stream, so an equivalent stream exercises
// the same code paths.
package trace

import (
	"math/rand"

	"ctgdvfs/internal/ctg"
)

// Vectors is a sequence of branch decision vectors: Vectors[i][fi] is the
// outcome of the fork with dense index fi during instance i. Every fork gets
// a decision in every instance; the decisions of forks that end up inactive
// are simply never observed.
type Vectors [][]int

// scenes draws piecewise-constant per-scene probabilities for one fork and
// samples decisions from them. Scene lengths are uniform in
// [sceneLen/2, 3·sceneLen/2]; each scene's distribution is drawn by the
// provided function.
func scenes(rng *rand.Rand, n, sceneLen int, outcomes int, draw func() []float64) []int {
	out := make([]int, n)
	i := 0
	for i < n {
		l := sceneLen/2 + rng.Intn(sceneLen+1)
		if l < 1 {
			l = 1
		}
		probs := draw()
		for j := 0; j < l && i < n; j++ {
			out[i] = sample(rng, probs)
			i++
		}
	}
	return out
}

func sample(rng *rand.Rand, probs []float64) int {
	r := rng.Float64()
	acc := 0.0
	for k, p := range probs {
		acc += p
		if r < acc {
			return k
		}
	}
	return len(probs) - 1
}

// Movie is one synthetic "movie clip": a frame-structured decision source
// for the MPEG macroblock CTG. The dominant dynamic of a real MPEG stream is
// the frame type — the macroblocks of an I frame nearly all take the
// intra/IDCT branches, while B/P frames are mostly skipped or
// motion-compensated — overlaid with the scene's activity level (how much of
// the picture changes), which drifts and jumps at scene cuts. The paper
// points out that its 1000-vector sequences span only ~3 SIF frames
// (Shuttle: ~10 QCIF frames), so frame-type changes are exactly the
// threshold-crossing events its adaptive algorithm reacts to.
type Movie struct {
	Name string
	Seed int64
	// FrameLen is the number of macroblocks per frame (SIF ≈ 330,
	// QCIF ≈ 99).
	FrameLen int
	// GOP is the repeating frame-type pattern, e.g. "IBBPBB".
	GOP string
	// Activity is the clip's baseline action level in [0,1]; ActivityWalk
	// is the per-frame drift amplitude; CutProb is the per-frame chance of
	// a scene cut (activity jumps to a fresh level).
	Activity, ActivityWalk, CutProb float64
}

// MovieClips returns the paper's eight clips. All are SIF-resolution except
// Shuttle, a QCIF clip whose shorter frames mean far more frame-type
// transitions per 1000 macroblocks — which is why Table 2 reports it with by
// far the most re-scheduling calls.
func MovieClips() []Movie {
	return []Movie{
		{Name: "Airwolf", Seed: 11, FrameLen: 330, GOP: "IBBPBB", Activity: 0.55, ActivityWalk: 0.05, CutProb: 0.35},
		{Name: "Bike", Seed: 12, FrameLen: 330, GOP: "IBBPBB", Activity: 0.70, ActivityWalk: 0.05, CutProb: 0.50},
		{Name: "Bus", Seed: 13, FrameLen: 330, GOP: "IPBPBP", Activity: 0.60, ActivityWalk: 0.05, CutProb: 0.40},
		{Name: "Coaster", Seed: 14, FrameLen: 330, GOP: "IBBPBB", Activity: 0.80, ActivityWalk: 0.06, CutProb: 0.50},
		{Name: "Flower", Seed: 15, FrameLen: 330, GOP: "IBBPBB", Activity: 0.40, ActivityWalk: 0.04, CutProb: 0.25},
		{Name: "Shuttle", Seed: 16, FrameLen: 99, GOP: "IBBPBB", Activity: 0.30, ActivityWalk: 0.05, CutProb: 0.15},
		{Name: "Tennis", Seed: 17, FrameLen: 330, GOP: "IPPPPP", Activity: 0.55, ActivityWalk: 0.05, CutProb: 0.35},
		{Name: "Train", Seed: 18, FrameLen: 330, GOP: "IBBPBB", Activity: 0.45, ActivityWalk: 0.04, CutProb: 0.30},
	}
}

// forkRole assigns decision semantics by dense fork index, matching the
// MPEG CTG's fork order: 0 = skipped check, 1 = macroblock type,
// 2 = motion-compensation mode, 3+ = per-block IDCT pattern. Graphs with
// other fork counts reuse the per-block role for the remainder, so the
// generator also works as a generic frame-structured source.
func forkProb(role int, ftype byte, activity float64) float64 {
	switch role {
	case 0: // outcome 0 = NOT skipped
		switch ftype {
		case 'I':
			return 0.98
		case 'P':
			return 0.50 + 0.40*activity
		default: // B
			return 0.35 + 0.45*activity
		}
	case 1: // outcome 0 = intra (type I) macroblock
		if ftype == 'I' {
			return 0.97
		}
		return 0.02 + 0.10*activity
	case 2: // outcome 0 = full-pel motion compensation
		return 0.75 - 0.50*activity
	default: // outcome 0 = block needs IDCT
		if ftype == 'I' {
			return 0.92
		}
		return 0.10 + 0.75*activity
	}
}

// Generate produces n decision vectors for the forks of g.
func (m Movie) Generate(g *ctg.Graph, n int) Vectors {
	rng := rand.New(rand.NewSource(m.Seed))
	nf := g.NumForks()
	out := make(Vectors, n)
	// Start in a random regime, biased by the clip's baseline activity.
	activity := 0.05 + 0.2*rng.Float64()
	if rng.Float64() < m.Activity {
		activity = 0.75 + 0.2*rng.Float64()
	}
	ftype := byte('I')
	gopPos := 0
	for i := 0; i < n; i++ {
		if i%m.FrameLen == 0 {
			ftype = m.GOP[gopPos%len(m.GOP)]
			gopPos++
			if rng.Float64() < m.CutProb {
				// Scene cut: jump to a fresh activity regime — calm or
				// busy, biased by the clip's baseline.
				if rng.Float64() < m.Activity {
					activity = 0.75 + 0.2*rng.Float64()
				} else {
					activity = 0.05 + 0.2*rng.Float64()
				}
			} else {
				// Within a scene the activity only drifts slightly.
				activity += (2*rng.Float64() - 1) * m.ActivityWalk
				if activity < 0 {
					activity = -activity
				}
				if activity > 1 {
					activity = 2 - activity
				}
			}
		}
		row := make([]int, nf)
		for fi, fork := range g.Forks() {
			k := g.Outcomes(fork)
			role := fi
			if role > 3 {
				role = 3
			}
			p0 := forkProb(role, ftype, activity)
			d := make([]float64, k)
			d[0] = p0
			for x := 1; x < k; x++ {
				d[x] = (1 - p0) / float64(k-1)
			}
			row[fi] = sample(rng, d)
		}
		out[i] = row
	}
	return out
}

func transpose(cols [][]int, n, nf int) Vectors {
	out := make(Vectors, n)
	for i := 0; i < n; i++ {
		row := make([]int, nf)
		for fi := 0; fi < nf; fi++ {
			row[fi] = cols[fi][i]
		}
		out[i] = row
	}
	return out
}

// RoadKind labels a stretch of road for the cruise-controller workload.
type RoadKind int

// Road conditions; each biases the controller's two decision branches
// (accelerate-vs-decelerate, smooth-vs-corrective) differently.
const (
	Straight RoadKind = iota
	Uphill
	Downhill
	Bumpy
)

// roadProbs returns, per fork, the outcome-0 probability under a road kind.
func roadProbs(kind RoadKind) [2]float64 {
	switch kind {
	case Uphill:
		return [2]float64{0.92, 0.5} // mostly accelerate
	case Downhill:
		return [2]float64{0.08, 0.5} // mostly decelerate
	case Bumpy:
		return [2]float64{0.5, 0.05} // constant corrective action
	default: // Straight
		return [2]float64{0.5, 0.95} // balanced, smooth
	}
}

// RoadSequence generates n decision vectors for a cruise-controller CTG
// (two two-way forks) from a random sequence of road segments. seed selects
// the route.
func RoadSequence(g *ctg.Graph, seed int64, n int) Vectors {
	rng := rand.New(rand.NewSource(seed))
	nf := g.NumForks()
	out := make(Vectors, 0, n)
	kinds := []RoadKind{Straight, Uphill, Downhill, Bumpy}
	for len(out) < n {
		kind := kinds[rng.Intn(len(kinds))]
		segLen := 30 + rng.Intn(80)
		probs := roadProbs(kind)
		for j := 0; j < segLen && len(out) < n; j++ {
			row := make([]int, nf)
			for fi, fork := range g.Forks() {
				k := g.Outcomes(fork)
				p0 := 0.5
				if fi < 2 {
					p0 = probs[fi]
				}
				d := make([]float64, k)
				d[0] = p0
				for x := 1; x < k; x++ {
					d[x] = (1 - p0) / float64(k-1)
				}
				row[fi] = sample(rng, d)
			}
			out = append(out, row)
		}
	}
	return out
}

// Fluctuating generates the random-CTG test vectors of the paper's Tables 4
// and 5: the long-run average probability of every outcome of every fork is
// equal (0.5 for two-way forks), but scene-by-scene probabilities fluctuate
// with the given amplitude (the paper observed 0.4–0.5 on MPEG).
func Fluctuating(g *ctg.Graph, seed int64, n int, amplitude float64) Vectors {
	rng := rand.New(rand.NewSource(seed))
	nf := g.NumForks()
	cols := make([][]int, nf)
	for fi, fork := range g.Forks() {
		k := g.Outcomes(fork)
		high := true
		cols[fi] = scenes(rng, n, 160, k, func() []float64 {
			// Alternate above/below the mean so the long-run average
			// stays balanced despite the large amplitude.
			p0 := 0.5
			if high {
				p0 += amplitude * (0.6 + 0.4*rng.Float64())
			} else {
				p0 -= amplitude * (0.6 + 0.4*rng.Float64())
			}
			high = !high
			if p0 < 0.02 {
				p0 = 0.02
			}
			if p0 > 0.98 {
				p0 = 0.98
			}
			d := make([]float64, k)
			d[0] = p0
			for x := 1; x < k; x++ {
				d[x] = (1 - p0) / float64(k-1)
			}
			return d
		})
	}
	return transpose(cols, n, nf)
}

// AverageProbs measures the empirical per-fork outcome frequencies of a
// vector sequence — the "ideal profiling" information of Figure 6.
func AverageProbs(g *ctg.Graph, v Vectors) [][]float64 {
	nf := g.NumForks()
	out := make([][]float64, nf)
	for fi, fork := range g.Forks() {
		out[fi] = make([]float64, g.Outcomes(fork))
	}
	if len(v) == 0 {
		return out
	}
	for _, row := range v {
		for fi := range out {
			out[fi][row[fi]]++
		}
	}
	for fi := range out {
		for k := range out[fi] {
			out[fi][k] /= float64(len(v))
		}
	}
	return out
}

// BiasedProfile builds the misprofiled probability vectors of Tables 4/5:
// for every fork that the target scenario assigns, put `strength` of the
// mass on the assigned outcome; unassigned forks keep a uniform profile.
// strength must be in (1/k, 1).
func BiasedProfile(a *ctg.Analysis, scenario int, strength float64) [][]float64 {
	g := a.Graph()
	sc := a.Scenario(scenario)
	out := make([][]float64, g.NumForks())
	for fi, fork := range g.Forks() {
		k := g.Outcomes(fork)
		probs := make([]float64, k)
		if o := sc.Assign[fi]; o != ctg.OutcomeUnassigned {
			for x := range probs {
				probs[x] = (1 - strength) / float64(k-1)
			}
			probs[o] = strength
		} else {
			for x := range probs {
				probs[x] = 1 / float64(k)
			}
		}
		out[fi] = probs
	}
	return out
}

// ApplyProfile writes a per-fork probability profile into the graph.
func ApplyProfile(g *ctg.Graph, profile [][]float64) error {
	for fi, fork := range g.Forks() {
		if err := g.SetBranchProbs(fork, profile[fi]); err != nil {
			return err
		}
	}
	return nil
}
