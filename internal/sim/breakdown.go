package sim

import (
	"fmt"
	"strings"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/sched"
)

// PEStats aggregates one processing element's expected load.
type PEStats struct {
	// CompEnergy is the expected computation energy of the tasks mapped
	// to this PE (activation-probability weighted, at assigned speeds).
	CompEnergy float64
	// BusyTime is the expected busy time: Σ prob(τ)·execTime(τ).
	BusyTime float64
	// Tasks counts the tasks mapped to this PE.
	Tasks int
	// Utilization is BusyTime / deadline.
	Utilization float64
}

// Breakdown attributes a schedule's expected energy and load to its
// processing elements and the interconnect — the view an energy architect
// wants before deciding where to spend further optimization effort.
type Breakdown struct {
	PEs []PEStats
	// CommEnergy is the expected transmission energy over all cross-PE
	// edges.
	CommEnergy float64
	// CommTime is the expected busy time summed over all links.
	CommTime float64
	// Total is the expected energy (computation + communication); it
	// equals Schedule.ExpectedEnergy up to rounding.
	Total float64
}

// Analyze computes the breakdown of a (typically stretched) schedule.
func AnalyzeBreakdown(s *sched.Schedule) Breakdown {
	b := Breakdown{PEs: make([]PEStats, s.P.NumPEs())}
	deadline := s.G.Deadline()
	for task := 0; task < s.G.NumTasks(); task++ {
		id := ctg.TaskID(task)
		pe := s.PE[task]
		prob := s.A.ActivationProb(id)
		b.PEs[pe].CompEnergy += prob * s.TaskEnergy(id)
		b.PEs[pe].BusyTime += prob * s.ExecTime(id)
		b.PEs[pe].Tasks++
	}
	for pe := range b.PEs {
		b.PEs[pe].Utilization = b.PEs[pe].BusyTime / deadline
		b.Total += b.PEs[pe].CompEnergy
	}
	for ei, e := range s.G.Edges() {
		ce := s.CommEnergy(ei)
		if ce == 0 {
			continue
		}
		both := s.A.ActivationSet(e.From).Clone()
		both.IntersectWith(s.A.ActivationSet(e.To))
		p := s.A.ProbOfSet(both)
		b.CommEnergy += p * ce
		b.CommTime += p * s.CommTime(ei)
	}
	b.Total += b.CommEnergy
	return b
}

// String renders the breakdown as a small table.
func (b Breakdown) String() string {
	var sb strings.Builder
	sb.WriteString("PE   tasks  E[busy]   util   E[energy]\n")
	for pe, st := range b.PEs {
		fmt.Fprintf(&sb, "%-4d %5d  %7.1f  %5.1f%%  %9.2f\n",
			pe, st.Tasks, st.BusyTime, 100*st.Utilization, st.CompEnergy)
	}
	fmt.Fprintf(&sb, "interconnect: E[busy] %.1f, E[energy] %.2f\n", b.CommTime, b.CommEnergy)
	fmt.Fprintf(&sb, "total expected energy: %.2f\n", b.Total)
	return sb.String()
}
