package sim

import (
	"math"
	"math/rand"
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/stretch"
	"ctgdvfs/internal/tgff"
)

func uniformPlatform(t *testing.T, tasks, pes int, wcet, energy float64) *platform.Platform {
	t.Helper()
	b := platform.NewBuilder(tasks, pes)
	for i := 0; i < tasks; i++ {
		b.SetUniformTask(i, wcet, energy)
	}
	b.SetAllLinks(1, 0.1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// forkGraph builds fork → {arm0, arm1} → or-join, single PE.
func forkSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	b := ctg.NewBuilder()
	f := b.AddTask("fork", ctg.AndNode)
	a0 := b.AddTask("arm0", ctg.AndNode)
	a1 := b.AddTask("arm1", ctg.AndNode)
	j := b.AddTask("join", ctg.OrNode)
	b.AddCondEdge(f, a0, 0, 0)
	b.AddCondEdge(f, a1, 0, 1)
	b.AddEdge(a0, j, 0)
	b.AddEdge(a1, j, 0)
	b.SetBranchProbs(f, []float64{0.7, 0.3})
	g, err := b.Build(100)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	p := uniformPlatform(t, 4, 1, 10, 2)
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReplaySkipsInactiveArm(t *testing.T) {
	s := forkSchedule(t)
	for si := 0; si < s.A.NumScenarios(); si++ {
		inst, err := Replay(s, si)
		if err != nil {
			t.Fatal(err)
		}
		// Each scenario executes fork, one arm, join = 3 tasks.
		if inst.Executed != 3 {
			t.Fatalf("scenario %d executed %d tasks, want 3", si, inst.Executed)
		}
		// Full speed: 3 × 10 time units, 3 × 2 energy; the inactive arm
		// contributes nothing even though the static schedule reserved
		// overlapping time for both arms.
		if math.Abs(inst.Makespan-30) > 1e-9 {
			t.Fatalf("scenario %d makespan %v, want 30", si, inst.Makespan)
		}
		if math.Abs(inst.Energy-6) > 1e-9 {
			t.Fatalf("scenario %d energy %v, want 6", si, inst.Energy)
		}
		if !inst.DeadlineMet {
			t.Fatalf("scenario %d missed a trivially loose deadline", si)
		}
	}
}

func TestReplayDecisions(t *testing.T) {
	s := forkSchedule(t)
	inst0, err := ReplayDecisions(s, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	inst1, err := ReplayDecisions(s, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if inst0.Scenario == inst1.Scenario {
		t.Fatal("different decisions resolved to the same scenario")
	}
	if _, err := ReplayDecisions(s, []int{0, 0}); err == nil {
		t.Fatal("want error for wrong decision vector length")
	}
	if _, err := Replay(s, 99); err == nil {
		t.Fatal("want error for out-of-range scenario")
	}
}

func TestReplayCommunicationTiming(t *testing.T) {
	// Producer pinned to PE0, consumer to PE1: makespan must include the
	// transfer, and energy the transmission cost.
	b := ctg.NewBuilder()
	src := b.AddTask("", ctg.AndNode)
	dst := b.AddTask("", ctg.AndNode)
	b.AddEdge(src, dst, 10)
	g, err := b.Build(1000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	pb := platform.NewBuilder(2, 2)
	pb.SetTask(0, []float64{10, 1000}, []float64{3, 3})
	pb.SetTask(1, []float64{1000, 10}, []float64{3, 3})
	pb.SetAllLinks(2, 0.5) // 5 tu transfer, 5 energy
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Replay(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inst.Makespan-25) > 1e-9 { // 10 + 5 + 10
		t.Fatalf("makespan %v, want 25", inst.Makespan)
	}
	if math.Abs(inst.Energy-11) > 1e-9 { // 3 + 3 + 10·0.5
		t.Fatalf("energy %v, want 11", inst.Energy)
	}
}

func TestReplayRespectsSpeeds(t *testing.T) {
	s := forkSchedule(t)
	// Slow down the join task only.
	s.Speed[3] = 0.5
	inst, err := Replay(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inst.Makespan-40) > 1e-9 { // 10 + 10 + 20
		t.Fatalf("makespan %v, want 40", inst.Makespan)
	}
	// Energy of join scales with s²: 2·0.25 = 0.5; total 2+2+0.5.
	if math.Abs(inst.Energy-4.5) > 1e-9 {
		t.Fatalf("energy %v, want 4.5", inst.Energy)
	}
}

func TestExhaustiveMatchesExpectedEnergy(t *testing.T) {
	// Replay-based expected energy must equal the closed-form
	// Schedule.ExpectedEnergy (energy is timing-independent).
	for seed := int64(0); seed < 15; seed++ {
		cat := tgff.ForkJoin
		if seed%2 == 1 {
			cat = tgff.Flat
		}
		g, p, err := tgff.Generate(tgff.Config{
			Seed: seed, Nodes: 16, PEs: 3, Branches: 2, Category: cat,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.DLS(a, p, sched.Modified())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := stretch.Heuristic(s, platform.Continuous(), 0); err != nil {
			t.Fatal(err)
		}
		sum, err := Exhaustive(s)
		if err != nil {
			t.Fatal(err)
		}
		want := s.ExpectedEnergy()
		if math.Abs(sum.ExpectedEnergy-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("seed %d: replay expected energy %v, closed form %v",
				seed, sum.ExpectedEnergy, want)
		}
	}
}

func TestStretchedSchedulesMeetDeadlineInEveryScenario(t *testing.T) {
	// The central soundness property: after heuristic stretching against a
	// tightened deadline, replay meets the deadline in every scenario.
	for seed := int64(0); seed < 40; seed++ {
		cat := tgff.ForkJoin
		if seed%2 == 1 {
			cat = tgff.Flat
		}
		g, p, err := tgff.Generate(tgff.Config{
			Seed: 700 + seed, Nodes: 14 + int(seed%10), PEs: 2 + int(seed%3),
			Branches: int(seed % 4), Category: cat,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		s0, err := sched.DLS(a, p, sched.Modified())
		if err != nil {
			t.Fatal(err)
		}
		g2, err := g.WithDeadline(1.3 * s0.Makespan)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := ctg.Analyze(g2)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"heuristic", "worstcase", "nlp"} {
			s, err := sched.DLS(a2, p, sched.Modified())
			if err != nil {
				t.Fatal(err)
			}
			switch name {
			case "heuristic":
				_, err = stretch.Heuristic(s, platform.Continuous(), 0)
			case "worstcase":
				_, err = stretch.WorstCase(s, platform.Continuous(), 0)
			case "nlp":
				_, err = stretch.NLP(s, platform.Continuous(), stretch.NLPOptions{MaxIters: 250})
			}
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			sum, err := Exhaustive(s)
			if err != nil {
				t.Fatal(err)
			}
			if sum.Misses > 0 {
				t.Fatalf("seed %d %s: %d scenario deadline misses (worst %v > %v)",
					seed, name, sum.Misses, sum.WorstMakespan, g2.Deadline())
			}
		}
	}
}

func TestExpectedEnergyUnderMatchesSelfAnalysis(t *testing.T) {
	s := forkSchedule(t)
	// Evaluating under the schedule's own analysis must reproduce
	// ExpectedEnergy exactly.
	got := ExpectedEnergyUnder(s, s.A)
	want := s.ExpectedEnergy()
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExpectedEnergyUnder(self) = %v, want %v", got, want)
	}
	// Under a different truth, the value shifts toward the likelier arm.
	g2 := s.G.Clone()
	if err := g2.SetBranchProbs(0, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	truth, err := ctg.Analyze(g2)
	if err != nil {
		t.Fatal(err)
	}
	got2 := ExpectedEnergyUnder(s, truth)
	// All tasks have equal energy at speed 1, so the value equals
	// 3 tasks × 2 energy regardless; instead slow one arm and re-check.
	s.Speed[1] = 0.5 // arm0 (outcome 0), energy 2·0.25
	got3 := ExpectedEnergyUnder(s, truth)
	if !(got3 < got2) {
		t.Fatalf("slowing the certain arm did not reduce truth-energy: %v vs %v", got3, got2)
	}
}

func TestSampleConvergesToExhaustive(t *testing.T) {
	g, p, err := tgff.Generate(tgff.Config{Seed: 31, Nodes: 18, PEs: 3, Branches: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stretch.Heuristic(s, platform.Continuous(), 0); err != nil {
		t.Fatal(err)
	}
	exact, err := Exhaustive(s)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Sample(s, rand.New(rand.NewSource(1)), 4000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if relErr := math.Abs(est.ExpectedEnergy-exact.ExpectedEnergy) / exact.ExpectedEnergy; relErr > 0.05 {
		t.Fatalf("sampled energy %v vs exact %v (rel err %v)", est.ExpectedEnergy, exact.ExpectedEnergy, relErr)
	}
	if relErr := math.Abs(est.ExpectedMakespan-exact.ExpectedMakespan) / exact.ExpectedMakespan; relErr > 0.05 {
		t.Fatalf("sampled makespan %v vs exact %v", est.ExpectedMakespan, exact.ExpectedMakespan)
	}
	if est.WorstMakespan > exact.WorstMakespan+1e-9 {
		t.Fatal("sampled worst makespan exceeds the exhaustive worst case")
	}
	if est.Misses != 0 {
		t.Fatalf("sampling found %d misses on a feasible schedule", est.Misses)
	}
	if _, err := Sample(s, rand.New(rand.NewSource(1)), 0, Config{}); err == nil {
		t.Fatal("want error for non-positive sample size")
	}
}
