// Package sim replays a scheduled-and-stretched CTG under concrete branch
// decisions: only the tasks active in the realized scenario execute, each PE
// dispatches its active tasks in schedule order, link transfers serialize in
// schedule order, and execution times reflect the per-task DVFS speeds. The
// simulator is the ground truth the experiments measure: per-instance energy
// and makespan, deadline misses, and expected values over the scenario
// distribution.
//
// Runtime semantics (documented simplifications, see DESIGN.md):
//
//   - An or-node waits for the data of all its *active* predecessors. The
//     paper's "implied dependency" on the branch fork (an or-node cannot
//     start before knowing whether a conditional predecessor will run) is
//     subsumed: the fork is an ancestor of every active conditional
//     predecessor, and the static schedule ordered the or-node after all its
//     predecessors anyway, so replay can only finish earlier than the
//     worst-case path bound.
//   - The dispatcher is work-conserving: an active task starts as soon as
//     its data is available and every earlier-ordered active task on its PE
//     has finished; it may start before its nominal start time when earlier
//     (mutually exclusive or inactive) tasks vacated the PE.
package sim

import (
	"fmt"
	"math"
	"sort"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/telemetry"
)

// Instance is the outcome of replaying one CTG iteration. Without a fault
// plan the actual and nominal numbers coincide; with Config.Faults set,
// Energy/Makespan/DeadlineMet describe the *perturbed* execution (what
// actually happened under injected overruns) and the Nominal* fields keep
// the unperturbed timeline alongside for comparison.
type Instance struct {
	// Scenario is the index of the realized leaf minterm.
	Scenario int
	// Energy is the consumed energy: Σ active E(τ)·s² plus the
	// transmission energy of every active cross-PE edge. Under a fault
	// plan, overrunning tasks consume proportionally more (the extra
	// cycles run at the same speed).
	Energy float64
	// Makespan is the completion time of the last active task.
	Makespan float64
	// DeadlineMet reports Makespan ≤ deadline (with a small tolerance).
	DeadlineMet bool
	// Executed counts the active (executed) tasks.
	Executed int

	// NominalEnergy and NominalMakespan are the unperturbed numbers
	// (identical to Energy/Makespan when no fault plan is configured).
	NominalEnergy   float64
	NominalMakespan float64
	// Lateness is max(0, Makespan − deadline): how far past the deadline
	// the instance actually finished.
	Lateness float64
	// Overruns counts active tasks whose execution time was perturbed
	// above nominal by the fault plan.
	Overruns int
	// MaxTaskLateness is the largest per-task finish-time slip versus the
	// nominal timeline (zero without faults).
	MaxTaskLateness float64
}

// Replay executes the schedule under the given leaf scenario with the
// paper's default runtime model (see Config).
func Replay(s *sched.Schedule, scenario int) (Instance, error) {
	return ReplayCfg(s, scenario, Config{})
}

// ReplayCfg executes the schedule under the given leaf scenario with
// optional runtime-fidelity features enabled.
func ReplayCfg(s *sched.Schedule, scenario int, cfg Config) (Instance, error) {
	if scenario < 0 || scenario >= s.A.NumScenarios() {
		return Instance{}, fmt.Errorf("sim: scenario %d out of range", scenario)
	}
	var guards orGuards
	if cfg.StrictOrDeps {
		guards = buildOrGuards(s)
	}
	active := s.A.Scenario(scenario).Active

	var acts []activity
	for t := 0; t < s.G.NumTasks(); t++ {
		if active.Get(t) {
			// On a restricted platform the dispatcher refuses masked-out
			// hardware: a schedule that places an active task on a dead PE is
			// a scheduler bug, caught here at replay rather than silently
			// "executing" on hardware that no longer exists.
			if !s.P.PEAlive(s.PE[t]) {
				return Instance{}, fmt.Errorf("sim: scenario %d dispatches task %d on dead PE %d",
					scenario, t, s.PE[t])
			}
			acts = append(acts, activity{nominal: s.Start[t], id: t})
		}
	}
	for ei, e := range s.G.Edges() {
		if s.CommStart[ei] == sched.LocalComm {
			continue
		}
		if active.Get(int(e.From)) && active.Get(int(e.To)) {
			if !s.P.LinkUp(s.PE[e.From], s.PE[e.To]) {
				return Instance{}, fmt.Errorf("sim: scenario %d routes edge %d->%d over down link %d->%d",
					scenario, e.From, e.To, s.PE[e.From], s.PE[e.To])
			}
			acts = append(acts, activity{nominal: s.CommStart[ei], isComm: true, id: ei})
		}
	}
	sort.Slice(acts, func(i, j int) bool {
		if acts[i].nominal != acts[j].nominal {
			return acts[i].nominal < acts[j].nominal
		}
		if acts[i].isComm != acts[j].isComm {
			return acts[i].isComm // transfers first on ties
		}
		return acts[i].id < acts[j].id
	})

	// Telemetry records the timeline that counts: the perturbed walk when a
	// fault plan is active, the nominal walk otherwise.
	nomRec := cfg.Recorder
	if cfg.Faults != nil {
		nomRec = nil
	}
	nom := walkTimeline(s, acts, active, scenario, cfg, guards, false, nomRec)
	inst := Instance{
		Scenario: scenario,
		Energy:   nom.energy, Makespan: nom.makespan, Executed: nom.executed,
		NominalEnergy: nom.energy, NominalMakespan: nom.makespan,
	}
	if cfg.Faults != nil {
		// The perturbed timeline re-walks the same dispatch order with the
		// plan's execution-time factors applied; the nominal walk above is
		// untouched, so disabling faults is bit-for-bit the paper's model.
		pert := walkTimeline(s, acts, active, scenario, cfg, guards, true, cfg.Recorder)
		inst.Energy, inst.Makespan = pert.energy, pert.makespan
		inst.Overruns = pert.overruns
		for t := 0; t < s.G.NumTasks(); t++ {
			if !active.Get(t) {
				continue
			}
			if slip := pert.finish[t] - nom.finish[t]; slip > inst.MaxTaskLateness {
				inst.MaxTaskLateness = slip
			}
		}
	}
	inst.DeadlineMet = inst.Makespan <= s.G.Deadline()+1e-9
	if !inst.DeadlineMet {
		inst.Lateness = inst.Makespan - s.G.Deadline()
	}
	return inst, nil
}

// activity is one dispatchable unit of a replay: a task or a link transfer,
// ordered by nominal start time.
type activity struct {
	nominal float64
	isComm  bool
	id      int // task ID or edge index
}

// timeline is the outcome of one dispatch-order walk.
type timeline struct {
	finish   []float64 // per task: completion time
	energy   float64
	makespan float64
	executed int
	overruns int
}

// walkTimeline executes the activity list once: each PE dispatches its
// active tasks in schedule order, link transfers serialize in schedule
// order. With perturb set, every task's execution time (and energy — the
// extra cycles run at the same speed) is multiplied by the fault plan's
// factor for (Config.FaultInstance, task, PE). A non-nil rec receives one
// slice event per dispatched activity (every emission is nil-guarded, so a
// nil rec costs one branch and no allocations).
func walkTimeline(s *sched.Schedule, acts []activity, active ctg.Bitset, scenario int, cfg Config, guards orGuards, perturb bool, rec telemetry.Recorder) timeline {
	finish := make([]float64, s.G.NumTasks())
	commFinish := make([]float64, s.G.NumEdges())
	peAvail := make([]float64, s.P.NumPEs())
	peSpeed := make([]float64, s.P.NumPEs()) // last dispatched speed; 0 = none
	linkAvail := map[[2]int]float64{}

	tl := timeline{finish: finish}
	for _, act := range acts {
		if act.isComm {
			ei := act.id
			e := s.G.Edge(ei)
			link := [2]int{s.PE[e.From], s.PE[e.To]}
			start := math.Max(linkAvail[link], finish[e.From])
			commFinish[ei] = start + s.CommTime(ei)
			linkAvail[link] = commFinish[ei]
			tl.energy += s.CommEnergy(ei)
			if rec != nil {
				ev := telemetry.Event{
					Kind: telemetry.KindCommSlice, Instance: cfg.InstanceID,
					Scenario: scenario, Edge: ei,
					Task: int(e.From), Task2: int(e.To),
					PE: link[0], PE2: link[1],
					Start: start, End: commFinish[ei],
					Energy: s.CommEnergy(ei), Phase: cfg.Phase,
					Cause: cfg.Cause,
				}
				if cfg.Seq != nil {
					ev.Seq = cfg.Seq.Next()
				}
				rec.Record(ev)
			}
			continue
		}
		t := ctg.TaskID(act.id)
		pe := s.PE[t]
		speed := s.Speed[t]
		if cfg.ScenarioSpeeds != nil {
			speed = cfg.ScenarioSpeeds[scenario][t]
		}
		avail := peAvail[pe]
		if peSpeed[pe] != 0 && peSpeed[pe] != speed {
			// DVFS transition between consecutive tasks on this PE.
			avail += cfg.SwitchTime
			tl.energy += cfg.SwitchEnergy
		}
		start := avail
		for _, ei := range s.G.Pred(t) {
			e := s.G.Edge(ei)
			if !active.Get(int(e.From)) {
				continue
			}
			var ready float64
			if s.CommStart[ei] == sched.LocalComm || s.PE[e.From] == s.PE[e.To] {
				ready = finish[e.From]
			} else {
				ready = commFinish[ei]
			}
			if ready > start {
				start = ready
			}
		}
		if cfg.StrictOrDeps && s.G.Task(t).Kind == ctg.OrNode {
			// Implied dependency: wait for the active forks that decide
			// the fate of every inactive predecessor.
			for k, ei := range s.G.Pred(t) {
				from := s.G.Edge(ei).From
				if active.Get(int(from)) {
					continue
				}
				for _, f := range guards[t][k] {
					if active.Get(int(f)) && finish[f] > start {
						start = finish[f]
					}
				}
			}
		}
		exec := s.WCET(t) / speed
		taskEnergy := s.NominalEnergy(t) * speed * speed
		overrun := 0.0
		if perturb {
			if f := cfg.Faults.Factor(cfg.FaultInstance, int(t), pe); f > 1 {
				exec *= f
				taskEnergy *= f
				tl.overruns++
				overrun = f
			}
		}
		finish[t] = start + exec
		peAvail[pe] = finish[t]
		peSpeed[pe] = speed
		tl.energy += taskEnergy
		tl.executed++
		if finish[t] > tl.makespan {
			tl.makespan = finish[t]
		}
		if rec != nil {
			ev := telemetry.Event{
				Kind: telemetry.KindTaskSlice, Instance: cfg.InstanceID,
				Scenario: scenario, Task: int(t), Name: s.G.Task(t).Name,
				PE: pe, Start: start, End: finish[t],
				Speed: speed, Factor: overrun, Energy: taskEnergy,
				Phase: cfg.Phase,
				Cause: cfg.Cause,
			}
			if cfg.Seq != nil {
				ev.Seq = cfg.Seq.Next()
			}
			rec.Record(ev)
			if overrun > 1 {
				ov := telemetry.Event{
					Kind: telemetry.KindOverrun, Instance: cfg.InstanceID,
					Task: int(t), PE: pe, Factor: overrun, Phase: cfg.Phase,
					Cause: cfg.Cause,
				}
				if cfg.Seq != nil {
					ov.Seq = cfg.Seq.Next()
				}
				rec.Record(ov)
			}
		}
	}
	return tl
}

// ReplayDecisions resolves a full branch decision vector (one outcome per
// fork, in Forks() order) and replays the matching scenario.
func ReplayDecisions(s *sched.Schedule, decisions []int) (Instance, error) {
	si, err := s.A.ScenarioForDecisions(decisions)
	if err != nil {
		return Instance{}, err
	}
	return Replay(s, si)
}

// Summary aggregates replays over all scenarios of a schedule.
type Summary struct {
	// ExpectedEnergy is Σ prob(scenario)·energy(scenario).
	ExpectedEnergy float64
	// ExpectedMakespan is Σ prob(scenario)·makespan(scenario).
	ExpectedMakespan float64
	// WorstMakespan is the maximum makespan over all scenarios.
	WorstMakespan float64
	// Misses counts scenarios that violate the deadline.
	Misses int

	// ExpectedLateness is the probability-weighted (or sample-mean)
	// deadline overshoot, zero without faults whenever the stretched
	// schedule fits the deadline.
	ExpectedLateness float64
	// NominalExpectedEnergy and NominalExpectedMakespan aggregate the
	// unperturbed numbers; they equal ExpectedEnergy/ExpectedMakespan when
	// no fault plan is configured.
	NominalExpectedEnergy   float64
	NominalExpectedMakespan float64
	// Overruns totals the perturbed task executions across all replays.
	Overruns int
}

// Exhaustive replays every leaf scenario and aggregates by probability.
func Exhaustive(s *sched.Schedule) (Summary, error) {
	return ExhaustiveCfg(s, Config{})
}

// ExhaustiveCfg is Exhaustive with runtime-fidelity options. Scenario
// replays are independent, so they fan out over the worker pool; the
// aggregation then runs serially in scenario order, which makes the sums
// bit-for-bit identical to a serial loop.
func ExhaustiveCfg(s *sched.Schedule, cfg Config) (Summary, error) {
	insts, err := par.MapErr(s.A.NumScenarios(), func(si int) (Instance, error) {
		ci := cfg
		if ci.Faults != nil {
			// Each scenario draws its own slice of the fault sequence so
			// the exhaustive sweep exercises the plan's variation.
			ci.FaultInstance = si
		}
		return ReplayCfg(s, si, ci)
	})
	if err != nil {
		return Summary{}, err
	}
	var sum Summary
	for si, inst := range insts {
		p := s.A.Scenario(si).Prob
		sum.ExpectedEnergy += p * inst.Energy
		sum.ExpectedMakespan += p * inst.Makespan
		if inst.Makespan > sum.WorstMakespan {
			sum.WorstMakespan = inst.Makespan
		}
		if !inst.DeadlineMet {
			sum.Misses++
		}
		sum.ExpectedLateness += p * inst.Lateness
		sum.NominalExpectedEnergy += p * inst.NominalEnergy
		sum.NominalExpectedMakespan += p * inst.NominalMakespan
		sum.Overruns += inst.Overruns
	}
	return sum, nil
}

// ExpectedEnergyUnder evaluates a stretched schedule's expected energy
// against an independent ("true") probability model. This is how the paper
// scores the non-adaptive algorithm when its profiled probabilities are
// wrong (Tables 4 and 5): the schedule was built for one distribution but
// the workload follows another.
func ExpectedEnergyUnder(s *sched.Schedule, truth *ctg.Analysis) float64 {
	sum := 0.0
	for task := 0; task < s.G.NumTasks(); task++ {
		sum += truth.ActivationProb(ctg.TaskID(task)) * s.TaskEnergy(ctg.TaskID(task))
	}
	// Each edge's joint activation probability scans the scenario set, so
	// the edge loop fans out; the edge-order reduction below keeps the sum
	// bit-for-bit identical to the serial loop.
	edges := s.G.Edges()
	contrib := par.Map(len(edges), func(ei int) float64 {
		ce := s.CommEnergy(ei)
		if ce <= 0 {
			return 0
		}
		e := edges[ei]
		both := truth.ActivationSet(e.From).Clone()
		both.IntersectWith(truth.ActivationSet(e.To))
		return truth.ProbOfSet(both) * ce
	})
	for _, c := range contrib {
		sum += c
	}
	return sum
}
