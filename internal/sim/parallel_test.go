package sim

import (
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/stretch"
	"ctgdvfs/internal/tgff"
)

// TestExhaustiveParallelMatchesSerial pins the determinism contract of the
// parallel replay engine: exhaustive scenario aggregation on one worker and
// on many workers must agree bit for bit (the reduction always runs serially
// in scenario order). Run under -race this also checks that concurrent
// replays of a shared schedule do not interfere.
func TestExhaustiveParallelMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g, p, err := tgff.Generate(tgff.Config{
			Seed: 1200 + seed, Nodes: 16 + int(seed%8), PEs: 2 + int(seed%3),
			Branches: 2 + int(seed%2), Category: tgff.ForkJoin,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.DLS(a, p, sched.Modified())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := stretch.Heuristic(s, platform.Continuous(), 0); err != nil {
			t.Fatal(err)
		}

		prev := par.SetLimit(1)
		serial, err := Exhaustive(s)
		if err != nil {
			par.SetLimit(prev)
			t.Fatal(err)
		}
		// More workers than the container may have cores, so the concurrent
		// path runs even on a single-CPU host.
		par.SetLimit(4)
		parallel, err := Exhaustive(s)
		par.SetLimit(prev)
		if err != nil {
			t.Fatal(err)
		}

		if serial != parallel {
			t.Fatalf("seed %d: serial %+v != parallel %+v", seed, serial, parallel)
		}
	}
}
