package sim

import (
	"math"
	"math/rand"
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/faults"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/stretch"
	"ctgdvfs/internal/tgff"
)

func faultWorkload(t *testing.T, seed int64) *sched.Schedule {
	t.Helper()
	g, p, err := tgff.Generate(tgff.Config{
		Seed: seed, Nodes: 18, PEs: 3, Branches: 2, Category: tgff.ForkJoin,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := g.WithDeadline(1.4 * s.Makespan)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ctg.Analyze(g2)
	if err != nil {
		t.Fatal(err)
	}
	s, err = sched.DLS(a2, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stretch.Heuristic(s, platform.Continuous(), 0); err != nil {
		t.Fatal(err)
	}
	return s
}

func faultPlan(t *testing.T, s *sched.Schedule, spec faults.Spec) *faults.Plan {
	t.Helper()
	plan, err := faults.New(spec, s.G.NumTasks(), s.P.NumPEs())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestNilFaultsIsBitForBitNominal(t *testing.T) {
	// A zero-probability plan and a nil plan must both reproduce the
	// unperturbed replay exactly: same bits, not just same tolerance.
	s := faultWorkload(t, 11)
	zero := faultPlan(t, s, faults.Spec{Seed: 1})
	for si := 0; si < s.A.NumScenarios(); si++ {
		base, err := Replay(s, si)
		if err != nil {
			t.Fatal(err)
		}
		withZero, err := ReplayCfg(s, si, Config{Faults: zero, FaultInstance: 3})
		if err != nil {
			t.Fatal(err)
		}
		if base.Energy != withZero.Energy || base.Makespan != withZero.Makespan {
			t.Fatalf("scenario %d: zero plan diverged: %v/%v vs %v/%v",
				si, base.Energy, base.Makespan, withZero.Energy, withZero.Makespan)
		}
		if base.NominalEnergy != base.Energy || base.NominalMakespan != base.Makespan {
			t.Fatalf("scenario %d: nominal fields diverge without faults", si)
		}
		if base.Overruns != 0 || base.MaxTaskLateness != 0 || base.Lateness != 0 {
			t.Fatalf("scenario %d: fault counters set without faults: %+v", si, base)
		}
	}
}

func TestFaultyReplayReportsPerturbation(t *testing.T) {
	s := faultWorkload(t, 12)
	plan := faultPlan(t, s, faults.Spec{Seed: 42, OverrunProb: 0.5, OverrunFactor: 1.5})
	sawOverrun := false
	for si := 0; si < s.A.NumScenarios(); si++ {
		inst, err := ReplayCfg(s, si, Config{Faults: plan, FaultInstance: si})
		if err != nil {
			t.Fatal(err)
		}
		if inst.Makespan < inst.NominalMakespan-1e-12 {
			t.Fatalf("scenario %d: perturbed makespan %v below nominal %v",
				si, inst.Makespan, inst.NominalMakespan)
		}
		if inst.Energy < inst.NominalEnergy-1e-12 {
			t.Fatalf("scenario %d: perturbed energy %v below nominal %v",
				si, inst.Energy, inst.NominalEnergy)
		}
		if inst.Overruns > 0 {
			sawOverrun = true
			if inst.Makespan <= inst.NominalMakespan && inst.MaxTaskLateness <= 0 {
				t.Fatalf("scenario %d: overruns with no observable slip", si)
			}
		}
		if !inst.DeadlineMet && inst.Lateness <= 0 {
			t.Fatalf("scenario %d: miss without lateness", si)
		}
		if inst.DeadlineMet && inst.Lateness != 0 {
			t.Fatalf("scenario %d: lateness %v on a met deadline", si, inst.Lateness)
		}
	}
	if !sawOverrun {
		t.Fatal("50% overrun plan never perturbed any scenario")
	}
}

func TestExhaustiveFaultsDeterministicAcrossWorkerBounds(t *testing.T) {
	s := faultWorkload(t, 13)
	plan := faultPlan(t, s, faults.Spec{
		Seed: 42, OverrunProb: 0.25, OverrunFactor: 1.2,
		HotTasks: 2, HotFactor: 1.4, BurstProb: 0.1, BurstLen: 4,
		PESlowProb: 0.05, PESlowFactor: 1.1,
	})
	cfg := Config{Faults: plan}
	var ref Summary
	for i, workers := range []int{1, 2, 4, 16} {
		prev := par.SetLimit(workers)
		sum, err := ExhaustiveCfg(s, cfg)
		par.SetLimit(prev)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = sum
			continue
		}
		if sum != ref {
			t.Fatalf("workers=%d: summary diverged: %+v vs %+v", workers, sum, ref)
		}
	}
	if ref.ExpectedEnergy <= ref.NominalExpectedEnergy {
		t.Fatalf("perturbed expected energy %v not above nominal %v under a 25%% overrun plan",
			ref.ExpectedEnergy, ref.NominalExpectedEnergy)
	}
	if ref.Overruns == 0 {
		t.Fatal("no overruns recorded under a 25% overrun plan")
	}
}

func TestMaxFactorBoundsSlip(t *testing.T) {
	// No perturbed makespan may exceed nominal · MaxFactor: the plan's
	// worst case bounds every timeline (execution times scale by at most
	// MaxFactor and the dispatch order is unchanged).
	s := faultWorkload(t, 14)
	plan := faultPlan(t, s, faults.Spec{Seed: 7, OverrunProb: 0.4, OverrunFactor: 1.3, PESlowProb: 0.2, PESlowFactor: 1.2})
	bound := plan.MaxFactor()
	for si := 0; si < s.A.NumScenarios(); si++ {
		for instIdx := 0; instIdx < 10; instIdx++ {
			inst, err := ReplayCfg(s, si, Config{Faults: plan, FaultInstance: instIdx})
			if err != nil {
				t.Fatal(err)
			}
			if inst.Makespan > inst.NominalMakespan*bound+1e-9 {
				t.Fatalf("scenario %d inst %d: makespan %v exceeds nominal %v × MaxFactor %v",
					si, instIdx, inst.Makespan, inst.NominalMakespan, bound)
			}
		}
	}
}

func TestSampleWithFaults(t *testing.T) {
	s := faultWorkload(t, 15)
	plan := faultPlan(t, s, faults.Spec{Seed: 5, OverrunProb: 0.3, OverrunFactor: 1.25})
	est, err := Sample(s, rand.New(rand.NewSource(9)), 500, Config{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if est.ExpectedEnergy <= est.NominalExpectedEnergy {
		t.Fatalf("sampled perturbed energy %v not above nominal %v",
			est.ExpectedEnergy, est.NominalExpectedEnergy)
	}
	if est.Overruns == 0 {
		t.Fatal("sampling recorded no overruns under a 30% plan")
	}
	if math.IsNaN(est.ExpectedLateness) || est.ExpectedLateness < 0 {
		t.Fatalf("bad expected lateness %v", est.ExpectedLateness)
	}
}
