package sim

import (
	"fmt"
	"math/rand"

	"ctgdvfs/internal/sched"
)

// Sample estimates a schedule's expected energy and makespan by Monte-Carlo
// replay: n branch decision vectors are drawn from the graph's current
// probabilities and replayed. Exhaustive enumeration is exact but costs one
// replay per leaf minterm; sampling is the tool of choice when the minterm
// count explodes (the library caps enumeration at ctg.MaxScenarios, but
// even thousands of scenarios may cost more than a few hundred samples
// resolve).
func Sample(s *sched.Schedule, rng *rand.Rand, n int, cfg Config) (Summary, error) {
	if n <= 0 {
		return Summary{}, fmt.Errorf("sim: sample size must be positive, got %d", n)
	}
	g := s.G
	var sum Summary
	decisions := make([]int, g.NumForks())
	for i := 0; i < n; i++ {
		for fi, fork := range g.Forks() {
			r := rng.Float64()
			acc := 0.0
			probs := g.BranchProbs(fork)
			decisions[fi] = len(probs) - 1
			for k, p := range probs {
				acc += p
				if r < acc {
					decisions[fi] = k
					break
				}
			}
		}
		si, err := s.A.ScenarioForDecisions(decisions)
		if err != nil {
			return Summary{}, err
		}
		ci := cfg
		if ci.Faults != nil {
			// Each sample is one CTG iteration of the fault sequence.
			ci.FaultInstance = i
		}
		inst, err := ReplayCfg(s, si, ci)
		if err != nil {
			return Summary{}, err
		}
		sum.ExpectedEnergy += inst.Energy
		sum.ExpectedMakespan += inst.Makespan
		if inst.Makespan > sum.WorstMakespan {
			sum.WorstMakespan = inst.Makespan
		}
		if !inst.DeadlineMet {
			sum.Misses++
		}
		sum.ExpectedLateness += inst.Lateness
		sum.NominalExpectedEnergy += inst.NominalEnergy
		sum.NominalExpectedMakespan += inst.NominalMakespan
		sum.Overruns += inst.Overruns
	}
	sum.ExpectedEnergy /= float64(n)
	sum.ExpectedMakespan /= float64(n)
	sum.ExpectedLateness /= float64(n)
	sum.NominalExpectedEnergy /= float64(n)
	sum.NominalExpectedMakespan /= float64(n)
	return sum, nil
}
