package sim

import (
	"strings"
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
)

// TestReplayRefusesMaskedHardware pins the dispatcher-side guard: a schedule
// whose placements land on masked-out hardware must be rejected at replay,
// not silently executed.
func TestReplayRefusesMaskedHardware(t *testing.T) {
	b := ctg.NewBuilder()
	t0 := b.AddTask("", ctg.AndNode)
	t1 := b.AddTask("", ctg.AndNode)
	b.AddEdge(t0, t1, 10)
	g, err := b.Build(1000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	p := uniformPlatform(t, 2, 2, 5, 1)
	// Force a cross-PE placement so the schedule uses both a PE and a link.
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	s.PE[0], s.PE[1] = 0, 1
	s.Start[1] = s.Start[0] + p.WCET(0, 0) + p.CommTime(10, 0, 1)
	s.CommStart[0] = s.Start[0] + p.WCET(0, 0)
	s.LinkOrder = map[[2]int][]int{{0, 1}: {0}}
	s.Order = []ctg.TaskID{0, 1}
	if _, err := Replay(s, 0); err != nil {
		t.Fatalf("healthy replay failed: %v", err)
	}

	deadPE := platform.FullMask(2)
	deadPE.PEs[1] = false
	rp, err := p.Restrict(deadPE)
	if err != nil {
		t.Fatal(err)
	}
	masked := *s
	masked.P = rp
	if _, err := Replay(&masked, 0); err == nil || !strings.Contains(err.Error(), "dead PE") {
		t.Fatalf("replay on dead PE: err = %v, want dead-PE refusal", err)
	}

	downLink := platform.FullMask(2)
	downLink.Links[0][1] = false
	rl, err := p.Restrict(downLink)
	if err != nil {
		t.Fatal(err)
	}
	linkMasked := *s
	linkMasked.P = rl
	if _, err := Replay(&linkMasked, 0); err == nil || !strings.Contains(err.Error(), "down link") {
		t.Fatalf("replay over down link: err = %v, want down-link refusal", err)
	}
}
