package sim

import (
	"math"
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/stretch"
	"ctgdvfs/internal/tgff"
)

// paperExample builds the CTG of the paper's Example 1 on a wide platform
// (every task gets its own PE, so PE contention never hides dependency
// timing).
func paperExample(t *testing.T) *sched.Schedule {
	t.Helper()
	b := ctg.NewBuilder()
	t1 := b.AddTask("tau1", ctg.AndNode)
	t2 := b.AddTask("tau2", ctg.AndNode)
	t3 := b.AddTask("tau3", ctg.AndNode)
	t4 := b.AddTask("tau4", ctg.AndNode)
	t5 := b.AddTask("tau5", ctg.AndNode)
	t6 := b.AddTask("tau6", ctg.AndNode)
	t7 := b.AddTask("tau7", ctg.AndNode)
	t8 := b.AddTask("tau8", ctg.OrNode)
	b.AddEdge(t1, t2, 0)
	b.AddEdge(t1, t3, 0)
	b.AddCondEdge(t3, t4, 0, 0) // a1
	b.AddCondEdge(t3, t5, 0, 1) // a2
	b.AddCondEdge(t5, t6, 0, 0)
	b.AddCondEdge(t5, t7, 0, 1)
	b.AddEdge(t2, t8, 0)
	b.AddEdge(t4, t8, 0)
	b.SetBranchProbs(t3, []float64{0.5, 0.5})
	b.SetBranchProbs(t5, []float64{0.5, 0.5})
	g, err := b.Build(1000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	pb := platform.NewBuilder(8, 8)
	// τ2 is short so the or-node's start is governed by the interesting
	// dependency; τ3 (the fork) is long; the a2 arm (τ5, τ6, τ7) is tiny
	// so the or-node's finish dominates the makespan under strict mode.
	// Each task is pinned to its own PE (fast there, prohibitive
	// elsewhere), so PE serialization never masks dependency timing.
	wcets := []float64{5, 5, 30, 5, 1, 1, 1, 5}
	for i, w := range wcets {
		row := make([]float64, 8)
		en := make([]float64, 8)
		for pe := range row {
			row[pe] = w * 1000
			en[pe] = 1
			if pe == i {
				row[pe] = w
			}
		}
		pb.SetTask(i, row, en)
	}
	pb.SetAllLinks(1000, 0)
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStrictOrDepsWaitForDecidingFork(t *testing.T) {
	s := paperExample(t)
	// Scenario a2·b* : τ4 is inactive, so τ8's only active pred is τ2
	// (finishes at 10). Non-strict: τ8 may start right after τ2. Strict:
	// τ8 must wait for τ3 (the fork that decides τ4), which finishes at
	// 5+30 = 35.
	var scenario = -1
	for si := 0; si < s.A.NumScenarios(); si++ {
		sc := s.A.Scenario(si)
		if !sc.Active.Get(3) { // τ4 inactive
			scenario = si
			break
		}
	}
	if scenario < 0 {
		t.Fatal("no scenario with inactive tau4")
	}
	loose, err := ReplayCfg(s, scenario, Config{})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := ReplayCfg(s, scenario, Config{StrictOrDeps: true})
	if err != nil {
		t.Fatal(err)
	}
	if !(strict.Makespan > loose.Makespan) {
		t.Fatalf("strict or-deps did not delay the or-node: strict %v vs loose %v",
			strict.Makespan, loose.Makespan)
	}
	// τ8 (wcet 5) must finish at ≥ 35+5 = 40 under strict semantics; the
	// a2 arm (τ5 at 35..40, τ6/τ7 at 40..45) also bounds the makespan.
	if strict.Makespan < 40-1e-9 {
		t.Fatalf("strict makespan %v, want ≥ 40", strict.Makespan)
	}
	// In the a1 scenario τ4 is active, so both modes agree.
	var a1 = -1
	for si := 0; si < s.A.NumScenarios(); si++ {
		if s.A.Scenario(si).Active.Get(3) {
			a1 = si
			break
		}
	}
	l1, err := ReplayCfg(s, a1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := ReplayCfg(s, a1, Config{StrictOrDeps: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l1.Makespan-s1.Makespan) > 1e-9 {
		t.Fatalf("modes disagree when all preds are active: %v vs %v", l1.Makespan, s1.Makespan)
	}
}

func TestStrictOrDepsStillMeetDeadlines(t *testing.T) {
	// The path model covers the fork→or chain, so strict semantics must
	// not cause deadline misses on stretched schedules.
	for seed := int64(0); seed < 20; seed++ {
		g, p, err := tgff.Generate(tgff.Config{
			Seed: 1300 + seed, Nodes: 18, PEs: 3, Branches: 3,
			Category: tgff.ForkJoin,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		s0, err := sched.DLS(a, p, sched.Modified())
		if err != nil {
			t.Fatal(err)
		}
		g2, err := g.WithDeadline(1.3 * s0.Makespan)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := ctg.Analyze(g2)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.DLS(a2, p, sched.Modified())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := stretch.Heuristic(s, platform.Continuous(), 0); err != nil {
			t.Fatal(err)
		}
		sum, err := ExhaustiveCfg(s, Config{StrictOrDeps: true})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Misses > 0 {
			t.Fatalf("seed %d: %d misses under strict or-deps (worst %v vs %v)",
				seed, sum.Misses, sum.WorstMakespan, g2.Deadline())
		}
	}
}

func TestSwitchOverheadAccounting(t *testing.T) {
	// A chain of three tasks on one PE with alternating speeds pays two
	// transitions; uniform speeds pay none.
	b := ctg.NewBuilder()
	t0 := b.AddTask("", ctg.AndNode)
	t1 := b.AddTask("", ctg.AndNode)
	t2 := b.AddTask("", ctg.AndNode)
	b.AddEdge(t0, t1, 0)
	b.AddEdge(t1, t2, 0)
	g, err := b.Build(1000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	pb := platform.NewBuilder(3, 1)
	for i := 0; i < 3; i++ {
		pb.SetUniformTask(i, 10, 4)
	}
	pb.SetAllLinks(1, 0)
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	s.Speed[0], s.Speed[1], s.Speed[2] = 1, 0.5, 1

	cfg := Config{SwitchTime: 2, SwitchEnergy: 0.5}
	inst, err := ReplayCfg(s, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Makespan: 10 + 2 + 20 + 2 + 10 = 44; energy: 4 + 1 + 4 + 2·0.5 = 10.
	if math.Abs(inst.Makespan-44) > 1e-9 {
		t.Fatalf("makespan %v, want 44", inst.Makespan)
	}
	if math.Abs(inst.Energy-10) > 1e-9 {
		t.Fatalf("energy %v, want 10", inst.Energy)
	}

	// Uniform speeds: no switch cost.
	s.Speed[1] = 1
	inst, err = ReplayCfg(s, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inst.Makespan-30) > 1e-9 || math.Abs(inst.Energy-12) > 1e-9 {
		t.Fatalf("uniform speeds: makespan %v energy %v, want 30/12", inst.Makespan, inst.Energy)
	}
}
