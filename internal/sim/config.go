package sim

import (
	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/faults"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/telemetry"
)

// Config selects optional runtime-fidelity features of the replay
// simulator. The zero value reproduces the paper's model exactly (no DVFS
// switching overhead, or-nodes wait only for their active predecessors).
type Config struct {
	// StrictOrDeps enforces the paper's §II "implied dependency"
	// explicitly: an or-node cannot start before every *active branch
	// fork that is an ancestor of one of its inactive predecessors* has
	// finished — the runtime cannot know a conditional predecessor will
	// never arrive until the deciding fork has executed. (In the paper's
	// Example 1, τ8 must wait for τ3 even when a1 is false.) Without this
	// flag the or-node waits only for its active predecessors, which can
	// only start it earlier; both modes meet the deadline whenever the
	// stretched schedule does, since the fork→or chain is covered by the
	// path model.
	StrictOrDeps bool

	// SwitchTime and SwitchEnergy charge a DVFS transition cost whenever
	// consecutive tasks on one PE run at different speeds — an overhead
	// the paper explicitly ignores ("we do not consider switching
	// overhead for DVFS") but that real voltage regulators impose. Time
	// is added between the two tasks; energy is added per switch.
	SwitchTime   float64
	SwitchEnergy float64

	// ScenarioSpeeds, when non-nil, overrides the schedule's single
	// per-task speeds with a scenario-conditioned table
	// (ScenarioSpeeds[scenario][task]) as produced by
	// stretch.PerScenario.
	ScenarioSpeeds [][]float64

	// Faults, when non-nil, perturbs per-task execution times with the
	// plan's multiplicative factors. The replay then reports the perturbed
	// Energy/Makespan/DeadlineMet next to the Nominal* fields; with Faults
	// nil every number is bit-for-bit the unperturbed model.
	Faults *faults.Plan
	// FaultInstance selects which instance of the fault plan's
	// deterministic sequence this replay represents. Exhaustive uses the
	// scenario index and Sample the sample index automatically; callers
	// replaying a stream of CTG iterations (core.Manager) advance it per
	// iteration.
	FaultInstance int

	// Recorder, when non-nil, receives one telemetry.KindTaskSlice event
	// per executed task and one KindCommSlice per realized link transfer
	// (of the timeline that counts: the perturbed walk under a fault plan,
	// the nominal walk otherwise), plus a KindOverrun event per perturbed
	// execution. With Recorder nil the replay allocates and emits nothing.
	Recorder telemetry.Recorder
	// InstanceID is the instance index stamped on emitted events —
	// the step index for adaptive runs, the scenario index for
	// exhaustive sweeps.
	InstanceID int
	// Phase labels emitted events (telemetry.Event.Phase); the adaptive
	// manager marks its worst-case fallback re-runs with
	// telemetry.PhaseFallback.
	Phase string
	// Seq, when non-nil (and a Recorder is attached), stamps every emitted
	// event with a monotonic sequence id — the identity causal
	// back-references point at. Cause is copied onto every emitted event as
	// its Cause field (the adaptive manager passes the instance_start
	// event's id, tying each slice/overrun to the replay it belongs to).
	// Both are ignored when Recorder is nil.
	Seq   *telemetry.Sequencer
	Cause uint64
}

// orGuards precomputes, per or-node, the set of branch forks that are
// ancestors of each of its predecessors (needed by StrictOrDeps). The
// result maps each or-node task to, per incoming edge, the list of ancestor
// forks of that edge's source.
type orGuards map[ctg.TaskID][][]ctg.TaskID

// buildOrGuards walks the graph once, computing fork-ancestor sets.
func buildOrGuards(s *sched.Schedule) orGuards {
	g := s.G
	n := g.NumTasks()
	// ancestors[t] = bitset over fork indices of forks on some path to t
	// (the fork itself included when t is a fork's successor).
	anc := make([]ctg.Bitset, n)
	for _, t := range g.Topo() {
		anc[t] = ctg.NewBitset(g.NumForks())
		for _, ei := range g.Pred(t) {
			e := g.Edge(ei)
			anc[t].UnionWith(anc[e.From])
			if fi := g.ForkIndex(e.From); fi >= 0 {
				anc[t].Set(fi)
			}
		}
	}
	guards := orGuards{}
	for _, task := range g.Tasks() {
		if task.Kind != ctg.OrNode {
			continue
		}
		per := make([][]ctg.TaskID, 0, len(g.Pred(task.ID)))
		for _, ei := range g.Pred(task.ID) {
			from := g.Edge(ei).From
			var forks []ctg.TaskID
			anc[from].ForEach(func(fi int) {
				forks = append(forks, g.Forks()[fi])
			})
			per = append(per, forks)
		}
		guards[task.ID] = per
	}
	return guards
}
