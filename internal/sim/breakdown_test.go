package sim

import (
	"math"
	"strings"
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/stretch"
	"ctgdvfs/internal/tgff"
)

func TestBreakdownMatchesExpectedEnergy(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, p, err := tgff.Generate(tgff.Config{
			Seed: 1700 + seed, Nodes: 16, PEs: 3, Branches: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.DLS(a, p, sched.Modified())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := stretch.Heuristic(s, platform.Continuous(), 0); err != nil {
			t.Fatal(err)
		}
		b := AnalyzeBreakdown(s)
		if math.Abs(b.Total-s.ExpectedEnergy()) > 1e-9*math.Max(1, b.Total) {
			t.Fatalf("seed %d: breakdown total %v != expected energy %v",
				seed, b.Total, s.ExpectedEnergy())
		}
		tasks := 0
		for _, st := range b.PEs {
			tasks += st.Tasks
			if st.BusyTime < 0 || st.Utilization < 0 {
				t.Fatalf("seed %d: negative PE stats %+v", seed, st)
			}
		}
		if tasks != g.NumTasks() {
			t.Fatalf("seed %d: breakdown covers %d tasks, want %d", seed, tasks, g.NumTasks())
		}
	}
}

func TestBreakdownAttribution(t *testing.T) {
	// Two tasks pinned to different PEs with a cross edge: attribution is
	// exact.
	b := ctg.NewBuilder()
	src := b.AddTask("", ctg.AndNode)
	dst := b.AddTask("", ctg.AndNode)
	b.AddEdge(src, dst, 10)
	g, err := b.Build(100)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	pb := platform.NewBuilder(2, 2)
	pb.SetTask(0, []float64{10, 1000}, []float64{6, 6})
	pb.SetTask(1, []float64{1000, 10}, []float64{8, 8})
	pb.SetAllLinks(2, 0.5)
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		t.Fatal(err)
	}
	bd := AnalyzeBreakdown(s)
	if bd.PEs[0].CompEnergy != 6 || bd.PEs[1].CompEnergy != 8 {
		t.Fatalf("PE energies %v/%v, want 6/8", bd.PEs[0].CompEnergy, bd.PEs[1].CompEnergy)
	}
	if bd.PEs[0].Tasks != 1 || bd.PEs[1].Tasks != 1 {
		t.Fatal("task attribution wrong")
	}
	if bd.CommEnergy != 5 { // 10 KB × 0.5
		t.Fatalf("comm energy %v, want 5", bd.CommEnergy)
	}
	if bd.CommTime != 5 { // 10 KB / 2
		t.Fatalf("comm time %v, want 5", bd.CommTime)
	}
	if bd.PEs[0].Utilization != 0.1 { // 10 / 100
		t.Fatalf("utilization %v, want 0.1", bd.PEs[0].Utilization)
	}
	out := bd.String()
	for _, want := range []string{"PE", "interconnect", "total expected energy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
